// Streaming-sweep benchmark harness: the per-trial allocation guard of
// the sink/streaming layer (sinks may allocate per point, never per
// trial), the BENCH_sweep.json emitter CI uses to track the streamed
// sweep pipeline alongside the per-policy solver numbers, and the
// work-stealing scaling benchmark behind BENCH_scaling.json.
package repro_test

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// benchSweepSpec is one congested point (the Figure 7(a) midpoint shape)
// streamed to both incremental sinks.
func benchSweepSpec(trials int) scenario.Spec {
	return scenario.Spec{
		ID: "bench", Title: "bench",
		Params: scenario.Params{WMin: 100, WMax: 1500},
		Axis:   scenario.AxisN, Points: []float64{70},
		Trials: trials, Seed: 1,
		Policies: []string{"XY"},
	}
}

func runBenchSweep(b testing.TB, trials int) {
	sp := benchSweepSpec(trials)
	err := experiments.Sweep(sp, experiments.SweepOptions{},
		experiments.NewCSVSink(io.Discard, io.Discard),
		experiments.NewJSONLSink(io.Discard))
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepStreaming measures a streamed sweep point end to end —
// engine, reduction, CSV and JSONL sinks — and guards the per-trial
// allocation budget: the streaming layer must inherit the pooled engine's
// discipline, with sink work amortized per point. A sink (or reduction)
// that allocates per trial blows straight through the same bound the
// panel runner enforces.
func BenchmarkSweepStreaming(b *testing.B) {
	const trials = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runBenchSweep(b, trials)
	}
	b.StopTimer()
	// AllocsPerRun pins GOMAXPROCS to 1: exactly the serial per-trial hot
	// path plus the per-point sink emissions, amortized over the trials.
	perTrial := testing.AllocsPerRun(3, func() { runBenchSweep(b, trials) }) / trials
	b.ReportMetric(perTrial, "allocs/trial")
	if perTrial > maxAllocsPerTrial {
		b.Fatalf("per-trial allocations %.0f exceed the guard %d — the streaming layer is allocating on the per-trial path",
			perTrial, maxAllocsPerTrial)
	}
}

// TestEmitSweepBenchJSON writes BENCH_sweep.json (ns/op and allocs/op for
// one streamed sweep point) when BENCH_SWEEP_JSON names the output path —
// the CI hook tracking the sweep pipeline's perf trajectory next to
// BENCH_solvers.json. Without the variable the test is a no-op.
func TestEmitSweepBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_SWEEP_JSON")
	if path == "" {
		t.Skip("BENCH_SWEEP_JSON not set")
	}
	const trials = 32
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runBenchSweep(b, trials)
		}
	})
	rows := map[string]any{
		"sweep_point": map[string]any{
			"trials":        trials,
			"ns_per_op":     float64(res.NsPerOp()),
			"allocs_per_op": res.AllocsPerOp(),
			"bytes_per_op":  res.AllocedBytesPerOp(),
		},
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// scalingSpec is the mixed fast/slow-point sweep the scaling numbers are
// measured on: big-n congested points interleaved with tiny ones, so a
// per-point barrier would idle most of the fleet on every slow point —
// exactly the shape the work-stealing scheduler exists for.
func scalingSpec(trials int) scenario.Spec {
	return scenario.Spec{
		ID: "scaling", Title: "scaling",
		Params: scenario.Params{WMin: 100, WMax: 1500},
		Axis:   scenario.AxisN, Points: []float64{10, 90, 15, 70, 20, 80},
		Trials: trials, Seed: 7,
		Policies: []string{"XY", "XYI"},
	}
}

func runScalingSweep(b testing.TB, workers, trials int) {
	sp := scalingSpec(trials)
	err := experiments.Sweep(sp, experiments.SweepOptions{Workers: workers},
		experiments.NewCSVSink(io.Discard, io.Discard))
	if err != nil {
		b.Fatal(err)
	}
}

// scalingWorkerCounts returns the worker counts to measure: 1, 2, 4 and
// NumCPU by default (deduplicated, sorted), or the comma-separated list
// in BENCH_SCALING_WORKERS ("max" meaning NumCPU) — the hook CI's smoke
// step uses to measure just the endpoints.
func scalingWorkerCounts(tb testing.TB) []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	if env := os.Getenv("BENCH_SCALING_WORKERS"); env != "" {
		counts = counts[:0]
		for _, f := range strings.Split(env, ",") {
			f = strings.TrimSpace(f)
			if strings.EqualFold(f, "max") {
				counts = append(counts, runtime.NumCPU())
				continue
			}
			n, err := strconv.Atoi(f)
			if err != nil || n < 1 {
				tb.Fatalf("BENCH_SCALING_WORKERS: bad count %q", f)
			}
			counts = append(counts, n)
		}
	}
	sort.Ints(counts)
	out := counts[:0]
	for i, n := range counts {
		if i == 0 || n != counts[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// BenchmarkSweepScaling runs the mixed-point sweep at 1/2/4/NumCPU
// persistent workers (one sub-benchmark each), the raw numbers behind
// the speedup and parallel-efficiency figures of BENCH_scaling.json.
func BenchmarkSweepScaling(b *testing.B) {
	const trials = 16
	for _, workers := range scalingWorkerCounts(b) {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runScalingSweep(b, workers, trials)
			}
		})
	}
}

// TestEmitScalingBenchJSON writes BENCH_scaling.json when
// BENCH_SCALING_JSON names the output path: per worker count, the
// sweep's ns/op, speedup over the serial reference, and parallel
// efficiency. Efficiency is utilization-normalized — speedup divided by
// min(workers, NumCPU) — so oversubscribed runs (more workers than the
// machine has cores) are judged on the cores that actually exist; the
// machine's core count is recorded as num_cpu next to the entries.
// benchguard -scaling compares these figures across commits.
func TestEmitScalingBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_SCALING_JSON")
	if path == "" {
		t.Skip("BENCH_SCALING_JSON not set")
	}
	const trials = 16
	counts := scalingWorkerCounts(t)
	measure := func(workers int) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runScalingSweep(b, workers, trials)
			}
		})
		return float64(res.NsPerOp())
	}
	serial := measure(1)
	type entry struct {
		Workers    int     `json:"workers"`
		NsPerOp    float64 `json:"ns_per_op"`
		Speedup    float64 `json:"speedup"`
		Efficiency float64 `json:"efficiency"`
	}
	entries := make([]entry, 0, len(counts))
	for _, w := range counts {
		ns := serial
		if w != 1 {
			ns = measure(w)
		}
		speedup := serial / ns
		avail := w
		if n := runtime.NumCPU(); avail > n {
			avail = n
		}
		entries = append(entries, entry{
			Workers:    w,
			NsPerOp:    ns,
			Speedup:    speedup,
			Efficiency: speedup / float64(avail),
		})
	}
	out := map[string]any{
		"num_cpu": runtime.NumCPU(),
		"trials":  trials,
		"entries": entries,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
