// Streaming-sweep benchmark harness: the per-trial allocation guard of
// the sink/streaming layer (sinks may allocate per point, never per
// trial) and the BENCH_sweep.json emitter CI uses to track the streamed
// sweep pipeline alongside the per-policy solver numbers.
package repro_test

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// benchSweepSpec is one congested point (the Figure 7(a) midpoint shape)
// streamed to both incremental sinks.
func benchSweepSpec(trials int) scenario.Spec {
	return scenario.Spec{
		ID: "bench", Title: "bench",
		Params: scenario.Params{WMin: 100, WMax: 1500},
		Axis:   scenario.AxisN, Points: []float64{70},
		Trials: trials, Seed: 1,
		Policies: []string{"XY"},
	}
}

func runBenchSweep(b testing.TB, trials int) {
	sp := benchSweepSpec(trials)
	err := experiments.Sweep(sp, experiments.SweepOptions{},
		experiments.NewCSVSink(io.Discard, io.Discard),
		experiments.NewJSONLSink(io.Discard))
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepStreaming measures a streamed sweep point end to end —
// engine, reduction, CSV and JSONL sinks — and guards the per-trial
// allocation budget: the streaming layer must inherit the pooled engine's
// discipline, with sink work amortized per point. A sink (or reduction)
// that allocates per trial blows straight through the same bound the
// panel runner enforces.
func BenchmarkSweepStreaming(b *testing.B) {
	const trials = 64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runBenchSweep(b, trials)
	}
	b.StopTimer()
	// AllocsPerRun pins GOMAXPROCS to 1: exactly the serial per-trial hot
	// path plus the per-point sink emissions, amortized over the trials.
	perTrial := testing.AllocsPerRun(3, func() { runBenchSweep(b, trials) }) / trials
	b.ReportMetric(perTrial, "allocs/trial")
	if perTrial > maxAllocsPerTrial {
		b.Fatalf("per-trial allocations %.0f exceed the guard %d — the streaming layer is allocating on the per-trial path",
			perTrial, maxAllocsPerTrial)
	}
}

// TestEmitSweepBenchJSON writes BENCH_sweep.json (ns/op and allocs/op for
// one streamed sweep point) when BENCH_SWEEP_JSON names the output path —
// the CI hook tracking the sweep pipeline's perf trajectory next to
// BENCH_solvers.json. Without the variable the test is a no-op.
func TestEmitSweepBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_SWEEP_JSON")
	if path == "" {
		t.Skip("BENCH_SWEEP_JSON not set")
	}
	const trials = 32
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runBenchSweep(b, trials)
		}
	})
	rows := map[string]any{
		"sweep_point": map[string]any{
			"trials":        trials,
			"ns_per_op":     float64(res.NsPerOp()),
			"allocs_per_op": res.AllocsPerOp(),
			"bytes_per_op":  res.AllocedBytesPerOp(),
		},
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
