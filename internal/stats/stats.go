// Package stats provides the small statistical toolkit used by the
// experiment harness: online mean/variance accumulation (Welford) and
// ratio counters for the two y-axes of Figures 7–9 (normalized inverse
// power and failure ratio).
package stats

import (
	"math"
	"sort"
)

// Accumulator computes running mean and variance without storing samples.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the sample count.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// Ratio counts successes over trials (the failure-ratio axis).
type Ratio struct {
	Hits, Total int
}

// Add records one trial.
func (r *Ratio) Add(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total (0 with no trials).
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive xs (0 otherwise).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 < p <= 100) of xs by the
// nearest-rank method, sorting a copy so the input is untouched. It
// returns 0 for empty input — the latency-report convention of the serve
// load harness, whose empty runs report zero rather than NaN.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1]
}
