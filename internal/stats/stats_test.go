package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %g, want 5", a.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if want := 32.0 / 7.0; math.Abs(a.Var()-want) > 1e-12 {
		t.Errorf("Var = %g, want %g", a.Var(), want)
	}
	if math.Abs(a.Std()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("Std = %g", a.Std())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator not zero")
	}
	a.Add(3)
	if a.Mean() != 3 || a.Var() != 0 {
		t.Error("single sample stats wrong")
	}
}

// Welford agrees with the two-pass formula.
func TestAccumulatorMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(100) + 2
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 50
			a.Add(xs[i])
		}
		mean := Mean(xs)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(n-1)
		if math.Abs(a.Mean()-mean) > 1e-9 || math.Abs(a.Var()-wantVar) > 1e-9 {
			t.Fatalf("trial %d: welford (%g,%g) vs two-pass (%g,%g)",
				trial, a.Mean(), a.Var(), mean, wantVar)
		}
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio not 0")
	}
	r.Add(true)
	r.Add(false)
	r.Add(true)
	r.Add(true)
	if math.Abs(r.Value()-0.75) > 1e-12 {
		t.Errorf("Value = %g, want 0.75", r.Value())
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0, 2}) != 0 {
		t.Error("degenerate GeoMean not 0")
	}
}

// Mean is translation-equivariant.
func TestMeanTranslation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 100
		}
		return math.Abs(Mean(shifted)-Mean(xs)-100) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {99, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile of empty = %g, want 0", got)
	}
}
