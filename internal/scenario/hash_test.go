package scenario

import (
	"strings"
	"testing"
)

func specForHash() Spec {
	return Spec{
		ID:     "s1",
		Title:  "a sweep",
		XLabel: "n",
		Mesh:   "8x8",
		Source: "uniform",
		Params: Params{N: 10, WMin: 100, WMax: 1500, WBand: 0.1, Length: 4, Rate: 250},
		Axis:   AxisN,
		Points: []float64{5, 10, 20},
		Trials: 7,
		Seed:   3,
		Policies: []string{
			"XY", "PR",
		},
		Power: "kim-horowitz",
	}
}

func TestHashStableAndJSONOrderIndependent(t *testing.T) {
	sp := specForHash()
	if sp.Hash() != sp.Hash() {
		t.Fatal("hash is not deterministic")
	}
	// The same spec written with JSON fields in two different orders
	// must decode to the same hash.
	a := `{"id":"s1","source":"uniform","mesh":"8x8","axis":"n","points":[5,20],"trials":2,"seed":1,"params":{"wmin":100,"wmax":1200}}`
	b := `{"params":{"wmax":1200,"wmin":100},"seed":1,"trials":2,"points":[5,20],"axis":"n","mesh":"8x8","source":"uniform","id":"s1"}`
	sa, err := DecodeJSON(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := DecodeJSON(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if sa.Hash() != sb.Hash() {
		t.Error("JSON field order changed the hash")
	}
}

func TestHashNormalizesEquivalentSpellings(t *testing.T) {
	base := specForHash()
	for name, mut := range map[string]func(*Spec){
		"mesh default":      func(s *Spec) { s.Mesh = "" },
		"mesh case":         func(s *Spec) { s.Mesh = "8X8" },
		"source case":       func(s *Spec) { s.Source = "UNIFORM" },
		"policy case":       func(s *Spec) { s.Policies = []string{"xy", "pr"} },
		"power default":     func(s *Spec) { s.Power = "" },
		"source default":    func(s *Spec) { s.Source = "" },
		"mesh whitespace":   func(s *Spec) { s.Mesh = " 8x8 " },
		"identical rewrite": func(s *Spec) {},
	} {
		sp := specForHash()
		mut(&sp)
		if sp.Hash() != base.Hash() {
			t.Errorf("%s: semantically equal spec hashed differently", name)
		}
	}
}

func TestHashChangesWithEveryField(t *testing.T) {
	base := specForHash().Hash()
	muts := map[string]func(*Spec){
		"id":             func(s *Spec) { s.ID = "s2" },
		"title":          func(s *Spec) { s.Title = "b sweep" },
		"xlabel":         func(s *Spec) { s.XLabel = "m" },
		"mesh":           func(s *Spec) { s.Mesh = "16x16" },
		"source":         func(s *Spec) { s.Source = "tornado" },
		"params.n":       func(s *Spec) { s.Params.N = 11 },
		"params.wmin":    func(s *Spec) { s.Params.WMin = 101 },
		"params.wmax":    func(s *Spec) { s.Params.WMax = 1501 },
		"params.wband":   func(s *Spec) { s.Params.WBand = 0.2 },
		"params.length":  func(s *Spec) { s.Params.Length = 5 },
		"params.rate":    func(s *Spec) { s.Params.Rate = 300 },
		"axis":           func(s *Spec) { s.Axis = AxisWeight },
		"points":         func(s *Spec) { s.Points = []float64{5, 10, 21} },
		"points count":   func(s *Spec) { s.Points = []float64{5, 10} },
		"trials":         func(s *Spec) { s.Trials = 8 },
		"seed":           func(s *Spec) { s.Seed = 4 },
		"policies":       func(s *Spec) { s.Policies = []string{"XY", "SA"} },
		"policies count": func(s *Spec) { s.Policies = []string{"XY"} },
		"power":          func(s *Spec) { s.Power = "continuous" },
		"topology torus": func(s *Spec) { s.Mesh = ""; s.Topology = "torus:8x8" },
		"topology circ":  func(s *Spec) { s.Mesh = ""; s.Topology = "circulant:27:1,3,9" },
		"topology chord": func(s *Spec) { s.Mesh = ""; s.Topology = "circulant:27:1,3" },
	}
	seen := map[string]string{base: "base"}
	for name, mut := range muts {
		sp := specForHash()
		mut(&sp)
		h := sp.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutating %s collided with %s", name, prev)
		}
		seen[h] = name
	}
}

// TestHashCanonicalizesTopology: equivalent topology spellings (family
// case, generator order) hash equal; distinct platforms never collide.
// The serve cache is keyed on this hash, so a mesh sweep and a torus
// sweep over the same parameters must have different identities.
func TestHashCanonicalizesTopology(t *testing.T) {
	topoSpec := func(topology string) Spec {
		sp := specForHash()
		sp.Mesh = ""
		sp.Topology = topology
		sp.Policies = []string{"TABLE"}
		return sp
	}
	base := topoSpec("circulant:27:1,3,9").Hash()
	for _, equiv := range []string{
		"CIRCULANT:27:1,3,9",
		"circulant:27:9,3,1",
		" circulant:27:3,1,9 ",
	} {
		if got := topoSpec(equiv).Hash(); got != base {
			t.Errorf("spelling %q hashed differently from the canonical circulant", equiv)
		}
	}
	mesh := specForHash()
	torus := topoSpec("torus:8x8")
	torus.Policies = mesh.Policies
	if mesh.Hash() == torus.Hash() {
		t.Error("an 8x8 mesh sweep and an 8x8 torus sweep hash equal — the serve cache would alias them")
	}
}

// TestHashPinned pins exact hash values. The hash is the serve layer's
// cache key and the content-addressed identity of sweep artifacts, so a
// change here is a compatibility break: it silently invalidates every
// existing artifact name. Update the constants only when the encoding
// deliberately changes (as the topology field's introduction did).
func TestHashPinned(t *testing.T) {
	base := specForHash()
	tor := specForHash()
	tor.Mesh = ""
	tor.Topology = "torus:8x8"
	tor.Policies = []string{"TABLE"}
	circ := specForHash()
	circ.Mesh = ""
	circ.Topology = "circulant:27:1,3,9"
	circ.Policies = []string{"TABLE"}
	for name, tc := range map[string]struct {
		sp   Spec
		want string
	}{
		"mesh":      {base, "0d67cbb7c631986ce0cfb99549b3fd76136d21f8f50cb4c3fc964caaf47e16d1"},
		"torus":     {tor, "a504b8b23977bb830afe1a52709ce8bb81890ab5946afa11e477aa255abd7e38"},
		"circulant": {circ, "71cf62fe7a17ca74cba2eea65ae93ad5951b43529dd034da3af86a18b98d7acd"},
	} {
		if got := tc.sp.Hash(); got != tc.want {
			t.Errorf("%s: hash drifted to %s (pinned %s)", name, got, tc.want)
		}
	}
}

// TestHashFieldBoundaries pins the length-prefixed encoding: content
// sliding between adjacent string fields must change the hash.
func TestHashFieldBoundaries(t *testing.T) {
	a := Spec{ID: "ab", Title: "c"}
	b := Spec{ID: "a", Title: "bc"}
	if a.Hash() == b.Hash() {
		t.Error("adjacent string fields alias in the hash encoding")
	}
}
