package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/workload"
)

func init() {
	Register(randomSource{})
	for _, p := range workload.Patterns() {
		pat := p
		Register(patternSource{
			name: permName(pat),
			build: func(m *mesh.Mesh, _ Params) (comm.Set, error) {
				return workload.Permutation(m, nil, pat, 1)
			},
		})
	}
	Register(patternSource{name: "transpose", build: buildTranspose})
	Register(patternSource{name: "stencil", build: buildStencil})
	Register(patternSource{name: "pipeline", build: buildPipeline, axisN: true})
	Register(hotspotSource{})
	Register(traceSource{})
}

// permName maps a workload.Pattern to its registry name.
func permName(p workload.Pattern) string {
	switch p {
	case workload.BitComplement:
		return "bitcomp"
	case workload.BitReverse:
		return "bitrev"
	case workload.Shuffle:
		return "shuffle"
	case workload.Tornado:
		return "tornado"
	case workload.Neighbor:
		return "neighbor"
	}
	panic(fmt.Sprintf("scenario: unnamed pattern %v", p))
}

// randomSource is the Section 6 random family: independently random
// source/sink pairs ("uniform") or pairs at an exact Manhattan length
// when Params.Length is set (the §6.3 sweeps), with weights uniform in
// [WMin, WMax].
type randomSource struct{}

func (randomSource) Name() string { return "uniform" }

func (randomSource) Axes() []string { return []string{AxisN, AxisWeight, AxisLength} }

func (randomSource) Bind(m *mesh.Mesh, p Params) (Drawer, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("needs n > 0 communications")
	}
	if err := p.validateWeights(); err != nil {
		return nil, err
	}
	if p.WMax <= 0 {
		return nil, fmt.Errorf("needs a weight range wmin..wmax")
	}
	if m.NumCores() < 2 {
		return nil, fmt.Errorf("needs at least 2 cores")
	}
	if p.Length != 0 {
		if max := m.P() + m.Q() - 2; p.Length < 1 || p.Length > max {
			return nil, fmt.Errorf("no core pair at distance %d (valid: 1..%d)", p.Length, max)
		}
	}
	return &randomDrawer{gen: workload.New(m, 0), p: p}, nil
}

type randomDrawer struct {
	gen *workload.Generator
	p   Params
}

func (d *randomDrawer) Draw(seed int64, dst comm.Set) (comm.Set, error) {
	return DrawRandom(d.gen, seed, d.p, dst)
}

// DrawRandom draws the Section 6 random family for an explicit params
// value on a caller-owned generator — the hook for pooled loops (e.g. the
// §6.4 summary) whose tasks mix many params over one per-worker
// generator. The draws are identical to the "uniform" source's.
func DrawRandom(gen *workload.Generator, seed int64, p Params, dst comm.Set) (comm.Set, error) {
	gen.Reseed(seed)
	if p.Length > 0 {
		return gen.TargetLengthInto(dst, p.N, p.WMin, p.WMax, p.Length), nil
	}
	return gen.UniformInto(dst, p.N, p.WMin, p.WMax), nil
}

// patternSource adapts a deterministic traffic builder (permutations,
// transposes, stencils, pipelines) to the registry: Bind materializes the
// pattern's source/sink pairs once as a template, Draw stamps rates onto
// a copy — the fixed Params.Rate, or per-flow uniform draws from
// [WMin, WMax] when Rate is zero.
type patternSource struct {
	name  string
	build func(m *mesh.Mesh, p Params) (comm.Set, error)
	// axisN marks builders that consume Params.N (pipeline stages).
	axisN bool
}

func (s patternSource) Name() string { return s.name }

func (s patternSource) Axes() []string {
	axes := []string{AxisRate, AxisWeight}
	if s.axisN {
		axes = append(axes, AxisN)
	}
	return axes
}

func (s patternSource) Bind(m *mesh.Mesh, p Params) (Drawer, error) {
	if err := p.validateWeights(); err != nil {
		return nil, err
	}
	if !p.rated() {
		return nil, fmt.Errorf("needs a fixed rate or a weight range wmin..wmax")
	}
	tmpl, err := s.build(m, p)
	if err != nil {
		return nil, err
	}
	if len(tmpl) == 0 {
		return nil, fmt.Errorf("pattern produces no traffic")
	}
	return &patternDrawer{tmpl: tmpl, p: p, rng: rand.New(rand.NewSource(0))}, nil
}

type patternDrawer struct {
	tmpl comm.Set
	p    Params
	rng  *rand.Rand
}

func (d *patternDrawer) Draw(seed int64, dst comm.Set) (comm.Set, error) {
	dst = append(dst[:0], d.tmpl...)
	if d.p.Rate > 0 {
		for i := range dst {
			dst[i].Rate = d.p.Rate
		}
		return dst, nil
	}
	d.rng.Seed(seed)
	span := d.p.WMax - d.p.WMin
	for i := range dst {
		dst[i].Rate = d.p.WMin + d.rng.Float64()*span
	}
	return dst, nil
}

func buildTranspose(m *mesh.Mesh, _ Params) (comm.Set, error) {
	if m.P() != m.Q() {
		return nil, fmt.Errorf("transpose needs a square mesh, got %v", m)
	}
	return workload.Transpose(m, nil, mesh.Box{UMin: 1, VMin: 1, UMax: m.P(), VMax: m.Q()}, 1)
}

func buildStencil(m *mesh.Mesh, _ Params) (comm.Set, error) {
	return workload.Stencil(m, nil, mesh.Box{UMin: 1, VMin: 1, UMax: m.P(), VMax: m.Q()}, 1)
}

func buildPipeline(m *mesh.Mesh, p Params) (comm.Set, error) {
	stages := p.N
	if stages == 0 {
		stages = m.NumCores()
	}
	if stages < 2 {
		return nil, fmt.Errorf("pipeline needs at least 2 stages, got %d", stages)
	}
	return workload.Pipeline(m, nil, mesh.Coord{U: 1, V: 1}, stages, 1)
}

// hotspotSource concentrates traffic on the mesh-center core (the
// single-destination regime of Theorem 1): Params.N seeded random source
// cores per draw (all cores when N is 0) each send to the center.
type hotspotSource struct{}

func (hotspotSource) Name() string { return "hotspot" }

func (hotspotSource) Axes() []string { return []string{AxisN, AxisRate, AxisWeight} }

func (hotspotSource) Bind(m *mesh.Mesh, p Params) (Drawer, error) {
	if err := p.validateWeights(); err != nil {
		return nil, err
	}
	if !p.rated() {
		return nil, fmt.Errorf("needs a fixed rate or a weight range wmin..wmax")
	}
	if m.NumCores() < 2 {
		return nil, fmt.Errorf("needs at least 2 cores")
	}
	sink := mesh.Coord{U: (m.P() + 1) / 2, V: (m.Q() + 1) / 2}
	pool := make([]int, 0, m.NumCores()-1)
	for i := 0; i < m.NumCores(); i++ {
		if m.CoordAt(i) != sink {
			pool = append(pool, i)
		}
	}
	if p.N < 0 {
		return nil, fmt.Errorf("negative hotspot source count %d", p.N)
	}
	if p.N > len(pool) {
		return nil, fmt.Errorf("%d hotspot sources requested but only %d non-sink cores", p.N, len(pool))
	}
	return &hotspotDrawer{
		m: m, p: p, sink: sink,
		base: pool, pool: make([]int, len(pool)),
		rng: rand.New(rand.NewSource(0)),
	}, nil
}

type hotspotDrawer struct {
	m    *mesh.Mesh
	p    Params
	sink mesh.Coord
	base []int // non-sink core indices in canonical order
	pool []int // per-draw shuffle buffer, reset from base each draw
	rng  *rand.Rand
}

func (d *hotspotDrawer) Draw(seed int64, dst comm.Set) (comm.Set, error) {
	d.rng.Seed(seed)
	// Reset the shuffle buffer so the draw depends only on the seed, not
	// on the drawer's history — the Drawer determinism contract.
	copy(d.pool, d.base)
	n := d.p.N
	if n == 0 {
		n = len(d.pool)
	} else {
		// Partial Fisher–Yates: the first n entries become a uniform
		// sample of distinct source cores.
		for i := 0; i < n; i++ {
			j := i + d.rng.Intn(len(d.pool)-i)
			d.pool[i], d.pool[j] = d.pool[j], d.pool[i]
		}
	}
	span := d.p.WMax - d.p.WMin
	dst = dst[:0]
	for i := 0; i < n; i++ {
		rate := d.p.Rate
		if rate == 0 {
			rate = d.p.WMin + d.rng.Float64()*span
		}
		dst = append(dst, comm.Comm{ID: i, Src: d.m.CoordAt(d.pool[i]), Dst: d.sink, Rate: rate})
	}
	return dst, nil
}

// Trace source defaults: a light offered load that the PR heuristic
// routes feasibly on most seeds, replayed in the simulator long enough
// for goodput to stabilize.
const (
	traceDefaultN    = 12
	traceDefaultWMin = 100
	traceDefaultWMax = 900
	tracePacketBits  = 2048
	traceHorizonUS   = 2000
	traceWarmupUS    = 500
	traceMaxAttempts = 50
	traceAttemptBump = 101
)

// traceSource is the trace-driven generator: each draw offers a seeded
// uniform workload (N, WMin, WMax), routes it with the PR heuristic,
// replays it in the discrete-event NoC simulator with a streaming
// delivery observer attached, and exports the observed per-communication
// goodput as the communication set (noc.WorkloadObserver) — traffic as
// the chip actually delivered it, contention and all. The drawer pools
// one simulator across draws (noc.Workspace) and the observer retains
// only per-comm bit totals, so a draw costs no event retention and no
// per-draw simulator construction no matter how long the replay runs.
// Seeds whose offered load is PR-infeasible are skipped
// deterministically, like the NoC cross-validation experiment. Draws
// still run a full simulation, so the source remains heavier than the
// synthetic ones; use small trial counts.
type traceSource struct{}

func (traceSource) Name() string { return "trace" }

func (traceSource) Axes() []string { return []string{AxisN, AxisWeight} }

func (traceSource) Bind(m *mesh.Mesh, p Params) (Drawer, error) {
	if p.N == 0 {
		p.N = traceDefaultN
	}
	if p.WMax == 0 {
		p.WMin, p.WMax = traceDefaultWMin, traceDefaultWMax
	}
	if p.N < 0 {
		return nil, fmt.Errorf("needs n > 0 communications")
	}
	if err := p.validateWeights(); err != nil {
		return nil, err
	}
	if m.NumCores() < 2 {
		return nil, fmt.Errorf("needs at least 2 cores")
	}
	return &traceDrawer{
		m: m, p: p, model: power.KimHorowitz(),
		gen: workload.New(m, 0), sims: noc.NewWorkspace(),
	}, nil
}

type traceDrawer struct {
	m       *mesh.Mesh
	p       Params
	model   power.Model
	gen     *workload.Generator
	offered comm.Set
	sims    *noc.Workspace
	obs     noc.WorkloadObserver
}

func (d *traceDrawer) Draw(seed int64, dst comm.Set) (comm.Set, error) {
	for attempt := 0; attempt < traceMaxAttempts; attempt++ {
		d.gen.Reseed(seed + int64(attempt)*traceAttemptBump)
		d.offered = d.gen.UniformInto(d.offered, d.p.N, d.p.WMin, d.p.WMax)
		res, err := heur.Solve(heur.PR{}, heur.Instance{Mesh: d.m, Model: d.model, Comms: d.offered})
		if err != nil {
			return nil, err
		}
		if !res.Feasible {
			continue
		}
		sim, err := d.sims.Simulator(res.Routing, d.model, noc.Config{
			Horizon: traceHorizonUS, Warmup: traceWarmupUS, PacketBits: tracePacketBits,
		})
		if err != nil {
			continue
		}
		if err := d.obs.Reset(d.offered, traceWarmupUS, traceHorizonUS); err != nil {
			return nil, err
		}
		sim.Observe(d.obs.Record)
		sim.Run()
		out, err := d.obs.Export(dst)
		if err != nil {
			return nil, err
		}
		if len(out) == 0 {
			continue
		}
		return out, nil
	}
	return nil, fmt.Errorf("scenario: no feasible trace instance within %d attempts of seed %d", traceMaxAttempts, seed)
}
