package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/workload"
)

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"uniform", "bitcomp", "bitrev", "shuffle", "tornado",
		"neighbor", "transpose", "stencil", "pipeline", "hotspot", "trace"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
		if _, err := Lookup(strings.ToUpper(name)); err != nil {
			t.Errorf("Lookup is not case-insensitive for %q: %v", name, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown source accepted")
	}
	names := Sources()
	if len(names) < 11 {
		t.Errorf("Sources() = %v, want at least the 11 built-ins", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Sources() not sorted: %v", names)
		}
	}
}

// Every deterministic source draws identically for equal seeds and
// differently (in rates at least) for different seeds when randomized.
func TestDrawDeterminism(t *testing.T) {
	m := mesh.MustNew(8, 8)
	p := Params{N: 12, WMin: 100, WMax: 900}
	for _, name := range []string{"uniform", "tornado", "hotspot", "stencil"} {
		d1, err := Bind(name, m, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d2, err := Bind(name, m, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := d1.Draw(7, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		aCopy := append(comm.Set(nil), a...)
		b, err := d2.Draw(7, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(aCopy, b) {
			t.Errorf("%s: same seed, different draws", name)
		}
		c, err := d1.Draw(8, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reflect.DeepEqual(aCopy, c) {
			t.Errorf("%s: different seeds, identical draws", name)
		}
	}
}

// A draw depends only on its seed, never on the drawer's history — a
// drawer that has served other seeds must reproduce a fresh drawer's
// output exactly (the pooled engine hands trials to drawers in
// scheduler-dependent order).
func TestDrawHistoryIndependent(t *testing.T) {
	m := mesh.MustNew(8, 8)
	p := Params{N: 5, WMin: 100, WMax: 900}
	for _, name := range []string{"uniform", "hotspot", "tornado"} {
		warm, err := Bind(name, m, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for seed := int64(1); seed <= 6; seed++ {
			if _, err := warm.Draw(seed, nil); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		fresh, err := Bind(name, m, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := warm.Draw(777, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gotCopy := append(comm.Set(nil), got...)
		want, err := fresh.Draw(777, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(gotCopy, want) {
			t.Errorf("%s: draw depends on drawer history:\nwarm  %v\nfresh %v", name, gotCopy, want)
		}
	}
}

// Hotspot rejects nonsensical source counts at bind time.
func TestHotspotBindValidation(t *testing.T) {
	m := mesh.MustNew(8, 8)
	if _, err := Bind("hotspot", m, Params{N: -5, Rate: 300}); err == nil {
		t.Error("negative hotspot source count accepted")
	}
	if _, err := Bind("hotspot", m, Params{N: 64, Rate: 300}); err == nil {
		t.Error("more hotspot sources than non-sink cores accepted")
	}
}

// Drawers reuse the destination buffer across draws.
func TestDrawReusesBuffer(t *testing.T) {
	m := mesh.MustNew(8, 8)
	d, err := Bind("uniform", m, Params{N: 20, WMin: 100, WMax: 500})
	if err != nil {
		t.Fatal(err)
	}
	set, err := d.Draw(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ptr := &set[0]
	set2, err := d.Draw(2, set)
	if err != nil {
		t.Fatal(err)
	}
	if &set2[0] != ptr {
		t.Error("Draw did not reuse the destination buffer")
	}
}

// The bit-defined patterns on a non-power-of-two mesh surface the typed
// workload error with a clear message.
func TestPatternSizeErrorSurfaced(t *testing.T) {
	m := mesh.MustNew(6, 6)
	for _, name := range []string{"bitcomp", "bitrev", "shuffle"} {
		_, err := Bind(name, m, Params{Rate: 500})
		if err == nil {
			t.Fatalf("%s on 6x6 accepted", name)
		}
		var pse *workload.PatternSizeError
		if !errors.As(err, &pse) {
			t.Errorf("%s on 6x6: error %v is not a *workload.PatternSizeError", name, err)
		}
		if pse != nil && pse.Cores != 36 {
			t.Errorf("%s: PatternSizeError.Cores = %d, want 36", name, pse.Cores)
		}
		if !strings.Contains(err.Error(), "power-of-two") {
			t.Errorf("%s: message %q does not explain the constraint", name, err)
		}
	}
	// Power-of-two meshes bind fine, including the 16x16 scale-up.
	for _, geom := range [][2]int{{8, 8}, {16, 16}, {4, 8}} {
		m := mesh.MustNew(geom[0], geom[1])
		if _, err := Bind("bitrev", m, Params{Rate: 500}); err != nil {
			t.Errorf("bitrev on %dx%d: %v", geom[0], geom[1], err)
		}
	}
}

// 1×N edge meshes: power-of-two row meshes support the bit patterns;
// degenerate cases fail loudly instead of panicking or producing empty
// sweeps.
func TestEdgeMeshes(t *testing.T) {
	row := mesh.MustNew(1, 8)
	for _, name := range []string{"bitcomp", "bitrev", "shuffle", "tornado", "neighbor"} {
		d, err := Bind(name, row, Params{Rate: 300})
		if err != nil {
			t.Errorf("%s on 1x8: %v", name, err)
			continue
		}
		set, err := d.Draw(1, nil)
		if err != nil {
			t.Errorf("%s on 1x8: %v", name, err)
			continue
		}
		if err := set.Validate(row); err != nil {
			t.Errorf("%s on 1x8: invalid set: %v", name, err)
		}
	}
	// A 1-core mesh has no traffic to generate: every source must error at
	// bind, not panic (the shuffle rotation degenerates to the identity).
	one := mesh.MustNew(1, 1)
	for _, name := range []string{"uniform", "bitcomp", "bitrev", "shuffle", "tornado",
		"neighbor", "transpose", "stencil", "pipeline", "hotspot", "trace"} {
		if _, err := Bind(name, one, Params{N: 4, Rate: 300, WMin: 100, WMax: 200}); err == nil {
			t.Errorf("%s on 1x1 bound without error", name)
		}
	}
	// Tornado on a single column degenerates to no traffic; the bind says so.
	if _, err := Bind("tornado", mesh.MustNew(8, 1), Params{Rate: 300}); err == nil {
		t.Error("tornado on 8x1 (no traffic) bound without error")
	}
	// Transpose needs a square mesh.
	if _, err := Bind("transpose", mesh.MustNew(4, 8), Params{Rate: 300}); err == nil {
		t.Error("transpose on 4x8 bound without error")
	}
}

// Every generated set is structurally valid on its mesh, across sources
// and both acceptance mesh sizes.
func TestAllSourcesProduceValidSets(t *testing.T) {
	for _, geom := range [][2]int{{8, 8}, {16, 16}} {
		m := mesh.MustNew(geom[0], geom[1])
		for _, name := range Sources() {
			if name == "trace" {
				continue // exercised separately (runs a full simulation)
			}
			d, err := Bind(name, m, Params{N: 10, WMin: 100, WMax: 500})
			if err != nil {
				t.Errorf("%s on %v: %v", name, m, err)
				continue
			}
			set, err := d.Draw(3, nil)
			if err != nil {
				t.Errorf("%s on %v: %v", name, m, err)
				continue
			}
			if len(set) == 0 {
				t.Errorf("%s on %v: empty set", name, m)
			}
			if err := set.Validate(m); err != nil {
				t.Errorf("%s on %v: %v", name, m, err)
			}
		}
	}
}

// The trace source replays simulator observations: deterministic per
// seed, rates bounded by the offered load.
func TestTraceSource(t *testing.T) {
	m := mesh.MustNew(8, 8)
	p := Params{N: 8, WMin: 100, WMax: 600}
	d, err := Bind("trace", m, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Draw(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("trace draw produced no traffic")
	}
	if err := a.Validate(m); err != nil {
		t.Fatal(err)
	}
	for _, c := range a {
		// Goodput can exceed the offered rate only by bounded packet
		// quantization over the measurement window.
		if c.Rate <= 0 || c.Rate > p.WMax*1.5 {
			t.Errorf("traced rate %g outside plausible range", c.Rate)
		}
	}
	aCopy := append(comm.Set(nil), a...)
	b, err := d.Draw(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aCopy, b) {
		t.Error("trace source is not deterministic in the seed")
	}
}

func TestParseMesh(t *testing.T) {
	for _, tc := range []struct {
		in   string
		p, q int
	}{{"8x8", 8, 8}, {"16X16", 16, 16}, {" 4 x 12 ", 4, 12}, {"1x8", 1, 8}} {
		p, q, err := ParseMesh(tc.in)
		if err != nil || p != tc.p || q != tc.q {
			t.Errorf("ParseMesh(%q) = %d,%d,%v, want %d,%d", tc.in, p, q, err, tc.p, tc.q)
		}
	}
	for _, bad := range []string{"", "8", "x8", "8x", "0x8", "-1x4", "8x8x8", "axb"} {
		if _, _, err := ParseMesh(bad); err == nil {
			t.Errorf("ParseMesh(%q) accepted", bad)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	sp := Spec{
		ID: "tornado16", Title: "tornado sweep", XLabel: "rate",
		Mesh: "16x16", Source: "tornado",
		Params: Params{WMin: 100, WMax: 900, WBand: 0.2},
		Axis:   AxisRate, Points: []float64{100, 300, 500},
		Trials: 7, Seed: 42, Policies: []string{"XY", "PR"}, Power: "continuous",
	}
	var buf bytes.Buffer
	if err := sp.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sp) {
		t.Errorf("round trip changed the spec:\n got %+v\nwant %+v", got, sp)
	}
}

func TestDecodeJSONRejectsBadSpecs(t *testing.T) {
	for name, raw := range map[string]string{
		"unknown field":  `{"source": "uniform", "typo": 3}`,
		"unknown source": `{"source": "nope"}`,
		"unknown axis":   `{"axis": "frequency", "points": [1]}`,
		"axis no points": `{"axis": "n"}`,
		"ignored axis":   `{"source": "uniform", "axis": "rate", "points": [100, 200]}`,
		"ignored axis 2": `{"source": "tornado", "axis": "length", "points": [2, 4]}`,
		"bad mesh":       `{"mesh": "8by8"}`,
		"bad power":      `{"power": "cubic"}`,
		"neg trials":     `{"trials": -1}`,
	} {
		if _, err := DecodeJSON(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: spec %s accepted", name, raw)
		}
	}
}

// At applies exactly one axis per point and leaves the base params alone.
func TestSpecAt(t *testing.T) {
	sp := Spec{Params: Params{N: 10, WMin: 100, WMax: 500}, Axis: AxisN}
	if got := sp.At(40).N; got != 40 {
		t.Errorf("AxisN: N = %d", got)
	}
	sp.Axis = AxisLength
	if got := sp.At(6).Length; got != 6 {
		t.Errorf("AxisLength: Length = %d", got)
	}
	sp.Axis = AxisRate
	if got := sp.At(250).Rate; got != 250 {
		t.Errorf("AxisRate: Rate = %g", got)
	}
	sp.Axis = AxisWeight
	p := sp.At(1000)
	if p.WMin != 1000*(1-DefaultWBand) || p.WMax != 1000*(1+DefaultWBand) {
		t.Errorf("AxisWeight: band [%g, %g]", p.WMin, p.WMax)
	}
	sp.Params.WBand = 0.5
	p = sp.At(1000)
	if p.WMin != 500 || p.WMax != 1500 {
		t.Errorf("AxisWeight with WBand 0.5: band [%g, %g]", p.WMin, p.WMax)
	}
	// A base Rate would pin every weight point to one value (Rate wins
	// over weight draws in the sources); the weight axis clears it.
	sp.Params.Rate = 400
	if p = sp.At(1000); p.Rate != 0 {
		t.Errorf("AxisWeight left Rate = %g, pinning the sweep", p.Rate)
	}
}

// Points without an axis are rejected: they would re-sample one
// configuration under different labels.
func TestSpecPointsWithoutAxis(t *testing.T) {
	sp := Spec{Source: "uniform", Params: Params{N: 5, WMin: 100, WMax: 500}, Points: []float64{10, 20}}
	if err := sp.Validate(); err == nil {
		t.Error("points without an axis accepted")
	}
}

// Specs marshal compactly: zero fields are omitted.
func TestSpecOmitsZeroFields(t *testing.T) {
	data, err := json.Marshal(Spec{Source: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != `{"source":"uniform"}` {
		t.Errorf("Marshal = %s", got)
	}
}
