package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"strings"

	"repro/internal/topo"
)

// Hash returns the spec's canonical content hash: a hex SHA-256 over a
// fixed-order binary encoding of every field, including the nested
// Params. Two specs that describe the same sweep hash equal however they
// were written — JSON field order never matters (decoding already
// canonicalizes it), and the encoding normalizes the spellings that
// cannot change a single output byte: the mesh defaults to 8x8 and
// parses case-insensitively ("16X16" ≡ "16x16"), the topology field is
// canonicalized through topo.Parse (generator order, case), source and
// policy names fold to the registry's case-insensitive key, and the
// empty power model is the "kim-horowitz" default. Everything else —
// captions included, because they appear verbatim in sink output — is
// hashed as-is, so any semantic change to the spec changes the hash.
//
// The hash is the content-addressed identity of a sweep: the serve
// layer keys its completed-sweep cache on it, and callers may use it to
// deduplicate or name sweep artifacts.
func (s Spec) Hash() string {
	h := sha256.New()
	hashString(h, s.ID)
	hashString(h, s.Title)
	hashString(h, s.XLabel)
	if p, q, err := s.MeshDims(); err == nil {
		hashInt(h, int64(p))
		hashInt(h, int64(q))
	} else {
		// An unparsable mesh never runs; hash the raw string so broken
		// specs still have a stable identity.
		hashString(h, s.Mesh)
	}
	tspec := s.Topology
	if tspec != "" {
		if t, err := topo.Parse(tspec); err == nil {
			// Canonicalize resolvable topology spellings
			// ("circulant:27:9,3,1" ≡ "circulant:27:1,3,9"); an
			// unresolvable one never runs, hash it raw.
			tspec = t.Spec()
		}
	}
	hashString(h, tspec)
	hashString(h, strings.ToUpper(s.SourceName()))
	hashFloat(h, s.Params.WMin)
	hashFloat(h, s.Params.WMax)
	hashFloat(h, s.Params.WBand)
	hashFloat(h, s.Params.Rate)
	hashInt(h, int64(s.Params.N))
	hashInt(h, int64(s.Params.Length))
	hashString(h, s.Axis)
	hashInt(h, int64(len(s.Points)))
	for _, x := range s.Points {
		hashFloat(h, x)
	}
	hashInt(h, int64(s.Trials))
	hashInt(h, s.Seed)
	hashInt(h, int64(len(s.Policies)))
	for _, p := range s.Policies {
		hashString(h, strings.ToUpper(p))
	}
	pow := s.Power
	if pow == "" {
		pow = "kim-horowitz"
	}
	hashString(h, pow)
	return hex.EncodeToString(h.Sum(nil))
}

// hashString writes a length-prefixed string, so adjacent fields can
// never alias ("ab"+"c" vs "a"+"bc").
func hashString(h hash.Hash, s string) {
	hashInt(h, int64(len(s)))
	h.Write([]byte(s))
}

func hashInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func hashFloat(h hash.Hash, v float64) {
	hashInt(h, int64(math.Float64bits(v)))
}
