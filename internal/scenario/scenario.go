// Package scenario is the declarative workload layer of the library: every
// way of producing a communication set on a mesh — the Section 6 random
// families, the classic permutation patterns, application-shaped traffic
// (hotspots, transposes, pipelines, stencils) and trace-driven sets
// replayed out of the discrete-event NoC simulator — presents itself as a
// Source and self-registers into a case-insensitive registry, mirroring
// what internal/solve does for routing policies.
//
// A Source is bound to a mesh and a Params bundle once (Bind validates
// loudly: a bit-defined permutation on a 6x6 mesh fails at bind time with
// a typed error, not mid-sweep), yielding a Drawer whose Draw(seed) call
// regenerates the set deterministically — the reseedable, buffer-reusing
// contract the pooled experiment engine runs per trial.
//
// On top of the registry sits Spec (spec.go): a fully declarative sweep
// description (mesh, source, params, axis, points, trials, seeds,
// policies, power model) that round-trips through JSON, so new scenarios
// need a spec file rather than new Go code.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/comm"
	"repro/internal/mesh"
)

// Params is the declarative knob bundle every source draws from. Sources
// consume the fields that concern them and reject (at Bind time)
// combinations they cannot honor. The zero value is not generally
// runnable — most sources need a rate or a weight range.
type Params struct {
	// N is the number of communications (random families), the number of
	// hotspot sources, or the number of pipeline stages; 0 means the
	// source's documented default.
	N int `json:"n,omitempty"`
	// WMin and WMax bound the uniform weight distribution (Mb/s). For the
	// deterministic pattern sources they give each flow an independently
	// drawn random weight when Rate is zero.
	WMin float64 `json:"wmin,omitempty"`
	WMax float64 `json:"wmax,omitempty"`
	// WBand is the relative half-width used by the "weight" sweep axis:
	// a swept average a becomes U[a·(1−WBand), a·(1+WBand)]. 0 means the
	// Section 6.2 default of 0.10.
	WBand float64 `json:"wband,omitempty"`
	// Length, when non-zero, forces every communication of the random
	// family to that exact Manhattan length (the Section 6.3 sweeps).
	Length int `json:"length,omitempty"`
	// Rate is the fixed per-flow bandwidth (Mb/s) of the deterministic
	// pattern and application sources; 0 falls back to WMin/WMax draws.
	Rate float64 `json:"rate,omitempty"`
}

// rated reports whether the params carry any usable weight information.
func (p Params) rated() bool { return p.Rate > 0 || p.WMax > 0 }

// validateWeights checks the weight configuration shared by every source.
func (p Params) validateWeights() error {
	if p.Rate < 0 {
		return fmt.Errorf("scenario: negative rate %g", p.Rate)
	}
	if p.WMin < 0 || p.WMax < p.WMin {
		return fmt.Errorf("scenario: invalid weight range [%g, %g]", p.WMin, p.WMax)
	}
	return nil
}

// Drawer regenerates communication sets for one bound (mesh, params)
// pair. Draw is deterministic in seed and reuses dst's storage, so the
// pooled engine can call it once per trial without allocating; a Drawer
// must not be shared between goroutines.
type Drawer interface {
	Draw(seed int64, dst comm.Set) (comm.Set, error)
}

// Source is one named way of generating communication sets. Bind
// validates the params against the mesh — all structural errors (pattern
// size constraints, out-of-mesh blocks, missing rates) surface here — and
// returns a per-goroutine Drawer.
type Source interface {
	// Name is the canonical source name ("uniform", "tornado", ...).
	Name() string
	// Axes lists the sweep axes the source honors. Spec validation
	// rejects a sweep over a parameter the source would silently ignore.
	Axes() []string
	Bind(m *mesh.Mesh, p Params) (Drawer, error)
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Source)
)

// Register adds a source to the registry under its canonical name.
// Registration is case-insensitive and panics on duplicates — two sources
// claiming one name is a programming error that must fail at init time.
func Register(s Source) {
	key := strings.ToUpper(s.Name())
	mu.Lock()
	defer mu.Unlock()
	if prev, ok := registry[key]; ok {
		panic(fmt.Sprintf("scenario: duplicate registration of source %q (%T and %T)", s.Name(), prev, s))
	}
	registry[key] = s
}

// Lookup resolves a source name case-insensitively.
func Lookup(name string) (Source, error) {
	mu.RLock()
	s, ok := registry[strings.ToUpper(name)]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scenario: unknown source %q (have %s)", name, strings.Join(Sources(), ", "))
	}
	return s, nil
}

// Sources returns every registered canonical source name, sorted.
func Sources() []string {
	mu.RLock()
	names := make([]string, 0, len(registry))
	for _, s := range registry {
		names = append(names, s.Name())
	}
	mu.RUnlock()
	sort.Strings(names)
	return names
}

// Bind is the one-shot convenience: look the source up and bind it.
func Bind(source string, m *mesh.Mesh, p Params) (Drawer, error) {
	s, err := Lookup(source)
	if err != nil {
		return nil, err
	}
	d, err := s.Bind(m, p)
	if err != nil {
		return nil, fmt.Errorf("scenario: source %q on %v: %w", s.Name(), m, err)
	}
	return d, nil
}
