package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/mesh"
	"repro/internal/topo"

	// Register the non-mesh topology families with topo.Parse, so any
	// importer of the scenario layer can validate and resolve every
	// spec's topology field.
	_ "repro/internal/topo/circulant"
	_ "repro/internal/topo/torus"
)

// Sweep axes: the parameter a Spec varies across its points.
const (
	// AxisN sweeps the communication count (Figures 7a–c).
	AxisN = "n"
	// AxisWeight sweeps the average weight; each point x becomes the band
	// U[x·(1−WBand), x·(1+WBand)] (Figures 8a–c).
	AxisWeight = "weight"
	// AxisLength sweeps the exact Manhattan length (Figures 9a–c).
	AxisLength = "length"
	// AxisRate sweeps the fixed per-flow rate of the pattern sources.
	AxisRate = "rate"
)

// DefaultWBand is the relative half-width of the weight band swept by
// AxisWeight when Params.WBand is zero — the Section 6.2 default.
const DefaultWBand = 0.10

// Spec declares a complete sweep: which source draws communication sets
// on which mesh, which parameter varies over which points, how many
// seeded trials evaluate each point, and which policies compete under
// which power model. A Spec round-trips through JSON, so scenarios ship
// as data instead of Go code.
type Spec struct {
	// ID names the sweep (output files, canned-figure aliases).
	ID string `json:"id,omitempty"`
	// Title and XLabel caption rendered tables; both have sensible
	// defaults derived from the spec.
	Title  string `json:"title,omitempty"`
	XLabel string `json:"xlabel,omitempty"`
	// Mesh is "PxQ" (e.g. "8x8", "16x16"); empty means 8x8, the paper's
	// platform.
	Mesh string `json:"mesh,omitempty"`
	// Topology selects a non-mesh platform by topo.Parse spec string
	// (e.g. "torus:8x8", "circulant:27:1,3,9"). Empty means the mesh
	// in Mesh. Mesh platforms stay on the Mesh field — a "mesh:PxQ"
	// topology string is rejected so every sweep has one canonical
	// spelling (and one cache hash).
	Topology string `json:"topology,omitempty"`
	// Source is the registered scenario source; empty means "uniform".
	Source string `json:"source,omitempty"`
	// Params is the base parameter bundle; the swept axis overrides one
	// field per point.
	Params Params `json:"params,omitzero"`
	// Axis names the swept parameter (AxisN, AxisWeight, AxisLength,
	// AxisRate); empty runs a single point at the base params.
	Axis string `json:"axis,omitempty"`
	// Points are the x-values of the sweep.
	Points []float64 `json:"points,omitempty"`
	// Trials is the number of seeded instances per point (0 = the
	// engine's default).
	Trials int `json:"trials,omitempty"`
	// Seed derives every per-trial RNG stream.
	Seed int64 `json:"seed,omitempty"`
	// Policies lists the competing registered routing policies; empty
	// means the paper's heuristic line-up.
	Policies []string `json:"policies,omitempty"`
	// Power selects the link power model: "" or "kim-horowitz" for the
	// paper's discrete DVFS model, "continuous" for the
	// continuous-frequency ablation.
	Power string `json:"power,omitempty"`
}

// ParseMesh parses a "PxQ" mesh geometry ("8x8", "16X16", "4x12").
func ParseMesh(s string) (p, q int, err error) {
	lo := strings.ToLower(strings.TrimSpace(s))
	a, b, ok := strings.Cut(lo, "x")
	if ok {
		p, err = strconv.Atoi(strings.TrimSpace(a))
		if err == nil {
			q, err = strconv.Atoi(strings.TrimSpace(b))
		}
	}
	if !ok || err != nil || p < 1 || q < 1 {
		return 0, 0, fmt.Errorf("scenario: invalid mesh geometry %q (want PxQ, e.g. 8x8)", s)
	}
	return p, q, nil
}

// MeshDims returns the spec's mesh dimensions (default 8×8).
func (s Spec) MeshDims() (p, q int, err error) {
	if s.Mesh == "" {
		return 8, 8, nil
	}
	return ParseMesh(s.Mesh)
}

// TopologyOf resolves the spec's platform: the Topology spec string
// when set, else the mesh of MeshDims.
func (s Spec) TopologyOf() (topo.Topology, error) {
	if s.Topology == "" {
		p, q, err := s.MeshDims()
		if err != nil {
			return nil, err
		}
		return mesh.MustNew(p, q), nil
	}
	return topo.Parse(s.Topology)
}

// SourceName returns the spec's source (default "uniform").
func (s Spec) SourceName() string {
	if s.Source == "" {
		return "uniform"
	}
	return s.Source
}

// XValues returns the sweep's x-positions: Points, or a single zero
// point when the spec declares no axis.
func (s Spec) XValues() []float64 {
	if len(s.Points) == 0 {
		return []float64{0}
	}
	return s.Points
}

// At returns the params of the point at x: the base params with the
// swept axis applied.
func (s Spec) At(x float64) Params {
	p := s.Params
	switch s.Axis {
	case AxisN:
		p.N = int(x)
	case AxisLength:
		p.Length = int(x)
	case AxisRate:
		p.Rate = x
	case AxisWeight:
		band := p.WBand
		if band == 0 {
			band = DefaultWBand
		}
		p.WMin, p.WMax = x*(1-band), x*(1+band)
		// A fixed Rate takes precedence over weight draws in every
		// source; sweeping the weight axis means sweeping the band, so
		// the base Rate must not pin all points to one value.
		p.Rate = 0
	}
	return p
}

// DefaultXLabel returns the axis caption used when XLabel is empty.
func (s Spec) DefaultXLabel() string {
	switch s.Axis {
	case AxisN:
		return "number of communications"
	case AxisWeight:
		return "average weight (Mb/s)"
	case AxisLength:
		return "average length (hops)"
	case AxisRate:
		return "per-flow rate (Mb/s)"
	}
	return "x"
}

// Validate checks the spec's declarative shape: mesh geometry, a
// registered source, a known axis with points, sane counts. Param/mesh
// compatibility (pattern size constraints, weight ranges) is checked by
// Source.Bind when the sweep starts.
func (s Spec) Validate() error {
	if _, _, err := s.MeshDims(); err != nil {
		return err
	}
	if s.Topology != "" {
		if s.Mesh != "" {
			return fmt.Errorf("scenario: both mesh %q and topology %q set — a mesh platform uses the mesh field alone", s.Mesh, s.Topology)
		}
		t, err := topo.Parse(s.Topology)
		if err != nil {
			return err
		}
		if t.Name() == "mesh" {
			return fmt.Errorf("scenario: topology %q is a mesh — spell it in the mesh field", s.Topology)
		}
		if s.Axis == AxisLength || s.Params.Length != 0 {
			return fmt.Errorf("scenario: target-length draws are a Manhattan-mesh notion and are not supported on %s", t.Spec())
		}
	}
	src, err := Lookup(s.SourceName())
	if err != nil {
		return err
	}
	switch s.Axis {
	case "", AxisN, AxisWeight, AxisLength, AxisRate:
	default:
		return fmt.Errorf("scenario: unknown sweep axis %q (want %s, %s, %s or %s)",
			s.Axis, AxisN, AxisWeight, AxisLength, AxisRate)
	}
	if s.Axis != "" {
		supported := false
		for _, a := range src.Axes() {
			if a == s.Axis {
				supported = true
				break
			}
		}
		if !supported {
			return fmt.Errorf("scenario: source %q ignores the %q axis (it honors: %s) — the sweep would evaluate identical points",
				src.Name(), s.Axis, strings.Join(src.Axes(), ", "))
		}
	}
	if s.Axis != "" && len(s.Points) == 0 {
		return fmt.Errorf("scenario: axis %q declared with no points", s.Axis)
	}
	if s.Axis == "" && len(s.Points) > 0 {
		return fmt.Errorf("scenario: %d points declared with no sweep axis — the rows would re-sample one configuration under different labels", len(s.Points))
	}
	if s.Trials < 0 {
		return fmt.Errorf("scenario: negative trials %d", s.Trials)
	}
	switch s.Power {
	case "", "kim-horowitz", "continuous":
	default:
		return fmt.Errorf("scenario: unknown power model %q (want kim-horowitz or continuous)", s.Power)
	}
	return nil
}

// EncodeJSON writes the spec as indented JSON.
func (s Spec) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeJSON reads one spec from JSON, rejecting unknown fields so typos
// in hand-written spec files fail loudly.
func DecodeJSON(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads and validates a spec file.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	s, err := DecodeJSON(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
