package heur

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/power"
)

// SA produces valid 1-MP routings and never ends worse than its seed
// (the best of TB/XYI/PR), thanks to the final hill-climbing sweep over
// an energy that upper-bounds feasible power.
func TestSANeverWorseThanSeed(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	for seed := int64(0); seed < 5; seed++ {
		set := randomSet(m, 600+seed, 25, 100, 2000)
		in := Instance{Mesh: m, Model: model, Comms: set}
		r, err := SA{Seed: 7, Iters: 2000}.Route(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(set, 1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base, err := Solve(Best{Heuristics: []Heuristic{TB{}, XYI{}, PR{}}}, in)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := Solve(SA{Seed: 7, Iters: 2000}, in)
		if err != nil {
			t.Fatal(err)
		}
		if base.Feasible && !sa.Feasible {
			t.Fatalf("seed %d: SA broke feasibility", seed)
		}
		if base.Feasible && sa.Feasible && sa.Power.Total() > base.Power.Total()+1e-6 {
			t.Fatalf("seed %d: SA power %g worse than seed %g",
				seed, sa.Power.Total(), base.Power.Total())
		}
	}
}

func TestSADeterministic(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set := randomSet(m, 5, 20, 100, 2000)
	in := Instance{Mesh: m, Model: power.KimHorowitz(), Comms: set}
	a, err := SA{Seed: 3, Iters: 1000}.Route(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SA{Seed: 3, Iters: 1000}.Route(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Flows {
		if pathKey(a.Flows[i].Path) != pathKey(b.Flows[i].Path) {
			t.Fatal("same seed produced different routings")
		}
	}
}

func TestSAFindsFigure2Optimum(t *testing.T) {
	in := figure2Instance()
	res, err := Solve(SA{}, in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Power.Total() != 56 {
		t.Fatalf("SA on Figure 2: power %g (feasible=%v), want 56", res.Power.Total(), res.Feasible)
	}
}

func TestSAEmptyInstance(t *testing.T) {
	m := mesh.MustNew(4, 4)
	in := Instance{Mesh: m, Model: power.KimHorowitz()}
	r, err := SA{}.Route(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Flows) != 0 {
		t.Fatal("flows from empty instance")
	}
}
