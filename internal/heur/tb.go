package heur

import (
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/route"
)

var inf = math.Inf(1)

// TB is the Two-Bend heuristic of Section 5.3: communications are
// processed by decreasing weight, and for each one every Manhattan path
// with at most two bends is tried — there are |Δu|+|Δv| of them — keeping
// the path that yields the lowest power.
type TB struct {
	Order comm.Order
}

// Name returns "TB".
func (TB) Name() string { return "TB" }

// Route implements Heuristic.
func (h TB) Route(in Instance) (route.Routing, error) {
	loads := route.NewLoadTracker(in.Mesh)
	paths := make(map[int]route.Path, len(in.Comms))
	for _, c := range ordered(in.Comms, h.Order) {
		var best route.Path
		bestDelta := inf
		for _, p := range TwoBendPaths(c.Src, c.Dst) {
			delta := 0.0
			for _, l := range p {
				delta += loads.DeltaPower(in.Model, l, c.Rate)
			}
			if best == nil || delta < bestDelta {
				best, bestDelta = p, delta
			}
		}
		loads.AddPath(best, c.Rate)
		paths[c.ID] = best
	}
	return singlePathRouting(in.Mesh, in.Comms, paths), nil
}

// TwoBendPaths enumerates every Manhattan path from src to dst with at
// most two bends. For a communication spanning Δu rows and Δv columns
// there are Δu+Δv such paths (Section 5.3): the Δv+1 horizontal-vertical-
// horizontal paths parameterized by the column of the vertical segment
// (whose extremes are the XY and YX paths), plus the Δu−1 vertical-
// horizontal-vertical paths with an interior crossing row. Straight-line
// communications have the single straight path.
func TwoBendPaths(src, dst mesh.Coord) []route.Path {
	du, dv := dst.U-src.U, dst.V-src.V
	if du == 0 || dv == 0 {
		return []route.Path{route.XY(src, dst)}
	}
	var out []route.Path
	sv := sign(dv)
	for col := src.V; ; col += sv {
		// H to (src.U, col), V to (dst.U, col), H to dst.
		p := append(route.Path{}, horiz(src, col)...)
		p = append(p, vert(mesh.Coord{U: src.U, V: col}, dst.U)...)
		p = append(p, horiz(mesh.Coord{U: dst.U, V: col}, dst.V)...)
		out = append(out, p)
		if col == dst.V {
			break
		}
	}
	su := sign(du)
	for row := src.U + su; row != dst.U; row += su {
		// V to (row, src.V), H to (row, dst.V), V to dst.
		p := append(route.Path{}, vert(src, row)...)
		p = append(p, horiz(mesh.Coord{U: row, V: src.V}, dst.V)...)
		p = append(p, vert(mesh.Coord{U: row, V: dst.V}, dst.U)...)
		out = append(out, p)
	}
	return out
}

// horiz returns the straight horizontal path from c to column col.
func horiz(c mesh.Coord, col int) route.Path {
	return route.XY(c, mesh.Coord{U: c.U, V: col})
}

// vert returns the straight vertical path from c to row row.
func vert(c mesh.Coord, row int) route.Path {
	return route.XY(c, mesh.Coord{U: row, V: c.V})
}

func sign(x int) int {
	if x < 0 {
		return -1
	}
	return 1
}

// twoBendCount returns the number of two-bend paths, |Δu|+|Δv|, used by
// tests to cross-check the enumeration against Section 5.3.
func twoBendCount(c comm.Comm) int {
	du := abs(c.Dst.U - c.Src.U)
	dv := abs(c.Dst.V - c.Src.V)
	if du == 0 || dv == 0 {
		return 1
	}
	return du + dv
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
