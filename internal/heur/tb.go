package heur

import (
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/route"
)

var inf = math.Inf(1)

// TB is the Two-Bend heuristic of Section 5.3: communications are
// processed by decreasing weight, and for each one every Manhattan path
// with at most two bends is tried — there are |Δu|+|Δv| of them — keeping
// the path that yields the lowest power.
type TB struct {
	Order comm.Order
}

// Name returns "TB".
func (TB) Name() string { return "TB" }

// Route implements Heuristic.
func (h TB) Route(in Instance) (route.Routing, error) {
	return h.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter.
func (h TB) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	ps := prepare(in, ws)
	loads := ws.Tracker()
	sc := scratchOf(ws)
	ev := evaluatorFor(ws, in.Model)
	for _, c := range sc.orderedInto(in.Comms, h.Order) {
		bestDelta := inf
		for k, n := 0, twoBendCountOf(c.Src, c.Dst); k < n; k++ {
			sc.cand = appendNthTwoBend(sc.cand[:0], c.Src, c.Dst, k)
			delta := 0.0
			for _, l := range sc.cand {
				delta += loads.DeltaPowerEv(ev, l, c.Rate)
			}
			if k == 0 || delta < bestDelta {
				sc.cand, sc.best = sc.best, sc.cand
				bestDelta = delta
			}
		}
		loads.AddPath(sc.best, c.Rate)
		ps.SetCopy(c.ID, sc.best)
	}
	return singlePathRouting(in, ws), nil
}

// TwoBendPaths enumerates every Manhattan path from src to dst with at
// most two bends. For a communication spanning Δu rows and Δv columns
// there are Δu+Δv such paths (Section 5.3): the Δv+1 horizontal-vertical-
// horizontal paths parameterized by the column of the vertical segment
// (whose extremes are the XY and YX paths), plus the Δu−1 vertical-
// horizontal-vertical paths with an interior crossing row. Straight-line
// communications have the single straight path.
func TwoBendPaths(src, dst mesh.Coord) []route.Path {
	out := make([]route.Path, twoBendCountOf(src, dst))
	for k := range out {
		out[k] = appendNthTwoBend(nil, src, dst, k)
	}
	return out
}

// twoBendCountOf returns the number of two-bend paths from src to dst:
// |Δu|+|Δv|, or 1 for straight lines (Section 5.3).
func twoBendCountOf(src, dst mesh.Coord) int {
	du := abs(dst.U - src.U)
	dv := abs(dst.V - src.V)
	if du == 0 || dv == 0 {
		return 1
	}
	return du + dv
}

// appendNthTwoBend appends the k-th path of the TwoBendPaths enumeration
// onto p (allocation-free given capacity): paths 0..|Δv| are the H-V-H
// paths by vertical-segment column from src.V to dst.V, paths |Δv|+1
// onward the V-H-V paths by interior crossing row.
func appendNthTwoBend(p route.Path, src, dst mesh.Coord, k int) route.Path {
	du, dv := dst.U-src.U, dst.V-src.V
	if du == 0 || dv == 0 {
		return route.AppendXY(p, src, dst)
	}
	if nh := abs(dv) + 1; k < nh {
		// H to (src.U, col), V to (dst.U, col), H to dst.
		col := src.V + k*sign(dv)
		p = appendHoriz(p, src, col)
		p = appendVert(p, mesh.Coord{U: src.U, V: col}, dst.U)
		return appendHoriz(p, mesh.Coord{U: dst.U, V: col}, dst.V)
	} else {
		// V to (row, src.V), H to (row, dst.V), V to dst.
		row := src.U + (k-nh+1)*sign(du)
		p = appendVert(p, src, row)
		p = appendHoriz(p, mesh.Coord{U: row, V: src.V}, dst.V)
		return appendVert(p, mesh.Coord{U: row, V: dst.V}, dst.U)
	}
}

// appendHoriz appends the straight horizontal path from c to column col.
func appendHoriz(p route.Path, c mesh.Coord, col int) route.Path {
	return route.AppendXY(p, c, mesh.Coord{U: c.U, V: col})
}

// appendVert appends the straight vertical path from c to row row.
func appendVert(p route.Path, c mesh.Coord, row int) route.Path {
	return route.AppendXY(p, c, mesh.Coord{U: row, V: c.V})
}

func sign(x int) int {
	if x < 0 {
		return -1
	}
	return 1
}

// twoBendCount returns the number of two-bend paths, |Δu|+|Δv|, used by
// tests to cross-check the enumeration against Section 5.3.
func twoBendCount(c comm.Comm) int {
	return twoBendCountOf(c.Src, c.Dst)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
