package heur

import (
	"slices"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/route"
)

// PR is the Path-Remover heuristic of Section 5.5. Every communication
// starts virtually pre-routed over all of its Manhattan paths (the ideal
// sharing of Figure 3: at each diagonal step the rate is spread equally
// over the admissible links). Links are then removed iteratively: take the
// most-loaded link and, among the communications still allowed to use it,
// the heaviest one whose path structure survives the removal; delete the
// link from that communication's allowed set, prune links that no longer
// lie on any remaining source-to-sink path (the paper's path-cleaning),
// and redistribute the communication's virtual shares over the surviving
// links. The process ends when every communication has exactly one path.
type PR struct {
	// StaticShares disables the share redistribution: a removed link's
	// virtual share simply disappears instead of concentrating on the
	// surviving links, so the tail of the removal process sees
	// increasingly optimistic loads. Exists only for the accounting
	// ablation (BenchmarkAblationPRShares); the paper's behaviour — and
	// the default — is redistribution.
	StaticShares bool
}

// Name returns "PR".
func (PR) Name() string { return "PR" }

// prState holds the shrinking path DAG of one communication.
type prState struct {
	c comm.Comm
	// steps[t] lists the link IDs still allowed at diagonal step t;
	// every listed link lies on at least one remaining src→dst path.
	// The inner lists come from the scratch's list pool and only ever
	// shrink after construction.
	steps [][]int
	// initSizes[t] is the original frontier width of step t, used as the
	// share denominator under the StaticShares ablation.
	initSizes []int
	static    bool
	multi     bool // true while more than one path remains
}

// prScratch is the pooled dense state of the PR heuristic: per-comm DAG
// states, a link-id-indexed comm index replacing the map[int][]int, the
// leveled coord bitsets of the reachability sweeps, and the removal-order
// and frontier buffers. One instance lives in each workspace under the
// "heur.pr" slot.
type prScratch struct {
	states []prState
	// lists pools the steps' link-id lists; nextList is the bump pointer.
	lists    [][]int
	nextList int
	// commsByLink[id] lists indices into states of communications whose
	// remaining DAG includes link id (dense over LinkIDSpace).
	commsByLink [][]int
	// mark is a generation-stamped link-id set (the "remaining links of
	// this communication" set of the index rebuild).
	mark    []int
	markGen int
	order   []int
	// touched/preLoads record the pre-removal DAG of the removing
	// communication — the superset of links whose load the removal can
	// change — and their loads, so the caller re-pushes only links whose
	// load actually moved into the hot-link heap.
	touched  []int
	preLoads []float64
	// linkFrom/linkTo are the dense coordinate indices of each link id's
	// endpoints (mesh.CoordIndex), precomputed so the reachability sweeps
	// skip the LinkByID reconstruction per probe.
	linkFrom, linkTo []int32
	// fwd and bwd are the per-level reachability bitsets of remove; the
	// first two fwd entries double as the ping-pong frontier of reachable.
	fwd, bwd []route.CoordSet
}

func prScratchOf(ws *route.Workspace) *prScratch {
	return ws.Scratch("heur.pr", func() any { return new(prScratch) }).(*prScratch)
}

// newList returns an empty pooled []int with the given capacity.
func (sc *prScratch) newList(capHint int) []int {
	if sc.nextList == len(sc.lists) {
		sc.lists = append(sc.lists, make([]int, 0, capHint))
	}
	l := sc.lists[sc.nextList]
	if cap(l) < capHint {
		l = make([]int, 0, capHint)
		sc.lists[sc.nextList] = l
	}
	sc.nextList++
	return l[:0]
}

// levels grows dst to n bitsets sized for m, each cleared, and returns it.
func levels(dst []route.CoordSet, n int, m *mesh.Mesh) []route.CoordSet {
	if cap(dst) < n {
		next := make([]route.CoordSet, n)
		copy(next, dst[:cap(dst)])
		dst = next
	}
	dst = dst[:n]
	for i := range dst {
		dst[i].Reset(m)
	}
	return dst
}

// Route implements Heuristic.
func (h PR) Route(in Instance) (route.Routing, error) {
	return h.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter.
func (h PR) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	m := in.Mesh
	ps := prepare(in, ws)
	loads := ws.Tracker()
	hsc := scratchOf(ws)
	sc := prScratchOf(ws)
	sc.nextList = 0
	if cap(sc.states) < len(in.Comms) {
		sc.states = make([]prState, len(in.Comms))
	}
	sc.states = sc.states[:len(in.Comms)]
	if len(sc.commsByLink) != m.LinkIDSpace() {
		sc.commsByLink = make([][]int, m.LinkIDSpace())
		sc.mark = make([]int, m.LinkIDSpace())
		sc.markGen = 0
		sc.linkFrom = make([]int32, m.LinkIDSpace())
		sc.linkTo = make([]int32, m.LinkIDSpace())
		for _, l := range m.Links() {
			id := m.LinkID(l)
			sc.linkFrom[id] = int32(m.CoordIndex(l.From))
			sc.linkTo[id] = int32(m.CoordIndex(l.To))
		}
	}
	for id := range sc.commsByLink {
		sc.commsByLink[id] = sc.commsByLink[id][:0]
	}

	for i, c := range in.Comms {
		st := &sc.states[i]
		st.c, st.static = c, h.StaticShares
		if cap(st.steps) < c.Length() {
			st.steps = make([][]int, c.Length())
		}
		st.steps = st.steps[:c.Length()]
		st.initSizes = st.initSizes[:0]
		for t := 0; t < c.Length(); t++ {
			hsc.frontier = m.AppendFrontierLinks(hsc.frontier[:0], c.Src, c.Dst, t)
			step := sc.newList(len(hsc.frontier))
			for _, l := range hsc.frontier {
				id := m.LinkID(l)
				step = append(step, id)
				sc.commsByLink[id] = append(sc.commsByLink[id], i)
			}
			st.steps[t] = step
			st.initSizes = append(st.initSizes, len(step))
		}
		st.refreshMulti()
		st.addShares(loads, +1)
	}

	// Link removal order: always attack the most-loaded link first. The
	// lazy heap replaces the historical full re-sort per removal — links
	// that yield no removal are set aside until the next applied removal,
	// links whose shares moved are re-pushed — and pops in exactly the
	// LinksByLoadDesc order, so the removal sequence is unchanged.
	hp := &hsc.heap
	hp.Init(loads)
	for anyMulti(sc.states) {
		id, ok := hp.Pop()
		if !ok {
			// Defensive: cannot happen, since any multi-path
			// communication always has a removable loaded link.
			break
		}
		if !removeFromHeaviest(m, loads, sc, id) {
			hp.SetAside(id)
			continue
		}
		for k, lid := range sc.touched {
			if loads.LoadID(lid) != sc.preLoads[k] {
				hp.Push(lid)
			}
		}
		// The popped link was removed from the heap: re-push it explicitly
		// in case its load round-tripped bit-exact through the share
		// redistribution.
		hp.Push(id)
		hp.Reactivate()
	}

	for i := range sc.states {
		st := &sc.states[i]
		p := ps.Acquire(st.c.ID, len(st.steps))
		for _, step := range st.steps {
			p = append(p, m.LinkByID(step[0]))
		}
		ps.Set(st.c.ID, p)
	}
	return singlePathRouting(in, ws), nil
}

// removeFromHeaviest tries to delete link id from the heaviest multi-path
// communication using it, per the Section 5.5 tie-walk ("unless this
// removal would break its last remaining path […] we consider removing the
// second communication, and so on"). It reports whether a removal was
// applied.
func removeFromHeaviest(m *mesh.Mesh, loads *route.LoadTracker, sc *prScratch, id int) bool {
	states := sc.states
	order := sc.order[:0]
	for _, i := range sc.commsByLink[id] {
		if states[i].multi {
			order = append(order, i)
		}
	}
	sc.order = order
	slices.SortFunc(order, func(a, b int) int {
		if states[a].c.Rate != states[b].c.Rate {
			if states[a].c.Rate > states[b].c.Rate {
				return -1
			}
			return 1
		}
		return states[a].c.ID - states[b].c.ID
	})
	for _, i := range order {
		st := &states[i]
		if !st.canRemove(m, sc, id) {
			continue
		}
		// Every load change of this removal hits links of the pre-removal
		// DAG (the post-removal DAG is a subset): record them, with their
		// loads, for the caller's heap re-push.
		sc.touched = sc.touched[:0]
		sc.preLoads = sc.preLoads[:0]
		for _, step := range st.steps {
			for _, lid := range step {
				sc.touched = append(sc.touched, lid)
				sc.preLoads = append(sc.preLoads, loads.LoadID(lid))
			}
		}
		st.addShares(loads, -1)
		st.remove(m, sc, id)
		st.addShares(loads, +1)
		// Rebuild the link→comm index entries for this communication:
		// mark the surviving links, then drop i from the pre-removal
		// links that no longer carry it (a subset of touched).
		sc.markGen++
		for _, step := range st.steps {
			for _, lid := range step {
				sc.mark[lid] = sc.markGen
			}
		}
		for _, lid := range sc.touched {
			if sc.mark[lid] == sc.markGen {
				continue
			}
			list := sc.commsByLink[lid]
			for j, ci := range list {
				if ci == i {
					sc.commsByLink[lid] = append(list[:j], list[j+1:]...)
					break
				}
			}
		}
		return true
	}
	return false
}

// addShares adds (sign=+1) or removes (sign=-1) the communication's
// virtual loads: rate/|steps[t]| on each allowed link of step t, or
// rate/initSizes[t] under the StaticShares ablation.
func (st *prState) addShares(loads *route.LoadTracker, sign float64) {
	for t, step := range st.steps {
		denom := float64(len(step))
		if st.static {
			denom = float64(st.initSizes[t])
		}
		share := sign * st.c.Rate / denom
		for _, id := range step {
			loads.AddID(id, share)
		}
	}
}

// refreshMulti recomputes whether more than one path remains.
func (st *prState) refreshMulti() {
	st.multi = false
	for _, step := range st.steps {
		if len(step) > 1 {
			st.multi = true
			return
		}
	}
}

// canRemove reports whether deleting link id keeps at least one src→dst
// path in the communication's DAG. Callers reach it through the
// link→comm incidence index, which lists exactly the communications whose
// DAG contains the link, so presence needs no re-scan.
func (st *prState) canRemove(m *mesh.Mesh, sc *prScratch, id int) bool {
	return st.reachable(m, sc, id)
}

// reachable runs a forward sweep through the step DAG skipping link id and
// reports whether the sink is still reached.
func (st *prState) reachable(m *mesh.Mesh, sc *prScratch, skip int) bool {
	if len(st.steps) == 0 {
		return true
	}
	sc.fwd = levels(sc.fwd, 2, m)
	frontier, next := &sc.fwd[0], &sc.fwd[1]
	frontier.Add(st.c.Src)
	for _, step := range st.steps {
		for _, lid := range step {
			if lid == skip {
				continue
			}
			if frontier.HasIdx(int(sc.linkFrom[lid])) {
				next.AddIdx(int(sc.linkTo[lid]))
			}
		}
		if next.Len() == 0 {
			return false
		}
		frontier, next = next, frontier
		next.Reset(m)
	}
	return frontier.Has(st.c.Dst)
}

// remove deletes link id and prunes every link no longer on a src→dst
// path (forward ∩ backward reachability), the paper's cleaning step.
func (st *prState) remove(m *mesh.Mesh, sc *prScratch, id int) {
	// Forward-reachable cores per diagonal level.
	sc.fwd = levels(sc.fwd, len(st.steps)+1, m)
	sc.fwd[0].Add(st.c.Src)
	for t, step := range st.steps {
		for _, lid := range step {
			if lid == id {
				continue
			}
			if sc.fwd[t].HasIdx(int(sc.linkFrom[lid])) {
				sc.fwd[t+1].AddIdx(int(sc.linkTo[lid]))
			}
		}
	}
	// Backward-reachable cores per level.
	sc.bwd = levels(sc.bwd, len(st.steps)+1, m)
	sc.bwd[len(st.steps)].Add(st.c.Dst)
	for t := len(st.steps) - 1; t >= 0; t-- {
		for _, lid := range st.steps[t] {
			if lid == id {
				continue
			}
			if sc.bwd[t+1].HasIdx(int(sc.linkTo[lid])) {
				sc.bwd[t].AddIdx(int(sc.linkFrom[lid]))
			}
		}
	}
	for t, step := range st.steps {
		kept := step[:0]
		for _, lid := range step {
			if lid == id {
				continue
			}
			if sc.fwd[t].HasIdx(int(sc.linkFrom[lid])) && sc.bwd[t+1].HasIdx(int(sc.linkTo[lid])) {
				kept = append(kept, lid)
			}
		}
		if len(kept) == 0 {
			panic("heur: PR pruned a communication to zero paths")
		}
		st.steps[t] = kept
	}
	st.refreshMulti()
}

func anyMulti(states []prState) bool {
	for i := range states {
		if states[i].multi {
			return true
		}
	}
	return false
}
