package heur

import (
	"sort"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/route"
)

// PR is the Path-Remover heuristic of Section 5.5. Every communication
// starts virtually pre-routed over all of its Manhattan paths (the ideal
// sharing of Figure 3: at each diagonal step the rate is spread equally
// over the admissible links). Links are then removed iteratively: take the
// most-loaded link and, among the communications still allowed to use it,
// the heaviest one whose path structure survives the removal; delete the
// link from that communication's allowed set, prune links that no longer
// lie on any remaining source-to-sink path (the paper's path-cleaning),
// and redistribute the communication's virtual shares over the surviving
// links. The process ends when every communication has exactly one path.
type PR struct {
	// StaticShares disables the share redistribution: a removed link's
	// virtual share simply disappears instead of concentrating on the
	// surviving links, so the tail of the removal process sees
	// increasingly optimistic loads. Exists only for the accounting
	// ablation (BenchmarkAblationPRShares); the paper's behaviour — and
	// the default — is redistribution.
	StaticShares bool
}

// Name returns "PR".
func (PR) Name() string { return "PR" }

// prState holds the shrinking path DAG of one communication.
type prState struct {
	c comm.Comm
	// steps[t] lists the link IDs still allowed at diagonal step t;
	// every listed link lies on at least one remaining src→dst path.
	steps [][]int
	// initSizes[t] is the original frontier width of step t, used as the
	// share denominator under the StaticShares ablation.
	initSizes []int
	static    bool
	multi     bool // true while more than one path remains
}

// Route implements Heuristic.
func (h PR) Route(in Instance) (route.Routing, error) {
	m := in.Mesh
	loads := route.NewLoadTracker(m)

	// commsByLink[id] lists indices into states of communications whose
	// remaining DAG includes link id.
	commsByLink := make(map[int][]int)
	states := make([]*prState, len(in.Comms))
	for i, c := range in.Comms {
		st := &prState{c: c, steps: make([][]int, c.Length()), static: h.StaticShares}
		for t := 0; t < c.Length(); t++ {
			for _, l := range m.FrontierLinks(c.Src, c.Dst, t) {
				id := m.LinkID(l)
				st.steps[t] = append(st.steps[t], id)
				commsByLink[id] = append(commsByLink[id], i)
			}
		}
		st.initSizes = make([]int, len(st.steps))
		for t, step := range st.steps {
			st.initSizes[t] = len(step)
		}
		st.refreshMulti()
		states[i] = st
		st.addShares(m, loads, +1)
	}

	for anyMulti(states) {
		progressed := false
		for _, l := range loads.LinksByLoadDesc() {
			id := m.LinkID(l)
			if removeFromHeaviest(m, loads, states, commsByLink, id) {
				progressed = true
				break
			}
		}
		if !progressed {
			// Defensive: cannot happen, since any multi-path
			// communication always has a removable loaded link.
			break
		}
	}

	paths := make(map[int]route.Path, len(in.Comms))
	for _, st := range states {
		p := make(route.Path, 0, len(st.steps))
		for _, step := range st.steps {
			p = append(p, m.LinkByID(step[0]))
		}
		paths[st.c.ID] = p
	}
	return singlePathRouting(m, in.Comms, paths), nil
}

// removeFromHeaviest tries to delete link id from the heaviest multi-path
// communication using it, per the Section 5.5 tie-walk ("unless this
// removal would break its last remaining path […] we consider removing the
// second communication, and so on"). It reports whether a removal was
// applied.
func removeFromHeaviest(m *mesh.Mesh, loads *route.LoadTracker,
	states []*prState, commsByLink map[int][]int, id int) bool {

	users := commsByLink[id]
	order := make([]int, 0, len(users))
	for _, i := range users {
		if states[i].multi {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if states[order[a]].c.Rate != states[order[b]].c.Rate {
			return states[order[a]].c.Rate > states[order[b]].c.Rate
		}
		return states[order[a]].c.ID < states[order[b]].c.ID
	})
	for _, i := range order {
		st := states[i]
		if !st.canRemove(m, id) {
			continue
		}
		st.addShares(m, loads, -1)
		st.remove(m, id)
		st.addShares(m, loads, +1)
		// Rebuild the link→comm index entries for this communication.
		remaining := make(map[int]bool)
		for _, step := range st.steps {
			for _, lid := range step {
				remaining[lid] = true
			}
		}
		for lid, list := range commsByLink {
			if remaining[lid] {
				continue
			}
			for j, ci := range list {
				if ci == i {
					commsByLink[lid] = append(list[:j], list[j+1:]...)
					break
				}
			}
		}
		return true
	}
	return false
}

// addShares adds (sign=+1) or removes (sign=-1) the communication's
// virtual loads: rate/|steps[t]| on each allowed link of step t, or
// rate/initSizes[t] under the StaticShares ablation.
func (st *prState) addShares(m *mesh.Mesh, loads *route.LoadTracker, sign float64) {
	for t, step := range st.steps {
		denom := float64(len(step))
		if st.static {
			denom = float64(st.initSizes[t])
		}
		share := sign * st.c.Rate / denom
		for _, id := range step {
			loads.Add(m.LinkByID(id), share)
		}
	}
}

// refreshMulti recomputes whether more than one path remains.
func (st *prState) refreshMulti() {
	st.multi = false
	for _, step := range st.steps {
		if len(step) > 1 {
			st.multi = true
			return
		}
	}
}

// canRemove reports whether deleting link id keeps at least one src→dst
// path in the communication's DAG.
func (st *prState) canRemove(m *mesh.Mesh, id int) bool {
	present := false
	for _, step := range st.steps {
		for _, lid := range step {
			if lid == id {
				present = true
			}
		}
	}
	if !present {
		return false
	}
	return st.reachable(m, id)
}

// reachable runs a forward sweep through the step DAG skipping link id and
// reports whether the sink is still reached.
func (st *prState) reachable(m *mesh.Mesh, skip int) bool {
	if len(st.steps) == 0 {
		return true
	}
	frontier := map[mesh.Coord]bool{st.c.Src: true}
	for _, step := range st.steps {
		next := make(map[mesh.Coord]bool)
		for _, lid := range step {
			if lid == skip {
				continue
			}
			l := m.LinkByID(lid)
			if frontier[l.From] {
				next[l.To] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		frontier = next
	}
	return frontier[st.c.Dst]
}

// remove deletes link id and prunes every link no longer on a src→dst
// path (forward ∩ backward reachability), the paper's cleaning step.
func (st *prState) remove(m *mesh.Mesh, id int) {
	// Forward-reachable cores per diagonal level.
	fwd := make([]map[mesh.Coord]bool, len(st.steps)+1)
	fwd[0] = map[mesh.Coord]bool{st.c.Src: true}
	for t, step := range st.steps {
		fwd[t+1] = make(map[mesh.Coord]bool)
		for _, lid := range step {
			if lid == id {
				continue
			}
			l := m.LinkByID(lid)
			if fwd[t][l.From] {
				fwd[t+1][l.To] = true
			}
		}
	}
	// Backward-reachable cores per level.
	bwd := make([]map[mesh.Coord]bool, len(st.steps)+1)
	bwd[len(st.steps)] = map[mesh.Coord]bool{st.c.Dst: true}
	for t := len(st.steps) - 1; t >= 0; t-- {
		bwd[t] = make(map[mesh.Coord]bool)
		for _, lid := range st.steps[t] {
			if lid == id {
				continue
			}
			l := m.LinkByID(lid)
			if bwd[t+1][l.To] {
				bwd[t][l.From] = true
			}
		}
	}
	for t, step := range st.steps {
		kept := step[:0]
		for _, lid := range step {
			if lid == id {
				continue
			}
			l := m.LinkByID(lid)
			if fwd[t][l.From] && bwd[t+1][l.To] {
				kept = append(kept, lid)
			}
		}
		if len(kept) == 0 {
			panic("heur: PR pruned a communication to zero paths")
		}
		st.steps[t] = kept
	}
	st.refreshMulti()
}

func anyMulti(states []*prState) bool {
	for _, st := range states {
		if st.multi {
			return true
		}
	}
	return false
}
