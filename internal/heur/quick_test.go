package heur

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
)

// quickInstance derives a small random instance from fuzz bytes: mesh
// dimensions 2..6, 1..12 communications with rates 1..3500.
func quickInstance(dims [2]uint8, raw []uint32) Instance {
	p := int(dims[0]%5) + 2
	q := int(dims[1]%5) + 2
	m := mesh.MustNew(p, q)
	n := len(raw)/5 + 1
	set := make(comm.Set, 0, n)
	for i := 0; i < n && (i+1)*5 <= len(raw); i++ {
		w := raw[i*5:]
		src := mesh.Coord{U: int(w[0])%p + 1, V: int(w[1])%q + 1}
		dst := mesh.Coord{U: int(w[2])%p + 1, V: int(w[3])%q + 1}
		if src == dst {
			continue
		}
		set = append(set, comm.Comm{ID: i, Src: src, Dst: dst, Rate: float64(w[4]%3500) + 1})
	}
	return Instance{Mesh: m, Model: power.KimHorowitz(), Comms: set}
}

// Property: every heuristic produces a structurally valid 1-MP routing on
// arbitrary instances, and its evaluated loads conserve total volume.
func TestQuickAllHeuristicsStructure(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	for _, h := range All() {
		h := h
		f := func(dims [2]uint8, raw []uint32) bool {
			in := quickInstance(dims, raw)
			if len(in.Comms) == 0 {
				return true
			}
			r, err := h.Route(in)
			if err != nil {
				return false
			}
			if err := r.Validate(in.Comms, 1); err != nil {
				t.Logf("%s: %v", h.Name(), err)
				return false
			}
			sum := 0.0
			for _, load := range r.Loads() {
				sum += load
			}
			return math.Abs(sum-in.Comms.TotalVolume()) < 1e-6*(1+in.Comms.TotalVolume())
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", h.Name(), err)
		}
	}
}

// Property: BEST's power never exceeds XY's when both are feasible.
func TestQuickBestLEQXY(t *testing.T) {
	f := func(dims [2]uint8, raw []uint32) bool {
		in := quickInstance(dims, raw)
		if len(in.Comms) == 0 {
			return true
		}
		xy, err1 := Solve(XY{}, in)
		best, err2 := Solve(Best{}, in)
		if err1 != nil || err2 != nil {
			return false
		}
		if !xy.Feasible {
			return true
		}
		return best.Feasible && best.Power.Total() <= xy.Power.Total()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: scaling every rate by a constant 0 < k ≤ 1 never turns a
// feasible XY instance infeasible (monotone feasibility).
func TestQuickFeasibilityMonotoneInRates(t *testing.T) {
	f := func(dims [2]uint8, raw []uint32, scale uint8) bool {
		in := quickInstance(dims, raw)
		if len(in.Comms) == 0 {
			return true
		}
		res, err := Solve(XY{}, in)
		if err != nil {
			return false
		}
		if !res.Feasible {
			return true
		}
		k := (float64(scale%100) + 1) / 101.0 // in (0, 1]
		scaled := in.Comms.Clone()
		for i := range scaled {
			scaled[i].Rate *= k
		}
		res2, err := Solve(XY{}, Instance{Mesh: in.Mesh, Model: in.Model, Comms: scaled})
		if err != nil {
			return false
		}
		return res2.Feasible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
