package heur

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
)

// PR must reduce every communication to exactly one Manhattan path.
func TestPRSinglePathInvariant(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	for seed := int64(0); seed < 6; seed++ {
		set := randomSet(m, 100+seed, 35, 100, 2500)
		in := Instance{Mesh: m, Model: model, Comms: set}
		r, err := (PR{}).Route(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(set, 1); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(r.Flows) != len(set) {
			t.Fatalf("seed %d: %d flows for %d comms", seed, len(r.Flows), len(set))
		}
	}
}

// With one communication and no competitors, PR keeps a shortest path and
// yields the minimal possible power.
func TestPRSingleCommOptimal(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	g := comm.Comm{ID: 0, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 4, V: 5}, Rate: 2000}
	res := solveOrDie(t, PR{}, Instance{Mesh: m, Model: model, Comms: comm.Set{g}})
	if !res.Feasible {
		t.Fatal("single comm infeasible under PR")
	}
	linkP, err := model.LinkPower(2000)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(g.Length()) * linkP; res.Power.Total() != want {
		t.Errorf("PR power %g, want %g", res.Power.Total(), want)
	}
}

// Straight-line communications have a single path from the start; PR must
// leave them untouched and never panic on them.
func TestPRStraightLines(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := comm.Set{
		{ID: 0, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 8}, Rate: 1000},
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 8, V: 1}, Rate: 1000},
		{ID: 2, Src: mesh.Coord{U: 3, V: 2}, Dst: mesh.Coord{U: 3, V: 7}, Rate: 500},
	}
	res := solveOrDie(t, PR{}, Instance{Mesh: m, Model: model, Comms: set})
	if !res.Feasible {
		t.Fatalf("straight lines infeasible: %v", res.Err)
	}
	for _, f := range res.Routing.Flows {
		if f.Path.Bends() != 0 {
			t.Errorf("straight comm %d routed with bends: %v", f.Comm.ID, f.Path)
		}
	}
}

// Two equal heavy flows crossing the same bounding box: PR's removals must
// steer them onto disjoint link sets (the Section 1 motivation).
func TestPRSeparatesCompetingFlows(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	set := comm.Set{
		{ID: 0, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 4, V: 4}, Rate: 3400},
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 4, V: 4}, Rate: 3400},
	}
	res := solveOrDie(t, PR{}, Instance{Mesh: m, Model: model, Comms: set})
	if !res.Feasible {
		t.Fatalf("PR failed to separate flows: %v", res.Err)
	}
	shared := map[int]int{}
	for _, f := range res.Routing.Flows {
		for _, l := range f.Path {
			shared[m.LinkID(l)]++
		}
	}
	for id, n := range shared {
		if n > 1 {
			t.Errorf("link %v shared by both heavy flows", m.LinkByID(id))
		}
	}
}

// The StaticShares ablation still yields valid single-path routings, but
// its optimistic accounting should not beat the paper's redistribution on
// aggregate feasibility.
func TestPRStaticSharesVariant(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	failsDefault, failsStatic := 0, 0
	for seed := int64(0); seed < 15; seed++ {
		set := randomSet(m, 300+seed, 60, 100, 1500)
		in := Instance{Mesh: m, Model: model, Comms: set}
		r, err := (PR{StaticShares: true}).Route(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(set, 1); err != nil {
			t.Fatalf("seed %d: static-shares routing invalid: %v", seed, err)
		}
		def, err := Solve(PR{}, in)
		if err != nil {
			t.Fatal(err)
		}
		stat, err := Solve(PR{StaticShares: true}, in)
		if err != nil {
			t.Fatal(err)
		}
		if !def.Feasible {
			failsDefault++
		}
		if !stat.Feasible {
			failsStatic++
		}
	}
	if failsDefault > failsStatic {
		t.Logf("note: redistribution failed %d vs static %d on this sample", failsDefault, failsStatic)
	}
}

// PR is deterministic: identical instances produce identical routings.
func TestPRDeterministic(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := randomSet(m, 77, 25, 100, 3000)
	in := Instance{Mesh: m, Model: model, Comms: set}
	a, err := (PR{}).Route(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (PR{}).Route(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Flows {
		if pathKey(a.Flows[i].Path) != pathKey(b.Flows[i].Path) {
			t.Fatalf("flow %d differs between runs", i)
		}
	}
}
