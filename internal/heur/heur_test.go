package heur

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

// figure2Instance is the running example of Section 3.5: 2×2 mesh,
// Pleak=0, P0=1, α=3, BW=4, γ1=(C11,C22,1), γ2=(C11,C22,3).
func figure2Instance() Instance {
	return Instance{
		Mesh:  mesh.MustNew(2, 2),
		Model: power.Figure2(),
		Comms: comm.Set{
			{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
			{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 3},
		},
	}
}

func solveOrDie(t *testing.T, h Heuristic, in Instance) route.Result {
	t.Helper()
	res, err := Solve(h, in)
	if err != nil {
		t.Fatalf("%s: %v", h.Name(), err)
	}
	return res
}

// On the Figure 2 instance XY burns 128 while every Manhattan heuristic
// finds the optimal 1-MP routing of power 56 = 2·(1³+3³).
func TestFigure2AllHeuristics(t *testing.T) {
	in := figure2Instance()
	want := map[string]float64{
		"XY": 128, "SG": 56, "IG": 56, "TB": 56, "XYI": 56, "PR": 56, "BEST": 56,
	}
	hs := append(All(), Best{})
	for _, h := range hs {
		res := solveOrDie(t, h, in)
		if !res.Feasible {
			t.Errorf("%s: infeasible on Figure 2 instance: %v", h.Name(), res.Err)
			continue
		}
		if got := res.Power.Total(); math.Abs(got-want[h.Name()]) > 1e-9 {
			t.Errorf("%s: power = %g, want %g", h.Name(), got, want[h.Name()])
		}
	}
}

// Every heuristic always yields a structurally valid 1-MP routing on
// random instances (all quadrants, mixed weights), regardless of
// feasibility.
func TestAllHeuristicsProduceValidRoutings(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	hs := append(All(), Best{})
	for seed := int64(0); seed < 8; seed++ {
		gen := workload.New(m, seed)
		set := gen.Uniform(30, 100, 2500)
		in := Instance{Mesh: m, Model: model, Comms: set}
		for _, h := range hs {
			r, err := h.Route(in)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, h.Name(), err)
			}
			if err := r.Validate(set, 1); err != nil {
				t.Fatalf("seed %d %s: invalid routing: %v", seed, h.Name(), err)
			}
		}
	}
}

// BEST is never worse than any individual heuristic.
func TestBestDominates(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	for seed := int64(0); seed < 10; seed++ {
		set := workload.New(m, seed).Uniform(25, 100, 2000)
		in := Instance{Mesh: m, Model: model, Comms: set}
		best := solveOrDie(t, Best{}, in)
		for _, h := range All() {
			res := solveOrDie(t, h, in)
			if !res.Feasible {
				continue
			}
			if !best.Feasible {
				t.Fatalf("seed %d: %s feasible but BEST infeasible", seed, h.Name())
			}
			if best.Power.Total() > res.Power.Total()+1e-9 {
				t.Fatalf("seed %d: BEST power %g > %s power %g",
					seed, best.Power.Total(), h.Name(), res.Power.Total())
			}
		}
	}
}

// The headline claim of Section 6.4: Manhattan routing finds solutions far
// more often than XY. On congested random instances, PR/XYI should succeed
// at least as often as XY, and strictly more in aggregate.
func TestManhattanBeatsXYOnSuccessRate(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	wins := map[string]int{}
	trials := 40
	for seed := int64(0); seed < int64(trials); seed++ {
		set := workload.New(m, 1000+seed).Uniform(40, 100, 1500)
		in := Instance{Mesh: m, Model: model, Comms: set}
		for _, h := range []Heuristic{XY{}, XYI{}, PR{}, Best{}} {
			if res := solveOrDie(t, h, in); res.Feasible {
				wins[h.Name()]++
			}
		}
	}
	if wins["PR"] < wins["XY"] || wins["XYI"] < wins["XY"] {
		t.Errorf("success counts: %v — Manhattan heuristics should beat XY", wins)
	}
	if wins["BEST"] <= wins["XY"] && wins["XY"] < trials {
		t.Errorf("BEST (%d) should succeed more often than XY (%d)", wins["BEST"], wins["XY"])
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"XY", "SG", "IG", "TB", "XYI", "PR", "BEST"} {
		h, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if h.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, h.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSolveRejectsInvalidInstance(t *testing.T) {
	if _, err := Solve(XY{}, Instance{}); err == nil {
		t.Error("nil mesh accepted")
	}
	in := figure2Instance()
	in.Comms = comm.Set{{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 9, V: 9}, Rate: 1}}
	if _, err := Solve(XY{}, in); err == nil {
		t.Error("off-mesh communication accepted")
	}
}

// Single-communication instances: every heuristic must find a feasible
// minimal routing (one shortest path, power = ℓ·P(δ)).
func TestSingleCommunication(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	g := comm.Comm{ID: 0, Src: mesh.Coord{U: 2, V: 3}, Dst: mesh.Coord{U: 6, V: 7}, Rate: 1200}
	in := Instance{Mesh: m, Model: model, Comms: comm.Set{g}}
	linkP, err := model.LinkPower(1200)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(g.Length()) * linkP
	for _, h := range append(All(), Best{}) {
		res := solveOrDie(t, h, in)
		if !res.Feasible {
			t.Errorf("%s: single comm infeasible", h.Name())
			continue
		}
		if math.Abs(res.Power.Total()-want) > 1e-9 {
			t.Errorf("%s: power %g, want %g", h.Name(), res.Power.Total(), want)
		}
	}
}

// Two heavy comms from the same source to the same sink must not share
// links when that overloads them: the Section 1 motivating example.
func TestHeuristicsSeparateHeavyTwins(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz() // BW 3500
	set := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 2, V: 2}, Dst: mesh.Coord{U: 5, V: 5}, Rate: 3000},
		{ID: 2, Src: mesh.Coord{U: 2, V: 2}, Dst: mesh.Coord{U: 5, V: 5}, Rate: 3000},
	}
	in := Instance{Mesh: m, Model: model, Comms: set}
	// XY stacks 6000 Mb/s on each link: must fail.
	if res := solveOrDie(t, XY{}, in); res.Feasible {
		t.Error("XY should be infeasible on heavy twins")
	}
	for _, h := range []Heuristic{SG{}, IG{}, TB{}, XYI{}, PR{}} {
		if res := solveOrDie(t, h, in); !res.Feasible {
			t.Errorf("%s: failed to separate heavy twins: %v", h.Name(), res.Err)
		}
	}
}
