package heur

import (
	"errors"
	"testing"

	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/solve"
)

// A stop poll that already fired abandons the anneal on its first stride
// and surfaces the sentinel instead of a routing.
func TestSAStopAbandonsSearch(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set := randomSet(m, 42, 25, 100, 2000)
	in := Instance{Mesh: m, Model: power.KimHorowitz(), Comms: set}
	_, err := SA{Seed: 3, Iters: 100000, Stop: func() bool { return true }}.Route(in)
	if !errors.Is(err, solve.ErrStopped) {
		t.Fatalf("err = %v, want solve.ErrStopped", err)
	}
}

// Installing a stop hook that never fires touches no RNG state: the
// routing is identical to a run without one — the guarantee that lets
// the serving layer thread deadlines through every solve for free.
func TestSAStopNeverFiringChangesNothing(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set := randomSet(m, 5, 20, 100, 2000)
	in := Instance{Mesh: m, Model: power.KimHorowitz(), Comms: set}
	a, err := SA{Seed: 3, Iters: 1000}.Route(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SA{Seed: 3, Iters: 1000, Stop: func() bool { return false }}.Route(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Flows {
		if pathKey(a.Flows[i].Path) != pathKey(b.Flows[i].Path) {
			t.Fatal("a never-firing stop hook changed the routing")
		}
	}
}
