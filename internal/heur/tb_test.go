package heur

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/route"
)

func pathKey(p route.Path) string {
	key := ""
	for _, l := range p {
		key += l.String()
	}
	return key
}

// Section 5.3: there are |Δu|+|Δv| two-bend routings, all valid Manhattan
// paths with at most two bends, all distinct.
func TestTwoBendPathsCountAndShape(t *testing.T) {
	m := mesh.MustNew(8, 8)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		src := mesh.Coord{U: rng.Intn(8) + 1, V: rng.Intn(8) + 1}
		dst := mesh.Coord{U: rng.Intn(8) + 1, V: rng.Intn(8) + 1}
		if src == dst {
			continue
		}
		g := comm.Comm{Src: src, Dst: dst}
		paths := TwoBendPaths(src, dst)
		if len(paths) != twoBendCount(g) {
			t.Fatalf("%v->%v: %d paths, want %d", src, dst, len(paths), twoBendCount(g))
		}
		seen := make(map[string]bool)
		for _, p := range paths {
			if err := p.Validate(m, src, dst); err != nil {
				t.Fatalf("%v->%v: invalid two-bend path: %v", src, dst, err)
			}
			if b := p.Bends(); b > 2 {
				t.Fatalf("%v->%v: path with %d bends", src, dst, b)
			}
			key := ""
			for _, l := range p {
				key += l.String()
			}
			if seen[key] {
				t.Fatalf("%v->%v: duplicate two-bend path", src, dst)
			}
			seen[key] = true
		}
	}
}

// The XY and YX paths are always among the two-bend candidates.
func TestTwoBendIncludesXYAndYX(t *testing.T) {
	src, dst := mesh.Coord{U: 2, V: 3}, mesh.Coord{U: 6, V: 7}
	paths := TwoBendPaths(src, dst)
	wantXY, wantYX := pathKey(route.XY(src, dst)), pathKey(route.YX(src, dst))
	foundXY, foundYX := false, false
	for _, p := range paths {
		switch pathKey(p) {
		case wantXY:
			foundXY = true
		case wantYX:
			foundYX = true
		}
	}
	if !foundXY || !foundYX {
		t.Errorf("two-bend candidates miss XY (%v) or YX (%v)", foundXY, foundYX)
	}
}

func TestTwoBendStraightLine(t *testing.T) {
	paths := TwoBendPaths(mesh.Coord{U: 3, V: 1}, mesh.Coord{U: 3, V: 6})
	if len(paths) != 1 {
		t.Fatalf("straight line: %d paths, want 1", len(paths))
	}
	if paths[0].Bends() != 0 {
		t.Fatal("straight line path has bends")
	}
}
