package heur

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// fixedHeur always returns the same routing — a candidate whose paths the
// nested-BEST test can pin exactly.
type fixedHeur struct{ r route.Routing }

func (fixedHeur) Name() string { return "FIXED" }

func (f fixedHeur) Route(Instance) (route.Routing, error) { return f.r, nil }

// A candidate that leads the outer BEST must survive a later candidate
// that runs a nested BEST on the same workspace (SA seeds itself with
// BEST{TB,XYI,PR}): the leader snapshots live per nesting depth, so the
// inner BEST must not clobber the outer leader's paths.
func TestBestNestedOnSharedWorkspace(t *testing.T) {
	m := mesh.MustNew(3, 3)
	c := comm.Comm{ID: 0, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 500}
	in := Instance{Mesh: m, Model: power.KimHorowitz(), Comms: comm.Set{c}}
	xy := route.XY(c.Src, c.Dst) // (1,1)->(1,2)->(2,2)
	fixed := fixedHeur{r: route.Routing{Mesh: m, Flows: []route.Flow{{Comm: c, Path: xy}}}}

	ws := route.NewWorkspace()
	r, err := Best{Heuristics: []Heuristic{fixed, SA{}}}.RouteInto(in, ws)
	if err != nil {
		t.Fatal(err)
	}
	// Both candidates route the single communication at identical power
	// (any shortest path over empty loads costs the same), so the first
	// candidate stays the leader and its exact path must come back.
	if len(r.Flows) != 1 {
		t.Fatalf("got %d flows, want 1", len(r.Flows))
	}
	if got := pathKey(r.Flows[0].Path); got != pathKey(xy) {
		t.Fatalf("nested BEST clobbered the outer leader: got %s, want %s",
			got, pathKey(xy))
	}
}
