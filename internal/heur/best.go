package heur

import (
	"fmt"

	"repro/internal/route"
)

// Best is the virtual heuristic of Section 6: it runs every candidate
// heuristic on the instance and keeps the feasible routing with the lowest
// power. When no candidate is feasible it returns the routing with the
// smallest maximum link load, so the caller's evaluation still reports the
// failure in the usual way.
type Best struct {
	// Heuristics are the candidates; nil means All().
	Heuristics []Heuristic
}

// Name returns "BEST".
func (Best) Name() string { return "BEST" }

// Route implements Heuristic.
func (b Best) Route(in Instance) (route.Routing, error) {
	return b.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter. Candidates share the workspace, so
// each time the lead changes the leader's paths are snapshotted into a
// pooled path-set (a copy of a few hundred links); the snapshot is copied
// back into the workspace's slots at the end, which costs microseconds
// where re-running the winning heuristic costs milliseconds.
func (b Best) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	hs := b.Heuristics
	if hs == nil {
		hs = All()
	}
	if len(hs) == 0 {
		return route.Routing{}, fmt.Errorf("heur: BEST with no candidates")
	}
	ws.Bind(in.Mesh)
	sc := scratchOf(ws)
	winner, release := sc.acquireWinner()
	defer release()
	bestIdx, loIdx := -1, -1
	var bestPow, loMax float64
	for i, h := range hs {
		r, err := RouteWith(h, in, ws)
		if err != nil {
			return route.Routing{}, fmt.Errorf("BEST: %s: %w", h.Name(), err)
		}
		tr := ws.Tracker()
		tr.SetRouting(r)
		bd, ok := tr.Evaluate(in.Model)
		leads := false
		if ok {
			if bestIdx < 0 || bd.Total() < bestPow {
				bestIdx, bestPow = i, bd.Total()
				leads = true
			}
		} else if ml := tr.MaxLoad(); bestIdx < 0 && (loIdx < 0 || ml < loMax) {
			loIdx, loMax = i, ml
			leads = true
		}
		if leads {
			winner.ResetFor(in.Comms)
			for _, f := range r.Flows {
				winner.SetCopy(f.Comm.ID, f.Path)
			}
		}
	}
	ps := ws.Paths()
	ps.ResetFor(in.Comms)
	for _, c := range in.Comms {
		ps.SetCopy(c.ID, winner.Get(c.ID))
	}
	return singlePathRouting(in, ws), nil
}
