package heur

import (
	"fmt"

	"repro/internal/route"
)

// Best is the virtual heuristic of Section 6: it runs every candidate
// heuristic on the instance and keeps the feasible routing with the lowest
// power. When no candidate is feasible it returns the routing with the
// smallest maximum link load, so the caller's evaluation still reports the
// failure in the usual way.
type Best struct {
	// Heuristics are the candidates; nil means All().
	Heuristics []Heuristic
}

// Name returns "BEST".
func (Best) Name() string { return "BEST" }

// Route implements Heuristic.
func (b Best) Route(in Instance) (route.Routing, error) {
	hs := b.Heuristics
	if hs == nil {
		hs = All()
	}
	if len(hs) == 0 {
		return route.Routing{}, fmt.Errorf("heur: BEST with no candidates")
	}
	var bestFeasible *route.Result
	var leastOverloaded *route.Result
	for _, h := range hs {
		r, err := h.Route(in)
		if err != nil {
			return route.Routing{}, fmt.Errorf("BEST: %s: %w", h.Name(), err)
		}
		res := route.Evaluate(r, in.Model)
		if res.Feasible {
			if bestFeasible == nil || res.Power.Total() < bestFeasible.Power.Total() {
				cp := res
				bestFeasible = &cp
			}
		} else if leastOverloaded == nil || res.MaxLoad() < leastOverloaded.MaxLoad() {
			cp := res
			leastOverloaded = &cp
		}
	}
	if bestFeasible != nil {
		return bestFeasible.Routing, nil
	}
	return leastOverloaded.Routing, nil
}
