package heur

import (
	"fmt"

	"repro/internal/route"
)

// Best is the virtual heuristic of Section 6: it runs every candidate
// heuristic on the instance and keeps the feasible routing with the lowest
// power. When no candidate is feasible it returns the routing with the
// smallest maximum link load, so the caller's evaluation still reports the
// failure in the usual way.
type Best struct {
	// Heuristics are the candidates; nil means All().
	Heuristics []Heuristic
}

// Name returns "BEST".
func (Best) Name() string { return "BEST" }

// Route implements Heuristic.
func (b Best) Route(in Instance) (route.Routing, error) {
	return b.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter. Candidates share the workspace, so
// only the winner's index is remembered while scanning; the winner is
// re-routed at the end (heuristics are deterministic) so the returned
// routing occupies the workspace's slots without any copying.
func (b Best) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	hs := b.Heuristics
	if hs == nil {
		hs = All()
	}
	if len(hs) == 0 {
		return route.Routing{}, fmt.Errorf("heur: BEST with no candidates")
	}
	ws.Bind(in.Mesh)
	bestIdx, loIdx := -1, -1
	var bestPow, loMax float64
	for i, h := range hs {
		r, err := RouteWith(h, in, ws)
		if err != nil {
			return route.Routing{}, fmt.Errorf("BEST: %s: %w", h.Name(), err)
		}
		tr := ws.Tracker()
		tr.SetRouting(r)
		bd, ok := tr.Evaluate(in.Model)
		if ok {
			if bestIdx < 0 || bd.Total() < bestPow {
				bestIdx, bestPow = i, bd.Total()
			}
		} else if ml := tr.MaxLoad(); loIdx < 0 || ml < loMax {
			loIdx, loMax = i, ml
		}
	}
	winner := bestIdx
	if winner < 0 {
		winner = loIdx
	}
	return RouteWith(hs[winner], in, ws)
}
