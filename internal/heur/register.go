package heur

import (
	"repro/internal/route"
	"repro/internal/solve"
)

// heurSolver adapts one constructive heuristic family to the registry: the
// concrete Heuristic is rebuilt per call from the caller's Options, so
// order overrides, seeds and budgets flow through solve.Options instead of
// struct literals.
type heurSolver struct {
	name  string
	build func(o solve.Options) Heuristic
}

// Name implements solve.Solver.
func (s heurSolver) Name() string { return s.name }

// Route implements solve.Solver. When the caller supplies a reuse
// workspace via Options.Workspace, the heuristic routes into it (the
// returned routing then aliases workspace memory per the route.Workspace
// contract); otherwise it allocates fresh.
func (s heurSolver) Route(in solve.Instance, o solve.Options) (route.Routing, error) {
	if err := in.Validate(); err != nil {
		return route.Routing{}, err
	}
	return RouteWith(s.build(o), in, o.Workspace)
}

// orderSensitive returns the paper's heuristics with the order override
// applied to the order-sensitive ones, in presentation order.
func orderSensitive(o solve.Options) []Heuristic {
	return []Heuristic{XY{}, SG{Order: o.Order}, IG{Order: o.Order}, TB{Order: o.Order}, XYI{}, PR{}}
}

func init() {
	for _, s := range []heurSolver{
		{"XY", func(solve.Options) Heuristic { return XY{} }},
		{"SG", func(o solve.Options) Heuristic { return SG{Order: o.Order} }},
		{"IG", func(o solve.Options) Heuristic { return IG{Order: o.Order} }},
		{"TB", func(o solve.Options) Heuristic { return TB{Order: o.Order} }},
		{"XYI", func(solve.Options) Heuristic { return XYI{} }},
		{"PR", func(solve.Options) Heuristic { return PR{} }},
		{"BEST", func(o solve.Options) Heuristic { return Best{Heuristics: orderSensitive(o)} }},
		{"SA", func(o solve.Options) Heuristic { return SA{Seed: o.Seed, Iters: o.SAIters, Stop: o.Stop} }},
	} {
		solve.Register(s)
	}
}
