package heur

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// SG avoids an obviously congested corridor: with a heavy flow occupying
// the top row, a second flow between the same endpoints must route around
// it.
func TestSGAvoidsLoadedLinks(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	set := comm.Set{
		{ID: 0, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 4}, Rate: 3000}, // pins row 1
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 4}, Rate: 1000},
	}
	res := solveOrDie(t, SG{}, Instance{Mesh: m, Model: model, Comms: set})
	if !res.Feasible {
		t.Fatalf("SG infeasible: %v", res.Err)
	}
	// The 1000 flow must not share row-1 links with the 3000 flow.
	for _, f := range res.Routing.Flows {
		if f.Comm.ID != 1 {
			continue
		}
		for _, l := range f.Path {
			if l.From.U == 1 && l.To.U == 1 {
				t.Errorf("SG pushed the light flow onto the congested row: %v", l)
			}
		}
	}
}

// SG's documented tie-breaking: on an empty mesh the path hugs the
// source-sink diagonal rather than behaving like XY or YX.
func TestSGTieBreakHugsDiagonal(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	g := comm.Comm{ID: 0, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 5, V: 5}, Rate: 100}
	res := solveOrDie(t, SG{}, Instance{Mesh: m, Model: model, Comms: comm.Set{g}})
	p := res.Routing.Flows[0].Path
	for _, l := range p {
		// On the exact diagonal, deviation never exceeds one half-step:
		// |u−v| ≤ 1 at every visited core.
		if d := l.To.U - l.To.V; d > 1 || d < -1 {
			t.Fatalf("SG strayed from the diagonal at %v (path %v)", l.To, p)
		}
	}
}

// IG's virtual pre-routing must cancel exactly: add followed by remove
// leaves the tracker empty.
func TestIdealShareRoundTrip(t *testing.T) {
	m := mesh.MustNew(8, 8)
	loads := route.NewLoadTracker(m)
	g := comm.Comm{ID: 0, Src: mesh.Coord{U: 2, V: 2}, Dst: mesh.Coord{U: 6, V: 5}, Rate: 1234}
	addIdealShare(m, loads, new(heurScratch), g, +1)
	if loads.MaxLoad() == 0 {
		t.Fatal("pre-routing added no load")
	}
	// Total virtual load = δ·ℓ (δ per diagonal crossing, ℓ crossings).
	total := 0.0
	for _, l := range loads.Loads() {
		total += l
	}
	if want := g.Rate * float64(g.Length()); math.Abs(total-want) > 1e-6 {
		t.Errorf("virtual volume %g, want %g", total, want)
	}
	addIdealShare(m, loads, new(heurScratch), g, -1)
	if loads.MaxLoad() > 1e-9 {
		t.Errorf("residual load %g after removing pre-routing", loads.MaxLoad())
	}
}

// IG beats SG on a scenario engineered to punish myopia: a wall of traffic
// sits just beyond the greedy-optimal first hops, which the lower bound
// sees and plain load-greediness does not. At minimum, IG must never be
// structurally invalid and should match SG's feasibility here.
func TestIGSeesBeyondNextHop(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := comm.Set{
		// Wall: saturate the column-2 vertical corridor rows 1..4.
		{ID: 0, Src: mesh.Coord{U: 1, V: 2}, Dst: mesh.Coord{U: 5, V: 2}, Rate: 3400},
		// Crossing flow from (1,1) to (5,3).
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 5, V: 3}, Rate: 3400},
	}
	ig := solveOrDie(t, IG{}, Instance{Mesh: m, Model: model, Comms: set})
	if !ig.Feasible {
		t.Fatalf("IG infeasible: %v", ig.Err)
	}
	// The crossing flow must not ride any of the wall's vertical links.
	for _, f := range ig.Routing.Flows {
		if f.Comm.ID != 1 {
			continue
		}
		for _, l := range f.Path {
			if l.From.V == 2 && l.To.V == 2 {
				t.Errorf("IG stacked the crossing flow on the wall at %v", l)
			}
		}
	}
}

// The greedy walker panics only on impossible geometry; for every valid
// source/destination it terminates with a valid path even under heavy
// pre-existing load.
func TestGreedyPathAlwaysTerminates(t *testing.T) {
	m := mesh.MustNew(8, 8)
	loads := route.NewLoadTracker(m)
	for _, l := range m.Links() {
		loads.Add(l, 5000) // uniformly overloaded
	}
	g := comm.Comm{ID: 0, Src: mesh.Coord{U: 8, V: 8}, Dst: mesh.Coord{U: 1, V: 1}, Rate: 1}
	p := greedyPathInto(nil, g, func(cand mesh.Link, _ mesh.Coord) float64 {
		return loads.Load(cand)
	})
	if err := p.Validate(m, g.Src, g.Dst); err != nil {
		t.Fatal(err)
	}
}
