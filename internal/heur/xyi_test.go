package heur

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// moveOff is the fresh-scratch full-path form of (*heurScratch).moveOff,
// the shape the tests were written against: the modified span is stitched
// back between the unchanged prefix and suffix, exercising the span
// bookkeeping along the way.
func moveOff(p route.Path, l mesh.Link) (route.Path, bool) {
	span, lo, hi, ok := new(heurScratch).moveOff(p, l)
	if !ok {
		return nil, false
	}
	np := append(route.Path{}, p[:lo]...)
	np = append(np, span...)
	np = append(np, p[hi+1:]...)
	return np, true
}

// moveOff must always return a valid Manhattan path with the same
// endpoints that avoids the targeted link — or report the move impossible.
func TestMoveOffProperties(t *testing.T) {
	m := mesh.MustNew(8, 8)
	rng := rand.New(rand.NewSource(9))
	moved, stuck := 0, 0
	for i := 0; i < 500; i++ {
		src := mesh.Coord{U: rng.Intn(8) + 1, V: rng.Intn(8) + 1}
		dst := mesh.Coord{U: rng.Intn(8) + 1, V: rng.Intn(8) + 1}
		if src == dst {
			continue
		}
		// Random Manhattan path via a random two-bend candidate.
		cands := TwoBendPaths(src, dst)
		p := cands[rng.Intn(len(cands))]
		l := p[rng.Intn(len(p))]
		np, ok := moveOff(p, l)
		if !ok {
			stuck++
			continue
		}
		moved++
		if err := np.Validate(m, src, dst); err != nil {
			t.Fatalf("moveOff(%v -> %v, %v): invalid path: %v", src, dst, l, err)
		}
		for _, nl := range np {
			if nl == l {
				t.Fatalf("moveOff did not avoid %v", l)
			}
		}
	}
	if moved == 0 {
		t.Fatal("moveOff never succeeded in 500 trials")
	}
	if stuck == 0 {
		t.Fatal("moveOff never hit the Manhattan constraint in 500 trials")
	}
}

// A vertical link in the source column cannot be avoided (no horizontal
// move precedes it), and a horizontal link in the sink row cannot either.
func TestMoveOffConstraintCases(t *testing.T) {
	src, dst := mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 3, V: 3}
	yx := route.YX(src, dst) // S,S,E,E: vertical hops are in column 1
	if _, ok := moveOff(yx, yx[0]); ok {
		t.Error("vertical hop with no preceding horizontal move was moved")
	}
	// Its final horizontal hop has no vertical move after it.
	if _, ok := moveOff(yx, yx[len(yx)-1]); ok {
		t.Error("horizontal hop with no following vertical move was moved")
	}
	// The XY path's corner hops are movable.
	xy := route.XY(src, dst) // E,E,S,S
	if _, ok := moveOff(xy, xy[2]); !ok {
		t.Error("movable vertical hop reported stuck")
	}
	if _, ok := moveOff(xy, xy[0]); !ok {
		t.Error("movable horizontal hop reported stuck")
	}
}

// moveOff on a link not on the path reports failure.
func TestMoveOffLinkNotOnPath(t *testing.T) {
	p := route.XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 2, V: 2})
	alien := mesh.Link{From: mesh.Coord{U: 5, V: 5}, To: mesh.Coord{U: 5, V: 6}}
	if _, ok := moveOff(p, alien); ok {
		t.Error("alien link moved")
	}
}

// The vertical move shifts the column toward the source: Section 5.4's
// "horizontal link going to the same core, from the core that is the
// closest to the source core".
func TestMoveOffVerticalEntersSameCoreFromSourceSide(t *testing.T) {
	src, dst := mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 4, V: 4}
	p := route.XY(src, dst) // E,E,E,S,S,S — vertical hops in column 4
	l := p[4]               // (2,4)->(3,4)
	np, ok := moveOff(p, l)
	if !ok {
		t.Fatal("expected movable")
	}
	// The new path must enter (3,4) horizontally from (3,3).
	entered := false
	for _, nl := range np {
		if nl.To == l.To {
			if nl.From != (mesh.Coord{U: 3, V: 3}) {
				t.Fatalf("entered %v from %v, want from C(3,3)", l.To, nl.From)
			}
			entered = true
		}
	}
	if !entered {
		t.Fatalf("new path no longer visits %v: %v", l.To, np)
	}
}

// The horizontal move leaves the same core vertically toward the sink.
func TestMoveOffHorizontalLeavesSameCoreTowardSink(t *testing.T) {
	src, dst := mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 4, V: 4}
	p := route.XY(src, dst)
	l := p[1] // (1,2)->(1,3) horizontal
	np, ok := moveOff(p, l)
	if !ok {
		t.Fatal("expected movable")
	}
	for _, nl := range np {
		if nl.From == l.From {
			if nl.To != (mesh.Coord{U: 2, V: 2}) {
				t.Fatalf("left %v to %v, want to C(2,2)", l.From, nl.To)
			}
			return
		}
	}
	t.Fatalf("new path no longer visits %v: %v", l.From, np)
}

// XYI never increases power relative to plain XY.
func TestXYINeverWorseThanXY(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	for seed := int64(0); seed < 15; seed++ {
		set := randomSet(m, seed, 30, 100, 2000)
		in := Instance{Mesh: m, Model: model, Comms: set}
		xy := solveOrDie(t, XY{}, in)
		xyi := solveOrDie(t, XYI{}, in)
		if xy.Feasible && !xyi.Feasible {
			t.Fatalf("seed %d: XY feasible but XYI not", seed)
		}
		if xy.Feasible && xyi.Feasible && xyi.Power.Total() > xy.Power.Total()+1e-9 {
			t.Fatalf("seed %d: XYI power %g > XY power %g",
				seed, xyi.Power.Total(), xy.Power.Total())
		}
	}
}

// The compiled pseudo power agrees with the strict model inside the
// feasible range and extends it monotonically beyond.
func TestPseudoLinkPower(t *testing.T) {
	model := power.KimHorowitz()
	ev := power.Compile(model)
	for _, load := range []float64{0, 100, 1000, 2500, 3500} {
		want, err := model.LinkPower(load)
		if err != nil {
			t.Fatal(err)
		}
		if got := ev.Pseudo(load); got != want {
			t.Errorf("pseudo(%g) = %g, want %g", load, got, want)
		}
	}
	prev := ev.Pseudo(3500)
	for load := 3600.0; load < 8000; load += 400 {
		cur := ev.Pseudo(load)
		if cur <= prev {
			t.Errorf("pseudo power not increasing past top frequency at %g", load)
		}
		prev = cur
	}
}

func randomSet(m *mesh.Mesh, seed int64, n int, wmin, wmax float64) comm.Set {
	rng := rand.New(rand.NewSource(seed))
	set := make(comm.Set, 0, n)
	for i := 0; i < n; i++ {
		var src, dst mesh.Coord
		for {
			src = mesh.Coord{U: rng.Intn(m.P()) + 1, V: rng.Intn(m.Q()) + 1}
			dst = mesh.Coord{U: rng.Intn(m.P()) + 1, V: rng.Intn(m.Q()) + 1}
			if src != dst {
				break
			}
		}
		set = append(set, comm.Comm{ID: i, Src: src, Dst: dst, Rate: wmin + rng.Float64()*(wmax-wmin)})
	}
	return set
}
