package heur

import (
	"math"
	"math/rand"

	"repro/internal/route"
)

// SA is a simulated-annealing single-path refiner — an extension beyond
// the paper's five constructive heuristics (its conclusion calls for
// exploring the gap to optimal). It seeds the search with the best
// routing among TB, XYI and PR, then perturbs one communication at a time
// onto a random two-bend path, accepting worsening moves with a
// geometrically cooled Boltzmann probability. The energy is the pseudo
// power (continuous extension past the top frequency) plus a steep
// per-unit overload penalty, so the search simultaneously repairs
// feasibility and reduces power. Deterministic for a fixed Seed.
type SA struct {
	// Seed drives the perturbation stream (default 1).
	Seed int64
	// Iters is the move budget (default 300 moves per communication).
	Iters int
}

// Name returns "SA".
func (SA) Name() string { return "SA" }

// Route implements Heuristic.
func (h SA) Route(in Instance) (route.Routing, error) {
	return h.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter.
func (h SA) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	seed := h.Seed
	if seed == 0 {
		seed = 1
	}
	iters := h.Iters
	if iters == 0 {
		iters = 300 * len(in.Comms)
	}

	// Seed routing: best of the strongest constructive heuristics. The
	// seed's paths land in (or are copied into) the workspace's slots.
	start, err := Best{Heuristics: []Heuristic{TB{}, XYI{}, PR{}}}.RouteInto(in, ws)
	if err != nil {
		return route.Routing{}, err
	}
	ps := ws.Paths()
	ps.ResetFor(in.Comms)
	for _, f := range start.Flows {
		ps.Set(f.Comm.ID, f.Path)
	}
	loads := ws.Tracker()
	for _, f := range start.Flows {
		loads.AddPath(f.Path, f.Comm.Rate)
	}
	if len(in.Comms) == 0 {
		return singlePathRouting(in, ws), nil
	}
	sc := scratchOf(ws)

	// Overload penalty per unit of excess bandwidth: far above any
	// marginal dynamic saving, so feasibility repairs dominate the
	// scalar annealing acceptance.
	penalty := 10 * (in.Model.Pleak + in.Model.Dynamic(in.Model.MaxBW)) / in.Model.MaxBW

	moveEffect := func(old, new route.Path, rate float64) swapEffect {
		return swapEffectOf(in.Mesh, in.Model, loads, old, new, rate, &sc.deltas)
	}
	state := func() swapEffect {
		var e swapEffect
		for _, load := range loads.LoadsView() {
			e.power += pseudoLinkPower(in.Model, load)
			e.excess += overload(in.Model, load)
		}
		return e
	}

	cur := state()
	best := cur
	snapshotPaths(&sc.bestPaths, ps, in)

	rng := rand.New(rand.NewSource(seed))
	// Initial temperature: the per-link power scale.
	temp := in.Model.Pleak + in.Model.Dynamic(in.Model.MaxBW)
	cooling := math.Pow(1e-4, 1.0/float64(iters)) // temp decays to 1e-4×
	comms := in.Comms
	for it := 0; it < iters; it++ {
		temp *= cooling
		c := comms[rng.Intn(len(comms))]
		k := rng.Intn(twoBendCountOf(c.Src, c.Dst))
		sc.cand = appendNthTwoBend(sc.cand[:0], c.Src, c.Dst, k)
		next := sc.cand
		old := ps.Get(c.ID)
		if samePath(old, next) {
			continue
		}
		eff := moveEffect(old, next, c.Rate)
		delta := eff.power + penalty*eff.excess
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			loads.AddPath(old, -c.Rate)
			loads.AddPath(next, c.Rate)
			ps.SetCopy(c.ID, next)
			cur.power += eff.power
			cur.excess += eff.excess
			if cur.betterThan(best) {
				best = cur
				snapshotPaths(&sc.bestPaths, ps, in)
			}
		}
	}

	// Restore the best configuration seen, then hill-climb: only strict
	// lexicographic improvements, so the result is never worse than the
	// seed routing and is locally optimal over two-bend moves.
	for _, c := range comms {
		ps.SetCopy(c.ID, sc.bestPaths.Get(c.ID))
	}
	loads.Reset()
	for _, c := range comms {
		loads.AddPath(ps.Get(c.ID), c.Rate)
	}
	improved := true
	for improved {
		improved = false
		for _, c := range comms {
			old := ps.Get(c.ID)
			for k, n := 0, twoBendCountOf(c.Src, c.Dst); k < n; k++ {
				sc.cand = appendNthTwoBend(sc.cand[:0], c.Src, c.Dst, k)
				cand := sc.cand
				if samePath(old, cand) {
					continue
				}
				if eff := moveEffect(old, cand, c.Rate); eff.improves() {
					loads.AddPath(old, -c.Rate)
					loads.AddPath(cand, c.Rate)
					ps.SetCopy(c.ID, cand)
					old = ps.Get(c.ID)
					improved = true
				}
			}
		}
	}
	return singlePathRouting(in, ws), nil
}

// snapshotPaths copies the current path of every communication into dst.
func snapshotPaths(dst *route.PathSet, src *route.PathSet, in Instance) {
	dst.ResetFor(in.Comms)
	for _, c := range in.Comms {
		dst.SetCopy(c.ID, src.Get(c.ID))
	}
}

func samePath(a, b route.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// guard: SA must keep satisfying the Heuristic contract.
var _ WorkspaceRouter = SA{}
