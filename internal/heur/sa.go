package heur

import (
	"math"
	"math/rand"
	"slices"

	"repro/internal/mesh"
	"repro/internal/route"
	"repro/internal/solve"
)

// SA is a simulated-annealing single-path refiner — an extension beyond
// the paper's five constructive heuristics (its conclusion calls for
// exploring the gap to optimal). It seeds the search with the best
// routing among TB, XYI and PR, then perturbs one communication at a time
// onto a random two-bend path, accepting worsening moves with a
// geometrically cooled Boltzmann probability. The energy is the pseudo
// power (continuous extension past the top frequency) plus a steep
// per-unit overload penalty, so the search simultaneously repairs
// feasibility and reduces power. Deterministic for a fixed Seed.
//
// The energy account runs on the tracker's aggregate observer: the
// running pseudo-power and excess totals are maintained by the tracker on
// every load change (an O(1) read per accepted move), resynced to an
// exact fresh sum whenever a new best is recorded and again when the best
// configuration is restored — unchecked, the accumulated float drift of
// thousands of accepted moves could mis-rank states near ties.
type SA struct {
	// Seed drives the perturbation stream (default 1).
	Seed int64
	// Iters is the move budget (default 300 moves per communication).
	Iters int
	// Stop, when non-nil, is polled every stopStride anneal moves (and
	// once per hill-climb pass); true abandons the solve with
	// solve.ErrStopped. The poll never touches the RNG, so an unstopped
	// run's routing is byte-identical with or without the hook.
	Stop func() bool
}

// stopStride is the anneal loop's Stop poll period: coarse enough that
// an always-false predicate is noise next to a move evaluation, fine
// enough that a deadline binds within microseconds.
const stopStride = 64

// Name returns "SA".
func (SA) Name() string { return "SA" }

// Route implements Heuristic.
func (h SA) Route(in Instance) (route.Routing, error) {
	return h.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter.
func (h SA) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	seed := h.Seed
	if seed == 0 {
		seed = 1
	}
	iters := h.Iters
	if iters == 0 {
		iters = 300 * len(in.Comms)
	}

	// Seed routing: best of the strongest constructive heuristics. The
	// seed's paths land in (or are copied into) the workspace's slots.
	start, err := Best{Heuristics: []Heuristic{TB{}, XYI{}, PR{}}}.RouteInto(in, ws)
	if err != nil {
		return route.Routing{}, err
	}
	ps := ws.Paths()
	ps.ResetFor(in.Comms)
	for _, f := range start.Flows {
		ps.Set(f.Comm.ID, f.Path)
	}
	loads := ws.Tracker()
	for _, f := range start.Flows {
		loads.AddPath(f.Path, f.Comm.Rate)
	}
	if len(in.Comms) == 0 {
		return singlePathRouting(in, ws), nil
	}
	sc := scratchOf(ws)
	ev := evaluatorFor(ws, in.Model)

	// Overload penalty per unit of excess bandwidth: far above any
	// marginal dynamic saving, so feasibility repairs dominate the
	// scalar annealing acceptance.
	penalty := 10 * (in.Model.Pleak + in.Model.Dynamic(in.Model.MaxBW)) / in.Model.MaxBW

	// Candidate and incumbent share their endpoints, so their common
	// prefix and suffix links carry a net delta of exactly zero: trimming
	// them before evaluation (and application) leaves the effect — and
	// the accepted loads — unchanged while the hot loop touches only the
	// differing middle.
	trim := func(old, new route.Path) (a, bo, bn int) {
		bo, bn = len(old), len(new)
		n := min(bo, bn)
		for a < n && old[a] == new[a] {
			a++
		}
		for bo > a && bn > a && old[bo-1] == new[bn-1] {
			bo--
			bn--
		}
		return a, bo, bn
	}
	moveEffect := func(old, new route.Path, rate float64) swapEffect {
		a, bo, bn := trim(old, new)
		return swapEffectOf(in.Mesh, ev, loads, old[a:bo], new[a:bn], rate, sc)
	}
	applyMove := func(old, new route.Path, rate float64) {
		a, bo, bn := trim(old, new)
		loads.AddPath(old[a:bo], -rate)
		loads.AddPath(new[a:bn], rate)
	}

	// The tracker maintains the objective totals from here on.
	loads.Observe(ev)
	var cur swapEffect
	cur.power, cur.excess = loads.Aggregates()
	best := cur
	snapshotPaths(&sc.bestPaths, ps, in)

	rng := rand.New(rand.NewSource(seed))
	// Initial temperature: the per-link power scale.
	temp := in.Model.Pleak + in.Model.Dynamic(in.Model.MaxBW)
	cooling := math.Pow(1e-4, 1.0/float64(iters)) // temp decays to 1e-4×
	comms := in.Comms

	// Enumerate every two-bend candidate of every communication once into
	// the pooled arena: the anneal loop draws ~300 candidates per
	// communication, so per-draw path construction amortizes away.
	total := 0
	for _, c := range comms {
		total += twoBendCountOf(c.Src, c.Dst) * c.Length()
	}
	arena := sc.tbArena[:0]
	if cap(arena) < total {
		arena = make(route.Path, 0, total)
	}
	if cap(sc.tbPaths) < len(comms) {
		sc.tbPaths = make([][]route.Path, len(comms))
	}
	tb := sc.tbPaths[:len(comms)]
	for pos, c := range comms {
		n := twoBendCountOf(c.Src, c.Dst)
		if cap(tb[pos]) < n {
			tb[pos] = make([]route.Path, n)
		}
		tb[pos] = tb[pos][:n]
		for k := 0; k < n; k++ {
			s := len(arena)
			arena = appendNthTwoBend(arena, c.Src, c.Dst, k)
			tb[pos][k] = arena[s:len(arena):len(arena)]
		}
	}
	sc.tbArena = arena
	sc.tbPaths = tb

	for it := 0; it < iters; it++ {
		if h.Stop != nil && it%stopStride == 0 && h.Stop() {
			return route.Routing{}, solve.ErrStopped
		}
		temp *= cooling
		pos := rng.Intn(len(comms))
		c := comms[pos]
		next := tb[pos][rng.Intn(len(tb[pos]))]
		old := ps.Get(c.ID)
		if slices.Equal(old, next) {
			continue
		}
		eff := moveEffect(old, next, c.Rate)
		delta := eff.power + penalty*eff.excess
		accept := delta <= 0
		if !accept {
			// Draw unconditionally so the perturbation stream matches the
			// historical one draw per uphill proposal; moves more than 40
			// temperatures uphill (acceptance probability < 4e-18) skip
			// only the exponential.
			r := rng.Float64()
			accept = delta < 40*temp && r < math.Exp(-delta/temp)
		}
		if accept {
			applyMove(old, next, c.Rate)
			ps.SetCopy(c.ID, next)
			cur.power, cur.excess = loads.Aggregates()
			if cur.betterThan(best) {
				// Candidate best: resync the running totals and re-compare
				// before recording, so drift in the incremental sums can
				// neither enshrine a not-actually-better state nor become
				// the bar later states are compared against. best always
				// holds exact totals (the initial state comes from
				// Observe's fresh sum), keeping the never-worse-than-seed
				// floor intact.
				cur.power, cur.excess = loads.RecomputeAggregates()
				if cur.betterThan(best) {
					best = cur
					snapshotPaths(&sc.bestPaths, ps, in)
				}
			}
		}
	}

	// Restore the best configuration seen and resync the energy account
	// from a fresh exact sum, then hill-climb: only strict lexicographic
	// improvements, so the result is never worse than the seed routing
	// and is locally optimal over two-bend moves.
	for _, c := range comms {
		ps.SetCopy(c.ID, sc.bestPaths.Get(c.ID))
	}
	loads.Reset() // detaches the observer
	for _, c := range comms {
		loads.AddPath(ps.Get(c.ID), c.Rate)
	}
	loads.Observe(ev) // re-attach: exact totals of the restored routing

	// The sweep revisits only communications whose evaluation could have
	// changed: every load a two-bend candidate of c can touch lies inside
	// c's bounding box (Manhattan paths never leave it), so a
	// communication stays clean until some applied move changes a load in
	// its box. The first sweep examines everything.
	if cap(sc.needEval) < len(comms) {
		sc.needEval = make([]bool, len(comms))
	}
	sc.needEval = sc.needEval[:len(comms)]
	for i := range sc.needEval {
		sc.needEval[i] = true
	}
	pending := len(comms)
	markDirty := func(old, new route.Path) {
		for pos, c2 := range comms {
			if sc.needEval[pos] {
				continue
			}
			box := mesh.BoxOf(c2.Src, c2.Dst)
			if pathTouchesBox(box, old) || pathTouchesBox(box, new) {
				sc.needEval[pos] = true
				pending++
			}
		}
	}
	for pending > 0 {
		if h.Stop != nil && h.Stop() {
			return route.Routing{}, solve.ErrStopped
		}
		for pos, c := range comms {
			if !sc.needEval[pos] {
				continue
			}
			sc.needEval[pos] = false
			pending--
			old := ps.Get(c.ID)
			for _, cand := range tb[pos] {
				if slices.Equal(old, cand) {
					continue
				}
				if eff := moveEffect(old, cand, c.Rate); eff.improves() {
					applyMove(old, cand, c.Rate)
					markDirty(old, cand)
					ps.SetCopy(c.ID, cand)
					old = ps.Get(c.ID)
				}
			}
		}
	}
	return singlePathRouting(in, ws), nil
}

// pathTouchesBox reports whether any link of the path lies inside the box
// (both endpoints contained).
func pathTouchesBox(box mesh.Box, p route.Path) bool {
	for _, l := range p {
		if box.Contains(l.From) && box.Contains(l.To) {
			return true
		}
	}
	return false
}

// snapshotPaths copies the current path of every communication into dst.
func snapshotPaths(dst *route.PathSet, src *route.PathSet, in Instance) {
	dst.ResetFor(in.Comms)
	for _, c := range in.Comms {
		dst.SetCopy(c.ID, src.Get(c.ID))
	}
}

// guard: SA must keep satisfying the Heuristic contract.
var _ WorkspaceRouter = SA{}
