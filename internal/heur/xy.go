package heur

import "repro/internal/route"

// XY is the baseline routing policy: every communication goes horizontally
// first, then vertically (Section 1). It ignores loads entirely, which is
// why it fails three times more often than the Manhattan heuristics in the
// Section 6 study.
type XY struct{}

// Name returns "XY".
func (XY) Name() string { return "XY" }

// Route routes every communication along its XY path.
func (h XY) Route(in Instance) (route.Routing, error) {
	return h.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter.
func (XY) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	ps := prepare(in, ws)
	for _, c := range in.Comms {
		ps.Set(c.ID, route.AppendXY(ps.Acquire(c.ID, c.Length()), c.Src, c.Dst))
	}
	return singlePathRouting(in, ws), nil
}
