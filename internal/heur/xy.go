package heur

import "repro/internal/route"

// XY is the baseline routing policy: every communication goes horizontally
// first, then vertically (Section 1). It ignores loads entirely, which is
// why it fails three times more often than the Manhattan heuristics in the
// Section 6 study.
type XY struct{}

// Name returns "XY".
func (XY) Name() string { return "XY" }

// Route routes every communication along its XY path.
func (XY) Route(in Instance) (route.Routing, error) {
	paths := make(map[int]route.Path, len(in.Comms))
	for _, c := range in.Comms {
		paths[c.ID] = route.XY(c.Src, c.Dst)
	}
	return singlePathRouting(in.Mesh, in.Comms, paths), nil
}
