package heur

import (
	"slices"

	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// XYI is the XY-Improver heuristic of Section 5.4. It starts from the XY
// routing and repeatedly attacks the most-loaded link: every communication
// crossing that link is tentatively moved off it — a vertical link is
// replaced by the horizontal link entering the same core from the source
// side, a horizontal link by the vertical link leaving the same core
// toward the sink — and the modification that lowers power the most is
// kept. When no modification on a link improves power, the link is set
// aside and the next most-loaded link is tried; after every applied
// improvement the link list is rebuilt and re-sorted.
//
// Improvement decisions use a pseudo-power that extends the model's curve
// continuously beyond the top frequency, so the heuristic can climb down
// from the (frequently infeasible) XY start even while some links are
// overloaded; the final routing is still judged by the strict model.
type XYI struct{}

// Name returns "XYI".
func (XYI) Name() string { return "XYI" }

// Route implements Heuristic.
func (h XYI) Route(in Instance) (route.Routing, error) {
	return h.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter.
func (XYI) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	ps := prepare(in, ws)
	loads := ws.Tracker()
	sc := scratchOf(ws)
	for _, c := range in.Comms {
		p := route.AppendXY(ps.Acquire(c.ID, c.Length()), c.Src, c.Dst)
		ps.Set(c.ID, p)
		loads.AddPath(p, c.Rate)
	}

	sc.list = loads.LinksByLoadDescInto(sc.list)
	list := sc.list
	for len(list) > 0 {
		l := list[0]
		bestID := -1
		var bestRate float64
		var best swapEffect
		for _, c := range in.Comms {
			p := ps.Get(c.ID)
			np, ok := sc.moveOff(p, l)
			if !ok {
				continue
			}
			e := swapEffectOf(in.Mesh, in.Model, loads, p, np, c.Rate, &sc.deltas)
			if e.improves() && (bestID < 0 || e.betterThan(best)) {
				bestID, bestRate, best = c.ID, c.Rate, e
				// Keep the winning candidate in sc.best; the next moveOff
				// builds into the other buffer.
				sc.cand, sc.best = sc.best, sc.cand
			}
		}
		if bestID < 0 {
			list = list[1:]
			continue
		}
		loads.AddPath(ps.Get(bestID), -bestRate)
		loads.AddPath(sc.best, bestRate)
		ps.SetCopy(bestID, sc.best)
		sc.list = loads.LinksByLoadDescInto(sc.list)
		list = sc.list
	}
	return singlePathRouting(in, ws), nil
}

// moveOff applies the Section 5.4 local modification to a Manhattan path
// so that it avoids link l, building the modified path into the scratch's
// candidate buffer and returning ok=false when the Manhattan constraint
// forbids the move:
//
//   - l vertical: the path must enter l.To horizontally from the source
//     side, so the last horizontal move before the hop over l is postponed
//     to just after it (the vertical sub-column shifts one column toward
//     the source).
//   - l horizontal: the path must leave l.From vertically toward the sink,
//     so the first vertical move after the hop is advanced to just before
//     it (the horizontal sub-row shifts one row toward the sink).
func (sc *heurScratch) moveOff(p route.Path, l mesh.Link) (route.Path, bool) {
	t := -1
	for i, pl := range p {
		if pl == l {
			t = i
			break
		}
	}
	if t < 0 {
		return nil, false
	}
	moves := sc.moves[:0]
	for _, pl := range p {
		moves = append(moves, pl.Dir())
	}
	sc.moves = moves
	vertical := l.Dir() == mesh.South || l.Dir() == mesh.North
	next := sc.moves2[:0]
	if vertical {
		j := -1
		for i := t - 1; i >= 0; i-- {
			if moves[i] == mesh.East || moves[i] == mesh.West {
				j = i
				break
			}
		}
		if j < 0 {
			return nil, false
		}
		next = append(next, moves[:j]...)
		next = append(next, moves[j+1:t+1]...)
		next = append(next, moves[j])
		next = append(next, moves[t+1:]...)
	} else {
		j := -1
		for i := t + 1; i < len(moves); i++ {
			if moves[i] == mesh.South || moves[i] == mesh.North {
				j = i
				break
			}
		}
		if j < 0 {
			return nil, false
		}
		next = append(next, moves[:t]...)
		next = append(next, moves[j])
		next = append(next, moves[t:j]...)
		next = append(next, moves[j+1:]...)
	}
	sc.moves2 = next
	out := sc.cand[:0]
	cur := p[0].From
	for _, d := range next {
		nc := cur.Step(d)
		out = append(out, mesh.Link{From: cur, To: nc})
		cur = nc
	}
	sc.cand = out
	return out, true
}

// pseudoLinkPower extends the model's link power continuously past the top
// frequency so overloaded links remain comparable: an overloaded link is
// charged Pleak + P0·(load/unit)^α as if a matching frequency existed.
func pseudoLinkPower(model power.Model, load float64) float64 {
	if load <= 0 {
		return 0
	}
	f, ok := model.QuantizeOK(load)
	if !ok {
		f = load
	}
	return model.Pleak + model.Dynamic(f)
}

// swapEffect is the consequence of replacing one path with another:
// the change in total overload excess (Σ max(0, load−BW)) and the change
// in pseudo power. Negative values are improvements. Effects compare
// lexicographically — feasibility repair dominates power savings — so a
// modification never trades a feasible link set for a cheaper overloaded
// one.
type swapEffect struct {
	excess float64
	power  float64
}

const gainEps = 1e-9

// improves reports whether the effect is a strict improvement.
func (e swapEffect) improves() bool {
	if e.excess < -gainEps {
		return true
	}
	return e.excess <= gainEps && e.power < -gainEps
}

// betterThan orders effects lexicographically (excess, then power).
func (e swapEffect) betterThan(o swapEffect) bool {
	if e.excess != o.excess {
		return e.excess < o.excess
	}
	return e.power < o.power
}

// swapEffectOf computes the effect of rerouting a flow of the given rate
// from path old to path new under the current loads, accumulating the
// per-link deltas in the caller's reusable buffer. Deltas are summed in
// ascending link-id order: float addition is not associative, so a
// map-ordered sum would make near-tie accept decisions depend on map
// iteration order and the "deterministic heuristics" guarantee would
// silently break. (A link appears at most once per Manhattan path, so
// within one id the sum has at most two terms and commutativity makes the
// tie order among equal ids irrelevant.)
func swapEffectOf(m *mesh.Mesh, model power.Model, loads *route.LoadTracker,
	old, new route.Path, rate float64, buf *[]linkDelta) swapEffect {

	deltas := (*buf)[:0]
	for _, l := range old {
		deltas = append(deltas, linkDelta{m.LinkID(l), -rate})
	}
	for _, l := range new {
		deltas = append(deltas, linkDelta{m.LinkID(l), rate})
	}
	*buf = deltas
	slices.SortFunc(deltas, func(a, b linkDelta) int { return a.id - b.id })
	var e swapEffect
	for i := 0; i < len(deltas); {
		id, d := deltas[i].id, deltas[i].d
		for i++; i < len(deltas) && deltas[i].id == id; i++ {
			d += deltas[i].d
		}
		if d == 0 {
			continue
		}
		before, after := loads.LoadID(id), loads.LoadID(id)+d
		e.power += pseudoLinkPower(model, after) - pseudoLinkPower(model, before)
		e.excess += overload(model, after) - overload(model, before)
	}
	return e
}

// linkDelta is one link's pending load change during a swap evaluation.
type linkDelta struct {
	id int
	d  float64
}

func overload(model power.Model, load float64) float64 {
	if load > model.MaxBW {
		return load - model.MaxBW
	}
	return 0
}
