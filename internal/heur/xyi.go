package heur

import (
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// XYI is the XY-Improver heuristic of Section 5.4. It starts from the XY
// routing and repeatedly attacks the most-loaded link: every communication
// crossing that link is tentatively moved off it — a vertical link is
// replaced by the horizontal link entering the same core from the source
// side, a horizontal link by the vertical link leaving the same core
// toward the sink — and the modification that lowers power the most is
// kept. When no modification on a link improves power, the link is set
// aside and the next most-loaded link is tried; after every applied
// improvement every link is back in play, starting from the new
// most-loaded one.
//
// Improvement decisions use a pseudo-power that extends the model's curve
// continuously beyond the top frequency, so the heuristic can climb down
// from the (frequently infeasible) XY start even while some links are
// overloaded; the final routing is still judged by the strict model.
//
// The hot loop runs on the compiled objective engine: candidate scans
// visit only the flows crossing the attacked link (the tracker's
// incidence index), link power probes hit the evaluator's precomputed
// frequency table, and the most-loaded link comes from a lazy heap
// instead of a full re-sort after every applied move. Routings are
// bit-for-bit those of the straightforward scan-all-and-resort
// formulation (pinned by the golden figure tests).
type XYI struct{}

// Name returns "XYI".
func (XYI) Name() string { return "XYI" }

// Route implements Heuristic.
func (h XYI) Route(in Instance) (route.Routing, error) {
	return h.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter.
func (XYI) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	ps := prepare(in, ws)
	loads := ws.Tracker()
	sc := scratchOf(ws)
	ev := evaluatorFor(ws, in.Model)
	loads.EnableIncidence()
	for pos, c := range in.Comms {
		p := route.AppendXY(ps.Acquire(c.ID, c.Length()), c.Src, c.Dst)
		ps.Set(c.ID, p)
		loads.IncludePath(pos, p, c.Rate)
	}
	// Observe after seeding: the per-link pseudo-power cache turns every
	// candidate's "before" probe into an array read.
	loads.Observe(ev)

	h := &sc.heap
	h.Init(loads)
	for {
		lid, ok := h.Pop()
		if !ok {
			break
		}
		l := in.Mesh.LinkByID(lid)
		bestPos, bestLo, bestHi := -1, 0, 0
		var best swapEffect
		// Only flows currently crossing l can be moved off it; the
		// incidence index lists them in instance order, so the scan is
		// the full per-communication scan with the misses skipped.
		for _, pos := range loads.MembersOn(lid) {
			c := in.Comms[pos]
			p := ps.Get(c.ID)
			span, lo, hi, ok := sc.moveOff(p, l)
			if !ok {
				continue
			}
			// Links outside [lo,hi] are identical in the old and new
			// paths (their net delta is exactly zero), so the effect of
			// the full-path swap equals the effect of the span swap.
			e := swapEffectOf(in.Mesh, ev, loads, p[lo:hi+1], span, c.Rate, sc)
			if e.improves() && (bestPos < 0 || e.betterThan(best)) {
				bestPos, bestLo, bestHi, best = int(pos), lo, hi, e
				// Keep the winning span in sc.best; the next moveOff
				// builds into the other buffer.
				sc.cand, sc.best = sc.best, sc.cand
			}
		}
		if bestPos < 0 {
			h.SetAside(lid)
			continue
		}
		c := in.Comms[bestPos]
		old := ps.Get(c.ID)
		full := append(sc.full[:0], old[:bestLo]...)
		full = append(full, sc.best...)
		full = append(full, old[bestHi+1:]...)
		sc.full = full
		// Snapshot the pre-move loads of every affected link, so only
		// links whose load actually changed re-enter the heap (the
		// shared prefix/suffix usually round-trips to the same bits and
		// its heap entries stay exact).
		touched := sc.touched[:0]
		for _, pl := range old {
			id := in.Mesh.LinkIDFast(pl)
			if sc.delta[id] == 0 {
				sc.delta[id] = 1
				touched = append(touched, id)
			}
		}
		for _, pl := range full {
			id := in.Mesh.LinkIDFast(pl)
			if sc.delta[id] == 0 {
				sc.delta[id] = 1
				touched = append(touched, id)
			}
		}
		sc.touched = touched
		preLoads := sc.preLoads[:0]
		for _, id := range touched {
			preLoads = append(preLoads, loads.LoadID(id))
		}
		sc.preLoads = preLoads
		loads.ExcludePath(bestPos, old, c.Rate)
		loads.IncludePath(bestPos, full, c.Rate)
		for k, id := range touched {
			sc.delta[id] = 0
			if loads.LoadID(id) != preLoads[k] {
				h.Push(id)
			}
		}
		// The attacked link was popped, so it has no live entry left:
		// re-push it explicitly even if its load round-tripped bit-exact.
		h.Push(lid)
		h.Reactivate()
		ps.SetCopy(c.ID, full)
	}
	return singlePathRouting(in, ws), nil
}

// moveOff applies the Section 5.4 local modification to a Manhattan path
// so that it avoids link l, returning ok=false when the Manhattan
// constraint forbids the move:
//
//   - l vertical: the path must enter l.To horizontally from the source
//     side, so the last horizontal move before the hop over l is postponed
//     to just after it (the vertical sub-column shifts one column toward
//     the source).
//   - l horizontal: the path must leave l.From vertically toward the sink,
//     so the first vertical move after the hop is advanced to just before
//     it (the horizontal sub-row shifts one row toward the sink).
//
// Only the modified span is built (into the scratch's candidate buffer):
// span holds the new links at positions lo..hi, and every link outside the
// span is unchanged — the permuted moves displace the same totals, so the
// coordinates from hi+1 on coincide with the old path's. Candidate
// evaluation therefore touches O(span) links instead of O(path), and only
// an applied winner pays for full-path materialization.
func (sc *heurScratch) moveOff(p route.Path, l mesh.Link) (span route.Path, lo, hi int, ok bool) {
	t := -1
	for i, pl := range p {
		if pl == l {
			t = i
			break
		}
	}
	if t < 0 {
		return nil, 0, 0, false
	}
	out := sc.cand[:0]
	if l.From.V == l.To.V {
		// Vertical hop: find the last horizontal move before it.
		j := -1
		for i := t - 1; i >= 0; i-- {
			if p[i].From.U == p[i].To.U {
				j = i
				break
			}
		}
		if j < 0 {
			return nil, 0, 0, false
		}
		// New span: the vertical run p[j+1..t] shifted onto the source-side
		// column, then the postponed horizontal move.
		cur := p[j].From
		for i := j + 1; i <= t; i++ {
			nc := mesh.Coord{U: cur.U + p[i].To.U - p[i].From.U, V: cur.V}
			out = append(out, mesh.Link{From: cur, To: nc})
			cur = nc
		}
		nc := mesh.Coord{U: cur.U, V: cur.V + p[j].To.V - p[j].From.V}
		out = append(out, mesh.Link{From: cur, To: nc})
		sc.cand = out
		return out, j, t, true
	}
	// Horizontal hop: find the first vertical move after it.
	j := -1
	for i := t + 1; i < len(p); i++ {
		if p[i].From.V == p[i].To.V {
			j = i
			break
		}
	}
	if j < 0 {
		return nil, 0, 0, false
	}
	// New span: the advanced vertical move, then the horizontal run
	// p[t..j-1] shifted one row toward the sink.
	cur := p[t].From
	nc := mesh.Coord{U: cur.U + p[j].To.U - p[j].From.U, V: cur.V}
	out = append(out, mesh.Link{From: cur, To: nc})
	cur = nc
	for i := t; i < j; i++ {
		nc := mesh.Coord{U: cur.U, V: cur.V + p[i].To.V - p[i].From.V}
		out = append(out, mesh.Link{From: cur, To: nc})
		cur = nc
	}
	sc.cand = out
	return out, t, j, true
}

// swapEffect is the consequence of replacing one path with another:
// the change in total overload excess (Σ max(0, load−BW)) and the change
// in pseudo power. Negative values are improvements. Effects compare
// lexicographically — feasibility repair dominates power savings — so a
// modification never trades a feasible link set for a cheaper overloaded
// one.
type swapEffect struct {
	excess float64
	power  float64
}

const gainEps = 1e-9

// improves reports whether the effect is a strict improvement.
func (e swapEffect) improves() bool {
	if e.excess < -gainEps {
		return true
	}
	return e.excess <= gainEps && e.power < -gainEps
}

// betterThan orders effects lexicographically (excess, then power).
func (e swapEffect) betterThan(o swapEffect) bool {
	if e.excess != o.excess {
		return e.excess < o.excess
	}
	return e.power < o.power
}

// swapEffectOf computes the effect of rerouting a flow of the given rate
// from path old to path new under the current loads, accumulating the
// per-link deltas in the scratch's dense link-indexed buffer. Deltas are
// summed in ascending link-id order: float addition is not associative,
// so an order depending on path direction (or, historically, map
// iteration) would make near-tie accept decisions nondeterministic and
// the "deterministic heuristics" guarantee would silently break. (A link
// appears at most once per Manhattan path, so within one id the sum has
// at most two terms and commutativity makes the tie order among equal ids
// irrelevant.)
func swapEffectOf(m *mesh.Mesh, ev *power.Evaluator, loads *route.LoadTracker,
	old, new route.Path, rate float64, sc *heurScratch) swapEffect {

	if len(sc.delta) != m.LinkIDSpace() {
		sc.delta = make([]float64, m.LinkIDSpace())
	}
	touched := sc.touched[:0]
	for _, l := range old {
		id := m.LinkIDFast(l)
		if sc.delta[id] == 0 {
			touched = append(touched, id)
		}
		sc.delta[id] -= rate
	}
	for _, l := range new {
		id := m.LinkIDFast(l)
		if sc.delta[id] == 0 {
			touched = append(touched, id)
		}
		sc.delta[id] += rate
	}
	sc.touched = touched
	sortIDs(touched)
	cached := loads.Observing()
	var e swapEffect
	for _, id := range touched {
		d := sc.delta[id]
		sc.delta[id] = 0
		if d == 0 {
			continue
		}
		before := loads.LoadID(id)
		after := before + d
		bp := 0.0
		if cached {
			bp = loads.PseudoID(id)
		} else {
			bp = ev.Pseudo(before)
		}
		e.power += ev.Pseudo(after) - bp
		e.excess += ev.Excess(after) - ev.Excess(before)
	}
	return e
}

// sortIDs is an insertion sort for the tiny touched-id lists of
// swapEffectOf (a handful of entries): ascending, cheaper than the
// general-purpose sort's pivot machinery at this size.
func sortIDs(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
