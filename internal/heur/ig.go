package heur

import (
	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/route"
)

// IG is the Improved Greedy heuristic of Section 5.2. All communications
// are first pre-routed virtually, each spread uniformly over every link
// between the successive diagonals of its bounding box (the ideal sharing
// of Figure 3). Communications are then finalized one by one in decreasing
// weight: the pre-routing of the current communication is removed, and a
// single path is built hop by hop, choosing at each step the link whose
// optimistic power-to-go lower bound — the chosen link's power plus, for
// every remaining diagonal, the power of the least-loaded admissible link
// — is smallest. The pre-routed shares of yet-unprocessed communications
// remain on the links, steering early choices away from future congestion.
type IG struct {
	Order comm.Order
}

// Name returns "IG".
func (IG) Name() string { return "IG" }

// Route implements Heuristic.
func (h IG) Route(in Instance) (route.Routing, error) {
	loads := route.NewLoadTracker(in.Mesh)
	for _, c := range in.Comms {
		addIdealShare(in.Mesh, loads, c, +1)
	}

	paths := make(map[int]route.Path, len(in.Comms))
	for _, c := range ordered(in.Comms, h.Order) {
		addIdealShare(in.Mesh, loads, c, -1)
		p := igPath(in, loads, c)
		loads.AddPath(p, c.Rate)
		paths[c.ID] = p
	}
	return singlePathRouting(in.Mesh, in.Comms, paths), nil
}

// addIdealShare adds (sign=+1) or removes (sign=-1) the Figure-3 virtual
// pre-routing of c: at every step t, δ/|frontier(t)| on each admissible
// link between the t-th and (t+1)-th diagonals of c's bounding box.
func addIdealShare(m *mesh.Mesh, loads *route.LoadTracker, c comm.Comm, sign float64) {
	for t := 0; t < c.Length(); t++ {
		frontier := m.FrontierLinks(c.Src, c.Dst, t)
		share := sign * c.Rate / float64(len(frontier))
		for _, l := range frontier {
			loads.Add(l, share)
		}
	}
}

// igPath builds the single path for c using the power-to-go lower bound.
func igPath(in Instance, loads *route.LoadTracker, c comm.Comm) route.Path {
	return greedyPath(in.Mesh, loads, c, func(cand mesh.Link, next mesh.Coord) float64 {
		// Power of the candidate link with c on it…
		bound := loads.LinkPowerWith(in.Model, cand, c.Rate)
		// …plus, for each remaining diagonal between next and the sink,
		// the power of the least-loaded link c could still take.
		rest := comm.Comm{ID: c.ID, Src: next, Dst: c.Dst, Rate: c.Rate}
		for t := 0; t < rest.Length(); t++ {
			best := -1.0
			for _, l := range in.Mesh.FrontierLinks(rest.Src, rest.Dst, t) {
				if load := loads.Load(l); best < 0 || load < best {
					best = load
				}
			}
			if best >= 0 {
				p, err := in.Model.LinkPower(best + c.Rate)
				if err != nil {
					p = inf
				}
				bound += p
			}
		}
		return bound
	})
}
