package heur

import (
	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// IG is the Improved Greedy heuristic of Section 5.2. All communications
// are first pre-routed virtually, each spread uniformly over every link
// between the successive diagonals of its bounding box (the ideal sharing
// of Figure 3). Communications are then finalized one by one in decreasing
// weight: the pre-routing of the current communication is removed, and a
// single path is built hop by hop, choosing at each step the link whose
// optimistic power-to-go lower bound — the chosen link's power plus, for
// every remaining diagonal, the power of the least-loaded admissible link
// — is smallest. The pre-routed shares of yet-unprocessed communications
// remain on the links, steering early choices away from future congestion.
type IG struct {
	Order comm.Order
}

// Name returns "IG".
func (IG) Name() string { return "IG" }

// Route implements Heuristic.
func (h IG) Route(in Instance) (route.Routing, error) {
	return h.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter.
func (h IG) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	ps := prepare(in, ws)
	loads := ws.Tracker()
	sc := scratchOf(ws)
	ev := evaluatorFor(ws, in.Model)
	for _, c := range in.Comms {
		addIdealShare(in.Mesh, loads, sc, c, +1)
	}

	for _, c := range sc.orderedInto(in.Comms, h.Order) {
		addIdealShare(in.Mesh, loads, sc, c, -1)
		p := igPathInto(ps.Acquire(c.ID, c.Length()), in, loads, sc, ev, c)
		loads.AddPath(p, c.Rate)
		ps.Set(c.ID, p)
	}
	return singlePathRouting(in, ws), nil
}

// addIdealShare adds (sign=+1) or removes (sign=-1) the Figure-3 virtual
// pre-routing of c: at every step t, δ/|frontier(t)| on each admissible
// link between the t-th and (t+1)-th diagonals of c's bounding box.
func addIdealShare(m *mesh.Mesh, loads *route.LoadTracker, sc *heurScratch, c comm.Comm, sign float64) {
	for t := 0; t < c.Length(); t++ {
		sc.frontier = m.AppendFrontierLinks(sc.frontier[:0], c.Src, c.Dst, t)
		share := sign * c.Rate / float64(len(sc.frontier))
		for _, l := range sc.frontier {
			loads.Add(l, share)
		}
	}
}

// igPathInto builds the single path for c using the power-to-go lower
// bound, appending onto p.
func igPathInto(p route.Path, in Instance, loads *route.LoadTracker, sc *heurScratch, ev *power.Evaluator, c comm.Comm) route.Path {
	return greedyPathInto(p, c, func(cand mesh.Link, next mesh.Coord) float64 {
		// Power of the candidate link with c on it…
		bound := loads.LinkPowerWithEv(ev, cand, c.Rate)
		// …plus, for each remaining diagonal between next and the sink,
		// the power of the least-loaded link c could still take.
		rest := comm.Comm{ID: c.ID, Src: next, Dst: c.Dst, Rate: c.Rate}
		for t := 0; t < rest.Length(); t++ {
			best := -1.0
			sc.frontier = in.Mesh.AppendFrontierLinks(sc.frontier[:0], rest.Src, rest.Dst, t)
			for _, l := range sc.frontier {
				if load := loads.Load(l); best < 0 || load < best {
					best = load
				}
			}
			if best >= 0 {
				p, ok := ev.LinkPowerOK(best + c.Rate)
				if !ok {
					p = inf
				}
				bound += p
			}
		}
		return bound
	})
}
