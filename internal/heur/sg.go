package heur

import (
	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/route"
)

// SG is the Simple Greedy heuristic of Section 5.1: communications are
// routed one by one (by decreasing weight), each path built hop by hop,
// always taking the least-loaded of the one or two admissible next links.
// Ties go to the link whose endpoint is closest to the straight segment
// from source to sink ("the link that gets closer to the diagonal").
type SG struct {
	// Order overrides the processing order; zero value is the paper's
	// decreasing weight. Only the ordering ablation sets it.
	Order comm.Order
}

// Name returns "SG".
func (SG) Name() string { return "SG" }

// Route implements Heuristic.
func (h SG) Route(in Instance) (route.Routing, error) {
	return h.RouteInto(in, route.NewWorkspace())
}

// RouteInto implements WorkspaceRouter.
func (h SG) RouteInto(in Instance, ws *route.Workspace) (route.Routing, error) {
	ps := prepare(in, ws)
	loads := ws.Tracker()
	sc := scratchOf(ws)
	for _, c := range sc.orderedInto(in.Comms, h.Order) {
		p := greedyPathInto(ps.Acquire(c.ID, c.Length()), c,
			func(cand mesh.Link, _ mesh.Coord) float64 {
				return loads.Load(cand)
			})
		loads.AddPath(p, c.Rate)
		ps.Set(c.ID, p)
	}
	return singlePathRouting(in, ws), nil
}

// greedyPathInto walks from src to dst appending onto p, at each hop
// scoring the admissible next links with cost (lower is better) and
// breaking ties by closeness of the link's endpoint to the source-sink
// diagonal, then by move order.
func greedyPathInto(p route.Path, c comm.Comm,
	cost func(cand mesh.Link, next mesh.Coord) float64) route.Path {

	box := mesh.BoxOf(c.Src, c.Dst)
	d := c.Direction()
	cur := c.Src
	for cur != c.Dst {
		var best mesh.Link
		bestCost, bestDev := 0.0, 0.0
		found := false
		for _, mv := range d.Moves() {
			next := cur.Step(mv)
			if !box.Contains(next) {
				continue
			}
			cand := mesh.Link{From: cur, To: next}
			cc := cost(cand, next)
			dev := diagDeviation(c, next)
			if !found || cc < bestCost || (cc == bestCost && dev < bestDev) {
				best, bestCost, bestDev, found = cand, cc, dev, true
			}
		}
		if !found {
			// Unreachable: the box always offers a move until dst.
			panic("heur: greedy walk stuck before destination")
		}
		p = append(p, best)
		cur = best.To
	}
	return p
}

// diagDeviation measures how far a core sits from the straight segment
// between the communication's endpoints: the absolute cross product of
// (dst−src) with (c−src). Zero on the segment, growing with distance.
func diagDeviation(g comm.Comm, c mesh.Coord) float64 {
	du := float64(g.Dst.U - g.Src.U)
	dv := float64(g.Dst.V - g.Src.V)
	pu := float64(c.U - g.Src.U)
	pv := float64(c.V - g.Src.V)
	cross := du*pv - dv*pu
	if cross < 0 {
		return -cross
	}
	return cross
}
