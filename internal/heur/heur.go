// Package heur implements the single-path (1-MP) routing heuristics of
// Section 5 — SG, IG, TB, XYI and PR — together with the XY baseline and
// the virtual BEST heuristic used in the Section 6 plots.
//
// All heuristics are deterministic: communications are processed by
// decreasing weight (the ordering the paper found best), ties broken by
// communication ID, and link scans use the dense LinkID order.
package heur

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/route"
	"repro/internal/solve"
)

// Instance is one routing problem: a mesh, a power model, and the
// communication set to route. It is the registry's solve.Instance — the
// heuristics predate the unified policy layer and keep their historical
// name for it.
type Instance = solve.Instance

// Heuristic computes a single-path routing for an instance. Route always
// returns a structurally valid routing when err is nil; the routing may
// still be infeasible (some link over bandwidth), which is the paper's
// notion of the heuristic failing on the instance — Solve exposes it via
// route.Result.Feasible.
type Heuristic interface {
	Name() string
	Route(in Instance) (route.Routing, error)
}

// Solve routes the instance with h and evaluates loads, feasibility and
// power under the instance's model.
func Solve(h Heuristic, in Instance) (route.Result, error) {
	if err := in.Validate(); err != nil {
		return route.Result{}, err
	}
	r, err := h.Route(in)
	if err != nil {
		return route.Result{}, err
	}
	return route.Evaluate(r, in.Model), nil
}

// All returns the six concrete heuristics in the paper's presentation
// order: XY, SG, IG, TB, XYI, PR.
func All() []Heuristic {
	return []Heuristic{XY{}, SG{}, IG{}, TB{}, XYI{}, PR{}}
}

// ByName returns the heuristic with the given name (case-sensitive,
// matching the paper's abbreviations) or an error; "BEST" returns Best
// over All().
func ByName(name string) (Heuristic, error) {
	if name == "BEST" {
		return Best{Heuristics: All()}, nil
	}
	for _, h := range All() {
		if h.Name() == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("heur: unknown heuristic %q", name)
}

// order is the processing order used by the greedy heuristics. It is a
// package-level variable only so the ordering-ablation benchmark can vary
// it; production code always sees the paper's ByWeightDesc.
func ordered(set comm.Set, o comm.Order) comm.Set { return set.Sorted(o) }

// singlePathRouting assembles a Routing from one path per communication,
// preserving the original set order.
func singlePathRouting(m *mesh.Mesh, set comm.Set, paths map[int]route.Path) route.Routing {
	flows := make([]route.Flow, 0, len(set))
	for _, c := range set {
		flows = append(flows, route.Flow{Comm: c, Path: paths[c.ID]})
	}
	return route.Routing{Mesh: m, Flows: flows}
}
