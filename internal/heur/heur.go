// Package heur implements the single-path (1-MP) routing heuristics of
// Section 5 — SG, IG, TB, XYI and PR — together with the XY baseline and
// the virtual BEST heuristic used in the Section 6 plots.
//
// All heuristics are deterministic: communications are processed by
// decreasing weight (the ordering the paper found best), ties broken by
// communication ID, and link scans use the dense LinkID order.
package heur

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
)

// Instance is one routing problem: a mesh, a power model, and the
// communication set to route. It is the registry's solve.Instance — the
// heuristics predate the unified policy layer and keep their historical
// name for it.
type Instance = solve.Instance

// Heuristic computes a single-path routing for an instance. Route always
// returns a structurally valid routing when err is nil; the routing may
// still be infeasible (some link over bandwidth), which is the paper's
// notion of the heuristic failing on the instance — Solve exposes it via
// route.Result.Feasible.
type Heuristic interface {
	Name() string
	Route(in Instance) (route.Routing, error)
}

// WorkspaceRouter is implemented by heuristics that can route against a
// reusable dense workspace (all of this package's heuristics do). RouteInto
// produces bit-for-bit the same routing as Route, but reuses the
// workspace's per-comm path slots, load tracker and scratch buffers; the
// returned routing aliases workspace memory per the route.Workspace
// pooling contract.
type WorkspaceRouter interface {
	Heuristic
	RouteInto(in Instance, ws *route.Workspace) (route.Routing, error)
}

// RouteWith routes with h, reusing ws when h supports it (ws may be nil).
func RouteWith(h Heuristic, in Instance, ws *route.Workspace) (route.Routing, error) {
	if ws != nil {
		if wr, ok := h.(WorkspaceRouter); ok {
			return wr.RouteInto(in, ws)
		}
	}
	return h.Route(in)
}

// Solve routes the instance with h and evaluates loads, feasibility and
// power under the instance's model.
func Solve(h Heuristic, in Instance) (route.Result, error) {
	if err := in.Validate(); err != nil {
		return route.Result{}, err
	}
	r, err := h.Route(in)
	if err != nil {
		return route.Result{}, err
	}
	return route.Evaluate(r, in.Model), nil
}

// All returns the six concrete heuristics in the paper's presentation
// order: XY, SG, IG, TB, XYI, PR.
func All() []Heuristic {
	return []Heuristic{XY{}, SG{}, IG{}, TB{}, XYI{}, PR{}}
}

// ByName returns the heuristic with the given name (case-sensitive,
// matching the paper's abbreviations) or an error; "BEST" returns Best
// over All().
func ByName(name string) (Heuristic, error) {
	if name == "BEST" {
		return Best{Heuristics: All()}, nil
	}
	for _, h := range All() {
		if h.Name() == name {
			return h, nil
		}
	}
	return nil, fmt.Errorf("heur: unknown heuristic %q", name)
}

// heurScratch is the pooled per-workspace scratch shared by the greedy
// heuristics: the sorted processing order, frontier buffers, candidate-path
// double buffer, move-sequence buffers, the dense swap-effect accumulator
// and the hot-link heap of the rescan heuristics. One instance lives in
// each workspace under the "heur" slot.
type heurScratch struct {
	ordered comm.Set
	// frontier is the AppendFrontierLinks buffer of IG and PR.
	frontier []mesh.Link
	// heap is the lazy most-loaded-link heap of XYI and PR.
	heap route.LoadHeap
	// cand/best double-buffer candidate paths or spans (TB, XYI, SA): the
	// current candidate is built in cand and swapped into best when it
	// wins; full materializes XYI's winning full path.
	cand, best, full route.Path
	// delta/touched are the link-id-indexed accumulator of swapEffectOf
	// (delta is always restored to zero before returning, touched lists
	// the ids written); preLoads snapshots pre-move loads during XYI's
	// apply step.
	delta    []float64
	touched  []int
	preLoads []float64
	// needEval flags the communications the SA hill-climb must still
	// examine (the dirty set).
	needEval []bool
	// tbArena/tbPaths hold every two-bend candidate path of every
	// communication, enumerated once per SA solve (tbPaths[pos][k] views
	// into the flat arena).
	tbArena route.Path
	tbPaths [][]route.Path
	// bestPaths is SA's best-routing-so-far snapshot.
	bestPaths route.PathSet
	// winners are BEST's current-leader snapshots, one per nesting depth:
	// a candidate may itself run a nested BEST on the same workspace
	// (SA's seed does), which must not clobber the outer leader.
	winners     []*route.PathSet
	winnerDepth int
}

// acquireWinner hands out the leader snapshot slot of the current BEST
// nesting depth and descends; the returned release must be called (it is
// deferred) to ascend again.
func (sc *heurScratch) acquireWinner() (winner *route.PathSet, release func()) {
	if sc.winnerDepth == len(sc.winners) {
		sc.winners = append(sc.winners, new(route.PathSet))
	}
	winner = sc.winners[sc.winnerDepth]
	sc.winnerDepth++
	return winner, func() { sc.winnerDepth-- }
}

// scratchOf returns the workspace's pooled heuristic scratch.
func scratchOf(ws *route.Workspace) *heurScratch {
	return ws.Scratch("heur", func() any { return new(heurScratch) }).(*heurScratch)
}

// evalSlot caches the compiled power evaluator of the workspace's current
// model under the "power.eval" scratch key.
type evalSlot struct{ ev *power.Evaluator }

// evaluatorFor returns the workspace's compiled evaluator for the model,
// recompiling only when the model changed since the last solve — repeated
// trials on one platform (the experiment engine's shape) compile once.
func evaluatorFor(ws *route.Workspace, m power.Model) *power.Evaluator {
	s := ws.Scratch("power.eval", func() any { return new(evalSlot) }).(*evalSlot)
	if s.ev == nil || !s.ev.CompiledFrom(m) {
		s.ev = power.Compile(m)
	}
	return s.ev
}

// orderedInto sorts the set into the scratch's reusable order buffer.
func (sc *heurScratch) orderedInto(set comm.Set, o comm.Order) comm.Set {
	sc.ordered = set.SortedInto(sc.ordered, o)
	return sc.ordered
}

// prepare binds the workspace and sizes its path slots for the instance —
// the common preamble of every RouteInto.
func prepare(in Instance, ws *route.Workspace) *route.PathSet {
	ws.Bind(in.Mesh)
	ps := ws.Paths()
	ps.ResetFor(in.Comms)
	return ps
}

// singlePathRouting assembles a Routing from the workspace's per-comm path
// slots, preserving the original set order. The flow list aliases the
// workspace's pooled buffer.
func singlePathRouting(in Instance, ws *route.Workspace) route.Routing {
	flows := ws.Flows(len(in.Comms))
	ps := ws.Paths()
	for _, c := range in.Comms {
		flows = append(flows, route.Flow{Comm: c, Path: ps.Get(c.ID)})
	}
	ws.SetFlows(flows)
	return route.Routing{Mesh: in.Mesh, Flows: flows}
}
