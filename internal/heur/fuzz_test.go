package heur

import (
	"testing"

	"repro/internal/mesh"
)

// FuzzMoveOff drives the XYI path modification with arbitrary two-bend
// paths and hop selections: the result must always be a valid Manhattan
// path avoiding the targeted link, or a clean refusal.
func FuzzMoveOff(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(5), uint8(6), uint8(2), uint8(3))
	f.Add(uint8(8), uint8(8), uint8(1), uint8(1), uint8(0), uint8(0))
	f.Add(uint8(3), uint8(7), uint8(3), uint8(1), uint8(1), uint8(4))
	m := mesh.MustNew(8, 8)
	f.Fuzz(func(t *testing.T, su, sv, du, dv, cand, hop uint8) {
		src := mesh.Coord{U: int(su%8) + 1, V: int(sv%8) + 1}
		dst := mesh.Coord{U: int(du%8) + 1, V: int(dv%8) + 1}
		if src == dst {
			return
		}
		paths := TwoBendPaths(src, dst)
		p := paths[int(cand)%len(paths)]
		l := p[int(hop)%len(p)]
		np, ok := moveOff(p, l)
		if !ok {
			return
		}
		if err := np.Validate(m, src, dst); err != nil {
			t.Fatalf("moveOff produced invalid path: %v", err)
		}
		for _, nl := range np {
			if nl == l {
				t.Fatalf("moveOff kept the avoided link %v", l)
			}
		}
	})
}

// FuzzTwoBendPaths checks the enumeration invariants for arbitrary
// endpoint pairs.
func FuzzTwoBendPaths(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(7), uint8(7))
	f.Add(uint8(2), uint8(5), uint8(2), uint8(1))
	m := mesh.MustNew(8, 8)
	f.Fuzz(func(t *testing.T, su, sv, du, dv uint8) {
		src := mesh.Coord{U: int(su%8) + 1, V: int(sv%8) + 1}
		dst := mesh.Coord{U: int(du%8) + 1, V: int(dv%8) + 1}
		if src == dst {
			return
		}
		for _, p := range TwoBendPaths(src, dst) {
			if err := p.Validate(m, src, dst); err != nil {
				t.Fatalf("invalid two-bend path %v: %v", p, err)
			}
			if p.Bends() > 2 {
				t.Fatalf("path with %d bends", p.Bends())
			}
		}
	})
}
