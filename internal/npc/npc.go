// Package npc constructs the NP-completeness gadget of Theorem 3
// (Figure 6): a reduction from 2-Partition to the s-MP bandwidth
// feasibility problem on a 2×((s−1)n+2) mesh. It also ships an exact
// pseudo-polynomial 2-Partition solver so both directions of the
// reduction can be exercised end to end.
package npc

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// Reduction is the Theorem 3 instance built from a 2-Partition input.
type Reduction struct {
	Mesh  *mesh.Mesh
	Model power.Model
	Comms comm.Set
	// S is the per-communication path budget of the s-MP rule.
	S int
	// A is the 2-Partition input (strictly positive integers).
	A []int
	// Sum is Σ A.
	Sum int
	// N is len(A).
	N int
	// Q is the mesh width (s−1)·n + 2.
	Q int
}

// Build constructs the reduction for input a and path budget s ≥ 2,
// following the proof of Theorem 3 verbatim:
//
//	p = 2, q = (s−1)·n + 2, BW = S/2 + (s−1)·n
//	γi       = (C(1,(i−1)(s−1)+1), C(2,q), a_i + s − 1)   for i = 1..n
//	γ(n+i')  = (C(1,i'), C(2,i'), BW−1)                    for i' = 1..q−2
//	γ(nc−1)  = (C(1,q−1), C(2,q−1), BW−S/2)
//	γ(nc)    = (C(1,q),   C(2,q),   BW−S/2)
//
// The one-hop vertical fillers leave slack 1 on the first q−2 vertical
// links and slack S/2 on the last two; total demand equals total vertical
// capacity, so every vertical link must be saturated exactly.
func Build(a []int, s int) (*Reduction, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("npc: empty 2-partition input")
	}
	if s < 2 {
		return nil, fmt.Errorf("npc: path budget s=%d < 2", s)
	}
	sum := 0
	for i, ai := range a {
		if ai <= 0 {
			return nil, fmt.Errorf("npc: a[%d]=%d not strictly positive", i, ai)
		}
		sum += ai
	}
	if sum%2 != 0 {
		// An odd sum trivially has no partition; the gadget is still
		// well defined with BW = S/2 rounded down being fractional —
		// keep it exact by using float rates below.
	}
	q := (s-1)*n + 2
	bw := float64(sum)/2 + float64((s-1)*n)
	m := mesh.MustNew(2, q)

	set := make(comm.Set, 0, n+q)
	for i := 1; i <= n; i++ {
		set = append(set, comm.Comm{
			ID:   i,
			Src:  mesh.Coord{U: 1, V: (i-1)*(s-1) + 1},
			Dst:  mesh.Coord{U: 2, V: q},
			Rate: float64(a[i-1] + s - 1),
		})
	}
	for ip := 1; ip <= q-2; ip++ {
		set = append(set, comm.Comm{
			ID:   n + ip,
			Src:  mesh.Coord{U: 1, V: ip},
			Dst:  mesh.Coord{U: 2, V: ip},
			Rate: bw - 1,
		})
	}
	set = append(set,
		comm.Comm{ID: n + q - 1, Src: mesh.Coord{U: 1, V: q - 1}, Dst: mesh.Coord{U: 2, V: q - 1}, Rate: bw - float64(sum)/2},
		comm.Comm{ID: n + q, Src: mesh.Coord{U: 1, V: q}, Dst: mesh.Coord{U: 2, V: q}, Rate: bw - float64(sum)/2},
	)

	model := power.Model{Pleak: 1, P0: 1, Alpha: 2.5, MaxBW: bw}
	return &Reduction{Mesh: m, Model: model, Comms: set, S: s, A: a, Sum: sum, N: n, Q: q}, nil
}

// Partition solves 2-Partition exactly by subset-sum dynamic programming:
// it returns a subset I of indices with Σ_{i∈I} a_i = Σa/2, or ok=false
// when no such subset exists (including odd sums). The reconstruction is
// sound because from[s] records the *first* element index that reached s,
// and its predecessor sum was reachable using strictly earlier elements,
// so the recovered chain has strictly decreasing indices.
func Partition(a []int) (subset []int, ok bool) {
	sum := 0
	for _, x := range a {
		sum += x
	}
	if sum%2 != 0 {
		return nil, false
	}
	half := sum / 2
	// from[s] = index of the element that first reached sum s; -1 for
	// unreached, -2 for the empty sum.
	from := make([]int, half+1)
	for i := range from {
		from[i] = -1
	}
	from[0] = -2
	for i, x := range a {
		for s := half; s >= x; s-- {
			if from[s] == -1 && from[s-x] != -1 {
				from[s] = i
			}
		}
	}
	if from[half] == -1 {
		return nil, false
	}
	for s := half; s > 0; {
		i := from[s]
		subset = append(subset, i)
		s -= a[i]
	}
	return subset, true
}

// RoutingFromPartition materializes the proof's "if" direction: given a
// subset I with Σ_{i∈I} a_i = S/2, it builds the s-MP routing in which
// γi sends one unit down each of its s−1 dedicated columns and its a_i
// remainder down column q−1 (i ∈ I) or column q (i ∉ I). The routing
// saturates every vertical link exactly and satisfies the s-path budget.
func (r *Reduction) RoutingFromPartition(subset []int) (route.Routing, error) {
	inI := make(map[int]bool, len(subset))
	for _, i := range subset {
		if i < 0 || i >= r.N {
			return route.Routing{}, fmt.Errorf("npc: subset index %d out of range", i)
		}
		inI[i] = true
	}
	var flows []route.Flow
	// Traversal communications: s−1 unit fragments plus the a_i bulk.
	for i := 1; i <= r.N; i++ {
		g := r.Comms[i-1]
		base := (i - 1) * (r.S - 1)
		for k := 1; k <= r.S-1; k++ {
			flows = append(flows, route.Flow{
				Comm: comm.Comm{ID: g.ID, Src: g.Src, Dst: g.Dst, Rate: 1},
				Path: descendAt(g.Src, g.Dst, base+k),
			})
		}
		bulkCol := r.Q
		if inI[i-1] {
			bulkCol = r.Q - 1
		}
		flows = append(flows, route.Flow{
			Comm: comm.Comm{ID: g.ID, Src: g.Src, Dst: g.Dst, Rate: float64(r.A[i-1])},
			Path: descendAt(g.Src, g.Dst, bulkCol),
		})
	}
	// Filler communications: forced one-hop vertical paths.
	for _, g := range r.Comms[r.N:] {
		flows = append(flows, route.Flow{Comm: g, Path: route.XY(g.Src, g.Dst)})
	}
	return route.Routing{Mesh: r.Mesh, Flows: flows}, nil
}

// descendAt returns the Manhattan path from src (row 1) to dst (row 2,
// column q) that goes east along row 1 to column col, takes the vertical
// link there, and continues east along row 2.
func descendAt(src, dst mesh.Coord, col int) route.Path {
	mid := mesh.Coord{U: 1, V: col}
	p := route.XY(src, mid)
	p = append(p, mesh.Link{From: mid, To: mesh.Coord{U: 2, V: col}})
	return append(p, route.XY(mesh.Coord{U: 2, V: col}, dst)...)
}

// Feasible decides the gadget's s-MP feasibility. By Theorem 3 this is
// exactly the 2-Partition question on A, which Partition answers in
// pseudo-polynomial time; Feasible also returns a witness routing when
// one exists.
func (r *Reduction) Feasible() (route.Routing, bool, error) {
	subset, ok := Partition(r.A)
	if !ok {
		return route.Routing{}, false, nil
	}
	routing, err := r.RoutingFromPartition(subset)
	if err != nil {
		return route.Routing{}, false, err
	}
	return routing, true, nil
}

// VerticalSaturation returns the loads of the q vertical row-1→row-2
// links of a routing on the gadget mesh; in any feasible gadget routing
// every entry equals BW (the proof's saturation argument).
func (r *Reduction) VerticalSaturation(routing route.Routing) []float64 {
	loads := routing.Loads()
	out := make([]float64, r.Q)
	for v := 1; v <= r.Q; v++ {
		l := mesh.Link{From: mesh.Coord{U: 1, V: v}, To: mesh.Coord{U: 2, V: v}}
		out[v-1] = loads[r.Mesh.LinkID(l)]
	}
	return out
}
