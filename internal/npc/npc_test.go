package npc

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestPartitionKnownCases(t *testing.T) {
	cases := []struct {
		a    []int
		want bool
	}{
		{[]int{1, 1}, true},
		{[]int{3, 1, 1, 2, 2, 1}, true}, // 3+2 = 1+1+2+1
		{[]int{1, 2}, false},
		{[]int{2, 2, 3}, false}, // odd sum
		{[]int{5}, false},
		{[]int{4, 4, 4, 4}, true},
		{[]int{100, 1, 1, 1}, false},
	}
	for _, tc := range cases {
		subset, ok := Partition(tc.a)
		if ok != tc.want {
			t.Errorf("Partition(%v) ok = %v, want %v", tc.a, ok, tc.want)
			continue
		}
		if !ok {
			continue
		}
		sum := 0
		for _, x := range tc.a {
			sum += x
		}
		got := 0
		seen := map[int]bool{}
		for _, i := range subset {
			if seen[i] {
				t.Fatalf("Partition(%v) reuses index %d", tc.a, i)
			}
			seen[i] = true
			got += tc.a[i]
		}
		if got*2 != sum {
			t.Errorf("Partition(%v) subset sums to %d, want %d", tc.a, got, sum/2)
		}
	}
}

// The DP agrees with brute force on random small inputs.
func TestPartitionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8) + 1
		a := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(20) + 1
		}
		_, got := Partition(a)
		if want := bruteForcePartition(a); got != want {
			t.Fatalf("Partition(%v) = %v, brute force %v", a, got, want)
		}
	}
}

func bruteForcePartition(a []int) bool {
	sum := 0
	for _, x := range a {
		sum += x
	}
	if sum%2 != 0 {
		return false
	}
	for mask := 0; mask < 1<<len(a); mask++ {
		s := 0
		for i := range a {
			if mask&(1<<i) != 0 {
				s += a[i]
			}
		}
		if s*2 == sum {
			return true
		}
	}
	return false
}

func TestBuildStructure(t *testing.T) {
	a := []int{3, 1, 2, 2}
	s := 3
	red, err := Build(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if red.Q != (s-1)*len(a)+2 {
		t.Errorf("Q = %d, want %d", red.Q, (s-1)*len(a)+2)
	}
	if got, want := red.Model.MaxBW, float64(8)/2+float64((s-1)*len(a)); got != want {
		t.Errorf("BW = %g, want %g", got, want)
	}
	if len(red.Comms) != len(a)+red.Q {
		t.Errorf("nc = %d, want %d", len(red.Comms), len(a)+red.Q)
	}
	if err := red.Comms.Validate(red.Mesh); err != nil {
		t.Fatal(err)
	}
	// Total demand equals total vertical capacity (the saturation setup).
	totalVertical := 0.0
	for _, c := range red.Comms {
		totalVertical += c.Rate // every comm crosses rows exactly once
	}
	if want := float64(red.Q) * red.Model.MaxBW; math.Abs(totalVertical-want) > 1e-9 {
		t.Errorf("total vertical demand %g, want capacity %g", totalVertical, want)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, 2); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Build([]int{1, -2}, 2); err == nil {
		t.Error("negative element accepted")
	}
	if _, err := Build([]int{1, 1}, 1); err == nil {
		t.Error("s=1 accepted")
	}
}

// Forward direction of Theorem 3: a partition yields a valid s-MP routing
// that saturates every vertical link exactly at BW.
func TestReductionForward(t *testing.T) {
	for _, tc := range [][]int{
		{1, 1},
		{3, 1, 1, 2, 2, 1},
		{4, 4, 4, 4},
		{7, 3, 2, 2},
	} {
		for _, s := range []int{2, 3} {
			red, err := Build(tc, s)
			if err != nil {
				t.Fatal(err)
			}
			routing, ok, err := red.Feasible()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("Build(%v,%d): expected feasible", tc, s)
			}
			if err := routing.Validate(red.Comms, red.S); err != nil {
				t.Fatalf("Build(%v,%d): witness routing invalid: %v", tc, s, err)
			}
			for v, load := range red.VerticalSaturation(routing) {
				if math.Abs(load-red.Model.MaxBW) > 1e-9 {
					t.Fatalf("Build(%v,%d): vertical link %d load %g, want BW %g",
						tc, s, v+1, load, red.Model.MaxBW)
				}
			}
		}
	}
}

// Converse direction (via the proof's equivalence): inputs with no
// partition make the gadget infeasible.
func TestReductionConverse(t *testing.T) {
	for _, tc := range [][]int{
		{1, 2},
		{2, 2, 3},
		{100, 1, 1, 1},
	} {
		red, err := Build(tc, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := red.Feasible(); ok {
			t.Errorf("Build(%v): expected infeasible gadget", tc)
		}
	}
}

// The reduction is polynomial in the input size: mesh cells and
// communication count grow linearly in n and s.
func TestReductionSizePolynomial(t *testing.T) {
	a := make([]int, 30)
	for i := range a {
		a[i] = i + 1
	}
	red, err := Build(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if red.Mesh.NumCores() != 2*red.Q {
		t.Errorf("cores = %d, want %d", red.Mesh.NumCores(), 2*red.Q)
	}
	if len(red.Comms) != 30+red.Q {
		t.Errorf("comms = %d", len(red.Comms))
	}
}

func TestRoutingFromPartitionRejectsBadSubset(t *testing.T) {
	red, err := Build([]int{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := red.RoutingFromPartition([]int{5}); err == nil {
		t.Error("out-of-range subset accepted")
	}
}

// Partition subsets come back sorted-free but must index distinct
// elements; exercise reconstruction on a case with duplicates.
func TestPartitionDuplicates(t *testing.T) {
	a := []int{2, 2, 2, 2, 2, 2}
	subset, ok := Partition(a)
	if !ok {
		t.Fatal("expected partition")
	}
	sort.Ints(subset)
	for i := 1; i < len(subset); i++ {
		if subset[i] == subset[i-1] {
			t.Fatal("duplicate index in subset")
		}
	}
	if len(subset) != 3 {
		t.Errorf("subset size %d, want 3", len(subset))
	}
}
