package npc

import "testing"

// FuzzPartition checks the subset-sum DP against its own witness on
// arbitrary inputs: whenever a partition is reported, the returned subset
// must be valid (distinct indices, exact half sum).
func FuzzPartition(f *testing.F) {
	f.Add([]byte{1, 1})
	f.Add([]byte{3, 1, 1, 2, 2, 1})
	f.Add([]byte{100, 1, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 24 {
			return
		}
		a := make([]int, len(raw))
		sum := 0
		for i, b := range raw {
			a[i] = int(b%50) + 1
			sum += a[i]
		}
		subset, ok := Partition(a)
		if !ok {
			if sum%2 == 0 && len(a) <= 16 && bruteForcePartition(a) {
				t.Fatalf("Partition(%v) missed an existing partition", a)
			}
			return
		}
		seen := make(map[int]bool)
		got := 0
		for _, i := range subset {
			if i < 0 || i >= len(a) || seen[i] {
				t.Fatalf("Partition(%v): bad witness %v", a, subset)
			}
			seen[i] = true
			got += a[i]
		}
		if got*2 != sum {
			t.Fatalf("Partition(%v): witness sums to %d, want %d", a, got, sum/2)
		}
		// The gadget construction must accept every valid witness.
		red, err := Build(a, 2)
		if err != nil {
			t.Fatal(err)
		}
		routing, err := red.RoutingFromPartition(subset)
		if err != nil {
			t.Fatal(err)
		}
		if err := routing.Validate(red.Comms, red.S); err != nil {
			t.Fatalf("witness routing invalid: %v", err)
		}
	})
}
