package multipath

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

// The Figure 4 pattern conserves flow at every size.
func TestTheorem1FlowConservation(t *testing.T) {
	for pp := 1; pp <= 8; pp++ {
		f, err := Theorem1Flow(pp, 1000)
		if err != nil {
			t.Fatalf("pPrime=%d: %v", pp, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("pPrime=%d: %v", pp, err)
		}
	}
	if _, err := Theorem1Flow(0, 1); err == nil {
		t.Error("pPrime=0 accepted")
	}
}

// The proof's bound: Pmax ≤ 2·2·K^α·Σ 1/k^{α−1} ≤ 8·K^α for α=3, while
// PXY = 2(p−1)K^α, so the ratio exceeds (p−1)/4 and grows with p.
func TestTheorem1RatioGrowsLinearly(t *testing.T) {
	alpha := 3.0
	prev := 0.0
	for _, pp := range []int{2, 4, 8, 16} {
		ratio, err := Theorem1Ratio(pp, alpha)
		if err != nil {
			t.Fatal(err)
		}
		p := float64(2 * pp)
		if ratio <= prev {
			t.Errorf("ratio not increasing: p=%g ratio=%g prev=%g", p, ratio, prev)
		}
		if ratio < (p-1)/4 {
			t.Errorf("p=%g: ratio %g below the proof's (p−1)/4 floor", p, ratio)
		}
		prev = ratio
	}
}

// The pattern's power matches the proof's closed form:
// Pmax/2 = Σ_{k=1..p'} k·h_k^α + Σ_{k<p'} Σ_j (r_{k,j}^α + d_{k,j}^α).
func TestTheorem1FlowPowerClosedForm(t *testing.T) {
	pp := 4
	k := 1.0
	alpha := 3.0
	f, err := Theorem1Flow(pp, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Power(power.Theory(alpha))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for kk := 1; kk <= pp; kk++ {
		h := k / float64(kk)
		want += float64(kk) * math.Pow(h, alpha)
	}
	for kk := 1; kk <= pp-1; kk++ {
		for j := 1; j <= kk; j++ {
			r := float64(kk+1-j) / float64(kk*(kk+1)) * k
			d := float64(j) / float64(kk*(kk+1)) * k
			want += math.Pow(r, alpha) + math.Pow(d, alpha)
		}
	}
	want *= 2
	if math.Abs(b.Total()-want) > 1e-9 {
		t.Fatalf("pattern power %g, want closed form %g", b.Total(), want)
	}
}

// Decomposition yields valid Manhattan flows that sum to the field.
func TestDecomposeTheorem1(t *testing.T) {
	f, err := Theorem1Flow(3, 600)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := f.Decompose(7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	loads := route.NewLoadTracker(f.Mesh)
	for _, fl := range flows {
		if fl.Comm.ID != 7 {
			t.Fatalf("fragment lost ID: %v", fl.Comm)
		}
		if err := fl.Path.Validate(f.Mesh, f.Src, f.Dst); err != nil {
			t.Fatalf("fragment path invalid: %v", err)
		}
		total += fl.Comm.Rate
		loads.AddPath(fl.Path, fl.Comm.Rate)
	}
	if math.Abs(total-600) > 1e-6 {
		t.Fatalf("fragments carry %g, want 600", total)
	}
	// Superposition reproduces the field exactly.
	want := f.Loads()
	got := loads.Loads()
	for id := range want {
		if math.Abs(want[id]-got[id]) > 1e-6 {
			t.Fatalf("link %d: decomposed load %g, field %g", id, got[id], want[id])
		}
	}
}

func TestDecomposeRejectsBrokenFlow(t *testing.T) {
	m := mesh.MustNew(3, 3)
	f := NewFlowField(m, mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 3, V: 3}, 10)
	f.Add(mesh.Link{From: mesh.Coord{U: 1, V: 1}, To: mesh.Coord{U: 1, V: 2}}, 10)
	// Flow vanishes at (1,2): conservation violated.
	if _, err := f.Decompose(0); err == nil {
		t.Error("broken flow decomposed")
	}
}

// Section 3.5's 2-MP example: splitting the rate-3 communication lets the
// routing reach power 32, below the best single-path 56.
func TestEqualSplitBeatsSinglePathOnFigure2(t *testing.T) {
	m := mesh.MustNew(2, 2)
	model := power.Figure2()
	set := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 3},
	}
	res, err := EqualSplit{S: 2, Inner: heur.TB{}}.Solve(m, model, set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("2-MP infeasible: %v", res.Err)
	}
	if err := res.Routing.Validate(set, 2); err != nil {
		t.Fatal(err)
	}
	// Equal halves of γ2 (1.5+1.5) with γ1 on one side: loads 2.5/1.5,
	// power 2·(2.5³+1.5³) = 38. Better than 1-MP's 56, though the
	// paper's uneven 1+2 split reaches 32.
	if res.Power.Total() >= 56 {
		t.Errorf("2-MP power %g not better than single-path 56", res.Power.Total())
	}
}

// s-MP routings remain structurally valid on random instances and never
// exceed the per-communication path budget.
func TestEqualSplitValidOnRandom(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	for _, s := range []int{1, 2, 4} {
		for seed := int64(0); seed < 4; seed++ {
			set := workload.New(m, seed).Uniform(20, 100, 2500)
			r, err := EqualSplit{S: s}.Route(m, model, set)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Validate(set, s); err != nil {
				t.Fatalf("s=%d seed=%d: %v", s, seed, err)
			}
		}
	}
	if _, err := (EqualSplit{S: 0}).Route(m, model, nil); err == nil {
		t.Error("S=0 accepted")
	}
}

// Splitting can only help on the heavy-twins instance: 4-MP succeeds where
// XY fails outright. (Two twins of 3400 exactly fill the two source
// gateway links at 3400 each when split evenly.)
func TestEqualSplitRelievesOverload(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := comm.Set{
		{ID: 0, Src: mesh.Coord{U: 2, V: 2}, Dst: mesh.Coord{U: 6, V: 6}, Rate: 3400},
		{ID: 1, Src: mesh.Coord{U: 2, V: 2}, Dst: mesh.Coord{U: 6, V: 6}, Rate: 3400},
	}
	res, err := EqualSplit{S: 4, Inner: heur.TB{}}.Solve(m, model, set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("4-MP failed on triple twins: %v", res.Err)
	}
	xy, err := heur.Solve(heur.XY{}, heur.Instance{Mesh: m, Model: model, Comms: set})
	if err != nil {
		t.Fatal(err)
	}
	if xy.Feasible {
		t.Fatal("XY unexpectedly feasible on triple twins")
	}
}
