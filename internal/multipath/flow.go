// Package multipath implements the multi-path routing rules of Section
// 3.3: s-MP split routing (a communication divided over up to s Manhattan
// paths) and the max-MP flow pattern of Theorem 1 (Figure 4), which
// realizes the O(p) power gain over XY for single source/destination
// traffic. It also provides flow-to-path decomposition so flow fields can
// be materialized as route.Routing values.
package multipath

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// FlowField is a link-indexed flow of a single commodity from Src to Dst.
// Flows are stored in a dense per-link vector (mesh.LinkID indexed), so
// accumulation, evaluation and decomposition run map-free.
type FlowField struct {
	Mesh     *mesh.Mesh
	Src, Dst mesh.Coord
	Rate     float64 // total rate injected at Src and absorbed at Dst
	links    []float64
}

// NewFlowField returns an empty flow field.
func NewFlowField(m *mesh.Mesh, src, dst mesh.Coord, rate float64) *FlowField {
	return &FlowField{Mesh: m, Src: src, Dst: dst, Rate: rate, links: make([]float64, m.LinkIDSpace())}
}

// Add adds rate to link l.
func (f *FlowField) Add(l mesh.Link, rate float64) {
	f.links[f.Mesh.LinkID(l)] += rate
}

// Load returns the flow on link l.
func (f *FlowField) Load(l mesh.Link) float64 { return f.links[f.Mesh.LinkID(l)] }

// Loads returns a copy of the dense per-link load vector.
func (f *FlowField) Loads() []float64 {
	out := make([]float64, len(f.links))
	copy(out, f.links)
	return out
}

// LoadsView returns the field's internal load vector without copying
// (mesh.LinkID indexed). It must not be mutated except through Add.
func (f *FlowField) LoadsView() []float64 { return f.links }

// Validate checks flow conservation: Rate out of Src, Rate into Dst, and
// in-flow equal to out-flow at every other core; all link flows must be
// non-negative.
func (f *FlowField) Validate() error {
	net := make([]float64, f.Mesh.NumCores())
	for id, x := range f.links {
		if x == 0 {
			continue
		}
		if x < -1e-9 {
			return fmt.Errorf("multipath: negative flow %g on %v", x, f.Mesh.LinkByID(id))
		}
		l := f.Mesh.LinkByID(id)
		net[f.Mesh.CoordIndex(l.From)] += x
		net[f.Mesh.CoordIndex(l.To)] -= x
	}
	for i, x := range net {
		c := f.Mesh.CoordAt(i)
		want := 0.0
		switch c {
		case f.Src:
			want = f.Rate
		case f.Dst:
			want = -f.Rate
		}
		if math.Abs(x-want) > 1e-6 {
			return fmt.Errorf("multipath: conservation violated at %v: net %g, want %g", c, x, want)
		}
	}
	return nil
}

// Power evaluates the flow's link loads under the model (no copy).
func (f *FlowField) Power(model power.Model) (power.Breakdown, error) {
	return model.Total(f.links)
}

// Decompose extracts a path decomposition of the flow: a set of flows
// along explicit Manhattan paths whose superposition is the field. The
// algorithm repeatedly follows the largest-rate outgoing link from Src and
// peels off the bottleneck rate; it terminates because each round zeroes
// at least one link. An error is returned if the field is not a valid
// conserved flow or a walk fails to make progress (non-Manhattan cycles).
func (f *FlowField) Decompose(id int) ([]route.Flow, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	residual := make([]float64, len(f.links))
	for lid, x := range f.links {
		if x > 1e-12 {
			residual[lid] = x
		}
	}
	var flows []route.Flow
	remaining := f.Rate
	for remaining > 1e-9 {
		var path route.Path
		cur := f.Src
		bottleneck := math.Inf(1)
		for cur != f.Dst {
			bestID, bestRate := -1, 0.0
			for _, n := range f.Mesh.Neighbors(cur) {
				lid := f.Mesh.LinkID(mesh.Link{From: cur, To: n})
				if r := residual[lid]; r > bestRate+1e-12 {
					bestID, bestRate = lid, r
				}
			}
			if bestID < 0 {
				return nil, fmt.Errorf("multipath: stuck at %v during decomposition", cur)
			}
			path = append(path, f.Mesh.LinkByID(bestID))
			if bestRate < bottleneck {
				bottleneck = bestRate
			}
			cur = f.Mesh.LinkByID(bestID).To
			if len(path) > f.Mesh.NumLinks() {
				return nil, fmt.Errorf("multipath: cyclic flow detected")
			}
		}
		if bottleneck > remaining {
			bottleneck = remaining
		}
		for _, l := range path {
			lid := f.Mesh.LinkID(l)
			residual[lid] -= bottleneck
			if residual[lid] <= 1e-12 {
				residual[lid] = 0
			}
		}
		flows = append(flows, route.Flow{
			Comm: comm.Comm{ID: id, Src: f.Src, Dst: f.Dst, Rate: bottleneck},
			Path: path,
		})
		remaining -= bottleneck
	}
	return flows, nil
}
