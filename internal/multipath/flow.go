// Package multipath implements the multi-path routing rules of Section
// 3.3: s-MP split routing (a communication divided over up to s Manhattan
// paths) and the max-MP flow pattern of Theorem 1 (Figure 4), which
// realizes the O(p) power gain over XY for single source/destination
// traffic. It also provides flow-to-path decomposition so flow fields can
// be materialized as route.Routing values.
package multipath

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// FlowField is a link-indexed flow of a single commodity from Src to Dst.
type FlowField struct {
	Mesh     *mesh.Mesh
	Src, Dst mesh.Coord
	Rate     float64 // total rate injected at Src and absorbed at Dst
	links    map[int]float64
}

// NewFlowField returns an empty flow field.
func NewFlowField(m *mesh.Mesh, src, dst mesh.Coord, rate float64) *FlowField {
	return &FlowField{Mesh: m, Src: src, Dst: dst, Rate: rate, links: make(map[int]float64)}
}

// Add adds rate to link l.
func (f *FlowField) Add(l mesh.Link, rate float64) {
	f.links[f.Mesh.LinkID(l)] += rate
}

// Load returns the flow on link l.
func (f *FlowField) Load(l mesh.Link) float64 { return f.links[f.Mesh.LinkID(l)] }

// Loads returns the dense per-link load vector.
func (f *FlowField) Loads() []float64 {
	out := make([]float64, f.Mesh.LinkIDSpace())
	for id, x := range f.links {
		out[id] = x
	}
	return out
}

// Validate checks flow conservation: Rate out of Src, Rate into Dst, and
// in-flow equal to out-flow at every other core; all link flows must be
// non-negative.
func (f *FlowField) Validate() error {
	net := make(map[mesh.Coord]float64)
	for id, x := range f.links {
		if x < -1e-9 {
			return fmt.Errorf("multipath: negative flow %g on %v", x, f.Mesh.LinkByID(id))
		}
		l := f.Mesh.LinkByID(id)
		net[l.From] += x
		net[l.To] -= x
	}
	for c, x := range net {
		want := 0.0
		switch c {
		case f.Src:
			want = f.Rate
		case f.Dst:
			want = -f.Rate
		}
		if math.Abs(x-want) > 1e-6 {
			return fmt.Errorf("multipath: conservation violated at %v: net %g, want %g", c, x, want)
		}
	}
	return nil
}

// Power evaluates the flow's link loads under the model.
func (f *FlowField) Power(model power.Model) (power.Breakdown, error) {
	return model.Total(f.Loads())
}

// Decompose extracts a path decomposition of the flow: a set of flows
// along explicit Manhattan paths whose superposition is the field. The
// algorithm repeatedly follows the largest-rate outgoing link from Src and
// peels off the bottleneck rate; it terminates because each round zeroes
// at least one link. An error is returned if the field is not a valid
// conserved flow or a walk fails to make progress (non-Manhattan cycles).
func (f *FlowField) Decompose(id int) ([]route.Flow, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	residual := make(map[int]float64, len(f.links))
	for lid, x := range f.links {
		if x > 1e-12 {
			residual[lid] = x
		}
	}
	var flows []route.Flow
	remaining := f.Rate
	for remaining > 1e-9 {
		var path route.Path
		cur := f.Src
		bottleneck := math.Inf(1)
		for cur != f.Dst {
			bestID, bestRate := -1, 0.0
			for _, n := range f.Mesh.Neighbors(cur) {
				lid := f.Mesh.LinkID(mesh.Link{From: cur, To: n})
				if r := residual[lid]; r > bestRate+1e-12 {
					bestID, bestRate = lid, r
				}
			}
			if bestID < 0 {
				return nil, fmt.Errorf("multipath: stuck at %v during decomposition", cur)
			}
			path = append(path, f.Mesh.LinkByID(bestID))
			if bestRate < bottleneck {
				bottleneck = bestRate
			}
			cur = f.Mesh.LinkByID(bestID).To
			if len(path) > f.Mesh.NumLinks() {
				return nil, fmt.Errorf("multipath: cyclic flow detected")
			}
		}
		if bottleneck > remaining {
			bottleneck = remaining
		}
		for _, l := range path {
			lid := f.Mesh.LinkID(l)
			residual[lid] -= bottleneck
			if residual[lid] <= 1e-12 {
				delete(residual, lid)
			}
		}
		flows = append(flows, route.Flow{
			Comm: comm.Comm{ID: id, Src: f.Src, Dst: f.Dst, Rate: bottleneck},
			Path: path,
		})
		remaining -= bottleneck
	}
	return flows, nil
}
