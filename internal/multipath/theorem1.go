package multipath

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// Theorem1Flow builds the Figure 4 max-MP routing pattern on a p×p mesh
// with p = 2·pPrime, carrying total rate K from C(1,1) to C(p,p). The
// expansion half uses the coefficients of the proof of Theorem 1:
//
//	h_k     = K/k                      (k = 1..p')
//	r_{k,j} = (k+1−j)/(k(k+1)) · K     (k = 1..p'−1, j = 1..k)
//	d_{k,j} = j/(k(k+1)) · K
//
// on odd diagonals the k cores C(j, 2k−j) each forward h_k east; on even
// diagonals the cores C(j, 2k+1−j) split their h_k into r (east) and d
// (south). The contraction half is the mirror image through the
// anti-diagonal. The resulting flow spreads the traffic over Θ(k) links at
// diagonal k, bringing the power to O(K^α) versus the XY routing's
// Θ(p·K^α) — the Theorem 1 separation.
func Theorem1Flow(pPrime int, k float64) (*FlowField, error) {
	if pPrime < 1 {
		return nil, fmt.Errorf("multipath: pPrime %d < 1", pPrime)
	}
	p := 2 * pPrime
	m := mesh.MustNew(p, p)
	src := mesh.Coord{U: 1, V: 1}
	dst := mesh.Coord{U: p, V: p}
	f := NewFlowField(m, src, dst, k)

	h := func(kk int) float64 { return k / float64(kk) }
	r := func(kk, j int) float64 { return float64(kk+1-j) / float64(kk*(kk+1)) * k }
	d := func(kk, j int) float64 { return float64(j) / float64(kk*(kk+1)) * k }

	// mirror reflects a coordinate through the anti-diagonal u+v = p+1.
	mirror := func(c mesh.Coord) mesh.Coord { return mesh.Coord{U: p + 1 - c.V, V: p + 1 - c.U} }
	// addBoth adds the expansion link and its contraction-half image
	// (endpoints mirrored and swapped so the image still flows to dst).
	addBoth := func(l mesh.Link, rate float64) {
		f.Add(l, rate)
		f.Add(mesh.Link{From: mirror(l.To), To: mirror(l.From)}, rate)
	}

	// Odd diagonals D_{2k−1}: cores C(j, 2k−j), j = 1..k, forward h_k east.
	for kk := 1; kk <= pPrime; kk++ {
		for j := 1; j <= kk; j++ {
			from := mesh.Coord{U: j, V: 2*kk - j}
			addBoth(mesh.Link{From: from, To: from.Step(mesh.East)}, h(kk))
		}
	}
	// Even diagonals D_{2k}: cores C(j, 2k+1−j), j = 1..k, split east/south.
	for kk := 1; kk <= pPrime-1; kk++ {
		for j := 1; j <= kk; j++ {
			from := mesh.Coord{U: j, V: 2*kk + 1 - j}
			addBoth(mesh.Link{From: from, To: from.Step(mesh.East)}, r(kk, j))
			addBoth(mesh.Link{From: from, To: from.Step(mesh.South)}, d(kk, j))
		}
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("multipath: Theorem 1 pattern invalid: %w", err)
	}
	return f, nil
}

// XYSingleRoute returns the evaluation of routing the whole rate K on the
// single XY path between the corners of a p×p mesh — the comparison
// baseline of Theorem 1 (PXY = 2(p−1)·K^α under the theory model).
func XYSingleRoute(p int, k float64, model power.Model) (power.Breakdown, error) {
	m := mesh.MustNew(p, p)
	loads := route.NewLoadTracker(m)
	loads.AddPath(route.XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: p, V: p}), k)
	return loads.Power(model)
}

// Theorem1Ratio computes PXY/Pmax for the Figure 4 pattern at size
// p = 2·pPrime under the theory model with exponent alpha, the quantity
// Theorem 1 proves to grow as Θ(p).
func Theorem1Ratio(pPrime int, alpha float64) (float64, error) {
	model := power.Theory(alpha)
	k := 1.0
	xy, err := XYSingleRoute(2*pPrime, k, model)
	if err != nil {
		return 0, err
	}
	flow, err := Theorem1Flow(pPrime, k)
	if err != nil {
		return 0, err
	}
	mp, err := flow.Power(model)
	if err != nil {
		return 0, err
	}
	return xy.Total() / mp.Total(), nil
}
