package multipath

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// EqualSplit is an s-MP routing heuristic (the multi-path extension the
// paper's conclusion calls for): every communication is split into S equal
// fragments, and the fragment stream is routed by an inner single-path
// heuristic, so different fragments of one communication may take
// different Manhattan paths and the per-link pressure drops by up to S.
type EqualSplit struct {
	// S is the maximum number of paths per communication (s of s-MP).
	S int
	// Inner is the 1-MP heuristic applied to the fragment set; nil means
	// the SG greedy.
	Inner heur.Heuristic
}

// Name returns e.g. "2MP(SG)".
func (e EqualSplit) Name() string {
	inner := e.Inner
	if inner == nil {
		inner = heur.SG{}
	}
	return fmt.Sprintf("%dMP(%s)", e.S, inner.Name())
}

// Route splits, routes the fragments with the inner heuristic, and
// reassembles a multi-path routing carrying the original communication
// IDs. The returned routing satisfies Validate(set, S).
func (e EqualSplit) Route(m *mesh.Mesh, model power.Model, set comm.Set) (route.Routing, error) {
	return e.RouteWith(m, model, set, nil)
}

// smpScratch pools the fragment set and the fragment→original ID table
// across workspace-reusing calls.
type smpScratch struct {
	frags  comm.Set
	origID []int
}

// RouteWith is Route threading a reusable dense workspace (nil allowed) to
// the fragment buffers and the inner heuristic; the returned routing then
// aliases workspace memory per the route.Workspace contract.
func (e EqualSplit) RouteWith(m *mesh.Mesh, model power.Model, set comm.Set, ws *route.Workspace) (route.Routing, error) {
	if e.S < 1 {
		return route.Routing{}, fmt.Errorf("multipath: split count %d < 1", e.S)
	}
	inner := e.Inner
	if inner == nil {
		inner = heur.SG{}
	}
	var sc *smpScratch
	if ws != nil {
		ws.Bind(m)
		sc = ws.Scratch("multipath.smp", func() any { return new(smpScratch) }).(*smpScratch)
	} else {
		sc = &smpScratch{}
	}
	// Fragment with fresh dense IDs; remember the original ID per fragment.
	// AppendSplitEqual writes the fragments straight into the pooled
	// buffer — the per-comm intermediate slices SplitEqual used to build
	// were the bulk of this policy's per-call allocations.
	frags := sc.frags[:0]
	origID := sc.origID[:0]
	for _, c := range set {
		lo := len(frags)
		var err error
		if frags, err = c.AppendSplitEqual(frags, e.S); err != nil {
			return route.Routing{}, err
		}
		for i := lo; i < len(frags); i++ {
			frags[i].ID = i
			origID = append(origID, c.ID)
		}
	}
	sc.frags, sc.origID = frags, origID
	r, err := heur.RouteWith(inner, heur.Instance{Mesh: m, Model: model, Comms: frags}, ws)
	if err != nil {
		return route.Routing{}, err
	}
	// Rewrite fragment IDs back to the originals in place (the flow list is
	// ours: workspace-pooled or freshly allocated by the inner heuristic).
	for i := range r.Flows {
		r.Flows[i].Comm.ID = origID[r.Flows[i].Comm.ID]
	}
	return route.Routing{Mesh: m, Flows: r.Flows}, nil
}

// Solve routes and evaluates in one call.
func (e EqualSplit) Solve(m *mesh.Mesh, model power.Model, set comm.Set) (route.Result, error) {
	r, err := e.Route(m, model, set)
	if err != nil {
		return route.Result{}, err
	}
	return route.Evaluate(r, model), nil
}
