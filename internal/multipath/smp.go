package multipath

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// EqualSplit is an s-MP routing heuristic (the multi-path extension the
// paper's conclusion calls for): every communication is split into S equal
// fragments, and the fragment stream is routed by an inner single-path
// heuristic, so different fragments of one communication may take
// different Manhattan paths and the per-link pressure drops by up to S.
type EqualSplit struct {
	// S is the maximum number of paths per communication (s of s-MP).
	S int
	// Inner is the 1-MP heuristic applied to the fragment set; nil means
	// the SG greedy.
	Inner heur.Heuristic
}

// Name returns e.g. "2MP(SG)".
func (e EqualSplit) Name() string {
	inner := e.Inner
	if inner == nil {
		inner = heur.SG{}
	}
	return fmt.Sprintf("%dMP(%s)", e.S, inner.Name())
}

// Route splits, routes the fragments with the inner heuristic, and
// reassembles a multi-path routing carrying the original communication
// IDs. The returned routing satisfies Validate(set, S).
func (e EqualSplit) Route(m *mesh.Mesh, model power.Model, set comm.Set) (route.Routing, error) {
	if e.S < 1 {
		return route.Routing{}, fmt.Errorf("multipath: split count %d < 1", e.S)
	}
	inner := e.Inner
	if inner == nil {
		inner = heur.SG{}
	}
	// Fragment with fresh IDs; remember the original ID of each fragment.
	frags := make(comm.Set, 0, len(set)*e.S)
	origID := make(map[int]int)
	next := 0
	for _, c := range set {
		parts, err := c.SplitEqual(e.S)
		if err != nil {
			return route.Routing{}, err
		}
		for _, p := range parts {
			origID[next] = c.ID
			p.ID = next
			frags = append(frags, p)
			next++
		}
	}
	r, err := inner.Route(heur.Instance{Mesh: m, Model: model, Comms: frags})
	if err != nil {
		return route.Routing{}, err
	}
	flows := make([]route.Flow, len(r.Flows))
	for i, fl := range r.Flows {
		fl.Comm.ID = origID[fl.Comm.ID]
		flows[i] = fl
	}
	return route.Routing{Mesh: m, Flows: flows}, nil
}

// Solve routes and evaluates in one call.
func (e EqualSplit) Solve(m *mesh.Mesh, model power.Model, set comm.Set) (route.Result, error) {
	r, err := e.Route(m, model, set)
	if err != nil {
		return route.Result{}, err
	}
	return route.Evaluate(r, model), nil
}
