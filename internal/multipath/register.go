package multipath

import (
	"repro/internal/heur"
	"repro/internal/route"
	"repro/internal/solve"
)

// smpSolver registers one equal-split policy ("2MP", "4MP"): split every
// communication into s equal fragments and route the fragment stream with
// the TB greedy (the inner heuristic the facade always used).
// Options.MaxPaths overrides the split count; Options.Order reaches the
// inner greedy.
type smpSolver struct {
	name string
	s    int
}

// Name implements solve.Solver.
func (s smpSolver) Name() string { return s.name }

// Route implements solve.Solver.
func (s smpSolver) Route(in solve.Instance, o solve.Options) (route.Routing, error) {
	if err := in.Validate(); err != nil {
		return route.Routing{}, err
	}
	split := s.s
	if o.MaxPaths > 0 {
		split = o.MaxPaths
	}
	return EqualSplit{S: split, Inner: heur.TB{Order: o.Order}}.RouteWith(in.Mesh, in.Model, in.Comms, o.Workspace)
}

func init() {
	solve.Register(smpSolver{name: "2MP", s: 2})
	solve.Register(smpSolver{name: "4MP", s: 4})
}
