// Package deadlock analyzes routings for wormhole deadlock freedom. The
// paper assumes "a deadlock avoidance technique is used (such as resource
// ordering [5] or escape channels [3])"; this package makes the
// assumption checkable and constructive:
//
//   - BuildCDG constructs the channel dependency graph (CDG) of a routing:
//     a node per link (channel) and an edge whenever some flow holds one
//     channel while requesting the next. By Dally–Seitz, a wormhole
//     network with this channel set is deadlock-free iff the CDG is
//     acyclic.
//   - FindCycle reports a certificate cycle when one exists.
//   - EscapeChannels implements Duato-style avoidance on minimal meshes:
//     a second virtual channel per physical link restricted to XY order
//     (whose CDG is always acyclic) guarantees deadlock freedom for any
//     Manhattan routing on the full channel set.
package deadlock

import (
	"fmt"
	"sort"

	"repro/internal/mesh"
	"repro/internal/route"
)

// CDG is the channel dependency graph of a routing: adjacency between
// dense link IDs.
type CDG struct {
	Mesh *mesh.Mesh
	// Next[a] lists the channels requested while holding channel a,
	// deduplicated and sorted.
	Next map[int][]int
}

// BuildCDG collects every consecutive link pair of every flow.
func BuildCDG(r route.Routing) *CDG {
	seen := make(map[int]map[int]bool)
	for _, f := range r.Flows {
		for i := 0; i+1 < len(f.Path); i++ {
			a := r.Mesh.LinkID(f.Path[i])
			b := r.Mesh.LinkID(f.Path[i+1])
			if seen[a] == nil {
				seen[a] = make(map[int]bool)
			}
			seen[a][b] = true
		}
	}
	g := &CDG{Mesh: r.Mesh, Next: make(map[int][]int, len(seen))}
	for a, succ := range seen {
		ids := make([]int, 0, len(succ))
		for b := range succ {
			ids = append(ids, b)
		}
		sort.Ints(ids)
		g.Next[a] = ids
	}
	return g
}

// Acyclic reports whether the CDG has no cycle; a routing whose CDG is
// acyclic is deadlock-free under wormhole switching (Dally–Seitz).
func (g *CDG) Acyclic() bool { return g.FindCycle() == nil }

// FindCycle returns a channel cycle as a sequence of link IDs (the last
// depends on the first), or nil when the graph is acyclic. The search is
// deterministic: nodes and successors are visited in ascending ID order.
func (g *CDG) FindCycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(g.Next))
	parent := make(map[int]int)
	nodes := make([]int, 0, len(g.Next))
	for a := range g.Next {
		nodes = append(nodes, a)
	}
	sort.Ints(nodes)

	var cycle []int
	var dfs func(a int) bool
	dfs = func(a int) bool {
		color[a] = gray
		for _, b := range g.Next[a] {
			switch color[b] {
			case white:
				parent[b] = a
				if dfs(b) {
					return true
				}
			case gray:
				// Back edge a→b closes a cycle b → … → a.
				cycle = []int{b}
				for v := a; v != b; v = parent[v] {
					cycle = append(cycle, v)
				}
				// Reverse into dependency order b, …, a.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[a] = black
		return false
	}
	for _, a := range nodes {
		if color[a] == white && dfs(a) {
			return cycle
		}
	}
	return nil
}

// DescribeCycle renders a cycle as link strings for diagnostics.
func (g *CDG) DescribeCycle(cycle []int) string {
	if len(cycle) == 0 {
		return "acyclic"
	}
	out := ""
	for i, id := range cycle {
		if i > 0 {
			out += " -> "
		}
		out += g.Mesh.LinkByID(id).String()
	}
	return out + " -> (repeats)"
}

// VC identifies a virtual channel: a physical link plus a class.
type VC struct {
	Link  int // dense link id
	Class int // 0 = escape (XY-restricted), 1 = adaptive
}

// Assignment maps every hop of every flow to a virtual channel class.
type Assignment struct {
	// Classes[f][i] is the class of flow f's i-th hop.
	Classes [][]int
}

// EscapeChannels assigns virtual channels Duato-style: hops that follow
// the flow's XY order (all horizontal hops before the first vertical hop,
// then verticals) may use either class and are placed on the adaptive
// class 1; any hop at or after a vertical→horizontal transition uses the
// escape class 0 only if it still obeys XY from that point. Concretely,
// the assignment is: class 1 while the path's remaining hops are not in
// XY form, class 0 once they are. Because class-0 dependencies follow the
// XY order — whose CDG is acyclic — and class-1 channels can always drain
// into class 0, the configuration is deadlock-free for every minimal
// routing (Duato's theorem).
func EscapeChannels(r route.Routing) Assignment {
	a := Assignment{Classes: make([][]int, len(r.Flows))}
	for fi, f := range r.Flows {
		classes := make([]int, len(f.Path))
		// Find the last vertical→horizontal transition; from the hop
		// after it onward the path suffix is horizontal-then-vertical
		// (XY-shaped), so it can ride the escape class.
		xyFrom := 0
		for i := 1; i < len(f.Path); i++ {
			prevV := isVertical(f.Path[i-1])
			curV := isVertical(f.Path[i])
			if prevV && !curV {
				xyFrom = i
			}
		}
		for i := range classes {
			if i >= xyFrom {
				classes[i] = 0
			} else {
				classes[i] = 1
			}
		}
		a.Classes[fi] = classes
	}
	return a
}

// Validate checks that the escape (class 0) sub-network is used in XY
// order by every flow: within a flow's class-0 suffix, no vertical hop is
// ever followed by a horizontal hop.
func (a Assignment) Validate(r route.Routing) error {
	if len(a.Classes) != len(r.Flows) {
		return fmt.Errorf("deadlock: assignment covers %d flows, routing has %d",
			len(a.Classes), len(r.Flows))
	}
	for fi, f := range r.Flows {
		classes := a.Classes[fi]
		if len(classes) != len(f.Path) {
			return fmt.Errorf("deadlock: flow %d: %d classes for %d hops",
				fi, len(classes), len(f.Path))
		}
		seenVertical := false
		inEscape := false
		for i, c := range classes {
			if c != 0 && c != 1 {
				return fmt.Errorf("deadlock: flow %d hop %d: invalid class %d", fi, i, c)
			}
			if inEscape && c == 1 {
				return fmt.Errorf("deadlock: flow %d hop %d: left the escape class", fi, i)
			}
			if c == 0 {
				if !inEscape {
					inEscape = true
					seenVertical = false
				}
				v := isVertical(f.Path[i])
				if seenVertical && !v {
					return fmt.Errorf("deadlock: flow %d hop %d: escape class violates XY order", fi, i)
				}
				seenVertical = seenVertical || v
			}
		}
	}
	return nil
}

// EscapeCDG builds the CDG restricted to escape-class hops under the
// assignment; it must always be acyclic.
func EscapeCDG(r route.Routing, a Assignment) *CDG {
	seen := make(map[int]map[int]bool)
	for fi, f := range r.Flows {
		classes := a.Classes[fi]
		for i := 0; i+1 < len(f.Path); i++ {
			if classes[i] != 0 || classes[i+1] != 0 {
				continue
			}
			x := r.Mesh.LinkID(f.Path[i])
			y := r.Mesh.LinkID(f.Path[i+1])
			if seen[x] == nil {
				seen[x] = make(map[int]bool)
			}
			seen[x][y] = true
		}
	}
	g := &CDG{Mesh: r.Mesh, Next: make(map[int][]int, len(seen))}
	for x, succ := range seen {
		ids := make([]int, 0, len(succ))
		for y := range succ {
			ids = append(ids, y)
		}
		sort.Ints(ids)
		g.Next[x] = ids
	}
	return g
}

func isVertical(l mesh.Link) bool {
	d := l.Dir()
	return d == mesh.South || d == mesh.North
}
