package deadlock

import (
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

func routeAll(t *testing.T, h heur.Heuristic, m *mesh.Mesh, set comm.Set) route.Routing {
	t.Helper()
	r, err := h.Route(heur.Instance{Mesh: m, Model: power.KimHorowitz(), Comms: set})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Pure XY routings have acyclic CDGs (the textbook dimension-order
// result).
func TestXYRoutingAcyclic(t *testing.T) {
	m := mesh.MustNew(8, 8)
	for seed := int64(0); seed < 10; seed++ {
		set := workload.New(m, seed).Uniform(40, 100, 1000)
		r := routeAll(t, heur.XY{}, m, set)
		g := BuildCDG(r)
		if cyc := g.FindCycle(); cyc != nil {
			t.Fatalf("seed %d: XY CDG has a cycle: %s", seed, g.DescribeCycle(cyc))
		}
	}
}

// The canonical 4-flow ring: four L-shaped flows chasing each other
// around a square deadlock. The CDG must report a cycle.
func TestRingDeadlockDetected(t *testing.T) {
	m := mesh.MustNew(3, 3)
	c := func(id, su, sv, du, dv int) comm.Comm {
		return comm.Comm{ID: id, Src: mesh.Coord{U: su, V: sv}, Dst: mesh.Coord{U: du, V: dv}, Rate: 1}
	}
	// Clockwise turns around the unit square (1,1)-(1,2)-(2,2)-(2,1).
	flows := []route.Flow{
		{Comm: c(1, 1, 1, 2, 2), Path: route.XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 2, V: 2})}, // E then S
		{Comm: c(2, 1, 2, 2, 1), Path: route.YX(mesh.Coord{U: 1, V: 2}, mesh.Coord{U: 2, V: 1})}, // S then W
		{Comm: c(3, 2, 2, 1, 1), Path: route.XY(mesh.Coord{U: 2, V: 2}, mesh.Coord{U: 1, V: 1})}, // W then N
		{Comm: c(4, 2, 1, 1, 2), Path: route.YX(mesh.Coord{U: 2, V: 1}, mesh.Coord{U: 1, V: 2})}, // N then E
	}
	r := route.Routing{Mesh: m, Flows: flows}
	g := BuildCDG(r)
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("clockwise ring not detected as a CDG cycle")
	}
	if len(cyc) != 4 {
		t.Errorf("cycle length %d, want 4 (%s)", len(cyc), g.DescribeCycle(cyc))
	}
	if !strings.Contains(g.DescribeCycle(cyc), "->") {
		t.Error("DescribeCycle did not render")
	}
	if g.Acyclic() {
		t.Error("Acyclic() contradicts FindCycle()")
	}
}

// Manhattan heuristics may create cyclic CDGs — that is exactly why the
// paper assumes an avoidance mechanism. The escape-channel assignment must
// then certify deadlock freedom: its class-0 sub-network is acyclic and
// the assignment passes validation, for every heuristic.
func TestEscapeChannelsCertifyAllHeuristics(t *testing.T) {
	m := mesh.MustNew(8, 8)
	for _, h := range heur.All() {
		for seed := int64(0); seed < 4; seed++ {
			set := workload.New(m, 100+seed).Uniform(30, 100, 1500)
			r := routeAll(t, h, m, set)
			a := EscapeChannels(r)
			if err := a.Validate(r); err != nil {
				t.Fatalf("%s seed %d: %v", h.Name(), seed, err)
			}
			eg := EscapeCDG(r, a)
			if cyc := eg.FindCycle(); cyc != nil {
				t.Fatalf("%s seed %d: escape CDG cyclic: %s", h.Name(), seed, eg.DescribeCycle(cyc))
			}
		}
	}
}

// The escape assignment puts XY-shaped paths entirely on class 0.
func TestEscapeChannelsXYPathsAllEscape(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set := workload.New(m, 3).Uniform(20, 100, 1000)
	r := routeAll(t, heur.XY{}, m, set)
	a := EscapeChannels(r)
	for fi, classes := range a.Classes {
		for i, c := range classes {
			if c != 0 {
				t.Fatalf("flow %d hop %d: XY path assigned adaptive class", fi, i)
			}
		}
	}
}

// A YX path needs the adaptive class for its prefix: its vertical→
// horizontal turn is illegal on the escape network.
func TestEscapeChannelsYXPrefixAdaptive(t *testing.T) {
	m := mesh.MustNew(4, 4)
	g := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 3, V: 3}, Rate: 1}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: g, Path: route.YX(g.Src, g.Dst)}}}
	a := EscapeChannels(r)
	classes := a.Classes[0]
	// YX = S,S,E,E: the vertical prefix must be adaptive, the horizontal
	// suffix escape.
	if classes[0] != 1 || classes[1] != 1 {
		t.Errorf("vertical prefix classes %v, want adaptive", classes[:2])
	}
	if classes[2] != 0 || classes[3] != 0 {
		t.Errorf("horizontal suffix classes %v, want escape", classes[2:])
	}
	if err := a.Validate(r); err != nil {
		t.Fatal(err)
	}
}

// Validation rejects corrupted assignments.
func TestValidateRejectsCorrupt(t *testing.T) {
	m := mesh.MustNew(4, 4)
	g := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 3, V: 3}, Rate: 1}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: g, Path: route.YX(g.Src, g.Dst)}}}
	a := EscapeChannels(r)

	bad := Assignment{Classes: [][]int{{0, 0, 0, 0}}} // vertical hops on escape, then horizontal: V→H violation
	if err := bad.Validate(r); err == nil {
		t.Error("XY-violating escape assignment accepted")
	}
	bad2 := Assignment{Classes: [][]int{{1, 1, 0, 7}}}
	if err := bad2.Validate(r); err == nil {
		t.Error("invalid class accepted")
	}
	bad3 := Assignment{Classes: [][]int{{1, 1, 0, 1}}} // escape → adaptive switch
	if err := bad3.Validate(r); err == nil {
		t.Error("class downgrade accepted")
	}
	short := Assignment{Classes: [][]int{{1, 1}}}
	if err := short.Validate(r); err == nil {
		t.Error("short class vector accepted")
	}
	none := Assignment{}
	if err := none.Validate(r); err == nil {
		t.Error("empty assignment accepted")
	}
	_ = a
}

// Empty routings are trivially acyclic.
func TestEmptyRouting(t *testing.T) {
	m := mesh.MustNew(2, 2)
	g := BuildCDG(route.Routing{Mesh: m})
	if !g.Acyclic() {
		t.Error("empty CDG not acyclic")
	}
	if g.DescribeCycle(nil) != "acyclic" {
		t.Error("DescribeCycle(nil) wrong")
	}
}
