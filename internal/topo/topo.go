// Package topo defines the topology abstraction the routing stack is
// built on. A Topology is a directed interconnect graph over the mesh
// package's coordinate and link types: a finite set of cores with dense
// integer indices, a set of unidirectional links with dense integer
// identifiers (enabling flat-slice load accounting), shortest-path
// distances, and a deterministic shortest-route builder.
//
// The 2-D mesh (*mesh.Mesh) is the canonical implementation and keeps
// its closed-form fast paths; subpackages add the wraparound torus
// (topo/torus) and the multiplicative circulant (topo/circulant), both
// routed by precompiled next-hop tables (internal/rtable.NextHops).
//
// The contract every implementation must honor:
//
//   - Cores carry mesh.Coord coordinates. CoordIndex/CoordAt form a
//     bijection between the core set and [0, NumCores()).
//   - LinkID maps every valid link into [0, LinkIDSpace()) injectively
//     and LinkByID inverts it; the space may be larger than NumLinks()
//     (identifiers of invalid links are never returned by LinkID).
//     Links() enumerates all valid links in ascending LinkID order.
//   - Distance(a, b) is the hop length of every route AppendRoute
//     builds from a to b, and AppendRoute is deterministic: the same
//     (src, dst) always yields the same link sequence.
//   - Carrier() exposes a plain *mesh.Mesh over the same core set so
//     mesh-bound workload generators and scenario sources keep working
//     on any topology.
//   - Spec() is a canonical identity string (parseable by Parse); two
//     topologies with equal Spec strings behave identically.
//
// Non-mesh families register themselves with Register from an init
// function, mirroring the solver registry: importing topo/torus or
// topo/circulant (or internal/scenario, which imports both) makes them
// resolvable by Parse.
package topo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/mesh"
)

// Topology is a directed interconnect over mesh coordinates. See the
// package comment for the full contract.
type Topology interface {
	// Name is the topology family name ("mesh", "torus", "circulant").
	Name() string
	// Spec is the canonical, Parse-able identity string, e.g.
	// "torus:8x8" or "circulant:27:1,3,9".
	Spec() string

	// NumCores returns the number of cores.
	NumCores() int
	// Contains reports whether c is a core of the topology.
	Contains(c mesh.Coord) bool
	// CoordIndex maps a core to its dense index in [0, NumCores());
	// panics if c is not a core.
	CoordIndex(c mesh.Coord) int
	// CoordAt inverts CoordIndex; panics if i is out of range.
	CoordAt(i int) mesh.Coord
	// Cores returns all cores in CoordIndex order.
	Cores() []mesh.Coord

	// NumLinks returns the number of unidirectional links.
	NumLinks() int
	// LinkIDSpace bounds the dense link identifier space.
	LinkIDSpace() int
	// ValidLink reports whether l is a link of the topology.
	ValidLink(l mesh.Link) bool
	// LinkID maps a valid link to its identifier; panics otherwise.
	LinkID(l mesh.Link) int
	// LinkByID inverts LinkID; panics if id is not a valid link's id.
	LinkByID(id int) mesh.Link
	// Links returns all links in ascending LinkID order.
	Links() []mesh.Link
	// Neighbors returns the destination cores of c's outgoing links.
	Neighbors(c mesh.Coord) []mesh.Coord

	// Distance returns the shortest-path hop count from a to b.
	Distance(a, b mesh.Coord) int
	// AppendRoute appends a deterministic shortest path from src to
	// dst onto buf and returns the extended slice; it appends exactly
	// Distance(src, dst) links and nothing when src == dst.
	AppendRoute(buf []mesh.Link, src, dst mesh.Coord) []mesh.Link

	// Carrier returns the coordinate-carrier grid: a plain mesh over
	// the same core set, for workload drawing and mesh-bound sources.
	Carrier() *mesh.Mesh
}

// The mesh is the canonical Topology.
var _ Topology = (*mesh.Mesh)(nil)

// Builder constructs a topology family from the argument part of a spec
// string: for "torus:8x8" the builder registered under "torus" receives
// "8x8".
type Builder func(arg string) (Topology, error)

var (
	regMu    sync.RWMutex
	families = map[string]Builder{}
)

// Register makes a topology family resolvable by Parse. The family name
// is case-insensitive. Registering a duplicate or empty name panics —
// families register from init functions, so a collision is a programming
// error.
func Register(family string, build Builder) {
	key := strings.ToLower(strings.TrimSpace(family))
	if key == "" || build == nil {
		panic("topo: Register with empty family or nil builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := families[key]; dup || key == "mesh" {
		panic(fmt.Sprintf("topo: duplicate topology family %q", family))
	}
	families[key] = build
}

// Families returns the registered family names in sorted order, with
// the built-in "mesh" included.
func Families() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(families)+1)
	out = append(out, "mesh")
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Parse resolves a topology spec string. The mesh family is built in:
// "mesh:PxQ" (and the bare "PxQ" shorthand used by scenario specs)
// yields a *mesh.Mesh. Any other "family:arg" form dispatches to the
// registered Builder for the family.
func Parse(spec string) (Topology, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, fmt.Errorf("topo: empty topology spec")
	}
	family, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		family, arg = s[:i], s[i+1:]
	} else if strings.ContainsRune(s, 'x') {
		// Bare "PxQ" is the historical mesh spelling.
		family, arg = "mesh", s
	}
	family = strings.ToLower(strings.TrimSpace(family))
	if family == "mesh" {
		p, q, err := ParseGrid(arg)
		if err != nil {
			return nil, err
		}
		return mesh.MustNew(p, q), nil
	}
	regMu.RLock()
	build, ok := families[family]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("topo: unknown topology family %q in %q (known: %s)",
			family, spec, strings.Join(Families(), ", "))
	}
	t, err := build(arg)
	if err != nil {
		return nil, fmt.Errorf("topo: %q: %w", spec, err)
	}
	return t, nil
}

// ParseGrid parses a "PxQ" grid argument with both dimensions >= 1.
func ParseGrid(arg string) (p, q int, err error) {
	a, b, ok := strings.Cut(strings.ToLower(strings.TrimSpace(arg)), "x")
	if ok {
		p, err = strconv.Atoi(strings.TrimSpace(a))
		if err == nil {
			q, err = strconv.Atoi(strings.TrimSpace(b))
		}
	}
	if !ok || err != nil || p < 1 || q < 1 {
		return 0, 0, fmt.Errorf("topo: invalid grid spec %q (want PxQ, e.g. 8x8)", arg)
	}
	return p, q, nil
}
