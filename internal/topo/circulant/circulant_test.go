package circulant

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/topo"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		n    int
		gens []int
	}{
		{4, []int{1}},      // too small
		{8, nil},           // no generators
		{8, []int{0}},      // generator below range
		{8, []int{4}},      // generator == N/2
		{8, []int{1, 1}},   // duplicate
		{9, []int{3}},      // gcd(3,9)=3: disconnected
		{12, []int{2, 4}},  // gcd 2: disconnected
		{10, []int{1, 17}}, // out of range
	}
	for _, c := range cases {
		if _, err := New(c.n, c.gens); err == nil {
			t.Errorf("New(%d, %v): want error", c.n, c.gens)
		}
	}
}

func TestSpecCanonicalizesGenerators(t *testing.T) {
	c, err := New(27, []int{9, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Spec(); got != "circulant:27:1,3,9" {
		t.Fatalf("Spec = %q", got)
	}
	tp, err := topo.Parse("circulant:27:9,3,1")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Spec() != c.Spec() {
		t.Fatalf("Parse spec %q != %q", tp.Spec(), c.Spec())
	}
}

func TestLinkIDBijection(t *testing.T) {
	c, err := New(16, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.NumLinks(), 2*2*16; got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
	links := c.Links()
	seen := map[mesh.Link]bool{}
	for id, l := range links {
		if !c.ValidLink(l) {
			t.Fatalf("link %v (id %d) not valid", l, id)
		}
		if got := c.LinkID(l); got != id {
			t.Fatalf("LinkID(LinkByID(%d)) = %d", id, got)
		}
		if seen[l] {
			t.Fatalf("duplicate link value %v", l)
		}
		seen[l] = true
	}
}

func TestRingDistanceSingleGenerator(t *testing.T) {
	// C(7; 1) is the bidirectional ring: distance is min(d, 7-d).
	c, err := New(7, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			d := ((j - i) + 7) % 7
			if 7-d < d {
				d = 7 - d
			}
			if got := c.Distance(c.CoordAt(i), c.CoordAt(j)); got != d {
				t.Fatalf("Distance(%d,%d) = %d, want %d", i, j, got, d)
			}
		}
	}
}

func TestRoutesAreValidShortestAndSymmetricDistance(t *testing.T) {
	c, err := New(27, []int{1, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf []mesh.Link
	maxDist := 0
	for i := 0; i < c.NumCores(); i++ {
		for j := 0; j < c.NumCores(); j++ {
			src, dst := c.CoordAt(i), c.CoordAt(j)
			d := c.Distance(src, dst)
			if back := c.Distance(dst, src); back != d {
				t.Fatalf("asymmetric distance %v<->%v: %d vs %d", src, dst, d, back)
			}
			if d > maxDist {
				maxDist = d
			}
			buf = c.AppendRoute(buf[:0], src, dst)
			if len(buf) != d {
				t.Fatalf("route %v->%v has %d hops, distance %d", src, dst, len(buf), d)
			}
			at := src
			for _, l := range buf {
				if l.From != at || !c.ValidLink(l) {
					t.Fatalf("route %v->%v broken at %v", src, dst, l)
				}
				at = l.To
			}
			if at != dst {
				t.Fatalf("route %v->%v ends at %v", src, dst, at)
			}
		}
	}
	// The multiplicative circulant's diameter must beat the plain
	// ring's floor(27/2) = 13 — that is the point of the chords.
	if maxDist >= 13 {
		t.Fatalf("diameter %d not improved by chords", maxDist)
	}
}
