// Package circulant implements circulant graphs C(N; s1,…,sk) as a
// topo.Topology — in particular the multiplicative circulants
// C(N; 1, k, k², …) that Shchegoleva et al. (arXiv 1902.03314) propose
// as NoC topologies: ring-like regular graphs whose chord generators
// shrink the diameter to O(log N) while keeping constant degree 2k.
//
// Cores are the ring positions 0..N-1 carried as mesh coordinates
// C(1, i+1) on a 1×N carrier mesh, so every mesh-bound workload
// generator and scenario source works unchanged. Each generator s
// contributes two unidirectional links per node, i → i+s and i → i−s
// (mod N); the dense link id is (2·gen + sign)·N + i with space 2·k·N,
// every identifier valid. Routes come from a precompiled
// rtable.NextHops table with smallest-link-id tie-breaks.
//
// Importing this package registers the "circulant" family with
// topo.Parse under the spec form "circulant:N:s1,s2,…".
package circulant

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mesh"
	"repro/internal/rtable"
	"repro/internal/topo"
)

func init() {
	topo.Register("circulant", func(arg string) (topo.Topology, error) {
		nStr, gensStr, ok := strings.Cut(arg, ":")
		if !ok {
			return nil, fmt.Errorf("circulant: spec %q wants N:s1,s2,...", arg)
		}
		n, err := strconv.Atoi(strings.TrimSpace(nStr))
		if err != nil {
			return nil, fmt.Errorf("circulant: invalid node count %q", nStr)
		}
		var gens []int
		for _, f := range strings.Split(gensStr, ",") {
			s, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("circulant: invalid generator %q", f)
			}
			gens = append(gens, s)
		}
		return New(n, gens)
	})
}

// Circulant is the circulant graph C(N; gens). Construct with New.
type Circulant struct {
	n       int
	gens    []int // sorted ascending, distinct, each in [1, N/2)
	carrier *mesh.Mesh
	hops    *rtable.NextHops
}

// New returns C(n; gens). It requires n >= 5, at least one generator,
// and every generator distinct in [1, n/2) — the strict upper bound
// keeps i+s and i−s distinct, so the link id mapping stays a bijection.
func New(n int, gens []int) (*Circulant, error) {
	if n < 5 {
		return nil, fmt.Errorf("circulant: node count %d too small (need >= 5)", n)
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("circulant: no generators")
	}
	sorted := append([]int(nil), gens...)
	sort.Ints(sorted)
	for i, s := range sorted {
		if 2*s >= n || s < 1 {
			return nil, fmt.Errorf("circulant: generator %d out of range [1, %d) for N=%d", s, (n+1)/2, n)
		}
		if i > 0 && sorted[i-1] == s {
			return nil, fmt.Errorf("circulant: duplicate generator %d", s)
		}
	}
	c := &Circulant{n: n, gens: sorted, carrier: mesh.MustNew(1, n)}
	hops, err := rtable.CompileNextHops(c)
	if err != nil {
		return nil, fmt.Errorf("circulant: C(%d; %v) is disconnected: %w", n, sorted, err)
	}
	c.hops = hops
	return c, nil
}

// Name returns "circulant".
func (c *Circulant) Name() string { return "circulant" }

// Spec returns the canonical spec string with generators in ascending
// order, e.g. "circulant:27:1,3,9".
func (c *Circulant) Spec() string {
	parts := make([]string, len(c.gens))
	for i, s := range c.gens {
		parts[i] = strconv.Itoa(s)
	}
	return fmt.Sprintf("circulant:%d:%s", c.n, strings.Join(parts, ","))
}

// String describes the graph in the C(N; s1,...,sk) notation.
func (c *Circulant) String() string {
	return fmt.Sprintf("C(%d; %v)", c.n, c.gens)
}

// N returns the number of nodes.
func (c *Circulant) N() int { return c.n }

// Generators returns the sorted generator set.
func (c *Circulant) Generators() []int { return append([]int(nil), c.gens...) }

// NumCores returns N.
func (c *Circulant) NumCores() int { return c.n }

// NumLinks returns 2·k·N: every generator contributes a forward and a
// backward link at every node.
func (c *Circulant) NumLinks() int { return 2 * len(c.gens) * c.n }

// LinkIDSpace equals NumLinks; every identifier is a valid link.
func (c *Circulant) LinkIDSpace() int { return 2 * len(c.gens) * c.n }

// Contains reports whether the coordinate is a ring position C(1, i+1).
func (c *Circulant) Contains(co mesh.Coord) bool { return c.carrier.Contains(co) }

// CoordIndex maps C(1, i+1) to the ring position i.
func (c *Circulant) CoordIndex(co mesh.Coord) int { return c.carrier.CoordIndex(co) }

// CoordAt inverts CoordIndex.
func (c *Circulant) CoordAt(i int) mesh.Coord { return c.carrier.CoordAt(i) }

// Cores returns all ring positions in order.
func (c *Circulant) Cores() []mesh.Coord { return c.carrier.Cores() }

// Carrier returns the 1×N mesh over the ring positions.
func (c *Circulant) Carrier() *mesh.Mesh { return c.carrier }

// at returns the coordinate of ring position i (taken mod N).
func (c *Circulant) at(i int) mesh.Coord {
	i = ((i % c.n) + c.n) % c.n
	return mesh.Coord{U: 1, V: i + 1}
}

// linkOf decomposes a link into (generator index, sign) where sign 0 is
// the forward chord i → i+s and sign 1 the backward chord i → i−s.
func (c *Circulant) linkOf(l mesh.Link) (gen, sign int, ok bool) {
	if !c.Contains(l.From) || !c.Contains(l.To) {
		return 0, 0, false
	}
	d := (((l.To.V - l.From.V) % c.n) + c.n) % c.n
	for g, s := range c.gens {
		switch d {
		case s:
			return g, 0, true
		case c.n - s:
			return g, 1, true
		}
	}
	return 0, 0, false
}

// ValidLink reports whether l is a chord of the graph.
func (c *Circulant) ValidLink(l mesh.Link) bool {
	_, _, ok := c.linkOf(l)
	return ok
}

// LinkID maps a valid link to (2·gen+sign)·N + from; it panics on an
// invalid link, like mesh.LinkID.
func (c *Circulant) LinkID(l mesh.Link) int {
	gen, sign, ok := c.linkOf(l)
	if !ok {
		panic(fmt.Sprintf("circulant: invalid link %v on %v", l, c))
	}
	return (2*gen+sign)*c.n + (l.From.V - 1)
}

// LinkByID inverts LinkID.
func (c *Circulant) LinkByID(id int) mesh.Link {
	if id < 0 || id >= c.LinkIDSpace() {
		panic(fmt.Sprintf("circulant: link id %d out of range", id))
	}
	gen, rest := id/(2*c.n), id%(2*c.n)
	sign, i := rest/c.n, rest%c.n
	s := c.gens[gen]
	if sign == 1 {
		s = -s
	}
	return mesh.Link{From: c.at(i), To: c.at(i + s)}
}

// Links returns all 2·k·N chords in ascending LinkID order.
func (c *Circulant) Links() []mesh.Link {
	out := make([]mesh.Link, 0, c.NumLinks())
	for id := 0; id < c.LinkIDSpace(); id++ {
		out = append(out, c.LinkByID(id))
	}
	return out
}

// Neighbors returns the 2k chord endpoints of co in generator order,
// forward before backward.
func (c *Circulant) Neighbors(co mesh.Coord) []mesh.Coord {
	i := c.CoordIndex(co)
	out := make([]mesh.Coord, 0, 2*len(c.gens))
	for _, s := range c.gens {
		out = append(out, c.at(i+s), c.at(i-s))
	}
	return out
}

// Distance returns the shortest chord-hop count, read from the
// compiled table.
func (c *Circulant) Distance(a, b mesh.Coord) int {
	return c.hops.Dist(c.CoordIndex(a), c.CoordIndex(b))
}

// AppendRoute appends the table's deterministic shortest path from src
// to dst onto buf.
func (c *Circulant) AppendRoute(buf []mesh.Link, src, dst mesh.Coord) []mesh.Link {
	return c.hops.AppendRoute(buf, c, src, dst)
}

var _ topo.Topology = (*Circulant)(nil)
