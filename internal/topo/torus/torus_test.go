package torus

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/topo"
)

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// wrapDist is the closed-form torus distance the compiled table must
// reproduce: per-axis min of the direct and the wrapping walk.
func wrapDist(p, q int, a, b mesh.Coord) int {
	du, dv := abs(a.U-b.U), abs(a.V-b.V)
	if p-du < du {
		du = p - du
	}
	if q-dv < dv {
		dv = q - dv
	}
	return du + dv
}

func TestNewRejectsSmallDims(t *testing.T) {
	for _, d := range [][2]int{{2, 5}, {5, 2}, {1, 8}, {0, 3}} {
		if _, err := New(d[0], d[1]); err == nil {
			t.Errorf("New(%d,%d): want error", d[0], d[1])
		}
	}
}

func TestLinkIDBijection(t *testing.T) {
	tor, err := New(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tor.NumLinks(), 4*4*5; got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
	links := tor.Links()
	if len(links) != tor.LinkIDSpace() {
		t.Fatalf("Links() returned %d links, want %d", len(links), tor.LinkIDSpace())
	}
	seen := map[mesh.Link]bool{}
	for id, l := range links {
		if !tor.ValidLink(l) {
			t.Fatalf("link %v (id %d) not valid", l, id)
		}
		if got := tor.LinkID(l); got != id {
			t.Fatalf("LinkID(LinkByID(%d)) = %d", id, got)
		}
		if seen[l] {
			t.Fatalf("duplicate link value %v", l)
		}
		seen[l] = true
	}
}

func TestDistanceMatchesClosedForm(t *testing.T) {
	tor, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tor.NumCores(); i++ {
		for j := 0; j < tor.NumCores(); j++ {
			a, b := tor.CoordAt(i), tor.CoordAt(j)
			if got, want := tor.Distance(a, b), wrapDist(5, 3, a, b); got != want {
				t.Fatalf("Distance(%v,%v) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestRoutesAreValidShortestAndDeterministic(t *testing.T) {
	tor, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf, buf2 []mesh.Link
	for i := 0; i < tor.NumCores(); i++ {
		for j := 0; j < tor.NumCores(); j++ {
			src, dst := tor.CoordAt(i), tor.CoordAt(j)
			buf = tor.AppendRoute(buf[:0], src, dst)
			if len(buf) != tor.Distance(src, dst) {
				t.Fatalf("route %v->%v has %d hops, distance %d", src, dst, len(buf), tor.Distance(src, dst))
			}
			at := src
			for _, l := range buf {
				if l.From != at || !tor.ValidLink(l) {
					t.Fatalf("route %v->%v broken at %v (at %v)", src, dst, l, at)
				}
				at = l.To
			}
			if at != dst {
				t.Fatalf("route %v->%v ends at %v", src, dst, at)
			}
			buf2 = tor.AppendRoute(buf2[:0], src, dst)
			for k := range buf {
				if buf[k] != buf2[k] {
					t.Fatalf("route %v->%v not deterministic", src, dst)
				}
			}
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	tp, err := topo.Parse("torus:6x4")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Spec() != "torus:6x4" || tp.Name() != "torus" {
		t.Fatalf("Parse round trip: got %q / %q", tp.Spec(), tp.Name())
	}
	if tp.Carrier().P() != 6 || tp.Carrier().Q() != 4 {
		t.Fatalf("carrier dims %dx%d", tp.Carrier().P(), tp.Carrier().Q())
	}
	if _, err := topo.Parse("torus:2x9"); err == nil {
		t.Fatal("Parse(torus:2x9): want error")
	}
}
