// Package torus implements the p×q wraparound mesh (2-D torus) as a
// topo.Topology. Every core has exactly four outgoing links — East,
// South, West, North — with the grid edges wrapping around, so the
// torus is vertex-transitive and its diameter is floor(p/2)+floor(q/2)
// instead of the mesh's (p-1)+(q-1).
//
// The link identifier layout mirrors the mesh exactly
// (dir·p·q + (u-1)·q + (v-1), space 4·p·q) but every identifier is
// valid. Routes come from a precompiled rtable.NextHops table with
// smallest-link-id tie-breaks; both dimensions must be at least 3 so
// that a link value determines its direction (with a dimension of 2 the
// wrapping and non-wrapping hop would be the same core pair).
//
// Importing this package registers the "torus" family with topo.Parse
// under the spec form "torus:PxQ".
package torus

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/rtable"
	"repro/internal/topo"
)

func init() {
	topo.Register("torus", func(arg string) (topo.Topology, error) {
		p, q, err := topo.ParseGrid(arg)
		if err != nil {
			return nil, err
		}
		return New(p, q)
	})
}

// Torus is a p×q wraparound mesh. Construct with New.
type Torus struct {
	p, q    int
	carrier *mesh.Mesh
	hops    *rtable.NextHops
}

// New returns a p×q torus. Both dimensions must be at least 3.
func New(p, q int) (*Torus, error) {
	if p < 3 || q < 3 {
		return nil, fmt.Errorf("torus: dimensions %dx%d too small (both must be >= 3)", p, q)
	}
	t := &Torus{p: p, q: q, carrier: mesh.MustNew(p, q)}
	hops, err := rtable.CompileNextHops(t)
	if err != nil {
		return nil, err
	}
	t.hops = hops
	return t, nil
}

// Name returns "torus".
func (t *Torus) Name() string { return "torus" }

// Spec returns the canonical spec string, e.g. "torus:8x8".
func (t *Torus) Spec() string { return fmt.Sprintf("torus:%dx%d", t.p, t.q) }

// String describes the torus dimensions.
func (t *Torus) String() string { return fmt.Sprintf("%dx%d torus", t.p, t.q) }

// P returns the number of rows.
func (t *Torus) P() int { return t.p }

// Q returns the number of columns.
func (t *Torus) Q() int { return t.q }

// NumCores returns p·q.
func (t *Torus) NumCores() int { return t.p * t.q }

// NumLinks returns 4·p·q: four outgoing links per core, all wrapping.
func (t *Torus) NumLinks() int { return 4 * t.p * t.q }

// LinkIDSpace equals NumLinks: on the torus every identifier in the
// mesh-shaped space dir·p·q + (u-1)·q + (v-1) is a valid link.
func (t *Torus) LinkIDSpace() int { return 4 * t.p * t.q }

// Contains reports whether the coordinate lies on the torus.
func (t *Torus) Contains(c mesh.Coord) bool { return t.carrier.Contains(c) }

// CoordIndex maps a coordinate to its dense row-major index.
func (t *Torus) CoordIndex(c mesh.Coord) int { return t.carrier.CoordIndex(c) }

// CoordAt inverts CoordIndex.
func (t *Torus) CoordAt(i int) mesh.Coord { return t.carrier.CoordAt(i) }

// Cores returns all coordinates in row-major order.
func (t *Torus) Cores() []mesh.Coord { return t.carrier.Cores() }

// Carrier returns the plain p×q mesh over the torus's core set.
func (t *Torus) Carrier() *mesh.Mesh { return t.carrier }

// step returns the neighbor of c one hop in direction d, wrapping.
func (t *Torus) step(c mesh.Coord, d mesh.Dir) mesh.Coord {
	n := c.Step(d)
	switch {
	case n.U < 1:
		n.U = t.p
	case n.U > t.p:
		n.U = 1
	case n.V < 1:
		n.V = t.q
	case n.V > t.q:
		n.V = 1
	}
	return n
}

// dirOf returns the wrap-aware direction of a torus link, or ok=false
// if the endpoints are not torus neighbors.
func (t *Torus) dirOf(l mesh.Link) (mesh.Dir, bool) {
	du := ((l.To.U-l.From.U)%t.p + t.p) % t.p
	dv := ((l.To.V-l.From.V)%t.q + t.q) % t.q
	switch {
	case du == 0 && dv == 1:
		return mesh.East, true
	case du == 1 && dv == 0:
		return mesh.South, true
	case du == 0 && dv == t.q-1:
		return mesh.West, true
	case du == t.p-1 && dv == 0:
		return mesh.North, true
	}
	return 0, false
}

// ValidLink reports whether l connects two torus neighbors.
func (t *Torus) ValidLink(l mesh.Link) bool {
	if !t.Contains(l.From) || !t.Contains(l.To) {
		return false
	}
	_, ok := t.dirOf(l)
	return ok
}

// LinkID maps a valid link to its dense identifier; it panics on an
// invalid link, like mesh.LinkID.
func (t *Torus) LinkID(l mesh.Link) int {
	d, ok := t.dirOf(l)
	if !ok || !t.Contains(l.From) || !t.Contains(l.To) {
		panic(fmt.Sprintf("torus: invalid link %v on %v", l, t))
	}
	return int(d)*t.p*t.q + (l.From.U-1)*t.q + (l.From.V - 1)
}

// LinkByID inverts LinkID.
func (t *Torus) LinkByID(id int) mesh.Link {
	if id < 0 || id >= t.LinkIDSpace() {
		panic(fmt.Sprintf("torus: link id %d out of range", id))
	}
	d := mesh.Dir(id / (t.p * t.q))
	rest := id % (t.p * t.q)
	from := mesh.Coord{U: rest/t.q + 1, V: rest%t.q + 1}
	return mesh.Link{From: from, To: t.step(from, d)}
}

// Links returns all 4·p·q links in ascending LinkID order.
func (t *Torus) Links() []mesh.Link {
	out := make([]mesh.Link, 0, t.NumLinks())
	for id := 0; id < t.LinkIDSpace(); id++ {
		out = append(out, t.LinkByID(id))
	}
	return out
}

// Neighbors returns the four wraparound neighbors in E, S, W, N order.
func (t *Torus) Neighbors(c mesh.Coord) []mesh.Coord {
	return []mesh.Coord{
		t.step(c, mesh.East),
		t.step(c, mesh.South),
		t.step(c, mesh.West),
		t.step(c, mesh.North),
	}
}

// Distance returns the wrap-aware shortest hop count
// min(|Δu|, p−|Δu|) + min(|Δv|, q−|Δv|), read from the compiled table.
func (t *Torus) Distance(a, b mesh.Coord) int {
	return t.hops.Dist(t.CoordIndex(a), t.CoordIndex(b))
}

// AppendRoute appends the table's deterministic shortest path from src
// to dst onto buf.
func (t *Torus) AppendRoute(buf []mesh.Link, src, dst mesh.Coord) []mesh.Link {
	return t.hops.AppendRoute(buf, t, src, dst)
}

var _ topo.Topology = (*Torus)(nil)
