package exact

import (
	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
)

// IdealShareLowerBound computes the routing-independent lower bound used
// in the proofs of Theorems 1 and 2: for every diagonal family d and index
// k, the traffic K^(d)_k of all communications of direction d crossing
// from D^(d)_k to D^(d)_{k+1} is spread ideally (equally) over every link
// of the whole mesh between those diagonals, and only the convex
// continuous dynamic power is charged. Every routing — single- or
// multi-path, even the unrestricted max-MP rule — consumes at least this
// much dynamic power.
func IdealShareLowerBound(m *mesh.Mesh, model power.Model, set comm.Set) float64 {
	cont := model
	cont.Freqs = nil
	total := 0.0
	for _, d := range []mesh.Quadrant{mesh.DirSE, mesh.DirSW, mesh.DirNW, mesh.DirNE} {
		for k := 1; k <= m.MaxDiagIndex()-1; k++ {
			traffic := 0.0
			for _, c := range set {
				if c.Direction() != d {
					continue
				}
				ksrc := m.DiagIndex(d, c.Src)
				ksnk := m.DiagIndex(d, c.Dst)
				if ksrc <= k && k < ksnk {
					traffic += c.Rate
				}
			}
			if traffic == 0 {
				continue
			}
			n := len(m.DiagonalLinks(d, k))
			if n == 0 {
				continue
			}
			total += float64(n) * cont.Dynamic(traffic/float64(n))
		}
	}
	return total
}

// MinActiveLinks returns a lower bound on the number of active links of
// any routing: each core that originates traffic needs at least one
// outgoing active link, each sink one incoming, and globally at least
// max over communications of their length links must be active. The bound
// multiplied by Pleak complements IdealShareLowerBound for models with
// static power.
func MinActiveLinks(set comm.Set) int {
	srcs := make(map[mesh.Coord]bool)
	dsts := make(map[mesh.Coord]bool)
	longest := 0
	for _, c := range set {
		srcs[c.Src] = true
		dsts[c.Dst] = true
		if l := c.Length(); l > longest {
			longest = l
		}
	}
	n := len(srcs)
	if len(dsts) > n {
		n = len(dsts)
	}
	if longest > n {
		n = longest
	}
	return n
}
