package exact

import (
	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
)

// IdealShareLowerBound computes the routing-independent lower bound used
// in the proofs of Theorems 1 and 2: for every diagonal family d and index
// k, the traffic K^(d)_k of all communications of direction d crossing
// from D^(d)_k to D^(d)_{k+1} is spread ideally (equally) over every link
// of the whole mesh between those diagonals, and only the convex
// continuous dynamic power is charged. Every routing — single- or
// multi-path, even the unrestricted max-MP rule — consumes at least this
// much dynamic power.
// The implementation is O(C + D·K): each communication of direction d
// crosses every boundary k ∈ [ksrc, ksnk), so one pass over the set fills
// a per-direction difference array whose prefix sums are the crossing
// traffics K^(d)_k, and the link cardinalities come from the closed-form
// mesh.DiagonalLinkCount instead of materializing DiagonalLinks per pair.
// Prefix-sum cancellation can leave float dust where the true traffic is
// zero; boundaries with traffic ≤ 1e-9 are skipped, which can only lower
// the bound and so keeps it admissible.
func IdealShareLowerBound(m *mesh.Mesh, model power.Model, set comm.Set) float64 {
	cont := model
	cont.Freqs = nil
	k1 := m.MaxDiagIndex() + 1 // diff row stride: indices 0..MaxDiagIndex per direction
	diff := make([]float64, 4*k1)
	for _, c := range set {
		d := c.Direction()
		base := (int(d) - 1) * k1
		diff[base+m.DiagIndex(d, c.Src)] += c.Rate
		diff[base+m.DiagIndex(d, c.Dst)] -= c.Rate
	}
	total := 0.0
	for di, d := range []mesh.Quadrant{mesh.DirSE, mesh.DirSW, mesh.DirNW, mesh.DirNE} {
		base := di * k1
		traffic := 0.0
		for k := 1; k <= m.MaxDiagIndex()-1; k++ {
			traffic += diff[base+k]
			if traffic <= 1e-9 {
				continue
			}
			n := m.DiagonalLinkCount(d, k)
			if n == 0 {
				continue
			}
			total += float64(n) * cont.Dynamic(traffic/float64(n))
		}
	}
	return total
}

// MinActiveLinks returns a lower bound on the number of active links of
// any routing: each core that originates traffic needs at least one
// outgoing active link, each sink one incoming, and globally at least
// max over communications of their length links must be active. The bound
// multiplied by Pleak complements IdealShareLowerBound for models with
// static power.
func MinActiveLinks(set comm.Set) int {
	srcs := make(map[mesh.Coord]bool)
	dsts := make(map[mesh.Coord]bool)
	longest := 0
	for _, c := range set {
		srcs[c.Src] = true
		dsts[c.Dst] = true
		if l := c.Length(); l > longest {
			longest = l
		}
	}
	n := len(srcs)
	if len(dsts) > n {
		n = len(dsts)
	}
	if longest > n {
		n = longest
	}
	return n
}
