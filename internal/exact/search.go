package exact

import (
	"math"
	"sync"
	"sync/atomic"
)

// loadEps mirrors the power package's active-link threshold: loads at or
// below it carry no power. Search loads are exact sums of rates (backtrack
// restores them bitwise), so this only ever skips true zeros.
const loadEps = 1e-9

// searchState is one worker's view of the branch-and-bound: link loads,
// the incrementally maintained bound aggregates, the per-comm
// cheapest-increment cache, and the undo frames that restore everything
// bitwise on backtrack. States never share memory; workers meet only at
// the incumbent and the deques.
type searchState struct {
	w    *Workspace
	self int
	n    int

	// maxLen is the frame stride: the longest candidate path of the
	// instance, so depth i's undo frame lives at [i·maxLen, (i+1)·maxLen).
	maxLen int

	loads  []float64 // exact load per link id
	contOf []float64 // pleak + envDyn(load) per active link, 0 when idle
	// aggCont is Σ contOf — the routed part of the lower bound — kept as a
	// running aggregate by add/undo.
	aggCont float64
	// aggQuant is the exact quantized power of the active links — a second
	// admissible bound (per-link loads only grow down the tree and the
	// quantized power is monotone in load), far above the envelope once
	// loads push into the upper frequency levels. It is checked before the
	// envelope bound; both are pure functions of the choice prefix.
	aggQuant float64

	// minInc caches each unrouted comm's cheapest continuous dynamic-only
	// increment over its candidate paths; incOK marks entries valid.
	// add/undo invalidate only the comms incident to the links they touch.
	minInc []float64
	incOK  []bool

	choice []int32

	// Undo frames: per depth, the touched link ids and their prior load
	// and contOf values, plus the prior aggregate. Restoring the saved
	// bits (rather than subtracting back) keeps every leaf's loads a pure
	// function of its choice vector — the keystone of cross-worker
	// determinism.
	fids  []int32
	fload []float64
	fcont []float64
	fagg  []float64
	fqagg []float64
	fn    []int32
}

// bind points the state at the workspace's current instance and resets it
// to the empty routing.
func (s *searchState) bind(w *Workspace, self int) {
	s.w = w
	s.self = self
	s.n = len(w.order)
	maxLen := 0
	for _, l := range w.lens {
		if int(l) > maxLen {
			maxLen = int(l)
		}
	}
	s.maxLen = maxLen
	idspace := w.mesh.LinkIDSpace()
	s.loads = ensureF64(s.loads, idspace)
	s.contOf = ensureF64(s.contOf, idspace)
	for i := 0; i < idspace; i++ {
		s.loads[i] = 0
		s.contOf[i] = 0
	}
	s.aggCont = 0
	s.aggQuant = 0
	s.minInc = ensureF64(s.minInc, s.n)
	if cap(s.incOK) < s.n {
		s.incOK = make([]bool, s.n)
	}
	s.incOK = s.incOK[:s.n]
	for i := range s.incOK {
		s.incOK[i] = false
	}
	s.choice = ensureI32(s.choice, s.n)
	s.fids = ensureI32(s.fids, s.n*maxLen)
	s.fload = ensureF64(s.fload, s.n*maxLen)
	s.fcont = ensureF64(s.fcont, s.n*maxLen)
	s.fagg = ensureF64(s.fagg, s.n)
	s.fqagg = ensureF64(s.fqagg, s.n)
	s.fn = ensureI32(s.fn, s.n)
}

// add routes comm i over its candidate path j, pushing an undo frame and
// updating the bound aggregates and cache invalidations.
func (s *searchState) add(i, j int) {
	w := s.w
	rate := w.rate[i]
	links := w.pathLinks(i, j)
	base := i * s.maxLen
	s.fagg[i] = s.aggCont
	s.fqagg[i] = s.aggQuant
	s.fn[i] = int32(len(links))
	for t, l := range links {
		old := s.loads[l]
		oldC := s.contOf[l]
		s.fids[base+t] = l
		s.fload[base+t] = old
		s.fcont[base+t] = oldC
		s.loads[l] = old + rate
		nc := w.pleak + w.envDyn(old+rate)
		s.contOf[l] = nc
		s.aggCont += nc - oldC
		var oldQ float64
		if old > loadEps {
			oldQ, _ = w.ev.LinkPowerOK(old)
		}
		if newQ, ok := w.ev.LinkPowerOK(old + rate); ok {
			s.aggQuant += newQ - oldQ
		}
		for _, ci := range w.incident(int(l)) {
			s.incOK[ci] = false
		}
	}
}

// undo pops depth i's frame, restoring loads, contributions, and the
// aggregate to their saved bits and invalidating the touched comms' cache
// entries again (their loads changed back).
func (s *searchState) undo(i int) {
	w := s.w
	base := i * s.maxLen
	for t := int(s.fn[i]) - 1; t >= 0; t-- {
		l := s.fids[base+t]
		s.loads[l] = s.fload[base+t]
		s.contOf[l] = s.fcont[base+t]
		for _, ci := range w.incident(int(l)) {
			s.incOK[ci] = false
		}
	}
	s.aggCont = s.fagg[i]
	s.aggQuant = s.fqagg[i]
}

// overloads reports whether routing comm i over candidate j would push any
// link past the bandwidth.
func (s *searchState) overloads(i, j int) bool {
	rate := s.w.rate[i]
	for _, l := range s.w.pathLinks(i, j) {
		if s.loads[l]+rate > s.w.maxOK {
			return true
		}
	}
	return false
}

// minIncOf returns comm ci's cheapest envelope dynamic increment over
// its candidate paths, recomputing lazily when the cache is stale. The
// increment deliberately omits Pleak: two unrouted comms could share a
// newly activated link, so charging each the static power would overcount
// and break admissibility. Increments are non-negative (envDyn is
// increasing), so a partial sum at or past the best path can stop early.
func (s *searchState) minIncOf(ci int) float64 {
	if s.incOK[ci] {
		return s.minInc[ci]
	}
	w := s.w
	rate := w.rate[ci]
	np := int(w.npaths[ci])
	l := int(w.lens[ci])
	base := int(w.arenaOff[ci])
	best := math.Inf(1)
	for j := 0; j < np; j++ {
		sum := 0.0
		for _, id := range w.arena[base+j*l : base+(j+1)*l] {
			load := s.loads[id]
			var before float64
			if load > loadEps {
				before = s.contOf[id] - w.pleak
			}
			sum += w.envDyn(load+rate) - before
			if sum >= best {
				break
			}
		}
		if sum < best {
			best = sum
		}
	}
	s.minInc[ci] = best
	s.incOK[ci] = true
	return best
}

// bound is the admissible lower bound at depth i: power already committed
// (static + envelope dynamic of the active links, the running aggregate)
// plus each unrouted comm's cheapest envelope increment. The envelope
// never exceeds the quantized power, and its convexity makes increments
// from a shared base superadditive (the comms jointly pay at least what
// they are each charged), so no completion of this prefix can beat it.
func (s *searchState) bound(i int) float64 {
	lb := s.aggCont
	for k := i; k < s.n; k++ {
		lb += s.minIncOf(k)
	}
	return lb
}

// leafPower evaluates the complete routing exactly — quantized
// frequencies, static power of active links — scanning the instance's
// candidate links in id order so the float summation order is identical
// on every worker.
func (s *searchState) leafPower() (float64, bool) {
	w := s.w
	total := 0.0
	for _, l := range w.usedLinks {
		load := s.loads[l]
		if load <= loadEps {
			continue
		}
		p, ok := w.ev.LinkPowerOK(load)
		if !ok {
			return 0, false
		}
		total += p
	}
	return total, true
}

// dfs explores the subtree below the current depth-i prefix. Pruning is
// strict (bound must exceed the incumbent by more than boundSlack), so a
// subtree containing an optimum-tied leaf is never cut: whatever the
// incumbent's timing, every equal-power optimum is enumerated and the
// lexicographic tie-break sees them all.
func (s *searchState) dfs(i int) {
	if !s.w.charge() {
		return
	}
	if i == s.n {
		if p, ok := s.leafPower(); ok {
			s.w.best.offer(p, s.choice)
		}
		return
	}
	if inc := s.w.best.load() + boundSlack; s.aggQuant > inc || s.bound(i) > inc {
		return
	}
	for _, j := range s.w.cand(i) {
		if s.overloads(i, int(j)) {
			continue
		}
		s.choice[i] = j
		s.add(i, int(j))
		s.dfs(i + 1)
		s.undo(i)
	}
}

// incumbent is the workers' shared best-so-far. Pruning reads the power
// through a lock-free atomic; offers that match or beat it take the mutex
// and apply the full (power, lex choice vector) total order, so the
// winning vector is independent of arrival order.
type incumbent struct {
	bits  atomic.Uint64
	mu    sync.Mutex
	found bool
	power float64
	vec   []int32
}

func (b *incumbent) reset() {
	b.bits.Store(math.Float64bits(math.Inf(1)))
	b.found = false
	b.power = math.Inf(1)
	b.vec = b.vec[:0]
}

// load returns the current incumbent power (+Inf when none).
func (b *incumbent) load() float64 { return math.Float64frombits(b.bits.Load()) }

// offer installs (p, vec) if it is strictly better, or equal-power with a
// lexicographically smaller vector.
func (b *incumbent) offer(p float64, vec []int32) {
	if p > b.load() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.found {
		if p > b.power || (p == b.power && !lexLess(vec, b.vec)) {
			return
		}
	}
	b.found = true
	b.power = p
	b.vec = append(b.vec[:0], vec...)
	b.bits.Store(math.Float64bits(p))
}

// lexLess reports whether a precedes b in lexicographic order.
func lexLess(a, b []int32) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// taskDeque holds pre-generated subtree tasks for one worker. The owner
// pops from the front (preserving the near-greedy candidate order),
// thieves pop from the back (the least-ordered work). Tasks are only ever
// produced before the workers start, so an empty sweep means done.
type taskDeque struct {
	mu   sync.Mutex
	buf  []int32
	head int
}

func (d *taskDeque) reset() {
	d.buf = d.buf[:0]
	d.head = 0
}

func (d *taskDeque) push(t int32) {
	d.mu.Lock()
	d.buf = append(d.buf, t)
	d.mu.Unlock()
}

func (d *taskDeque) popFront() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.buf) {
		return 0, false
	}
	t := d.buf[d.head]
	d.head++
	return t, true
}

func (d *taskDeque) popBack() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.buf) {
		return 0, false
	}
	t := d.buf[len(d.buf)-1]
	d.buf = d.buf[:len(d.buf)-1]
	return t, true
}

func (d *taskDeque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf) - d.head
}

// genTasks walks the top of the tree to taskD, charging and pruning like
// dfs, and emits each surviving depth-taskD prefix as one task (the
// task's own node is charged later by the worker's dfs entry).
func (w *Workspace) genTasks(s *searchState, i int) {
	if i == w.taskD {
		w.taskBuf = append(w.taskBuf, s.choice[:w.taskD]...)
		return
	}
	if !w.charge() {
		return
	}
	if inc := w.best.load() + boundSlack; s.aggQuant > inc || s.bound(i) > inc {
		return
	}
	for _, j := range w.cand(i) {
		if s.overloads(i, int(j)) {
			continue
		}
		s.choice[i] = j
		s.add(i, int(j))
		w.genTasks(s, i+1)
		s.undo(i)
	}
}

// runParallel deals the generated tasks round-robin onto per-worker
// deques and runs the workers to completion.
func (w *Workspace) runParallel(workers, nt int) {
	for len(w.deques) < workers {
		w.deques = append(w.deques, &taskDeque{})
	}
	for k := 0; k < workers; k++ {
		w.deques[k].reset()
	}
	for t := 0; t < nt; t++ {
		w.deques[t%workers].push(int32(t))
	}
	w.wg.Add(workers)
	for k := 0; k < workers; k++ {
		st := w.state(k)
		go st.runTasks()
	}
	w.wg.Wait()
}

// runTasks drains the worker's own deque front-first, then steals from
// the fullest other deque until every deque is empty.
func (s *searchState) runTasks() {
	w := s.w
	defer w.wg.Done()
	for {
		t, ok := w.deques[s.self].popFront()
		if !ok {
			t, ok = w.steal(s.self)
			if !ok {
				return
			}
		}
		s.runTask(int(t))
	}
}

// steal pops from the back of the fullest other deque, rescanning until a
// pop succeeds or every deque is empty (tasks are never added once the
// workers run, so an empty sweep is terminal).
func (w *Workspace) steal(self int) (int32, bool) {
	for {
		victim, bestSize := -1, 0
		for k, d := range w.deques {
			if k == self {
				continue
			}
			if sz := d.size(); sz > bestSize {
				victim, bestSize = k, sz
			}
		}
		if victim < 0 {
			return 0, false
		}
		if t, ok := w.deques[victim].popBack(); ok {
			return t, true
		}
	}
}

// runTask replays the task's prefix onto the worker's state, searches the
// subtree, and unwinds.
func (s *searchState) runTask(t int) {
	w := s.w
	prefix := w.taskBuf[t*w.taskD : (t+1)*w.taskD]
	for i, j := range prefix {
		s.choice[i] = j
		s.add(i, int(j))
	}
	s.dfs(w.taskD)
	for i := w.taskD - 1; i >= 0; i-- {
		s.undo(i)
	}
}
