package exact

import (
	"errors"
	"testing"

	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

// A stop poll that already fired abandons the branch-and-bound once the
// node count crosses the poll stride, surfacing the sentinel instead of
// a result. The reference run first proves the instance explores enough
// nodes for the stride to be reached at all.
func TestSolveStopAbandonsSearch(t *testing.T) {
	m := mesh.MustNew(5, 5)
	model := power.KimHorowitz()
	set := workload.New(m, 77).Uniform(12, 100, 1500)
	w := NewWorkspace()
	_, _, st, err := w.Solve(m, model, set, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.States <= stopNodeStride {
		t.Fatalf("instance explores only %d nodes, need > %d to exercise the stop poll", st.States, stopNodeStride)
	}
	_, _, _, err = w.Solve(m, model, set, Options{Workers: 1, Stop: func() bool { return true }})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

// A never-firing stop hook changes neither the optimum nor the node
// count: the poll piggybacks on the existing node counter and touches no
// search state.
func TestSolveStopNeverFiringChangesNothing(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	set := workload.New(m, 31).Uniform(6, 200, 2000)
	w := NewWorkspace()
	ra, oka, sta, err := w.Solve(m, model, set, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, okb, stb, err := w.Solve(m, model, set, Options{Workers: 1, Stop: func() bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	if oka != okb || sta.States != stb.States {
		t.Fatalf("stop hook changed the search: ok %v/%v, states %d/%d", oka, okb, sta.States, stb.States)
	}
	if oka {
		pa := route.Evaluate(ra, model).Power.Total()
		pb := route.Evaluate(rb, model).Power.Total()
		if pa != pb {
			t.Fatalf("stop hook changed the optimum: %g vs %g", pa, pb)
		}
	}
}
