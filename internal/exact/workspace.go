package exact

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// Workspace owns every buffer a Solve call needs — the sorted comm order,
// the flat candidate-path arena, the link→comm incidence index, the
// per-worker search states, the task deques, and the result flows — so a
// reused workspace solves without allocating once warmed (the Reset-or-New
// discipline of route.Workspace and noc.Workspace). The zero value is not
// usable; construct with NewWorkspace.
type Workspace struct {
	mesh  *mesh.Mesh
	model power.Model
	ev    *power.Evaluator

	// Continuous-relaxation scalars of the bound (model with Freqs
	// dropped), precomputed so the hot loops never touch the Model.
	pleak   float64
	p0      float64
	alpha   float64
	invUnit float64
	cube    bool    // alpha == 3: cube beats math.Pow on the bound path
	maxOK   float64 // MaxBW + 1e-9, the overload threshold

	// Lower convex envelope of the quantized dynamic power: piecewise
	// linear through (0, 0) and every (level, P0·(level/unit)^α). The
	// envelope is convex (PL interpolation of a convex function), never
	// exceeds the quantized power (which holds each level's value across
	// the whole interval below it), and lies on or above the continuous
	// curve — so it is the tightest separable convex bound available, and
	// evaluating a PL segment is cheaper than math.Pow. Empty for
	// continuous models (no levels), where contDyn is the envelope.
	envX []float64 // segment starts: 0, level_1, ..., level_{K-1}
	envY []float64 // envelope value at each segment start
	envS []float64 // segment slopes, nondecreasing

	// Instance tables, indexed by position in the weight-descending order.
	order    comm.Set
	rate     []float64
	lens     []int32 // Manhattan length of every candidate path of the comm
	npaths   []int32
	arenaOff []int32 // offset of the comm's first path in arena
	arena    []int32 // flat link ids; path j of comm ci is arena[off+j·L : off+(j+1)·L]

	// candOff/candBuf hold the per-comm candidate visit order: a
	// permutation of [0, npaths) sorted by seed-load increment.
	candOff []int32
	candBuf []int32

	// Incidence CSR: incBuf[incOff[l]:incOff[l+1]] lists the comms whose
	// candidate set touches link l — the bound-cache invalidation index.
	incOff []int32
	incBuf []int32

	// usedLinks lists, in ascending id order, every link any candidate
	// path can touch: the only links a leaf scan needs, in a fixed
	// summation order shared by all workers.
	usedLinks []int32

	// Shared search coordination.
	maxStates int64
	nodeCount atomic.Int64
	truncated atomic.Bool
	stop      func() bool // Options.Stop, polled by charge
	stopped   atomic.Bool // latched once stop reports true
	best      incumbent
	wg        sync.WaitGroup

	// Parallel split: taskBuf holds choice-vector prefixes of length
	// taskD, dealt round-robin onto per-worker deques.
	taskD   int
	taskBuf []int32
	deques  []*taskDeque

	pool []*searchState

	// Result assembly and seeding scratch.
	flows   []route.Flow
	paths   route.PathSet
	seedVec []int32
	rws     *route.Workspace // lazily built when the caller provides none

	stamp   []int32
	cnt     []int32
	keys    []float64
	mvs     []uint8
	linkBuf []int32
}

// NewWorkspace returns an empty workspace ready for its first Solve.
func NewWorkspace() *Workspace { return &Workspace{} }

// contDyn is the continuous-relaxation dynamic power P0·(load/unit)^α.
func (w *Workspace) contDyn(load float64) float64 {
	x := load * w.invUnit
	if w.cube {
		return w.p0 * x * x * x
	}
	return w.p0 * math.Pow(x, w.alpha)
}

// envDyn is the bound's per-link dynamic power: the lower convex envelope
// of the quantized dynamic power (see the envX field comment), falling
// back to the continuous curve for continuous models. Loads past the last
// level (infeasible, but reachable transiently inside the overload slack)
// extrapolate the final segment, which stays admissible.
func (w *Workspace) envDyn(load float64) float64 {
	k := len(w.envS) - 1
	if k < 0 {
		return w.contDyn(load)
	}
	for k > 0 && load <= w.envX[k] {
		k--
	}
	return w.envY[k] + w.envS[k]*(load-w.envX[k])
}

// pathLinks returns the link ids of candidate path j of comm ci.
func (w *Workspace) pathLinks(ci, j int) []int32 {
	l := int(w.lens[ci])
	base := int(w.arenaOff[ci]) + j*l
	return w.arena[base : base+l]
}

// cand returns comm ci's candidate visit order.
func (w *Workspace) cand(ci int) []int32 {
	return w.candBuf[w.candOff[ci]:w.candOff[ci+1]]
}

// incident returns the comms whose candidate paths touch link l.
func (w *Workspace) incident(l int) []int32 {
	return w.incBuf[w.incOff[l]:w.incOff[l+1]]
}

// charge consumes one node of the state budget; false means the node was
// denied — the budget marked the search truncated, or Options.Stop
// cancelled it. With no stop hook the fast path is unchanged; with one,
// the cost per node is a latch load plus a stride-gated predicate call on
// the count the budget already maintains.
func (w *Workspace) charge() bool {
	n := w.nodeCount.Add(1)
	if n > w.maxStates {
		w.truncated.Store(true)
		return false
	}
	if w.stop != nil {
		if w.stopped.Load() {
			return false
		}
		if n%stopNodeStride == 0 && w.stop() {
			w.stopped.Store(true)
			return false
		}
	}
	return true
}

func ensureI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func ensureF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// prepare rebuilds the instance tables into the pooled buffers: comm
// order, candidate-path arena (every Manhattan path per comm, enumerated
// in lexicographic move order — the canonical indices of the choice
// vector), identity candidate order, and the incidence CSR.
func (w *Workspace) prepare(m *mesh.Mesh, model power.Model, set comm.Set) error {
	w.mesh = m
	w.model = model
	if w.ev == nil || !w.ev.CompiledFrom(model) {
		w.ev = power.Compile(model)
	}
	w.pleak = model.Pleak
	w.p0 = model.P0
	w.alpha = model.Alpha
	unit := model.FreqUnit
	if unit == 0 {
		unit = 1
	}
	w.invUnit = 1 / unit
	w.cube = model.Alpha == 3
	w.maxOK = model.MaxBW + 1e-9

	// Build the quantized-power envelope (see the envX field comment):
	// segment nodes at 0 and each distinct positive level, slopes from the
	// continuous curve's values there.
	w.envX = append(w.envX[:0], 0)
	w.envY = w.envY[:0]
	w.envS = w.envS[:0]
	for _, f := range model.Freqs {
		w.envX = append(w.envX, f)
	}
	sort.Float64s(w.envX)
	xs := w.envX[:1]
	for _, x := range w.envX[1:] {
		if x > xs[len(xs)-1] {
			xs = append(xs, x)
		}
	}
	w.envX = xs
	for _, x := range w.envX {
		w.envY = append(w.envY, w.contDyn(x))
	}
	for k := 0; k+1 < len(w.envX); k++ {
		w.envS = append(w.envS, (w.envY[k+1]-w.envY[k])/(w.envX[k+1]-w.envX[k]))
	}
	w.envX = w.envX[:len(w.envS)]
	w.envY = w.envY[:len(w.envS)]

	// Heaviest first: conflicts surface near the root, pruning earlier.
	w.order = set.SortedInto(w.order, comm.ByWeightDesc)
	n := len(w.order)

	w.rate = ensureF64(w.rate, n)
	w.lens = ensureI32(w.lens, n)
	w.npaths = ensureI32(w.npaths, n)
	w.arenaOff = ensureI32(w.arenaOff, n+1)
	w.candOff = ensureI32(w.candOff, n+1)
	w.arena = w.arena[:0]
	totalPaths := 0
	for i, c := range w.order {
		w.rate[i] = c.Rate
		l := c.Length()
		w.lens[i] = int32(l)
		count, ok := mesh.PathCount64(c.Src, c.Dst)
		if !ok || int(count)*l > maxArenaLinks-len(w.arena) {
			return fmt.Errorf("exact: comm %d spans too many Manhattan paths for exact search", c.ID)
		}
		w.arenaOff[i] = int32(len(w.arena))
		w.candOff[i] = int32(totalPaths)
		w.enumerate(c.Src, c.Dst)
		w.npaths[i] = int32(count)
		totalPaths += int(count)
	}
	if n > 0 {
		w.arenaOff[n] = int32(len(w.arena))
		w.candOff[n] = int32(totalPaths)
	}

	// Identity candidate order; seeding re-sorts it when an incumbent is
	// found.
	w.candBuf = ensureI32(w.candBuf, totalPaths)
	for ci := 0; ci < n; ci++ {
		c := w.candBuf[w.candOff[ci]:w.candOff[ci+1]]
		for j := range c {
			c[j] = int32(j)
		}
	}

	// Incidence CSR via a two-pass counting sort; stamp dedups the links
	// a comm's paths share.
	idspace := m.LinkIDSpace()
	w.incOff = ensureI32(w.incOff, idspace+1)
	w.stamp = ensureI32(w.stamp, idspace)
	w.cnt = ensureI32(w.cnt, idspace)
	for i := 0; i < idspace; i++ {
		w.stamp[i] = -1
		w.cnt[i] = 0
	}
	for ci := 0; ci < n; ci++ {
		for _, l := range w.arena[w.arenaOff[ci]:w.arenaOff[ci+1]] {
			if w.stamp[l] != int32(ci) {
				w.stamp[l] = int32(ci)
				w.cnt[l]++
			}
		}
	}
	total := int32(0)
	for id := 0; id < idspace; id++ {
		w.incOff[id] = total
		total += w.cnt[id]
		w.cnt[id] = w.incOff[id] // becomes the fill cursor
	}
	w.incOff[idspace] = total
	w.incBuf = ensureI32(w.incBuf, int(total))
	for i := 0; i < idspace; i++ {
		w.stamp[i] = -1
	}
	for ci := 0; ci < n; ci++ {
		for _, l := range w.arena[w.arenaOff[ci]:w.arenaOff[ci+1]] {
			if w.stamp[l] != int32(ci) {
				w.stamp[l] = int32(ci)
				w.incBuf[w.cnt[l]] = int32(ci)
				w.cnt[l]++
			}
		}
	}
	w.usedLinks = w.usedLinks[:0]
	for id := 0; id < idspace; id++ {
		if w.incOff[id+1] > w.incOff[id] {
			w.usedLinks = append(w.usedLinks, int32(id))
		}
	}
	return nil
}

// enumerate appends every Manhattan path from src to dst to the arena in
// lexicographic move order (the EnumeratePaths order), as link-id
// sequences: the path is a binary string over the quadrant's two moves
// and successive strings come from the standard next-permutation step.
func (w *Workspace) enumerate(src, dst mesh.Coord) {
	m := w.mesh
	d := mesh.DirectionOf(src, dst)
	moves := d.Moves()
	a := abs(src.U - dst.U) // count of moves[0] (vertical)
	b := abs(src.V - dst.V) // count of moves[1] (horizontal)
	w.mvs = w.mvs[:0]
	for i := 0; i < a; i++ {
		w.mvs = append(w.mvs, 0)
	}
	for i := 0; i < b; i++ {
		w.mvs = append(w.mvs, 1)
	}
	for {
		c := src
		for _, bit := range w.mvs {
			nc := c.Step(moves[bit])
			w.arena = append(w.arena, int32(m.LinkIDFast(mesh.Link{From: c, To: nc})))
			c = nc
		}
		// Next permutation: rightmost "01" ascent, swap, reverse suffix.
		i := len(w.mvs) - 2
		for i >= 0 && w.mvs[i] >= w.mvs[i+1] {
			i--
		}
		if i < 0 {
			return
		}
		j := len(w.mvs) - 1
		for w.mvs[j] <= w.mvs[i] {
			j--
		}
		w.mvs[i], w.mvs[j] = w.mvs[j], w.mvs[i]
		for lo, hi := i+1, len(w.mvs)-1; lo < hi; lo, hi = lo+1, hi-1 {
			w.mvs[lo], w.mvs[hi] = w.mvs[hi], w.mvs[lo]
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// state returns worker k's search state, bound to the current instance
// and reset to zero loads.
func (w *Workspace) state(k int) *searchState {
	for len(w.pool) <= k {
		w.pool = append(w.pool, &searchState{})
	}
	s := w.pool[k]
	s.bind(w, k)
	return s
}

// assemble builds the routing of the incumbent choice vector from pooled
// path slots.
func (w *Workspace) assemble() route.Routing {
	n := len(w.order)
	if cap(w.flows) < n {
		w.flows = make([]route.Flow, 0, n)
	}
	flows := w.flows[:0]
	w.paths.ResetFor(w.order)
	for i, c := range w.order {
		p := w.paths.Acquire(c.ID, int(w.lens[i]))
		for _, l := range w.pathLinks(i, int(w.best.vec[i])) {
			p = append(p, w.mesh.LinkByID(int(l)))
		}
		w.paths.Set(c.ID, p)
		flows = append(flows, route.Flow{Comm: c, Path: p})
	}
	w.flows = flows
	return route.Routing{Mesh: w.mesh, Flows: flows}
}
