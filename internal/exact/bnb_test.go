package exact

import (
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

// tightModel is KimHorowitz with the top two frequency levels removed:
// MaxBW 2000 makes moderate workloads clash, exercising the infeasible
// and barely-feasible corners the loose model never reaches.
func tightModel() power.Model {
	return power.Model{
		Pleak: 16.9, P0: 5.41, Alpha: 2.95,
		Freqs: []float64{1000, 2000}, MaxBW: 2000, FreqUnit: 1000,
	}
}

func samePower(a, b float64) bool {
	tol := 1e-9
	if m := math.Abs(a); m > 1 {
		tol *= m
	}
	return math.Abs(a-b) <= tol
}

// sameRouting reports flow-by-flow, link-by-link equality.
func sameRouting(a, b route.Routing) bool {
	if len(a.Flows) != len(b.Flows) {
		return false
	}
	for i := range a.Flows {
		if a.Flows[i].Comm.ID != b.Flows[i].Comm.ID ||
			len(a.Flows[i].Path) != len(b.Flows[i].Path) {
			return false
		}
		for t := range a.Flows[i].Path {
			if a.Flows[i].Path[t] != b.Flows[i].Path[t] {
				return false
			}
		}
	}
	return true
}

// The rebuilt solver must agree with the preserved reference on every
// instance: same feasibility verdict, same optimal power — across loose
// and tight bandwidth, square and corridor meshes, feasible and
// infeasible workloads.
func TestSolveMatchesReference(t *testing.T) {
	type modelCase struct {
		name       string
		model      power.Model
		n          int
		wmin, wmax float64
	}
	cases := []modelCase{
		{"kim", power.KimHorowitz(), 5, 200, 1200},
		{"tight", tightModel(), 4, 600, 1400},
	}
	w := NewWorkspace()
	for _, dims := range [][2]int{{3, 3}, {4, 4}, {2, 5}} {
		m := mesh.MustNew(dims[0], dims[1])
		for _, mc := range cases {
			gen := workload.New(m, 0)
			for seed := int64(1); seed <= 5; seed++ {
				gen.Reseed(900 + seed)
				set := gen.Uniform(mc.n, mc.wmin, mc.wmax)
				rRef, okRef, errRef := refSolve(m, mc.model, set)
				if errRef != nil {
					continue // reference truncated; nothing to compare
				}
				r, ok, st, err := w.Solve(m, mc.model, set, Options{})
				if err != nil {
					t.Fatalf("%dx%d %s seed %d: new solver error: %v", dims[0], dims[1], mc.name, seed, err)
				}
				if ok != okRef {
					t.Fatalf("%dx%d %s seed %d: feasible=%v, reference says %v", dims[0], dims[1], mc.name, seed, ok, okRef)
				}
				if !ok {
					continue
				}
				pNew := route.Evaluate(r, mc.model).Power.Total()
				pRef := route.Evaluate(rRef, mc.model).Power.Total()
				if !samePower(pNew, pRef) {
					t.Fatalf("%dx%d %s seed %d: power %.12g, reference %.12g (states=%d)",
						dims[0], dims[1], mc.name, seed, pNew, pRef, st.States)
				}
				if err := r.Validate(set, 1); err != nil {
					t.Fatalf("%dx%d %s seed %d: %v", dims[0], dims[1], mc.name, seed, err)
				}
			}
		}
	}
}

// The routing is byte-identical at every worker count: same flows, same
// links, bit-equal power. This is the determinism contract that makes OPT
// usable as a differential baseline regardless of GOMAXPROCS.
func TestRoutingByteIdenticalAcrossWorkers(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	gen := workload.New(m, 0)
	for seed := int64(1); seed <= 4; seed++ {
		gen.Reseed(40 + seed)
		set := gen.Uniform(6, 200, 1200)
		var base route.Routing
		var basePower float64
		baseOK := false
		for _, workers := range []int{1, 2, 8} {
			r, ok, _, err := NewWorkspace().Solve(m, model, set, Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if workers == 1 {
				baseOK = ok
				if ok {
					base = r.Clone()
					basePower = route.Evaluate(base, model).Power.Total()
				}
				continue
			}
			if ok != baseOK {
				t.Fatalf("seed %d workers %d: feasible=%v, serial says %v", seed, workers, ok, baseOK)
			}
			if !ok {
				continue
			}
			if !sameRouting(r, base) {
				t.Fatalf("seed %d workers %d: routing differs from serial", seed, workers)
			}
			if p := route.Evaluate(r, model).Power.Total(); p != basePower {
				t.Fatalf("seed %d workers %d: power %.17g != serial %.17g", seed, workers, p, basePower)
			}
		}
	}
}

// A big-enough instance to split into many tasks, solved with 8 workers
// sharing the incumbent — the -race CI job runs this to certify the
// atomic/mutex incumbent and the stealing deques.
func TestParallelSharedIncumbent(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	set := workload.New(m, 7).Uniform(7, 100, 900)
	r8, ok, st, err := NewWorkspace().Solve(m, model, set, Options{Workers: 8})
	if err != nil || !ok {
		t.Fatalf("parallel solve: ok=%v err=%v", ok, err)
	}
	if st.Workers != 8 || st.Tasks < 2 {
		t.Fatalf("expected a real parallel split, got workers=%d tasks=%d", st.Workers, st.Tasks)
	}
	r1, ok1, _, err1 := NewWorkspace().Solve(m, model, set, Options{Workers: 1})
	if err1 != nil || !ok1 {
		t.Fatalf("serial solve: ok=%v err=%v", ok1, err1)
	}
	if !sameRouting(r8, r1) {
		t.Fatal("parallel routing differs from serial")
	}
}

// A search that completes on exactly its state budget is not truncated —
// the bug in the old solver (any search reaching MaxStates states was
// reported as exceeded, even when it had in fact finished). Truncation is
// now tracked by denied nodes, so budget == states succeeds and
// budget == states−1 fails.
func TestMaxStatesBoundary(t *testing.T) {
	m := mesh.MustNew(3, 3)
	model := power.KimHorowitz()
	set := workload.New(m, 11).Uniform(5, 200, 900)
	w := NewWorkspace()
	_, ok, st, err := w.Solve(m, model, set, Options{Workers: 1})
	if err != nil || !ok {
		t.Fatalf("baseline solve: ok=%v err=%v", ok, err)
	}
	if st.States < 2 {
		t.Fatalf("degenerate baseline: %d states", st.States)
	}
	_, ok2, st2, err2 := w.Solve(m, model, set, Options{Workers: 1, MaxStates: int(st.States)})
	if err2 != nil || !ok2 || st2.Truncated {
		t.Fatalf("budget == states must succeed: ok=%v truncated=%v err=%v", ok2, st2.Truncated, err2)
	}
	if st2.States != st.States {
		t.Fatalf("serial search not reproducible: %d then %d states", st.States, st2.States)
	}
	_, _, st3, err3 := w.Solve(m, model, set, Options{Workers: 1, MaxStates: int(st.States) - 1})
	if err3 == nil || !st3.Truncated {
		t.Fatalf("budget == states-1 must truncate: truncated=%v err=%v", st3.Truncated, err3)
	}
}

// Reusing one workspace across instances of different meshes and models
// produces bit-identical results to fresh workspaces.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	meshes := []*mesh.Mesh{mesh.MustNew(3, 3), mesh.MustNew(2, 5), mesh.MustNew(4, 4)}
	models := []power.Model{power.KimHorowitz(), tightModel()}
	w := NewWorkspace()
	for i := 0; i < 9; i++ {
		m := meshes[i%len(meshes)]
		model := models[i%len(models)]
		set := workload.New(m, int64(300+i)).Uniform(4, 200, 1100)
		rReuse, okReuse, _, errReuse := w.Solve(m, model, set, Options{})
		rFresh, okFresh, _, errFresh := NewWorkspace().Solve(m, model, set, Options{})
		if (errReuse == nil) != (errFresh == nil) || okReuse != okFresh {
			t.Fatalf("instance %d: reuse ok=%v err=%v, fresh ok=%v err=%v", i, okReuse, errReuse, okFresh, errFresh)
		}
		if !okReuse {
			continue
		}
		if !sameRouting(rReuse, rFresh) {
			t.Fatalf("instance %d: reused workspace routing differs from fresh", i)
		}
		pr := route.Evaluate(rReuse, model).Power.Total()
		pf := route.Evaluate(rFresh, model).Power.Total()
		if pr != pf {
			t.Fatalf("instance %d: power %.17g (reuse) != %.17g (fresh)", i, pr, pf)
		}
	}
}

// Feasible instances are incumbent-seeded, and the seed's exact power
// never beats the optimum it primes.
func TestSeedStats(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	for seed := int64(1); seed <= 5; seed++ {
		set := workload.New(m, 70+seed).Uniform(5, 200, 1000)
		r, ok, st, err := NewWorkspace().Solve(m, model, set, Options{})
		if err != nil || !ok {
			t.Fatalf("seed %d: ok=%v err=%v", seed, ok, err)
		}
		if !st.Seeded {
			t.Fatalf("seed %d: feasible instance not incumbent-seeded", seed)
		}
		opt := route.Evaluate(r, model).Power.Total()
		if st.SeedPower < opt-1e-9 {
			t.Fatalf("seed %d: seed power %g beats optimum %g", seed, st.SeedPower, opt)
		}
	}
}

// The empty set routes to an empty feasible routing.
func TestSolveEmptySet(t *testing.T) {
	m := mesh.MustNew(3, 3)
	r, ok, st, err := NewWorkspace().Solve(m, power.KimHorowitz(), nil, Options{})
	if err != nil || !ok || len(r.Flows) != 0 {
		t.Fatalf("empty set: ok=%v flows=%d err=%v", ok, len(r.Flows), err)
	}
	if st.Seeded {
		t.Fatal("empty set reported as seeded")
	}
}
