package exact

import (
	"fmt"

	"repro/internal/route"
	"repro/internal/solve"
)

// optRoute adapts the branch-and-bound solver to the registry. Unlike the
// heuristics, OPT proves infeasibility: when no single-path routing fits
// the bandwidth it returns an error rather than an overloaded routing.
func optRoute(in solve.Instance, _ solve.Options) (route.Routing, error) {
	if err := in.Validate(); err != nil {
		return route.Routing{}, err
	}
	r, ok, err := Solve(in.Mesh, in.Model, in.Comms)
	if err != nil {
		return route.Routing{}, err
	}
	if !ok {
		return route.Routing{}, fmt.Errorf("exact: no feasible single-path routing exists")
	}
	return r, nil
}

func init() {
	solve.Register(solve.Func{PolicyName: "OPT", RouteFunc: optRoute})
}
