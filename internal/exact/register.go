package exact

import (
	"errors"
	"fmt"

	"repro/internal/route"
	"repro/internal/solve"
)

// optRoute adapts the branch-and-bound solver to the registry. Unlike the
// heuristics, OPT proves infeasibility: when no single-path routing fits
// the bandwidth it returns an error rather than an overloaded routing.
// Under opts.Workspace the solver's own pooled Workspace rides along in a
// scratch slot, so registry callers that amortize (the experiment
// engine's per-worker scratch) solve without allocating; opts.ExactWorkers
// and opts.ExactMaxStates pass through.
func optRoute(in solve.Instance, opts solve.Options) (route.Routing, error) {
	if err := in.Validate(); err != nil {
		return route.Routing{}, err
	}
	w := NewWorkspace()
	if opts.Workspace != nil {
		w = opts.Workspace.Scratch("exact", func() any { return NewWorkspace() }).(*Workspace)
	}
	r, ok, _, err := w.Solve(in.Mesh, in.Model, in.Comms, Options{
		Workers:   opts.ExactWorkers,
		MaxStates: opts.ExactMaxStates,
		Route:     opts.Workspace,
		Stop:      opts.Stop,
	})
	if err != nil {
		if errors.Is(err, ErrStopped) {
			return route.Routing{}, solve.ErrStopped
		}
		return route.Routing{}, err
	}
	if !ok {
		return route.Routing{}, fmt.Errorf("exact: no feasible single-path routing exists")
	}
	return r, nil
}

func init() {
	solve.Register(solve.Func{PolicyName: "OPT", RouteFunc: optRoute})
}
