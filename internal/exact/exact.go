// Package exact computes optimal single-path (1-MP) routings of small
// instances by branch-and-bound, plus the ideal-sharing lower bound used
// in the proofs of Theorems 1 and 2. The paper leaves "compute the optimal
// solution for small problem instances" as future work (Section 7); this
// package provides it as a baseline so the heuristics' absolute quality
// can be measured in tests, ablation benches, and the cmd/experiments
// -optgap report.
//
// The solver is an incumbent-seeded, incrementally-bounded, parallel
// branch-and-bound behind a pooled Workspace:
//
//   - The registered BEST heuristic (or a cheapest-increment greedy when
//     the registry is not linked) runs first, so pruning starts from a
//     real incumbent instead of +Inf.
//   - Two admissible lower bounds are maintained as running aggregates
//     updated on every path add/remove. The envelope bound is static power
//     of active links plus the lower convex envelope of the quantized
//     dynamic power (piecewise-linear through the frequency levels — far
//     tighter than the continuous relaxation, which never prunes because
//     quantization rounds frequency up), plus each unrouted
//     communication's cheapest envelope increment; the per-comm
//     cheapest-increment terms are cached and invalidated only for comms
//     whose candidate paths touch a changed link, via a link→comm
//     incidence index. The quantized-aggregate bound is the exact
//     quantized power of the links routed so far (admissible because
//     per-link loads only grow down the tree), which dominates deep in
//     congested trees where loads sit just past a frequency step.
//   - Per-comm candidate paths are pre-sorted by their envelope increment
//     against the seed routing's loads, so the first descent is
//     near-greedy.
//   - The top of the tree is split into subtree tasks on per-worker
//     deques with work stealing; workers share the best-power incumbent
//     through an atomic.
//
// Determinism: the returned routing is byte-identical at every worker
// count. Equal-power optima are tie-broken by the lexicographically
// smallest choice vector (candidate path enumeration indices in
// weight-descending comm order); subtrees are pruned only when their
// bound strictly exceeds the incumbent (plus a 1e-9 admissibility slack),
// so every optimum-tied leaf is explored regardless of incumbent timing,
// and leaf loads are restored bitwise on backtrack so a leaf's evaluated
// power is a pure function of its choice vector.
package exact

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// ErrStopped is returned by Solve when Options.Stop reported true before
// the search completed — cancellation, not infeasibility or truncation.
var ErrStopped = errors.New("exact: search stopped by Options.Stop")

// stopNodeStride is the node period of the Stop poll: the predicate runs
// once per this many explored nodes (on the count the budget charge
// already maintains), so an installed hook costs one modulo next to the
// existing atomic add and a deadline still binds within microseconds.
const stopNodeStride = 1024

// DefaultMaxStates bounds the number of branch-and-bound nodes explored
// before Solve gives up, protecting tests from exponential blow-ups.
const DefaultMaxStates = 5_000_000

// boundSlack absorbs the floating-point rounding of the incrementally
// maintained lower bound: a subtree is pruned only when its bound exceeds
// the incumbent by more than this, so rounding can never prune an
// optimum-tied solution and the lexicographic tie-break stays exact.
const boundSlack = 1e-9

// maxArenaLinks caps the total candidate-path storage (Σ paths·length
// over the set). Instances past it are rejected loudly instead of
// exhausting memory before the state budget can bite.
const maxArenaLinks = 8 << 20

// Options tunes one Workspace.Solve call. The zero value reproduces the
// documented defaults.
type Options struct {
	// Workers caps the parallel subtree workers (0 = GOMAXPROCS). The
	// returned routing and power are byte-identical at every worker
	// count; only Stats.States may differ.
	Workers int
	// MaxStates overrides the search-node budget (0 = DefaultMaxStates).
	// A search that completes on exactly the budget still returns its
	// optimum; the truncation error is reported only when a node was
	// actually denied exploration.
	MaxStates int
	// Route, when non-nil, is the pooled routing workspace handed to the
	// incumbent-seeding BEST heuristic (and only to it), letting registry
	// callers share one scratch across the seed and their own solves.
	Route *route.Workspace
	// Stop, when non-nil, is polled every stopNodeStride explored nodes;
	// once it reports true every worker unwinds and Solve returns
	// ErrStopped. An unstopped search explores exactly the nodes it would
	// without the hook.
	Stop func() bool
}

// Stats reports how a Solve call went.
type Stats struct {
	// States is the number of branch-and-bound nodes explored. It is
	// deterministic for Workers == 1; under parallel search the count
	// varies run to run with pruning timing (the result does not).
	States int64
	// Truncated reports that the state budget denied at least one node,
	// in which case Solve returned an error.
	Truncated bool
	// Seeded reports that an incumbent was installed before the search;
	// SeedPower is its exact power.
	Seeded    bool
	SeedPower float64
	// Workers and Tasks describe the parallel split actually used
	// (Tasks == 0 means the serial path).
	Workers int
	Tasks   int
}

// Solve returns an optimal 1-MP routing of the communication set, or
// feasible=false if no single-path routing satisfies the bandwidth
// constraint. An error is returned only for malformed instances or when
// the search exceeds DefaultMaxStates. It is the one-shot form of
// Workspace.Solve; callers running many solves should pool a Workspace.
func Solve(m *mesh.Mesh, model power.Model, set comm.Set) (route.Routing, bool, error) {
	r, ok, _, err := NewWorkspace().Solve(m, model, set, Options{})
	return r, ok, err
}

// Solve runs the branch-and-bound on a pooled workspace. The returned
// routing aliases workspace memory and is valid until the next call on
// the same workspace (route.Routing.Clone to keep it); results are
// bit-for-bit identical with or without reuse, and at every Workers
// count. A Workspace must not be shared between goroutines (the solver
// parallelizes internally).
func (w *Workspace) Solve(m *mesh.Mesh, model power.Model, set comm.Set, opt Options) (route.Routing, bool, Stats, error) {
	var st Stats
	if err := set.Validate(m); err != nil {
		return route.Routing{}, false, st, err
	}
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if err := w.prepare(m, model, set); err != nil {
		return route.Routing{}, false, st, err
	}
	w.maxStates = int64(maxStates)
	w.nodeCount.Store(0)
	w.truncated.Store(false)
	w.stop = opt.Stop
	w.stopped.Store(false)
	w.best.reset()

	n := len(w.order)
	if n == 0 {
		st.Workers = 1
		if cap(w.flows) == 0 {
			w.flows = make([]route.Flow, 0, 1)
		}
		return route.Routing{Mesh: m, Flows: w.flows[:0]}, true, st, nil
	}

	s0 := w.state(0)
	rws := opt.Route
	if rws == nil {
		if w.rws == nil {
			w.rws = route.NewWorkspace()
		}
		rws = w.rws
	}
	st.Seeded, st.SeedPower = w.seedIncumbent(s0, rws)

	// Split the top of the tree into enough subtree tasks to keep every
	// worker busy through stealing. With one worker (or a tree too
	// shallow to split) the plain serial DFS avoids the task overhead;
	// the result is identical either way.
	splitDepth, est := 0, 1
	for splitDepth < n-1 && est < workers*4 {
		est *= int(w.npaths[splitDepth])
		splitDepth++
	}
	if workers == 1 || splitDepth == 0 {
		st.Workers = 1
		s0.dfs(0)
	} else {
		st.Workers = workers
		w.taskD = splitDepth
		w.taskBuf = w.taskBuf[:0]
		w.genTasks(s0, 0)
		nt := len(w.taskBuf) / splitDepth
		st.Tasks = nt
		if nt > 0 {
			w.runParallel(workers, nt)
		}
	}

	st.States = w.nodeCount.Load()
	if w.stopped.Load() {
		// Cancellation outranks truncation: a stopped search proved
		// nothing, so neither the incumbent nor the budget verdict may
		// leak out as a result.
		return route.Routing{}, false, st, ErrStopped
	}
	st.Truncated = w.truncated.Load()
	if st.Truncated {
		return route.Routing{}, false, st, fmt.Errorf("exact: search exceeded %d states", maxStates)
	}
	if !w.best.found {
		return route.Routing{}, false, st, nil
	}
	return w.assemble(), true, st, nil
}
