// Package exact computes optimal single-path (1-MP) routings of small
// instances by branch-and-bound, plus the ideal-sharing lower bound used
// in the proofs of Theorems 1 and 2. The paper leaves "compute the optimal
// solution for small problem instances" as future work (Section 7); this
// package provides it as a baseline so the heuristics' absolute quality
// can be measured in tests and ablation benches.
package exact

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// MaxStates bounds the number of branch-and-bound nodes explored before
// Solve gives up, protecting tests from exponential blow-ups.
const MaxStates = 5_000_000

// Solve returns an optimal 1-MP routing of the communication set, or
// feasible=false if no single-path routing satisfies the bandwidth
// constraint. An error is returned only for malformed instances or when
// the search exceeds MaxStates.
func Solve(m *mesh.Mesh, model power.Model, set comm.Set) (route.Routing, bool, error) {
	if err := set.Validate(m); err != nil {
		return route.Routing{}, false, err
	}
	// Heaviest first: conflicts surface near the root, pruning earlier.
	order := set.Sorted(comm.ByWeightDesc)
	paths := make([][]route.Path, len(order))
	for i, c := range order {
		enum := m.EnumeratePaths(c.Src, c.Dst)
		paths[i] = make([]route.Path, len(enum))
		for j, p := range enum {
			paths[i][j] = route.Path(p)
		}
	}

	b := &bb{m: m, model: model, order: order, paths: paths,
		loads: route.NewLoadTracker(m), bestPower: math.Inf(1)}
	b.choice = make([]int, len(order))
	b.bestChoice = make([]int, len(order))
	b.search(0)
	if b.states >= MaxStates {
		return route.Routing{}, false, fmt.Errorf("exact: search exceeded %d states", MaxStates)
	}
	if math.IsInf(b.bestPower, 1) {
		return route.Routing{}, false, nil
	}
	flows := make([]route.Flow, len(order))
	for i, c := range order {
		flows[i] = route.Flow{Comm: c, Path: paths[i][b.bestChoice[i]]}
	}
	return route.Routing{Mesh: m, Flows: flows}, true, nil
}

type bb struct {
	m          *mesh.Mesh
	model      power.Model
	order      comm.Set
	paths      [][]route.Path
	loads      *route.LoadTracker
	choice     []int
	bestChoice []int
	bestPower  float64
	states     int
}

func (b *bb) search(i int) {
	if b.states >= MaxStates {
		return
	}
	b.states++
	if i == len(b.order) {
		breakdown, err := b.loads.Power(b.model)
		if err != nil {
			return // infeasible leaf
		}
		if p := breakdown.Total(); p < b.bestPower {
			b.bestPower = p
			copy(b.bestChoice, b.choice)
		}
		return
	}
	if b.lowerBound(i) >= b.bestPower {
		return
	}
	c := b.order[i]
	for j, p := range b.paths[i] {
		if b.overloads(p, c.Rate) {
			continue
		}
		b.loads.AddPath(p, c.Rate)
		b.choice[i] = j
		b.search(i + 1)
		b.loads.AddPath(p, -c.Rate)
	}
}

// overloads reports whether adding rate along p violates bandwidth.
func (b *bb) overloads(p route.Path, rate float64) bool {
	for _, l := range p {
		if b.loads.Load(l)+rate > b.model.MaxBW+1e-9 {
			return true
		}
	}
	return false
}

// lowerBound returns an admissible bound on the best completion of the
// current partial routing: the static power of already-active links plus
// the continuous-relaxation dynamic power of the current loads, plus for
// every unrouted communication the cheapest continuous dynamic increment
// over its paths evaluated at the current loads. Convexity of the
// continuous curve makes each term a true lower bound (increments only
// grow as loads accumulate), and the continuous curve never exceeds the
// discrete one since the selected frequency is at least the load.
func (b *bb) lowerBound(i int) float64 {
	cont := b.model
	cont.Freqs = nil // continuous relaxation
	lb := 0.0
	for id := 0; id < b.m.LinkIDSpace(); id++ {
		if load := b.loads.LoadID(id); load > 0 {
			lb += cont.Pleak + cont.Dynamic(load)
		}
	}
	for ; i < len(b.order); i++ {
		c := b.order[i]
		best := math.Inf(1)
		for _, p := range b.paths[i] {
			inc := 0.0
			for _, l := range p {
				load := b.loads.Load(l)
				inc += cont.Dynamic(load+c.Rate) - cont.Dynamic(load)
			}
			if inc < best {
				best = inc
			}
		}
		lb += best
	}
	return lb
}
