package exact

import (
	"math"

	"repro/internal/route"
	"repro/internal/solve"
)

// seedIncumbent installs a pre-search incumbent so pruning starts from a
// real power instead of +Inf: the registered BEST heuristic when the
// registry has one (callers that import internal/heur or internal/core),
// a cheapest-increment greedy otherwise. The seed routing is replayed on
// the search state and evaluated with the exact leaf scan — the incumbent
// must be the true quantized power or the bound comparison would be
// unsound. While the seed loads are in place, every comm's candidate
// order is re-sorted by continuous increment against them, making the
// search's first descent near-greedy. The state is fully unwound before
// returning; seeding is serial and identical at every worker count.
func (w *Workspace) seedIncumbent(s *searchState, rws *route.Workspace) (seeded bool, seedPower float64) {
	vec := w.heuristicVector(rws)
	if vec == nil {
		vec = w.greedyVector(s)
	}
	if vec == nil {
		return false, 0
	}
	routed := 0
	feasible := true
	for i := range w.order {
		j := int(vec[i])
		if s.overloads(i, j) {
			feasible = false
			break
		}
		s.choice[i] = vec[i]
		s.add(i, j)
		routed++
	}
	if feasible {
		if p, ok := s.leafPower(); ok {
			w.best.offer(p, s.choice)
			seeded, seedPower = true, p
		}
		w.sortCandidates(s, vec)
	}
	for i := routed - 1; i >= 0; i-- {
		s.undo(i)
	}
	return seeded, seedPower
}

// heuristicVector routes the instance with the registered BEST policy and
// maps the resulting flows back onto candidate-path indices. Any mismatch
// — policy missing, routing error, a flow that is not one of the comm's
// Manhattan candidates (e.g. a multi-path split) — returns nil and defers
// to the greedy.
func (w *Workspace) heuristicVector(rws *route.Workspace) []int32 {
	sv, err := solve.Lookup("BEST")
	if err != nil {
		return nil
	}
	r, err := sv.Route(solve.Instance{Mesh: w.mesh, Model: w.model, Comms: w.order}, solve.Options{Workspace: rws})
	if err != nil {
		return nil
	}
	n := len(w.order)
	if len(r.Flows) != n {
		return nil
	}
	w.seedVec = ensureI32(w.seedVec, n)
	for i := range w.seedVec {
		w.seedVec[i] = -1
	}
	for _, f := range r.Flows {
		ci := -1
		for i, c := range w.order {
			if c.ID == f.Comm.ID {
				ci = i
				break
			}
		}
		if ci < 0 || w.seedVec[ci] >= 0 {
			return nil
		}
		j := w.matchCandidate(ci, f.Path)
		if j < 0 {
			return nil
		}
		w.seedVec[ci] = int32(j)
	}
	for _, j := range w.seedVec {
		if j < 0 {
			return nil
		}
	}
	return w.seedVec
}

// matchCandidate returns the canonical candidate index of the path, or -1
// when the path is not one of comm ci's Manhattan candidates.
func (w *Workspace) matchCandidate(ci int, p route.Path) int {
	l := int(w.lens[ci])
	if len(p) != l {
		return -1
	}
	w.linkBuf = ensureI32(w.linkBuf, l)
	for t, lk := range p {
		if !w.mesh.ValidLink(lk) {
			return -1
		}
		w.linkBuf[t] = int32(w.mesh.LinkIDFast(lk))
	}
	np := int(w.npaths[ci])
	base := int(w.arenaOff[ci])
outer:
	for j := 0; j < np; j++ {
		cand := w.arena[base+j*l : base+(j+1)*l]
		for t := range cand {
			if cand[t] != w.linkBuf[t] {
				continue outer
			}
		}
		return j
	}
	return -1
}

// greedyVector builds a feasible routing by giving each comm, heaviest
// first, the candidate with the smallest continuous power increment
// (static activation included — this is a solution, not a bound). Returns
// nil when the greedy dead-ends; the state is unwound either way.
func (w *Workspace) greedyVector(s *searchState) []int32 {
	n := len(w.order)
	w.seedVec = ensureI32(w.seedVec, n)
	routed := 0
	ok := true
	for i := 0; i < n; i++ {
		rate := w.rate[i]
		bestJ, bestInc := -1, math.Inf(1)
		for j := 0; j < int(w.npaths[i]); j++ {
			if s.overloads(i, j) {
				continue
			}
			inc := 0.0
			for _, l := range w.pathLinks(i, j) {
				inc += w.pleak + w.envDyn(s.loads[l]+rate) - s.contOf[l]
			}
			if inc < bestInc {
				bestInc, bestJ = inc, j
			}
		}
		if bestJ < 0 {
			ok = false
			break
		}
		w.seedVec[i] = int32(bestJ)
		s.choice[i] = int32(bestJ)
		s.add(i, bestJ)
		routed++
	}
	for i := routed - 1; i >= 0; i-- {
		s.undo(i)
	}
	if !ok {
		return nil
	}
	return w.seedVec
}

// sortCandidates orders every comm's candidate list by the continuous
// dynamic increment it would pay against the seed loads with the comm's
// own seed path removed (so its own contribution doesn't bias the
// comparison). The insertion sort is stable, keeping equal-increment
// candidates in canonical index order; the transient load edits here may
// leave float dust, which the caller's frame-based unwind wipes bitwise.
func (w *Workspace) sortCandidates(s *searchState, vec []int32) {
	for i := range w.order {
		rate := w.rate[i]
		own := w.pathLinks(i, int(vec[i]))
		for _, l := range own {
			s.loads[l] -= rate
		}
		cand := w.cand(i)
		w.keys = ensureF64(w.keys, len(cand))
		keys := w.keys[:len(cand)]
		for t, j := range cand {
			sum := 0.0
			for _, l := range w.pathLinks(i, int(j)) {
				load := s.loads[l]
				if load < 0 {
					load = 0
				}
				sum += w.envDyn(load+rate) - w.envDyn(load)
			}
			keys[t] = sum
		}
		for a := 1; a < len(cand); a++ {
			cj, ck := cand[a], keys[a]
			b := a - 1
			for b >= 0 && keys[b] > ck {
				cand[b+1], keys[b+1] = cand[b], keys[b]
				b--
			}
			cand[b+1], keys[b+1] = cj, ck
		}
		for _, l := range own {
			s.loads[l] += rate
		}
	}
}
