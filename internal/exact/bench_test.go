package exact

import (
	"fmt"
	"testing"

	_ "repro/internal/heur" // register the seeding heuristics
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/workload"
)

// benchInstance is the committed speedup instance: a congested 5x5 / n=8
// draw where the reference explores ~286k states. The rebuilt solver's
// acceptance bar is >=10x over the preserved reference here (incumbent
// seeding, envelope + quantized-aggregate bounds, sorted candidates);
// measured ~50x on one core. Run both sub-benchmarks to compare:
//
//	go test ./internal/exact/ -bench BenchmarkSolveVsReference
func benchInstance() (*mesh.Mesh, power.Model, int64) {
	return mesh.MustNew(5, 5), power.KimHorowitz(), 2
}

func BenchmarkSolveVsReference(b *testing.B) {
	m, model, seed := benchInstance()
	set := workload.New(m, seed).Uniform(8, 100, 900)
	b.Run("Workspace", func(b *testing.B) {
		w := NewWorkspace()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, _, err := w.Solve(m, model, set, Options{Workers: 1}); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("Reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := refSolve(m, model, set); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
}

// BenchmarkSolveParallel measures the parallel search on a deeper
// instance, per worker count — the wall-clock side of the determinism
// contract (identical routing, fewer seconds).
func BenchmarkSolveParallel(b *testing.B) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	set := workload.New(m, 3).Uniform(9, 100, 900)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			w := NewWorkspace()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok, _, err := w.Solve(m, model, set, Options{Workers: workers}); err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}
