package exact

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// This file preserves the pre-workspace branch-and-bound (renamed) as a
// test-only reference implementation. The differential tests pin the
// rebuilt solver against it: same feasibility verdict, same optimal
// power, on every instance — the PR 5 tradition of keeping the
// slow-but-simple solver around to certify the fast one.
//
// Two latent bugs of the original are handled here:
//   - refSolve keeps the original's off-by-one verbatim: a search that
//     finishes on exactly refMaxStates states is reported as truncated;
//     the rebuilt solver fixes this (see TestMaxStatesBoundary), and the
//     differential harness only compares instances the reference
//     completes under budget.
//   - The original's subtract-back backtracking (AddPath with -rate)
//     leaves float dust (~1e-13) on emptied links, with two corruptions:
//     lowerBound tested `load > 0` and charged Pleak per dust link,
//     making the bound inadmissible (it could, and on random rates did,
//     prune the true optimum); and the leaf's loads.Power counted dust
//     links as active at minimum frequency, inflating — and misordering —
//     leaf scores. The reference deviates minimally to be a sound oracle:
//     the bound scan uses the loadEps threshold, and leaves are scored on
//     freshly accumulated loads. The rebuilt solver avoids the dust
//     altogether by restoring loads bitwise on backtrack.
const refMaxStates = 5_000_000

func refSolve(m *mesh.Mesh, model power.Model, set comm.Set) (route.Routing, bool, error) {
	if err := set.Validate(m); err != nil {
		return route.Routing{}, false, err
	}
	// Heaviest first: conflicts surface near the root, pruning earlier.
	order := set.Sorted(comm.ByWeightDesc)
	paths := make([][]route.Path, len(order))
	for i, c := range order {
		enum := m.EnumeratePaths(c.Src, c.Dst)
		paths[i] = make([]route.Path, len(enum))
		for j, p := range enum {
			paths[i][j] = route.Path(p)
		}
	}

	b := &refBB{m: m, model: model, order: order, paths: paths,
		loads: route.NewLoadTracker(m), bestPower: math.Inf(1)}
	b.choice = make([]int, len(order))
	b.bestChoice = make([]int, len(order))
	b.search(0)
	if b.states >= refMaxStates {
		return route.Routing{}, false, fmt.Errorf("exact: search exceeded %d states", refMaxStates)
	}
	if math.IsInf(b.bestPower, 1) {
		return route.Routing{}, false, nil
	}
	flows := make([]route.Flow, len(order))
	for i, c := range order {
		flows[i] = route.Flow{Comm: c, Path: paths[i][b.bestChoice[i]]}
	}
	return route.Routing{Mesh: m, Flows: flows}, true, nil
}

type refBB struct {
	m          *mesh.Mesh
	model      power.Model
	order      comm.Set
	paths      [][]route.Path
	loads      *route.LoadTracker
	choice     []int
	bestChoice []int
	bestPower  float64
	states     int
}

func (b *refBB) search(i int) {
	if b.states >= refMaxStates {
		return
	}
	b.states++
	if i == len(b.order) {
		// Deviation (see file comment): evaluate the leaf on freshly
		// accumulated loads. b.loads carries subtract-back dust on
		// emptied links, which Model.Total counts as active at minimum
		// frequency (+Pleak +Dynamic(fmin) each) — the original
		// therefore both mis-scored and mis-ranked leaves.
		fresh := route.NewLoadTracker(b.m)
		for k, c := range b.order[:i] {
			fresh.AddPath(b.paths[k][b.choice[k]], c.Rate)
		}
		breakdown, err := fresh.Power(b.model)
		if err != nil {
			return // infeasible leaf
		}
		if p := breakdown.Total(); p < b.bestPower {
			b.bestPower = p
			copy(b.bestChoice, b.choice)
		}
		return
	}
	if b.lowerBound(i) >= b.bestPower {
		return
	}
	c := b.order[i]
	for j, p := range b.paths[i] {
		if b.overloads(p, c.Rate) {
			continue
		}
		b.loads.AddPath(p, c.Rate)
		b.choice[i] = j
		b.search(i + 1)
		b.loads.AddPath(p, -c.Rate)
	}
}

// overloads reports whether adding rate along p violates bandwidth.
func (b *refBB) overloads(p route.Path, rate float64) bool {
	for _, l := range p {
		if b.loads.Load(l)+rate > b.model.MaxBW+1e-9 {
			return true
		}
	}
	return false
}

// lowerBound returns an admissible bound on the best completion of the
// current partial routing: the static power of already-active links plus
// the continuous-relaxation dynamic power of the current loads, plus for
// every unrouted communication the cheapest continuous dynamic increment
// over its paths evaluated at the current loads.
func (b *refBB) lowerBound(i int) float64 {
	cont := b.model
	cont.Freqs = nil // continuous relaxation
	lb := 0.0
	for id := 0; id < b.m.LinkIDSpace(); id++ {
		if load := b.loads.LoadID(id); load > loadEps {
			lb += cont.Pleak + cont.Dynamic(load)
		}
	}
	for ; i < len(b.order); i++ {
		c := b.order[i]
		best := math.Inf(1)
		for _, p := range b.paths[i] {
			inc := 0.0
			for _, l := range p {
				load := b.loads.Load(l)
				inc += cont.Dynamic(load+c.Rate) - cont.Dynamic(load)
			}
			if inc < best {
				best = inc
			}
		}
		lb += best
	}
	return lb
}
