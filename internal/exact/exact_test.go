package exact

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

// The optimum of the Figure 2 instance under 1-MP is 56.
func TestSolveFigure2(t *testing.T) {
	m := mesh.MustNew(2, 2)
	set := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 3},
	}
	r, ok, err := Solve(m, power.Figure2(), set)
	if err != nil || !ok {
		t.Fatalf("Solve: ok=%v err=%v", ok, err)
	}
	res := route.Evaluate(r, power.Figure2())
	if math.Abs(res.Power.Total()-56) > 1e-9 {
		t.Fatalf("optimal power = %g, want 56", res.Power.Total())
	}
	if err := r.Validate(set, 1); err != nil {
		t.Fatal(err)
	}
}

// Infeasible instances are reported as such: two rate-3 flows through a
// single shared link of capacity 4.
func TestSolveInfeasible(t *testing.T) {
	m := mesh.MustNew(1, 2) // a single horizontal corridor
	set := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 2}, Rate: 3},
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 2}, Rate: 3},
	}
	_, ok, err := Solve(m, power.Figure2(), set)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("infeasible instance solved")
	}
}

// No heuristic ever beats the exact optimum, and the optimum never beats
// the ideal-share lower bound.
func TestHeuristicsNeverBeatOptimum(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	for seed := int64(0); seed < 12; seed++ {
		set := workload.New(m, 500+seed).Uniform(5, 200, 2500)
		r, ok, err := Solve(m, model, set)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		opt := route.Evaluate(r, model)
		if !opt.Feasible {
			t.Fatalf("seed %d: optimal routing evaluates infeasible", seed)
		}
		if lb := IdealShareLowerBound(m, model, set); opt.Power.Total() < lb-1e-6 {
			t.Fatalf("seed %d: optimum %g beats lower bound %g", seed, opt.Power.Total(), lb)
		}
		in := heur.Instance{Mesh: m, Model: model, Comms: set}
		for _, h := range heur.All() {
			res, err := heur.Solve(h, in)
			if err != nil {
				t.Fatal(err)
			}
			if res.Feasible && res.Power.Total() < opt.Power.Total()-1e-6 {
				t.Fatalf("seed %d: %s power %g beats optimum %g",
					seed, h.Name(), res.Power.Total(), opt.Power.Total())
			}
		}
	}
}

// Whenever the exact solver finds the instance feasible, BEST should too
// (on these small, lightly-loaded instances the heuristics have enough
// room), and its power should be within a reasonable factor of optimal.
func TestBestWithinFactorOfOptimum(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	worst := 1.0
	for seed := int64(0); seed < 12; seed++ {
		set := workload.New(m, 900+seed).Uniform(4, 200, 1500)
		r, ok, err := Solve(m, model, set)
		if err != nil || !ok {
			continue
		}
		opt := route.Evaluate(r, model)
		res, err := heur.Solve(heur.Best{}, heur.Instance{Mesh: m, Model: model, Comms: set})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			t.Fatalf("seed %d: optimum feasible but BEST failed", seed)
		}
		ratio := res.Power.Total() / opt.Power.Total()
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.5 {
		t.Errorf("BEST strayed %.2fx from optimal on tiny instances", worst)
	}
}

// The ideal-share bound is monotone in traffic and zero for empty sets.
func TestIdealShareLowerBoundBasics(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	if lb := IdealShareLowerBound(m, model, nil); lb != 0 {
		t.Fatalf("empty bound = %g", lb)
	}
	rng := rand.New(rand.NewSource(4))
	set := comm.Set{}
	prev := 0.0
	for i := 0; i < 10; i++ {
		var src, dst mesh.Coord
		for {
			src = mesh.Coord{U: rng.Intn(8) + 1, V: rng.Intn(8) + 1}
			dst = mesh.Coord{U: rng.Intn(8) + 1, V: rng.Intn(8) + 1}
			if src != dst {
				break
			}
		}
		set = append(set, comm.Comm{ID: i, Src: src, Dst: dst, Rate: 500})
		lb := IdealShareLowerBound(m, model, set)
		if lb < prev-1e-9 {
			t.Fatalf("bound decreased after adding traffic: %g -> %g", prev, lb)
		}
		prev = lb
	}
}

func TestMinActiveLinks(t *testing.T) {
	set := comm.Set{
		{ID: 0, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 8}, Rate: 1}, // length 7
		{ID: 1, Src: mesh.Coord{U: 2, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
	}
	if got := MinActiveLinks(set); got != 7 {
		t.Errorf("MinActiveLinks = %d, want 7 (longest comm)", got)
	}
	if got := MinActiveLinks(nil); got != 0 {
		t.Errorf("MinActiveLinks(nil) = %d", got)
	}
}

func TestSolveRejectsInvalidSet(t *testing.T) {
	m := mesh.MustNew(2, 2)
	set := comm.Set{{ID: 1, Src: mesh.Coord{U: 0, V: 0}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1}}
	if _, _, err := Solve(m, power.Figure2(), set); err == nil {
		t.Error("invalid set accepted")
	}
}
