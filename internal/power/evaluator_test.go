package power

import (
	"math"
	"testing"
)

// referencePseudo is the uncompiled pseudo-power extension the refinement
// heuristics historically computed per probe: quantize, fall back to the
// load itself when overloaded, charge Pleak + Dynamic. The Evaluator must
// reproduce it bit-for-bit.
func referencePseudo(m Model, load float64) float64 {
	if load <= 0 {
		return 0
	}
	f, ok := m.QuantizeOK(load)
	if !ok {
		f = load
	}
	return m.Pleak + m.Dynamic(f)
}

// evaluatorModels is the model line-up of the agreement tests: both
// Kim-Horowitz variants and the Theory regime of the Section 4 analyses.
func evaluatorModels() map[string]Model {
	return map[string]Model{
		"KimHorowitz":           KimHorowitz(),
		"KimHorowitzContinuous": KimHorowitzContinuous(),
		"Theory2.5":             Theory(2.5),
		"Theory3":               Theory(3),
		"Figure2":               Figure2(),
	}
}

// probeLoads builds the probe set for a model: zero, negative, interior
// points, every frequency boundary at ±loadEps and ±2·loadEps, and the
// MaxBW feasibility edge.
func probeLoads(m Model) []float64 {
	loads := []float64{-1, -loadEps, 0, loadEps, 1, 17.5, 99.999}
	edges := append([]float64{}, m.Freqs...)
	if m.MaxBW < math.MaxFloat64 {
		edges = append(edges, m.MaxBW)
	} else {
		edges = append(edges, 1e12)
	}
	for _, f := range edges {
		loads = append(loads,
			f-2*loadEps, f-loadEps, f, f+loadEps, f+2*loadEps,
			f/2, f*1.5)
	}
	return loads
}

// The compiled evaluator agrees bit-for-bit with the model it was built
// from on every query, across discrete, continuous and theory models and
// in particular at the frequency and bandwidth boundaries.
func TestEvaluatorMatchesModel(t *testing.T) {
	for name, m := range evaluatorModels() {
		e := Compile(m)
		for _, load := range probeLoads(m) {
			fM, okM := m.QuantizeOK(load)
			fE, okE := e.QuantizeOK(load)
			if fM != fE || okM != okE {
				t.Errorf("%s: QuantizeOK(%g): model (%g,%v) vs evaluator (%g,%v)",
					name, load, fM, okM, fE, okE)
			}
			pM, okM := m.LinkPowerOK(load)
			pE, okE := e.LinkPowerOK(load)
			if pM != pE || okM != okE {
				t.Errorf("%s: LinkPowerOK(%g): model (%g,%v) vs evaluator (%g,%v)",
					name, load, pM, okM, pE, okE)
			}
			if want, got := referencePseudo(m, load), e.Pseudo(load); want != got {
				t.Errorf("%s: Pseudo(%g): reference %g vs evaluator %g",
					name, load, want, got)
			}
			wantX := 0.0
			if load > m.MaxBW {
				wantX = load - m.MaxBW
			}
			if got := e.Excess(load); got != wantX {
				t.Errorf("%s: Excess(%g): want %g got %g", name, load, wantX, got)
			}
		}
	}
}

// QuantizeOK at the frequency boundaries: loads within loadEps of a
// discrete frequency snap onto it, loads just past it select the next
// rung, and loads just past MaxBW+loadEps are infeasible.
func TestQuantizeOKBoundaries(t *testing.T) {
	m := KimHorowitz() // ladder {1000, 2500, 3500}
	cases := []struct {
		load   float64
		wantF  float64
		wantOK bool
	}{
		{1000 - loadEps, 1000, true},
		{1000, 1000, true},
		{1000 + loadEps, 1000, true}, // snaps back onto the rung
		{1000 + 3*loadEps, 2500, true},
		{2500 - loadEps, 2500, true},
		{2500 + loadEps, 2500, true},
		{2500 + 3*loadEps, 3500, true},
		{3500 - loadEps, 3500, true},
		{3500, 3500, true},
		{3500 + loadEps, 3500, true}, // exactly the feasibility edge
		{3500 + 3*loadEps, 0, false}, // past it
		{4000, 0, false},
	}
	e := Compile(m)
	for _, c := range cases {
		f, ok := m.QuantizeOK(c.load)
		if f != c.wantF || ok != c.wantOK {
			t.Errorf("Model.QuantizeOK(%v): got (%g,%v), want (%g,%v)",
				c.load, f, ok, c.wantF, c.wantOK)
		}
		f, ok = e.QuantizeOK(c.load)
		if f != c.wantF || ok != c.wantOK {
			t.Errorf("Evaluator.QuantizeOK(%v): got (%g,%v), want (%g,%v)",
				c.load, f, ok, c.wantF, c.wantOK)
		}
		// Quantize (the error-returning form) must agree with QuantizeOK.
		fq, err := m.Quantize(c.load)
		if (err == nil) != c.wantOK || fq != c.wantF {
			t.Errorf("Model.Quantize(%v): got (%g,%v), want (%g, ok=%v)",
				c.load, fq, err, c.wantF, c.wantOK)
		}
	}
}

// The continuous boundary: at MaxBW+loadEps the load is still feasible and
// clamps onto MaxBW; past it the link is overloaded but the pseudo power
// keeps growing continuously.
func TestContinuousBoundaries(t *testing.T) {
	m := KimHorowitzContinuous()
	e := Compile(m)
	f, ok := e.QuantizeOK(m.MaxBW + loadEps)
	if !ok || f != m.MaxBW {
		t.Errorf("QuantizeOK(MaxBW+eps): got (%g,%v), want (%g,true)", f, ok, m.MaxBW)
	}
	if _, ok := e.QuantizeOK(m.MaxBW + 3*loadEps); ok {
		t.Error("QuantizeOK(MaxBW+3eps): want infeasible")
	}
	atCap := e.Pseudo(m.MaxBW)
	beyond := e.Pseudo(m.MaxBW * 1.25)
	if !(beyond > atCap) {
		t.Errorf("pseudo power must keep growing past MaxBW: %g vs %g", beyond, atCap)
	}
	if want := m.Pleak + m.Dynamic(m.MaxBW*1.25); beyond != want {
		t.Errorf("overloaded pseudo power: got %g, want continuation %g", beyond, want)
	}
}

// CompiledFrom validates the workspace cache key: equal models match,
// any field difference (including the frequency ladder) invalidates.
func TestEvaluatorCompiledFrom(t *testing.T) {
	m := KimHorowitz()
	e := Compile(m)
	if !e.CompiledFrom(KimHorowitz()) {
		t.Error("evaluator does not recognize the model it was compiled from")
	}
	variants := []Model{KimHorowitzContinuous(), Figure2(), Theory(2.95)}
	alt := KimHorowitz()
	alt.Pleak++
	variants = append(variants, alt)
	alt = KimHorowitz()
	alt.Freqs = []float64{1000, 2000, 3500}
	variants = append(variants, alt)
	for i, v := range variants {
		if e.CompiledFrom(v) {
			t.Errorf("variant %d falsely matches the compiled model", i)
		}
	}
	// The compile captures Freqs by copy: mutating the source ladder must
	// not desync the evaluator.
	src := KimHorowitz()
	e = Compile(src)
	src.Freqs[0] = 999
	if f, ok := e.QuantizeOK(500); !ok || f != 1000 {
		t.Errorf("evaluator aliased the caller's Freqs: QuantizeOK(500) = (%g,%v)", f, ok)
	}
}
