package power

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := KimHorowitz().Validate(); err != nil {
		t.Fatalf("KimHorowitz invalid: %v", err)
	}
	if err := Figure2().Validate(); err != nil {
		t.Fatalf("Figure2 invalid: %v", err)
	}
	bad := []Model{
		{Pleak: -1, P0: 1, Alpha: 3, MaxBW: 1},
		{Pleak: 0, P0: 1, Alpha: 0.5, MaxBW: 1},
		{Pleak: 0, P0: 1, Alpha: 3, MaxBW: 0},
		{Pleak: 0, P0: 1, Alpha: 3, MaxBW: 5, Freqs: []float64{3, 2}},
		{Pleak: 0, P0: 1, Alpha: 3, MaxBW: 5, Freqs: []float64{1, 2}}, // top != MaxBW
		{Pleak: 0, P0: 1, Alpha: 3, MaxBW: 5, Freqs: []float64{-1, 5}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d validated", i)
		}
	}
}

func TestQuantizeDiscrete(t *testing.T) {
	m := KimHorowitz()
	cases := []struct {
		load, want float64
	}{
		{0, 0},
		{1, 1000},
		{999.5, 1000},
		{1000, 1000},
		{1000.5, 2500},
		{2500, 2500},
		{2501, 3500},
		{3500, 3500},
	}
	for _, tc := range cases {
		got, err := m.Quantize(tc.load)
		if err != nil {
			t.Fatalf("Quantize(%g): %v", tc.load, err)
		}
		if got != tc.want {
			t.Errorf("Quantize(%g) = %g, want %g", tc.load, got, tc.want)
		}
	}
	if _, err := m.Quantize(3500.1); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Quantize(3500.1) err = %v, want ErrOverloaded", err)
	}
	if _, err := m.Quantize(-1); err == nil {
		t.Error("Quantize(-1) did not error")
	}
}

// Loads that land within floating-point noise of a frequency must snap to
// it, not to the next step up: the PR heuristic accumulates shares like
// 1000·(1/3 + 1/3 + 1/3).
func TestQuantizeAbsorbsFloatNoise(t *testing.T) {
	m := KimHorowitz()
	load := 0.0
	for i := 0; i < 3; i++ {
		load += 1000.0 / 3.0
	}
	f, err := m.Quantize(load)
	if err != nil || f != 1000 {
		t.Errorf("Quantize(3 thirds of 1000) = %g, %v; want 1000", f, err)
	}
}

func TestQuantizeContinuous(t *testing.T) {
	m := Figure2()
	for _, load := range []float64{0, 0.5, 1, 3.999, 4} {
		got, err := m.Quantize(load)
		if err != nil {
			t.Fatalf("Quantize(%g): %v", load, err)
		}
		if got != load {
			t.Errorf("continuous Quantize(%g) = %g", load, got)
		}
	}
	if _, err := m.Quantize(4.01); !errors.Is(err, ErrOverloaded) {
		t.Error("continuous overload not detected")
	}
}

// Figure 2 arithmetic: with Pleak=0, P0=1, α=3 a link at load 4 burns 64.
func TestLinkPowerFigure2(t *testing.T) {
	m := Figure2()
	p, err := m.LinkPower(4)
	if err != nil || p != 64 {
		t.Fatalf("LinkPower(4) = %g, %v; want 64", p, err)
	}
	p, err = m.LinkPower(0)
	if err != nil || p != 0 {
		t.Fatalf("LinkPower(0) = %g, %v; want 0", p, err)
	}
}

func TestKimHorowitzPowerLevels(t *testing.T) {
	m := KimHorowitz()
	// At 1 Gb/s the dynamic part is P0·1^α = 5.41 mW.
	p, err := m.LinkPower(800)
	if err != nil {
		t.Fatal(err)
	}
	if want := 16.9 + 5.41; math.Abs(p-want) > 1e-9 {
		t.Errorf("LinkPower(800) = %g, want %g", p, want)
	}
	// At 3.5 Gb/s: 16.9 + 5.41·3.5^2.95.
	p, err = m.LinkPower(3000)
	if err != nil {
		t.Fatal(err)
	}
	if want := 16.9 + 5.41*math.Pow(3.5, 2.95); math.Abs(p-want) > 1e-9 {
		t.Errorf("LinkPower(3000) = %g, want %g", p, want)
	}
}

func TestTotalBreakdown(t *testing.T) {
	m := KimHorowitz()
	loads := []float64{0, 500, 0, 3000, 2000}
	b, err := m.Total(loads)
	if err != nil {
		t.Fatal(err)
	}
	if b.ActiveLinks != 3 {
		t.Errorf("ActiveLinks = %d, want 3", b.ActiveLinks)
	}
	if want := 3 * 16.9; math.Abs(b.Static-want) > 1e-9 {
		t.Errorf("Static = %g, want %g", b.Static, want)
	}
	wantDyn := 5.41 * (math.Pow(1, 2.95) + math.Pow(3.5, 2.95) + math.Pow(2.5, 2.95))
	if math.Abs(b.Dynamic-wantDyn) > 1e-9 {
		t.Errorf("Dynamic = %g, want %g", b.Dynamic, wantDyn)
	}
	if math.Abs(b.Total()-(b.Static+b.Dynamic)) > 1e-12 {
		t.Error("Total != Static+Dynamic")
	}
	if _, err := m.Total([]float64{4000}); !errors.Is(err, ErrOverloaded) {
		t.Error("overloaded Total did not fail")
	}
}

func TestFeasible(t *testing.T) {
	m := KimHorowitz()
	if !m.Feasible([]float64{0, 3500, 10}) {
		t.Error("feasible loads reported infeasible")
	}
	if m.Feasible([]float64{0, 3500.01}) {
		t.Error("infeasible loads reported feasible")
	}
}

// Power is monotone non-decreasing in load (needed for the greedy argument
// in every heuristic), and convex-superadditive for the continuous model:
// P(a)+P(b) ≤ P(a+b) when Pleak = 0 and α > 1 — the inequality behind the
// multi-path gains of Section 3.5.
func TestPowerMonotoneAndSuperadditive(t *testing.T) {
	m := Theory(2.95)
	f := func(a, b uint16) bool {
		x, y := float64(a%3000), float64(b%3000)
		pa, err1 := m.LinkPower(x)
		pb, err2 := m.LinkPower(y)
		pab, err3 := m.LinkPower(x + y)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if x <= y {
			if pa > pb+1e-9 {
				return false // monotone
			}
		}
		return pa+pb <= pab+1e-9 // superadditive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Discrete power is a step function dominating... at least matching the
// continuous power for the same parameters.
func TestDiscreteDominatesContinuous(t *testing.T) {
	d, c := KimHorowitz(), KimHorowitzContinuous()
	for load := 50.0; load <= 3500; load += 50 {
		pd, err1 := d.LinkPower(load)
		pc, err2 := c.LinkPower(load)
		if err1 != nil || err2 != nil {
			t.Fatalf("load %g: %v %v", load, err1, err2)
		}
		if pd < pc-1e-9 {
			t.Errorf("load %g: discrete %g < continuous %g", load, pd, pc)
		}
	}
}

func TestTheoryModelUnbounded(t *testing.T) {
	m := Theory(3)
	if _, err := m.LinkPower(1e12); err != nil {
		t.Errorf("theory model should accept any load: %v", err)
	}
}

// QuantizeOK is the allocation-free twin of Quantize: same frequency, and
// ok exactly when Quantize returns no error — over idle, in-band,
// boundary and overloaded loads on both model families.
func TestQuantizeOKMatchesQuantize(t *testing.T) {
	for _, m := range []Model{KimHorowitz(), KimHorowitzContinuous(), Figure2()} {
		for _, load := range []float64{-1, 0, 1e-12, 500, 999.9999999, 1000, 1000.1, 2499, 3500, 3500.1, 9999} {
			f1, err := m.Quantize(load)
			f2, ok := m.QuantizeOK(load)
			if ok != (err == nil) {
				t.Errorf("load %g: ok=%v but err=%v", load, ok, err)
			}
			if ok && f1 != f2 {
				t.Errorf("load %g: Quantize=%g QuantizeOK=%g", load, f1, f2)
			}
			p1, perr := m.LinkPower(load)
			p2, pok := m.LinkPowerOK(load)
			if pok != (perr == nil) || (pok && p1 != p2) {
				t.Errorf("load %g: LinkPower mismatch (%g,%v) vs (%g,%v)", load, p1, perr, p2, pok)
			}
		}
	}
}
