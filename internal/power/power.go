// Package power implements the link power-consumption model of Section 3.1:
// an active link dissipates a static leakage part plus a dynamic part that
// grows as the α-th power of the link frequency, the frequency being scaled
// to match the traffic on the link (DVFS).
//
//	P(link) = Pleak + P0 · f^α   if the link is active (f > 0)
//	P(link) = 0                  if the link is inactive
//
// Frequencies may be continuous (f equals the load exactly) or restricted
// to a discrete set, in which case the smallest frequency at or above the
// load is selected, as in the Section 6 simulations.
package power

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// ErrOverloaded is returned (wrapped) when a link load exceeds the maximum
// available bandwidth, i.e. the routing is invalid per Section 3.4.
var ErrOverloaded = errors.New("power: link load exceeds maximum bandwidth")

// Model captures the power characteristics of the mesh links. All loads
// and frequencies are expressed in the same bandwidth unit (Mb/s in the
// experiments); FreqUnit rescales frequencies inside the dynamic-power
// term so that constants fitted in other units (Gb/s in the paper) can be
// used verbatim.
type Model struct {
	// Pleak is the static (leakage) power of an active link, in mW.
	Pleak float64
	// P0 is the dynamic power constant: Pdyn = P0·(f/FreqUnit)^α.
	P0 float64
	// Alpha is the dynamic exponent, 2 < α ≤ 3 (Section 3.1).
	Alpha float64
	// Freqs is the sorted set of available discrete frequencies. Empty
	// means continuous scaling: the frequency equals the load.
	Freqs []float64
	// MaxBW is the maximum link bandwidth. Loads above MaxBW are
	// infeasible. With discrete frequencies MaxBW is the largest entry
	// of Freqs.
	MaxBW float64
	// FreqUnit divides frequencies before exponentiation, so the model
	// P0·(f [Gb/s])^α can run on Mb/s loads with FreqUnit = 1000.
	// Zero means 1 (no rescaling).
	FreqUnit float64
}

// Validate checks the model parameters for consistency.
func (m Model) Validate() error {
	if m.Pleak < 0 || m.P0 < 0 {
		return fmt.Errorf("power: negative constants (Pleak=%g, P0=%g)", m.Pleak, m.P0)
	}
	if m.Alpha <= 1 {
		return fmt.Errorf("power: alpha %g must exceed 1 for convexity", m.Alpha)
	}
	if m.MaxBW <= 0 {
		return fmt.Errorf("power: non-positive MaxBW %g", m.MaxBW)
	}
	if !slices.IsSorted(m.Freqs) {
		return errors.New("power: Freqs must be sorted ascending")
	}
	for _, f := range m.Freqs {
		if f <= 0 {
			return fmt.Errorf("power: non-positive frequency %g", f)
		}
	}
	if len(m.Freqs) > 0 && m.Freqs[len(m.Freqs)-1] != m.MaxBW {
		return fmt.Errorf("power: MaxBW %g differs from top frequency %g",
			m.MaxBW, m.Freqs[len(m.Freqs)-1])
	}
	return nil
}

// Continuous reports whether the model scales frequencies continuously.
func (m Model) Continuous() bool { return len(m.Freqs) == 0 }

// Quantize returns the operating frequency for a link carrying the given
// load: the load itself under continuous scaling, or the smallest discrete
// frequency at or above the load. It returns a wrapped ErrOverloaded when
// the load exceeds the available bandwidth, and 0 for idle links.
func (m Model) Quantize(load float64) (float64, error) {
	if load < 0 {
		return 0, fmt.Errorf("power: negative load %g", load)
	}
	if load == 0 {
		return 0, nil
	}
	if load > m.MaxBW+loadEps {
		return 0, fmt.Errorf("%w: load %.6g > max %.6g", ErrOverloaded, load, m.MaxBW)
	}
	if m.Continuous() {
		return math.Min(load, m.MaxBW), nil
	}
	i, _ := slices.BinarySearch(m.Freqs, load-loadEps)
	if i == len(m.Freqs) {
		return 0, fmt.Errorf("%w: load %.6g > top frequency %.6g", ErrOverloaded, load, m.MaxBW)
	}
	return m.Freqs[i], nil
}

// loadEps absorbs floating-point noise from repeated load additions and
// removals (the PR heuristic redistributes fractional shares thousands of
// times); loads within 1e-9 of a frequency snap onto it.
const loadEps = 1e-9

// QuantizeOK is Quantize reporting failure as ok=false instead of
// constructing the wrapped error — the allocation-free form for greedy
// hot loops that probe overloaded links millions of times per solve
// (the XYI/TB pseudo-power scans). Quantize(load) errs exactly when
// QuantizeOK(load) reports !ok.
func (m Model) QuantizeOK(load float64) (f float64, ok bool) {
	if load < 0 {
		return 0, false
	}
	if load == 0 {
		return 0, true
	}
	if load > m.MaxBW+loadEps {
		return 0, false
	}
	if m.Continuous() {
		return math.Min(load, m.MaxBW), true
	}
	i, _ := slices.BinarySearch(m.Freqs, load-loadEps)
	if i == len(m.Freqs) {
		return 0, false
	}
	return m.Freqs[i], true
}

// LinkPowerOK is LinkPower reporting infeasibility as ok=false instead of
// an error (see QuantizeOK).
func (m Model) LinkPowerOK(load float64) (p float64, ok bool) {
	f, ok := m.QuantizeOK(load)
	if !ok {
		return 0, false
	}
	if f == 0 {
		return 0, true
	}
	return m.Pleak + m.Dynamic(f), true
}

// LinkPower returns the power dissipated by a single link carrying the
// given load (0 for an idle link), per the Section 3.1 model.
func (m Model) LinkPower(load float64) (float64, error) {
	f, err := m.Quantize(load)
	if err != nil {
		return 0, err
	}
	if f == 0 {
		return 0, nil
	}
	return m.Pleak + m.Dynamic(f), nil
}

// Dynamic returns only the dynamic part P0·(f/FreqUnit)^α for an operating
// frequency f.
func (m Model) Dynamic(f float64) float64 {
	unit := m.FreqUnit
	if unit == 0 {
		unit = 1
	}
	return m.P0 * math.Pow(f/unit, m.Alpha)
}

// Total returns the total power of a set of link loads, the number of
// active links, and the static/dynamic breakdown. A wrapped ErrOverloaded
// is returned if any load is infeasible; the routing is then invalid.
func (m Model) Total(loads []float64) (Breakdown, error) {
	var b Breakdown
	for i, load := range loads {
		if load == 0 {
			continue
		}
		f, err := m.Quantize(load)
		if err != nil {
			return Breakdown{}, fmt.Errorf("link %d: %w", i, err)
		}
		b.ActiveLinks++
		b.Static += m.Pleak
		b.Dynamic += m.Dynamic(f)
	}
	return b, nil
}

// Feasible reports whether every load fits within the available bandwidth.
func (m Model) Feasible(loads []float64) bool {
	for _, load := range loads {
		if load > m.MaxBW+loadEps {
			return false
		}
	}
	return true
}

// Breakdown decomposes a total power figure into its static and dynamic
// parts (the §6.4 statistic: static ≈ 1/7 of total in the paper's runs).
type Breakdown struct {
	Static      float64
	Dynamic     float64
	ActiveLinks int
}

// Total returns static + dynamic power.
func (b Breakdown) Total() float64 { return b.Static + b.Dynamic }

// KimHorowitz returns the discrete model used throughout Section 6,
// fitted to the adaptive serial links of Kim & Horowitz [7]:
// Pleak = 16.9 mW, P0 = 5.41, α = 2.95, frequencies {1, 2.5, 3.5} Gb/s.
// Loads are expressed in Mb/s (top bandwidth 3500 Mb/s).
func KimHorowitz() Model {
	return Model{
		Pleak:    16.9,
		P0:       5.41,
		Alpha:    2.95,
		Freqs:    []float64{1000, 2500, 3500},
		MaxBW:    3500,
		FreqUnit: 1000,
	}
}

// KimHorowitzContinuous is the same silicon with idealized continuous
// frequency scaling; used by the discrete-vs-continuous ablation.
func KimHorowitzContinuous() Model {
	m := KimHorowitz()
	m.Freqs = nil
	return m
}

// Figure2 returns the toy continuous model of the Section 3.5 example and
// of the Section 4 analysis: Pleak = 0, P0 = 1, α = 3, BW = 4.
func Figure2() Model {
	return Model{Pleak: 0, P0: 1, Alpha: 3, MaxBW: 4}
}

// Theory returns a continuous model with no leakage, unit P0 and the given
// α, and practically unbounded bandwidth; Section 4's worst-case analyses
// (Theorems 1 and 2) are stated in this regime.
func Theory(alpha float64) Model {
	return Model{Pleak: 0, P0: 1, Alpha: alpha, MaxBW: math.MaxFloat64}
}
