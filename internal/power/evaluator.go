package power

import (
	"math"
	"slices"
)

// Evaluator is the compiled form of a Model for hot evaluation loops: the
// per-frequency power Pleak + Dynamic(f) of the (typically three-entry)
// discrete ladder is precomputed into a flat table, so the per-probe cost
// of QuantizeOK/LinkPowerOK/Pseudo drops from a binary search plus a
// math.Pow call to a short linear scan over precomputed floats. The
// continuous case caches the FreqUnit divisor so the unit-defaulting
// branch of Model.Dynamic is paid once at compile time.
//
// Every query is bit-identical to the Model method it compiles
// (QuantizeOK, LinkPowerOK, and the heuristics' pseudo-power extension):
// the table entries are produced by the same expressions the Model
// evaluates per probe, and the comparison thresholds reuse the Model's
// exact arithmetic, so replacing a Model call with the compiled form never
// changes a routing decision. TestEvaluatorMatchesModel pins this.
//
// An Evaluator is immutable after Compile and safe for concurrent use.
type Evaluator struct {
	model Model

	continuous bool
	pleak      float64
	p0         float64
	alpha      float64
	unit       float64 // FreqUnit with the zero-means-1 default applied
	maxBW      float64
	maxOK      float64 // MaxBW + loadEps, the strict feasibility bound

	// Discrete ladder: freqs mirrors Model.Freqs; powers[i] is the full
	// link power Pleak + Dynamic(freqs[i]) at that operating point.
	freqs  []float64
	powers []float64
}

// Compile builds the evaluator of m. The model is captured by value
// (Freqs copied), so later mutation of the caller's Model does not desync
// the tables.
func Compile(m Model) *Evaluator {
	e := &Evaluator{
		model:      m,
		continuous: m.Continuous(),
		pleak:      m.Pleak,
		p0:         m.P0,
		alpha:      m.Alpha,
		unit:       m.FreqUnit,
		maxBW:      m.MaxBW,
		maxOK:      m.MaxBW + loadEps,
	}
	if e.unit == 0 {
		e.unit = 1
	}
	if !e.continuous {
		e.freqs = slices.Clone(m.Freqs)
		e.model.Freqs = e.freqs
		e.powers = make([]float64, len(e.freqs))
		for i, f := range e.freqs {
			e.powers[i] = m.Pleak + m.Dynamic(f)
		}
	}
	return e
}

// Model returns the model the evaluator was compiled from.
func (e *Evaluator) Model() Model { return e.model }

// CompiledFrom reports whether the evaluator was compiled from a model
// equal to m — the cache-validity check of workspace-pooled evaluators.
func (e *Evaluator) CompiledFrom(m Model) bool {
	return e.model.Pleak == m.Pleak && e.model.P0 == m.P0 &&
		e.model.Alpha == m.Alpha && e.model.MaxBW == m.MaxBW &&
		e.model.FreqUnit == m.FreqUnit && slices.Equal(e.model.Freqs, m.Freqs)
}

// dynamic is Model.Dynamic with the unit default pre-applied.
func (e *Evaluator) dynamic(f float64) float64 {
	return e.p0 * math.Pow(f/e.unit, e.alpha)
}

// ladder returns the index of the smallest discrete frequency at or above
// the load (ok=false past the top), the compiled form of the
// sort.SearchFloat64s step of Model.Quantize. The ladder is tiny (three
// entries in the Section 6 model), so a linear scan beats binary search.
func (e *Evaluator) ladder(load float64) (int, bool) {
	x := load - loadEps
	for i, f := range e.freqs {
		if f >= x {
			return i, true
		}
	}
	return 0, false
}

// QuantizeOK mirrors Model.QuantizeOK: the operating frequency for a link
// carrying the load, ok=false when the load exceeds the available
// bandwidth.
func (e *Evaluator) QuantizeOK(load float64) (f float64, ok bool) {
	if load < 0 {
		return 0, false
	}
	if load == 0 {
		return 0, true
	}
	if load > e.maxOK {
		return 0, false
	}
	if e.continuous {
		return math.Min(load, e.maxBW), true
	}
	i, ok := e.ladder(load)
	if !ok {
		return 0, false
	}
	return e.freqs[i], true
}

// LinkPowerOK mirrors Model.LinkPowerOK: the power of a link carrying the
// load (0 when idle), ok=false when infeasible. On the discrete ladder the
// answer is a table lookup.
func (e *Evaluator) LinkPowerOK(load float64) (p float64, ok bool) {
	if load < 0 {
		return 0, false
	}
	if load == 0 {
		return 0, true
	}
	if load > e.maxOK {
		return 0, false
	}
	if e.continuous {
		return e.pleak + e.dynamic(math.Min(load, e.maxBW)), true
	}
	i, ok := e.ladder(load)
	if !ok {
		return 0, false
	}
	return e.powers[i], true
}

// Pseudo extends the link power continuously past the top frequency, the
// refinement heuristics' comparison objective: an overloaded link is
// charged Pleak + Dynamic(load) as if a matching frequency existed, so
// candidate routings stay comparable while still infeasible.
func (e *Evaluator) Pseudo(load float64) float64 {
	if load <= 0 {
		return 0
	}
	if load > e.maxOK {
		return e.pleak + e.dynamic(load)
	}
	if e.continuous {
		return e.pleak + e.dynamic(math.Min(load, e.maxBW))
	}
	if i, ok := e.ladder(load); ok {
		return e.powers[i]
	}
	// Unreachable for validated models (the top frequency is MaxBW), kept
	// for exact agreement with the uncompiled fallback on ill-formed ones.
	return e.pleak + e.dynamic(load)
}

// Excess returns the overload excess max(0, load − MaxBW), the feasibility
// component of the refinement heuristics' objective.
func (e *Evaluator) Excess(load float64) float64 {
	if load > e.maxBW {
		return load - e.maxBW
	}
	return 0
}
