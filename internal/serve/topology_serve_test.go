package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/scenario"
	"repro/internal/solve"
	"repro/internal/topo"
)

// torusSpec is a tiny non-mesh sweep for the service tests.
func torusSpec() scenario.Spec {
	return scenario.Spec{
		ID:       "serve-torus",
		Topology: "torus:4x4",
		Source:   "uniform",
		Params:   scenario.Params{WMin: 100, WMax: 900},
		Axis:     scenario.AxisN,
		Points:   []float64{3, 6},
		Trials:   3,
		Seed:     2,
		Policies: []string{"TABLE"},
	}
}

// TestSweepTopologyByteIdentity runs a torus sweep through /sweep: the
// response must equal the offline pipeline byte for byte, cold and on a
// warm cache hit.
func TestSweepTopologyByteIdentity(t *testing.T) {
	sp := torusSpec()
	want := offlineJSONL(t, sp, 0)
	_, ts := newTestServer(t, Config{})

	state, data := postSweep(t, ts.URL, sp)
	if state != "miss" {
		t.Errorf("first torus submission: cache state %q, want miss", state)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("cold torus response differs from offline sweep:\ngot  %q\nwant %q", data, want)
	}
	state, data = postSweep(t, ts.URL, sp)
	if state != "hit" {
		t.Errorf("second torus submission: cache state %q, want hit", state)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("warm torus response differs from offline sweep")
	}
}

// TestSweepTopologyRejectsMeshOnlyPolicies pins the fail-before-cache
// contract: a torus sweep with mesh-only policies is a 400, leaves no
// cache entry behind, and the corrected spec then runs as a clean miss.
func TestSweepTopologyRejectsMeshOnlyPolicies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	bad := torusSpec()
	bad.Policies = []string{"XY"}
	body, _ := postSweepRaw(t, ts.URL, bad)
	if body.StatusCode != http.StatusBadRequest {
		t.Fatalf("mesh-only policy on a torus: status %d, want 400", body.StatusCode)
	}
	state, _ := postSweep(t, ts.URL, torusSpec())
	if state != "miss" {
		t.Errorf("corrected spec after a rejected one: cache state %q, want miss", state)
	}
}

// postSweepRaw posts a spec and returns the raw response without
// asserting 200, for the rejection paths.
func postSweepRaw(t *testing.T, url string, sp scenario.Spec) (*http.Response, string) {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// TestSolveTopologyMatchesDirectEvaluation routes TABLE on a torus and a
// circulant through /solve and checks the reported power against the
// in-process solve+evaluate of the same instance.
func TestSolveTopologyMatchesDirectEvaluation(t *testing.T) {
	_, ts := newTestServer(t, Config{SolveShards: 2})
	for _, spec := range []string{"torus:4x4", "circulant:16:1,4"} {
		tp, err := topo.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Endpoints as carrier coordinates: valid on both families.
		car := tp.Carrier()
		comms := []SolveComm{
			{ID: 0, Src: coordArr(car.CoordAt(0)), Dst: coordArr(car.CoordAt(car.NumCores() - 1)), Rate: 700},
			{ID: 1, Src: coordArr(car.CoordAt(3)), Dst: coordArr(car.CoordAt(1)), Rate: 500},
		}
		req := SolveRequest{Topology: spec, Policy: "table", Comms: comms}
		resp, got := postSolve(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", spec, resp.StatusCode)
		}
		if got.Policy != "TABLE" {
			t.Errorf("%s: policy echoed as %q, want canonical TABLE", spec, got.Policy)
		}
		in := solve.Instance{Topo: tp, Model: mustModel(t, ""), Comms: commSet(comms)}
		r, err := solve.Route("TABLE", in, solve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := route.Evaluate(r, in.Model)
		if got.Feasible != want.Feasible {
			t.Errorf("%s: feasible = %v, want %v", spec, got.Feasible, want.Feasible)
		}
		if diff := got.TotalMW - want.Power.Total(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: total power %g, want %g", spec, got.TotalMW, want.Power.Total())
		}
	}
}

func coordArr(c mesh.Coord) [2]int { return [2]int{c.U, c.V} }

func commSet(cs []SolveComm) comm.Set {
	set := make(comm.Set, len(cs))
	for i, c := range cs {
		set[i] = comm.Comm{
			ID:   c.ID,
			Src:  mesh.Coord{U: c.Src[0], V: c.Src[1]},
			Dst:  mesh.Coord{U: c.Dst[0], V: c.Dst[1]},
			Rate: c.Rate,
		}
	}
	return set
}

func mustModel(t *testing.T, name string) power.Model {
	t.Helper()
	model, err := modelFor(name)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// TestSolveTopologyRejectsBadRequests covers the topology-specific 400
// paths on /solve.
func TestSolveTopologyRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	torusComms := []SolveComm{{ID: 0, Src: [2]int{1, 1}, Dst: [2]int{3, 3}, Rate: 500}}
	for name, req := range map[string]SolveRequest{
		"mesh and topology":     {Mesh: "4x4", Topology: "torus:4x4", Policy: "TABLE", Comms: torusComms},
		"mesh-spelled topology": {Topology: "mesh:4x4", Policy: "TABLE", Comms: torusComms},
		"mesh-only policy":      {Topology: "torus:4x4", Policy: "PR", Comms: torusComms},
		"unknown family":        {Topology: "hypercube:16", Policy: "TABLE", Comms: torusComms},
		"off-topology coord":    {Topology: "torus:4x4", Policy: "TABLE", Comms: []SolveComm{{Src: [2]int{9, 9}, Dst: [2]int{1, 1}, Rate: 5}}},
	} {
		resp, _ := postSolve(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
