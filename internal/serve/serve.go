// Package serve is the routing-as-a-service layer: a long-running HTTP
// front end over the pooled solver engine and the streaming sweep
// pipeline, built for sustained heavy traffic rather than one-shot CLI
// runs.
//
// Two workloads, two disciplines:
//
//   - POST /solve routes one communication set under one policy. Requests
//     run on a sharded worker pool; each shard goroutine permanently owns
//     its pooled scratch (route.Workspace with the compiled
//     power.Evaluator inside, per-geometry LoadTrackers, a noc.Workspace
//     for optional replay), so the steady-state cost of a request is the
//     solve itself. When every shard queue is full the server answers 503
//     immediately instead of letting latency grow without bound — the
//     backpressure guardrail.
//
//   - POST /sweep accepts a declarative scenario.Spec and streams the
//     sweep's per-point results back as JSON lines — byte-identical to an
//     offline experiments.Sweep of the same spec through a JSONL sink,
//     at any configured worker count. Completed sweeps are cached by the
//     spec's canonical content hash (scenario.Spec.Hash) with
//     singleflight admission: however many identical submissions race,
//     exactly one sweep executes; the rest attach to the in-flight run
//     (streaming each point as it completes) or replay the cached bytes.
//     The cache is LRU-bounded and never evicts an in-flight entry.
//
// GET /stats exposes the traffic and cache counters, GET /healthz is the
// liveness probe, GET /readyz the readiness probe (unready once a drain
// begins). Graceful shutdown is the HTTP server's: in-flight solves and
// sweep streams run to completion; Close then drains the shard queues.
//
// # Failure containment
//
// Cancellation propagates end to end: every handler carries its request
// context, so a client disconnect or a configured deadline
// (SolveTimeout, SweepTimeout) reaches the solver's stop poll mid-solve,
// not just between requests. A solo /sweep submitter disconnecting
// cancels the run it started; attached streams are refcounted, so a run
// is cancelled only when its LAST reader leaves — one impatient client
// never kills a sweep others are still streaming. Cancelled or failed
// partial runs are never cached: the cache holds only byte streams of
// sweeps that ran to completion, so a replay is always a full result.
// A panic on a pooled worker — shard or sweep — is recovered, answered
// as an error (500 on /solve, a terminal JSONL error record on /sweep),
// counted in Stats.Panics, and the possibly-poisoned pooled scratch is
// discarded and rebuilt before the worker touches the next request.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/mesh"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/solve"
	"repro/internal/topo"
)

// Config tunes the server. The zero value serves with sensible defaults.
type Config struct {
	// SolveShards is the number of solve workers, each owning its pooled
	// scratch for its whole lifetime (0 = GOMAXPROCS).
	SolveShards int
	// ShardQueue is each shard's pending-request bound (0 = 64). When
	// every queue is full, /solve answers 503 instead of queueing — the
	// latency guardrail under overload.
	ShardQueue int
	// SweepWorkers is the work-stealing worker count of each sweep run
	// (experiments.SweepOptions.Workers; 0 = GOMAXPROCS). Output bytes
	// are identical at every setting.
	SweepWorkers int
	// MaxSweeps bounds concurrently executing sweeps (0 = 2); further
	// cold submissions wait their turn. Identical submissions never
	// stack — singleflight collapses them onto one run.
	MaxSweeps int
	// CacheEntries bounds the completed-sweep cache (0 = 64 sweeps).
	CacheEntries int
	// MaxTrials rejects sweep submissions requesting more than this many
	// trials per point (0 = unlimited) — the knob that keeps one
	// oversized submission from monopolizing the service.
	MaxTrials int
	// SolveTimeout bounds each /solve request from enqueue to answer
	// (0 = none). Expiry answers 504 and the deadline reaches the
	// solver's stop poll, so a pathological solve abandons mid-search
	// instead of occupying its shard indefinitely.
	SolveTimeout time.Duration
	// SweepTimeout bounds each sweep execution (0 = none). Because the
	// response stream is already flowing when the deadline can expire,
	// a timed-out sweep reports in-band: a terminal JSONL error record,
	// and the partial run is never cached.
	SweepTimeout time.Duration
	// Chaos, when non-nil, injects faults at the server's seams — tests
	// and fault drills only. See the Chaos type.
	Chaos *Chaos
}

func (c Config) withDefaults() Config {
	if c.SolveShards <= 0 {
		c.SolveShards = runtime.GOMAXPROCS(0)
	}
	if c.ShardQueue <= 0 {
		c.ShardQueue = 64
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 2
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
	return c
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Solves counts completed solve requests; SolveRejects the 503s the
	// backpressure guardrail returned with full queues.
	Solves       uint64 `json:"solves"`
	SolveRejects uint64 `json:"solve_rejects"`
	// SweepsRun counts sweep executions — cache misses that actually ran
	// the engine. CacheHits replayed a completed entry, CacheAttaches
	// joined an in-flight run, CacheEvictions dropped LRU entries.
	SweepsRun      uint64 `json:"sweeps_run"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheAttaches  uint64 `json:"cache_attaches"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheEntries   int    `json:"cache_entries"`
	// Panics counts panics recovered on pooled workers (shard solves and
	// sweep runs); Canceled counts work abandoned because every client
	// went away before completion; Timeouts counts SolveTimeout /
	// SweepTimeout expiries.
	Panics   uint64 `json:"panics"`
	Canceled uint64 `json:"canceled"`
	Timeouts uint64 `json:"timeouts"`
}

// Server is the routing service. Create with New, expose via Handler,
// stop with Close after the HTTP listener has shut down.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *sweepCache

	shards   []*shard
	dispatch sync.RWMutex // guards shard sends against Close
	closed   bool
	workers  sync.WaitGroup
	sweeps   sync.WaitGroup
	sem      chan struct{} // MaxSweeps tokens
	next     atomic.Uint64 // round-robin shard cursor

	meshMu sync.RWMutex
	meshes map[[2]int]*mesh.Mesh

	topoMu sync.RWMutex
	topos  map[string]topo.Topology

	solves       atomic.Uint64
	solveRejects atomic.Uint64
	sweepsRun    atomic.Uint64
	panics       atomic.Uint64
	canceled     atomic.Uint64
	timeouts     atomic.Uint64
	draining     atomic.Bool
}

// New starts the shard workers and returns the server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		cache:  newSweepCache(cfg.CacheEntries),
		sem:    make(chan struct{}, cfg.MaxSweeps),
		meshes: make(map[[2]int]*mesh.Mesh),
		topos:  make(map[string]topo.Topology),
	}
	s.shards = make([]*shard, cfg.SolveShards)
	for i := range s.shards {
		sh := &shard{jobs: make(chan *solveJob, cfg.ShardQueue), chaos: cfg.Chaos, panics: &s.panics}
		s.shards[i] = sh
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			sh.loop()
		}()
	}
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Readiness is distinct from liveness: a draining server is still
	// alive (healthz ok — don't restart it) but should receive no new
	// traffic (readyz 503 — pull it from rotation).
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips /readyz unready so load balancers stop routing new
// traffic while in-flight work runs to completion. It is idempotent and
// does not itself stop anything; call it on the shutdown signal, before
// the HTTP listener's graceful Shutdown. Close implies it.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close stops accepting work, waits for every queued solve to be
// answered and every in-flight sweep to finish, then releases the shard
// workers. Call it after the HTTP listener has drained its handlers.
func (s *Server) Close() {
	s.BeginDrain()
	s.dispatch.Lock()
	if !s.closed {
		s.closed = true
		for _, sh := range s.shards {
			close(sh.jobs)
		}
	}
	s.dispatch.Unlock()
	s.workers.Wait()
	s.sweeps.Wait()
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	hits, misses, attaches, evictions := s.cache.counters()
	return Stats{
		Solves:         s.solves.Load(),
		SolveRejects:   s.solveRejects.Load(),
		SweepsRun:      s.sweepsRun.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheAttaches:  attaches,
		CacheEvictions: evictions,
		CacheEntries:   s.cache.len(),
		Panics:         s.panics.Load(),
		Canceled:       s.canceled.Load(),
		Timeouts:       s.timeouts.Load(),
	}
}

// meshFor parses and caches the mesh geometry, so every request on one
// platform shares one mesh (and therefore one pooled tracker per shard).
func (s *Server) meshFor(spec string) (*mesh.Mesh, error) {
	if spec == "" {
		spec = "8x8"
	}
	p, q, err := scenario.ParseMesh(spec)
	if err != nil {
		return nil, err
	}
	key := [2]int{p, q}
	s.meshMu.RLock()
	m := s.meshes[key]
	s.meshMu.RUnlock()
	if m != nil {
		return m, nil
	}
	s.meshMu.Lock()
	defer s.meshMu.Unlock()
	if m = s.meshes[key]; m == nil {
		m = mesh.MustNew(p, q)
		s.meshes[key] = m
	}
	return m, nil
}

// topoFor parses and caches a non-mesh topology spec string, so every
// request on one platform shares one topology value — which keys the
// shards' pooled trackers and the pooled workspace rebinding by its
// canonical Spec string.
func (s *Server) topoFor(spec string) (topo.Topology, error) {
	s.topoMu.RLock()
	t := s.topos[spec]
	s.topoMu.RUnlock()
	if t != nil {
		return t, nil
	}
	parsed, err := topo.Parse(spec)
	if err != nil {
		return nil, err
	}
	if parsed.Name() == "mesh" {
		return nil, fmt.Errorf("serve: topology %q is a mesh — spell it in the mesh field", spec)
	}
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	if cached := s.topos[spec]; cached != nil {
		return cached, nil
	}
	s.topos[spec] = parsed
	return parsed, nil
}

// modelFor resolves the power model names the scenario specs use.
func modelFor(name string) (power.Model, error) {
	switch name {
	case "", "kim-horowitz":
		return power.KimHorowitz(), nil
	case "continuous":
		return power.KimHorowitzContinuous(), nil
	}
	return power.Model{}, fmt.Errorf("serve: unknown power model %q (want kim-horowitz or continuous)", name)
}

// SolveRequest is the /solve body: one communication set, one policy.
type SolveRequest struct {
	// Mesh is the "PxQ" platform geometry ("" = 8x8).
	Mesh string `json:"mesh,omitempty"`
	// Topology selects a non-mesh platform by topo.Parse spec string
	// (e.g. "torus:8x8", "circulant:27:1,3,9"); mutually exclusive with
	// Mesh, which stays the one spelling for mesh platforms. The policy
	// must be topology-capable (TABLE).
	Topology string `json:"topology,omitempty"`
	// Policy is any registered routing policy name.
	Policy string `json:"policy"`
	// Power selects the link power model like scenario.Spec.Power.
	Power string `json:"power,omitempty"`
	// Seed drives stochastic policies (SA).
	Seed int64 `json:"seed,omitempty"`
	// SAIters and MaxPaths pass through to solve.Options.
	SAIters  int `json:"sa_iters,omitempty"`
	MaxPaths int `json:"max_paths,omitempty"`
	// Comms is the communication set to route.
	Comms []SolveComm `json:"comms"`
	// Sim, when present, also replays the routed set in the
	// discrete-event NoC simulator and reports its delivery counters.
	Sim *SimRequest `json:"sim,omitempty"`
}

// SolveComm is one communication: src/dst are [u, v] core coordinates.
type SolveComm struct {
	ID   int     `json:"id"`
	Src  [2]int  `json:"src"`
	Dst  [2]int  `json:"dst"`
	Rate float64 `json:"rate"`
}

// SimRequest configures the optional NoC replay of a solve.
type SimRequest struct {
	HorizonUS float64 `json:"horizon_us,omitempty"`
	WarmupUS  float64 `json:"warmup_us,omitempty"`
	// Switching is "sf" (store-and-forward, default) or "ct"
	// (cut-through).
	Switching     string  `json:"switching,omitempty"`
	PacketBits    float64 `json:"packet_bits,omitempty"`
	BufferPackets int     `json:"buffer_packets,omitempty"`
}

// SimResult reports the replay's packet accounting
// (Injected = Delivered + Stalled + InFlight).
type SimResult struct {
	Injected  int `json:"injected"`
	Delivered int `json:"delivered"`
	Stalled   int `json:"stalled"`
	InFlight  int `json:"in_flight"`
}

// SolveResponse is the /solve answer. A policy that finds no valid
// solution (OPT proving infeasibility, a blown search budget) is a
// result, not a transport failure: Feasible false with Error set.
type SolveResponse struct {
	Policy   string     `json:"policy"`
	Feasible bool       `json:"feasible"`
	StaticMW float64    `json:"static_mw"`
	DynMW    float64    `json:"dynamic_mw"`
	TotalMW  float64    `json:"total_mw"`
	Sim      *SimResult `json:"sim,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// simConfig translates the request's replay options.
func simConfig(r *SimRequest) (*noc.Config, error) {
	if r == nil {
		return nil, nil
	}
	cfg := &noc.Config{
		Horizon:       r.HorizonUS,
		Warmup:        r.WarmupUS,
		PacketBits:    r.PacketBits,
		BufferPackets: r.BufferPackets,
	}
	switch r.Switching {
	case "", "sf":
		cfg.Switching = noc.StoreAndForward
	case "ct":
		cfg.Switching = noc.CutThrough
	default:
		return nil, fmt.Errorf("serve: unknown switching %q (want sf or ct)", r.Switching)
	}
	return cfg, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var (
		m  *mesh.Mesh
		tp topo.Topology
	)
	if req.Topology != "" {
		if req.Mesh != "" {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("serve: both mesh %q and topology %q set — a mesh platform uses the mesh field alone", req.Mesh, req.Topology))
			return
		}
		var err error
		if tp, err = s.topoFor(req.Topology); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		var err error
		if m, err = s.meshFor(req.Mesh); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	model, err := modelFor(req.Power)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	solver, err := solve.Lookup(req.Policy)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if tp != nil && !solve.Supports(solver, tp) {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("serve: policy %s routes meshes only, not %s", solver.Name(), tp.Spec()))
		return
	}
	sim, err := simConfig(req.Sim)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	set := make(comm.Set, len(req.Comms))
	for i, c := range req.Comms {
		set[i] = comm.Comm{
			ID:   c.ID,
			Src:  mesh.Coord{U: c.Src[0], V: c.Src[1]},
			Dst:  mesh.Coord{U: c.Dst[0], V: c.Dst[1]},
			Rate: c.Rate,
		}
	}
	in := solve.Instance{Mesh: m, Topo: tp, Model: model, Comms: set}
	if err := in.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// The request context carries both failure signals a waiting solve
	// must honor: the client disconnecting and the configured deadline.
	// It reaches the shard worker (which skips jobs nobody waits on) and
	// the solver's stop poll (which abandons a search mid-solve).
	ctx := r.Context()
	if s.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SolveTimeout)
		defer cancel()
	}
	job := &solveJob{
		ctx:    ctx,
		in:     in,
		solver: solver,
		opts:   solve.Options{Seed: req.Seed, SAIters: req.SAIters, MaxPaths: req.MaxPaths},
		sim:    sim,
		done:   make(chan solveOutcome, 1),
	}
	job.opts.Stop = func() bool { return ctx.Err() != nil }
	if !s.enqueue(job) {
		s.solveRejects.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: all %d solve queues full", len(s.shards)))
		return
	}
	var out solveOutcome
	select {
	case out = <-job.done:
	case <-ctx.Done():
		// done is buffered, so a worker that already dequeued the job can
		// still deposit its (discarded) answer without blocking.
		out = solveOutcome{err: solve.ErrStopped}
	}
	// A dead context dominates however it surfaced — the select racing to
	// Done, or the worker answering first with the stop-poll's ErrStopped.
	if ctx.Err() != nil && (out.err == nil || errors.Is(out.err, solve.ErrStopped)) {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.timeouts.Add(1)
			httpError(w, http.StatusGatewayTimeout,
				fmt.Errorf("serve: solve exceeded the %v deadline", s.cfg.SolveTimeout))
		} else {
			s.canceled.Add(1)
		}
		return
	}
	s.solves.Add(1)
	if out.panicked {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("serve: internal error routing the request"))
		return
	}
	resp := SolveResponse{Policy: solver.Name()}
	if out.err != nil {
		resp.Error = out.err.Error()
	} else {
		resp.Feasible = out.feasible
		resp.StaticMW = out.bd.Static
		resp.DynMW = out.bd.Dynamic
		resp.TotalMW = out.bd.Total()
		resp.Sim = out.sim
	}
	writeJSON(w, resp)
}

// enqueue places the job on a shard queue, trying every shard from a
// round-robin start; false means every queue is full (or the server is
// closed) and the caller should shed the request.
func (s *Server) enqueue(job *solveJob) bool {
	s.dispatch.RLock()
	defer s.dispatch.RUnlock()
	if s.closed {
		return false
	}
	n := len(s.shards)
	start := int(s.next.Add(1)-1) % n
	for i := 0; i < n; i++ {
		select {
		case s.shards[(start+i)%n].jobs <- job:
			return true
		default:
		}
	}
	return false
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	sp, err := scenario.DecodeJSON(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if s.cfg.MaxTrials > 0 && sp.Trials > s.cfg.MaxTrials {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("serve: %d trials/point exceeds the server's limit of %d", sp.Trials, s.cfg.MaxTrials))
		return
	}
	// Expanding the spec catches what the spec's own Validate cannot (a
	// bad mesh string reaching the panel layer) and the explicit lookups
	// catch what expansion defers to run time (an unknown policy name) —
	// both must fail here, before a cache entry exists for the hash.
	if _, err := experiments.PanelOf(sp); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	for _, name := range sp.Policies {
		if _, err := solve.Lookup(name); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	// A non-mesh sweep must fail before a cache entry exists for its
	// hash, so a mesh-only policy list never parks an error stream in
	// the cache.
	if sp.Topology != "" {
		t, err := sp.TopologyOf()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		names := sp.Policies
		if len(names) == 0 {
			names = experiments.HeuristicNames
		}
		if err := solve.CheckTopology(names, t); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	hash := sp.Hash()
	entry, state := s.cache.acquire(hash)
	// This stream holds one reference on the entry; releasing the last
	// one cancels a still-running sweep — a solo submitter disconnecting
	// stops its run, while a run with other attached readers survives
	// any one of them leaving.
	defer s.cache.release(entry)
	if state == stateRun {
		s.sweeps.Add(1)
		go s.runSweep(sp, entry)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Routed-Spec-Hash", hash)
	w.Header().Set("X-Routed-Cache", map[cacheState]string{
		stateRun: "miss", stateAttach: "attach", stateHit: "hit",
	}[state])
	flusher, _ := w.(http.Flusher)
	var flush func()
	if flusher != nil {
		flush = flusher.Flush
	}
	err = entry.stream(r.Context(), func(p []byte) error {
		_, err := w.Write(p)
		return err
	}, flush)
	if err != nil && r.Context().Err() != nil {
		s.canceled.Add(1)
	}
}

// runSweep executes the singleflight winner's sweep into the entry:
// per-point JSONL flows to every attached stream as it is evaluated, and
// a successful run is promoted into the cache. A failed, cancelled or
// timed-out run appends one terminal error record — a deliberate
// departure from the offline format, which has no way to signal
// mid-stream failure — and is dropped from the cache so the next
// submission retries; the cache never holds a partial run. The run is
// bounded by the entry's refcounted context (cancelled when the last
// attached stream leaves) and, when configured, SweepTimeout; a panic on
// a sweep worker arrives as an experiments.PanicError and counts in
// Stats.Panics.
func (s *Server) runSweep(sp scenario.Spec, entry *sweepEntry) {
	defer s.sweeps.Done()
	ctx := entry.runCtx
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		// Every submitter left while the run was still queued behind
		// MaxSweeps: don't burn a slot computing into the void.
		s.canceled.Add(1)
		s.failSweep(entry, ctx.Err())
		return
	}
	defer func() { <-s.sem }()
	if s.cfg.SweepTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SweepTimeout)
		defer cancel()
	}
	s.sweepsRun.Add(1)
	opt := experiments.SweepOptions{Workers: s.cfg.SweepWorkers, Context: ctx}
	if c := s.cfg.Chaos; c != nil {
		opt.TrialStart = c.TrialStart
	}
	err := func() (err error) {
		// The merge stage and the sinks run on this goroutine; contain
		// their panics like the engine contains its workers'.
		defer func() {
			if r := recover(); r != nil {
				s.panics.Add(1)
				err = fmt.Errorf("serve: sweep panic: %v", r)
			}
		}()
		if c := s.cfg.Chaos; c != nil && c.SweepStart != nil {
			if err := c.SweepStart(entry.hash); err != nil {
				return err
			}
		}
		return experiments.Sweep(sp, opt, experiments.NewJSONLSink(entry))
	}()
	if err == nil {
		entry.finish(nil)
		s.cache.complete(entry)
		return
	}
	var pe *experiments.PanicError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
	case errors.Is(err, context.Canceled):
		s.canceled.Add(1)
	case errors.As(err, &pe):
		s.panics.Add(1)
	}
	s.failSweep(entry, err)
}

// failSweep terminates a run that produced no complete result: one
// in-band error record for whoever is still streaming, then the entry is
// finished and abandoned so it can never be replayed from the cache.
func (s *Server) failSweep(entry *sweepEntry, err error) {
	line, _ := json.Marshal(map[string]string{"type": "error", "error": err.Error()})
	entry.Write(append(line, '\n'))
	entry.finish(err)
	s.cache.abandon(entry)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
