package serve

import (
	"container/list"
	"context"
	"sync"
)

// cacheState classifies what acquiring a spec hash found.
type cacheState int

const (
	// stateRun: no entry existed; the caller owns the entry and must run
	// the sweep into it exactly once.
	stateRun cacheState = iota
	// stateAttach: the sweep is in flight; the caller streams the entry
	// as it fills.
	stateAttach
	// stateHit: the sweep completed earlier; the entry holds the full
	// result.
	stateHit
)

// sweepEntry is one content-addressed sweep result: the byte stream the
// JSONL sink produced (or is still producing), shared by the run that
// writes it and every request that replays it. The buffer is append-only,
// so a reader can release the lock while writing an already-published
// chunk to its client — slices into the old backing array stay valid even
// if a concurrent append reallocates.
type sweepEntry struct {
	hash string

	mu   sync.Mutex
	cond sync.Cond
	buf  []byte
	done bool
	err  error

	// refs counts the HTTP streams attached to the entry (the submitter
	// that won the singleflight race included), guarded by the owning
	// cache's mu. When the last attached stream releases an entry whose
	// run is still in flight, runCtx is cancelled — nobody is listening,
	// so the engine drains instead of computing into the void. Cancelled
	// partial runs are abandoned, never cached.
	refs   int
	runCtx context.Context
	cancel context.CancelFunc

	elem *list.Element // LRU position once completed (nil while in flight)
}

func newSweepEntry(hash string) *sweepEntry {
	e := &sweepEntry{hash: hash}
	e.cond.L = &e.mu
	e.runCtx, e.cancel = context.WithCancel(context.Background())
	return e
}

// Write implements io.Writer for the running sweep's JSONL sink: append
// and wake every attached reader. It never fails and never blocks on
// readers, so a slow client cannot stall the sweep.
func (e *sweepEntry) Write(p []byte) (int, error) {
	e.mu.Lock()
	e.buf = append(e.buf, p...)
	e.mu.Unlock()
	e.cond.Broadcast()
	return len(p), nil
}

// finish marks the entry complete (err non-nil when the sweep failed) and
// releases every waiting reader.
func (e *sweepEntry) finish(err error) {
	e.mu.Lock()
	e.done, e.err = true, err
	e.mu.Unlock()
	e.cond.Broadcast()
}

// stream copies the entry to w from the beginning, following the live
// buffer until the sweep completes; flush, when non-nil, runs after every
// chunk so per-point lines reach a streaming HTTP client as they are
// evaluated. ctx, when non-nil, bounds the read side: a reader blocked in
// Wait wakes when the request context dies (the disconnect signal HTTP
// write errors alone cannot deliver promptly) and returns its error. It
// returns the write error (the client went away — the sweep itself is
// unaffected), the context's error, or the sweep's own error for a
// failed run.
func (e *sweepEntry) stream(ctx context.Context, w writerFunc, flush func()) error {
	if ctx != nil {
		// Broadcast under the entry lock so a waiter is either still
		// before its ctx check (and will see the error) or parked in Wait
		// (and gets the wakeup) — never between the two.
		unhook := context.AfterFunc(ctx, func() {
			e.mu.Lock()
			defer e.mu.Unlock()
			e.cond.Broadcast()
		})
		defer unhook()
	}
	off := 0
	e.mu.Lock()
	for {
		for off < len(e.buf) {
			chunk := e.buf[off:len(e.buf):len(e.buf)]
			off = len(e.buf)
			e.mu.Unlock()
			if err := w(chunk); err != nil {
				return err
			}
			if flush != nil {
				flush()
			}
			e.mu.Lock()
		}
		if e.done {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			e.mu.Unlock()
			return ctx.Err()
		}
		e.cond.Wait()
	}
	err := e.err
	e.mu.Unlock()
	return err
}

// writerFunc adapts the chunk writes of stream to any destination.
type writerFunc func(p []byte) error

// size returns the current buffered byte count.
func (e *sweepEntry) size() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.buf)
}

// sweepCache is the content-addressed completed-sweep store with
// singleflight admission: acquire returns stateRun to exactly one caller
// per hash however many submissions race, everyone else attaches to the
// in-flight entry or replays the completed one. Completed entries live on
// an LRU bounded at cap; in-flight entries are pinned (never evicted)
// until they finish.
type sweepCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*sweepEntry
	lru     *list.List // front = most recent; values are *sweepEntry

	hits, misses, attaches, evictions uint64
}

func newSweepCache(capacity int) *sweepCache {
	return &sweepCache{
		cap:     capacity,
		entries: make(map[string]*sweepEntry),
		lru:     list.New(),
	}
}

// acquire looks the hash up, classifying the result and registering a
// fresh in-flight entry on a miss. Every caller — the stateRun winner and
// each attacher or replayer — holds one reference and must pair the
// acquire with exactly one release when its stream ends. The stateRun
// caller must additionally see the run through to complete (success) or
// abandon (failure).
func (c *sweepCache) acquire(hash string) (*sweepEntry, cacheState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[hash]; ok {
		e.refs++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
			c.hits++
			return e, stateHit
		}
		c.attaches++
		return e, stateAttach
	}
	e := newSweepEntry(hash)
	e.refs = 1
	c.entries[hash] = e
	c.misses++
	return e, stateRun
}

// release drops one stream's reference. When the last reference leaves an
// entry, its run context is cancelled: for an in-flight run that stops
// the engine (no attacher remains to read the result); for a completed
// entry the run already returned and the cancel is a no-op. The refcount
// transition and the cancel decision happen under the cache lock, so an
// attacher arriving concurrently either lands before the count hits zero
// (and keeps the run alive) or after the entry was abandoned (and starts
// a fresh run).
func (c *sweepCache) release(e *sweepEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
	if e.refs == 0 {
		e.cancel()
	}
}

// complete promotes a finished in-flight entry onto the LRU, evicting the
// oldest completed entries beyond capacity.
func (c *sweepCache) complete(e *sweepEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.elem = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		victim := oldest.Value.(*sweepEntry)
		delete(c.entries, victim.hash)
		victim.elem = nil
		c.evictions++
	}
}

// abandon drops a failed in-flight entry so the next submission of the
// same spec retries instead of replaying the failure forever. Attached
// readers already streaming the entry still observe its finish.
func (c *sweepCache) abandon(e *sweepEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[e.hash]; ok && cur == e {
		delete(c.entries, e.hash)
	}
}

// len returns the number of cached (completed) entries.
func (c *sweepCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// counters snapshots the hit/miss/attach/eviction counts.
func (c *sweepCache) counters() (hits, misses, attaches, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.attaches, c.evictions
}
