package serve

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
)

// solveJob is one single-solve request handed to a shard worker. The
// routing itself never leaves the worker — it aliases the worker's pooled
// workspace — only the evaluation crosses back over done.
type solveJob struct {
	in     solve.Instance
	solver solve.Solver
	opts   solve.Options
	sim    *noc.Config // non-nil: also replay the routing in the NoC sim
	done   chan solveOutcome
}

// solveOutcome is the worker's answer: the power evaluation of the
// routing (feasible=false when some link exceeds the model's bandwidth),
// the optional NoC replay counters, or the solver's own error.
type solveOutcome struct {
	feasible bool
	bd       power.Breakdown
	sim      *SimResult
	err      error
}

// shard is one worker of the solve pool: a queue and a goroutine that
// permanently owns its pooled scratch — the dense route.Workspace (with
// the compiled power.Evaluator cached inside it), one LoadTracker per
// mesh geometry seen, and a noc.Workspace for replay requests. Nothing is
// reallocated across requests; a request's cost is the solve itself plus
// the HTTP/JSON rim.
type shard struct {
	jobs chan *solveJob
}

// shardScratch is the worker's permanent state.
type shardScratch struct {
	ws       *route.Workspace
	trackers map[[2]int]*route.LoadTracker
	nocWS    *noc.Workspace
}

func newShardScratch() *shardScratch {
	return &shardScratch{
		ws:       route.NewWorkspace(),
		trackers: make(map[[2]int]*route.LoadTracker),
		nocWS:    noc.NewWorkspace(),
	}
}

// tracker returns the scratch's load tracker for the instance's mesh
// geometry, creating it on the first request that uses the geometry.
func (sc *shardScratch) tracker(in solve.Instance) *route.LoadTracker {
	key := [2]int{in.Mesh.P(), in.Mesh.Q()}
	t, ok := sc.trackers[key]
	if !ok {
		t = route.NewLoadTracker(in.Mesh)
		sc.trackers[key] = t
	}
	return t
}

// run executes one job on the worker's scratch.
func (sc *shardScratch) run(job *solveJob) solveOutcome {
	opts := job.opts
	opts.Workspace = sc.ws
	r, err := job.solver.Route(job.in, opts)
	if err != nil {
		return solveOutcome{err: err}
	}
	t := sc.tracker(job.in)
	t.SetRouting(r)
	bd, ok := t.Evaluate(job.in.Model)
	out := solveOutcome{feasible: ok, bd: bd}
	if job.sim != nil {
		if !ok {
			out.err = fmt.Errorf("serve: routing infeasible, nothing to simulate")
			return out
		}
		sim, err := sc.nocWS.Simulator(r, job.in.Model, *job.sim)
		if err != nil {
			out.err = err
			return out
		}
		st := sim.Run()
		out.sim = &SimResult{
			Injected:  st.Injected,
			Delivered: st.Delivered,
			Stalled:   st.Stalled,
			InFlight:  st.InFlight,
		}
	}
	return out
}

// loop drains the shard's queue until it closes, answering every job —
// including the ones already queued when shutdown begins, so a graceful
// stop never strands a waiting request.
func (sh *shard) loop() {
	sc := newShardScratch()
	for job := range sh.jobs {
		job.done <- sc.run(job)
	}
}
