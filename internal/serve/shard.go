package serve

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
)

// solveJob is one single-solve request handed to a shard worker. The
// routing itself never leaves the worker — it aliases the worker's pooled
// workspace — only the evaluation crosses back over done. ctx is the
// request's context (deadline and disconnect): a worker skips a job whose
// waiter already gave up, and the solver's stop poll is derived from it
// so a deadline binds mid-solve.
type solveJob struct {
	ctx    context.Context
	in     solve.Instance
	solver solve.Solver
	opts   solve.Options
	sim    *noc.Config // non-nil: also replay the routing in the NoC sim
	done   chan solveOutcome
}

// solveOutcome is the worker's answer: the power evaluation of the
// routing (feasible=false when some link exceeds the model's bandwidth),
// the optional NoC replay counters, or the solver's own error. panicked
// marks an error that was a recovered panic on the worker — the handler
// answers 500 and counts it separately from ordinary solve failures.
type solveOutcome struct {
	feasible bool
	bd       power.Breakdown
	sim      *SimResult
	err      error
	panicked bool
}

// shard is one worker of the solve pool: a queue and a goroutine that
// permanently owns its pooled scratch — the dense route.Workspace (with
// the compiled power.Evaluator cached inside it), one LoadTracker per
// mesh geometry seen, and a noc.Workspace for replay requests. Nothing is
// reallocated across requests; a request's cost is the solve itself plus
// the HTTP/JSON rim.
type shard struct {
	jobs   chan *solveJob
	chaos  *Chaos
	panics *atomic.Uint64 // the server's Stats.Panics counter
}

// shardScratch is the worker's permanent state.
type shardScratch struct {
	ws       *route.Workspace
	trackers map[string]*route.LoadTracker
	nocWS    *noc.Workspace
}

func newShardScratch() *shardScratch {
	return &shardScratch{
		ws:       route.NewWorkspace(),
		trackers: make(map[string]*route.LoadTracker),
		nocWS:    noc.NewWorkspace(),
	}
}

// tracker returns the scratch's load tracker for the instance's platform,
// creating it on the first request that uses the topology. The key is the
// topology's canonical Spec string ("mesh:8x8", "torus:8x8", ...), so one
// tracker serves every request on one platform, mesh or not.
func (sc *shardScratch) tracker(in solve.Instance) *route.LoadTracker {
	tp := in.Topology()
	key := tp.Spec()
	t, ok := sc.trackers[key]
	if !ok {
		t = route.NewLoadTrackerTopo(tp)
		sc.trackers[key] = t
	}
	return t
}

// run executes one job on the worker's scratch.
func (sc *shardScratch) run(job *solveJob) solveOutcome {
	opts := job.opts
	opts.Workspace = sc.ws
	r, err := job.solver.Route(job.in, opts)
	if err != nil {
		return solveOutcome{err: err}
	}
	t := sc.tracker(job.in)
	t.SetRouting(r)
	bd, ok := t.Evaluate(job.in.Model)
	out := solveOutcome{feasible: ok, bd: bd}
	if job.sim != nil {
		if !ok {
			out.err = fmt.Errorf("serve: routing infeasible, nothing to simulate")
			return out
		}
		sim, err := sc.nocWS.Simulator(r, job.in.Model, *job.sim)
		if err != nil {
			out.err = err
			return out
		}
		st := sim.Run()
		out.sim = &SimResult{
			Injected:  st.Injected,
			Delivered: st.Delivered,
			Stalled:   st.Stalled,
			InFlight:  st.InFlight,
		}
	}
	return out
}

// runSafe executes one job with panic containment: a panic anywhere in
// the solve (a solver bug, an injected fault) becomes a panicked outcome
// instead of crashing the service. The worker must treat its scratch as
// poisoned afterwards — the panic may have left pooled buffers in an
// arbitrary intermediate state — and rebuild before the next job.
func (sh *shard) runSafe(sc *shardScratch, job *solveJob) (out solveOutcome, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			sh.panics.Add(1)
			out = solveOutcome{
				err:      fmt.Errorf("serve: solve panic: %v\n%s", r, debug.Stack()),
				panicked: true,
			}
			panicked = true
		}
	}()
	if sh.chaos != nil && sh.chaos.SolveStart != nil {
		if err := sh.chaos.SolveStart(job.solver.Name()); err != nil {
			return solveOutcome{err: err}, false
		}
	}
	return sc.run(job), false
}

// loop drains the shard's queue until it closes, answering every job —
// including the ones already queued when shutdown begins, so a graceful
// stop never strands a waiting request. Jobs whose request context
// already died (deadline passed, client gone) are skipped: the waiter
// stopped listening and done is buffered, so neither side blocks. After
// a recovered panic the worker discards its possibly-poisoned scratch
// and rebuilds fresh, so one bad request cannot corrupt the next
// thousand answered from the same pooled state.
func (sh *shard) loop() {
	sc := newShardScratch()
	for job := range sh.jobs {
		if job.ctx != nil && job.ctx.Err() != nil {
			continue
		}
		out, panicked := sh.runSafe(sc, job)
		job.done <- out
		if panicked {
			sc = newShardScratch()
		}
	}
}
