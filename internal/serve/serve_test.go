package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/route"
	"repro/internal/scenario"
	"repro/internal/solve"
)

// countingSolver wraps XY, counting every Route call and optionally
// dawdling — the probe that proves a cache hit re-runs no solver and
// widens the in-flight window for attach tests.
type countingSolver struct{}

var (
	solveCalls atomic.Int64
	solveDelay atomic.Int64 // nanoseconds per solve
)

func (countingSolver) Name() string { return "CXY" }

func (countingSolver) Route(in solve.Instance, opts solve.Options) (route.Routing, error) {
	solveCalls.Add(1)
	if d := solveDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return solve.Func{PolicyName: "CXY", RouteFunc: func(in solve.Instance, opts solve.Options) (route.Routing, error) {
		return heur.RouteWith(heur.XY{}, heur.Instance(in), opts.Workspace)
	}}.Route(in, opts)
}

var registerOnce sync.Once

func registerCounting() {
	registerOnce.Do(func() { solve.Register(countingSolver{}) })
}

// testSpec is the small sweep every cache test shares.
func testSpec() scenario.Spec {
	return scenario.Spec{
		ID:       "serve-test",
		Mesh:     "4x4",
		Source:   "uniform",
		Params:   scenario.Params{WMin: 100, WMax: 900},
		Axis:     scenario.AxisN,
		Points:   []float64{3, 5},
		Trials:   4,
		Seed:     9,
		Policies: []string{"CXY"},
	}
}

// offlineJSONL runs the spec through the offline streaming pipeline —
// the byte-level reference every server response must match.
func offlineJSONL(t *testing.T, sp scenario.Spec, workers int) []byte {
	t.Helper()
	registerCounting()
	var buf bytes.Buffer
	if err := experiments.Sweep(sp, experiments.SweepOptions{Workers: workers}, experiments.NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	registerCounting()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSweep(t *testing.T, url string, sp scenario.Spec) (string, []byte) {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sweep: status %d: %s", resp.StatusCode, data)
	}
	return resp.Header.Get("X-Routed-Cache"), data
}

// TestSweepByteIdentityAcrossCacheStates pins the service contract: the
// streamed response equals the offline Sweep bytes when cold, when
// attached to an in-flight run, and on a warm cache hit — and the warm
// hit runs zero solver calls.
func TestSweepByteIdentityAcrossCacheStates(t *testing.T) {
	sp := testSpec()
	want := offlineJSONL(t, sp, 0)
	_, ts := newTestServer(t, Config{})

	state, data := postSweep(t, ts.URL, sp)
	if state != "miss" {
		t.Errorf("first submission: cache state %q, want miss", state)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("cold response differs from offline sweep:\ngot  %q\nwant %q", data, want)
	}

	before := solveCalls.Load()
	state, data = postSweep(t, ts.URL, sp)
	if state != "hit" {
		t.Errorf("second submission: cache state %q, want hit", state)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("warm response differs from offline sweep")
	}
	if calls := solveCalls.Load() - before; calls != 0 {
		t.Errorf("warm cache hit ran %d solver calls, want 0", calls)
	}
}

// TestSweepByteIdentityAcrossWorkerCounts pins the merge-stage contract
// through the HTTP path: every SweepWorkers setting streams identical
// bytes.
func TestSweepByteIdentityAcrossWorkerCounts(t *testing.T) {
	sp := testSpec()
	want := offlineJSONL(t, sp, 1)
	for _, workers := range []int{1, 2, 3} {
		_, ts := newTestServer(t, Config{SweepWorkers: workers})
		_, data := postSweep(t, ts.URL, sp)
		if !bytes.Equal(data, want) {
			t.Errorf("workers=%d: response differs from serial offline sweep", workers)
		}
	}
}

// TestSingleflightConcurrentSubmissions is the cache's core guarantee
// under race: N concurrent identical submissions execute exactly one
// sweep, and every response carries the same bytes as the offline run.
func TestSingleflightConcurrentSubmissions(t *testing.T) {
	sp := testSpec()
	want := offlineJSONL(t, sp, 0)
	s, ts := newTestServer(t, Config{})

	solveDelay.Store(int64(200 * time.Microsecond))
	defer solveDelay.Store(0)

	const n = 8
	before := solveCalls.Load()
	responses := make([][]byte, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			_, responses[i] = postSweep(t, ts.URL, sp)
		}(i)
	}
	wg.Wait()

	// Exactly one execution: one spec expansion of 2 points x 4 trials,
	// one CXY call per trial.
	wantCalls := int64(len(sp.Points) * sp.Trials)
	if calls := solveCalls.Load() - before; calls != wantCalls {
		t.Errorf("%d concurrent submissions ran %d solver calls, want %d (one sweep)", n, calls, wantCalls)
	}
	if st := s.Stats(); st.SweepsRun != 1 {
		t.Errorf("SweepsRun = %d, want 1", st.SweepsRun)
	}
	for i, data := range responses {
		if !bytes.Equal(data, want) {
			t.Errorf("response %d differs from offline sweep", i)
		}
	}
}

// TestAttachStreamsInFlightRun verifies a second submission joins the
// running sweep (state attach, no second execution) and still receives
// the complete byte-identical stream.
func TestAttachStreamsInFlightRun(t *testing.T) {
	sp := testSpec()
	sp.Trials = 8 // widen the in-flight window
	want := offlineJSONL(t, sp, 0)
	s, ts := newTestServer(t, Config{})

	solveDelay.Store(int64(2 * time.Millisecond))
	defer solveDelay.Store(0)

	first := make(chan []byte, 1)
	go func() {
		_, data := postSweep(t, ts.URL, sp)
		first <- data
	}()

	// Wait until the run is registered in flight, then attach.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().CacheMisses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(time.Millisecond)
	}
	state, data := postSweep(t, ts.URL, sp)
	if state != "attach" && state != "hit" {
		t.Errorf("second submission: cache state %q, want attach (or hit if the run outpaced us)", state)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("attached response differs from offline sweep")
	}
	if got := <-first; !bytes.Equal(got, want) {
		t.Errorf("first response differs from offline sweep")
	}
	if st := s.Stats(); st.SweepsRun != 1 {
		t.Errorf("SweepsRun = %d, want 1", st.SweepsRun)
	}
}

// TestCacheLRUEviction bounds the cache: the oldest completed sweep is
// evicted and a resubmission is a fresh miss.
func TestCacheLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 2})
	specs := make([]scenario.Spec, 3)
	for i := range specs {
		specs[i] = testSpec()
		specs[i].Seed = int64(100 + i) // three distinct hashes
		postSweep(t, ts.URL, specs[i])
	}
	st := s.Stats()
	if st.CacheEvictions != 1 || st.CacheEntries != 2 {
		t.Errorf("after 3 sweeps with cap 2: evictions=%d entries=%d, want 1 and 2", st.CacheEvictions, st.CacheEntries)
	}
	if state, _ := postSweep(t, ts.URL, specs[0]); state != "miss" {
		t.Errorf("evicted spec resubmission: state %q, want miss", state)
	}
	if state, _ := postSweep(t, ts.URL, specs[2]); state != "hit" {
		t.Errorf("recent spec resubmission: state %q, want hit", state)
	}
}

// TestSweepRejectsBadSpecs covers the admission guards: malformed specs,
// unknown policies, and the MaxTrials latency guardrail all 400 before
// any cache entry exists.
func TestSweepRejectsBadSpecs(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxTrials: 10})
	for name, body := range map[string]string{
		"unknown field":  `{"sourcee":"uniform"}`,
		"unknown source": `{"source":"nope"}`,
		"unknown policy": `{"source":"uniform","params":{"wmin":1,"wmax":2},"policies":["NOPE"]}`,
		"trials cap":     `{"source":"uniform","params":{"wmin":1,"wmax":2},"trials":11}`,
	} {
		resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if st := s.Stats(); st.CacheMisses != 0 || st.SweepsRun != 0 {
		t.Errorf("rejected specs touched the cache: %+v", st)
	}
}

func postSolve(t *testing.T, url string, req SolveRequest) (*http.Response, SolveResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// solveTestComms is a small feasible set on the (1-based) 4x4 mesh.
func solveTestComms() []SolveComm {
	return []SolveComm{
		{ID: 0, Src: [2]int{1, 1}, Dst: [2]int{4, 3}, Rate: 800},
		{ID: 1, Src: [2]int{2, 4}, Dst: [2]int{3, 1}, Rate: 600},
		{ID: 2, Src: [2]int{4, 4}, Dst: [2]int{1, 2}, Rate: 400},
	}
}

// TestSolveMatchesDirectEvaluation checks the endpoint against an
// in-process solve+evaluate of the same instance.
func TestSolveMatchesDirectEvaluation(t *testing.T) {
	_, ts := newTestServer(t, Config{SolveShards: 2})
	req := SolveRequest{Mesh: "4x4", Policy: "xyi", Comms: solveTestComms()}
	resp, got := postSolve(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Policy != "XYI" {
		t.Errorf("policy echoed as %q, want canonical XYI", got.Policy)
	}

	in := solveInstance(t, req)
	r, err := solve.Route("XYI", in, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := route.Evaluate(r, in.Model)
	if got.Feasible != want.Feasible {
		t.Errorf("feasible = %v, want %v", got.Feasible, want.Feasible)
	}
	if diff := got.TotalMW - want.Power.Total(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("total power %g, want %g", got.TotalMW, want.Power.Total())
	}
}

// solveInstance rebuilds the solve.Instance the handler derives from the
// request, for offline comparison.
func solveInstance(t *testing.T, req SolveRequest) solve.Instance {
	t.Helper()
	p, q, err := scenario.ParseMesh(req.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	model, err := modelFor(req.Power)
	if err != nil {
		t.Fatal(err)
	}
	in := solve.Instance{Mesh: mesh.MustNew(p, q), Model: model}
	for _, c := range req.Comms {
		in.Comms = append(in.Comms, comm.Comm{
			ID:   c.ID,
			Src:  mesh.Coord{U: c.Src[0], V: c.Src[1]},
			Dst:  mesh.Coord{U: c.Dst[0], V: c.Dst[1]},
			Rate: c.Rate,
		})
	}
	return in
}

// TestSolveWithSimReplay exercises the optional NoC replay: the
// accounting identity must hold on the reported counters.
func TestSolveWithSimReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SolveRequest{
		Mesh: "4x4", Policy: "PR", Comms: solveTestComms(),
		Sim: &SimRequest{HorizonUS: 200, WarmupUS: 50, Switching: "ct"},
	}
	resp, got := postSolve(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Sim == nil {
		t.Fatal("no sim result returned")
	}
	if got.Sim.Injected == 0 {
		t.Error("sim injected nothing over 200us")
	}
	if got.Sim.Injected != got.Sim.Delivered+got.Sim.Stalled+got.Sim.InFlight {
		t.Errorf("accounting identity violated: %+v", got.Sim)
	}
}

// TestSolveRejectsBadRequests covers the 400 paths.
func TestSolveRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, req := range map[string]SolveRequest{
		"unknown policy": {Policy: "NOPE", Comms: solveTestComms()},
		"bad mesh":       {Mesh: "0x9", Policy: "XY", Comms: solveTestComms()},
		"bad power":      {Power: "magic", Policy: "XY", Comms: solveTestComms()},
		"bad switching":  {Policy: "XY", Comms: solveTestComms(), Sim: &SimRequest{Switching: "warp"}},
		"zero rate":      {Policy: "XY", Comms: []SolveComm{{Src: [2]int{1, 1}, Dst: [2]int{2, 2}}}},
		"off-mesh coord": {Policy: "XY", Comms: []SolveComm{{Src: [2]int{0, 0}, Dst: [2]int{1, 1}, Rate: 5}}},
	} {
		resp, _ := postSolve(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// blockingSolver parks until released — the tool that fills the solve
// queues deterministically for the backpressure test.
type blockingSolver struct{}

var (
	blockStarted = make(chan struct{}, 64)
	blockRelease = make(chan struct{})
	blockOnce    sync.Once
)

func (blockingSolver) Name() string { return "BLOCKTEST" }

func (blockingSolver) Route(in solve.Instance, opts solve.Options) (route.Routing, error) {
	blockStarted <- struct{}{}
	<-blockRelease
	return heur.RouteWith(heur.XY{}, heur.Instance(in), opts.Workspace)
}

// TestSolveBackpressure503 pins the latency guardrail: with one shard,
// a one-deep queue, a parked worker and a full queue, the next request
// is shed immediately with 503 instead of waiting.
func TestSolveBackpressure503(t *testing.T) {
	blockOnce.Do(func() { solve.Register(blockingSolver{}) })
	s, ts := newTestServer(t, Config{SolveShards: 1, ShardQueue: 1})
	req := SolveRequest{Mesh: "4x4", Policy: "BLOCKTEST", Comms: solveTestComms()}

	results := make(chan int, 1)
	go func() { // occupies the worker
		resp, _ := postSolve(t, ts.URL, req)
		results <- resp.StatusCode
	}()
	<-blockStarted

	// Fill the one-deep queue deterministically, below the HTTP rim.
	xy, err := solve.Lookup("XY")
	if err != nil {
		t.Fatal(err)
	}
	filler := &solveJob{
		in:     solveInstance(t, SolveRequest{Mesh: "4x4", Comms: solveTestComms()}),
		solver: xy,
		done:   make(chan solveOutcome, 1),
	}
	if !s.enqueue(filler) {
		t.Fatal("queue full before the filler job")
	}

	// Worker parked, queue full: the next request is shed immediately.
	resp, _ := postSolve(t, ts.URL, SolveRequest{Mesh: "4x4", Policy: "XY", Comms: solveTestComms()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request against a full queue: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After")
	}
	if s.Stats().SolveRejects == 0 {
		t.Error("no rejects counted")
	}

	close(blockRelease)
	if st := <-results; st != http.StatusOK {
		t.Errorf("parked request finished with %d", st)
	}
	if out := <-filler.done; out.err != nil || !out.feasible {
		t.Errorf("queued job drained badly: %+v", out)
	}
}

// TestCloseDrainsQueuedSolves: jobs already queued when Close begins are
// still answered.
func TestCloseDrainsQueuedSolves(t *testing.T) {
	registerCounting()
	s := New(Config{SolveShards: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postSolve(t, ts.URL, SolveRequest{Mesh: "4x4", Policy: "XY", Comms: solveTestComms()})
			codes <- resp.StatusCode
		}()
	}
	wg.Wait() // all handlers done (httptest serves them concurrently)
	s.Close()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("solve during normal operation: status %d", code)
		}
	}
	// After Close the server sheds instead of deadlocking.
	resp, _ := postSolve(t, ts.URL, SolveRequest{Mesh: "4x4", Policy: "XY", Comms: solveTestComms()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("solve after Close: status %d, want 503", resp.StatusCode)
	}
}

// TestStatsEndpoint sanity-checks the counters surface.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postSweep(t, ts.URL, testSpec())
	postSweep(t, ts.URL, testSpec())
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SweepsRun != 1 || st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("stats after miss+hit: %+v", st)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
}
