package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// LoadConfig drives RunLoad: Clients concurrent workers issue Requests
// total requests, each worker pulling the next request index from a
// shared counter until the quota is spent.
type LoadConfig struct {
	Clients  int
	Requests int
}

// LoadReport aggregates one load run: counts, wall-clock throughput, and
// the nearest-rank latency percentiles of the individual requests. All
// durations are nanoseconds so the report marshals portably.
type LoadReport struct {
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	ElapsedNS     float64 `json:"elapsed_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50NS         float64 `json:"p50_ns"`
	P99NS         float64 `json:"p99_ns"`
}

// RunLoad hammers do from cfg.Clients concurrent workers until
// cfg.Requests calls have been issued, timing each call. do receives the
// worker id and the global request index; a non-nil return counts as an
// error (its latency still recorded — a fast failure is still a
// response). This is the shared core of the routeload binary and the
// serve benchmark emitter.
func RunLoad(cfg LoadConfig, do func(worker, req int) error) LoadReport {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.Requests < 1 {
		cfg.Requests = 1
	}
	perWorker := make([][]float64, cfg.Clients)
	var errs atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]float64, 0, cfg.Requests/cfg.Clients+1)
			for {
				req := int(next.Add(1)) - 1
				if req >= cfg.Requests {
					break
				}
				t0 := time.Now()
				err := do(w, req)
				lat = append(lat, float64(time.Since(t0)))
				if err != nil {
					errs.Add(1)
				}
			}
			perWorker[w] = lat
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	for _, lat := range perWorker {
		all = append(all, lat...)
	}
	rep := LoadReport{
		Clients:   cfg.Clients,
		Requests:  cfg.Requests,
		Errors:    int(errs.Load()),
		ElapsedNS: float64(elapsed),
		P50NS:     stats.Percentile(all, 50),
		P99NS:     stats.Percentile(all, 99),
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(cfg.Requests) / elapsed.Seconds()
	}
	return rep
}
