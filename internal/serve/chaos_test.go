package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/heur"
	"repro/internal/route"
	"repro/internal/scenario"
	"repro/internal/solve"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSolvePanicContainment pins the shard panic policy: an injected
// panic answers that one request with 500 and counts in Stats.Panics,
// and the SAME single shard answers the next request from a rebuilt
// scratch — one poisoned request cannot corrupt its successors.
func TestSolvePanicContainment(t *testing.T) {
	var bomb atomic.Bool
	s, ts := newTestServer(t, Config{SolveShards: 1, Chaos: &Chaos{
		SolveStart: func(string) error {
			if bomb.CompareAndSwap(true, false) {
				panic("injected solve fault")
			}
			return nil
		},
	}})
	req := SolveRequest{Mesh: "4x4", Policy: "XY", Comms: solveTestComms()}

	bomb.Store(true)
	resp, _ := postSolve(t, ts.URL, req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking solve: status %d, want 500", resp.StatusCode)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Errorf("Panics = %d, want 1", st.Panics)
	}

	// The lone shard worker survived and rebuilt; repeated requests all
	// succeed on the fresh scratch.
	for i := 0; i < 3; i++ {
		resp, out := postSolve(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK || out.Error != "" || !out.Feasible {
			t.Fatalf("request %d after the panic: status %d, out %+v", i, resp.StatusCode, out)
		}
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Errorf("Panics after recovery = %d, want still 1", st.Panics)
	}
}

// TestChaosSolveErrorIsContained: an injected solver error fails that
// one request the way a real solver failure would — in the response
// body, not the transport — and the shard keeps serving.
func TestChaosSolveErrorIsContained(t *testing.T) {
	var bomb atomic.Bool
	_, ts := newTestServer(t, Config{SolveShards: 1, Chaos: &Chaos{
		SolveStart: func(string) error {
			if bomb.CompareAndSwap(true, false) {
				return errors.New("injected solver failure")
			}
			return nil
		},
	}})
	req := SolveRequest{Mesh: "4x4", Policy: "XY", Comms: solveTestComms()}

	bomb.Store(true)
	resp, out := postSolve(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("injected error: status %d, want 200 with the error in-band", resp.StatusCode)
	}
	if out.Error != "injected solver failure" {
		t.Errorf("error field %q", out.Error)
	}
	if resp, out := postSolve(t, ts.URL, req); resp.StatusCode != http.StatusOK || out.Error != "" {
		t.Errorf("next request on the same shard: status %d, error %q", resp.StatusCode, out.Error)
	}
}

// stallSolver spins until its stop poll fires — the tool that makes a
// deadline observable mid-solve.
type stallSolver struct{}

func (stallSolver) Name() string { return "STALLTEST" }

func (stallSolver) Route(in solve.Instance, opts solve.Options) (route.Routing, error) {
	for i := 0; i < 100_000; i++ {
		if opts.Stop != nil && opts.Stop() {
			return route.Routing{}, solve.ErrStopped
		}
		time.Sleep(time.Millisecond)
	}
	return heur.RouteWith(heur.XY{}, heur.Instance(in), opts.Workspace)
}

var stallOnce = func() func() { // registered lazily, once, like the other test solvers
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			solve.Register(stallSolver{})
		}
	}
}()

// TestSolveTimeout504 pins the deadline path: a solve that outlives
// SolveTimeout answers 504, counts in Stats.Timeouts, and the deadline
// reaches the solver's stop poll so the shard frees up for the next
// request instead of staying occupied.
func TestSolveTimeout504(t *testing.T) {
	stallOnce()
	s, ts := newTestServer(t, Config{SolveShards: 1, SolveTimeout: 50 * time.Millisecond})

	resp, _ := postSolve(t, ts.URL, SolveRequest{Mesh: "4x4", Policy: "STALLTEST", Comms: solveTestComms()})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled solve: status %d, want 504", resp.StatusCode)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
	// The stop poll released the lone shard: a fast policy answers well
	// within the deadline.
	resp, out := postSolve(t, ts.URL, SolveRequest{Mesh: "4x4", Policy: "XY", Comms: solveTestComms()})
	if resp.StatusCode != http.StatusOK || out.Error != "" {
		t.Errorf("fast solve after the timeout: status %d, error %q", resp.StatusCode, out.Error)
	}
}

// startSweep posts the spec with a cancellable request and returns the
// live response; the caller reads or cancels it.
func startSweep(t *testing.T, ctx context.Context, url string, sp scenario.Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSweepSoloDisconnectCancelsRun: the solo submitter of a sweep
// disconnecting mid-stream cancels the run — engine workers stop pulling
// trials well before the sweep would complete (observable through the
// chaos latency hook's trial counter) — and the abandoned partial run is
// never cached, so a resubmission is a fresh miss.
func TestSweepSoloDisconnectCancelsRun(t *testing.T) {
	sp := testSpec()
	sp.Trials = 64 // long enough that cancellation lands mid-run
	var trials atomic.Int64
	s, ts := newTestServer(t, Config{Chaos: &Chaos{TrialStart: func(_, _ int) {
		trials.Add(1)
		time.Sleep(2 * time.Millisecond)
	}}})

	ctx, cancel := context.WithCancel(context.Background())
	resp := startSweep(t, ctx, ts.URL, sp)
	defer resp.Body.Close()
	waitFor(t, "the run to start", func() bool { return trials.Load() > 0 })
	cancel()

	// The run goroutine observes the cancel, abandons the entry, and
	// exits; Wait returns only after that cleanup.
	s.sweeps.Wait()
	ran := trials.Load()
	total := int64(len(sp.Points) * sp.Trials)
	if ran >= total {
		t.Errorf("cancelled sweep ran all %d trials", total)
	}
	if st := s.Stats(); st.Canceled == 0 {
		t.Errorf("no cancellation counted: %+v", st)
	}

	// Never cached: the resubmission wins a fresh singleflight slot and,
	// undisturbed this time, streams the complete result.
	state, data := postSweep(t, ts.URL, sp)
	if state != "miss" {
		t.Errorf("resubmission after cancel: state %q, want miss", state)
	}
	if want := offlineJSONL(t, sp, 0); !bytes.Equal(data, want) {
		t.Error("post-cancel rerun differs from the offline sweep")
	}
}

// TestAttachedReaderSurvivesOtherLeaving: with two attached streams, one
// leaving does NOT cancel the run — the refcount keeps it alive and the
// remaining reader receives the complete byte-identical stream from the
// single execution.
func TestAttachedReaderSurvivesOtherLeaving(t *testing.T) {
	sp := testSpec()
	sp.Trials = 32
	want := offlineJSONL(t, sp, 0)
	s, ts := newTestServer(t, Config{Chaos: &Chaos{TrialStart: func(_, _ int) {
		time.Sleep(2 * time.Millisecond)
	}}})

	ctx, cancel := context.WithCancel(context.Background())
	first := startSweep(t, ctx, ts.URL, sp)
	defer first.Body.Close()
	waitFor(t, "the run to register", func() bool { return s.Stats().CacheMisses == 1 })

	second := make(chan []byte, 1)
	go func() {
		_, data := postSweep(t, ts.URL, sp)
		second <- data
	}()
	waitFor(t, "the second stream to attach", func() bool {
		st := s.Stats()
		return st.CacheAttaches >= 1 || st.CacheHits >= 1
	})

	cancel() // the first reader leaves; the second holds the run alive
	data := <-second
	if !bytes.Equal(data, want) {
		t.Error("surviving reader's stream differs from the offline sweep")
	}
	if st := s.Stats(); st.SweepsRun != 1 {
		t.Errorf("SweepsRun = %d, want 1", st.SweepsRun)
	}
}

// TestSweepWorkerPanicContainment: a panic on a sweep worker (injected
// through the trial hook) ends the stream with a terminal in-band error
// record, counts in Stats.Panics, is never cached — and the server keeps
// serving: the unarmed resubmission runs fresh and streams the full
// result.
func TestSweepWorkerPanicContainment(t *testing.T) {
	sp := testSpec()
	var bomb atomic.Bool
	s, ts := newTestServer(t, Config{Chaos: &Chaos{TrialStart: func(_, _ int) {
		if bomb.CompareAndSwap(true, false) {
			panic("injected trial fault")
		}
	}}})

	bomb.Store(true)
	state, data := postSweep(t, ts.URL, sp)
	if state != "miss" {
		t.Fatalf("first submission: state %q, want miss", state)
	}
	if !bytes.Contains(data, []byte(`"type":"error"`)) {
		t.Errorf("failed sweep stream carries no terminal error record: %q", data)
	}
	waitFor(t, "the panic to be counted", func() bool { return s.Stats().Panics >= 1 })

	state, data = postSweep(t, ts.URL, sp)
	if state != "miss" {
		t.Errorf("resubmission after the panic: state %q, want miss (failures are never cached)", state)
	}
	if want := offlineJSONL(t, sp, 0); !bytes.Equal(data, want) {
		t.Error("post-panic rerun differs from the offline sweep")
	}
}

// TestSweepTimeoutEndsRun: a sweep outliving SweepTimeout ends with a
// terminal error record, counts in Stats.Timeouts, and is not cached.
func TestSweepTimeoutEndsRun(t *testing.T) {
	sp := testSpec()
	sp.Trials = 64
	s, ts := newTestServer(t, Config{SweepTimeout: 50 * time.Millisecond,
		Chaos: &Chaos{TrialStart: func(_, _ int) { time.Sleep(2 * time.Millisecond) }}})

	_, data := postSweep(t, ts.URL, sp)
	if !bytes.Contains(data, []byte(`"type":"error"`)) {
		t.Errorf("timed-out sweep stream carries no terminal error record: %q", data)
	}
	st := s.Stats()
	if st.Timeouts == 0 {
		t.Errorf("no timeout counted: %+v", st)
	}
	if st.CacheEntries != 0 {
		t.Errorf("timed-out partial run was cached: %+v", st)
	}
}

// TestChaosSweepStartError: an injected pre-run failure produces a
// terminal error record, never caches, and the next submission runs
// clean.
func TestChaosSweepStartError(t *testing.T) {
	sp := testSpec()
	var bomb atomic.Bool
	_, ts := newTestServer(t, Config{Chaos: &Chaos{SweepStart: func(hash string) error {
		if bomb.CompareAndSwap(true, false) {
			return fmt.Errorf("injected sweep failure for %s", hash)
		}
		return nil
	}}})

	bomb.Store(true)
	_, data := postSweep(t, ts.URL, sp)
	if !bytes.Contains(data, []byte("injected sweep failure")) {
		t.Errorf("stream carries no injected failure record: %q", data)
	}
	state, data := postSweep(t, ts.URL, sp)
	if state != "miss" {
		t.Errorf("resubmission: state %q, want miss", state)
	}
	if want := offlineJSONL(t, sp, 0); !bytes.Equal(data, want) {
		t.Error("post-failure rerun differs from the offline sweep")
	}
}

// TestReadyzFlipsOnDrain: readiness is distinct from liveness — a
// draining server answers /readyz 503 while /healthz stays 200.
func TestReadyzFlipsOnDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz while serving: %d, want 200", code)
	}
	s.BeginDrain()
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200 (drain is not death)", code)
	}
}

// TestCloseLeaksNoGoroutines: after a mix of completed and cancelled
// work, Close returns with every server goroutine — shard workers, sweep
// runners, attached-stream wakers — gone.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	registerCounting()
	before := runtime.NumGoroutine()

	s := New(Config{SolveShards: 4, Chaos: &Chaos{TrialStart: func(_, _ int) {
		time.Sleep(time.Millisecond)
	}}})
	ts := httptest.NewServer(s.Handler())

	// A completed solve, a completed sweep, and a cancelled solo sweep.
	resp, out := postSolve(t, ts.URL, SolveRequest{Mesh: "4x4", Policy: "XY", Comms: solveTestComms()})
	if resp.StatusCode != http.StatusOK || out.Error != "" {
		t.Fatalf("solve: %d %q", resp.StatusCode, out.Error)
	}
	postSweep(t, ts.URL, testSpec())
	long := testSpec()
	long.Trials = 64
	ctx, cancel := context.WithCancel(context.Background())
	live := startSweep(t, ctx, ts.URL, long)
	buf := make([]byte, 1)
	if _, err := live.Body.Read(buf); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	cancel()
	live.Body.Close()

	ts.Close()
	s.Close()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines after Close: %d, was %d before the server existed", g, before)
	}
}
