package serve

// Chaos is the fault-injection harness: a set of optional hooks the
// server calls at well-defined points so tests can force the failure
// modes that are hard to reach organically — solver errors, latency
// spikes, panics on pooled workers — and assert the containment
// contract: the server keeps answering, the Stats counters account for
// every failure, and no pooled state poisoned by a panic is ever reused.
// All hooks may be called concurrently and must be safe for that; a nil
// hook is skipped. Chaos exists for tests and controlled fault drills,
// never for production configs.
type Chaos struct {
	// SolveStart runs on the shard worker immediately before each solve,
	// with the request's policy name. Returning an error fails that one
	// request the way a solver failure would (the response carries the
	// error, the shard lives on); sleeping injects queue latency;
	// panicking exercises the shard's panic containment — the request
	// answers 500, Stats.Panics increments, and the worker rebuilds its
	// scratch before touching the next job.
	SolveStart func(policy string) error
	// SweepStart runs once per cache-miss sweep execution, with the
	// spec's content hash, before the engine starts. Returning an error
	// fails the run (terminal error record, never cached).
	SweepStart func(hash string) error
	// TrialStart is threaded into the sweep engine as
	// experiments.SweepOptions.TrialStart: it runs on a sweep worker
	// before every (point, trial) evaluation. Sleeping here slows the
	// sweep deterministically (how the tests widen the cancellation
	// window); panicking is contained like a solver panic.
	TrialStart func(point, trial int)
}
