// Package core is the public facade of the library: a single entry point
// tying together the mesh platform, the power model, communication sets
// and the routing policies of the paper. Examples and command-line tools
// consume this package; the specialized packages underneath remain
// available for fine-grained use.
//
// Typical usage:
//
//	inst, err := core.NewInstance(8, 8, core.KimHorowitzModel(), comms)
//	sol, err := inst.Solve("PR")
//	fmt.Println(sol.Report())
package core

import (
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/exact"
	"repro/internal/heur"
	"repro/internal/mesh"
	_ "repro/internal/multipath" // registers 2MP and 4MP
	"repro/internal/noc"
	_ "repro/internal/optflow" // registers MAXMP
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
	"repro/internal/tables"
	_ "repro/internal/tabroute" // registers TABLE
)

// Options re-exports the registry's policy knobs (RNG seed, iteration
// budgets, split counts, processing order) for SolveWith callers.
type Options = solve.Options

// Instance is a routing problem: a mesh CMP, a link power model, and the
// communications to route.
type Instance struct {
	Mesh  *mesh.Mesh
	Model power.Model
	Comms comm.Set
}

// NewInstance builds and validates an instance on a p×q mesh.
func NewInstance(p, q int, model power.Model, comms comm.Set) (*Instance, error) {
	m, err := mesh.New(p, q)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Mesh: m, Model: model, Comms: comms}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// Validate checks the instance.
func (in *Instance) Validate() error {
	if err := in.Model.Validate(); err != nil {
		return err
	}
	return in.Comms.Validate(in.Mesh)
}

// Policies returns every registered routing policy name, sorted: the
// paper's heuristics, BEST, SA, OPT (exact branch-and-bound 1-MP, small
// instances only), equal-split multi-path policies ("2MP", "4MP"), and
// MAXMP (the Frank–Wolfe optimal unrestricted multi-path routing,
// materialized by flow decomposition).
func Policies() []string { return solve.Policies() }

// Solution is a routed and evaluated instance.
type Solution struct {
	Policy   string
	Instance *Instance
	Routing  route.Routing
	Result   route.Result
}

// Solve routes the instance with the named policy (case-insensitive,
// resolved through the solve registry) under default options.
func (in *Instance) Solve(policy string) (*Solution, error) {
	return in.SolveWith(policy, Options{})
}

// SolveWith routes the instance with the named policy, passing the options
// through to the policy (seeds, iteration budgets, split counts, orders).
//
// Callers solving many instances on one goroutine can set
// Options.Workspace (a route.NewWorkspace()) to reuse dense solver scratch
// across calls; the returned Solution's Routing then aliases workspace
// memory and is only valid until the next workspace-reusing call — keep it
// longer with Routing.Clone. Without a workspace every solve allocates
// fresh, and results are identical either way.
func (in *Instance) SolveWith(policy string, opts Options) (*Solution, error) {
	s, err := solve.Lookup(policy)
	if err != nil {
		return nil, err
	}
	r, err := s.Route(solve.Instance{Mesh: in.Mesh, Model: in.Model, Comms: in.Comms}, opts)
	if err != nil {
		return nil, err
	}
	return in.solution(s.Name(), r), nil
}

func (in *Instance) solution(policy string, r route.Routing) *Solution {
	return &Solution{Policy: policy, Instance: in, Routing: r, Result: route.Evaluate(r, in.Model)}
}

// SolveAll routes the instance with every single-path heuristic plus BEST
// and returns the solutions keyed by policy name.
func (in *Instance) SolveAll() (map[string]*Solution, error) {
	out := make(map[string]*Solution)
	for _, h := range heur.All() {
		sol, err := in.Solve(h.Name())
		if err != nil {
			return nil, err
		}
		out[h.Name()] = sol
	}
	sol, err := in.Solve("BEST")
	if err != nil {
		return nil, err
	}
	out["BEST"] = sol
	return out, nil
}

// LowerBound returns the routing-independent ideal-sharing dynamic-power
// lower bound for the instance (Section 4's proof machinery).
func (in *Instance) LowerBound() float64 {
	return exact.IdealShareLowerBound(in.Mesh, in.Model, in.Comms)
}

// Feasible reports whether the solution satisfies every link bandwidth.
func (s *Solution) Feasible() bool { return s.Result.Feasible }

// PowerMW returns the total dissipated power (meaningful when feasible).
func (s *Solution) PowerMW() float64 { return s.Result.Power.Total() }

// Report renders a human-readable summary of the solution.
func (s *Solution) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s on %v, %d communications\n",
		s.Policy, s.Instance.Mesh, len(s.Instance.Comms))
	if !s.Result.Feasible {
		fmt.Fprintf(&b, "  INFEASIBLE: %v (max load %.1f, top bandwidth %.1f)\n",
			s.Result.Err, s.Result.MaxLoad(), s.Instance.Model.MaxBW)
		return b.String()
	}
	fmt.Fprintf(&b, "  power: %.3f mW (static %.3f + dynamic %.3f), %d active links\n",
		s.Result.Power.Total(), s.Result.Power.Static, s.Result.Power.Dynamic,
		s.Result.Power.ActiveLinks)
	fmt.Fprintf(&b, "  max link load: %.1f / %.1f Mb/s\n", s.Result.MaxLoad(), s.Instance.Model.MaxBW)
	fmt.Fprintf(&b, "  ideal-share lower bound: %.3f mW (dynamic only)\n", s.Instance.LowerBound())
	return b.String()
}

// Heatmap renders the solution's link loads as an ASCII mesh map.
func (s *Solution) Heatmap() string {
	return tables.Heatmap(s.Instance.Mesh, s.Result.Loads, s.Instance.Model.MaxBW)
}

// Simulate replays the solution in the discrete-event NoC simulator and
// returns its statistics. Infeasible solutions cannot be simulated (no
// DVFS operating point exists) and return the underlying error.
func (s *Solution) Simulate(cfg noc.Config) (*noc.Stats, error) {
	sim, err := noc.New(s.Routing, s.Instance.Model, cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(), nil
}

// PathsByComm returns the routed paths grouped by communication ID, in ID
// order, for inspection or table-based router configuration.
func (s *Solution) PathsByComm() map[int][]route.Path {
	out := make(map[int][]route.Path)
	for _, f := range s.Routing.Flows {
		out[f.Comm.ID] = append(out[f.Comm.ID], f.Path)
	}
	return out
}

// KimHorowitzModel returns the paper's discrete Section 6 model.
func KimHorowitzModel() power.Model { return power.KimHorowitz() }

// ContinuousModel returns the idealized continuous-frequency variant.
func ContinuousModel() power.Model { return power.KimHorowitzContinuous() }
