// Package core is the public facade of the library: a single entry point
// tying together the mesh platform, the power model, communication sets
// and the routing policies of the paper. Examples and command-line tools
// consume this package; the specialized packages underneath remain
// available for fine-grained use.
//
// Typical usage:
//
//	inst, err := core.NewInstance(8, 8, core.KimHorowitzModel(), comms)
//	sol, err := inst.Solve("PR")
//	fmt.Println(sol.Report())
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/comm"
	"repro/internal/exact"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/multipath"
	"repro/internal/noc"
	"repro/internal/optflow"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/tables"
)

// Instance is a routing problem: a mesh CMP, a link power model, and the
// communications to route.
type Instance struct {
	Mesh  *mesh.Mesh
	Model power.Model
	Comms comm.Set
}

// NewInstance builds and validates an instance on a p×q mesh.
func NewInstance(p, q int, model power.Model, comms comm.Set) (*Instance, error) {
	m, err := mesh.New(p, q)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Mesh: m, Model: model, Comms: comms}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// Validate checks the instance.
func (in *Instance) Validate() error {
	if err := in.Model.Validate(); err != nil {
		return err
	}
	return in.Comms.Validate(in.Mesh)
}

// Policies returns the available routing policy names: the paper's
// heuristics, BEST, OPT (exact branch-and-bound 1-MP, small instances
// only), equal-split multi-path policies ("2MP", "4MP"), and MAXMP (the
// Frank–Wolfe optimal unrestricted multi-path routing, materialized by
// flow decomposition).
func Policies() []string {
	names := []string{"OPT", "2MP", "4MP", "MAXMP", "SA"}
	for _, h := range heur.All() {
		names = append(names, h.Name())
	}
	names = append(names, "BEST")
	sort.Strings(names)
	return names
}

// Solution is a routed and evaluated instance.
type Solution struct {
	Policy   string
	Instance *Instance
	Routing  route.Routing
	Result   route.Result
}

// Solve routes the instance with the named policy.
func (in *Instance) Solve(policy string) (*Solution, error) {
	name := strings.ToUpper(policy)
	switch name {
	case "OPT":
		r, ok, err := exact.Solve(in.Mesh, in.Model, in.Comms)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("core: no feasible single-path routing exists")
		}
		return in.solution(name, r), nil
	case "2MP", "4MP":
		s := 2
		if name == "4MP" {
			s = 4
		}
		r, err := multipath.EqualSplit{S: s, Inner: heur.TB{}}.Route(in.Mesh, in.Model, in.Comms)
		if err != nil {
			return nil, err
		}
		return in.solution(name, r), nil
	case "MAXMP":
		r, err := in.solveMaxMP()
		if err != nil {
			return nil, err
		}
		return in.solution(name, r), nil
	case "SA":
		r, err := (heur.SA{}).Route(heur.Instance{Mesh: in.Mesh, Model: in.Model, Comms: in.Comms})
		if err != nil {
			return nil, err
		}
		return in.solution(name, r), nil
	default:
		h, err := heur.ByName(name)
		if err != nil {
			return nil, err
		}
		res, err := heur.Solve(h, heur.Instance{Mesh: in.Mesh, Model: in.Model, Comms: in.Comms})
		if err != nil {
			return nil, err
		}
		return &Solution{Policy: name, Instance: in, Routing: res.Routing, Result: res}, nil
	}
}

func (in *Instance) solution(policy string, r route.Routing) *Solution {
	return &Solution{Policy: policy, Instance: in, Routing: r, Result: route.Evaluate(r, in.Model)}
}

// solveMaxMP computes the continuous-optimal max-MP fractional routing
// with Frank–Wolfe and materializes it as explicit per-path flows. The
// final evaluation still applies the instance's own (possibly discrete)
// model, so quantization costs appear in the reported power.
func (in *Instance) solveMaxMP() (route.Routing, error) {
	sol, err := optflow.Solve(in.Mesh, in.Model, in.Comms, optflow.Options{})
	if err != nil {
		return route.Routing{}, err
	}
	var flows []route.Flow
	for _, c := range in.Comms {
		field := multipath.NewFlowField(in.Mesh, c.Src, c.Dst, c.Rate)
		for id, v := range sol.PerComm[c.ID] {
			field.Add(in.Mesh.LinkByID(id), v)
		}
		part, err := field.Decompose(c.ID)
		if err != nil {
			return route.Routing{}, fmt.Errorf("core: decomposing comm %d: %w", c.ID, err)
		}
		flows = append(flows, part...)
	}
	return route.Routing{Mesh: in.Mesh, Flows: flows}, nil
}

// SolveAll routes the instance with every single-path heuristic plus BEST
// and returns the solutions keyed by policy name.
func (in *Instance) SolveAll() (map[string]*Solution, error) {
	out := make(map[string]*Solution)
	for _, h := range heur.All() {
		sol, err := in.Solve(h.Name())
		if err != nil {
			return nil, err
		}
		out[h.Name()] = sol
	}
	sol, err := in.Solve("BEST")
	if err != nil {
		return nil, err
	}
	out["BEST"] = sol
	return out, nil
}

// LowerBound returns the routing-independent ideal-sharing dynamic-power
// lower bound for the instance (Section 4's proof machinery).
func (in *Instance) LowerBound() float64 {
	return exact.IdealShareLowerBound(in.Mesh, in.Model, in.Comms)
}

// Feasible reports whether the solution satisfies every link bandwidth.
func (s *Solution) Feasible() bool { return s.Result.Feasible }

// PowerMW returns the total dissipated power (meaningful when feasible).
func (s *Solution) PowerMW() float64 { return s.Result.Power.Total() }

// Report renders a human-readable summary of the solution.
func (s *Solution) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s on %v, %d communications\n",
		s.Policy, s.Instance.Mesh, len(s.Instance.Comms))
	if !s.Result.Feasible {
		fmt.Fprintf(&b, "  INFEASIBLE: %v (max load %.1f, top bandwidth %.1f)\n",
			s.Result.Err, s.Result.MaxLoad(), s.Instance.Model.MaxBW)
		return b.String()
	}
	fmt.Fprintf(&b, "  power: %.3f mW (static %.3f + dynamic %.3f), %d active links\n",
		s.Result.Power.Total(), s.Result.Power.Static, s.Result.Power.Dynamic,
		s.Result.Power.ActiveLinks)
	fmt.Fprintf(&b, "  max link load: %.1f / %.1f Mb/s\n", s.Result.MaxLoad(), s.Instance.Model.MaxBW)
	fmt.Fprintf(&b, "  ideal-share lower bound: %.3f mW (dynamic only)\n", s.Instance.LowerBound())
	return b.String()
}

// Heatmap renders the solution's link loads as an ASCII mesh map.
func (s *Solution) Heatmap() string {
	return tables.Heatmap(s.Instance.Mesh, s.Result.Loads, s.Instance.Model.MaxBW)
}

// Simulate replays the solution in the discrete-event NoC simulator and
// returns its statistics. Infeasible solutions cannot be simulated (no
// DVFS operating point exists) and return the underlying error.
func (s *Solution) Simulate(cfg noc.Config) (*noc.Stats, error) {
	sim, err := noc.New(s.Routing, s.Instance.Model, cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(), nil
}

// PathsByComm returns the routed paths grouped by communication ID, in ID
// order, for inspection or table-based router configuration.
func (s *Solution) PathsByComm() map[int][]route.Path {
	out := make(map[int][]route.Path)
	for _, f := range s.Routing.Flows {
		out[f.Comm.ID] = append(out[f.Comm.ID], f.Path)
	}
	return out
}

// KimHorowitzModel returns the paper's discrete Section 6 model.
func KimHorowitzModel() power.Model { return power.KimHorowitz() }

// ContinuousModel returns the idealized continuous-frequency variant.
func ContinuousModel() power.Model { return power.KimHorowitzContinuous() }
