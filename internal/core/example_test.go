package core_test

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/power"
)

// The Section 3.5 example: two same-endpoint communications on a 2×2 mesh
// under the toy model. XY burns 128; the Manhattan heuristics find 56.
func Example() {
	comms := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 3},
	}
	inst, err := core.NewInstance(2, 2, power.Figure2(), comms)
	if err != nil {
		log.Fatal(err)
	}
	for _, policy := range []string{"XY", "PR", "MAXMP"} {
		sol, err := inst.Solve(policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %.0f\n", policy, sol.PowerMW())
	}
	// Output:
	// XY    128
	// PR    56
	// MAXMP 32
}

// Solving with every heuristic at once and picking the paper's BEST.
func ExampleInstance_SolveAll() {
	comms := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 5, V: 5}, Rate: 3000},
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 5, V: 5}, Rate: 3000},
	}
	inst, err := core.NewInstance(8, 8, core.KimHorowitzModel(), comms)
	if err != nil {
		log.Fatal(err)
	}
	sols, err := inst.SolveAll()
	if err != nil {
		log.Fatal(err)
	}
	// XY stacks 6000 Mb/s on shared links and fails; BEST separates the
	// two flows.
	fmt.Println("XY feasible:", sols["XY"].Feasible())
	fmt.Println("BEST feasible:", sols["BEST"].Feasible())
	// Output:
	// XY feasible: false
	// BEST feasible: true
}
