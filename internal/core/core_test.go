package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/workload"
)

func demoComms() comm.Set {
	return comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 3},
	}
}

func TestNewInstanceValidates(t *testing.T) {
	if _, err := NewInstance(0, 3, power.Figure2(), nil); err == nil {
		t.Error("bad mesh accepted")
	}
	bad := comm.Set{{ID: 1, Src: mesh.Coord{U: 9, V: 9}, Dst: mesh.Coord{U: 1, V: 1}, Rate: 1}}
	if _, err := NewInstance(2, 2, power.Figure2(), bad); err == nil {
		t.Error("off-mesh comm accepted")
	}
	if _, err := NewInstance(2, 2, power.Model{}, demoComms()); err == nil {
		t.Error("zero model accepted")
	}
}

func TestSolvePolicies(t *testing.T) {
	inst, err := NewInstance(2, 2, power.Figure2(), demoComms())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"XY": 128, "SG": 56, "IG": 56, "TB": 56, "XYI": 56, "PR": 56,
		"BEST": 56, "OPT": 56,
	}
	for policy, p := range want {
		sol, err := inst.Solve(policy)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !sol.Feasible() {
			t.Fatalf("%s infeasible", policy)
		}
		if math.Abs(sol.PowerMW()-p) > 1e-9 {
			t.Errorf("%s power = %g, want %g", policy, sol.PowerMW(), p)
		}
	}
	// Multi-path reaches below the single-path optimum.
	sol, err := inst.Solve("2MP")
	if err != nil {
		t.Fatal(err)
	}
	if sol.PowerMW() >= 56 {
		t.Errorf("2MP power %g not below 56", sol.PowerMW())
	}
	// MAXMP reaches the unrestricted optimum: 32 on this instance
	// (loads 2/2/2/2, the paper's 2-MP split is already max-MP-optimal).
	sol, err = inst.Solve("MAXMP")
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() || math.Abs(sol.PowerMW()-32) > 0.01 {
		t.Errorf("MAXMP power %g (feasible=%v), want ≈32", sol.PowerMW(), sol.Feasible())
	}
	if err := sol.Routing.Validate(inst.Comms, 0); err != nil {
		t.Errorf("MAXMP routing invalid: %v", err)
	}
	// Policy names are case-insensitive.
	if _, err := inst.Solve("pr"); err != nil {
		t.Errorf("lowercase policy rejected: %v", err)
	}
	if _, err := inst.Solve("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSolveAll(t *testing.T) {
	inst, err := NewInstance(8, 8, KimHorowitzModel(), workload.New(mesh.MustNew(8, 8), 5).Uniform(15, 100, 1500))
	if err != nil {
		t.Fatal(err)
	}
	sols, err := inst.SolveAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"XY", "SG", "IG", "TB", "XYI", "PR", "BEST"} {
		if sols[name] == nil {
			t.Fatalf("missing solution %s", name)
		}
	}
	best := sols["BEST"]
	for name, s := range sols {
		if name == "BEST" || !s.Feasible() {
			continue
		}
		if best.PowerMW() > s.PowerMW()+1e-9 {
			t.Errorf("BEST %g worse than %s %g", best.PowerMW(), name, s.PowerMW())
		}
	}
}

func TestLowerBoundBelowSolutions(t *testing.T) {
	inst, err := NewInstance(8, 8, KimHorowitzModel(), workload.New(mesh.MustNew(8, 8), 9).Uniform(10, 200, 1000))
	if err != nil {
		t.Fatal(err)
	}
	lb := inst.LowerBound()
	sol, err := inst.Solve("BEST")
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible() && sol.PowerMW() < lb-1e-6 {
		t.Errorf("solution %g below lower bound %g", sol.PowerMW(), lb)
	}
}

func TestReportContents(t *testing.T) {
	inst, err := NewInstance(2, 2, power.Figure2(), demoComms())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := inst.Solve("PR")
	if err != nil {
		t.Fatal(err)
	}
	rep := sol.Report()
	for _, want := range []string{"policy PR", "power", "active links", "lower bound"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// Infeasible report path.
	heavy := comm.Set{{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 100}}
	inst2, err := NewInstance(2, 2, power.Figure2(), heavy)
	if err != nil {
		t.Fatal(err)
	}
	sol2, err := inst2.Solve("XY")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sol2.Report(), "INFEASIBLE") {
		t.Error("infeasible report lacks marker")
	}
}

func TestPathsByComm(t *testing.T) {
	inst, err := NewInstance(2, 2, power.Figure2(), demoComms())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := inst.Solve("2MP")
	if err != nil {
		t.Fatal(err)
	}
	paths := sol.PathsByComm()
	if len(paths[1]) == 0 || len(paths[2]) == 0 {
		t.Fatalf("paths missing: %v", paths)
	}
	if len(paths[2]) > 2 {
		t.Errorf("2MP produced %d paths for one comm", len(paths[2]))
	}
}

func TestPoliciesList(t *testing.T) {
	names := Policies()
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, want := range []string{"XY", "SG", "IG", "TB", "XYI", "PR", "BEST", "OPT", "2MP", "4MP", "MAXMP", "SA"} {
		if !set[want] {
			t.Errorf("Policies() missing %s (got %v)", want, names)
		}
	}
}

func TestSolutionSimulate(t *testing.T) {
	inst, err := NewInstance(8, 8, KimHorowitzModel(),
		workload.New(mesh.MustNew(8, 8), 17).Uniform(8, 100, 1000))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := inst.Solve("PR")
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Skip("seed produced an infeasible instance")
	}
	st, err := sol.Simulate(noc.Config{Horizon: 800, Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.PowerMW-sol.PowerMW()) > 1e-6 {
		t.Errorf("simulated power %g != analytic %g", st.PowerMW, sol.PowerMW())
	}
	// Infeasible solutions cannot be simulated.
	heavy := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 2}, Rate: 3000},
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 2}, Rate: 3000},
	}
	inst2, err := NewInstance(8, 8, KimHorowitzModel(), heavy)
	if err != nil {
		t.Fatal(err)
	}
	sol2, err := inst2.Solve("XY")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol2.Simulate(noc.Config{}); err == nil {
		t.Error("infeasible solution simulated")
	}
}

func TestSolveOPTInfeasible(t *testing.T) {
	heavy := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 2}, Rate: 3},
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 2}, Rate: 3},
	}
	inst, err := NewInstance(1, 2, power.Figure2(), heavy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Solve("OPT"); err == nil {
		t.Error("OPT on infeasible instance did not error")
	}
}
