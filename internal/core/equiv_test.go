package core_test

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
	"repro/internal/workload"
)

// equivCase is one randomized instance of the dense-vs-reference sweep.
type equivCase struct {
	name string
	in   solve.Instance
	opts solve.Options
}

// equivCases draws seeded instances over two mesh sizes and both power
// models, so one reused workspace sees rebinters, re-sizes and every
// policy family.
func equivCases(t *testing.T) []equivCase {
	t.Helper()
	var cases []equivCase
	add := func(p, q, n int, seed int64, model power.Model, tag string) {
		m := mesh.MustNew(p, q)
		set := workload.New(m, seed).Uniform(n, 100, 1200)
		cases = append(cases, equivCase{
			name: fmt.Sprintf("%s-%dx%d-n%d-s%d", tag, p, q, n, seed),
			in:   solve.Instance{Mesh: m, Model: model, Comms: set},
			// Small budgets keep SA and MAXMP quick without changing the
			// fresh-vs-reused comparison.
			opts: solve.Options{Seed: seed, SAIters: 200, FWMaxIters: 40},
		})
	}
	add(8, 8, 12, 3, power.KimHorowitz(), "disc")
	add(8, 8, 30, 7, power.KimHorowitz(), "disc")
	add(8, 8, 12, 11, power.KimHorowitzContinuous(), "cont")
	add(4, 4, 5, 5, power.KimHorowitz(), "small")
	return cases
}

func sameFlows(a, b route.Routing) bool {
	if len(a.Flows) != len(b.Flows) {
		return false
	}
	for i := range a.Flows {
		if a.Flows[i].Comm != b.Flows[i].Comm || len(a.Flows[i].Path) != len(b.Flows[i].Path) {
			return false
		}
		for j := range a.Flows[i].Path {
			if a.Flows[i].Path[j] != b.Flows[i].Path[j] {
				return false
			}
		}
	}
	return true
}

// Every registered policy must return bit-for-bit identical routings and
// power figures whether it allocates fresh state per call or reuses one
// dense workspace across all instances (including across mesh rebinds) —
// the behavioral-equivalence pin of the workspace refactor.
func TestWorkspaceReuseMatchesFreshAcrossPolicies(t *testing.T) {
	cases := equivCases(t)
	for _, policy := range core.Policies() {
		t.Run(policy, func(t *testing.T) {
			ws := route.NewWorkspace() // shared across every instance of the policy
			for _, tc := range cases {
				if policy == "OPT" && len(tc.in.Comms) > 6 {
					continue // branch-and-bound is exponential; small instances only
				}
				fresh, freshErr := solve.Route(policy, tc.in, tc.opts)
				opts := tc.opts
				opts.Workspace = ws
				reused, reusedErr := solve.Route(policy, tc.in, opts)
				if (freshErr == nil) != (reusedErr == nil) {
					t.Fatalf("%s: error mismatch: fresh=%v reused=%v", tc.name, freshErr, reusedErr)
				}
				if freshErr != nil {
					continue
				}
				if !sameFlows(fresh, reused) {
					t.Fatalf("%s: workspace reuse changed the routing", tc.name)
				}
				fe := route.Evaluate(fresh, tc.in.Model)
				re := route.Evaluate(reused, tc.in.Model)
				if fe.Feasible != re.Feasible || fe.Power != re.Power {
					t.Fatalf("%s: workspace reuse changed the evaluation: %+v vs %+v",
						tc.name, fe.Power, re.Power)
				}
				// Keep nothing aliasing ws: the next iteration reuses it.
			}
		})
	}
}

// Reusing a workspace must also be self-consistent: the same instance
// solved twice through one workspace (with other instances in between)
// yields the same routing.
func TestWorkspaceReuseIsStable(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	sets := make([]comm.Set, 6)
	for i := range sets {
		sets[i] = workload.New(m, int64(i+1)).Uniform(20, 100, 1500)
	}
	for _, policy := range []string{"XY", "SG", "IG", "TB", "XYI", "PR", "BEST", "2MP"} {
		ws := route.NewWorkspace()
		first := make([]route.Routing, len(sets))
		for i, set := range sets {
			r, err := solve.Route(policy, solve.Instance{Mesh: m, Model: model, Comms: set},
				solve.Options{Workspace: ws})
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			first[i] = r.Clone()
		}
		for i, set := range sets {
			r, err := solve.Route(policy, solve.Instance{Mesh: m, Model: model, Comms: set},
				solve.Options{Workspace: ws})
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			if !sameFlows(first[i], r) {
				t.Errorf("%s: instance %d drifted on workspace re-solve", policy, i)
			}
		}
	}
}

// The dense path slots must tolerate the ID shapes the old map-based state
// accepted: negative and very sparse comm IDs route without panicking or
// over-allocating, identically with and without a workspace.
func TestWorkspaceHandlesSparseAndNegativeIDs(t *testing.T) {
	m := mesh.MustNew(6, 6)
	model := power.KimHorowitz()
	set := comm.Set{
		{ID: -3, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 4, V: 5}, Rate: 300},
		{ID: 1 << 40, Src: mesh.Coord{U: 6, V: 6}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 500},
		{ID: 5, Src: mesh.Coord{U: 3, V: 1}, Dst: mesh.Coord{U: 3, V: 6}, Rate: 200},
	}
	in := solve.Instance{Mesh: m, Model: model, Comms: set}
	ws := route.NewWorkspace()
	for _, policy := range []string{"XY", "SG", "IG", "TB", "XYI", "PR", "BEST", "SA"} {
		fresh, err := solve.Route(policy, in, solve.Options{})
		if err != nil {
			t.Fatalf("%s fresh: %v", policy, err)
		}
		reused, err := solve.Route(policy, in, solve.Options{Workspace: ws})
		if err != nil {
			t.Fatalf("%s reused: %v", policy, err)
		}
		if !sameFlows(fresh, reused) {
			t.Errorf("%s: sparse-ID routing diverged under workspace reuse", policy)
		}
		if err := reused.Validate(set, 1); err != nil {
			t.Errorf("%s: invalid routing on sparse IDs: %v", policy, err)
		}
	}
}
