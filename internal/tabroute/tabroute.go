// Package tabroute implements TABLE, the topology-generic table-driven
// routing policy: every communication follows its topology's one
// deterministic shortest path (the route an rtable.NextHops forwarding
// table ships to the routers — the deployment mode of Shchegoleva et
// al.'s circulant NoCs). TABLE is the baseline policy for non-mesh
// topologies, the role XY plays on the mesh; on a mesh instance it
// produces exactly the XY routing, since the mesh's canonical route is
// the XY path.
//
// TABLE is deterministic, load-oblivious, and O(Σ path length) per
// solve with zero allocations under a pooled workspace. It registers
// itself under the name "TABLE" and carries the solve.TopologyAware
// marker.
package tabroute

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/route"
	"repro/internal/solve"
)

func init() { solve.Register(Solver{}) }

// Solver is the TABLE policy.
type Solver struct{}

// Name implements solve.Solver.
func (Solver) Name() string { return "TABLE" }

// RoutesTopologies marks TABLE as topology-capable (solve.TopologyAware).
func (Solver) RoutesTopologies() bool { return true }

// Route implements solve.Solver: one table route per communication, in
// set order.
func (Solver) Route(in solve.Instance, opts solve.Options) (route.Routing, error) {
	tp := in.Topology()
	if tp == nil {
		return route.Routing{}, fmt.Errorf("tabroute: instance has no platform")
	}
	ws := opts.Workspace
	var (
		ps    *route.PathSet
		flows []route.Flow
	)
	if ws != nil {
		ws.BindTopo(tp)
		ps = ws.Paths()
		ps.ResetFor(in.Comms)
		flows = ws.Flows(len(in.Comms))
	} else {
		flows = make([]route.Flow, 0, len(in.Comms))
	}
	for _, c := range in.Comms {
		var p route.Path
		if ps != nil {
			p = route.Path(tp.AppendRoute(ps.Acquire(c.ID, tp.Distance(c.Src, c.Dst)), c.Src, c.Dst))
			ps.Set(c.ID, p)
		} else {
			p = route.Path(tp.AppendRoute(make([]mesh.Link, 0, tp.Distance(c.Src, c.Dst)), c.Src, c.Dst))
		}
		flows = append(flows, route.Flow{Comm: c, Path: p})
	}
	if ws != nil {
		ws.SetFlows(flows)
	}
	r := route.Routing{Flows: flows}
	if m, ok := tp.(*mesh.Mesh); ok {
		r.Mesh = m
	} else {
		r.Topo = tp
	}
	return r, nil
}

var _ solve.TopologyAware = Solver{}
