package theory

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/heur"
	"repro/internal/power"
)

func TestLemma2PowersMatchClosedForms(t *testing.T) {
	for _, pp := range []int{1, 2, 3, 5, 8} {
		pxy, pyx, err := Lemma2Powers(pp, 3)
		if err != nil {
			t.Fatal(err)
		}
		wantXY, wantYX := Lemma2ClosedForms(pp, 3)
		if math.Abs(pxy-wantXY) > 1e-9 {
			t.Errorf("p'=%d: PXY = %g, closed form %g", pp, pxy, wantXY)
		}
		if math.Abs(pyx-wantYX) > 1e-9 {
			t.Errorf("p'=%d: PYX = %g, closed form %g", pp, pyx, wantYX)
		}
	}
}

// The ratio PXY/PYX grows like p^{α−1}: doubling p' should multiply the
// ratio by roughly 2^{α−1}.
func TestLemma2RatioScaling(t *testing.T) {
	alpha := 3.0
	r8, err := ratio(8, alpha)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := ratio(16, alpha)
	if err != nil {
		t.Fatal(err)
	}
	growth := r16 / r8
	want := math.Pow(2, alpha-1)
	if growth < want*0.7 || growth > want*1.3 {
		t.Errorf("ratio growth %g, want ≈ %g (2^{α−1})", growth, want)
	}
}

func ratio(pp int, alpha float64) (float64, error) {
	pxy, pyx, err := Lemma2Powers(pp, alpha)
	if err != nil {
		return 0, err
	}
	return pxy / pyx, nil
}

// The YX routing of the staircase is in fact optimal: the ideal-share
// lower bound matches it (unit loads cannot be reduced), so heuristics
// that find it are provably optimal on this family.
func TestLemma2YXIsOptimal(t *testing.T) {
	m, set, err := Lemma2Instance(4)
	if err != nil {
		t.Fatal(err)
	}
	model := power.Theory(3)
	_, pyx, err := Lemma2Powers(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	lb := exact.IdealShareLowerBound(m, model, set)
	if pyx < lb-1e-9 {
		t.Fatalf("YX power %g below lower bound %g", pyx, lb)
	}
	// The heuristics should match or at least approach YX on this
	// instance; BEST must be no worse than 2× YX here.
	res, err := heur.Solve(heur.Best{}, heur.Instance{Mesh: m, Model: modelWithBW(model, set), Comms: set})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("BEST infeasible on staircase")
	}
	if res.Power.Total() > 2*pyx+1e-9 {
		t.Errorf("BEST power %g far above YX %g", res.Power.Total(), pyx)
	}
}

// modelWithBW bounds the theory model so feasibility checking is
// meaningful (any load up to the full staircase is allowed).
func modelWithBW(m power.Model, set interface{ TotalRate() float64 }) power.Model {
	m.MaxBW = set.TotalRate() + 1
	return m
}

func TestLemma2InstanceRejectsBadSize(t *testing.T) {
	if _, _, err := Lemma2Instance(0); err == nil {
		t.Error("pPrime=0 accepted")
	}
}
