package theory

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/exact"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// SingleSourceGain addresses the open problem stated in the paper's
// conclusion: "estimate how much can be gained by a single-path Manhattan
// routing when all communications share the same source and destination
// nodes". For n unit-rate communications from C(1,1) to C(p,p) it returns
// the XY power (all n stacked on one path) and the best single-path
// Manhattan power, computed exactly by branch-and-bound for small sizes or
// by the BEST heuristic when exact search would blow up (exactLimit
// leaves).
func SingleSourceGain(p, n int, alpha float64) (pxy, p1mp float64, exactOpt bool, err error) {
	if p < 2 || n < 1 {
		return 0, 0, false, fmt.Errorf("theory: invalid size p=%d n=%d", p, n)
	}
	m := mesh.MustNew(p, p)
	model := power.Theory(alpha)
	model.MaxBW = float64(n) * float64(p) * 10 // effectively unconstrained
	set := make(comm.Set, 0, n)
	for i := 0; i < n; i++ {
		set = append(set, comm.Comm{
			ID: i, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: p, V: p}, Rate: 1,
		})
	}
	// XY stacks everything: 2(p−1) links at load n.
	pxy = 2 * float64(p-1) * math.Pow(float64(n), alpha)

	paths, ok := mesh.PathCount64(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: p, V: p})
	leaves := math.Pow(float64(paths), float64(n))
	const exactLimit = 2e6
	if ok && leaves <= exactLimit {
		r, feasible, err := exact.Solve(m, model, set)
		if err != nil {
			return 0, 0, false, err
		}
		if !feasible {
			return 0, 0, false, fmt.Errorf("theory: unconstrained instance infeasible")
		}
		return pxy, route.Evaluate(r, model).Power.Total(), true, nil
	}
	res, err := heur.Solve(heur.Best{}, heur.Instance{Mesh: m, Model: model, Comms: set})
	if err != nil {
		return 0, 0, false, err
	}
	return pxy, res.Power.Total(), false, nil
}
