package theory

import (
	"math"
	"testing"
)

func TestSingleSourceGainSmallExact(t *testing.T) {
	// 2×2 mesh, 2 unit comms: XY stacks both (2·2^3 = 16), the optimum
	// splits them over the two corner paths (4 links at load 1 → 4).
	pxy, p1mp, exactOpt, err := SingleSourceGain(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !exactOpt {
		t.Fatal("tiny instance should be solved exactly")
	}
	if math.Abs(pxy-16) > 1e-9 || math.Abs(p1mp-4) > 1e-9 {
		t.Fatalf("powers = (%g, %g), want (16, 4)", pxy, p1mp)
	}
}

// The 1-MP gain for same-endpoint traffic grows with both n (more flows to
// spread) and p (more room to spread them).
func TestSingleSourceGainGrows(t *testing.T) {
	ratio := func(p, n int) float64 {
		pxy, p1mp, _, err := SingleSourceGain(p, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		return pxy / p1mp
	}
	if r21 := ratio(3, 1); math.Abs(r21-1) > 1e-9 {
		t.Errorf("single comm ratio %g, want 1 (nothing to spread)", r21)
	}
	r32 := ratio(3, 2)
	r33 := ratio(3, 3)
	if !(r33 > r32 && r32 > 1) {
		t.Errorf("gain not increasing in n: %g, %g", r32, r33)
	}
	r42 := ratio(4, 2)
	if r42 < r32 {
		t.Errorf("gain decreasing in p: p=3 %g vs p=4 %g", r32, r42)
	}
}

// Large sizes fall back to the heuristic path but still report a gain > 1.
func TestSingleSourceGainHeuristicFallback(t *testing.T) {
	pxy, p1mp, exactOpt, err := SingleSourceGain(8, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if exactOpt {
		t.Fatal("8×8 with 6 comms should exceed the exact-search budget")
	}
	if pxy/p1mp <= 1 {
		t.Errorf("heuristic gain %g not above 1", pxy/p1mp)
	}
}

func TestSingleSourceGainRejectsBadArgs(t *testing.T) {
	if _, _, _, err := SingleSourceGain(1, 1, 3); err == nil {
		t.Error("p=1 accepted")
	}
	if _, _, _, err := SingleSourceGain(3, 0, 3); err == nil {
		t.Error("n=0 accepted")
	}
}
