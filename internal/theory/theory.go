// Package theory builds the worst-case instances of Section 4: the
// Lemma 2 staircase separating XY from single-path Manhattan routing by a
// factor Θ(p^{α−1}), and helpers for checking the Theorem 1 and Theorem 2
// bounds numerically.
package theory

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// Lemma2Instance returns the staircase of the proof of Lemma 2 on a
// (p'+1)×(p'+1) mesh: p' unit-rate communications γi = (C(1,i), C(i,p'+1), 1).
// Under XY routing all of them pile up on the last column; under YX
// routing they are pairwise disjoint.
func Lemma2Instance(pPrime int) (*mesh.Mesh, comm.Set, error) {
	if pPrime < 1 {
		return nil, nil, fmt.Errorf("theory: pPrime %d < 1", pPrime)
	}
	p := pPrime + 1
	m := mesh.MustNew(p, p)
	set := make(comm.Set, 0, pPrime)
	for i := 1; i <= pPrime; i++ {
		set = append(set, comm.Comm{
			ID:  i,
			Src: mesh.Coord{U: 1, V: i},
			Dst: mesh.Coord{U: i, V: pPrime + 1},
			// Rate 1 as in the proof; the ratio is rate-independent
			// because both routings scale with K^α.
			Rate: 1,
		})
	}
	return m, set, nil
}

// Lemma2Powers routes the staircase with XY and with YX under the theory
// model and returns both powers. The proof's closed forms are
// PXY = 2·Σ_{i=1..p'} i^α and PYX = p'(p'+1).
func Lemma2Powers(pPrime int, alpha float64) (pxy, pyx float64, err error) {
	m, set, err := Lemma2Instance(pPrime)
	if err != nil {
		return 0, 0, err
	}
	model := power.Theory(alpha)
	xyLoads := route.NewLoadTracker(m)
	yxLoads := route.NewLoadTracker(m)
	for _, c := range set {
		xyLoads.AddPath(route.XY(c.Src, c.Dst), c.Rate)
		yxLoads.AddPath(route.YX(c.Src, c.Dst), c.Rate)
	}
	bx, err := xyLoads.Power(model)
	if err != nil {
		return 0, 0, err
	}
	by, err := yxLoads.Power(model)
	if err != nil {
		return 0, 0, err
	}
	return bx.Total(), by.Total(), nil
}

// Lemma2ClosedForms returns the exact closed-form powers for the
// staircase. Under XY, the j-th row-1 link carries the j communications
// with i ≤ j and the j-th column-(p'+1) link carries p'−j of them, so
// PXY = Σ_{j=1..p'} j^α + Σ_{j=1..p'−1} j^α ≈ 2Σ i^α (the paper's rounded
// form). Under YX the communications are link-disjoint, p' unit-loaded
// links each: PYX = p'². Both agree with the proof's orders
// Θ(p'^{α+1}) and Θ(p'²), giving the Θ(p^{α−1}) ratio.
func Lemma2ClosedForms(pPrime int, alpha float64) (pxy, pyx float64) {
	for j := 1; j <= pPrime; j++ {
		pxy += math.Pow(float64(j), alpha)
	}
	for j := 1; j <= pPrime-1; j++ {
		pxy += math.Pow(float64(j), alpha)
	}
	return pxy, float64(pPrime * pPrime)
}
