package theory

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/exact"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// The proof of Theorem 2 sandwiches any instance between two quantities
// built from the per-diagonal traffic sums K^(d)_k:
//
//	PXY   ≤ 2·2^α · Σ_k Σ_d (K^(d)_k)^α               (upper bound)
//	Pmax  ≥ (2p)^{1−α} · Σ_d Σ_k (K^(d)_k)^α          (lower bound)
//
// This test checks both inequalities numerically on random instances with
// the theory model (Pleak = 0, P0 = 1): the measured XY power must respect
// the upper bound, and the ideal-share lower bound implementation must
// respect the (weaker) closed form.
func TestTheorem2Inequalities(t *testing.T) {
	p, q := 6, 6
	m := mesh.MustNew(p, q)
	alpha := 2.5
	model := power.Theory(alpha)
	rng := rand.New(rand.NewSource(99))

	for trial := 0; trial < 30; trial++ {
		var set comm.Set
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			var src, dst mesh.Coord
			for {
				src = mesh.Coord{U: rng.Intn(p) + 1, V: rng.Intn(q) + 1}
				dst = mesh.Coord{U: rng.Intn(p) + 1, V: rng.Intn(q) + 1}
				if src != dst {
					break
				}
			}
			set = append(set, comm.Comm{ID: i, Src: src, Dst: dst, Rate: rng.Float64()*100 + 1})
		}

		// Σ_d Σ_k (K^(d)_k)^α from the proof.
		sum := 0.0
		for _, d := range []mesh.Quadrant{mesh.DirSE, mesh.DirSW, mesh.DirNW, mesh.DirNE} {
			for k := 1; k <= m.MaxDiagIndex()-1; k++ {
				traffic := 0.0
				for _, c := range set {
					if c.Direction() != d {
						continue
					}
					if m.DiagIndex(d, c.Src) <= k && k < m.DiagIndex(d, c.Dst) {
						traffic += c.Rate
					}
				}
				sum += math.Pow(traffic, alpha)
			}
		}

		// Measured XY power.
		loads := route.NewLoadTracker(m)
		for _, c := range set {
			loads.AddPath(route.XY(c.Src, c.Dst), c.Rate)
		}
		b, err := loads.Power(model)
		if err != nil {
			t.Fatal(err)
		}
		upper := 2 * math.Pow(2, alpha) * sum
		if b.Total() > upper+1e-6 {
			t.Fatalf("trial %d: PXY %g exceeds the Theorem 2 upper bound %g", trial, b.Total(), upper)
		}

		// The implemented ideal-share bound must dominate the proof's
		// coarser closed form (which spreads over 2p links everywhere).
		closedForm := math.Pow(2*float64(p), 1-alpha) * sum
		lb := exact.IdealShareLowerBound(m, model, set)
		if lb < closedForm-1e-9 {
			t.Fatalf("trial %d: ideal-share bound %g below the closed form %g", trial, lb, closedForm)
		}
	}
}
