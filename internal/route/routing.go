package route

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/topo"
)

// Flow is one routed (fragment of a) communication: the fragment's rate
// travels entirely along Path. A 1-MP routing has exactly one flow per
// communication; an s-MP routing has at most s flows sharing the same
// communication ID (Section 3.3).
type Flow struct {
	Comm comm.Comm
	Path Path
}

// Routing is a complete routing of a communication set on a platform.
// Mesh routings (the paper's setting, and the overwhelmingly common
// case) set Mesh; routings on other topologies leave Mesh nil and set
// Topo. Exactly one of the two should be non-nil — Topology() is the
// uniform accessor.
type Routing struct {
	Mesh  *mesh.Mesh
	Topo  topo.Topology
	Flows []Flow
}

// Topology returns the platform the routing lives on: Topo when set,
// else the mesh. The mesh keeps its dedicated field so the hot paths
// below can stay on the devirtualized closed-form link ids.
func (r Routing) Topology() topo.Topology {
	if r.Topo != nil {
		return r.Topo
	}
	if r.Mesh != nil {
		return r.Mesh
	}
	return nil
}

// Validate checks the routing against the original communication set:
// every flow carries a valid Manhattan path for its endpoints, fragment
// rates per communication sum to the original δi, every original
// communication is covered, and no communication uses more than maxPaths
// flows (0 means unbounded, the max-MP rule).
func (r Routing) Validate(orig comm.Set, maxPaths int) error {
	byID := make(map[int]comm.Comm, len(orig))
	for _, c := range orig {
		byID[c.ID] = c
	}
	rates := make(map[int]float64)
	counts := make(map[int]int)
	for _, f := range r.Flows {
		c, ok := byID[f.Comm.ID]
		if !ok {
			return fmt.Errorf("route: flow for unknown communication id %d", f.Comm.ID)
		}
		if f.Comm.Src != c.Src || f.Comm.Dst != c.Dst {
			return fmt.Errorf("route: flow %d endpoints %v->%v differ from %v->%v",
				f.Comm.ID, f.Comm.Src, f.Comm.Dst, c.Src, c.Dst)
		}
		if f.Comm.Rate <= 0 {
			return fmt.Errorf("route: flow %d has non-positive rate %g", f.Comm.ID, f.Comm.Rate)
		}
		if err := r.validatePath(f.Path, c.Src, c.Dst); err != nil {
			return fmt.Errorf("flow %d: %w", f.Comm.ID, err)
		}
		rates[f.Comm.ID] += f.Comm.Rate
		counts[f.Comm.ID]++
	}
	for id, c := range byID {
		if diff := rates[id] - c.Rate; math.Abs(diff) > 1e-6 {
			return fmt.Errorf("route: communication %d: flows carry %g, want %g", id, rates[id], c.Rate)
		}
		if maxPaths > 0 && counts[id] > maxPaths {
			return fmt.Errorf("route: communication %d split into %d paths, max %d", id, counts[id], maxPaths)
		}
	}
	return nil
}

// validatePath checks one flow path. Mesh routings keep the paper's
// Manhattan-path validation (Path.Validate); routings on other
// topologies check connectivity, per-hop link validity and endpoint
// agreement against the topology — shortest-ness is a solver property,
// not a Routing invariant, off the mesh.
func (r Routing) validatePath(p Path, src, dst mesh.Coord) error {
	if r.Mesh != nil {
		return p.Validate(r.Mesh, src, dst)
	}
	tp := r.Topo
	if tp == nil {
		return fmt.Errorf("route: routing has neither mesh nor topology")
	}
	if len(p) == 0 {
		return fmt.Errorf("route: empty path for %v->%v", src, dst)
	}
	if p[0].From != src {
		return fmt.Errorf("route: path starts at %v, want %v", p[0].From, src)
	}
	if p[len(p)-1].To != dst {
		return fmt.Errorf("route: path ends at %v, want %v", p[len(p)-1].To, dst)
	}
	at := src
	for i, l := range p {
		if l.From != at {
			return fmt.Errorf("route: path disconnected at hop %d: %v after %v", i, l, at)
		}
		if !tp.ValidLink(l) {
			return fmt.Errorf("route: hop %d is not a link of %s: %v", i, tp.Spec(), l)
		}
		at = l.To
	}
	return nil
}

// Loads accumulates the traffic on every link of the platform, indexed
// by the topology's dense link id. The Section 3.4 validity constraint
// is that every entry stays at or below the model's maximum bandwidth.
func (r Routing) Loads() []float64 {
	return r.LoadsInto(nil)
}

// LoadsInto is Loads accumulating into dst's backing array when it has the
// capacity (pass dst[:0] or a previous result to reuse a scratch buffer,
// like the package's other *Into forms) — the buffer-reusing read path for
// hot evaluation loops.
func (r Routing) LoadsInto(dst []float64) []float64 {
	if r.Mesh == nil {
		return r.loadsIntoTopo(dst)
	}
	n := r.Mesh.LinkIDSpace()
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
		for i := range dst {
			dst[i] = 0
		}
	}
	for _, f := range r.Flows {
		for _, l := range f.Path {
			dst[r.Mesh.LinkID(l)] += f.Comm.Rate
		}
	}
	return dst
}

// loadsIntoTopo is LoadsInto for non-mesh routings, accumulating
// through the topology's interface link ids.
func (r Routing) loadsIntoTopo(dst []float64) []float64 {
	n := r.Topo.LinkIDSpace()
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
		for i := range dst {
			dst[i] = 0
		}
	}
	for _, f := range r.Flows {
		for _, l := range f.Path {
			dst[r.Topo.LinkID(l)] += f.Comm.Rate
		}
	}
	return dst
}

// Result is the evaluation of a routing under a power model.
type Result struct {
	Routing Routing
	Loads   []float64
	// Power is the static/dynamic breakdown; meaningful only when
	// Feasible is true.
	Power power.Breakdown
	// Feasible reports whether every link load fits in the available
	// bandwidth (the paper's notion of the heuristic "finding a
	// solution"); when false, Err explains the first violation.
	Feasible bool
	Err      error
}

// MaxLoad returns the largest link load of the evaluated routing.
func (res Result) MaxLoad() float64 {
	max := 0.0
	for _, l := range res.Loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Evaluate computes link loads and total power for the routing. An
// infeasible routing yields Feasible=false with the overload error
// recorded; the caller decides whether that counts as heuristic failure
// (it does in all Section 6 experiments).
func Evaluate(r Routing, model power.Model) Result {
	loads := r.Loads()
	breakdown, err := model.Total(loads)
	res := Result{Routing: r, Loads: loads, Power: breakdown, Feasible: err == nil, Err: err}
	return res
}

// PathLoads returns the loads produced by a single path carrying rate r,
// useful for incremental what-if evaluation in heuristics.
func PathLoads(m *mesh.Mesh, p Path, rate float64) map[int]float64 {
	out := make(map[int]float64, len(p))
	for _, l := range p {
		out[m.LinkID(l)] += rate
	}
	return out
}
