package route

// LoadHeap is a lazy max-heap over a tracker's link loads, ordered by
// decreasing load with ties by increasing link id — exactly the
// LinksByLoadDesc scan order. It replaces the full rebuild-and-sort the
// local-search heuristics historically paid after every applied move:
// instead of re-sorting all loaded links, the caller pushes only the links
// whose load changed and the heap invalidates their earlier entries
// lazily, discarding stale ones as they surface (stale-entry popping).
//
// Contract: after Init, every load mutation on the tracker must be
// followed by Push of the affected link ids before the next Pop, or pops
// may surface a stale ordering. Entries for links a caller pops and sets
// aside are simply gone from the heap until SetAside/Reactivate re-pushes
// them — the "skip this link until the next applied move" idiom of XYI
// and PR.
//
// The zero value is empty; size it with Init. A LoadHeap is single-
// goroutine state, pooled in workspace scratch like the tracker it tracks.
type LoadHeap struct {
	t       *LoadTracker
	entries []heapEntry
	// ver[id] is the current version of link id; heap entries carry the
	// version at push time and are stale (skipped on pop) when it has
	// moved on.
	ver   []uint32
	aside []int32
}

// heapEntry is one (possibly stale) heap element.
type heapEntry struct {
	load float64
	id   int32
	ver  uint32
}

// less orders the heap: decreasing load, ties by increasing link id — a
// total order, so successive pops yield exactly the sorted sequence.
func (a heapEntry) less(b heapEntry) bool {
	if a.load != b.load {
		return a.load > b.load
	}
	return a.id < b.id
}

// Init binds the heap to the tracker and rebuilds it from every currently
// loaded link, reusing the heap's backing arrays.
func (h *LoadHeap) Init(t *LoadTracker) {
	h.t = t
	n := len(t.loads)
	if cap(h.ver) < n {
		h.ver = make([]uint32, n)
	} else {
		h.ver = h.ver[:n]
		clear(h.ver)
	}
	h.entries = h.entries[:0]
	h.aside = h.aside[:0]
	for id, load := range t.loads {
		if load > 0 {
			h.entries = append(h.entries, heapEntry{load: load, id: int32(id), ver: 0})
		}
	}
	// Bottom-up heapify.
	for i := len(h.entries)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Push registers the current load of link id, invalidating any earlier
// entry for it. Links at zero load get no entry and stop surfacing.
func (h *LoadHeap) Push(id int) {
	h.ver[id]++
	load := h.t.loads[id]
	if load <= 0 {
		return
	}
	h.entries = append(h.entries, heapEntry{load: load, id: int32(id), ver: h.ver[id]})
	h.siftUp(len(h.entries) - 1)
}

// Pop removes and returns the most-loaded live link (ties by smallest id),
// discarding stale entries as they surface. ok is false when no live entry
// remains.
func (h *LoadHeap) Pop() (id int, ok bool) {
	for len(h.entries) > 0 {
		top := h.entries[0]
		last := len(h.entries) - 1
		h.entries[0] = h.entries[last]
		h.entries = h.entries[:last]
		if len(h.entries) > 0 {
			h.siftDown(0)
		}
		if h.ver[top.id] == top.ver {
			return int(top.id), true
		}
	}
	return 0, false
}

// SetAside records a popped link as set aside: it stays out of the heap
// until the next Reactivate, so subsequent pops move on to the next
// most-loaded link.
func (h *LoadHeap) SetAside(id int) {
	h.aside = append(h.aside, int32(id))
}

// Reactivate re-pushes every set-aside link at its current load — the
// "every link is back in play after an applied move" step of the rescan
// heuristics. Callers push the changed links themselves (Push), in any
// order relative to Reactivate.
func (h *LoadHeap) Reactivate() {
	for _, id := range h.aside {
		h.Push(int(id))
	}
	h.aside = h.aside[:0]
}

func (h *LoadHeap) siftUp(i int) {
	e := h.entries[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h.entries[parent]) {
			break
		}
		h.entries[i] = h.entries[parent]
		i = parent
	}
	h.entries[i] = e
}

func (h *LoadHeap) siftDown(i int) {
	e := h.entries[i]
	n := len(h.entries)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.entries[r].less(h.entries[child]) {
			child = r
		}
		if !h.entries[child].less(e) {
			break
		}
		h.entries[i] = h.entries[child]
		i = child
	}
	h.entries[i] = e
}
