package route

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
)

func TestPathSetAcquireReusesBacking(t *testing.T) {
	var ps PathSet
	set := comm.Set{{ID: 2}, {ID: 5}}
	ps.ResetFor(set)
	p := ps.Acquire(5, 4)
	if len(p) != 0 || cap(p) < 4 {
		t.Fatalf("Acquire returned len=%d cap=%d", len(p), cap(p))
	}
	p = append(p, mesh.Link{From: mesh.Coord{U: 1, V: 1}, To: mesh.Coord{U: 1, V: 2}})
	ps.Set(5, p)
	first := &ps.Get(5)[0]
	again := ps.Acquire(5, 1)
	again = append(again, mesh.Link{From: mesh.Coord{U: 2, V: 1}, To: mesh.Coord{U: 2, V: 2}})
	if &again[0] != first {
		t.Error("Acquire did not reuse the slot's backing array")
	}
	if ps.Get(2) != nil {
		t.Errorf("untouched slot not empty: %v", ps.Get(2))
	}
}

func TestPathSetSetCopyDoesNotAlias(t *testing.T) {
	var ps PathSet
	ps.Reset(1)
	src := Path{{From: mesh.Coord{U: 1, V: 1}, To: mesh.Coord{U: 1, V: 2}}}
	ps.SetCopy(0, src)
	src[0] = mesh.Link{From: mesh.Coord{U: 9, V: 9}, To: mesh.Coord{U: 9, V: 8}}
	if ps.Get(0)[0] == src[0] {
		t.Error("SetCopy aliased the source path")
	}
}

func TestCoordSet(t *testing.T) {
	m := mesh.MustNew(8, 8)
	var s CoordSet
	s.Reset(m)
	if s.Len() != 0 {
		t.Fatalf("fresh set has %d members", s.Len())
	}
	a, b := mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 8, V: 8}
	s.Add(a)
	s.Add(a) // idempotent
	s.Add(b)
	if s.Len() != 2 || !s.Has(a) || !s.Has(b) || s.Has(mesh.Coord{U: 4, V: 4}) {
		t.Errorf("membership broken: len=%d", s.Len())
	}
	s.Reset(m)
	if s.Len() != 0 || s.Has(a) {
		t.Error("Reset did not clear the set")
	}
}

func TestWorkspaceBindKeepsStateOnSameDims(t *testing.T) {
	ws := NewWorkspace()
	m1 := mesh.MustNew(4, 6)
	ws.Bind(m1)
	tr := ws.Tracker()
	got := ws.Scratch("x", func() any { return new(int) })
	m2 := mesh.MustNew(4, 6) // same dims, different mesh value
	ws.Bind(m2)
	if ws.Tracker() != tr {
		t.Error("same-dims rebind replaced the tracker")
	}
	if ws.Tracker().Mesh() != m2 {
		t.Error("rebind did not repoint the tracker's mesh")
	}
	if ws.Scratch("x", func() any { return new(int) }) != got {
		t.Error("same-dims rebind dropped scratch")
	}
	ws.Bind(mesh.MustNew(6, 4)) // dims change
	if ws.Scratch("x", func() any { return new(int) }) == got {
		t.Error("dims change kept stale scratch")
	}
	if n := ws.Tracker().Mesh().Q(); n != 4 {
		t.Errorf("tracker not resized: Q=%d", n)
	}
}

func TestRoutingCloneIsDeep(t *testing.T) {
	m := mesh.MustNew(3, 3)
	p := XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 3, V: 3})
	r := Routing{Mesh: m, Flows: []Flow{{Comm: comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 3, V: 3}, Rate: 5}, Path: p}}}
	cp := r.Clone()
	p[0] = mesh.Link{From: mesh.Coord{U: 2, V: 2}, To: mesh.Coord{U: 2, V: 3}}
	if cp.Flows[0].Path[0] == p[0] {
		t.Error("Clone shares path backing with the original")
	}
}

func TestLoadsIntoAndView(t *testing.T) {
	m := mesh.MustNew(3, 3)
	tr := NewLoadTracker(m)
	l := mesh.Link{From: mesh.Coord{U: 1, V: 1}, To: mesh.Coord{U: 1, V: 2}}
	tr.Add(l, 42)
	buf := make([]float64, 1)
	got := tr.LoadsInto(buf)
	if len(got) != m.LinkIDSpace() || got[m.LinkID(l)] != 42 {
		t.Fatalf("LoadsInto = len %d", len(got))
	}
	view := tr.LoadsView()
	if &view[0] != &tr.loads[0] {
		t.Error("LoadsView copied")
	}
	r := Routing{Mesh: m, Flows: []Flow{{Comm: comm.Comm{ID: 0, Src: l.From, Dst: l.To, Rate: 7}, Path: Path{l}}}}
	dst := make([]float64, m.LinkIDSpace())
	dst[0] = 99 // stale: LoadsInto must zero it
	dst = r.LoadsInto(dst)
	if dst[m.LinkID(l)] != 7 || dst[0] != 0 && m.LinkID(l) != 0 {
		t.Errorf("Routing.LoadsInto = %v", dst[m.LinkID(l)])
	}
}

func TestLinksByLoadDescIntoMatchesFresh(t *testing.T) {
	m := mesh.MustNew(5, 5)
	tr := NewLoadTracker(m)
	for i, l := range m.Links() {
		tr.Add(l, float64((i*7)%13)) // duplicates exercise the id tiebreak
	}
	want := tr.LinksByLoadDesc()
	var buf []mesh.Link
	for round := 0; round < 3; round++ {
		buf = tr.LinksByLoadDescInto(buf)
		if len(buf) != len(want) {
			t.Fatalf("round %d: len %d, want %d", round, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("round %d: order diverged at %d: %v vs %v", round, i, buf[i], want[i])
			}
		}
	}
}
