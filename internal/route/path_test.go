package route

import (
	"math/rand"
	"testing"

	"repro/internal/mesh"
)

func grid() *mesh.Mesh { return mesh.MustNew(8, 8) }

func randCoord(rng *rand.Rand, m *mesh.Mesh) mesh.Coord {
	return mesh.Coord{U: rng.Intn(m.P()) + 1, V: rng.Intn(m.Q()) + 1}
}

// XY and YX always produce valid Manhattan paths, in any quadrant.
func TestXYAndYXValid(t *testing.T) {
	m := grid()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		src, dst := randCoord(rng, m), randCoord(rng, m)
		for name, p := range map[string]Path{"XY": XY(src, dst), "YX": YX(src, dst)} {
			if err := p.Validate(m, src, dst); err != nil {
				t.Fatalf("%s(%v,%v): %v", name, src, dst, err)
			}
		}
	}
}

func TestXYGoesHorizontalFirst(t *testing.T) {
	p := XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 3, V: 4})
	// 3 horizontal hops then 2 vertical hops.
	for i, l := range p {
		horizontal := l.Dir() == mesh.East || l.Dir() == mesh.West
		if i < 3 && !horizontal {
			t.Fatalf("hop %d of XY is %v, want horizontal", i, l.Dir())
		}
		if i >= 3 && horizontal {
			t.Fatalf("hop %d of XY is %v, want vertical", i, l.Dir())
		}
	}
}

func TestYXGoesVerticalFirst(t *testing.T) {
	p := YX(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 3, V: 4})
	for i, l := range p {
		vertical := l.Dir() == mesh.South || l.Dir() == mesh.North
		if i < 2 && !vertical {
			t.Fatalf("hop %d of YX is %v, want vertical", i, l.Dir())
		}
		if i >= 2 && vertical {
			t.Fatalf("hop %d of YX is %v, want horizontal", i, l.Dir())
		}
	}
}

func TestValidateRejectsBadPaths(t *testing.T) {
	m := grid()
	src, dst := mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 3, V: 3}
	good := XY(src, dst)

	tooShort := good[:len(good)-1]
	if err := Path(tooShort).Validate(m, src, dst); err == nil {
		t.Error("short path accepted")
	}

	// Detour (non-Manhattan): E, W, then the real path — wrong length.
	detour := FromMoves(src, []mesh.Dir{mesh.East, mesh.West, mesh.East, mesh.East, mesh.South, mesh.South})
	if err := detour.Validate(m, src, dst); err == nil {
		t.Error("detour accepted as Manhattan path")
	}

	// Disconnected: swap two non-adjacent hops.
	disc := good.Clone()
	disc[0], disc[3] = disc[3], disc[0]
	if err := disc.Validate(m, src, dst); err == nil {
		t.Error("disconnected path accepted")
	}

	// Wrong destination.
	if err := good.Validate(m, src, mesh.Coord{U: 3, V: 4}); err == nil {
		t.Error("wrong destination accepted")
	}

	// Empty path for distinct endpoints.
	if err := Path(nil).Validate(m, src, dst); err == nil {
		t.Error("empty path accepted for distant endpoints")
	}
	// Empty path for identical endpoints is fine.
	if err := Path(nil).Validate(m, src, src); err != nil {
		t.Errorf("empty self path rejected: %v", err)
	}
}

func TestBends(t *testing.T) {
	src := mesh.Coord{U: 1, V: 1}
	cases := []struct {
		moves []mesh.Dir
		want  int
	}{
		{nil, 0},
		{[]mesh.Dir{mesh.East}, 0},
		{[]mesh.Dir{mesh.East, mesh.East}, 0},
		{[]mesh.Dir{mesh.East, mesh.South}, 1},
		{[]mesh.Dir{mesh.East, mesh.South, mesh.East}, 2},
		{[]mesh.Dir{mesh.East, mesh.South, mesh.East, mesh.South}, 3},
	}
	for _, tc := range cases {
		p := FromMoves(src, tc.moves)
		if got := p.Bends(); got != tc.want {
			t.Errorf("Bends(%v) = %d, want %d", tc.moves, got, tc.want)
		}
	}
}

func TestXYBendCount(t *testing.T) {
	// XY and YX have at most one bend.
	m := grid()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		src, dst := randCoord(rng, m), randCoord(rng, m)
		if b := XY(src, dst).Bends(); b > 1 {
			t.Fatalf("XY(%v,%v) has %d bends", src, dst, b)
		}
		if b := YX(src, dst).Bends(); b > 1 {
			t.Fatalf("YX(%v,%v) has %d bends", src, dst, b)
		}
	}
}

func TestSrcDst(t *testing.T) {
	p := XY(mesh.Coord{U: 2, V: 2}, mesh.Coord{U: 4, V: 5})
	if s, ok := p.Src(); !ok || s != (mesh.Coord{U: 2, V: 2}) {
		t.Errorf("Src = %v, %v", s, ok)
	}
	if d, ok := p.Dst(); !ok || d != (mesh.Coord{U: 4, V: 5}) {
		t.Errorf("Dst = %v, %v", d, ok)
	}
	if _, ok := Path(nil).Src(); ok {
		t.Error("empty path reported a source")
	}
}
