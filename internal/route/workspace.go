package route

import (
	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/topo"
)

// Workspace is the reusable dense scratch arena of the solver layer. Every
// routing policy rebuilds the same kinds of state on each call — per-comm
// paths, a link-load account, a flow list, frontier and reachability sets —
// and a Workspace lets one goroutine (an experiment worker, a CLI loop)
// amortize those allocations across calls instead of rebuilding map-based
// state per trial.
//
// Pooling contract:
//
//   - A Workspace is NOT safe for concurrent use; give each worker its own
//     (see internal/experiments' per-worker scratch).
//   - A routing returned by a workspace-reusing solver call may alias
//     workspace memory (its Flows slice and the Paths inside them). It is
//     valid until the next solver call that reuses the same workspace;
//     callers that keep routings longer must deep-copy them first
//     (Routing.Clone).
//   - Passing a nil *Workspace everywhere it is accepted restores the
//     allocate-fresh behavior: results are bit-for-bit identical either
//     way, only the allocation profile changes.
//
// The zero value is ready to use after Bind.
type Workspace struct {
	// mesh is the bound mesh (nil when the workspace is bound to a
	// non-mesh topology); topo is the bound platform in either case.
	mesh    *mesh.Mesh
	topo    topo.Topology
	tracker *LoadTracker
	paths   PathSet
	flows   []Flow
	scratch map[string]any
}

// NewWorkspace returns an empty workspace; it binds lazily to the
// platform of the first solver call that uses it.
func NewWorkspace() *Workspace { return &Workspace{} }

// Bind prepares the workspace for solving on m. Binding to a mesh of the
// same dimensions keeps all pooled state (the common case: repeated trials
// on one platform); changing dimensions resizes the dense buffers and
// drops policy scratch, since it is sized to the link/core ID spaces.
func (w *Workspace) Bind(m *mesh.Mesh) {
	if w.mesh != nil && w.mesh.P() == m.P() && w.mesh.Q() == m.Q() {
		w.mesh = m
		w.topo = m
		w.tracker.mesh = m
		w.tracker.topo = m
		return
	}
	w.mesh = m
	w.topo = m
	w.tracker = NewLoadTracker(m)
	w.scratch = nil
}

// BindTopo prepares the workspace for solving on any topology — the
// generalization of Bind with the same pooling rule: binding to a
// topology with the same Spec (hence identical core set and link id
// space) keeps all pooled state, anything else rebuilds the dense
// buffers and drops policy scratch. A mesh argument behaves exactly
// like Bind.
func (w *Workspace) BindTopo(tp topo.Topology) {
	if m, ok := tp.(*mesh.Mesh); ok {
		w.Bind(m)
		return
	}
	if w.topo != nil && w.mesh == nil && w.topo.Spec() == tp.Spec() {
		w.topo = tp
		w.tracker.topo = tp
		return
	}
	w.mesh = nil
	w.topo = tp
	w.tracker = NewLoadTrackerTopo(tp)
	w.scratch = nil
}

// Mesh returns the currently bound mesh (nil before the first Bind and
// nil while bound to a non-mesh topology).
func (w *Workspace) Mesh() *mesh.Mesh { return w.mesh }

// Topo returns the currently bound platform topology (nil before the
// first Bind/BindTopo).
func (w *Workspace) Topo() topo.Topology { return w.topo }

// Tracker returns the workspace's pooled LoadTracker, reset to all-zero
// loads. Each solver call works against a freshly reset tracker; nested
// users (BEST re-running a candidate) simply reset again.
func (w *Workspace) Tracker() *LoadTracker {
	w.tracker.Reset()
	return w.tracker
}

// Paths returns the workspace's dense per-communication path store.
func (w *Workspace) Paths() *PathSet { return &w.paths }

// Flows returns the pooled flow buffer, emptied, with capacity for at
// least n flows. The assembled routing aliases this buffer (see the
// pooling contract above).
func (w *Workspace) Flows(n int) []Flow {
	if cap(w.flows) < n {
		w.flows = make([]Flow, 0, n)
	}
	return w.flows[:0]
}

// SetFlows hands the (possibly grown) flow buffer back to the workspace so
// the capacity is retained for the next call.
func (w *Workspace) SetFlows(f []Flow) { w.flows = f }

// Scratch returns the policy-private scratch value stored under key,
// building it on first use. Policy packages keep fully typed scratch
// structs (frontier buffers, bitset pools, arenas) here, so the workspace
// stays generic while every family gets zero-allocation reuse. Scratch
// values are dropped when the workspace rebinds to different mesh
// dimensions — they must be sized to the bound mesh only.
func (w *Workspace) Scratch(key string, build func() any) any {
	if w.scratch == nil {
		w.scratch = make(map[string]any)
	}
	s, ok := w.scratch[key]
	if !ok {
		s = build()
		w.scratch[key] = s
	}
	return s
}

// PathSet is a dense per-communication path store indexed by comm ID — the
// workspace replacement for the map[int]route.Path every heuristic used to
// rebuild per call. Slots keep their backing arrays across calls, so a
// reused PathSet routes without allocating once warmed up.
//
// IDs are normally used as direct slot indices; sets whose IDs are
// negative or much sparser than the set size (which the old maps accepted)
// fall back to a remap table, paying roughly the historical map cost
// instead of panicking or over-allocating the dense slot space.
type PathSet struct {
	paths []Path
	// remap translates comm ID → slot when the IDs are unusable as dense
	// indices; nil in the (overwhelmingly common) dense mode.
	remap map[int]int
}

// ResetFor sizes the store for the communication set (one slot per ID)
// without clearing slot capacities. Stale contents are never read: solvers
// overwrite the slot of every communication they route.
func (ps *PathSet) ResetFor(set comm.Set) {
	minID, maxID := 0, -1
	for _, c := range set {
		if c.ID > maxID {
			maxID = c.ID
		}
		if c.ID < minID {
			minID = c.ID
		}
	}
	if minID >= 0 && maxID < 4*len(set)+64 {
		ps.remap = nil
		ps.Reset(maxID + 1)
		return
	}
	// Sparse or negative IDs: slot by set position via the remap.
	ps.Reset(len(set))
	if ps.remap == nil {
		ps.remap = make(map[int]int, len(set))
	} else {
		clear(ps.remap)
	}
	for i, c := range set {
		ps.remap[c.ID] = i
	}
}

// Reset sizes the store to n directly-indexed slots, keeping existing
// slot capacity.
func (ps *PathSet) Reset(n int) {
	ps.remap = nil
	if cap(ps.paths) < n {
		next := make([]Path, n)
		copy(next, ps.paths)
		ps.paths = next
		return
	}
	ps.paths = ps.paths[:n]
}

// slot resolves a comm ID to its slot index.
func (ps *PathSet) slot(id int) int {
	if ps.remap == nil {
		return id
	}
	return ps.remap[id]
}

// Acquire returns the slot of comm id emptied, with capacity for at least
// capHint links, ready to be built with append. Callers must Set the final
// slice back (append may move it).
func (ps *PathSet) Acquire(id, capHint int) Path {
	s := ps.slot(id)
	p := ps.paths[s]
	if cap(p) < capHint {
		p = make(Path, 0, capHint)
		ps.paths[s] = p
	}
	return p[:0]
}

// Set stores p as the path of comm id (aliasing, no copy).
func (ps *PathSet) Set(id int, p Path) { ps.paths[ps.slot(id)] = p }

// SetCopy copies p into the slot of comm id, reusing its backing array.
func (ps *PathSet) SetCopy(id int, p Path) {
	ps.Set(id, append(ps.Acquire(id, len(p)), p...))
}

// Get returns the path stored for comm id.
func (ps *PathSet) Get(id int) Path { return ps.paths[ps.slot(id)] }

// CoordSet is a coord-indexed bitset over the cores of a mesh — the dense
// replacement for the map[mesh.Coord]bool frontier and reachability sets
// of the PR heuristic. The zero value is empty; size it with Reset.
type CoordSet struct {
	p, q  int
	count int
	bits  []uint64
}

// Reset sizes the set for m and empties it.
func (s *CoordSet) Reset(m *mesh.Mesh) {
	s.p, s.q = m.P(), m.Q()
	words := (s.p*s.q + 63) / 64
	if cap(s.bits) < words {
		s.bits = make([]uint64, words)
	} else {
		s.bits = s.bits[:words]
		for i := range s.bits {
			s.bits[i] = 0
		}
	}
	s.count = 0
}

// index is the row-major dense index of c (mesh.CoordIndex without the
// bounds check: CoordSet members always come from valid links).
func (s *CoordSet) index(c mesh.Coord) int { return (c.U-1)*s.q + (c.V - 1) }

// Add inserts c (idempotent).
func (s *CoordSet) Add(c mesh.Coord) {
	s.AddIdx(s.index(c))
}

// AddIdx inserts the core with the given dense coordinate index
// (mesh.CoordIndex) — the form for loops that precomputed their indices.
func (s *CoordSet) AddIdx(i int) {
	w, b := i/64, uint64(1)<<(i%64)
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.count++
	}
}

// Has reports membership of c.
func (s *CoordSet) Has(c mesh.Coord) bool {
	return s.HasIdx(s.index(c))
}

// HasIdx reports membership by dense coordinate index (mesh.CoordIndex).
func (s *CoordSet) HasIdx(i int) bool {
	return s.bits[i/64]&(uint64(1)<<(i%64)) != 0
}

// Len returns the number of members.
func (s *CoordSet) Len() int { return s.count }

// Clone returns a deep copy of the routing — paths and flow list — for
// callers that must keep a workspace-aliasing routing beyond the next
// solver call on the same workspace (see the Workspace pooling contract).
func (r Routing) Clone() Routing {
	flows := make([]Flow, len(r.Flows))
	for i, f := range r.Flows {
		f.Path = f.Path.Clone()
		flows[i] = f
	}
	return Routing{Mesh: r.Mesh, Topo: r.Topo, Flows: flows}
}
