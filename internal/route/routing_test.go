package route

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
)

func c(id int, su, sv, du, dv int, rate float64) comm.Comm {
	return comm.Comm{ID: id, Src: mesh.Coord{U: su, V: sv}, Dst: mesh.Coord{U: du, V: dv}, Rate: rate}
}

// The Section 3.5 example, literally: 2×2 mesh, Pleak=0, P0=1, α=3, BW=4,
// γ1=(C11,C22,1) and γ2=(C11,C22,3). XY burns 128, best 1-MP 56,
// best 2-MP 32 (Figure 2).
func TestFigure2Powers(t *testing.T) {
	m := mesh.MustNew(2, 2)
	model := power.Figure2()
	g1 := c(1, 1, 1, 2, 2, 1)
	g2 := c(2, 1, 1, 2, 2, 3)

	xy := Routing{Mesh: m, Flows: []Flow{
		{Comm: g1, Path: XY(g1.Src, g1.Dst)},
		{Comm: g2, Path: XY(g2.Src, g2.Dst)},
	}}
	res := Evaluate(xy, model)
	if !res.Feasible || math.Abs(res.Power.Total()-128) > 1e-9 {
		t.Fatalf("XY power = %g (feasible=%v), want 128", res.Power.Total(), res.Feasible)
	}

	mp1 := Routing{Mesh: m, Flows: []Flow{
		{Comm: g1, Path: XY(g1.Src, g1.Dst)},
		{Comm: g2, Path: YX(g2.Src, g2.Dst)},
	}}
	res = Evaluate(mp1, model)
	if !res.Feasible || math.Abs(res.Power.Total()-56) > 1e-9 {
		t.Fatalf("1-MP power = %g, want 56 (2·(1³+3³))", res.Power.Total())
	}

	// 2-MP: split γ2 into 1+2; route γ1+γ2.1... paper: each link carries 2.
	parts, err := g2.Split([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mp2 := Routing{Mesh: m, Flows: []Flow{
		{Comm: g1, Path: XY(g1.Src, g1.Dst)},
		{Comm: parts[0], Path: XY(g2.Src, g2.Dst)},
		{Comm: parts[1], Path: YX(g2.Src, g2.Dst)},
	}}
	res = Evaluate(mp2, model)
	if !res.Feasible || math.Abs(res.Power.Total()-32) > 1e-9 {
		t.Fatalf("2-MP power = %g, want 32 (2·(2³+2³))", res.Power.Total())
	}
	if err := mp2.Validate(comm.Set{g1, g2}, 2); err != nil {
		t.Fatalf("2-MP routing invalid: %v", err)
	}
	if err := mp2.Validate(comm.Set{g1, g2}, 1); err == nil {
		t.Fatal("2-MP accepted under 1-MP limit")
	}
}

func TestValidateCatchesRateMismatch(t *testing.T) {
	m := mesh.MustNew(3, 3)
	g := c(1, 1, 1, 2, 2, 10)
	r := Routing{Mesh: m, Flows: []Flow{
		{Comm: comm.Comm{ID: 1, Src: g.Src, Dst: g.Dst, Rate: 6}, Path: XY(g.Src, g.Dst)},
	}}
	if err := r.Validate(comm.Set{g}, 0); err == nil {
		t.Error("partial rate accepted")
	}
}

func TestValidateCatchesUnknownAndMissing(t *testing.T) {
	m := mesh.MustNew(3, 3)
	g := c(1, 1, 1, 2, 2, 10)
	unknown := Routing{Mesh: m, Flows: []Flow{
		{Comm: c(9, 1, 1, 2, 2, 10), Path: XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 2, V: 2})},
	}}
	if err := unknown.Validate(comm.Set{g}, 0); err == nil {
		t.Error("unknown flow id accepted")
	}
	missing := Routing{Mesh: m}
	if err := missing.Validate(comm.Set{g}, 0); err == nil {
		t.Error("uncovered communication accepted")
	}
}

func TestValidateCatchesWrongEndpoints(t *testing.T) {
	m := mesh.MustNew(3, 3)
	g := c(1, 1, 1, 2, 2, 10)
	r := Routing{Mesh: m, Flows: []Flow{
		{Comm: c(1, 1, 1, 3, 3, 10), Path: XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 3, V: 3})},
	}}
	if err := r.Validate(comm.Set{g}, 0); err == nil {
		t.Error("wrong endpoints accepted")
	}
}

// Conservation: for any single-path routing, the loads sum to Σ δi·ℓi.
func TestLoadConservation(t *testing.T) {
	m := grid()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var set comm.Set
		var flows []Flow
		for i := 0; i < 20; i++ {
			src, dst := randCoord(rng, m), randCoord(rng, m)
			if src == dst {
				continue
			}
			g := comm.Comm{ID: i, Src: src, Dst: dst, Rate: float64(rng.Intn(1000) + 1)}
			set = append(set, g)
			p := XY(src, dst)
			if rng.Intn(2) == 0 {
				p = YX(src, dst)
			}
			flows = append(flows, Flow{Comm: g, Path: p})
		}
		r := Routing{Mesh: m, Flows: flows}
		loads := r.Loads()
		sum := 0.0
		for _, l := range loads {
			sum += l
		}
		if want := set.TotalVolume(); math.Abs(sum-want) > 1e-6 {
			t.Fatalf("trial %d: load sum %g, want %g", trial, sum, want)
		}
	}
}

func TestEvaluateInfeasible(t *testing.T) {
	m := mesh.MustNew(2, 2)
	g := c(1, 1, 1, 2, 2, 10) // exceeds BW=4 of the Figure 2 model
	r := Routing{Mesh: m, Flows: []Flow{{Comm: g, Path: XY(g.Src, g.Dst)}}}
	res := Evaluate(r, power.Figure2())
	if res.Feasible || res.Err == nil {
		t.Fatal("overloaded routing reported feasible")
	}
	if got := res.MaxLoad(); got != 10 {
		t.Errorf("MaxLoad = %g, want 10", got)
	}
}

func TestPathLoads(t *testing.T) {
	m := mesh.MustNew(3, 3)
	p := XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 3, V: 3})
	loads := PathLoads(m, p, 7)
	if len(loads) != 4 {
		t.Fatalf("PathLoads covers %d links, want 4", len(loads))
	}
	for id, l := range loads {
		if l != 7 {
			t.Errorf("link %d load %g, want 7", id, l)
		}
	}
}
