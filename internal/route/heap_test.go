package route

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/power"
)

// The heap's pop sequence over a static load vector is exactly the
// LinksByLoadDesc order, including deterministic tie-breaking.
func TestLoadHeapMatchesSortedScan(t *testing.T) {
	m := mesh.MustNew(6, 6)
	rng := rand.New(rand.NewSource(42))
	tr := NewLoadTracker(m)
	for _, l := range m.Links() {
		switch rng.Intn(3) {
		case 0: // idle
		case 1:
			tr.Add(l, 500) // heavy ties
		case 2:
			tr.Add(l, float64(rng.Intn(2000))+rng.Float64())
		}
	}
	want := tr.LinksByLoadDesc()
	var h LoadHeap
	h.Init(tr)
	for i, wl := range want {
		id, ok := h.Pop()
		if !ok {
			t.Fatalf("heap dry after %d pops, want %d", i, len(want))
		}
		if got := m.LinkByID(id); got != wl {
			t.Fatalf("pop %d: got %v, want %v", i, got, wl)
		}
	}
	if id, ok := h.Pop(); ok {
		t.Fatalf("heap still live after all loaded links popped: %v", m.LinkByID(id))
	}
}

// Interleaved mutations with lazy pushes keep the pop order equal to a
// fresh full sort: after every batch of load changes (with Push per
// changed link) plus Reactivate, the drained heap equals LinksByLoadDesc.
func TestLoadHeapLazyUpdatesMatchResort(t *testing.T) {
	m := mesh.MustNew(5, 5)
	rng := rand.New(rand.NewSource(7))
	tr := NewLoadTracker(m)
	links := m.Links()
	for _, l := range links {
		if rng.Intn(2) == 0 {
			tr.Add(l, float64(rng.Intn(1000)+1))
		}
	}
	var h LoadHeap
	h.Init(tr)
	for round := 0; round < 50; round++ {
		// Pop a few links, setting them aside (the no-improvement path).
		for k := rng.Intn(4); k > 0; k-- {
			if id, ok := h.Pop(); ok {
				h.SetAside(id)
			}
		}
		// Mutate a handful of links (removals, additions, zeroing) and
		// push each change — the applied-move path.
		for k := rng.Intn(5) + 1; k > 0; k-- {
			l := links[rng.Intn(len(links))]
			id := m.LinkID(l)
			switch rng.Intn(3) {
			case 0:
				tr.Add(l, float64(rng.Intn(800)+1))
			case 1:
				tr.Add(l, -tr.LoadID(id)) // drive to zero
			case 2:
				tr.Add(l, -tr.LoadID(id)/2)
			}
			h.Push(id)
		}
		h.Reactivate()

		// Drain a snapshot copy of the heap; compare to a full resort.
		snapshot := h
		snapshot.entries = append([]heapEntry(nil), h.entries...)
		snapshot.ver = append([]uint32(nil), h.ver...)
		want := tr.LinksByLoadDesc()
		for i, wl := range want {
			id, ok := snapshot.Pop()
			if !ok {
				t.Fatalf("round %d: heap dry after %d pops, want %d", round, i, len(want))
			}
			if got := m.LinkByID(id); got != wl {
				t.Fatalf("round %d pop %d: got %v, want %v", round, i, got, wl)
			}
		}
		if _, ok := snapshot.Pop(); ok {
			t.Fatalf("round %d: heap has live entries beyond the %d loaded links", round, len(want))
		}
	}
}

// The incidence index tracks exactly the members whose included paths
// cross each link, sorted ascending, through includes and excludes.
func TestIncidenceIndex(t *testing.T) {
	m := mesh.MustNew(4, 4)
	tr := NewLoadTracker(m)
	tr.EnableIncidence()
	a := XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 1, V: 4}) // row 1 east
	b := XY(mesh.Coord{U: 1, V: 2}, mesh.Coord{U: 1, V: 4}) // overlaps a
	c := XY(mesh.Coord{U: 3, V: 1}, mesh.Coord{U: 4, V: 1}) // disjoint
	tr.IncludePath(2, a, 100)
	tr.IncludePath(0, b, 50)
	tr.IncludePath(1, c, 10)

	shared := m.LinkID(mesh.Link{From: mesh.Coord{U: 1, V: 2}, To: mesh.Coord{U: 1, V: 3}})
	if got := tr.MembersOn(shared); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("MembersOn(shared) = %v, want [0 2]", got)
	}
	only := m.LinkID(mesh.Link{From: mesh.Coord{U: 1, V: 1}, To: mesh.Coord{U: 1, V: 2}})
	if got := tr.MembersOn(only); len(got) != 1 || got[0] != 2 {
		t.Fatalf("MembersOn(only-a) = %v, want [2]", got)
	}
	if got := tr.Load(m.LinkByID(shared)); got != 150 {
		t.Fatalf("shared load = %g, want 150", got)
	}

	tr.ExcludePath(2, a, 100)
	if got := tr.MembersOn(shared); len(got) != 1 || got[0] != 0 {
		t.Fatalf("after exclude, MembersOn(shared) = %v, want [0]", got)
	}
	if got := tr.MembersOn(only); len(got) != 0 {
		t.Fatalf("after exclude, MembersOn(only-a) = %v, want empty", got)
	}
	// Re-include under a different path (the swap idiom).
	tr.IncludePath(2, b, 100)
	if got := tr.MembersOn(shared); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("after swap, MembersOn(shared) = %v, want [0 2]", got)
	}

	// Reset switches the index off; re-enabling starts empty.
	tr.Reset()
	tr.EnableIncidence()
	if got := tr.MembersOn(shared); len(got) != 0 {
		t.Fatalf("after reset, MembersOn = %v, want empty", got)
	}
}

// The aggregate observer: running totals match a fresh recompute to within
// float drift, RecomputeAggregates resyncs them bit-exactly, and the
// drifted totals demonstrably diverge from the exact sum after thousands
// of add/remove cycles — the SA float-drift regression this tracker-level
// resync exists for.
func TestAggregateDriftAndResync(t *testing.T) {
	m := mesh.MustNew(8, 8)
	ev := power.Compile(power.KimHorowitz())
	tr := NewLoadTracker(m)
	tr.Observe(ev)

	fresh := func() (float64, float64) {
		var p, x float64
		for _, load := range tr.LoadsView() {
			p += ev.Pseudo(load)
			x += ev.Excess(load)
		}
		return p, x
	}

	rng := rand.New(rand.NewSource(99))
	links := m.Links()
	// Thousands of noisy add/remove cycles, fractional rates included, the
	// shape of a long annealing run.
	rates := make(map[int]float64)
	for it := 0; it < 20000; it++ {
		id := m.LinkID(links[rng.Intn(len(links))])
		if r, ok := rates[id]; ok && rng.Intn(2) == 0 {
			tr.AddID(id, -r)
			delete(rates, id)
		} else {
			r := rng.Float64()*1200 + 1.0/3
			tr.AddID(id, r)
			rates[id] = rates[id] + r
		}
	}

	gotP, gotX := tr.Aggregates()
	wantP, wantX := fresh()
	if drift := gotP - wantP; drift == 0 {
		t.Log("incremental pseudo-power total happens to be exact on this run")
	} else {
		t.Logf("incremental pseudo-power drift after 20000 updates: %g", drift)
	}
	// Drift stays small in relative terms…
	if rel := math.Abs(gotP-wantP) / (1 + math.Abs(wantP)); rel > 1e-9 {
		t.Errorf("pseudo-power drift too large: got %g want %g", gotP, wantP)
	}
	if rel := math.Abs(gotX-wantX) / (1 + math.Abs(wantX)); rel > 1e-9 {
		t.Errorf("excess drift too large: got %g want %g", gotX, wantX)
	}
	// …and the resync is bit-exact against the fresh sum.
	reP, reX := tr.RecomputeAggregates()
	if reP != wantP || reX != wantX {
		t.Errorf("RecomputeAggregates = (%g,%g), want exact (%g,%g)", reP, reX, wantP, wantX)
	}
	if p, x := tr.Aggregates(); p != wantP || x != wantX {
		t.Errorf("Aggregates after resync = (%g,%g), want (%g,%g)", p, x, wantP, wantX)
	}
}
