// Package route represents routings of communication sets on the mesh:
// Manhattan paths, (multi-path) flows with their rates, link-load
// accounting, validity checking against the Section 3.4 bandwidth
// constraint, and power evaluation under a power.Model.
//
// It also hosts the dense solver workspace layer (Workspace, PathSet,
// CoordSet): reusable flat-slice and bitset state every routing policy
// solves against, so repeated solves on one goroutine allocate nothing on
// the hot path. See Workspace for the pooling contract.
package route

import (
	"fmt"

	"repro/internal/mesh"
)

// Path is a sequence of adjacent directed links (Section 3.2). A valid
// path for a communication is a Manhattan (shortest) path: its length
// equals the Manhattan distance between the endpoints and every hop
// advances the communication's diagonal index by one.
type Path []mesh.Link

// Src returns the first core of the path, or ok=false for an empty path.
func (p Path) Src() (mesh.Coord, bool) {
	if len(p) == 0 {
		return mesh.Coord{}, false
	}
	return p[0].From, true
}

// Dst returns the last core of the path, or ok=false for an empty path.
func (p Path) Dst() (mesh.Coord, bool) {
	if len(p) == 0 {
		return mesh.Coord{}, false
	}
	return p[len(p)-1].To, true
}

// Validate checks that p is a valid Manhattan path from src to dst on m:
// connected, made of valid links, of minimal length, and monotone along
// the communication's quadrant.
func (p Path) Validate(m *mesh.Mesh, src, dst mesh.Coord) error {
	ell := mesh.Manhattan(src, dst)
	if len(p) != ell {
		return fmt.Errorf("route: path length %d, want Manhattan distance %d", len(p), ell)
	}
	if ell == 0 {
		return nil
	}
	d := mesh.DirectionOf(src, dst)
	cur := src
	for i, l := range p {
		if !m.ValidLink(l) {
			return fmt.Errorf("route: hop %d: invalid link %v", i, l)
		}
		if l.From != cur {
			return fmt.Errorf("route: hop %d: link %v does not start at %v", i, l, cur)
		}
		if m.DiagIndex(d, l.To) != m.DiagIndex(d, l.From)+1 {
			return fmt.Errorf("route: hop %d: link %v does not advance diagonal family %v", i, l, d)
		}
		cur = l.To
	}
	if cur != dst {
		return fmt.Errorf("route: path ends at %v, want %v", cur, dst)
	}
	return nil
}

// FromMoves builds the path starting at src and following the given unit
// moves. No mesh validation is performed; pair with Validate.
func FromMoves(src mesh.Coord, moves []mesh.Dir) Path {
	p := make(Path, 0, len(moves))
	cur := src
	for _, d := range moves {
		next := cur.Step(d)
		p = append(p, mesh.Link{From: cur, To: next})
		cur = next
	}
	return p
}

// XY returns the dimension-ordered XY path from src to dst: all horizontal
// hops first, then all vertical hops (Section 1: "data is first forwarded
// horizontally, and then vertically").
func XY(src, dst mesh.Coord) Path {
	return AppendXY(make(Path, 0, mesh.Manhattan(src, dst)), src, dst)
}

// AppendXY appends the XY path from src to dst onto p — the allocation-free
// form of XY for workspace-reusing hot loops (pass p[:0] to rebuild into a
// scratch buffer).
func AppendXY(p Path, src, dst mesh.Coord) Path {
	h, v := mesh.East, mesh.South
	if dst.V < src.V {
		h = mesh.West
	}
	if dst.U < src.U {
		v = mesh.North
	}
	cur := src
	for cur.V != dst.V {
		next := cur.Step(h)
		p = append(p, mesh.Link{From: cur, To: next})
		cur = next
	}
	for cur.U != dst.U {
		next := cur.Step(v)
		p = append(p, mesh.Link{From: cur, To: next})
		cur = next
	}
	return p
}

// YX returns the YX path: all vertical hops first, then horizontal.
func YX(src, dst mesh.Coord) Path {
	moves := make([]mesh.Dir, 0, mesh.Manhattan(src, dst))
	h, v := mesh.East, mesh.South
	if dst.V < src.V {
		h = mesh.West
	}
	if dst.U < src.U {
		v = mesh.North
	}
	for i := 0; i < abs(dst.U-src.U); i++ {
		moves = append(moves, v)
	}
	for i := 0; i < abs(dst.V-src.V); i++ {
		moves = append(moves, h)
	}
	return FromMoves(src, moves)
}

// Bends counts the direction changes along the path (0 for straight
// lines and empty paths). The TB heuristic restricts itself to paths with
// at most two bends.
func (p Path) Bends() int {
	if len(p) < 2 {
		return 0
	}
	bends := 0
	for i := 1; i < len(p); i++ {
		if p[i].Dir() != p[i-1].Dir() {
			bends++
		}
	}
	return bends
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
