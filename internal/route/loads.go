package route

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/mesh"
	"repro/internal/power"
)

// LoadTracker is the mutable link-load account the greedy heuristics work
// against: O(1) add/remove/query by link, plus power-oriented queries.
// Loads are guarded against drifting negative by clamping tiny negative
// residues from floating-point removal back to zero.
type LoadTracker struct {
	mesh  *mesh.Mesh
	loads []float64
	// entries is the reusable sort scratch of LinksByLoadDescInto.
	entries []loadEntry
}

// loadEntry pairs a dense link id with its load for the descending sort.
type loadEntry struct {
	id   int
	load float64
}

// NewLoadTracker returns an empty tracker for the mesh.
func NewLoadTracker(m *mesh.Mesh) *LoadTracker {
	return &LoadTracker{mesh: m, loads: make([]float64, m.LinkIDSpace())}
}

// Mesh returns the tracker's mesh.
func (t *LoadTracker) Mesh() *mesh.Mesh { return t.mesh }

// Add adds rate to the load of link l (rate may be negative to remove).
func (t *LoadTracker) Add(l mesh.Link, rate float64) {
	id := t.mesh.LinkID(l)
	t.loads[id] += rate
	if t.loads[id] < 0 {
		if t.loads[id] < -1e-6 {
			panic(fmt.Sprintf("route: load of %v driven to %g", l, t.loads[id]))
		}
		t.loads[id] = 0
	}
}

// AddPath adds rate along every link of the path.
func (t *LoadTracker) AddPath(p Path, rate float64) {
	for _, l := range p {
		t.Add(l, rate)
	}
}

// Load returns the current load of link l.
func (t *LoadTracker) Load(l mesh.Link) float64 { return t.loads[t.mesh.LinkID(l)] }

// LoadID returns the current load of the link with the given dense id.
func (t *LoadTracker) LoadID(id int) float64 { return t.loads[id] }

// Loads returns a copy of the per-link load vector (indexed by LinkID).
func (t *LoadTracker) Loads() []float64 {
	return t.LoadsInto(nil)
}

// LoadsInto copies the per-link load vector into dst (reusing its backing
// array when large enough) — the scratch-reusing form of Loads for hot
// evaluation loops.
func (t *LoadTracker) LoadsInto(dst []float64) []float64 {
	return append(dst[:0], t.loads...)
}

// LoadsView returns the tracker's internal load vector without copying.
// The slice is indexed by mesh.LinkID, must not be mutated, and is
// invalidated by the next tracker mutation — use it for read-only
// evaluation on the hot path and Loads/LoadsInto everywhere else.
func (t *LoadTracker) LoadsView() []float64 { return t.loads }

// Clone returns an independent copy of the tracker.
func (t *LoadTracker) Clone() *LoadTracker {
	return &LoadTracker{mesh: t.mesh, loads: t.Loads()}
}

// Reset zeroes all loads.
func (t *LoadTracker) Reset() {
	for i := range t.loads {
		t.loads[i] = 0
	}
}

// MaxLoad returns the largest current load.
func (t *LoadTracker) MaxLoad() float64 {
	max := 0.0
	for _, l := range t.loads {
		if l > max {
			max = l
		}
	}
	return max
}

// LinksByLoadDesc returns every loaded link sorted by decreasing load
// (ties by link id for determinism), the scan order of the XYI and PR
// heuristics.
func (t *LoadTracker) LinksByLoadDesc() []mesh.Link {
	return t.LinksByLoadDescInto(nil)
}

// LinksByLoadDescInto is LinksByLoadDesc building into dst (reusing its
// backing array) and sorting in tracker-owned scratch, so the XYI and PR
// rescan loops pay no allocation per iteration. The ordering is identical
// to LinksByLoadDesc: decreasing load, ties by increasing link id.
func (t *LoadTracker) LinksByLoadDescInto(dst []mesh.Link) []mesh.Link {
	t.entries = t.entries[:0]
	for id, load := range t.loads {
		if load > 0 {
			t.entries = append(t.entries, loadEntry{id, load})
		}
	}
	slices.SortFunc(t.entries, func(a, b loadEntry) int {
		switch {
		case a.load > b.load:
			return -1
		case a.load < b.load:
			return 1
		default:
			return a.id - b.id
		}
	})
	dst = dst[:0]
	for _, e := range t.entries {
		dst = append(dst, t.mesh.LinkByID(e.id))
	}
	return dst
}

// Power evaluates the tracked loads under the model.
func (t *LoadTracker) Power(model power.Model) (power.Breakdown, error) {
	return model.Total(t.loads)
}

// SetRouting resets the tracker and accumulates the routing's flows — the
// scratch-reusing form of Routing.Loads for hot loops.
func (t *LoadTracker) SetRouting(r Routing) {
	t.Reset()
	for _, f := range r.Flows {
		t.AddPath(f.Path, f.Comm.Rate)
	}
}

// Evaluate returns the power breakdown and feasibility of the tracked
// loads without allocating: infeasible loads report ok=false instead of
// constructing the overload error that Power returns. It is the
// allocation-free evaluation used by the experiment engine's per-trial
// path.
func (t *LoadTracker) Evaluate(model power.Model) (power.Breakdown, bool) {
	if !model.Feasible(t.loads) {
		return power.Breakdown{}, false
	}
	b, err := model.Total(t.loads)
	if err != nil {
		return power.Breakdown{}, false
	}
	return b, true
}

// LinkPowerWith returns the power of link l if extra were added to its
// current load. Infeasible loads return +Inf so greedy comparisons
// naturally avoid them; the error is still reported by the final Evaluate.
func (t *LoadTracker) LinkPowerWith(model power.Model, l mesh.Link, extra float64) float64 {
	p, ok := model.LinkPowerOK(t.Load(l) + extra)
	if !ok {
		return inf
	}
	return p
}

// DeltaPower returns the change in link power caused by adding extra to
// link l (infeasible additions return +Inf).
func (t *LoadTracker) DeltaPower(model power.Model, l mesh.Link, extra float64) float64 {
	before, ok := model.LinkPowerOK(t.Load(l))
	if !ok {
		return inf
	}
	after, ok := model.LinkPowerOK(t.Load(l) + extra)
	if !ok {
		return inf
	}
	return after - before
}

var inf = math.Inf(1)
