package route

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/topo"
)

// LoadTracker is the mutable link-load account the greedy heuristics work
// against: O(1) add/remove/query by link, plus power-oriented queries.
// Loads are guarded against drifting negative by clamping tiny negative
// residues from floating-point removal back to zero.
//
// Two optional accelerations serve the refinement heuristics' hot loops
// (both off by default and switched off again by Reset):
//
//   - An incidence index (Observe-independent): EnableIncidence plus the
//     IncludePath/ExcludePath pair maintain, per link, the sorted list of
//     member ids whose path currently crosses it, so a local-search
//     candidate scan visits only the crossing flows instead of every
//     communication (MembersOn).
//   - An aggregate observer: Observe attaches a compiled power.Evaluator
//     and keeps running totals of the pseudo-power and overload excess of
//     all tracked loads, maintained incrementally on every Add, so a
//     refinement loop reads its objective in O(1) (Aggregates). The
//     running totals accumulate float rounding across many updates;
//     RecomputeAggregates resyncs them to the exact fresh sum.
type LoadTracker struct {
	// mesh is non-nil when tracking a mesh platform and keeps the hot
	// loops on the closed-form LinkIDFast; topo is the platform for
	// every topology (for a mesh tracker it holds the same mesh).
	mesh  *mesh.Mesh
	topo  topo.Topology
	loads []float64
	// entries is the reusable sort scratch of LinksByLoadDescInto.
	entries []loadEntry

	// inc[id] is the sorted member list of link id when the incidence
	// index is enabled (incOn); the backing arrays persist across solves.
	inc   [][]int32
	incOn bool

	// ev, when non-nil, is the attached aggregate observer with its
	// running totals; pseudoOf caches each link's current pseudo-power
	// (valid only while observing), so "before" probes of swap
	// evaluations are an array read instead of an evaluator call.
	ev        *power.Evaluator
	aggPower  float64
	aggExcess float64
	pseudoOf  []float64
}

// loadEntry pairs a dense link id with its load for the descending sort.
type loadEntry struct {
	id   int
	load float64
}

// NewLoadTracker returns an empty tracker for the mesh.
func NewLoadTracker(m *mesh.Mesh) *LoadTracker {
	return &LoadTracker{mesh: m, topo: m, loads: make([]float64, m.LinkIDSpace())}
}

// NewLoadTrackerTopo returns an empty tracker for any topology. A mesh
// argument yields exactly NewLoadTracker (the fast-path fields are set
// whenever the platform is a mesh).
func NewLoadTrackerTopo(tp topo.Topology) *LoadTracker {
	if m, ok := tp.(*mesh.Mesh); ok {
		return NewLoadTracker(m)
	}
	return &LoadTracker{topo: tp, loads: make([]float64, tp.LinkIDSpace())}
}

// Mesh returns the tracker's mesh (nil for non-mesh topologies).
func (t *LoadTracker) Mesh() *mesh.Mesh { return t.mesh }

// Topo returns the tracker's platform topology.
func (t *LoadTracker) Topo() topo.Topology { return t.topo }

// linkID resolves a link's dense id on the tracked platform.
func (t *LoadTracker) linkID(l mesh.Link) int {
	if t.mesh != nil {
		return t.mesh.LinkID(l)
	}
	return t.topo.LinkID(l)
}

// linkIDFast is linkID for links valid by construction: the mesh keeps
// its check-free closed form, other topologies fall back to LinkID.
func (t *LoadTracker) linkIDFast(l mesh.Link) int {
	if t.mesh != nil {
		return t.mesh.LinkIDFast(l)
	}
	return t.topo.LinkID(l)
}

// linkByID inverts linkID on the tracked platform.
func (t *LoadTracker) linkByID(id int) mesh.Link {
	if t.mesh != nil {
		return t.mesh.LinkByID(id)
	}
	return t.topo.LinkByID(id)
}

// Add adds rate to the load of link l (rate may be negative to remove).
func (t *LoadTracker) Add(l mesh.Link, rate float64) {
	t.AddID(t.linkID(l), rate)
}

// AddID is Add by dense link id.
func (t *LoadTracker) AddID(id int, rate float64) {
	old := t.loads[id]
	next := old + rate
	if next < 0 {
		if next < -1e-6 {
			panic(fmt.Sprintf("route: load of %v driven to %g", t.linkByID(id), next))
		}
		next = 0
	}
	t.loads[id] = next
	if t.ev != nil {
		np := t.ev.Pseudo(next)
		t.aggPower += np - t.pseudoOf[id]
		t.pseudoOf[id] = np
		t.aggExcess += t.ev.Excess(next) - t.ev.Excess(old)
	}
}

// AddPath adds rate along every link of the path.
func (t *LoadTracker) AddPath(p Path, rate float64) {
	for _, l := range p {
		t.Add(l, rate)
	}
}

// Load returns the current load of link l.
func (t *LoadTracker) Load(l mesh.Link) float64 { return t.loads[t.linkID(l)] }

// LoadID returns the current load of the link with the given dense id.
func (t *LoadTracker) LoadID(id int) float64 { return t.loads[id] }

// Loads returns a copy of the per-link load vector (indexed by LinkID).
func (t *LoadTracker) Loads() []float64 {
	return t.LoadsInto(nil)
}

// LoadsInto copies the per-link load vector into dst (reusing its backing
// array when large enough) — the scratch-reusing form of Loads for hot
// evaluation loops.
func (t *LoadTracker) LoadsInto(dst []float64) []float64 {
	return append(dst[:0], t.loads...)
}

// LoadsView returns the tracker's internal load vector without copying.
// The slice is indexed by mesh.LinkID, must not be mutated, and is
// invalidated by the next tracker mutation — use it for read-only
// evaluation on the hot path and Loads/LoadsInto everywhere else.
func (t *LoadTracker) LoadsView() []float64 { return t.loads }

// Clone returns an independent copy of the tracker's loads. The incidence
// index and aggregate observer are not carried over.
func (t *LoadTracker) Clone() *LoadTracker {
	return &LoadTracker{mesh: t.mesh, topo: t.topo, loads: t.Loads()}
}

// Reset zeroes all loads and switches off the incidence index and the
// aggregate observer.
func (t *LoadTracker) Reset() {
	for i := range t.loads {
		t.loads[i] = 0
	}
	t.incOn = false
	t.ev = nil
	t.aggPower, t.aggExcess = 0, 0
}

// EnableIncidence switches the link→member incidence index on, emptied.
// While enabled, route all load changes through IncludePath/ExcludePath so
// the index stays in sync with the loads.
func (t *LoadTracker) EnableIncidence() {
	if len(t.inc) != len(t.loads) {
		t.inc = make([][]int32, len(t.loads))
	}
	for id := range t.inc {
		t.inc[id] = t.inc[id][:0]
	}
	t.incOn = true
}

// IncludePath adds rate along the path and records member on every link of
// it. Members are arbitrary small non-negative ints (the heuristics use
// the communication's position in the instance set); MembersOn returns
// them in ascending order, so an incidence-driven scan visits crossing
// flows in the same relative order as a full scan of the set.
func (t *LoadTracker) IncludePath(member int, p Path, rate float64) {
	for _, l := range p {
		id := t.linkIDFast(l)
		t.AddID(id, rate)
		if t.incOn {
			list := t.inc[id]
			i, found := slices.BinarySearch(list, int32(member))
			if !found {
				t.inc[id] = slices.Insert(list, i, int32(member))
			}
		}
	}
}

// ExcludePath removes rate along the path and removes member from every
// link of it — the inverse of IncludePath.
func (t *LoadTracker) ExcludePath(member int, p Path, rate float64) {
	for _, l := range p {
		id := t.linkIDFast(l)
		t.AddID(id, -rate)
		if t.incOn {
			list := t.inc[id]
			if i, found := slices.BinarySearch(list, int32(member)); found {
				t.inc[id] = slices.Delete(list, i, i+1)
			}
		}
	}
}

// MembersOn returns the sorted member ids whose included path crosses the
// link with the given dense id. The slice aliases tracker state: it is
// valid until the next IncludePath/ExcludePath call and must not be
// mutated.
func (t *LoadTracker) MembersOn(id int) []int32 {
	if !t.incOn {
		panic("route: MembersOn without EnableIncidence")
	}
	return t.inc[id]
}

// Observe attaches ev as the tracker's aggregate observer and computes the
// exact aggregate totals of the current loads. Subsequent Adds maintain
// the totals incrementally; Reset detaches.
func (t *LoadTracker) Observe(ev *power.Evaluator) {
	t.ev = ev
	t.RecomputeAggregates()
}

// Aggregates returns the running totals of pseudo-power and overload
// excess over all tracked loads, as maintained incrementally since the
// last Observe/RecomputeAggregates. It panics without an observer.
func (t *LoadTracker) Aggregates() (pseudoPower, excess float64) {
	if t.ev == nil {
		panic("route: Aggregates without Observe")
	}
	return t.aggPower, t.aggExcess
}

// RecomputeAggregates resyncs the running totals (and the per-link
// pseudo-power cache) to the exact fresh sum over the load vector in
// link-id order — the float-drift resync point of long refinement loops —
// and returns them.
func (t *LoadTracker) RecomputeAggregates() (pseudoPower, excess float64) {
	if t.ev == nil {
		panic("route: RecomputeAggregates without Observe")
	}
	if len(t.pseudoOf) != len(t.loads) {
		t.pseudoOf = make([]float64, len(t.loads))
	}
	var p, x float64
	for id, load := range t.loads {
		lp := t.ev.Pseudo(load)
		t.pseudoOf[id] = lp
		p += lp
		x += t.ev.Excess(load)
	}
	t.aggPower, t.aggExcess = p, x
	return p, x
}

// Observing reports whether an aggregate observer is attached (and hence
// the PseudoID cache is valid).
func (t *LoadTracker) Observing() bool { return t.ev != nil }

// PseudoID returns the cached pseudo-power of the link with the given
// dense id under the observing evaluator — always bit-identical to
// evaluating the link's current load afresh. Only valid while observing.
func (t *LoadTracker) PseudoID(id int) float64 { return t.pseudoOf[id] }

// MaxLoad returns the largest current load.
func (t *LoadTracker) MaxLoad() float64 {
	max := 0.0
	for _, l := range t.loads {
		if l > max {
			max = l
		}
	}
	return max
}

// LinksByLoadDesc returns every loaded link sorted by decreasing load
// (ties by link id for determinism), the scan order of the XYI and PR
// heuristics.
func (t *LoadTracker) LinksByLoadDesc() []mesh.Link {
	return t.LinksByLoadDescInto(nil)
}

// LinksByLoadDescInto is LinksByLoadDesc building into dst (reusing its
// backing array) and sorting in tracker-owned scratch, so a rescan loop
// pays no allocation per iteration. The ordering is identical to
// LinksByLoadDesc: decreasing load, ties by increasing link id — and to
// the pop order of a LoadHeap over the same tracker.
func (t *LoadTracker) LinksByLoadDescInto(dst []mesh.Link) []mesh.Link {
	t.entries = t.entries[:0]
	for id, load := range t.loads {
		if load > 0 {
			t.entries = append(t.entries, loadEntry{id, load})
		}
	}
	slices.SortFunc(t.entries, func(a, b loadEntry) int {
		switch {
		case a.load > b.load:
			return -1
		case a.load < b.load:
			return 1
		default:
			return a.id - b.id
		}
	})
	dst = dst[:0]
	for _, e := range t.entries {
		dst = append(dst, t.linkByID(e.id))
	}
	return dst
}

// Power evaluates the tracked loads under the model.
func (t *LoadTracker) Power(model power.Model) (power.Breakdown, error) {
	return model.Total(t.loads)
}

// SetRouting resets the tracker and accumulates the routing's flows — the
// scratch-reusing form of Routing.Loads for hot loops.
func (t *LoadTracker) SetRouting(r Routing) {
	t.Reset()
	for _, f := range r.Flows {
		t.AddPath(f.Path, f.Comm.Rate)
	}
}

// Evaluate returns the power breakdown and feasibility of the tracked
// loads without allocating: infeasible loads report ok=false instead of
// constructing the overload error that Power returns. It is the
// allocation-free evaluation used by the experiment engine's per-trial
// path.
func (t *LoadTracker) Evaluate(model power.Model) (power.Breakdown, bool) {
	if !model.Feasible(t.loads) {
		return power.Breakdown{}, false
	}
	b, err := model.Total(t.loads)
	if err != nil {
		return power.Breakdown{}, false
	}
	return b, true
}

// LinkPowerWith returns the power of link l if extra were added to its
// current load. Infeasible loads return +Inf so greedy comparisons
// naturally avoid them; the error is still reported by the final Evaluate.
func (t *LoadTracker) LinkPowerWith(model power.Model, l mesh.Link, extra float64) float64 {
	p, ok := model.LinkPowerOK(t.Load(l) + extra)
	if !ok {
		return inf
	}
	return p
}

// LinkPowerWithEv is LinkPowerWith against a compiled evaluator — the
// table-lookup form for greedy hot loops.
func (t *LoadTracker) LinkPowerWithEv(ev *power.Evaluator, l mesh.Link, extra float64) float64 {
	p, ok := ev.LinkPowerOK(t.Load(l) + extra)
	if !ok {
		return inf
	}
	return p
}

// DeltaPower returns the change in link power caused by adding extra to
// link l (infeasible additions return +Inf).
func (t *LoadTracker) DeltaPower(model power.Model, l mesh.Link, extra float64) float64 {
	before, ok := model.LinkPowerOK(t.Load(l))
	if !ok {
		return inf
	}
	after, ok := model.LinkPowerOK(t.Load(l) + extra)
	if !ok {
		return inf
	}
	return after - before
}

// DeltaPowerEv is DeltaPower against a compiled evaluator.
func (t *LoadTracker) DeltaPowerEv(ev *power.Evaluator, l mesh.Link, extra float64) float64 {
	load := t.Load(l)
	before, ok := ev.LinkPowerOK(load)
	if !ok {
		return inf
	}
	after, ok := ev.LinkPowerOK(load + extra)
	if !ok {
		return inf
	}
	return after - before
}

var inf = math.Inf(1)
