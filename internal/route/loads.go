package route

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mesh"
	"repro/internal/power"
)

// LoadTracker is the mutable link-load account the greedy heuristics work
// against: O(1) add/remove/query by link, plus power-oriented queries.
// Loads are guarded against drifting negative by clamping tiny negative
// residues from floating-point removal back to zero.
type LoadTracker struct {
	mesh  *mesh.Mesh
	loads []float64
}

// NewLoadTracker returns an empty tracker for the mesh.
func NewLoadTracker(m *mesh.Mesh) *LoadTracker {
	return &LoadTracker{mesh: m, loads: make([]float64, m.LinkIDSpace())}
}

// Mesh returns the tracker's mesh.
func (t *LoadTracker) Mesh() *mesh.Mesh { return t.mesh }

// Add adds rate to the load of link l (rate may be negative to remove).
func (t *LoadTracker) Add(l mesh.Link, rate float64) {
	id := t.mesh.LinkID(l)
	t.loads[id] += rate
	if t.loads[id] < 0 {
		if t.loads[id] < -1e-6 {
			panic(fmt.Sprintf("route: load of %v driven to %g", l, t.loads[id]))
		}
		t.loads[id] = 0
	}
}

// AddPath adds rate along every link of the path.
func (t *LoadTracker) AddPath(p Path, rate float64) {
	for _, l := range p {
		t.Add(l, rate)
	}
}

// Load returns the current load of link l.
func (t *LoadTracker) Load(l mesh.Link) float64 { return t.loads[t.mesh.LinkID(l)] }

// LoadID returns the current load of the link with the given dense id.
func (t *LoadTracker) LoadID(id int) float64 { return t.loads[id] }

// Loads returns a copy of the per-link load vector (indexed by LinkID).
func (t *LoadTracker) Loads() []float64 {
	out := make([]float64, len(t.loads))
	copy(out, t.loads)
	return out
}

// Clone returns an independent copy of the tracker.
func (t *LoadTracker) Clone() *LoadTracker {
	return &LoadTracker{mesh: t.mesh, loads: t.Loads()}
}

// Reset zeroes all loads.
func (t *LoadTracker) Reset() {
	for i := range t.loads {
		t.loads[i] = 0
	}
}

// MaxLoad returns the largest current load.
func (t *LoadTracker) MaxLoad() float64 {
	max := 0.0
	for _, l := range t.loads {
		if l > max {
			max = l
		}
	}
	return max
}

// LinksByLoadDesc returns every loaded link sorted by decreasing load
// (ties by link id for determinism), the scan order of the XYI and PR
// heuristics.
func (t *LoadTracker) LinksByLoadDesc() []mesh.Link {
	type entry struct {
		id   int
		load float64
	}
	entries := make([]entry, 0, 64)
	for id, load := range t.loads {
		if load > 0 {
			entries = append(entries, entry{id, load})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].load != entries[j].load {
			return entries[i].load > entries[j].load
		}
		return entries[i].id < entries[j].id
	})
	out := make([]mesh.Link, len(entries))
	for i, e := range entries {
		out[i] = t.mesh.LinkByID(e.id)
	}
	return out
}

// Power evaluates the tracked loads under the model.
func (t *LoadTracker) Power(model power.Model) (power.Breakdown, error) {
	return model.Total(t.loads)
}

// SetRouting resets the tracker and accumulates the routing's flows — the
// scratch-reusing form of Routing.Loads for hot loops.
func (t *LoadTracker) SetRouting(r Routing) {
	t.Reset()
	for _, f := range r.Flows {
		t.AddPath(f.Path, f.Comm.Rate)
	}
}

// Evaluate returns the power breakdown and feasibility of the tracked
// loads without allocating: infeasible loads report ok=false instead of
// constructing the overload error that Power returns. It is the
// allocation-free evaluation used by the experiment engine's per-trial
// path.
func (t *LoadTracker) Evaluate(model power.Model) (power.Breakdown, bool) {
	if !model.Feasible(t.loads) {
		return power.Breakdown{}, false
	}
	b, err := model.Total(t.loads)
	if err != nil {
		return power.Breakdown{}, false
	}
	return b, true
}

// LinkPowerWith returns the power of link l if extra were added to its
// current load. Infeasible loads return +Inf so greedy comparisons
// naturally avoid them; the error is still reported by the final Evaluate.
func (t *LoadTracker) LinkPowerWith(model power.Model, l mesh.Link, extra float64) float64 {
	p, err := model.LinkPower(t.Load(l) + extra)
	if err != nil {
		return inf
	}
	return p
}

// DeltaPower returns the change in link power caused by adding extra to
// link l (infeasible additions return +Inf).
func (t *LoadTracker) DeltaPower(model power.Model, l mesh.Link, extra float64) float64 {
	before, err := model.LinkPower(t.Load(l))
	if err != nil {
		return inf
	}
	after, err := model.LinkPower(t.Load(l) + extra)
	if err != nil {
		return inf
	}
	return after - before
}

var inf = math.Inf(1)
