package route

import (
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/power"
)

func TestLoadTrackerAddRemove(t *testing.T) {
	m := mesh.MustNew(3, 3)
	tr := NewLoadTracker(m)
	l := mesh.Link{From: mesh.Coord{U: 1, V: 1}, To: mesh.Coord{U: 1, V: 2}}
	tr.Add(l, 100)
	tr.Add(l, 50)
	if got := tr.Load(l); got != 150 {
		t.Fatalf("Load = %g, want 150", got)
	}
	tr.Add(l, -150)
	if got := tr.Load(l); got != 0 {
		t.Fatalf("Load after removal = %g, want 0", got)
	}
	// Tiny negative residue clamps silently.
	tr.Add(l, 1.0/3)
	tr.Add(l, -1.0/3-1e-12)
	if got := tr.Load(l); got != 0 {
		t.Fatalf("Load after noisy removal = %g, want 0", got)
	}
}

func TestLoadTrackerPanicsOnLargeNegative(t *testing.T) {
	m := mesh.MustNew(3, 3)
	tr := NewLoadTracker(m)
	l := mesh.Link{From: mesh.Coord{U: 1, V: 1}, To: mesh.Coord{U: 1, V: 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("large negative load did not panic")
		}
	}()
	tr.Add(l, -5)
}

func TestLoadTrackerAddPathAndClone(t *testing.T) {
	m := mesh.MustNew(4, 4)
	tr := NewLoadTracker(m)
	p := XY(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 3, V: 4})
	tr.AddPath(p, 10)
	clone := tr.Clone()
	clone.AddPath(p, 5)
	for _, l := range p {
		if tr.Load(l) != 10 {
			t.Fatalf("original mutated: %g", tr.Load(l))
		}
		if clone.Load(l) != 15 {
			t.Fatalf("clone load %g, want 15", clone.Load(l))
		}
	}
	clone.Reset()
	if clone.MaxLoad() != 0 {
		t.Fatal("Reset left residual load")
	}
}

func TestLinksByLoadDesc(t *testing.T) {
	m := mesh.MustNew(3, 3)
	tr := NewLoadTracker(m)
	l1 := mesh.Link{From: mesh.Coord{U: 1, V: 1}, To: mesh.Coord{U: 1, V: 2}}
	l2 := mesh.Link{From: mesh.Coord{U: 2, V: 1}, To: mesh.Coord{U: 2, V: 2}}
	l3 := mesh.Link{From: mesh.Coord{U: 3, V: 1}, To: mesh.Coord{U: 3, V: 2}}
	tr.Add(l1, 5)
	tr.Add(l2, 20)
	tr.Add(l3, 10)
	got := tr.LinksByLoadDesc()
	if len(got) != 3 || got[0] != l2 || got[1] != l3 || got[2] != l1 {
		t.Fatalf("LinksByLoadDesc = %v", got)
	}
}

func TestLinksByLoadDescDeterministicTies(t *testing.T) {
	m := mesh.MustNew(3, 3)
	tr := NewLoadTracker(m)
	for _, l := range m.Links()[:6] {
		tr.Add(l, 7)
	}
	a := tr.LinksByLoadDesc()
	b := tr.LinksByLoadDesc()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie order not deterministic")
		}
	}
}

func TestDeltaPowerAndLinkPowerWith(t *testing.T) {
	m := mesh.MustNew(2, 2)
	model := power.Figure2() // P = load³, BW 4
	tr := NewLoadTracker(m)
	l := mesh.Link{From: mesh.Coord{U: 1, V: 1}, To: mesh.Coord{U: 1, V: 2}}
	tr.Add(l, 1)
	if got := tr.LinkPowerWith(model, l, 1); math.Abs(got-8) > 1e-9 {
		t.Errorf("LinkPowerWith = %g, want 8", got)
	}
	if got := tr.DeltaPower(model, l, 1); math.Abs(got-7) > 1e-9 {
		t.Errorf("DeltaPower = %g, want 7 (2³−1³)", got)
	}
	// Overload ⇒ +Inf.
	if got := tr.DeltaPower(model, l, 100); !math.IsInf(got, 1) {
		t.Errorf("overload DeltaPower = %g, want +Inf", got)
	}
	if got := tr.LinkPowerWith(model, l, 100); !math.IsInf(got, 1) {
		t.Errorf("overload LinkPowerWith = %g, want +Inf", got)
	}
}

func TestTrackerPowerMatchesEvaluate(t *testing.T) {
	m := grid()
	model := power.KimHorowitz()
	g := c(1, 1, 1, 5, 6, 900)
	r := Routing{Mesh: m, Flows: []Flow{{Comm: g, Path: XY(g.Src, g.Dst)}}}
	res := Evaluate(r, model)

	tr := NewLoadTracker(m)
	tr.AddPath(XY(g.Src, g.Dst), 900)
	b, err := tr.Power(model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Total()-res.Power.Total()) > 1e-9 {
		t.Errorf("tracker power %g != evaluate power %g", b.Total(), res.Power.Total())
	}
}
