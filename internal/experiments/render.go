package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/tables"
)

// Tables renders a panel result as the two tables matching the paper's
// two y-axes: normalized power inverse and failure ratio, one row per
// x-value, one column per policy of the panel's list.
func (r Result) Tables() (normPower, failures *tables.Table) {
	headers := make([]string, 0, len(r.Series)+1)
	headers = append(headers, r.Panel.XLabel)
	for _, s := range r.Series {
		headers = append(headers, s.Name)
	}
	normPower = tables.New(r.Panel.Title+" — normalized power inverse", headers...)
	failures = tables.New(r.Panel.Title+" — failure ratio", headers...)
	for pi, x := range r.X {
		np := make([]float64, 0, len(r.Series))
		fr := make([]float64, 0, len(r.Series))
		for _, s := range r.Series {
			np = append(np, s.NormPowerInv[pi])
			fr = append(fr, s.FailureRatio[pi])
		}
		label := fmt.Sprintf("%g", x)
		normPower.AddFloatRow(label, 3, np...)
		failures.AddFloatRow(label, 3, fr...)
	}
	return normPower, failures
}

// Table renders the §6.4 summary against the paper's reported values.
func (s Summary) Table() *tables.Table {
	names := s.Names
	if len(names) == 0 {
		names = HeuristicNames
	}
	ref := s.Ref
	if ref == "" {
		ref = "XY"
	}
	t := tables.New(
		fmt.Sprintf("Section 6.4 summary (%d instances)", s.Instances),
		"heuristic", "success", "paper", "inv-power gain vs "+ref, "paper", "mean time")
	paperSuccess := map[string]string{"XY": "0.15", "XYI": "0.46", "PR": "0.50", "BEST": "0.51"}
	paperGain := map[string]string{"XY": "1.00", "XYI": "2.44", "PR": "2.57", "BEST": "2.95"}
	if ref != "XY" {
		paperSuccess, paperGain = nil, nil // the paper's numbers are XY-normalized
	}
	for _, name := range names {
		dur := "-"
		if d, ok := s.MeanSolveTime[name]; ok {
			dur = d.Round(10 * time.Microsecond).String()
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", s.Success[name]), orDash(paperSuccess[name]),
			fmt.Sprintf("%.2f", s.InvPowerGainVsXY[name]), orDash(paperGain[name]),
			dur)
	}
	t.AddRow("static fraction", fmt.Sprintf("%.3f", s.StaticFraction), "≈0.143 (1/7)", "", "", "")
	return t
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Figure2Table renders the Figure 2 routing-rule comparison against the
// paper's values.
func Figure2Table(pxy, p1mp, p2mp float64) *tables.Table {
	t := tables.New("Figure 2: comparison of routing rules (2x2 mesh, Pleak=0, P0=1, α=3, BW=4)",
		"routing", "power", "paper")
	t.AddRow("XY", fmt.Sprintf("%g", pxy), "128")
	t.AddRow("best 1-MP", fmt.Sprintf("%g", p1mp), "56")
	t.AddRow("best 2-MP (γ2 split 1+2)", fmt.Sprintf("%g", p2mp), "32")
	return t
}

// Theorem1Table renders the Theorem 1 rows.
func Theorem1Table(rows []Theorem1Row) *tables.Table {
	t := tables.New("Theorem 1 / Figure 4: PXY/Pmax on p×p, single src/dst (α=3)",
		"p", "PXY", "Pmax", "ratio", "ratio/p")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.P),
			fmt.Sprintf("%.4g", r.PXY), fmt.Sprintf("%.4g", r.PMax),
			fmt.Sprintf("%.3f", r.Ratio), fmt.Sprintf("%.4f", r.PerRow))
	}
	return t
}

// Lemma2Table renders the Lemma 2 rows.
func Lemma2Table(rows []Lemma2Row, alpha float64) *tables.Table {
	t := tables.New(
		fmt.Sprintf("Lemma 2 / Figure 5: staircase PXY/PYX (α=%g)", alpha),
		"p'", "PXY", "PYX", "ratio", "ratio/p'^(α−1)")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.PPrime),
			fmt.Sprintf("%.4g", r.PXY), fmt.Sprintf("%.4g", r.PYX),
			fmt.Sprintf("%.3f", r.Ratio), fmt.Sprintf("%.4f", r.Normalized))
	}
	return t
}

// OpenProblemTable renders the conclusion's open-problem measurements.
func OpenProblemTable(rows []OpenProblemRow, alpha float64) *tables.Table {
	t := tables.New(
		fmt.Sprintf("Open problem (§7): 1-MP gain for same source/destination traffic (α=%g)", alpha),
		"p", "n", "PXY", "P1MP", "ratio", "optimal?")
	for _, r := range rows {
		opt := "heuristic"
		if r.Exact {
			opt = "exact"
		}
		t.AddRow(fmt.Sprintf("%d", r.P), fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%.4g", r.PXY), fmt.Sprintf("%.4g", r.P1MP),
			fmt.Sprintf("%.3f", r.Ratio), opt)
	}
	return t
}

// SortedHeuristics returns heuristic names sorted for deterministic map
// iteration in reports.
func SortedHeuristics(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
