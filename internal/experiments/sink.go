package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/tables"
)

// SweepMeta describes a streaming sweep to its sinks: captions, the
// canonical policy order of every PointResult's value slices, the planned
// x-positions, and the resume offset (sinks appending to existing output
// skip their headers when Start is non-zero).
type SweepMeta struct {
	ID       string
	Title    string
	XLabel   string
	Policies []string
	X        []float64
	Trials   int
	Start    int
}

// PointResult is one fully evaluated sweep point: the two y-values of
// every policy, ordered like SweepMeta.Policies.
type PointResult struct {
	Index        int
	X            float64
	NormPowerInv []float64
	FailureRatio []float64
}

// Sink consumes a sweep incrementally: Begin once with the metadata,
// Point once per evaluated x-position in order, End once after the last
// point. Long sweeps flow through sinks point by point, so partial output
// exists the moment a point finishes — the streaming contract behind
// checkpointed CSV/JSONL files — and a sink may allocate per point but
// must never be called on the per-trial path.
type Sink interface {
	Begin(meta SweepMeta) error
	Point(pr PointResult) error
	End() error
}

// floatPrec is the cell precision of the figure tables and CSVs.
const floatPrec = 3

// xLabel formats an x-position the way the figure tables always have.
func xLabel(x float64) string { return fmt.Sprintf("%g", x) }

// CSVSink streams the two per-point series as CSV rows: normalized
// inverse power to Power, failure ratios to Failures. Output is
// byte-identical to Table.WriteCSV over the accumulated result (shared
// tables.CSVLine formatter); on resume (meta.Start > 0) the headers are
// suppressed so rows append seamlessly to an existing file.
type CSVSink struct {
	Power    io.Writer
	Failures io.Writer
}

// NewCSVSink returns a CSV sink over the two writers.
func NewCSVSink(power, failures io.Writer) *CSVSink {
	return &CSVSink{Power: power, Failures: failures}
}

// Begin implements Sink.
func (s *CSVSink) Begin(meta SweepMeta) error {
	if meta.Start > 0 {
		return nil
	}
	header := append([]string{meta.XLabel}, meta.Policies...)
	if _, err := io.WriteString(s.Power, tables.CSVLine(header)); err != nil {
		return err
	}
	_, err := io.WriteString(s.Failures, tables.CSVLine(header))
	return err
}

// Point implements Sink.
func (s *CSVSink) Point(pr PointResult) error {
	if _, err := io.WriteString(s.Power, tables.CSVLine(csvRow(pr.X, pr.NormPowerInv))); err != nil {
		return err
	}
	_, err := io.WriteString(s.Failures, tables.CSVLine(csvRow(pr.X, pr.FailureRatio)))
	return err
}

// End implements Sink.
func (s *CSVSink) End() error { return nil }

func csvRow(x float64, vals []float64) []string {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, xLabel(x))
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.*f", floatPrec, v))
	}
	return cells
}

// JSONLSink streams the sweep as JSON lines: one meta record (suppressed
// on resume), then one point record per evaluated x-position — the
// machine-readable incremental format for long sweeps.
type JSONLSink struct {
	W io.Writer
}

// NewJSONLSink returns a JSON-lines sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{W: w} }

type jsonlMeta struct {
	Type     string    `json:"type"` // "meta"
	ID       string    `json:"id,omitempty"`
	Title    string    `json:"title,omitempty"`
	XLabel   string    `json:"xlabel,omitempty"`
	Policies []string  `json:"policies"`
	X        []float64 `json:"x"`
	Trials   int       `json:"trials"`
}

type jsonlPoint struct {
	Type         string    `json:"type"` // "point"
	Index        int       `json:"index"`
	X            float64   `json:"x"`
	NormPowerInv []float64 `json:"norm_power_inv"`
	FailureRatio []float64 `json:"failure_ratio"`
}

// Begin implements Sink.
func (s *JSONLSink) Begin(meta SweepMeta) error {
	if meta.Start > 0 {
		return nil
	}
	return s.emit(jsonlMeta{Type: "meta", ID: meta.ID, Title: meta.Title,
		XLabel: meta.XLabel, Policies: meta.Policies, X: meta.X, Trials: meta.Trials})
}

// Point implements Sink.
func (s *JSONLSink) Point(pr PointResult) error {
	return s.emit(jsonlPoint{Type: "point", Index: pr.Index, X: pr.X,
		NormPowerInv: pr.NormPowerInv, FailureRatio: pr.FailureRatio})
}

// End implements Sink.
func (s *JSONLSink) End() error { return nil }

func (s *JSONLSink) emit(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = s.W.Write(append(data, '\n'))
	return err
}

// TableSink accumulates the sweep into the two aligned text tables of the
// paper's figures (normalized power inverse, failure ratio). Alignment
// needs every row, so the tables are complete only after End; use the
// streaming sinks for incremental output.
type TableSink struct {
	normPower *tables.Table
	failures  *tables.Table
}

// NewTableSink returns an accumulating table sink.
func NewTableSink() *TableSink { return &TableSink{} }

// Begin implements Sink.
func (s *TableSink) Begin(meta SweepMeta) error {
	title := meta.Title
	if meta.Start > 0 {
		// A resumed stream only carries the remaining points; say so
		// instead of rendering a silently truncated table (the checkpoint
		// CSV holds the complete sweep).
		title = fmt.Sprintf("%s (resumed at point %d/%d — earlier rows in the CSV checkpoint)",
			title, meta.Start+1, len(meta.X))
	}
	headers := append([]string{meta.XLabel}, meta.Policies...)
	s.normPower = tables.New(title+" — normalized power inverse", headers...)
	s.failures = tables.New(title+" — failure ratio", headers...)
	return nil
}

// Point implements Sink.
func (s *TableSink) Point(pr PointResult) error {
	s.normPower.AddFloatRow(xLabel(pr.X), floatPrec, pr.NormPowerInv...)
	s.failures.AddFloatRow(xLabel(pr.X), floatPrec, pr.FailureRatio...)
	return nil
}

// End implements Sink.
func (s *TableSink) End() error { return nil }

// Tables returns the two accumulated tables (nil before Begin).
func (s *TableSink) Tables() (normPower, failures *tables.Table) {
	return s.normPower, s.failures
}

// MarkdownSink streams the sweep as one GitHub-flavored markdown table,
// one row per point as it completes: each policy column carries
// "normPower (failureRatio)". Markdown needs no column alignment, so the
// table is valid at every prefix — the human-readable streaming format.
type MarkdownSink struct {
	W io.Writer
}

// NewMarkdownSink returns a streaming markdown sink over w.
func NewMarkdownSink(w io.Writer) *MarkdownSink { return &MarkdownSink{W: w} }

// Begin implements Sink.
func (s *MarkdownSink) Begin(meta SweepMeta) error {
	if meta.Start > 0 {
		return nil
	}
	if _, err := fmt.Fprintf(s.W, "**%s** — normalized power inverse (failure ratio)\n\n", meta.Title); err != nil {
		return err
	}
	header := append([]string{meta.XLabel}, meta.Policies...)
	if _, err := io.WriteString(s.W, tables.MarkdownRow(header)); err != nil {
		return err
	}
	_, err := io.WriteString(s.W, tables.MarkdownSeparator(len(header)))
	return err
}

// Point implements Sink.
func (s *MarkdownSink) Point(pr PointResult) error {
	cells := make([]string, 0, len(pr.NormPowerInv)+1)
	cells = append(cells, xLabel(pr.X))
	for i := range pr.NormPowerInv {
		cells = append(cells, fmt.Sprintf("%.*f (%.*f)", floatPrec, pr.NormPowerInv[i], floatPrec, pr.FailureRatio[i]))
	}
	_, err := io.WriteString(s.W, tables.MarkdownRow(cells))
	return err
}

// End implements Sink.
func (s *MarkdownSink) End() error { return nil }

// ProgressSink reports sweep progress one line per completed point —
// the operator's heartbeat on long sweeps, typically over stderr.
type ProgressSink struct {
	W io.Writer

	meta SweepMeta
}

// NewProgressSink returns a progress sink over w.
func NewProgressSink(w io.Writer) *ProgressSink { return &ProgressSink{W: w} }

// Begin implements Sink.
func (s *ProgressSink) Begin(meta SweepMeta) error {
	s.meta = meta
	if meta.Start > 0 {
		_, err := fmt.Fprintf(s.W, "%s: resuming at point %d/%d\n", s.label(), meta.Start+1, len(meta.X))
		return err
	}
	return nil
}

// Point implements Sink.
func (s *ProgressSink) Point(pr PointResult) error {
	_, err := fmt.Fprintf(s.W, "%s: point %d/%d (x=%s) done\n",
		s.label(), pr.Index+1, len(s.meta.X), xLabel(pr.X))
	return err
}

// End implements Sink.
func (s *ProgressSink) End() error {
	_, err := fmt.Fprintf(s.W, "%s: sweep complete (%d points)\n", s.label(), len(s.meta.X))
	return err
}

func (s *ProgressSink) label() string {
	if s.meta.ID != "" {
		return s.meta.ID
	}
	return "sweep"
}

// resultSink collects a stream back into the Result every non-streaming
// caller (Run, the repository tests and benchmarks) consumes.
type resultSink struct {
	result Result
}

func (s *resultSink) Begin(meta SweepMeta) error {
	s.result.X = make([]float64, 0, len(meta.X))
	s.result.Series = make([]Series, len(meta.Policies))
	for i, name := range meta.Policies {
		s.result.Series[i] = Series{Name: name}
	}
	return nil
}

func (s *resultSink) Point(pr PointResult) error {
	s.result.X = append(s.result.X, pr.X)
	for i := range s.result.Series {
		s.result.Series[i].NormPowerInv = append(s.result.Series[i].NormPowerInv, pr.NormPowerInv[i])
		s.result.Series[i].FailureRatio = append(s.result.Series[i].FailureRatio, pr.FailureRatio[i])
	}
	return nil
}

func (s *resultSink) End() error { return nil }
