package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// smokeSpec is a tiny sweep used across the streaming tests.
func smokeSpec() scenario.Spec {
	return scenario.Spec{
		ID: "smoke", Title: "smoke sweep",
		Params: scenario.Params{WMin: 100, WMax: 1200},
		Axis:   scenario.AxisN, Points: []float64{5, 15, 25, 40},
		Trials: 4, Seed: 11,
		Policies: []string{"XY", "PR", "BEST"},
	}
}

// recordSink captures the stream for inspection.
type recordSink struct {
	meta   SweepMeta
	points []PointResult
	ended  bool
}

func (s *recordSink) Begin(meta SweepMeta) error { s.meta = meta; return nil }
func (s *recordSink) Point(pr PointResult) error {
	cp := pr
	cp.NormPowerInv = append([]float64(nil), pr.NormPowerInv...)
	cp.FailureRatio = append([]float64(nil), pr.FailureRatio...)
	s.points = append(s.points, cp)
	return nil
}
func (s *recordSink) End() error { s.ended = true; return nil }

// Sinks receive every point in order, with the policy order of the meta.
func TestSweepStreamsPointsInOrder(t *testing.T) {
	rs := &recordSink{}
	if err := Sweep(smokeSpec(), SweepOptions{}, rs); err != nil {
		t.Fatal(err)
	}
	if !rs.ended {
		t.Error("End was not called")
	}
	if got, want := rs.meta.Policies, []string{"XY", "PR", "BEST"}; !reflect.DeepEqual(got, want) {
		t.Errorf("meta policies %v, want %v", got, want)
	}
	if len(rs.points) != 4 {
		t.Fatalf("streamed %d points, want 4", len(rs.points))
	}
	for i, pr := range rs.points {
		if pr.Index != i {
			t.Errorf("point %d has index %d", i, pr.Index)
		}
		if pr.X != smokeSpec().Points[i] {
			t.Errorf("point %d at x=%g, want %g", i, pr.X, smokeSpec().Points[i])
		}
		if len(pr.NormPowerInv) != 3 || len(pr.FailureRatio) != 3 {
			t.Errorf("point %d has %d/%d values", i, len(pr.NormPowerInv), len(pr.FailureRatio))
		}
	}
}

// The same spec and seed stream bit-identical CSV across runs, and a
// resume from any mid-sweep checkpoint reproduces exactly the remaining
// output — the append of the two runs equals the uninterrupted run.
func TestSweepResumeBitIdentical(t *testing.T) {
	sp := smokeSpec()
	full := runCSV(t, sp, 0)
	again := runCSV(t, sp, 0)
	if full != again {
		t.Fatal("same spec and seed produced different streamed CSV")
	}
	for checkpoint := 1; checkpoint < len(sp.Points); checkpoint++ {
		head := runCSVStopAfter(t, sp, checkpoint)
		tail := runCSV(t, sp, checkpoint)
		if head+tail != full {
			t.Errorf("resume at point %d diverges:\n--- head+tail ---\n%s\n--- full ---\n%s",
				checkpoint, head+tail, full)
		}
	}
}

// runCSV streams the spec's power CSV from the given start point.
func runCSV(t *testing.T, sp scenario.Spec, start int) string {
	t.Helper()
	var pow, fail bytes.Buffer
	if err := Sweep(sp, SweepOptions{Start: start}, NewCSVSink(&pow, &fail)); err != nil {
		t.Fatal(err)
	}
	return pow.String()
}

// stopAfter aborts the stream after n points, simulating an interrupted
// sweep with n checkpointed rows.
type stopAfter struct {
	n    int
	errv error
}

func (s *stopAfter) Begin(SweepMeta) error { return nil }
func (s *stopAfter) Point(pr PointResult) error {
	if pr.Index+1 >= s.n {
		return s.errv
	}
	return nil
}
func (s *stopAfter) End() error { return nil }

// runCSVStopAfter streams the spec until n points completed, then kills
// the sweep — the CSV holds exactly n data rows, like a real interrupt.
func runCSVStopAfter(t *testing.T, sp scenario.Spec, n int) string {
	t.Helper()
	var pow, fail bytes.Buffer
	stop := &stopAfter{n: n, errv: errStop}
	err := Sweep(sp, SweepOptions{}, NewCSVSink(&pow, &fail), stop)
	if err != errStop {
		t.Fatalf("sweep did not stop: %v", err)
	}
	return pow.String()
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

// Spec JSON round-trip: encode → decode → identical sweep results.
func TestSpecRoundTripIdenticalResults(t *testing.T) {
	sp := smokeSpec()
	var buf bytes.Buffer
	if err := sp.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := scenario.DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := runCSV(t, sp, 0)
	b := runCSV(t, decoded, 0)
	if a != b {
		t.Errorf("decoded spec sweeps differently:\n--- original ---\n%s\n--- decoded ---\n%s", a, b)
	}
}

// The JSONL sink streams one meta record and one record per point, and
// suppresses the meta on resume.
func TestJSONLSink(t *testing.T) {
	sp := smokeSpec()
	var buf bytes.Buffer
	if err := Sweep(sp, SweepOptions{}, NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(sp.Points) {
		t.Fatalf("%d JSONL lines, want %d", len(lines), 1+len(sp.Points))
	}
	var meta struct {
		Type     string   `json:"type"`
		Policies []string `json:"policies"`
		Trials   int      `json:"trials"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Type != "meta" || meta.Trials != sp.Trials || len(meta.Policies) != 3 {
		t.Errorf("meta record %+v", meta)
	}
	for i, line := range lines[1:] {
		var pt struct {
			Type  string  `json:"type"`
			Index int     `json:"index"`
			X     float64 `json:"x"`
		}
		if err := json.Unmarshal([]byte(line), &pt); err != nil {
			t.Fatal(err)
		}
		if pt.Type != "point" || pt.Index != i {
			t.Errorf("line %d: %+v", i+1, pt)
		}
	}
	var resumed bytes.Buffer
	if err := Sweep(sp, SweepOptions{Start: 3}, NewJSONLSink(&resumed)); err != nil {
		t.Fatal(err)
	}
	rl := strings.Split(strings.TrimSpace(resumed.String()), "\n")
	if len(rl) != 1 {
		t.Fatalf("resumed JSONL has %d lines, want 1 (no meta)", len(rl))
	}
	if rl[0] != lines[len(lines)-1] {
		t.Errorf("resumed point differs from the full run's:\n%s\n%s", rl[0], lines[len(lines)-1])
	}
}

// The markdown sink emits a valid streaming table.
func TestMarkdownSink(t *testing.T) {
	var buf bytes.Buffer
	if err := Sweep(smokeSpec(), SweepOptions{}, NewMarkdownSink(&buf)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// caption, blank, header, separator, 4 rows
	if len(lines) != 8 {
		t.Fatalf("markdown output has %d lines, want 8:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[2], "| number of communications | XY | PR | BEST |") {
		t.Errorf("header row %q", lines[2])
	}
	for _, row := range lines[4:] {
		if strings.Count(row, "|") != 5 {
			t.Errorf("malformed markdown row %q", row)
		}
	}
}

// Sweeps over non-uniform sources and non-default meshes run end to end
// through the same pipeline, honoring any policy list.
func TestSweepGenericSources(t *testing.T) {
	for _, tc := range []struct {
		source, mesh string
		params       scenario.Params
	}{
		{"tornado", "16x16", scenario.Params{Rate: 400}},
		{"bitrev", "8x8", scenario.Params{WMin: 100, WMax: 600}},
		{"hotspot", "8x8", scenario.Params{N: 6, Rate: 300}},
		{"transpose", "16x16", scenario.Params{Rate: 200}},
	} {
		sp := scenario.Spec{
			ID: tc.source, Source: tc.source, Mesh: tc.mesh, Params: tc.params,
			Trials: 2, Seed: 9, Policies: []string{"XY", "PR"},
		}
		rs := &recordSink{}
		if err := Sweep(sp, SweepOptions{}, rs); err != nil {
			t.Errorf("%s on %s: %v", tc.source, tc.mesh, err)
			continue
		}
		if len(rs.points) != 1 || len(rs.points[0].NormPowerInv) != 2 {
			t.Errorf("%s on %s: unexpected stream shape %+v", tc.source, tc.mesh, rs.points)
		}
	}
}

// A spec whose params cannot bind (bit pattern on a 6x6 mesh) fails
// loudly before any point is evaluated, naming the source and mesh.
func TestSweepBindFailsLoudly(t *testing.T) {
	sp := scenario.Spec{
		ID: "bad", Source: "bitrev", Mesh: "6x6",
		Params: scenario.Params{Rate: 300}, Trials: 1,
	}
	rs := &recordSink{}
	err := Sweep(sp, SweepOptions{}, rs)
	if err == nil {
		t.Fatal("bind error not surfaced")
	}
	for _, want := range []string{"bitrev", "6x6", "power-of-two"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if len(rs.points) != 0 {
		t.Error("points were streamed despite the bind error")
	}
}

// RunSummaryWith honors a policy list and re-normalizes against the
// first policy when XY is absent.
func TestSummaryWithPolicies(t *testing.T) {
	s, err := RunSummaryWith(1, 1, []string{"SG", "PR"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Names, []string{"SG", "PR", "BEST"}; !reflect.DeepEqual(got, want) {
		t.Errorf("names %v, want %v", got, want)
	}
	if s.Ref != "SG" {
		t.Errorf("ref %q, want SG", s.Ref)
	}
	if g := s.InvPowerGainVsXY["SG"]; g != 1 {
		t.Errorf("self-gain %g, want 1", g)
	}
	// A literal BEST entry is absorbed into the derived row, so any list
	// the figure sweeps accept works here uniformly.
	s, err = RunSummaryWith(1, 1, []string{"XY", "PR", "BEST"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Names, []string{"XY", "PR", "BEST"}; !reflect.DeepEqual(got, want) {
		t.Errorf("names with literal BEST: %v, want %v", got, want)
	}
	if _, err := RunSummaryWith(1, 1, []string{"nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

// RunPatternsWith honors a policy list.
func TestPatternsWithPolicies(t *testing.T) {
	rows, err := RunPatternsWith(500, []string{"TB", "PR"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if got, want := rows[0].Names, []string{"TB", "PR", "BEST"}; !reflect.DeepEqual(got, want) {
		t.Errorf("names %v, want %v", got, want)
	}
	if _, ok := rows[0].Cells["BEST"]; !ok {
		t.Error("BEST cell missing")
	}
	// A bare BEST list falls back to deriving it over the paper's six
	// constructive heuristics — the BEST solver's own semantics.
	rows, err = RunPatternsWith(500, []string{"BEST"})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rows[0].Names, HeuristicNames; !reflect.DeepEqual(got, want) {
		t.Errorf("bare-BEST names %v, want %v", got, want)
	}
}
