package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/comm"
	"repro/internal/exact"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/multipath"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/scenario"
	"repro/internal/solve"
	"repro/internal/stats"
	_ "repro/internal/tabroute" // registers TABLE for topology panels
	"repro/internal/theory"
	"repro/internal/workload"
)

// Figure2Powers reproduces the routing-rule comparison of Figure 2 /
// Section 3.5 exactly: the XY routing (128), the optimal single-path
// Manhattan routing (56, via the exact solver), and the paper's 2-MP
// routing with γ2 split 1+2 (32).
func Figure2Powers() (pxy, p1mp, p2mp float64, err error) {
	m := mesh.MustNew(2, 2)
	model := power.Figure2()
	g1 := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1}
	g2 := comm.Comm{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 3}
	set := comm.Set{g1, g2}

	xyRes, err := heur.Solve(heur.XY{}, heur.Instance{Mesh: m, Model: model, Comms: set})
	if err != nil {
		return 0, 0, 0, err
	}
	pxy = xyRes.Power.Total()

	opt, ok, err := exact.Solve(m, model, set)
	if err != nil {
		return 0, 0, 0, err
	}
	if !ok {
		return 0, 0, 0, fmt.Errorf("experiments: Figure 2 instance infeasible under 1-MP")
	}
	p1mp = route.Evaluate(opt, model).Power.Total()

	parts, err := g2.Split([]float64{1, 2})
	if err != nil {
		return 0, 0, 0, err
	}
	twoMP := route.Routing{Mesh: m, Flows: []route.Flow{
		{Comm: g1, Path: route.XY(g1.Src, g1.Dst)},
		{Comm: parts[0], Path: route.XY(g2.Src, g2.Dst)},
		{Comm: parts[1], Path: route.YX(g2.Src, g2.Dst)},
	}}
	if err := twoMP.Validate(set, 2); err != nil {
		return 0, 0, 0, err
	}
	p2mp = route.Evaluate(twoMP, model).Power.Total()
	return pxy, p1mp, p2mp, nil
}

// Summary reproduces the §6.4 aggregate statistics over the union of the
// Figure 7–9 instance families.
type Summary struct {
	Instances int
	// Names is the evaluated policy list plus the trailing derived BEST —
	// the row order of Table. Defaults to HeuristicNames.
	Names []string
	// Ref is the policy the inverse-power gains are normalized against
	// ("XY" whenever it is in the line-up).
	Ref string
	// Success maps heuristic name to its fraction of instances solved
	// (paper: XY 15%, XYI 46%, PR 50%, BEST 51%).
	Success map[string]float64
	// InvPowerGainVsXY is mean(1/P_h)/mean(1/P_ref), failures counting 0
	// (paper, with ref XY: XYI 2.44, PR 2.57, BEST 2.95).
	InvPowerGainVsXY map[string]float64
	// StaticFraction is the mean static/total power share of the BEST
	// routing over solved instances (paper: ≈ 1/7).
	StaticFraction float64
	// MeanSolveTime is the mean per-instance runtime of each heuristic
	// (paper: 24 ms XYI, 38 ms PR on 2011 hardware).
	MeanSolveTime map[string]time.Duration
}

// RunSummary draws trialsPerPoint instances per point of every canned
// Figure 7–9 spec and accumulates the §6.4 statistics over the paper's
// constructive heuristics.
func RunSummary(trialsPerPoint int, seed int64) Summary {
	s, err := RunSummaryWith(trialsPerPoint, seed, nil)
	if err != nil {
		panic(err) // the default line-up is always registered
	}
	return s
}

// RunSummaryWith is RunSummary over an explicit policy list (nil means
// ConstructiveNames): the same Figure 7–9 instance families drawn through
// the scenario layer's canned specs, every listed policy on every
// instance, BEST derived as the best feasible of the list (a literal
// "BEST" entry is absorbed into the derived row, so any -policies list
// the figure sweeps accept works here too). Gains are normalized against
// XY when listed, else against the first policy.
func RunSummaryWith(trialsPerPoint int, seed int64, policies []string) (Summary, error) {
	if trialsPerPoint <= 0 {
		trialsPerPoint = 10
	}
	policies = dropBest(policies)
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	names := make([]string, 0, len(policies)+1)
	solvers := make([]solve.Solver, 0, len(policies))
	for _, name := range policies {
		s, err := solve.Lookup(name)
		if err != nil {
			return Summary{}, err
		}
		solvers = append(solvers, s)
		names = append(names, s.Name())
	}
	names = append(names, "BEST")
	ref := names[0]
	for _, n := range names[:len(names)-1] {
		if n == "XY" {
			ref = "XY"
			break
		}
	}

	type task struct {
		w    Workload
		seed int64
	}
	var tasks []task
	i := 0
	for _, p := range figurePanels() {
		for _, pt := range p.Points {
			for tr := 0; tr < trialsPerPoint; tr++ {
				tasks = append(tasks, task{pt.W, seed*7_919 + int64(i)})
				i++
			}
		}
	}

	type outcome struct {
		perHeur []instanceOutcome
		times   []time.Duration
	}
	outs := make([]outcome, len(tasks))
	type sumScratch struct {
		gen   *workload.Generator
		set   comm.Set
		loads *route.LoadTracker
		ws    *route.Workspace
	}
	newScratch := func() *sumScratch {
		return &sumScratch{gen: workload.New(m, 0), loads: route.NewLoadTracker(m), ws: route.NewWorkspace()}
	}
	// The flat task list runs on the sweeps' work-stealing scheduler as a
	// single point's trial range: persistent per-worker scratch, chunked
	// deques, stealing when a worker drains — and the scheduler's
	// first-error handling halts the fleet on a draw failure.
	workers := runtime.GOMAXPROCS(0)
	chunks, _ := appendChunks(nil, 0, len(tasks), chunkTrials(len(tasks), workers))
	err := runStealing(chunks, workers, nil, newScratch, func(s *sumScratch, c chunk) error {
		for ti := c.lo; ti < c.hi; ti++ {
			set, err := scenario.DrawRandom(s.gen, tasks[ti].seed, tasks[ti].w, s.set)
			if err != nil {
				return err
			}
			s.set = set
			in := solve.Instance{Mesh: m, Model: model, Comms: set}
			o := outcome{perHeur: make([]instanceOutcome, len(solvers)), times: make([]time.Duration, len(solvers))}
			for hi, sv := range solvers {
				start := time.Now()
				r, err := sv.Route(in, solve.Options{Workspace: s.ws})
				o.times[hi] = time.Since(start)
				if err != nil {
					continue
				}
				s.loads.SetRouting(r)
				bd, ok := s.loads.Evaluate(model)
				o.perHeur[hi] = instanceOutcome{feasible: ok, pow: bd.Total(), static: bd.Static}
			}
			outs[ti] = o
		}
		return nil
	}, nil)
	if err != nil {
		return Summary{}, err
	}

	success := make(map[string]*stats.Ratio)
	invPower := make(map[string]*stats.Accumulator)
	times := make(map[string]*stats.Accumulator)
	for _, name := range names {
		success[name] = &stats.Ratio{}
		invPower[name] = &stats.Accumulator{}
		times[name] = &stats.Accumulator{}
	}
	var staticFrac stats.Accumulator

	for _, o := range outs {
		bestPow, bestStatic := -1.0, 0.0
		for hi, r := range o.perHeur {
			name := names[hi]
			success[name].Add(r.feasible)
			inv := 0.0
			if r.feasible {
				inv = 1 / r.pow
				if bestPow < 0 || r.pow < bestPow {
					bestPow, bestStatic = r.pow, r.static
				}
			}
			invPower[name].Add(inv)
			times[name].Add(float64(o.times[hi]))
		}
		success["BEST"].Add(bestPow > 0)
		if bestPow > 0 {
			invPower["BEST"].Add(1 / bestPow)
			staticFrac.Add(bestStatic / bestPow)
		} else {
			invPower["BEST"].Add(0)
		}
	}

	s := Summary{
		Instances:        len(tasks),
		Names:            names,
		Ref:              ref,
		Success:          make(map[string]float64),
		InvPowerGainVsXY: make(map[string]float64),
		MeanSolveTime:    make(map[string]time.Duration),
		StaticFraction:   staticFrac.Mean(),
	}
	refInv := invPower[ref].Mean()
	for _, name := range names {
		s.Success[name] = success[name].Value()
		if refInv > 0 {
			s.InvPowerGainVsXY[name] = invPower[name].Mean() / refInv
		}
		if name != "BEST" {
			s.MeanSolveTime[name] = time.Duration(times[name].Mean())
		}
	}
	return s, nil
}

// Theorem1Row is one size of the Theorem 1 / Figure 4 experiment.
type Theorem1Row struct {
	P      int
	PXY    float64
	PMax   float64
	Ratio  float64
	PerRow float64 // Ratio / p: flat when the Θ(p) law holds
}

// RunTheorem1 evaluates the max-MP pattern against XY for square meshes
// p = 2·p' with the theory model (Pleak = 0, P0 = 1).
func RunTheorem1(pPrimes []int, alpha float64) ([]Theorem1Row, error) {
	model := power.Theory(alpha)
	rows := make([]Theorem1Row, 0, len(pPrimes))
	for _, pp := range pPrimes {
		flow, err := multipath.Theorem1Flow(pp, 1)
		if err != nil {
			return nil, err
		}
		mp, err := flow.Power(model)
		if err != nil {
			return nil, err
		}
		xy, err := multipath.XYSingleRoute(2*pp, 1, model)
		if err != nil {
			return nil, err
		}
		p := 2 * pp
		ratio := xy.Total() / mp.Total()
		rows = append(rows, Theorem1Row{
			P: p, PXY: xy.Total(), PMax: mp.Total(),
			Ratio: ratio, PerRow: ratio / float64(p),
		})
	}
	return rows, nil
}

// Lemma2Row is one size of the Lemma 2 / Figure 5 experiment.
type Lemma2Row struct {
	PPrime     int
	PXY, PYX   float64
	Ratio      float64
	Normalized float64 // Ratio / p'^{α−1}: flat when the Θ(p^{α−1}) law holds
}

// RunLemma2 evaluates the staircase instance for the given sizes.
func RunLemma2(pPrimes []int, alpha float64) ([]Lemma2Row, error) {
	rows := make([]Lemma2Row, 0, len(pPrimes))
	for _, pp := range pPrimes {
		pxy, pyx, err := theory.Lemma2Powers(pp, alpha)
		if err != nil {
			return nil, err
		}
		ratio := pxy / pyx
		rows = append(rows, Lemma2Row{
			PPrime: pp, PXY: pxy, PYX: pyx, Ratio: ratio,
			Normalized: ratio / math.Pow(float64(pp), alpha-1),
		})
	}
	return rows, nil
}

// OpenProblemRow is one (p, n) size of the conclusion's open problem:
// the single-path Manhattan gain for same-endpoint traffic.
type OpenProblemRow struct {
	P, N  int
	PXY   float64
	P1MP  float64
	Ratio float64
	Exact bool
}

// RunOpenProblem measures PXY/P1MP for n unit communications from corner
// to corner of a p×p mesh (exactly where tractable, heuristically above).
func RunOpenProblem(sizes [][2]int, alpha float64) ([]OpenProblemRow, error) {
	rows := make([]OpenProblemRow, 0, len(sizes))
	for _, sz := range sizes {
		pxy, p1mp, exactOpt, err := theory.SingleSourceGain(sz[0], sz[1], alpha)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OpenProblemRow{
			P: sz[0], N: sz[1], PXY: pxy, P1MP: p1mp,
			Ratio: pxy / p1mp, Exact: exactOpt,
		})
	}
	return rows, nil
}

// NoCValidation cross-checks one routed instance in the discrete-event
// simulator (experiment E15): per-communication delivered rate versus
// request, and simulated versus analytic power.
type NoCValidation struct {
	Policy          string
	Comms           int
	AnalyticPowerMW float64
	SimPowerMW      float64
	WorstRateError  float64 // max relative |delivered−requested|/requested
	MeanUtilization float64
}

// RunNoCValidation routes a random workload with PR and replays it in the
// simulator. Seeds yielding PR-infeasible instances are skipped until a
// feasible one is found (bounded attempts).
func RunNoCValidation(seed int64, n int) (NoCValidation, error) {
	return RunNoCValidationWith(seed, n, "PR")
}

// RunNoCValidationWith is RunNoCValidation under an explicit registered
// routing policy. Solver and simulator state are pooled across the
// attempt loop (route.Workspace, noc.Workspace), so skipped infeasible
// seeds cost no fresh construction.
func RunNoCValidationWith(seed int64, n int, policy string) (NoCValidation, error) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	solver, err := solve.Lookup(policy)
	if err != nil {
		return NoCValidation{}, err
	}
	ws := route.NewWorkspace()
	sims := noc.NewWorkspace()
	for attempt := 0; attempt < 50; attempt++ {
		set, err := drawSet(m, seed+int64(attempt)*101, Workload{N: n, WMin: 100, WMax: 1200})
		if err != nil {
			return NoCValidation{}, err
		}
		r, err := solver.Route(solve.Instance{Mesh: m, Model: model, Comms: set}, solve.Options{Workspace: ws})
		if err != nil {
			continue // infeasibility proofs / blown budgets: try the next seed
		}
		res := route.Evaluate(r, model)
		if !res.Feasible {
			continue
		}
		sim, err := sims.Simulator(r, model, noc.Config{Horizon: 3000, Warmup: 500})
		if err != nil {
			return NoCValidation{}, err
		}
		st := sim.Run()
		v := NoCValidation{
			Policy:          solver.Name(),
			Comms:           n,
			AnalyticPowerMW: res.Power.Total(),
			SimPowerMW:      st.PowerMW,
			MeanUtilization: st.MeanUtilization(),
		}
		for _, c := range set {
			relErr := abs(st.DeliveredRate(c.ID)-c.Rate) / c.Rate
			if relErr > v.WorstRateError {
				v.WorstRateError = relErr
			}
		}
		return v, nil
	}
	return NoCValidation{}, fmt.Errorf("experiments: no feasible instance found for NoC validation")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
