package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/scenario"
	"repro/internal/solve"
)

// engine is the pooled trial runner behind Panel.Stream: the panel's
// policy list resolved against the solve registry once, the workload
// source resolved against the scenario registry once, plus a flat outcome
// buffer reused across points so the per-trial path allocates nothing of
// its own. Everything the engine layer touches — workload buffers, load
// tracking, outcome storage — is per-worker scratch, and each worker also
// carries a route.Workspace handed to the policies via Options.Workspace,
// so solver-internal state (path slots, trackers, frontier bitsets) is
// reused across trials too.
type engine struct {
	m       *mesh.Mesh
	model   power.Model
	src     scenario.Source
	names   []string
	solvers []solve.Solver
	opts    solve.Options
	trials  int
	// outcomes is trials×len(solvers), row-major by trial, reused per point.
	outcomes []instanceOutcome
	// bestIdx/bestFrom implement the derived-BEST shortcut: when the list
	// contains BEST alongside all six of its constituent heuristics, BEST's
	// outcome is the min over their already-computed outcomes instead of
	// re-running them through the Best solver — identical results (same
	// routings, same evaluations) at half the cost of the default panel.
	// bestIdx is -1 when the shortcut does not apply.
	bestIdx  int
	bestFrom []int
}

func newEngine(p Panel, trials int) (*engine, error) {
	requested := p.policyNames()
	names := make([]string, len(requested))
	solvers := make([]solve.Solver, len(requested))
	for i, n := range requested {
		s, err := solve.Lookup(n)
		if err != nil {
			return nil, err
		}
		solvers[i] = s
		names[i] = s.Name() // canonical casing for the series
	}
	mp, mq := 8, 8
	if p.Mesh != "" {
		var err error
		if mp, mq, err = scenario.ParseMesh(p.Mesh); err != nil {
			return nil, err
		}
	}
	srcName := p.Source
	if srcName == "" {
		srcName = "uniform"
	}
	src, err := scenario.Lookup(srcName)
	if err != nil {
		return nil, err
	}
	e := &engine{
		m:        mesh.MustNew(mp, mq),
		model:    p.model(),
		src:      src,
		names:    names,
		solvers:  solvers,
		opts:     solve.Options{Order: p.Order},
		trials:   trials,
		outcomes: make([]instanceOutcome, trials*len(solvers)),
		bestIdx:  -1,
	}
	// Pre-validate every point's params so a sweep fails loudly before
	// the first trial (e.g. a bit-defined permutation on a 6x6 mesh)
	// instead of mid-run on a worker.
	for pi, pt := range p.Points {
		if _, err := src.Bind(e.m, pt.W); err != nil {
			return nil, fmt.Errorf("experiments: %s point %d (x=%g): source %q on %v: %w",
				p.ID, pi, pt.X, src.Name(), e.m, err)
		}
	}
	byName := make(map[string]int, len(names))
	for i, n := range names {
		byName[n] = i
	}
	if bi, ok := byName["BEST"]; ok {
		from := make([]int, 0, len(ConstructiveNames))
		for _, h := range ConstructiveNames {
			si, ok := byName[h]
			if !ok {
				from = nil
				break
			}
			from = append(from, si)
		}
		if from != nil {
			e.bestIdx, e.bestFrom = bi, from
		}
	}
	return e, nil
}

// scratch is one worker's private reusable state: the bound workload
// drawer and set buffer of the engine layer, the evaluation tracker,
// plus the dense solver workspace every policy routes into (so
// solver-internal state — path slots, load trackers, frontier bitsets —
// is reused across the worker's trials too).
type scratch struct {
	drawer scenario.Drawer
	set    comm.Set
	loads  *route.LoadTracker
	ws     *route.Workspace
}

// newScratch binds the engine's source for one point's params. Bind
// errors are impossible here — newEngine pre-validated every point — so
// they panic rather than plumb through the pooled loop.
func (e *engine) newScratch(w Workload) *scratch {
	d, err := e.src.Bind(e.m, w)
	if err != nil {
		panic(fmt.Sprintf("experiments: pre-validated bind failed: %v", err))
	}
	return &scratch{drawer: d, loads: route.NewLoadTracker(e.m), ws: route.NewWorkspace()}
}

// trialSeed derives the deterministic per-trial seed: the historical
// (panel seed, point, trial) formula, so refactors of the runner never
// move the figures.
func trialSeed(panelSeed int64, point, trial int) int64 {
	return panelSeed*1_000_003 + int64(point)*10_007 + int64(trial)
}

// draw regenerates the trial's communication set into the worker's buffer.
func (s *scratch) draw(seed int64) (comm.Set, error) {
	set, err := s.drawer.Draw(seed, s.set)
	if err != nil {
		return nil, err
	}
	s.set = set
	return set, nil
}

// runPoint evaluates every policy on every trial of one panel point,
// filling e.outcomes. Trials are spread over a worker pool; each worker
// owns its scratch, and outcome rows are disjoint per trial, so the loop
// is race-free without locks on the happy path.
func (e *engine) runPoint(panelSeed int64, pi int, pt Point) error {
	npol := len(e.solvers)
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	parallelScratch(e.trials, func() *scratch { return e.newScratch(pt.W) }, func(s *scratch, trial int) {
		seed := trialSeed(panelSeed, pi, trial)
		set, err := s.draw(seed)
		if err != nil {
			fail(fmt.Errorf("experiments: point %d trial %d: %w", pi, trial, err))
			return
		}
		in := solve.Instance{Mesh: e.m, Model: e.model, Comms: set}
		opts := e.opts
		opts.Seed = seed
		opts.Workspace = s.ws
		row := e.outcomes[trial*npol : (trial+1)*npol]
		for si, solver := range e.solvers {
			if si == e.bestIdx {
				continue // derived below
			}
			r, err := solver.Route(in, opts)
			if err != nil {
				// Policies that prove infeasibility (OPT) or blow a search
				// budget surface as errors; the panel counts them as
				// failures, like the paper counts heuristic failures.
				row[si] = instanceOutcome{}
				continue
			}
			s.loads.SetRouting(r)
			bd, ok := s.loads.Evaluate(e.model)
			row[si] = instanceOutcome{feasible: ok, pow: bd.Total(), static: bd.Static}
		}
		e.deriveBest(row)
	})
	return firstErr
}

// deriveBest fills the BEST entry of an outcome row from its constituent
// heuristics' entries (no-op when the shortcut is off).
func (e *engine) deriveBest(row []instanceOutcome) {
	if e.bestIdx < 0 {
		return
	}
	var best instanceOutcome
	for _, si := range e.bestFrom {
		if o := row[si]; o.feasible && (!best.feasible || o.pow < best.pow) {
			best = o
		}
	}
	row[e.bestIdx] = best
}

// parallelFor runs f(0..n-1) on up to GOMAXPROCS workers.
func parallelFor(n int, f func(i int)) {
	parallelScratch(n, func() struct{} { return struct{}{} }, func(_ struct{}, i int) { f(i) })
}

// parallelScratch runs f(s, 0..n-1) on up to GOMAXPROCS workers, each
// owning one scratch value built by newScratch — the shape every
// experiment loop shares: embarrassingly parallel trials over reusable
// per-worker state.
func parallelScratch[S any](n int, newScratch func() S, f func(s S, i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := newScratch()
		for i := 0; i < n; i++ {
			f(s, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := newScratch()
			for i := range next {
				f(s, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
