package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/scenario"
	"repro/internal/solve"
	"repro/internal/topo"
)

// engine is the pooled trial runner behind Panel.Stream: the panel's
// policy list resolved against the solve registry once, the workload
// source resolved against the scenario registry once. Trials run on the
// work-stealing scheduler (steal.go): one persistent worker per core
// holds its scratch — solver workspace, load tracker, draw buffers,
// bound drawers — for the whole sweep, pulling (point, trial) chunks
// from per-worker deques with stealing, so slow points no longer
// serialize behind fast ones and nothing is torn down at point
// boundaries. Completed points flow through a merge stage that releases
// them to the sinks strictly in point order.
type engine struct {
	// m is the coordinate-carrier grid workload sources bind to: the
	// platform itself for mesh panels, Topology.Carrier() otherwise.
	m *mesh.Mesh
	// tp is the non-mesh platform topology; nil on mesh panels, so the
	// mesh path builds exactly the historical Instance{Mesh: e.m}.
	tp      topo.Topology
	model   power.Model
	src     scenario.Source
	names   []string
	solvers []solve.Solver
	opts    solve.Options
	trials  int
	// bestIdx/bestFrom implement the derived-BEST shortcut: when the list
	// contains BEST alongside all six of its constituent heuristics, BEST's
	// outcome is the min over their already-computed outcomes instead of
	// re-running them through the Best solver — identical results (same
	// routings, same evaluations) at half the cost of the default panel.
	// bestIdx is -1 when the shortcut does not apply.
	bestIdx  int
	bestFrom []int

	// stop, when non-nil, is the sweep's cancellation poll (derived from
	// SweepOptions.Context): checked before every trial and threaded into
	// solve.Options.Stop so deadlines bind inside long solves, not just
	// between them. trialStart is SweepOptions.TrialStart.
	stop       func() bool
	trialStart func(point, trial int)
}

func newEngine(p Panel, trials int) (*engine, error) {
	requested := p.policyNames()
	names := make([]string, len(requested))
	solvers := make([]solve.Solver, len(requested))
	for i, n := range requested {
		s, err := solve.Lookup(n)
		if err != nil {
			return nil, err
		}
		solvers[i] = s
		names[i] = s.Name() // canonical casing for the series
	}
	mp, mq := 8, 8
	if p.Mesh != "" {
		var err error
		if mp, mq, err = scenario.ParseMesh(p.Mesh); err != nil {
			return nil, err
		}
	}
	carrier := (*mesh.Mesh)(nil)
	var tp topo.Topology
	if p.Topology != "" {
		if p.Mesh != "" {
			return nil, fmt.Errorf("experiments: panel %s sets both mesh %q and topology %q", p.ID, p.Mesh, p.Topology)
		}
		t, err := topo.Parse(p.Topology)
		if err != nil {
			return nil, err
		}
		if m, ok := t.(*mesh.Mesh); ok {
			carrier = m
		} else {
			tp = t
			carrier = t.Carrier()
			if err := solve.CheckTopology(names, tp); err != nil {
				return nil, err
			}
		}
	} else {
		carrier = mesh.MustNew(mp, mq)
	}
	srcName := p.Source
	if srcName == "" {
		srcName = "uniform"
	}
	src, err := scenario.Lookup(srcName)
	if err != nil {
		return nil, err
	}
	e := &engine{
		m:       carrier,
		tp:      tp,
		model:   p.model(),
		src:     src,
		names:   names,
		solvers: solvers,
		opts:    solve.Options{Order: p.Order},
		trials:  trials,
		bestIdx: -1,
	}
	// Pre-validate every point's params so a sweep fails loudly before
	// the first trial (e.g. a bit-defined permutation on a 6x6 mesh)
	// instead of mid-run on a worker.
	for pi, pt := range p.Points {
		if _, err := src.Bind(e.m, pt.W); err != nil {
			return nil, fmt.Errorf("experiments: %s point %d (x=%g): source %q on %v: %w",
				p.ID, pi, pt.X, src.Name(), e.m, err)
		}
	}
	byName := make(map[string]int, len(names))
	for i, n := range names {
		byName[n] = i
	}
	if bi, ok := byName["BEST"]; ok {
		from := make([]int, 0, len(ConstructiveNames))
		for _, h := range ConstructiveNames {
			si, ok := byName[h]
			if !ok {
				from = nil
				break
			}
			from = append(from, si)
		}
		if from != nil {
			e.bestIdx, e.bestFrom = bi, from
		}
	}
	return e, nil
}

// sweepScratch is one persistent worker's private state for a whole
// sweep: the dense solver workspace and evaluation tracker live across
// every point the worker touches (the per-point scratch rebuild the old
// runner did is gone), and the per-point drawers bind lazily the first
// time this worker pulls a chunk of a point, then stay cached for every
// later chunk of it — drawers are reseeded per trial, so reuse across
// interleaved points never changes a draw.
type sweepScratch struct {
	drawers []scenario.Drawer
	set     comm.Set
	loads   *route.LoadTracker
	ws      *route.Workspace
}

// platform returns the engine's routing platform: the non-mesh topology
// when one is set, else the mesh itself.
func (e *engine) platform() topo.Topology {
	if e.tp != nil {
		return e.tp
	}
	return e.m
}

func (e *engine) newSweepScratch(npts int) *sweepScratch {
	return &sweepScratch{
		drawers: make([]scenario.Drawer, npts),
		loads:   route.NewLoadTrackerTopo(e.platform()),
		ws:      route.NewWorkspace(),
	}
}

// drawer returns the worker's drawer for point pi, binding it on first
// use. Bind errors are impossible here — newEngine pre-validated every
// point — so they panic rather than plumb through the pooled loop.
func (s *sweepScratch) drawer(e *engine, pi int, w Workload) scenario.Drawer {
	if d := s.drawers[pi]; d != nil {
		return d
	}
	d, err := e.src.Bind(e.m, w)
	if err != nil {
		panic(fmt.Sprintf("experiments: pre-validated bind failed: %v", err))
	}
	s.drawers[pi] = d
	return d
}

// trialSeed derives the deterministic per-trial seed: the historical
// (panel seed, point, trial) formula, so refactors of the runner never
// move the figures. Seeds depend on nothing else — which is what makes
// the work-stealing execution order-independent.
func trialSeed(panelSeed int64, point, trial int) int64 {
	return panelSeed*1_000_003 + int64(point)*10_007 + int64(trial)
}

// runTrial draws and evaluates one seeded trial of one point, writing
// every policy's outcome into the trial's row.
func (e *engine) runTrial(s *sweepScratch, panelSeed int64, pi, trial int, pt Point, row []instanceOutcome) error {
	if e.stop != nil && e.stop() {
		return solve.ErrStopped
	}
	if e.trialStart != nil {
		e.trialStart(pi, trial)
	}
	seed := trialSeed(panelSeed, pi, trial)
	set, err := s.drawer(e, pi, pt.W).Draw(seed, s.set)
	if err != nil {
		return fmt.Errorf("experiments: point %d trial %d: %w", pi, trial, err)
	}
	s.set = set
	in := solve.Instance{Mesh: e.m, Model: e.model, Comms: set}
	if e.tp != nil {
		in.Mesh, in.Topo = nil, e.tp
	}
	opts := e.opts
	opts.Seed = seed
	opts.Workspace = s.ws
	opts.Stop = e.stop
	for si, solver := range e.solvers {
		if si == e.bestIdx {
			continue // derived below
		}
		r, err := solver.Route(in, opts)
		if err != nil {
			if errors.Is(err, solve.ErrStopped) {
				// Cancellation, not a solver failure: halt the sweep
				// instead of scoring the trial as infeasible.
				return err
			}
			// Policies that prove infeasibility (OPT) or blow a search
			// budget surface as errors; the panel counts them as
			// failures, like the paper counts heuristic failures.
			row[si] = instanceOutcome{}
			continue
		}
		s.loads.SetRouting(r)
		bd, ok := s.loads.Evaluate(e.model)
		row[si] = instanceOutcome{feasible: ok, pow: bd.Total(), static: bd.Static}
	}
	e.deriveBest(row)
	return nil
}

// pointState tracks one in-flight point: the count of chunks still
// outstanding and the point's outcome slab, acquired from the pool when
// the first chunk opens it.
type pointState struct {
	once    sync.Once
	pending atomic.Int32
	rows    []instanceOutcome
}

// outcomePool recycles per-point outcome slabs (trials×npol rows):
// merged points return their slab for the next point the scheduler
// opens, so a sweep holds about as many slabs as it has points in
// flight, however many points it sweeps.
type outcomePool struct {
	mu   sync.Mutex
	free [][]instanceOutcome
	size int
}

func (p *outcomePool) get() []instanceOutcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return make([]instanceOutcome, p.size)
}

func (p *outcomePool) put(s []instanceOutcome) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// sweep schedules the panel's (point, trial) space from the start index
// on the work-stealing fleet and hands each completed point's outcome
// rows to emit strictly in point order — the merge stage behind the
// byte-identical streaming contract: out-of-order completions buffer
// until every earlier point has been released to the sinks. An emit
// error aborts the fleet and is returned (after a trial error, which
// takes precedence).
func (e *engine) sweep(panelSeed int64, points []Point, start, workers int, emit func(pi int, rows []instanceOutcome) error) error {
	npts := len(points)
	if start >= npts {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	npol := len(e.solvers)
	csize := chunkTrials(e.trials, workers)
	states := make([]pointState, npts)
	var chunks []chunk
	for pi := start; pi < npts; pi++ {
		var n int
		chunks, n = appendChunks(chunks, pi, e.trials, csize)
		states[pi].pending.Store(int32(n))
	}
	pool := &outcomePool{size: e.trials * npol}

	run := func(s *sweepScratch, c chunk) error {
		st := &states[c.point]
		st.once.Do(func() { st.rows = pool.get() })
		pt := points[c.point]
		for trial := c.lo; trial < c.hi; trial++ {
			if err := e.runTrial(s, panelSeed, c.point, trial, pt, st.rows[trial*npol:(trial+1)*npol]); err != nil {
				return err
			}
		}
		return nil
	}

	// completed receives each point index whose last chunk finished. The
	// buffer holds every point, so workers never block on a slow sink —
	// the merge loop below is the only consumer and may lag freely.
	completed := make(chan int, npts-start)
	done := func(c chunk) {
		if states[c.point].pending.Add(-1) == 0 {
			completed <- c.point
		}
	}

	var sinkErr firstError
	// The fleet halts on the first sink error or, when the sweep carries a
	// cancellation poll, as soon as it fires — workers stop pulling chunks
	// and the merge loop drains whatever already completed.
	haltFleet := sinkErr.Failed
	if e.stop != nil {
		haltFleet = func() bool { return sinkErr.Failed() || e.stop() }
	}
	var schedErr error
	sched := make(chan struct{})
	go func() {
		defer close(sched)
		defer close(completed)
		schedErr = runStealing(chunks, workers, haltFleet,
			func() *sweepScratch { return e.newSweepScratch(npts) }, run, done)
	}()

	ready := make([]bool, npts)
	next := start
	for pi := range completed {
		ready[pi] = true
		for next < npts && ready[next] && !sinkErr.Failed() {
			if err := emit(next, states[next].rows); err != nil {
				sinkErr.Report(err)
				break
			}
			pool.put(states[next].rows)
			states[next].rows = nil
			next++
		}
	}
	<-sched
	if schedErr != nil {
		return schedErr
	}
	return sinkErr.Err()
}

// deriveBest fills the BEST entry of an outcome row from its constituent
// heuristics' entries (no-op when the shortcut is off).
func (e *engine) deriveBest(row []instanceOutcome) {
	if e.bestIdx < 0 {
		return
	}
	var best instanceOutcome
	for _, si := range e.bestFrom {
		if o := row[si]; o.feasible && (!best.feasible || o.pow < best.pow) {
			best = o
		}
	}
	row[e.bestIdx] = best
}

// parallelFor runs f(0..n-1) on up to GOMAXPROCS workers.
func parallelFor(n int, f func(i int)) {
	parallelScratch(n, func() struct{} { return struct{}{} }, func(_ struct{}, i int) { f(i) })
}

// parallelScratch runs f(s, 0..n-1) on up to GOMAXPROCS workers, each
// owning one scratch value built by newScratch — the shape the simple
// experiment loops share: embarrassingly parallel tasks over reusable
// per-worker state. Indexes are handed out in chunks off one atomic
// cursor; the historical unbuffered-channel handoff cost one goroutine
// rendezvous per index.
func parallelScratch[S any](n int, newScratch func() S, f func(s S, i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := newScratch()
		for i := 0; i < n; i++ {
			f(s, i)
		}
		return
	}
	csize := chunkTrials(n, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := newScratch()
			for {
				lo := int(cursor.Add(int64(csize))) - csize
				if lo >= n {
					return
				}
				hi := lo + csize
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					f(s, i)
				}
			}
		}()
	}
	wg.Wait()
}
