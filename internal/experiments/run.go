package experiments

import (
	"runtime"
	"sync"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// HeuristicNames is the plotting order of the Section 6 figures.
var HeuristicNames = []string{"XY", "SG", "IG", "TB", "XYI", "PR", "BEST"}

// Series is one heuristic's curve across the panel's points: the two
// y-axes of Figures 7–9.
type Series struct {
	Name string
	// NormPowerInv is the mean of (1/P_heur)/(1/P_BEST) per point, with
	// failed instances contributing 0 — exactly the paper's
	// normalization.
	NormPowerInv []float64
	// FailureRatio is the fraction of instances with no valid solution.
	FailureRatio []float64
}

// Result is a fully evaluated panel.
type Result struct {
	Panel  Panel
	X      []float64
	Series []Series
}

// SeriesByName returns the named series, or nil.
func (r Result) SeriesByName(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// instanceOutcome is one heuristic's evaluation on one instance.
type instanceOutcome struct {
	feasible bool
	pow      float64
	static   float64
}

// trialOutcome is the evaluation of all heuristics on one instance.
type trialOutcome struct {
	perHeur []instanceOutcome // indexed like heuristics slice
}

// buildHeuristics returns the concrete heuristics of a panel in
// HeuristicNames order (BEST excluded: it is derived from the others).
func buildHeuristics(p Panel) []heur.Heuristic {
	return []heur.Heuristic{
		heur.XY{},
		heur.SG{Order: p.Order},
		heur.IG{Order: p.Order},
		heur.TB{Order: p.Order},
		heur.XYI{},
		heur.PR{},
	}
}

// model returns the panel's power model.
func (p Panel) model() power.Model {
	if p.Continuous {
		return power.KimHorowitzContinuous()
	}
	return power.KimHorowitz()
}

// Run evaluates the panel: Trials random instances per point (in parallel
// across instances), every heuristic on every instance, reduced to the
// normalized-inverse-power and failure-ratio series. Results are
// deterministic: per-trial seeds are derived from (panel seed, point,
// trial) and the reduction is ordered.
func (p Panel) Run() Result {
	trials := p.Trials
	if trials == 0 {
		trials = DefaultTrials
	}
	m := mesh.MustNew(8, 8)
	model := p.model()
	hs := buildHeuristics(p)

	res := Result{Panel: p, X: make([]float64, len(p.Points))}
	accPow := make([][]stats.Accumulator, len(HeuristicNames))
	accFail := make([][]stats.Ratio, len(HeuristicNames))
	for h := range HeuristicNames {
		accPow[h] = make([]stats.Accumulator, len(p.Points))
		accFail[h] = make([]stats.Ratio, len(p.Points))
	}

	for pi, pt := range p.Points {
		res.X[pi] = pt.X
		outcomes := make([]trialOutcome, trials)
		parallelFor(trials, func(trial int) {
			seed := p.Seed*1_000_003 + int64(pi)*10_007 + int64(trial)
			set := drawSet(m, seed, pt.W)
			outcomes[trial] = evaluateInstance(m, model, set, hs)
		})
		for _, out := range outcomes {
			best := -1.0
			for _, o := range out.perHeur {
				if o.feasible && (best < 0 || o.pow < best) {
					best = o.pow
				}
			}
			for h, o := range out.perHeur {
				val := 0.0
				if o.feasible && best > 0 {
					val = best / o.pow // (1/P)/(1/Pbest)
				}
				accPow[h][pi].Add(val)
				accFail[h][pi].Add(!o.feasible)
			}
			bi := len(HeuristicNames) - 1 // BEST
			if best > 0 {
				accPow[bi][pi].Add(1)
				accFail[bi][pi].Add(false)
			} else {
				accPow[bi][pi].Add(0)
				accFail[bi][pi].Add(true)
			}
		}
	}

	for h, name := range HeuristicNames {
		s := Series{Name: name,
			NormPowerInv: make([]float64, len(p.Points)),
			FailureRatio: make([]float64, len(p.Points))}
		for pi := range p.Points {
			s.NormPowerInv[pi] = accPow[h][pi].Mean()
			s.FailureRatio[pi] = accFail[h][pi].Value()
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// drawSet draws one instance of a workload.
func drawSet(m *mesh.Mesh, seed int64, w Workload) comm.Set {
	gen := workload.New(m, seed)
	if w.Length > 0 {
		return gen.TargetLength(w.N, w.WMin, w.WMax, w.Length)
	}
	return gen.Uniform(w.N, w.WMin, w.WMax)
}

// evaluateInstance runs every heuristic on the instance.
func evaluateInstance(m *mesh.Mesh, model power.Model, set comm.Set, hs []heur.Heuristic) trialOutcome {
	in := heur.Instance{Mesh: m, Model: model, Comms: set}
	out := trialOutcome{perHeur: make([]instanceOutcome, len(hs))}
	for i, h := range hs {
		res, err := heur.Solve(h, in)
		if err != nil {
			// Malformed instances cannot occur here; treat defensively
			// as failure.
			continue
		}
		out.perHeur[i] = instanceOutcome{
			feasible: res.Feasible,
			pow:      res.Power.Total(),
			static:   res.Power.Static,
		}
	}
	return out
}

// parallelFor runs f(0..n-1) on up to GOMAXPROCS workers.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
