package experiments

import (
	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ConstructiveNames are the paper's six constructive single-path
// heuristics in presentation order — the set BEST minimizes over.
var ConstructiveNames = []string{"XY", "SG", "IG", "TB", "XYI", "PR"}

// HeuristicNames is the plotting order of the Section 6 figures
// (the constructive heuristics plus BEST), and the policy list a panel
// sweeps when Panel.Policies is empty.
var HeuristicNames = append(append([]string{}, ConstructiveNames...), "BEST")

// Series is one policy's curve across the panel's points: the two y-axes
// of Figures 7–9.
type Series struct {
	Name string
	// NormPowerInv is the mean of (1/P_policy)/(1/P_best) per point, with
	// failed instances contributing 0 — the paper's normalization, where
	// P_best is the lowest feasible power any of the panel's policies
	// found on that instance.
	NormPowerInv []float64
	// FailureRatio is the fraction of instances with no valid solution.
	FailureRatio []float64
}

// Result is a fully evaluated panel.
type Result struct {
	Panel  Panel
	X      []float64
	Series []Series
}

// SeriesByName returns the named series, or nil.
func (r Result) SeriesByName(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// instanceOutcome is one policy's evaluation on one instance.
type instanceOutcome struct {
	feasible bool
	pow      float64
	static   float64
}

// model returns the panel's power model.
func (p Panel) model() power.Model {
	if p.Continuous {
		return power.KimHorowitzContinuous()
	}
	return power.KimHorowitz()
}

// policyNames returns the panel's policy list (default HeuristicNames).
func (p Panel) policyNames() []string {
	if len(p.Policies) > 0 {
		return p.Policies
	}
	return HeuristicNames
}

// Run evaluates the panel: Trials random instances per point (on a pooled
// engine with per-worker scratch), every policy of the panel's list on
// every instance, reduced to the normalized-inverse-power and
// failure-ratio series. Results are deterministic: per-trial seeds are
// derived from (panel seed, point, trial) and the reduction is ordered.
// Run panics on an unregistered policy name; RunE reports it as an error.
func (p Panel) Run() Result {
	res, err := p.RunE()
	if err != nil {
		panic(err)
	}
	return res
}

// RunE is Run returning policy-resolution errors instead of panicking.
func (p Panel) RunE() (Result, error) {
	trials := p.Trials
	if trials == 0 {
		trials = DefaultTrials
	}
	e, err := newEngine(p, trials)
	if err != nil {
		return Result{}, err
	}
	npol := len(e.solvers)
	return p.reduce(e, trials, func(pi int, pt Point) func(int) []instanceOutcome {
		e.runPoint(p.Seed, pi, pt)
		return func(trial int) []instanceOutcome {
			return e.outcomes[trial*npol : (trial+1)*npol]
		}
	}), nil
}

// RunBaseline is the pre-engine reference runner: the same trials, seeds
// and reduction as Run, but allocating per trial — a fresh workload
// generator, a fresh evaluation, fresh outcome rows — instead of reusing
// worker scratch. It exists so the repository benchmarks can quantify the
// pooled engine against it and tests can cross-check that pooling never
// changes a figure.
func (p Panel) RunBaseline() Result {
	trials := p.Trials
	if trials == 0 {
		trials = DefaultTrials
	}
	e, err := newEngine(p, trials)
	if err != nil {
		panic(err)
	}
	npol := len(e.solvers)
	return p.reduce(e, trials, func(pi int, pt Point) func(int) []instanceOutcome {
		outcomes := make([][]instanceOutcome, trials)
		parallelFor(trials, func(trial int) {
			seed := trialSeed(p.Seed, pi, trial)
			set := drawSet(e.m, seed, pt.W)
			in := solve.Instance{Mesh: e.m, Model: e.model, Comms: set}
			opts := e.opts
			opts.Seed = seed
			row := make([]instanceOutcome, npol)
			for si, solver := range e.solvers {
				if si == e.bestIdx {
					continue
				}
				r, err := solver.Route(in, opts)
				if err != nil {
					continue
				}
				ev := route.Evaluate(r, e.model)
				row[si] = instanceOutcome{feasible: ev.Feasible, pow: ev.Power.Total(), static: ev.Power.Static}
			}
			e.deriveBest(row)
			outcomes[trial] = row
		})
		return func(trial int) []instanceOutcome { return outcomes[trial] }
	})
}

// reduce folds per-trial outcome rows into the two series of a panel
// result: normalized inverse power against the best feasible policy of
// the row, and failure ratio. runPoint produces the rows of one point;
// both Run and RunBaseline share this reduction so the benchmark baseline
// can never drift from the paper's normalization.
func (p Panel) reduce(e *engine, trials int,
	runPoint func(pi int, pt Point) func(trial int) []instanceOutcome) Result {

	res := Result{Panel: p, X: make([]float64, len(p.Points))}
	accPow := make([][]stats.Accumulator, len(e.solvers))
	accFail := make([][]stats.Ratio, len(e.solvers))
	for si := range e.solvers {
		accPow[si] = make([]stats.Accumulator, len(p.Points))
		accFail[si] = make([]stats.Ratio, len(p.Points))
	}

	for pi, pt := range p.Points {
		res.X[pi] = pt.X
		rowAt := runPoint(pi, pt)
		for trial := 0; trial < trials; trial++ {
			row := rowAt(trial)
			best := -1.0
			for _, o := range row {
				if o.feasible && (best < 0 || o.pow < best) {
					best = o.pow
				}
			}
			for si, o := range row {
				val := 0.0
				if o.feasible && best > 0 {
					val = best / o.pow // (1/P)/(1/Pbest)
				}
				accPow[si][pi].Add(val)
				accFail[si][pi].Add(!o.feasible)
			}
		}
	}

	for si, name := range e.names {
		s := Series{Name: name,
			NormPowerInv: make([]float64, len(p.Points)),
			FailureRatio: make([]float64, len(p.Points))}
		for pi := range p.Points {
			s.NormPowerInv[pi] = accPow[si][pi].Mean()
			s.FailureRatio[pi] = accFail[si][pi].Value()
		}
		res.Series = append(res.Series, s)
	}
	return res
}

// drawSet draws one instance of a workload with a throwaway generator.
func drawSet(m *mesh.Mesh, seed int64, w Workload) comm.Set {
	gen := workload.New(m, seed)
	if w.Length > 0 {
		return gen.TargetLength(w.N, w.WMin, w.WMax, w.Length)
	}
	return gen.Uniform(w.N, w.WMin, w.WMax)
}
