package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/scenario"
	"repro/internal/solve"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ConstructiveNames are the paper's six constructive single-path
// heuristics in presentation order — the set BEST minimizes over.
var ConstructiveNames = []string{"XY", "SG", "IG", "TB", "XYI", "PR"}

// HeuristicNames is the plotting order of the Section 6 figures
// (the constructive heuristics plus BEST), and the policy list a panel
// sweeps when Panel.Policies is empty.
var HeuristicNames = append(append([]string{}, ConstructiveNames...), "BEST")

// Series is one policy's curve across the panel's points: the two y-axes
// of Figures 7–9.
type Series struct {
	Name string
	// NormPowerInv is the mean of (1/P_policy)/(1/P_best) per point, with
	// failed instances contributing 0 — the paper's normalization, where
	// P_best is the lowest feasible power any of the panel's policies
	// found on that instance.
	NormPowerInv []float64
	// FailureRatio is the fraction of instances with no valid solution.
	FailureRatio []float64
}

// Result is a fully evaluated panel.
type Result struct {
	Panel  Panel
	X      []float64
	Series []Series
}

// SeriesByName returns the named series, or nil.
func (r Result) SeriesByName(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// instanceOutcome is one policy's evaluation on one instance.
type instanceOutcome struct {
	feasible bool
	pow      float64
	static   float64
}

// model returns the panel's power model.
func (p Panel) model() power.Model {
	if p.Continuous {
		return power.KimHorowitzContinuous()
	}
	return power.KimHorowitz()
}

// policyNames returns the panel's policy list (default HeuristicNames).
func (p Panel) policyNames() []string {
	if len(p.Policies) > 0 {
		return p.Policies
	}
	return HeuristicNames
}

// dropBest strips "BEST" from a policy list for the runners that always
// derive it themselves; an empty remainder falls back to the paper's
// constructive line-up (BEST over exactly those six).
func dropBest(policies []string) []string {
	out := make([]string, 0, len(policies))
	for _, p := range policies {
		if strings.EqualFold(p, "BEST") {
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return ConstructiveNames
	}
	return out
}

// SweepOptions tunes a streaming sweep.
type SweepOptions struct {
	// Start skips the points before this index — the resume hook: because
	// per-trial seeds derive only from (seed, point, trial), a sweep
	// restarted at the checkpointed point index streams exactly the
	// output an uninterrupted run would have produced from that point on.
	Start int
	// Workers is the number of persistent scheduler workers the sweep
	// runs on (0 = GOMAXPROCS). Per-trial seeds depend only on
	// (seed, point, trial) and the merge stage releases points to the
	// sinks strictly in point order, so every worker count — including
	// the serial Workers=1 reference — streams byte-identical output.
	Workers int
	// Context, when non-nil, cancels the sweep: workers stop pulling
	// chunks, in-flight long solves abandon via solve.Options.Stop, and
	// Stream returns the context's error. Points already released to the
	// sinks stay valid checkpoints (the resume contract), the sinks' End
	// is never called on a cancelled run, and a nil or never-cancelled
	// Context leaves the output byte-identical to a run without one.
	Context context.Context
	// TrialStart, when non-nil, runs on the executing worker immediately
	// before every (point, trial) evaluation. It is the fault-injection
	// and instrumentation hook of the serving layer's chaos harness: it
	// may sleep (latency spikes) or panic (contained like a solver
	// panic). It must be safe for concurrent calls.
	TrialStart func(point, trial int)
}

// Sweep expands a declarative spec and streams its evaluation point by
// point into the sinks: every policy on every seeded trial of each point,
// reduced to the paper's normalized-inverse-power and failure-ratio
// series. Sinks receive each point as soon as it is evaluated, so long
// sweeps emit partial results and can be resumed by point index after an
// interruption.
func Sweep(sp scenario.Spec, opt SweepOptions, sinks ...Sink) error {
	p, err := PanelOf(sp)
	if err != nil {
		return err
	}
	return p.Stream(opt, sinks...)
}

// Stream runs the panel through the pooled engine on the work-stealing
// scheduler, emitting each evaluated point to the sinks in point order.
// It is the core every runner shares: Sweep feeds it specs, Run collects
// its stream into a Result.
func (p Panel) Stream(opt SweepOptions, sinks ...Sink) error {
	trials := p.Trials
	if trials == 0 {
		trials = DefaultTrials
	}
	e, err := newEngine(p, trials)
	if err != nil {
		return err
	}
	if ctx := opt.Context; ctx != nil {
		e.stop = func() bool { return ctx.Err() != nil }
	}
	e.trialStart = opt.TrialStart
	if opt.Start < 0 || opt.Start > len(p.Points) {
		return fmt.Errorf("experiments: resume point %d outside 0..%d", opt.Start, len(p.Points))
	}
	meta := SweepMeta{
		ID:       p.ID,
		Title:    p.Title,
		XLabel:   p.XLabel,
		Policies: e.names,
		X:        xValues(p.Points),
		Trials:   trials,
		Start:    opt.Start,
	}
	for _, sk := range sinks {
		if err := sk.Begin(meta); err != nil {
			return err
		}
	}
	npol := len(e.solvers)
	err = e.sweep(p.Seed, p.Points, opt.Start, opt.Workers, func(pi int, rows []instanceOutcome) error {
		pr := reducePoint(pi, p.Points[pi].X, npol, trials, func(trial int) []instanceOutcome {
			return rows[trial*npol : (trial+1)*npol]
		})
		for _, sk := range sinks {
			if err := sk.Point(pr); err != nil {
				return err
			}
		}
		return nil
	})
	if ctx := opt.Context; ctx != nil && ctx.Err() != nil {
		// Cancellation dominates whatever the halt surfaced as on the
		// workers (a stopped solver, a chunk abandoned between polls): the
		// caller asked the sweep to stop and gets the context's verdict.
		return ctx.Err()
	}
	if err != nil {
		return err
	}
	for _, sk := range sinks {
		if err := sk.End(); err != nil {
			return err
		}
	}
	return nil
}

func xValues(pts []Point) []float64 {
	xs := make([]float64, len(pts))
	for i, pt := range pts {
		xs[i] = pt.X
	}
	return xs
}

// reducePoint folds one point's per-trial outcome rows into the two
// series values of that point: normalized inverse power against the best
// feasible policy of each row, and failure ratio — the paper's
// normalization, shared by the streaming runner and the benchmark
// baseline so neither can drift.
func reducePoint(pi int, x float64, npol, trials int, rowAt func(trial int) []instanceOutcome) PointResult {
	accPow := make([]stats.Accumulator, npol)
	accFail := make([]stats.Ratio, npol)
	for trial := 0; trial < trials; trial++ {
		row := rowAt(trial)
		best := -1.0
		for _, o := range row {
			if o.feasible && (best < 0 || o.pow < best) {
				best = o.pow
			}
		}
		for si, o := range row {
			val := 0.0
			if o.feasible && best > 0 {
				val = best / o.pow // (1/P)/(1/Pbest)
			}
			accPow[si].Add(val)
			accFail[si].Add(!o.feasible)
		}
	}
	pr := PointResult{
		Index:        pi,
		X:            x,
		NormPowerInv: make([]float64, npol),
		FailureRatio: make([]float64, npol),
	}
	for si := 0; si < npol; si++ {
		pr.NormPowerInv[si] = accPow[si].Mean()
		pr.FailureRatio[si] = accFail[si].Value()
	}
	return pr
}

// Run evaluates the panel: Trials random instances per point (on a pooled
// engine with per-worker scratch), every policy of the panel's list on
// every instance, reduced to the normalized-inverse-power and
// failure-ratio series. Results are deterministic: per-trial seeds are
// derived from (panel seed, point, trial) and the reduction is ordered.
// Run panics on an unregistered policy name; RunE reports it as an error.
func (p Panel) Run() Result {
	res, err := p.RunE()
	if err != nil {
		panic(err)
	}
	return res
}

// RunE is Run returning resolution errors instead of panicking.
func (p Panel) RunE() (Result, error) {
	rs := &resultSink{}
	if err := p.Stream(SweepOptions{}, rs); err != nil {
		return Result{}, err
	}
	rs.result.Panel = p
	return rs.result, nil
}

// RunBaseline is the pre-engine reference runner: the same trials, seeds
// and reduction as Run, but allocating per trial — a fresh workload
// generator, a fresh evaluation, fresh outcome rows — instead of reusing
// worker scratch. It exists so the repository benchmarks can quantify the
// pooled engine against it and tests can cross-check that pooling never
// changes a figure. It panics on any error; RunBaselineE reports them.
func (p Panel) RunBaseline() Result {
	res, err := p.RunBaselineE()
	if err != nil {
		panic(err)
	}
	return res
}

// RunBaselineE is RunBaseline surfacing setup and draw errors instead of
// panicking. Draw errors historically panicked inside worker goroutines,
// where no recover can reach them — they crashed the process; now the
// first one halts the workers and is returned.
func (p Panel) RunBaselineE() (Result, error) {
	if p.Source != "" && p.Source != "uniform" {
		return Result{}, fmt.Errorf("experiments: RunBaseline supports only the uniform source, not %q", p.Source)
	}
	if p.Topology != "" {
		return Result{}, fmt.Errorf("experiments: RunBaseline supports only mesh platforms, not topology %q", p.Topology)
	}
	trials := p.Trials
	if trials == 0 {
		trials = DefaultTrials
	}
	e, err := newEngine(p, trials)
	if err != nil {
		return Result{}, err
	}
	npol := len(e.solvers)
	rs := &resultSink{}
	meta := SweepMeta{ID: p.ID, Title: p.Title, XLabel: p.XLabel,
		Policies: e.names, X: xValues(p.Points), Trials: trials}
	if err := rs.Begin(meta); err != nil {
		return Result{}, err
	}
	var ferr firstError
	for pi, pt := range p.Points {
		outcomes := make([][]instanceOutcome, trials)
		parallelFor(trials, func(trial int) {
			if ferr.Failed() {
				return
			}
			seed := trialSeed(p.Seed, pi, trial)
			set, err := drawSet(e.m, seed, pt.W)
			if err != nil {
				ferr.Report(fmt.Errorf("experiments: point %d trial %d: %w", pi, trial, err))
				return
			}
			in := solve.Instance{Mesh: e.m, Model: e.model, Comms: set}
			opts := e.opts
			opts.Seed = seed
			row := make([]instanceOutcome, npol)
			for si, solver := range e.solvers {
				if si == e.bestIdx {
					continue
				}
				r, err := solver.Route(in, opts)
				if err != nil {
					continue
				}
				ev := route.Evaluate(r, e.model)
				row[si] = instanceOutcome{feasible: ev.Feasible, pow: ev.Power.Total(), static: ev.Power.Static}
			}
			e.deriveBest(row)
			outcomes[trial] = row
		})
		if err := ferr.Err(); err != nil {
			return Result{}, err
		}
		pr := reducePoint(pi, pt.X, npol, trials, func(trial int) []instanceOutcome {
			return outcomes[trial]
		})
		if err := rs.Point(pr); err != nil {
			return Result{}, err
		}
	}
	rs.result.Panel = p
	return rs.result, nil
}

// drawSet draws one instance of a workload with a throwaway generator
// (the random family only — the baseline runner predates the scenario
// registry and exists to benchmark allocation behavior, not sources).
func drawSet(m *mesh.Mesh, seed int64, w Workload) (comm.Set, error) {
	return scenario.DrawRandom(workload.New(m, 0), seed, w, nil)
}
