package experiments

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
	"repro/internal/tables"
	"repro/internal/workload"
)

// PatternCell is one heuristic's outcome on one permutation pattern.
type PatternCell struct {
	Feasible bool
	PowerMW  float64
}

// PatternRow is the evaluation of a policy list on one classic NoC
// permutation pattern at a fixed per-flow rate.
type PatternRow struct {
	Pattern workload.Pattern
	Rate    float64
	Flows   int
	// Names is the evaluated policy list plus the trailing derived BEST —
	// the column order of PatternTable.
	Names []string
	Cells map[string]PatternCell // keyed by policy name, plus BEST
}

// RunPatterns routes the classic permutation benchmarks (bit-complement,
// bit-reverse, shuffle, tornado, neighbor) on the paper's 8×8 mesh with
// every heuristic. Patterns are deterministic, so no trials are involved;
// the experiment extends the paper's random workloads with the structured
// traffic the NoC literature evaluates on.
func RunPatterns(rate float64) ([]PatternRow, error) {
	return RunPatternsWith(rate, nil)
}

// RunPatternsWith is RunPatterns over an explicit registered policy list
// (nil means ConstructiveNames); BEST is derived as the best feasible of
// the list, and a literal "BEST" entry is absorbed into the derived
// column so any -policies list the figure sweeps accept works here too.
func RunPatternsWith(rate float64, policies []string) ([]PatternRow, error) {
	policies = dropBest(policies)
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	names := make([]string, 0, len(policies)+1)
	solvers := make([]solve.Solver, 0, len(policies))
	for _, name := range policies {
		s, err := solve.Lookup(name)
		if err != nil {
			return nil, err
		}
		solvers = append(solvers, s)
		names = append(names, s.Name())
	}
	names = append(names, "BEST")
	var rows []PatternRow
	for _, p := range workload.Patterns() {
		set, err := workload.Permutation(m, nil, p, rate)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v: %w", p, err)
		}
		row := PatternRow{Pattern: p, Rate: rate, Flows: len(set), Names: names, Cells: make(map[string]PatternCell)}
		bestPow := -1.0
		for si, solver := range solvers {
			r, err := solver.Route(solve.Instance{Mesh: m, Model: model, Comms: set}, solve.Options{})
			if err != nil {
				return nil, err
			}
			res := route.Evaluate(r, model)
			cell := PatternCell{Feasible: res.Feasible, PowerMW: res.Power.Total()}
			row.Cells[names[si]] = cell
			if cell.Feasible && (bestPow < 0 || cell.PowerMW < bestPow) {
				bestPow = cell.PowerMW
			}
		}
		row.Cells["BEST"] = PatternCell{Feasible: bestPow > 0, PowerMW: bestPow}
		rows = append(rows, row)
	}
	return rows, nil
}

// PatternTable renders the permutation benchmark results.
func PatternTable(rows []PatternRow) *tables.Table {
	names := HeuristicNames
	if len(rows) > 0 && len(rows[0].Names) > 0 {
		names = rows[0].Names
	}
	headers := append([]string{"pattern", "flows"}, names...)
	t := tables.New(
		fmt.Sprintf("Permutation benchmarks on 8×8 (%.0f Mb/s per flow; power in mW, FAIL = bandwidth violated)",
			rowsRate(rows)),
		headers...)
	for _, r := range rows {
		cells := []string{r.Pattern.String(), fmt.Sprintf("%d", r.Flows)}
		for _, name := range names {
			c := r.Cells[name]
			if !c.Feasible {
				cells = append(cells, "FAIL")
			} else {
				cells = append(cells, fmt.Sprintf("%.0f", c.PowerMW))
			}
		}
		t.AddRow(cells...)
	}
	return t
}

func rowsRate(rows []PatternRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Rate
}
