package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered on a sweep worker goroutine, converted
// into the sweep's error so one panicking solver (or fault-injection
// hook) fails the run instead of crashing the process. Callers detect it
// with errors.As — the serving layer counts these separately from
// ordinary solve failures.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("experiments: worker panic: %v", e.Value)
}

// firstError collects the first error reported across concurrent
// workers — the one shared implementation of the errMu/firstErr pattern
// the parallel runners used to copy-paste. Report keeps the earliest
// error and drops the rest; Failed is the lock-free fast check workers
// poll to stop early once anything went wrong.
type firstError struct {
	mu     sync.Mutex
	failed atomic.Bool
	err    error
}

// Report records err as the first error if none is held yet. nil errors
// are ignored, so callers can report unconditionally.
func (f *firstError) Report(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
		f.failed.Store(true)
	}
	f.mu.Unlock()
}

// Failed reports whether any error has been recorded. It is cheap enough
// to poll on hot loops (one atomic load, no lock).
func (f *firstError) Failed() bool { return f.failed.Load() }

// Err returns the recorded first error, or nil.
func (f *firstError) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
