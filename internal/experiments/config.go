// Package experiments regenerates every figure of the paper's Section 6
// evaluation plus the Section 4 theory plots — and generalizes them: the
// figure panels are canned scenario.Spec values run through a generic
// streaming Sweep over the pooled trial engine, so any registered
// workload source × policy list × mesh combination runs through the same
// pipeline. cmd/experiments and the repository benchmarks are thin
// wrappers over this package.
package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/scenario"
)

// Workload describes how one instance of a panel point is drawn. It is
// the scenario layer's declarative parameter bundle; the panel's Source
// decides which fields matter.
type Workload = scenario.Params

// Point is one x-position of a panel.
type Point struct {
	X float64
	W Workload
}

// Panel configures one figure panel: an x-sweep of workloads evaluated by
// a policy list over Trials random instances per point. Panels are the
// expanded, imperative form of a scenario.Spec (PanelOf); the canned
// figures are Specs first.
type Panel struct {
	ID     string
	Title  string
	XLabel string
	// Mesh is the "PxQ" platform geometry ("" = the paper's 8x8).
	Mesh string
	// Topology selects a non-mesh platform by topo.Parse spec string
	// (e.g. "torus:8x8"); empty keeps the mesh in Mesh. Mutually
	// exclusive with Mesh, mirroring scenario.Spec.
	Topology string
	// Source is the registered scenario source drawing each trial's
	// communication set ("" = "uniform", the Section 6 random family).
	Source string
	Points []Point
	// Policies is the list of registered policy names the panel sweeps
	// (any mix of families: heuristics, SA, multi-path, OPT, MAXMP).
	// Empty means HeuristicNames — the paper's Figure 7–9 line-up.
	Policies []string
	// Trials is the number of random communication sets per point
	// (the paper used 50 000; defaults are far smaller, see DefaultTrials).
	Trials int
	// Seed derives all per-trial RNG streams.
	Seed int64
	// Continuous switches to the continuous-frequency ablation model.
	Continuous bool
	// Order overrides the processing order of the order-sensitive
	// heuristics (ablation; zero value is the paper's weight-descending).
	Order comm.Order
}

// DefaultTrials is the per-point trial count used when a panel leaves
// Trials at zero. The paper averages 50 000 sets per point; 400 keeps the
// full suite under a few minutes on a laptop while preserving the curve
// shapes.
const DefaultTrials = 400

// figureIDs is the canonical order of the canned figure sweeps.
var figureIDs = []string{
	"fig7a", "fig7b", "fig7c",
	"fig8a", "fig8b", "fig8c",
	"fig9a", "fig9b", "fig9c",
}

// FigureIDs returns the canned figure sweep identifiers in presentation
// order.
func FigureIDs() []string {
	return append([]string(nil), figureIDs...)
}

// Specs returns the canned figure sweeps of Section 6 as declarative
// scenario specs, keyed by ID. Every spec runs on the paper's 8×8 mesh
// with the heuristic line-up at DefaultTrials unless overridden.
func Specs() map[string]scenario.Spec {
	out := make(map[string]scenario.Spec)
	for _, sp := range []scenario.Spec{
		sweepN("fig7a", "Figure 7(a): sensitivity to #comms, small communications",
			100, 1500, []float64{5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140}),
		sweepN("fig7b", "Figure 7(b): sensitivity to #comms, mixed communications",
			100, 2500, []float64{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70}),
		sweepN("fig7c", "Figure 7(c): sensitivity to #comms, big communications",
			2500, 3500, []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}),
		sweepWeight("fig8a", "Figure 8(a): sensitivity to size, few communications (n=10)",
			10, 100, 3500),
		sweepWeight("fig8b", "Figure 8(b): sensitivity to size, some communications (n=20)",
			20, 100, 3500),
		sweepWeight("fig8c", "Figure 8(c): sensitivity to size, numerous communications (n=40)",
			40, 100, 1800),
		sweepLength("fig9a", "Figure 9(a): sensitivity to length, numerous small communications (n=100)",
			100, 200, 800),
		sweepLength("fig9b", "Figure 9(b): sensitivity to length, some mixed communications (n=25)",
			25, 100, 3500),
		sweepLength("fig9c", "Figure 9(c): sensitivity to length, few big communications (n=12)",
			12, 2700, 3300),
	} {
		out[sp.ID] = sp
	}
	return out
}

// SpecByID looks a canned figure spec up by its identifier.
func SpecByID(id string) (scenario.Spec, error) {
	sp, ok := Specs()[id]
	if !ok {
		return scenario.Spec{}, fmt.Errorf("experiments: unknown spec %q", id)
	}
	return sp, nil
}

// sweepN is the Figures 7a–c shape: δ ~ U[wmin, wmax], n swept.
func sweepN(id, title string, wmin, wmax float64, ns []float64) scenario.Spec {
	return scenario.Spec{
		ID: id, Title: title,
		Params: scenario.Params{WMin: wmin, WMax: wmax},
		Axis:   scenario.AxisN, Points: ns,
		Seed: 1,
	}
}

// weightBand is the relative half-width of the weight distribution around
// the swept average: δ ~ U[0.9·avg, 1.1·avg]. The paper plots against the
// average weight without stating the spread; a narrow band reproduces its
// sharp n-flows-per-link feasibility cliffs (e.g. the drop at 1751 Mb/s
// where two communications can no longer share a 3.5 Gb/s link).
const weightBand = scenario.DefaultWBand

// sweepWeight is the Figures 8a–c shape: n fixed, average weight swept
// over [lo, hi] in 200 Mb/s steps with the weightBand spread.
func sweepWeight(id, title string, n int, lo, hi float64) scenario.Spec {
	var pts []float64
	for avg := lo; avg <= hi; avg += 200 {
		pts = append(pts, avg)
	}
	return scenario.Spec{
		ID: id, Title: title,
		Params: scenario.Params{N: n, WBand: weightBand},
		Axis:   scenario.AxisWeight, Points: pts,
		Seed: 2,
	}
}

// sweepLength is the Figures 9a–c shape: n and the weight range fixed,
// the exact Manhattan length swept from 2 to 14.
func sweepLength(id, title string, n int, wmin, wmax float64) scenario.Spec {
	var pts []float64
	for ell := 2; ell <= 14; ell++ {
		pts = append(pts, float64(ell))
	}
	return scenario.Spec{
		ID: id, Title: title,
		Params: scenario.Params{N: n, WMin: wmin, WMax: wmax},
		Axis:   scenario.AxisLength, Points: pts,
		Seed: 3,
	}
}

// PanelOf expands a declarative spec into a runnable panel: the swept
// axis applied to every point, captions defaulted, the power model
// resolved.
func PanelOf(sp scenario.Spec) (Panel, error) {
	if err := sp.Validate(); err != nil {
		return Panel{}, err
	}
	p := Panel{
		ID:       sp.ID,
		Title:    sp.Title,
		XLabel:   sp.XLabel,
		Mesh:     sp.Mesh,
		Topology: sp.Topology,
		Source:   sp.Source,
		Policies: append([]string(nil), sp.Policies...),
		Trials:   sp.Trials,
		Seed:     sp.Seed,
	}
	if p.ID == "" {
		p.ID = "sweep"
	}
	if p.Title == "" {
		p.Title = fmt.Sprintf("%s sweep (%s)", sp.SourceName(), p.ID)
	}
	if p.XLabel == "" {
		p.XLabel = sp.DefaultXLabel()
	}
	if sp.Power == "continuous" {
		p.Continuous = true
	}
	for _, x := range sp.XValues() {
		p.Points = append(p.Points, Point{X: x, W: sp.At(x)})
	}
	return p, nil
}

// mustPanel expands a canned spec (always valid).
func mustPanel(sp scenario.Spec, err error) Panel {
	if err == nil {
		var p Panel
		p, err = PanelOf(sp)
		if err == nil {
			return p
		}
	}
	panic(err)
}

// Figure7a is the small-communications sweep of §6.1.1:
// δ ~ U[100,1500] Mb/s, n from 5 to 140.
func Figure7a() Panel { return mustPanel(SpecByID("fig7a")) }

// Figure7b is the mixed-communications sweep of §6.1.2:
// δ ~ U[100,2500], n from 5 to 70.
func Figure7b() Panel { return mustPanel(SpecByID("fig7b")) }

// Figure7c is the big-communications sweep of §6.1.3:
// δ ~ U[2500,3500], n from 2 to 30.
func Figure7c() Panel { return mustPanel(SpecByID("fig7c")) }

// Figure8a sweeps the average weight with 10 communications (§6.2.1).
func Figure8a() Panel { return mustPanel(SpecByID("fig8a")) }

// Figure8b sweeps the average weight with 20 communications (§6.2.2).
func Figure8b() Panel { return mustPanel(SpecByID("fig8b")) }

// Figure8c sweeps the average weight with 40 communications (§6.2.3);
// the paper's x-axis stops near 1800 where everything fails.
func Figure8c() Panel { return mustPanel(SpecByID("fig8c")) }

// Figure9a sweeps the communication length with 100 small communications
// (§6.3.1): δ ~ U[200,800].
func Figure9a() Panel { return mustPanel(SpecByID("fig9a")) }

// Figure9b sweeps the length with 25 mid-weighted communications (§6.3.2):
// δ ~ U[100,3500].
func Figure9b() Panel { return mustPanel(SpecByID("fig9b")) }

// Figure9c sweeps the length with 12 big communications (§6.3.3):
// δ ~ U[2700,3300].
func Figure9c() Panel { return mustPanel(SpecByID("fig9c")) }

// figurePanels returns the nine canned figure panels in order.
func figurePanels() []Panel {
	out := make([]Panel, 0, len(figureIDs))
	for _, id := range figureIDs {
		out = append(out, mustPanel(SpecByID(id)))
	}
	return out
}

// Panels returns every figure panel keyed by ID.
func Panels() map[string]Panel {
	out := make(map[string]Panel)
	for _, p := range figurePanels() {
		out[p.ID] = p
	}
	return out
}

// PanelByID looks a panel up by its identifier.
func PanelByID(id string) (Panel, error) {
	p, ok := Panels()[id]
	if !ok {
		return Panel{}, fmt.Errorf("experiments: unknown panel %q", id)
	}
	return p, nil
}
