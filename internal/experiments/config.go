// Package experiments regenerates every figure of the paper's Section 6
// evaluation plus the Section 4 theory plots: declarative panel
// configurations (one per figure panel), a parallel trial runner, and the
// §6.4 summary statistics. cmd/experiments and the repository benchmarks
// are thin wrappers over this package.
package experiments

import (
	"fmt"

	"repro/internal/comm"
)

// Workload describes how one instance of a panel point is drawn.
type Workload struct {
	// N is the number of communications.
	N int
	// WMin and WMax bound the uniform weight distribution (Mb/s).
	WMin, WMax float64
	// Length, when non-zero, forces every communication to that exact
	// Manhattan length (the Section 6.3 sweeps).
	Length int
}

// Point is one x-position of a panel.
type Point struct {
	X float64
	W Workload
}

// Panel configures one figure panel: an x-sweep of workloads evaluated by
// a policy list over Trials random instances per point.
type Panel struct {
	ID     string
	Title  string
	XLabel string
	Points []Point
	// Policies is the list of registered policy names the panel sweeps
	// (any mix of families: heuristics, SA, multi-path, OPT, MAXMP).
	// Empty means HeuristicNames — the paper's Figure 7–9 line-up.
	Policies []string
	// Trials is the number of random communication sets per point
	// (the paper used 50 000; defaults are far smaller, see DefaultTrials).
	Trials int
	// Seed derives all per-trial RNG streams.
	Seed int64
	// Continuous switches to the continuous-frequency ablation model.
	Continuous bool
	// Order overrides the processing order of the order-sensitive
	// heuristics (ablation; zero value is the paper's weight-descending).
	Order comm.Order
}

// DefaultTrials is the per-point trial count used when a panel leaves
// Trials at zero. The paper averages 50 000 sets per point; 400 keeps the
// full suite under a few minutes on a laptop while preserving the curve
// shapes.
const DefaultTrials = 400

// Figure7a is the small-communications sweep of §6.1.1:
// δ ~ U[100,1500] Mb/s, n from 5 to 140.
func Figure7a() Panel {
	return sweepN("fig7a", "Figure 7(a): sensitivity to #comms, small communications",
		100, 1500, []int{5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140})
}

// Figure7b is the mixed-communications sweep of §6.1.2:
// δ ~ U[100,2500], n from 5 to 70.
func Figure7b() Panel {
	return sweepN("fig7b", "Figure 7(b): sensitivity to #comms, mixed communications",
		100, 2500, []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70})
}

// Figure7c is the big-communications sweep of §6.1.3:
// δ ~ U[2500,3500], n from 2 to 30.
func Figure7c() Panel {
	return sweepN("fig7c", "Figure 7(c): sensitivity to #comms, big communications",
		2500, 3500, []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30})
}

func sweepN(id, title string, wmin, wmax float64, ns []int) Panel {
	p := Panel{ID: id, Title: title, XLabel: "number of communications", Seed: 1}
	for _, n := range ns {
		p.Points = append(p.Points, Point{X: float64(n), W: Workload{N: n, WMin: wmin, WMax: wmax}})
	}
	return p
}

// Figure8a sweeps the average weight with 10 communications (§6.2.1).
func Figure8a() Panel {
	return sweepWeight("fig8a", "Figure 8(a): sensitivity to size, few communications (n=10)",
		10, 100, 3500)
}

// Figure8b sweeps the average weight with 20 communications (§6.2.2).
func Figure8b() Panel {
	return sweepWeight("fig8b", "Figure 8(b): sensitivity to size, some communications (n=20)",
		20, 100, 3500)
}

// Figure8c sweeps the average weight with 40 communications (§6.2.3);
// the paper's x-axis stops near 1800 where everything fails.
func Figure8c() Panel {
	return sweepWeight("fig8c", "Figure 8(c): sensitivity to size, numerous communications (n=40)",
		40, 100, 1800)
}

// weightBand is the relative half-width of the weight distribution around
// the swept average: δ ~ U[0.9·avg, 1.1·avg]. The paper plots against the
// average weight without stating the spread; a narrow band reproduces its
// sharp n-flows-per-link feasibility cliffs (e.g. the drop at 1751 Mb/s
// where two communications can no longer share a 3.5 Gb/s link).
const weightBand = 0.10

func sweepWeight(id, title string, n int, lo, hi float64) Panel {
	p := Panel{ID: id, Title: title, XLabel: "average weight (Mb/s)", Seed: 2}
	for avg := lo; avg <= hi; avg += 200 {
		p.Points = append(p.Points, Point{
			X: avg,
			W: Workload{N: n, WMin: avg * (1 - weightBand), WMax: avg * (1 + weightBand)},
		})
	}
	return p
}

// Figure9a sweeps the communication length with 100 small communications
// (§6.3.1): δ ~ U[200,800].
func Figure9a() Panel {
	return sweepLength("fig9a", "Figure 9(a): sensitivity to length, numerous small communications (n=100)",
		100, 200, 800)
}

// Figure9b sweeps the length with 25 mid-weighted communications (§6.3.2):
// δ ~ U[100,3500].
func Figure9b() Panel {
	return sweepLength("fig9b", "Figure 9(b): sensitivity to length, some mixed communications (n=25)",
		25, 100, 3500)
}

// Figure9c sweeps the length with 12 big communications (§6.3.3):
// δ ~ U[2700,3300].
func Figure9c() Panel {
	return sweepLength("fig9c", "Figure 9(c): sensitivity to length, few big communications (n=12)",
		12, 2700, 3300)
}

func sweepLength(id, title string, n int, wmin, wmax float64) Panel {
	p := Panel{ID: id, Title: title, XLabel: "average length (hops)", Seed: 3}
	for ell := 2; ell <= 14; ell++ {
		p.Points = append(p.Points, Point{
			X: float64(ell),
			W: Workload{N: n, WMin: wmin, WMax: wmax, Length: ell},
		})
	}
	return p
}

// Panels returns every figure panel keyed by ID.
func Panels() map[string]Panel {
	out := make(map[string]Panel)
	for _, p := range []Panel{
		Figure7a(), Figure7b(), Figure7c(),
		Figure8a(), Figure8b(), Figure8c(),
		Figure9a(), Figure9b(), Figure9c(),
	} {
		out[p.ID] = p
	}
	return out
}

// PanelByID looks a panel up by its identifier.
func PanelByID(id string) (Panel, error) {
	p, ok := Panels()[id]
	if !ok {
		return Panel{}, fmt.Errorf("experiments: unknown panel %q", id)
	}
	return p, nil
}
