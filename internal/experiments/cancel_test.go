package experiments

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// Cancelling the sweep's context mid-run halts the workers promptly,
// returns the context's error, and leaves the sinks holding an in-order
// prefix with End never called — the checkpoint contract interrupted
// runs resume from.
func TestSweepContextCancelStopsEarly(t *testing.T) {
	sp := smokeSpec()
	sp.Trials = 16
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var trials atomic.Int64
	rs := &recordSink{}
	err := Sweep(sp, SweepOptions{Workers: 2, Context: ctx, TrialStart: func(_, _ int) {
		if trials.Add(1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
	}}, rs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rs.ended {
		t.Error("End was called on a cancelled sweep")
	}
	if total := int64(len(sp.Points) * sp.Trials); trials.Load() >= total {
		t.Errorf("cancelled sweep still ran all %d trials", total)
	}
	for i, pr := range rs.points {
		if pr.Index != i {
			t.Fatalf("cancelled sweep released point %d at position %d", pr.Index, i)
		}
	}
}

// A context that is already dead runs nothing: no trials, no points, no
// End — just the context's error.
func TestSweepAlreadyCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var trials atomic.Int64
	rs := &recordSink{}
	err := Sweep(smokeSpec(), SweepOptions{Context: ctx, TrialStart: func(_, _ int) {
		trials.Add(1)
	}}, rs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := trials.Load(); n != 0 {
		t.Errorf("dead-on-arrival context still ran %d trials", n)
	}
	if len(rs.points) != 0 || rs.ended {
		t.Errorf("dead-on-arrival context streamed %d points (ended=%v)", len(rs.points), rs.ended)
	}
}

// Carrying a context that never fires is invisible in the output: the
// streamed CSV is byte-identical to a sweep without one.
func TestSweepUncancelledContextByteIdentical(t *testing.T) {
	sp := smokeSpec()
	want := runCSV(t, sp, 0)
	var pow, fail bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := Sweep(sp, SweepOptions{Context: ctx}, NewCSVSink(&pow, &fail)); err != nil {
		t.Fatal(err)
	}
	if pow.String() != want {
		t.Error("an uncancelled context changed the streamed CSV")
	}
}

// A panic on a sweep worker — here injected through the TrialStart fault
// hook — fails the sweep with a typed PanicError instead of crashing the
// process.
func TestSweepWorkerPanicBecomesError(t *testing.T) {
	var armed atomic.Bool
	armed.Store(true)
	err := Sweep(smokeSpec(), SweepOptions{Workers: 4, TrialStart: func(_, _ int) {
		if armed.CompareAndSwap(true, false) {
			panic("injected fault")
		}
	}}, &recordSink{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != any("injected fault") {
		t.Errorf("panic value %v, want the injected fault", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured at recovery")
	}
}
