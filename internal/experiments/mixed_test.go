package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
)

// A panel over a mixed policy list — single-path PR, equal-split 2MP and
// the Frank–Wolfe MAXMP — must agree exactly with solving each trial
// instance directly through the core facade: same per-trial seeds, same
// normalization against the best feasible power in the list.
func TestMixedPolicyPanelAgreesWithCore(t *testing.T) {
	policies := []string{"PR", "2MP", "MAXMP"}
	w := Workload{N: 8, WMin: 100, WMax: 1200}
	p := Panel{ID: "mixed", XLabel: "x", Seed: 21, Trials: 4,
		Policies: policies, Points: []Point{{X: 1, W: w}}}
	res, err := p.RunE()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(policies) {
		t.Fatalf("series count %d, want %d", len(res.Series), len(policies))
	}

	// Recompute every trial through core.SolveWith and reduce by hand.
	wantPow := make(map[string]float64)
	wantFail := make(map[string]float64)
	for trial := 0; trial < p.Trials; trial++ {
		seed := trialSeed(p.Seed, 0, trial)
		m := p.model()
		set, err := drawSet(mesh.MustNew(8, 8), seed, w)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := core.NewInstance(8, 8, m, set)
		if err != nil {
			t.Fatal(err)
		}
		type cell struct {
			feasible bool
			pow      float64
		}
		cells := make([]cell, len(policies))
		best := -1.0
		for i, name := range policies {
			sol, err := inst.SolveWith(name, core.Options{Seed: seed})
			if err != nil {
				continue // counted as failure, like the panel does
			}
			cells[i] = cell{feasible: sol.Feasible(), pow: sol.PowerMW()}
			if cells[i].feasible && (best < 0 || cells[i].pow < best) {
				best = cells[i].pow
			}
		}
		for i, name := range policies {
			if cells[i].feasible && best > 0 {
				wantPow[name] += best / cells[i].pow
			}
			if !cells[i].feasible {
				wantFail[name]++
			}
		}
	}

	for _, name := range policies {
		s := res.SeriesByName(name)
		if s == nil {
			t.Fatalf("missing series %s", name)
		}
		// The panel's Welford mean and this plain sum/N may differ in the
		// last ulp; the underlying per-trial values are identical.
		if got, want := s.NormPowerInv[0], wantPow[name]/float64(p.Trials); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s norm power: panel %g, direct core %g", name, got, want)
		}
		if got, want := s.FailureRatio[0], wantFail[name]/float64(p.Trials); got != want {
			t.Errorf("%s failure ratio: panel %g, direct core %g", name, got, want)
		}
	}
}

// The acceptance sweep: a panel over {XY, PR, 2MP, MAXMP, SA} completes
// and yields one well-formed series per policy.
func TestFivePolicySweepCompletes(t *testing.T) {
	p := Figure7a()
	p.Points = p.Points[:2] // n = 5, 10
	p.Trials = 3
	p.Policies = []string{"XY", "PR", "2MP", "MAXMP", "SA"}
	res, err := p.RunE()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("series count %d", len(res.Series))
	}
	for _, name := range p.Policies {
		s := res.SeriesByName(name)
		if s == nil {
			t.Fatalf("missing series %s", name)
		}
		for pi := range res.X {
			if v := s.NormPowerInv[pi]; v < 0 || v > 1+1e-9 {
				t.Errorf("%s[%d]: normalized value %g outside [0,1]", name, pi, v)
			}
			if f := s.FailureRatio[pi]; f < 0 || f > 1 {
				t.Errorf("%s[%d]: failure ratio %g", name, pi, f)
			}
		}
	}
}

// Unknown policies are reported, not silently dropped.
func TestRunEUnknownPolicy(t *testing.T) {
	p := Figure7a()
	p.Policies = []string{"XY", "nope"}
	if _, err := p.RunE(); err == nil {
		t.Error("unknown policy accepted")
	}
}

// Pooling is an optimization, not a semantic change: the scratch-reusing
// engine reproduces the allocating baseline figure for figure.
func TestRunMatchesBaseline(t *testing.T) {
	p := Figure7b()
	p.Points = p.Points[:3]
	p.Trials = 10
	pooled, baseline := p.Run(), p.RunBaseline()
	for si := range pooled.Series {
		for pi := range pooled.X {
			if pooled.Series[si].NormPowerInv[pi] != baseline.Series[si].NormPowerInv[pi] {
				t.Errorf("%s[%d]: pooled norm power %g != baseline %g",
					pooled.Series[si].Name, pi,
					pooled.Series[si].NormPowerInv[pi], baseline.Series[si].NormPowerInv[pi])
			}
			if pooled.Series[si].FailureRatio[pi] != baseline.Series[si].FailureRatio[pi] {
				t.Errorf("%s[%d]: pooled failure %g != baseline %g",
					pooled.Series[si].Name, pi,
					pooled.Series[si].FailureRatio[pi], baseline.Series[si].FailureRatio[pi])
			}
		}
	}
}

// The sweep with length-targeted workloads exercises the pair-cache reuse
// path of the pooled engine.
func TestRunMatchesBaselineLengthSweep(t *testing.T) {
	p := Figure9c()
	p.Points = p.Points[:2]
	p.Trials = 6
	pooled, baseline := p.Run(), p.RunBaseline()
	for si := range pooled.Series {
		for pi := range pooled.X {
			if pooled.Series[si].NormPowerInv[pi] != baseline.Series[si].NormPowerInv[pi] ||
				pooled.Series[si].FailureRatio[pi] != baseline.Series[si].FailureRatio[pi] {
				t.Errorf("%s[%d] differs between pooled and baseline", pooled.Series[si].Name, pi)
			}
		}
	}
}
