package experiments

import (
	"strings"
	"testing"

	_ "repro/internal/core" // register every policy
)

// gapPanel is a small panel OPT closes comfortably: 4x4 mesh, few comms.
func gapPanel() Panel {
	return Panel{
		ID:     "gaptest",
		Title:  "gap test",
		XLabel: "n",
		Mesh:   "4x4",
		Points: []Point{
			{X: 3, W: Workload{N: 3, WMin: 100, WMax: 900}},
			{X: 5, W: Workload{N: 5, WMin: 100, WMax: 900}},
		},
		Policies: []string{"XY", "PR", "BEST"},
		Trials:   8,
		Seed:     7,
	}
}

// Every matched single-path heuristic gap is >= 1: OPT is optimal over
// exactly the routings the heuristics choose from. This is the invariant
// the CI smoke step asserts on the CSV output.
func TestGapsAtLeastOne(t *testing.T) {
	res, err := gapPanel().RunGaps(GapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("expected 2 points, got %d", len(res.Points))
	}
	if res.MaxStates != DefaultGapMaxStates {
		t.Fatalf("default MaxStates not applied: %d", res.MaxStates)
	}
	anyMatched := false
	for _, gp := range res.Points {
		if gp.OptSolved == 0 {
			t.Fatalf("point x=%g: OPT solved no trials", gp.X)
		}
		for si, name := range res.Policies {
			if gp.Matched[si] == 0 {
				continue
			}
			anyMatched = true
			if gp.MeanGap[si] < 1.0-1e-9 {
				t.Fatalf("point x=%g policy %s: mean gap %.12f < 1", gp.X, name, gp.MeanGap[si])
			}
			if gp.Matched[si] > gp.OptSolved {
				t.Fatalf("point x=%g policy %s: matched %d > opt solved %d", gp.X, name, gp.Matched[si], gp.OptSolved)
			}
		}
	}
	if !anyMatched {
		t.Fatal("no trial matched any heuristic against OPT")
	}
}

// BEST's gap is the tightest: it minimizes over the constructive
// heuristics, so on every matched instance its ratio is <= each of
// theirs.
func TestGapBestIsTightest(t *testing.T) {
	p := gapPanel()
	p.Policies = []string{"XY", "SG", "IG", "TB", "XYI", "PR", "BEST"}
	res, err := p.RunGaps(GapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bi := -1
	for i, n := range res.Policies {
		if n == "BEST" {
			bi = i
		}
	}
	if bi < 0 {
		t.Fatal("BEST column missing")
	}
	for _, gp := range res.Points {
		if gp.Matched[bi] == 0 {
			continue
		}
		for si, name := range res.Policies {
			if si == bi || gp.Matched[si] != gp.Matched[bi] {
				continue
			}
			if gp.MeanGap[bi] > gp.MeanGap[si]+1e-9 {
				t.Fatalf("point x=%g: BEST gap %.6f exceeds %s gap %.6f", gp.X, gp.MeanGap[bi], name, gp.MeanGap[si])
			}
		}
	}
}

// An explicit OPT in the spec's policy list is dropped from the columns,
// not doubled into them.
func TestGapDropsExplicitOPT(t *testing.T) {
	p := gapPanel()
	p.Policies = []string{"XY", "OPT", "PR"}
	res, err := p.RunGaps(GapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 2 || res.Policies[0] != "XY" || res.Policies[1] != "PR" {
		t.Fatalf("expected columns [XY PR], got %v", res.Policies)
	}
}

// Gap output is byte-identical at every worker count — the sweep engine's
// ordered merge plus OPT's own determinism contract.
func TestGapDeterministicAcrossWorkers(t *testing.T) {
	p := gapPanel()
	var outs []string
	for _, workers := range []int{1, 3} {
		var csv, md strings.Builder
		if err := p.StreamGaps(GapOptions{Workers: workers}, NewGapCSVSink(&csv), NewGapMarkdownSink(&md)); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, csv.String()+"\n----\n"+md.String())
	}
	if outs[0] != outs[1] {
		t.Fatalf("gap output differs between 1 and 3 workers:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

// A starved budget surfaces as unsolved trials, not an error or a wrong
// ratio: with MaxStates=1 OPT closes nothing.
func TestGapBudgetTruncation(t *testing.T) {
	res, err := gapPanel().RunGaps(GapOptions{MaxStates: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, gp := range res.Points {
		if gp.OptSolved != 0 {
			t.Fatalf("point x=%g: OPT solved %d trials on a 1-state budget", gp.X, gp.OptSolved)
		}
		for si, m := range gp.Matched {
			if m != 0 || gp.MeanGap[si] != 0 {
				t.Fatalf("point x=%g: matched=%d gap=%g with OPT unsolved", gp.X, m, gp.MeanGap[si])
			}
		}
	}
}
