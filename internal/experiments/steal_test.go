package experiments

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
)

// withStealHook installs a scheduler test hook for the duration of the
// test. Hooks run concurrently on every worker, so they must be
// self-synchronized.
func withStealHook(t *testing.T, hook func(worker int, c chunk)) {
	t.Helper()
	stealTestHook = hook
	t.Cleanup(func() { stealTestHook = nil })
}

// scrambleHook delays each chunk by a duration derived from its
// identity, scrambling completion order across workers without any
// randomness the race detector or a rerun could disagree about.
func scrambleHook(worker int, c chunk) {
	time.Sleep(time.Duration((c.point*31+c.lo*7+worker*13)%5) * time.Millisecond)
}

// Every chunk runs exactly once, whatever the worker count, and done
// fires once per chunk.
func TestRunStealingRunsEveryChunkOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		chunks, _ := appendChunks(nil, 0, 50, 3)
		ran := make([]atomic.Int32, 50)
		var doneCount atomic.Int32
		err := runStealing(chunks, workers, nil,
			func() struct{} { return struct{}{} },
			func(_ struct{}, c chunk) error {
				for i := c.lo; i < c.hi; i++ {
					ran[i].Add(1)
				}
				return nil
			},
			func(c chunk) { doneCount.Add(1) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
		if got, want := doneCount.Load(), int32(len(chunks)); got != want {
			t.Errorf("workers=%d: done fired %d times, want %d", workers, got, want)
		}
	}
}

// A worker stalled on its first chunk loses the rest of its deque to
// the idle worker — the stealing path, observed through the test hook.
func TestRunStealingStealsFromStalledWorker(t *testing.T) {
	const nchunks = 8
	chunks, _ := appendChunks(nil, 0, nchunks, 1)
	var mu sync.Mutex
	perWorker := make(map[int]int)
	var stallOnce sync.Once
	withStealHook(t, func(worker int, c chunk) {
		if worker == 0 {
			stallOnce.Do(func() { time.Sleep(100 * time.Millisecond) })
		}
		mu.Lock()
		perWorker[worker]++
		mu.Unlock()
	})
	err := runStealing(chunks, 2, nil,
		func() struct{} { return struct{}{} },
		func(_ struct{}, c chunk) error { return nil }, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin seeds each deque with 4 chunks; with worker 0 asleep
	// for its first, worker 1 must have drained its own and stolen from
	// worker 0's backlog.
	if perWorker[1] < 5 {
		t.Errorf("worker 1 executed %d chunks, want >= 5 (no stealing happened): %v", perWorker[1], perWorker)
	}
}

// The first error halts the fleet and is the one returned.
func TestRunStealingFirstErrorHalts(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		chunks, _ := appendChunks(nil, 0, 40, 1)
		var doneCount atomic.Int32
		err := runStealing(chunks, workers, nil,
			func() struct{} { return struct{}{} },
			func(_ struct{}, c chunk) error {
				if c.lo == 7 {
					return boom
				}
				return nil
			},
			func(c chunk) { doneCount.Add(1) })
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if n := doneCount.Load(); n >= int32(len(chunks)) {
			t.Errorf("workers=%d: all %d chunks completed despite the error", workers, n)
		}
	}
}

// An external stop aborts the fleet without an error of its own.
func TestRunStealingExternalStop(t *testing.T) {
	chunks, _ := appendChunks(nil, 0, 1000, 1)
	var stopped atomic.Bool
	var ran atomic.Int32
	err := runStealing(chunks, 4, stopped.Load,
		func() struct{} { return struct{}{} },
		func(_ struct{}, c chunk) error {
			if ran.Add(1) == 10 {
				stopped.Store(true)
			}
			return nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Error("stop did not abort the fleet")
	}
}

// stealSpec is a multi-point sweep with deliberately unequal point
// costs: big-n XYI points next to tiny ones, so chunks of slow points
// overlap chunks of fast ones under the scheduler.
func stealSpec() scenario.Spec {
	return scenario.Spec{
		ID: "steal", Title: "steal sweep",
		Params: scenario.Params{WMin: 100, WMax: 1200},
		Axis:   scenario.AxisN, Points: []float64{40, 5, 25, 10, 35},
		Trials: 6, Seed: 17,
		Policies: []string{"XY", "XYI", "BEST"},
	}
}

// sweepOutput streams one spec's CSV + JSONL under the given options.
func sweepOutput(t *testing.T, sp scenario.Spec, opt SweepOptions, extra ...Sink) (pow, fail, jsonl string) {
	t.Helper()
	var pb, fb, jb bytes.Buffer
	sinks := append([]Sink{NewCSVSink(&pb, &fb), NewJSONLSink(&jb)}, extra...)
	if err := Sweep(sp, opt, sinks...); err != nil {
		t.Fatal(err)
	}
	return pb.String(), fb.String(), jb.String()
}

// The tentpole determinism pin: every worker count — the serial
// reference, a couple of odd fleet sizes, heavy oversubscription — must
// stream byte-identical CSV and JSONL, with the test hook scrambling
// chunk completion order so in-order delivery is the merge stage's
// doing, not the scheduler's accident.
func TestSweepWorkersByteIdentical(t *testing.T) {
	withStealHook(t, scrambleHook)
	sp := stealSpec()
	refPow, refFail, refJSONL := sweepOutput(t, sp, SweepOptions{Workers: 1})
	for _, workers := range []int{2, 3, 8} {
		pow, fail, jsonl := sweepOutput(t, sp, SweepOptions{Workers: workers})
		if pow != refPow || fail != refFail || jsonl != refJSONL {
			t.Errorf("workers=%d streams different output than workers=1\n--- power (w=%d) ---\n%s--- power (w=1) ---\n%s",
				workers, workers, pow, refPow)
		}
	}
}

// Resume keeps its contract on the parallel scheduler: a head run at one
// worker count plus a tail resumed at another equals the uninterrupted
// serial run byte for byte.
func TestSweepResumeAcrossWorkerCounts(t *testing.T) {
	withStealHook(t, scrambleHook)
	sp := stealSpec()
	fullPow, _, _ := sweepOutput(t, sp, SweepOptions{Workers: 1})
	for checkpoint := 1; checkpoint < len(sp.Points); checkpoint++ {
		headPow := runCSVStopAfterWorkers(t, sp, checkpoint, 4)
		var tb, fb bytes.Buffer
		if err := Sweep(sp, SweepOptions{Start: checkpoint, Workers: 3}, NewCSVSink(&tb, &fb)); err != nil {
			t.Fatal(err)
		}
		if headPow+tb.String() != fullPow {
			t.Errorf("resume at %d (head w=4, tail w=3) diverges from serial run", checkpoint)
		}
	}
}

// runCSVStopAfterWorkers is runCSVStopAfter on an explicit worker count.
func runCSVStopAfterWorkers(t *testing.T, sp scenario.Spec, n, workers int) string {
	t.Helper()
	var pow, fail bytes.Buffer
	stop := &stopAfter{n: n, errv: errStop}
	err := Sweep(sp, SweepOptions{Workers: workers}, NewCSVSink(&pow, &fail), stop)
	if err != errStop {
		t.Fatalf("sweep did not stop: %v", err)
	}
	return pow.String()
}

// slowSink stalls in Point — the merge stage must buffer completed
// points while the sink lags and still deliver them in index order.
// Run under -race (the CI race job), this hammers the worker/merger
// handoff: workers keep finishing points while Point sleeps.
type slowSink struct {
	delay time.Duration
	seen  []int
}

func (s *slowSink) Begin(SweepMeta) error { return nil }
func (s *slowSink) Point(pr PointResult) error {
	time.Sleep(s.delay)
	s.seen = append(s.seen, pr.Index)
	return nil
}
func (s *slowSink) End() error { return nil }

func TestSweepMergeSlowSinkStaysInOrder(t *testing.T) {
	withStealHook(t, scrambleHook)
	sp := stealSpec()
	slow := &slowSink{delay: 3 * time.Millisecond}
	pow, _, _ := sweepOutput(t, sp, SweepOptions{Workers: 8}, slow)
	refPow, _, _ := sweepOutput(t, sp, SweepOptions{Workers: 1})
	if pow != refPow {
		t.Error("slow-sink run streams different CSV than the serial reference")
	}
	for i, idx := range slow.seen {
		if idx != i {
			t.Fatalf("slow sink saw point %d at position %d: %v", idx, i, slow.seen)
		}
	}
	if len(slow.seen) != len(sp.Points) {
		t.Fatalf("slow sink saw %d points, want %d", len(slow.seen), len(sp.Points))
	}
}

// A sink error mid-stream aborts the parallel sweep and surfaces as the
// sweep's error, exactly like the serial path.
func TestSweepSinkErrorAbortsParallel(t *testing.T) {
	withStealHook(t, scrambleHook)
	sp := stealSpec()
	stop := &stopAfter{n: 2, errv: errStop}
	var pb, fb bytes.Buffer
	err := Sweep(sp, SweepOptions{Workers: 8}, NewCSVSink(&pb, &fb), stop)
	if err != errStop {
		t.Fatalf("err = %v, want errStop", err)
	}
}

// RunBaselineE surfaces setup errors as errors; RunBaseline keeps its
// panicking contract for the benchmarks.
func TestRunBaselineESurfacesErrors(t *testing.T) {
	p := Panel{ID: "bad", Trials: 1,
		Policies: []string{"nope"},
		Points:   []Point{{X: 1, W: Workload{N: 4, WMin: 100, WMax: 200}}}}
	if _, err := p.RunBaselineE(); err == nil {
		t.Error("unknown policy not surfaced")
	}
	p.Policies = []string{"XY"}
	p.Source = "tornado"
	if _, err := p.RunBaselineE(); err == nil {
		t.Error("unsupported source not surfaced")
	}
	defer func() {
		if recover() == nil {
			t.Error("RunBaseline did not panic on the error")
		}
	}()
	p.RunBaseline()
}

// The firstError helper keeps the first report and only the first.
func TestFirstError(t *testing.T) {
	var f firstError
	if f.Failed() || f.Err() != nil {
		t.Fatal("zero value reports a failure")
	}
	f.Report(nil)
	if f.Failed() {
		t.Fatal("nil report recorded")
	}
	e1, e2 := errors.New("one"), errors.New("two")
	f.Report(e1)
	f.Report(e2)
	if !f.Failed() || f.Err() != e1 {
		t.Fatalf("Err() = %v, want the first report", f.Err())
	}
}

// appendChunks covers the range exactly, ragged tail included.
func TestAppendChunks(t *testing.T) {
	for _, tc := range []struct{ n, size, want int }{
		{10, 3, 4}, {10, 5, 2}, {1, 4, 1}, {0, 4, 0}, {7, 7, 1},
	} {
		chunks, added := appendChunks(nil, 2, tc.n, tc.size)
		if added != tc.want || len(chunks) != tc.want {
			t.Errorf("appendChunks(n=%d, size=%d) = %d chunks, want %d", tc.n, tc.size, added, tc.want)
		}
		covered := 0
		prev := 0
		for _, c := range chunks {
			if c.point != 2 {
				t.Errorf("chunk carries point %d, want 2", c.point)
			}
			if c.lo != prev {
				t.Errorf("chunk starts at %d, want %d", c.lo, prev)
			}
			covered += c.hi - c.lo
			prev = c.hi
		}
		if covered != tc.n {
			t.Errorf("chunks cover %d trials, want %d", covered, tc.n)
		}
	}
	if c := chunkTrials(400, 4); c != 25 {
		t.Errorf("chunkTrials(400, 4) = %d, want 25", c)
	}
	if c := chunkTrials(3, 8); c != 1 {
		t.Errorf("chunkTrials(3, 8) = %d, want 1", c)
	}
}

// A summary over the scheduler matches itself across repeated runs (the
// per-task seeds are fixed), regardless of fleet interleaving.
func TestSummarySchedulerDeterministic(t *testing.T) {
	withStealHook(t, scrambleHook)
	a, err := RunSummaryWith(1, 3, []string{"XY", "PR"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSummaryWith(1, 3, []string{"XY", "PR"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Names {
		if a.Success[name] != b.Success[name] {
			t.Errorf("%s success differs across runs: %g vs %g", name, a.Success[name], b.Success[name])
		}
		if a.InvPowerGainVsXY[name] != b.InvPowerGainVsXY[name] {
			t.Errorf("%s gain differs across runs: %g vs %g", name, a.InvPowerGainVsXY[name], b.InvPowerGainVsXY[name])
		}
	}
}

// Worker counts far beyond the chunk count clamp cleanly.
func TestSweepMoreWorkersThanChunks(t *testing.T) {
	sp := smokeSpec()
	sp.Trials = 1
	var pb, fb bytes.Buffer
	if err := Sweep(sp, SweepOptions{Workers: 64}, NewCSVSink(&pb, &fb)); err != nil {
		t.Fatal(err)
	}
	var rb, rfb bytes.Buffer
	if err := Sweep(sp, SweepOptions{Workers: 1}, NewCSVSink(&rb, &rfb)); err != nil {
		t.Fatal(err)
	}
	if pb.String() != rb.String() {
		t.Error("oversubscribed sweep differs from serial")
	}
}
