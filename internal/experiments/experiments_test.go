package experiments

import (
	"math"
	"testing"
)

func TestFigure2Powers(t *testing.T) {
	pxy, p1mp, p2mp, err := Figure2Powers()
	if err != nil {
		t.Fatal(err)
	}
	if pxy != 128 || p1mp != 56 || p2mp != 32 {
		t.Fatalf("Figure 2 powers = (%g, %g, %g), want (128, 56, 32)", pxy, p1mp, p2mp)
	}
}

func TestPanelRegistry(t *testing.T) {
	ps := Panels()
	for _, id := range []string{"fig7a", "fig7b", "fig7c", "fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c"} {
		p, ok := ps[id]
		if !ok {
			t.Fatalf("panel %s missing", id)
		}
		if len(p.Points) == 0 {
			t.Errorf("panel %s has no points", id)
		}
	}
	if _, err := PanelByID("fig7a"); err != nil {
		t.Fatal(err)
	}
	if _, err := PanelByID("nope"); err == nil {
		t.Error("unknown panel accepted")
	}
}

// A small smoke run of a shrunken Figure 7(a): sanity-check invariants
// rather than exact values — normalized inverse power is within [0,1],
// BEST's value is 1 wherever it succeeds, failure ratios are monotone
// features of the series (XY fails at least as often as BEST).
func TestRunPanelInvariants(t *testing.T) {
	p := Figure7a()
	p.Points = p.Points[:4] // n = 5..30
	p.Trials = 30
	res := p.Run()
	if len(res.Series) != len(HeuristicNames) {
		t.Fatalf("series count %d", len(res.Series))
	}
	best := res.SeriesByName("BEST")
	xy := res.SeriesByName("XY")
	if best == nil || xy == nil {
		t.Fatal("missing series")
	}
	for pi := range res.X {
		for _, s := range res.Series {
			v := s.NormPowerInv[pi]
			if v < 0 || v > 1+1e-9 {
				t.Errorf("%s[%d]: normalized value %g outside [0,1]", s.Name, pi, v)
			}
			f := s.FailureRatio[pi]
			if f < 0 || f > 1 {
				t.Errorf("%s[%d]: failure ratio %g", s.Name, pi, f)
			}
			if s.FailureRatio[pi] < best.FailureRatio[pi]-1e-9 {
				t.Errorf("%s fails less often than BEST at point %d", s.Name, pi)
			}
		}
		if math.Abs(best.NormPowerInv[pi]-(1-best.FailureRatio[pi])) > 1e-9 {
			t.Errorf("BEST norm value %g != success ratio %g",
				best.NormPowerInv[pi], 1-best.FailureRatio[pi])
		}
		if xy.FailureRatio[pi] < best.FailureRatio[pi] {
			t.Errorf("XY fails less than BEST at %d", pi)
		}
	}
}

// Determinism: same panel, same seeds, same results.
func TestRunPanelDeterministic(t *testing.T) {
	p := Figure7c()
	p.Points = p.Points[:3]
	p.Trials = 12
	a, b := p.Run(), p.Run()
	for si := range a.Series {
		for pi := range a.X {
			if a.Series[si].NormPowerInv[pi] != b.Series[si].NormPowerInv[pi] {
				t.Fatalf("series %s point %d differs across runs", a.Series[si].Name, pi)
			}
		}
	}
}

// The paper's headline: on congested workloads XY fails much more often
// than the Manhattan heuristics. Shrunk Figure 7(a) at n=60–80 should
// already show a large gap.
func TestXYFailsMoreThanManhattan(t *testing.T) {
	p := Figure7a()
	p.Points = []Point{{X: 70, W: Workload{N: 70, WMin: 100, WMax: 1500}}}
	p.Trials = 40
	res := p.Run()
	xy := res.SeriesByName("XY").FailureRatio[0]
	pr := res.SeriesByName("PR").FailureRatio[0]
	xyi := res.SeriesByName("XYI").FailureRatio[0]
	if xy <= pr || xy <= xyi {
		t.Errorf("failure ratios: XY %.2f, XYI %.2f, PR %.2f — XY should fail most", xy, xyi, pr)
	}
}

func TestRunTheorem1(t *testing.T) {
	rows, err := RunTheorem1([]int{1, 2, 4, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio <= rows[i-1].Ratio {
			t.Errorf("Theorem 1 ratio not increasing: %+v", rows)
		}
	}
	// The Θ(p) law: ratio/p stays within a narrow band at larger sizes.
	if r := rows[3].PerRow / rows[2].PerRow; r < 0.7 || r > 1.4 {
		t.Errorf("ratio/p drifting: %v vs %v", rows[3], rows[2])
	}
}

func TestRunLemma2(t *testing.T) {
	rows, err := RunLemma2([]int{2, 4, 8, 16}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio <= rows[i-1].Ratio {
			t.Errorf("Lemma 2 ratio not increasing")
		}
	}
	// Normalized column converges: Θ(p'^{α−1}).
	if r := rows[3].Normalized / rows[2].Normalized; r < 0.6 || r > 1.6 {
		t.Errorf("normalized ratio drifting: %+v", rows)
	}
}

func TestRunSummarySmall(t *testing.T) {
	s := RunSummary(1, 4)
	if s.Instances == 0 {
		t.Fatal("no instances")
	}
	for _, name := range []string{"XY", "PR", "XYI", "BEST"} {
		if s.Success[name] < 0 || s.Success[name] > 1 {
			t.Errorf("%s success %g", name, s.Success[name])
		}
	}
	if s.Success["BEST"] < s.Success["XY"] {
		t.Error("BEST succeeds less than XY")
	}
	if s.InvPowerGainVsXY["BEST"] < s.InvPowerGainVsXY["XY"] {
		t.Error("BEST gain below XY's own")
	}
	if s.StaticFraction <= 0 || s.StaticFraction >= 1 {
		t.Errorf("static fraction %g out of (0,1)", s.StaticFraction)
	}
	// Rendering does not panic and includes every heuristic.
	tab := s.Table()
	if len(tab.Rows) != len(HeuristicNames)+1 {
		t.Errorf("summary table rows = %d", len(tab.Rows))
	}
}

func TestRunNoCValidation(t *testing.T) {
	v, err := RunNoCValidation(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if v.WorstRateError > 0.15 {
		t.Errorf("worst delivery error %.1f%%", v.WorstRateError*100)
	}
	if math.Abs(v.SimPowerMW-v.AnalyticPowerMW) > 1e-6 {
		t.Errorf("sim power %g != analytic %g", v.SimPowerMW, v.AnalyticPowerMW)
	}
}

func TestResultTablesRender(t *testing.T) {
	p := Figure9c()
	p.Points = p.Points[:2]
	p.Trials = 5
	res := p.Run()
	np, fr := res.Tables()
	if len(np.Rows) != 2 || len(fr.Rows) != 2 {
		t.Fatalf("table rows: %d, %d", len(np.Rows), len(fr.Rows))
	}
	if np.String() == "" || fr.String() == "" {
		t.Error("empty render")
	}
}
