package experiments

import (
	"runtime/debug"
	"sync"
)

// chunk is the work-stealing scheduler's unit of work: the contiguous
// trial range [lo, hi) of one sweep point. Sweeps schedule the whole
// (point, trial) space as one flat chunk list, so a slow point's trials
// spread over every idle worker instead of serializing behind a per-point
// barrier; flat task lists (the §6.4 summary) schedule as a single
// point's range.
type chunk struct {
	point  int
	lo, hi int
}

// appendChunks appends the chunks of one point's n trials, size trials
// each (the last one ragged), and returns the extended list plus the
// number of chunks appended.
func appendChunks(dst []chunk, point, n, size int) ([]chunk, int) {
	added := 0
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		dst = append(dst, chunk{point: point, lo: lo, hi: hi})
		added++
	}
	return dst, added
}

// chunkTrials picks the scheduling granularity for n trials on w
// workers: small enough that one point splits across the fleet (~4
// chunks per worker per point), large enough that deque traffic stays
// noise next to a solve.
func chunkTrials(n, w int) int {
	if w < 1 {
		w = 1
	}
	c := n / (w * 4)
	if c < 1 {
		c = 1
	}
	return c
}

// deque is one worker's chunk queue. The owner pops from the front — so
// early points drain first and the merge stage releases them early —
// and thieves steal from the back. Chunks are coarse (several full
// solves each), so a mutex per deque costs nothing measurable and stays
// trivially race-free; a lock-free Chase-Lev deque would buy latency the
// workload cannot observe.
type deque struct {
	mu     sync.Mutex
	chunks []chunk
	head   int
}

func (d *deque) size() int {
	d.mu.Lock()
	n := len(d.chunks) - d.head
	d.mu.Unlock()
	return n
}

func (d *deque) popFront() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.chunks) {
		return chunk{}, false
	}
	c := d.chunks[d.head]
	d.head++
	return c, true
}

func (d *deque) popBack() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.chunks) {
		return chunk{}, false
	}
	c := d.chunks[len(d.chunks)-1]
	d.chunks = d.chunks[:len(d.chunks)-1]
	return c, true
}

// stealTestHook, when non-nil, runs before every chunk execution with
// the executing worker's index. Tests use it to randomize chunk
// completion order and to observe stealing; it must never be set outside
// tests.
var stealTestHook func(worker int, c chunk)

// runStealing executes every chunk exactly once on workers persistent
// goroutines. Each worker owns one scratch built once and kept for its
// whole lifetime — workspaces, trackers and draw buffers survive across
// points — and pulls chunks from its own deque, stealing from the
// longest other deque when its own drains. The first error returned by
// run halts the fleet and is returned; stop, when non-nil, is polled
// between chunks so an external consumer (the sweep's merge stage) can
// abort. done, when non-nil, runs after every successfully executed
// chunk, on the worker that ran it.
func runStealing[S any](chunks []chunk, workers int, stop func() bool, newScratch func() S, run func(s S, c chunk) error, done func(c chunk)) error {
	if len(chunks) == 0 {
		return nil
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var ferr firstError
	halted := func() bool {
		return ferr.Failed() || (stop != nil && stop())
	}
	exec := func(worker int, s S, c chunk) (ok bool) {
		// Failure containment: a panic on a worker (a solver bug, a
		// fault-injection hook) becomes the sweep's first error instead of
		// crashing the process — the fleet halts and the caller sees a
		// typed PanicError.
		defer func() {
			if r := recover(); r != nil {
				ferr.Report(&PanicError{Value: r, Stack: debug.Stack()})
				ok = false
			}
		}()
		if stealTestHook != nil {
			stealTestHook(worker, c)
		}
		if err := run(s, c); err != nil {
			ferr.Report(err)
			return false
		}
		if done != nil {
			done(c)
		}
		return true
	}
	if workers <= 1 {
		s := newScratch()
		for _, c := range chunks {
			if halted() || !exec(0, s, c) {
				break
			}
		}
		return ferr.Err()
	}
	deques := make([]deque, workers)
	for i, c := range chunks {
		d := &deques[i%workers]
		d.chunks = append(d.chunks, c)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			s := newScratch()
			for !halted() {
				c, ok := deques[w].popFront()
				if !ok {
					c, ok = steal(deques, w)
				}
				if !ok {
					return // every deque is empty: the sweep is drained
				}
				if !exec(w, s, c) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return ferr.Err()
}

// steal takes the last-queued chunk of the fullest victim deque,
// rescanning when a victim drains between the size probe and the pop.
func steal(deques []deque, self int) (chunk, bool) {
	for {
		victim, best := -1, 0
		for i := range deques {
			if i == self {
				continue
			}
			if n := deques[i].size(); n > best {
				victim, best = i, n
			}
		}
		if victim < 0 {
			return chunk{}, false
		}
		if c, ok := deques[victim].popBack(); ok {
			return c, true
		}
	}
}
