package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// topologySpecs returns tiny sweeps on each non-mesh family, sized so
// the whole matrix stays fast under -race.
func topologySpecs() []scenario.Spec {
	return []scenario.Spec{
		{
			ID: "t4", Title: "torus sweep",
			Topology: "torus:4x4", Source: "uniform",
			Params: scenario.Params{WMin: 100, WMax: 900},
			Axis:   scenario.AxisN, Points: []float64{10, 4, 7},
			Trials: 3, Seed: 5,
			Policies: []string{"TABLE"},
		},
		{
			ID: "c16", Title: "circulant sweep",
			Topology: "circulant:16:1,4", Source: "uniform",
			Params: scenario.Params{WMin: 100, WMax: 700},
			Axis:   scenario.AxisN, Points: []float64{8, 3, 5},
			Trials: 3, Seed: 9,
			Policies: []string{"TABLE"},
		},
	}
}

// Non-mesh sweeps inherit the work-stealing scheduler's determinism
// contract: every worker count streams byte-identical CSV and JSONL.
func TestTopologySweepWorkersByteIdentical(t *testing.T) {
	for _, sp := range topologySpecs() {
		refPow, refFail, refJSONL := sweepOutput(t, sp, SweepOptions{Workers: 1})
		if !strings.Contains(refPow, "\n") || len(refPow) == 0 {
			t.Fatalf("%s: empty power CSV from serial sweep", sp.ID)
		}
		for _, workers := range []int{2, 4} {
			pow, fail, jsonl := sweepOutput(t, sp, SweepOptions{Workers: workers})
			if pow != refPow || fail != refFail || jsonl != refJSONL {
				t.Errorf("%s: workers=%d streams different output than workers=1", sp.ID, workers)
			}
		}
	}
}

// Resume on a non-mesh sweep: a head run truncated after k points plus a
// tail resumed with Start=k equals the uninterrupted run byte for byte —
// the invariant the CI topology smoke step replays through
// cmd/experiments.
func TestTopologySweepResumeBitIdentical(t *testing.T) {
	for _, sp := range topologySpecs() {
		fullPow, _, _ := sweepOutput(t, sp, SweepOptions{Workers: 1})
		for checkpoint := 1; checkpoint < len(sp.Points); checkpoint++ {
			headPow := runCSVStopAfterWorkers(t, sp, checkpoint, 2)
			var tb, fb bytes.Buffer
			if err := Sweep(sp, SweepOptions{Start: checkpoint, Workers: 2}, NewCSVSink(&tb, &fb)); err != nil {
				t.Fatal(err)
			}
			if headPow+tb.String() != fullPow {
				t.Errorf("%s: resume at point %d diverges from the uninterrupted sweep", sp.ID, checkpoint)
			}
		}
	}
}

// A topology sweep with a mesh-only policy must fail fast, before any
// trial runs, and the error must name the topology-capable policies.
func TestTopologySweepRejectsMeshOnlyPolicies(t *testing.T) {
	sp := topologySpecs()[0]
	sp.Policies = []string{"XY", "PR"}
	err := Sweep(sp, SweepOptions{}, NewCSVSink(&bytes.Buffer{}, &bytes.Buffer{}))
	if err == nil {
		t.Fatal("sweep accepted mesh-only policies on a torus")
	}
	if !strings.Contains(err.Error(), "TABLE") {
		t.Errorf("error does not name the topology-capable policies: %v", err)
	}
}
