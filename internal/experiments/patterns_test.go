package experiments

import (
	"strings"
	"testing"
)

func TestRunPatternsBasics(t *testing.T) {
	rows, err := RunPatterns(600)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 patterns", len(rows))
	}
	for _, r := range rows {
		if r.Flows == 0 {
			t.Errorf("%v: no flows", r.Pattern)
		}
		for _, name := range HeuristicNames {
			if _, ok := r.Cells[name]; !ok {
				t.Errorf("%v: missing cell %s", r.Pattern, name)
			}
		}
		best := r.Cells["BEST"]
		for name, c := range r.Cells {
			if name == "BEST" || !c.Feasible {
				continue
			}
			if !best.Feasible || best.PowerMW > c.PowerMW+1e-9 {
				t.Errorf("%v: BEST (%v %.1f) worse than %s (%.1f)",
					r.Pattern, best.Feasible, best.PowerMW, name, c.PowerMW)
			}
		}
	}
}

// At a light per-flow rate, the neighbor pattern must be feasible for
// everyone; at a punishing rate the structured patterns separate XY from
// the Manhattan heuristics.
func TestPatternsSeparateHeuristics(t *testing.T) {
	light, err := RunPatterns(300)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range light {
		if r.Pattern.String() == "neighbor" {
			for name, c := range r.Cells {
				if !c.Feasible {
					t.Errorf("neighbor at 300 Mb/s: %s failed", name)
				}
			}
		}
	}
	heavy, err := RunPatterns(1600)
	if err != nil {
		t.Fatal(err)
	}
	xyFails, bestFails := 0, 0
	for _, r := range heavy {
		if !r.Cells["XY"].Feasible {
			xyFails++
		}
		if !r.Cells["BEST"].Feasible {
			bestFails++
		}
	}
	if xyFails <= bestFails {
		t.Errorf("heavy patterns: XY fails %d, BEST fails %d — expected XY to fail more", xyFails, bestFails)
	}
}

func TestPatternTableRenders(t *testing.T) {
	rows, err := RunPatterns(900)
	if err != nil {
		t.Fatal(err)
	}
	out := PatternTable(rows).String()
	for _, want := range []string{"bit-complement", "tornado", "neighbor"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
