package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/scenario"
	"repro/internal/tables"
)

// DefaultGapMaxStates is the per-instance search-node budget of a gap
// sweep. Gap reports run OPT on every trial, so the budget is deliberately
// tighter than exact.DefaultMaxStates: an instance the branch-and-bound
// cannot close within it counts as "OPT unsolved" for that trial instead
// of stalling the sweep.
const DefaultGapMaxStates = 2_000_000

// GapOptions tunes an optimality-gap sweep.
type GapOptions struct {
	// Workers is the number of persistent sweep workers (0 = GOMAXPROCS).
	// Trial-level parallelism already saturates the cores, so each OPT
	// solve runs serially (ExactWorkers=1) inside its worker; gap output
	// is byte-identical at every worker count, like every sweep.
	Workers int
	// MaxStates is the per-instance OPT node budget
	// (0 = DefaultGapMaxStates).
	MaxStates int
}

// GapMeta describes a gap sweep to its sinks. Policies lists the heuristic
// columns only — OPT is the denominator of every column, not a column.
type GapMeta struct {
	ID        string
	Title     string
	XLabel    string
	Policies  []string
	X         []float64
	Trials    int
	MaxStates int
}

// GapPoint is one fully evaluated gap point. MeanGap[i] is the mean of
// P_heuristic/P_opt over the point's matched trials — those where both
// the heuristic and OPT produced a feasible routing — so 1.000 means the
// heuristic found the optimum every time and 1.050 means it paid 5% more
// power on average. Matched[i] counts those trials (MeanGap[i] is 0 when
// none matched); OptSolved counts the trials OPT closed within budget.
// For single-path heuristics every gap is ≥ 1 by construction; multi-path
// policies may dip below 1, since OPT optimizes over single-path routings
// only.
type GapPoint struct {
	Index     int
	X         float64
	MeanGap   []float64
	Matched   []int
	OptSolved int
	Trials    int
}

// GapSink consumes a gap sweep incrementally, one evaluated point at a
// time in point order — the same streaming contract as Sink.
type GapSink interface {
	Begin(meta GapMeta) error
	Point(gp GapPoint) error
	End() error
}

// gapPrec is the cell precision of gap tables: gaps cluster near 1, so
// they carry one digit more than the figure tables.
const gapPrec = 4

// OptGap expands a declarative spec and streams its optimality-gap report
// point by point into the sinks: every heuristic on every seeded trial of
// each point, plus the exact branch-and-bound OPT on the same instance,
// reduced to per-heuristic mean power ratios against the optimum. The
// spec's policy list names the heuristic columns (OPT, if present, is
// dropped — it is always the denominator); small meshes and communication
// counts keep OPT tractable.
func OptGap(sp scenario.Spec, opt GapOptions, sinks ...GapSink) error {
	p, err := PanelOf(sp)
	if err != nil {
		return err
	}
	return p.StreamGaps(opt, sinks...)
}

// StreamGaps runs the panel's heuristics and OPT through the pooled sweep
// engine and emits each point's gap reduction to the sinks in point
// order. Per-trial seeds are the sweep's (seed, point, trial) derivation,
// so the instances under the gap report are exactly the instances of the
// corresponding power sweep.
func (p Panel) StreamGaps(opt GapOptions, sinks ...GapSink) error {
	trials := p.Trials
	if trials == 0 {
		trials = DefaultTrials
	}
	heur := make([]string, 0, len(p.policyNames()))
	for _, n := range p.policyNames() {
		if strings.EqualFold(n, "OPT") {
			continue
		}
		heur = append(heur, n)
	}
	if len(heur) == 0 {
		return fmt.Errorf("experiments: gap sweep %s has no heuristic policies", p.ID)
	}
	q := p
	q.Policies = append(append([]string{}, heur...), "OPT")
	e, err := newEngine(q, trials)
	if err != nil {
		return err
	}
	ms := opt.MaxStates
	if ms == 0 {
		ms = DefaultGapMaxStates
	}
	e.opts.ExactWorkers = 1
	e.opts.ExactMaxStates = ms

	npol := len(e.solvers)
	meta := GapMeta{
		ID:        p.ID,
		Title:     p.Title,
		XLabel:    p.XLabel,
		Policies:  e.names[:npol-1],
		X:         xValues(p.Points),
		Trials:    trials,
		MaxStates: ms,
	}
	for _, sk := range sinks {
		if err := sk.Begin(meta); err != nil {
			return err
		}
	}
	err = e.sweep(p.Seed, p.Points, 0, opt.Workers, func(pi int, rows []instanceOutcome) error {
		gp := reduceGapPoint(pi, p.Points[pi].X, npol, trials, func(trial int) []instanceOutcome {
			return rows[trial*npol : (trial+1)*npol]
		})
		for _, sk := range sinks {
			if err := sk.Point(gp); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, sk := range sinks {
		if err := sk.End(); err != nil {
			return err
		}
	}
	return nil
}

// reduceGapPoint folds one point's per-trial outcome rows (heuristics
// first, OPT last) into its gap summary. A trial contributes to a
// heuristic's mean only when both that heuristic and OPT were feasible on
// the instance — OPT infeasibility proofs and budget truncations both
// surface as infeasible outcomes and are excluded rather than skewing the
// ratio.
func reduceGapPoint(pi int, x float64, npol, trials int, rowAt func(trial int) []instanceOutcome) GapPoint {
	nheur := npol - 1
	gp := GapPoint{
		Index:   pi,
		X:       x,
		MeanGap: make([]float64, nheur),
		Matched: make([]int, nheur),
		Trials:  trials,
	}
	for trial := 0; trial < trials; trial++ {
		row := rowAt(trial)
		opt := row[nheur]
		if !opt.feasible || opt.pow <= 0 {
			continue
		}
		gp.OptSolved++
		for si := 0; si < nheur; si++ {
			if o := row[si]; o.feasible {
				gp.MeanGap[si] += o.pow / opt.pow
				gp.Matched[si]++
			}
		}
	}
	for si := 0; si < nheur; si++ {
		if gp.Matched[si] > 0 {
			gp.MeanGap[si] /= float64(gp.Matched[si])
		}
	}
	return gp
}

// gapCell formats one heuristic's gap cell; unmatched columns are empty
// rather than a misleading 0.
func gapCell(gp GapPoint, si int) string {
	if gp.Matched[si] == 0 {
		return ""
	}
	return fmt.Sprintf("%.*f", gapPrec, gp.MeanGap[si])
}

// GapCSVSink streams the gap report as CSV: one row per point, one column
// per heuristic (mean P/P_opt, empty when no trial matched), and a final
// opt_solved column counting the trials OPT closed.
type GapCSVSink struct {
	W io.Writer
}

// NewGapCSVSink returns a CSV gap sink over w.
func NewGapCSVSink(w io.Writer) *GapCSVSink { return &GapCSVSink{W: w} }

// Begin implements GapSink.
func (s *GapCSVSink) Begin(meta GapMeta) error {
	header := append([]string{meta.XLabel}, meta.Policies...)
	header = append(header, "opt_solved")
	_, err := io.WriteString(s.W, tables.CSVLine(header))
	return err
}

// Point implements GapSink.
func (s *GapCSVSink) Point(gp GapPoint) error {
	cells := make([]string, 0, len(gp.MeanGap)+2)
	cells = append(cells, xLabel(gp.X))
	for si := range gp.MeanGap {
		cells = append(cells, gapCell(gp, si))
	}
	cells = append(cells, fmt.Sprintf("%d", gp.OptSolved))
	_, err := io.WriteString(s.W, tables.CSVLine(cells))
	return err
}

// End implements GapSink.
func (s *GapCSVSink) End() error { return nil }

// GapMarkdownSink streams the gap report as one GitHub-flavored markdown
// table, one row per point as it completes: each heuristic column carries
// "gap (matched/trials)", the last column the OPT solve count.
type GapMarkdownSink struct {
	W io.Writer
}

// NewGapMarkdownSink returns a streaming markdown gap sink over w.
func NewGapMarkdownSink(w io.Writer) *GapMarkdownSink { return &GapMarkdownSink{W: w} }

// Begin implements GapSink.
func (s *GapMarkdownSink) Begin(meta GapMeta) error {
	if _, err := fmt.Fprintf(s.W, "**%s** — mean heuristic power / OPT power (matched trials)\n\n", meta.Title); err != nil {
		return err
	}
	header := append([]string{meta.XLabel}, meta.Policies...)
	header = append(header, "OPT solved")
	if _, err := io.WriteString(s.W, tables.MarkdownRow(header)); err != nil {
		return err
	}
	_, err := io.WriteString(s.W, tables.MarkdownSeparator(len(header)))
	return err
}

// Point implements GapSink.
func (s *GapMarkdownSink) Point(gp GapPoint) error {
	cells := make([]string, 0, len(gp.MeanGap)+2)
	cells = append(cells, xLabel(gp.X))
	for si := range gp.MeanGap {
		if gp.Matched[si] == 0 {
			cells = append(cells, "—")
			continue
		}
		cells = append(cells, fmt.Sprintf("%.*f (%d/%d)", gapPrec, gp.MeanGap[si], gp.Matched[si], gp.Trials))
	}
	cells = append(cells, fmt.Sprintf("%d/%d", gp.OptSolved, gp.Trials))
	_, err := io.WriteString(s.W, tables.MarkdownRow(cells))
	return err
}

// End implements GapSink.
func (s *GapMarkdownSink) End() error { return nil }

// GapTableSink accumulates the gap report into one aligned text table for
// terminal rendering after the sweep completes.
type GapTableSink struct {
	table *tables.Table
	meta  GapMeta
}

// NewGapTableSink returns an accumulating gap table sink.
func NewGapTableSink() *GapTableSink { return &GapTableSink{} }

// Begin implements GapSink.
func (s *GapTableSink) Begin(meta GapMeta) error {
	s.meta = meta
	headers := append([]string{meta.XLabel}, meta.Policies...)
	headers = append(headers, "OPT solved")
	s.table = tables.New(meta.Title+" — mean power / OPT power", headers...)
	return nil
}

// Point implements GapSink.
func (s *GapTableSink) Point(gp GapPoint) error {
	cells := make([]string, 0, len(gp.MeanGap)+2)
	cells = append(cells, xLabel(gp.X))
	for si := range gp.MeanGap {
		if c := gapCell(gp, si); c != "" {
			cells = append(cells, c)
		} else {
			cells = append(cells, "-")
		}
	}
	cells = append(cells, fmt.Sprintf("%d/%d", gp.OptSolved, gp.Trials))
	s.table.AddRow(cells...)
	return nil
}

// End implements GapSink.
func (s *GapTableSink) End() error { return nil }

// Table returns the accumulated table (nil before Begin).
func (s *GapTableSink) Table() *tables.Table { return s.table }

// GapResult is a fully collected gap sweep, for callers (tests, the
// repository's own analysis) that want the points in memory.
type GapResult struct {
	Policies  []string
	X         []float64
	Points    []GapPoint
	MaxStates int
}

// gapResultSink collects a gap stream into a GapResult.
type gapResultSink struct {
	result GapResult
}

func (s *gapResultSink) Begin(meta GapMeta) error {
	s.result.Policies = meta.Policies
	s.result.X = meta.X
	s.result.MaxStates = meta.MaxStates
	return nil
}

func (s *gapResultSink) Point(gp GapPoint) error {
	s.result.Points = append(s.result.Points, gp)
	return nil
}

func (s *gapResultSink) End() error { return nil }

// RunGaps evaluates the panel's gap report and collects it.
func (p Panel) RunGaps(opt GapOptions) (GapResult, error) {
	rs := &gapResultSink{}
	if err := p.StreamGaps(opt, rs); err != nil {
		return GapResult{}, err
	}
	return rs.result, nil
}
