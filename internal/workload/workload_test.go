package workload

import (
	"testing"

	"repro/internal/mesh"
)

func TestUniformBasics(t *testing.T) {
	m := mesh.MustNew(8, 8)
	g := New(m, 1)
	set := g.Uniform(100, 100, 1500)
	if len(set) != 100 {
		t.Fatalf("len = %d, want 100", len(set))
	}
	if err := set.Validate(m); err != nil {
		t.Fatalf("generated set invalid: %v", err)
	}
	for _, c := range set {
		if c.Rate < 100 || c.Rate > 1500 {
			t.Errorf("rate %g outside [100,1500]", c.Rate)
		}
		if c.Src == c.Dst {
			t.Errorf("degenerate pair %v", c)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	m := mesh.MustNew(8, 8)
	a := New(m, 42).Uniform(50, 100, 2500)
	b := New(m, 42).Uniform(50, 100, 2500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := New(m, 43).Uniform(50, 100, 2500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sets")
	}
}

func TestTargetLengthExact(t *testing.T) {
	m := mesh.MustNew(8, 8)
	g := New(m, 7)
	for _, ell := range []int{1, 2, 5, 10, 14} {
		set := g.TargetLength(40, 200, 800, ell)
		if len(set) != 40 {
			t.Fatalf("len = %d", len(set))
		}
		for _, c := range set {
			if c.Length() != ell {
				t.Errorf("target %d: drew length %d (%v)", ell, c.Length(), c)
			}
		}
	}
}

func TestTargetLengthPanicsWhenImpossible(t *testing.T) {
	m := mesh.MustNew(2, 2)
	g := New(m, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("impossible length did not panic")
		}
	}()
	g.TargetLength(1, 1, 2, 99)
}

func TestMaxLength(t *testing.T) {
	if got := New(mesh.MustNew(8, 8), 1).MaxLength(); got != 14 {
		t.Errorf("MaxLength = %d, want 14", got)
	}
}

func TestPipeline(t *testing.T) {
	m := mesh.MustNew(4, 4)
	set, err := Pipeline(m, nil, mesh.Coord{U: 1, V: 1}, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 9 {
		t.Fatalf("pipeline edges = %d, want 9", len(set))
	}
	if err := set.Validate(m); err != nil {
		t.Fatal(err)
	}
	// Snake stays contiguous: every hop has Manhattan length 1.
	for _, c := range set {
		if c.Length() != 1 {
			t.Errorf("pipeline hop %v has length %d", c, c.Length())
		}
	}
	// Too long to fit.
	if _, err := Pipeline(m, nil, mesh.Coord{U: 1, V: 1}, 17, 500); err == nil {
		t.Error("oversized pipeline accepted")
	}
	// Bad start.
	if _, err := Pipeline(m, nil, mesh.Coord{U: 9, V: 1}, 2, 500); err == nil {
		t.Error("off-mesh start accepted")
	}
}

func TestStencil(t *testing.T) {
	m := mesh.MustNew(8, 8)
	box := mesh.Box{UMin: 2, UMax: 4, VMin: 2, VMax: 5}
	set, err := Stencil(m, nil, box, 300)
	if err != nil {
		t.Fatal(err)
	}
	// 3×4 block: horizontal edges 3·3 ×2 dirs + vertical 2·4 ×2 = 18+16.
	if want := 2*(3*3) + 2*(2*4); len(set) != want {
		t.Fatalf("stencil edges = %d, want %d", len(set), want)
	}
	if err := set.Validate(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Stencil(m, nil, mesh.Box{UMin: 0, UMax: 2, VMin: 1, VMax: 2}, 1); err == nil {
		t.Error("out-of-mesh stencil accepted")
	}
}

func TestTranspose(t *testing.T) {
	m := mesh.MustNew(8, 8)
	box := mesh.Box{UMin: 1, UMax: 4, VMin: 1, VMax: 4}
	set, err := Transpose(m, nil, box, 200)
	if err != nil {
		t.Fatal(err)
	}
	// 16 cores, 4 on the diagonal excluded.
	if len(set) != 12 {
		t.Fatalf("transpose comms = %d, want 12", len(set))
	}
	for _, c := range set {
		if c.Src.U-1 != c.Dst.V-1 || c.Src.V != c.Dst.U {
			t.Errorf("not a transpose pair: %v", c)
		}
	}
	if _, err := Transpose(m, nil, mesh.Box{UMin: 1, UMax: 2, VMin: 1, VMax: 3}, 1); err == nil {
		t.Error("non-square transpose accepted")
	}
}

func TestHotspot(t *testing.T) {
	m := mesh.MustNew(8, 8)
	sink := mesh.Coord{U: 4, V: 4}
	sources := []mesh.Coord{{U: 1, V: 1}, {U: 8, V: 8}, {U: 4, V: 4}} // one equals sink
	set, err := Hotspot(m, nil, sources, sink, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("hotspot comms = %d, want 2 (sink self-send skipped)", len(set))
	}
	for _, c := range set {
		if c.Dst != sink {
			t.Errorf("comm %v does not target the hotspot", c)
		}
	}
}

func TestCompositionUniqueIDs(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set, err := Pipeline(m, nil, mesh.Coord{U: 1, V: 1}, 6, 100)
	if err != nil {
		t.Fatal(err)
	}
	set, err = Stencil(m, set, mesh.Box{UMin: 5, UMax: 7, VMin: 5, VMax: 7}, 100)
	if err != nil {
		t.Fatal(err)
	}
	set, err = Hotspot(m, set, []mesh.Coord{{U: 8, V: 1}, {U: 1, V: 8}}, mesh.Coord{U: 8, V: 8}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(m); err != nil {
		t.Fatalf("composed set invalid: %v", err)
	}
}
