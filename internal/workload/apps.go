package workload

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/mesh"
)

// The application-level generators below synthesize the "several parallel
// applications, each mapped onto a set of nodes" setting of the paper's
// introduction: system-level traffic is the union of per-application
// communications, anonymized into a single comm.Set.

// Pipeline adds the traffic of a streaming pipeline application mapped
// onto a snake of cores starting at start: stage k sends rate Mb/s to
// stage k+1. The snake walks east until it hits the mesh border, steps
// south, then walks west, and so on. It returns the extended set.
func Pipeline(m *mesh.Mesh, set comm.Set, start mesh.Coord, stages int, rate float64) (comm.Set, error) {
	if !m.Contains(start) {
		return nil, fmt.Errorf("workload: pipeline start %v outside %v", start, m)
	}
	cur := start
	east := true
	cores := []mesh.Coord{cur}
	for len(cores) < stages {
		var next mesh.Coord
		if east {
			next = cur.Step(mesh.East)
		} else {
			next = cur.Step(mesh.West)
		}
		if !m.Contains(next) {
			next = cur.Step(mesh.South)
			east = !east
			if !m.Contains(next) {
				return nil, fmt.Errorf("workload: pipeline of %d stages does not fit from %v", stages, start)
			}
		}
		cores = append(cores, next)
		cur = next
	}
	id := nextID(set)
	for i := 0; i+1 < len(cores); i++ {
		set = append(set, comm.Comm{ID: id, Src: cores[i], Dst: cores[i+1], Rate: rate})
		id++
	}
	return set, nil
}

// Stencil adds nearest-neighbor exchange traffic of a 2-D stencil
// application mapped onto the rectangular block box: every core sends
// rate Mb/s to each of its 4 neighbors inside the block.
func Stencil(m *mesh.Mesh, set comm.Set, box mesh.Box, rate float64) (comm.Set, error) {
	if box.UMin < 1 || box.VMin < 1 || box.UMax > m.P() || box.VMax > m.Q() {
		return nil, fmt.Errorf("workload: stencil block %+v outside %v", box, m)
	}
	id := nextID(set)
	for u := box.UMin; u <= box.UMax; u++ {
		for v := box.VMin; v <= box.VMax; v++ {
			src := mesh.Coord{U: u, V: v}
			for _, d := range []mesh.Dir{mesh.East, mesh.South, mesh.West, mesh.North} {
				dst := src.Step(d)
				if box.Contains(dst) {
					set = append(set, comm.Comm{ID: id, Src: src, Dst: dst, Rate: rate})
					id++
				}
			}
		}
	}
	return set, nil
}

// Transpose adds all-to-all corner-turn traffic on the block: every core
// (u,v) of the square block sends rate Mb/s to its transpose (v,u)
// relative to the block origin. Classic adversarial pattern for XY
// routing, since all routes turn at the diagonal.
func Transpose(m *mesh.Mesh, set comm.Set, box mesh.Box, rate float64) (comm.Set, error) {
	if box.UMax-box.UMin != box.VMax-box.VMin {
		return nil, fmt.Errorf("workload: transpose block %+v not square", box)
	}
	if box.UMin < 1 || box.VMin < 1 || box.UMax > m.P() || box.VMax > m.Q() {
		return nil, fmt.Errorf("workload: transpose block %+v outside %v", box, m)
	}
	id := nextID(set)
	for u := box.UMin; u <= box.UMax; u++ {
		for v := box.VMin; v <= box.VMax; v++ {
			src := mesh.Coord{U: u, V: v}
			dst := mesh.Coord{U: box.UMin + (v - box.VMin), V: box.VMin + (u - box.UMin)}
			if src != dst {
				set = append(set, comm.Comm{ID: id, Src: src, Dst: dst, Rate: rate})
				id++
			}
		}
	}
	return set, nil
}

// Hotspot adds traffic from every listed source to a single sink (e.g. a
// memory controller core): the single-destination regime of Theorem 1.
func Hotspot(m *mesh.Mesh, set comm.Set, sources []mesh.Coord, sink mesh.Coord, rate float64) (comm.Set, error) {
	if !m.Contains(sink) {
		return nil, fmt.Errorf("workload: hotspot sink %v outside %v", sink, m)
	}
	id := nextID(set)
	for _, src := range sources {
		if !m.Contains(src) {
			return nil, fmt.Errorf("workload: hotspot source %v outside %v", src, m)
		}
		if src == sink {
			continue
		}
		set = append(set, comm.Comm{ID: id, Src: src, Dst: sink, Rate: rate})
		id++
	}
	return set, nil
}

func nextID(set comm.Set) int {
	next := 0
	for _, c := range set {
		if c.ID >= next {
			next = c.ID + 1
		}
	}
	return next
}
