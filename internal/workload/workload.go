// Package workload generates the random communication sets of the
// Section 6 simulation study, plus synthetic application traffic patterns
// (pipelines, stencils, transposes, hotspots) used by the examples and
// wrapped into the internal/scenario source registry. All generators are
// deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/comm"
	"repro/internal/mesh"
)

// Generator draws communication sets on a fixed mesh.
type Generator struct {
	mesh *mesh.Mesh
	rng  *rand.Rand
	// pairsByLen caches, per Manhattan distance, every ordered core pair
	// at that distance; built lazily by TargetLength.
	pairsByLen map[int][][2]mesh.Coord
}

// New returns a generator over m seeded with seed.
func New(m *mesh.Mesh, seed int64) *Generator {
	return &Generator{mesh: m, rng: rand.New(rand.NewSource(seed))}
}

// Mesh returns the generator's mesh.
func (g *Generator) Mesh() *mesh.Mesh { return g.mesh }

// Reseed restarts the generator's random stream at seed. The subsequent
// draws are identical to a fresh New(m, seed) generator while keeping the
// pair cache warm — the experiment engine reseeds one generator per worker
// instead of allocating one per trial.
func (g *Generator) Reseed(seed int64) { g.rng.Seed(seed) }

// rate draws a weight uniformly from [wmin, wmax] (Mb/s), the paper's
// weight distributions (e.g. "between 100 Mb/s and 1500 Mb/s").
func (g *Generator) rate(wmin, wmax float64) float64 {
	if wmax < wmin {
		panic(fmt.Sprintf("workload: wmax %g < wmin %g", wmax, wmin))
	}
	return wmin + g.rng.Float64()*(wmax-wmin)
}

// Uniform draws n communications with independently random source and sink
// cores (re-drawn until distinct) and weights uniform in [wmin, wmax] —
// the workload of Sections 6.1 and 6.2 ("random source and sink nodes").
func (g *Generator) Uniform(n int, wmin, wmax float64) comm.Set {
	return g.UniformInto(nil, n, wmin, wmax)
}

// UniformInto is Uniform drawing into dst's storage (grown as needed),
// so per-trial loops can reuse one buffer. The draws are identical to
// Uniform's.
func (g *Generator) UniformInto(dst comm.Set, n int, wmin, wmax float64) comm.Set {
	set := dst[:0]
	if cap(set) < n {
		set = make(comm.Set, 0, n)
	}
	for i := 0; i < n; i++ {
		var src, dst mesh.Coord
		for {
			src = g.randCoord()
			dst = g.randCoord()
			if src != dst {
				break
			}
		}
		set = append(set, comm.Comm{ID: i, Src: src, Dst: dst, Rate: g.rate(wmin, wmax)})
	}
	return set
}

// TargetLength draws n communications whose Manhattan length equals the
// target (the Section 6.3 workload: "we draw only communications whose
// length is around the target average length"). Pairs are drawn uniformly
// among all ordered pairs at exactly that distance. It panics if no pair
// of the mesh has the requested distance.
func (g *Generator) TargetLength(n int, wmin, wmax float64, length int) comm.Set {
	return g.TargetLengthInto(nil, n, wmin, wmax, length)
}

// TargetLengthInto is TargetLength drawing into dst's storage (grown as
// needed), reusing the per-distance pair cache across calls.
func (g *Generator) TargetLengthInto(dst comm.Set, n int, wmin, wmax float64, length int) comm.Set {
	pairs := g.pairsAt(length)
	if len(pairs) == 0 {
		panic(fmt.Sprintf("workload: no core pair at distance %d on %v", length, g.mesh))
	}
	set := dst[:0]
	if cap(set) < n {
		set = make(comm.Set, 0, n)
	}
	for i := 0; i < n; i++ {
		p := pairs[g.rng.Intn(len(pairs))]
		set = append(set, comm.Comm{ID: i, Src: p[0], Dst: p[1], Rate: g.rate(wmin, wmax)})
	}
	return set
}

func (g *Generator) randCoord() mesh.Coord {
	return mesh.Coord{U: g.rng.Intn(g.mesh.P()) + 1, V: g.rng.Intn(g.mesh.Q()) + 1}
}

func (g *Generator) pairsAt(length int) [][2]mesh.Coord {
	if g.pairsByLen == nil {
		g.pairsByLen = make(map[int][][2]mesh.Coord)
		cores := g.mesh.Cores()
		for _, a := range cores {
			for _, b := range cores {
				if a == b {
					continue
				}
				d := mesh.Manhattan(a, b)
				g.pairsByLen[d] = append(g.pairsByLen[d], [2]mesh.Coord{a, b})
			}
		}
	}
	return g.pairsByLen[length]
}

// MaxLength returns the largest Manhattan distance on the mesh,
// (p−1)+(q−1).
func (g *Generator) MaxLength() int { return g.mesh.P() + g.mesh.Q() - 2 }
