package workload

import (
	"fmt"
	"math/bits"

	"repro/internal/comm"
	"repro/internal/mesh"
)

// The permutation-traffic generators below are the classic synthetic NoC
// benchmarks (bit-complement, bit-reverse, shuffle, tornado, neighbor):
// every core sends one communication of the given rate to the core its
// index is mapped to. Cores are indexed row-major from 0; the bit-defined
// patterns require the core count to be a power of two (e.g. the paper's
// 8×8 mesh).

// Pattern names a synthetic permutation pattern.
type Pattern int

// The supported permutation patterns.
const (
	// BitComplement sends index i to ^i (mod N): corner-to-corner
	// crossing traffic that saturates the mesh center.
	BitComplement Pattern = iota
	// BitReverse sends i to its bit-reversed index.
	BitReverse
	// Shuffle sends i to (2i mod N−1)-style left-rotated index.
	Shuffle
	// Tornado sends (u,v) to (u, v + ⌈q/2⌉−1 mod q): worst-case ring
	// pressure along rows.
	Tornado
	// Neighbor sends (u,v) to (u, v+1 mod q): light nearest-neighbor
	// traffic with a wrap-around flow per row.
	Neighbor
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case BitComplement:
		return "bit-complement"
	case BitReverse:
		return "bit-reverse"
	case Shuffle:
		return "shuffle"
	case Tornado:
		return "tornado"
	case Neighbor:
		return "neighbor"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Patterns lists every supported pattern.
func Patterns() []Pattern {
	return []Pattern{BitComplement, BitReverse, Shuffle, Tornado, Neighbor}
}

// PatternSizeError reports a bit-defined permutation pattern applied to a
// mesh whose core count does not satisfy the pattern's size requirement.
// It is a typed error so callers (e.g. the scenario registry) can surface
// the constraint — "use a 2^k-core mesh" — instead of a generic failure.
type PatternSizeError struct {
	Pattern Pattern
	// Cores is the offending core count.
	Cores int
}

// Error implements error.
func (e *PatternSizeError) Error() string {
	return fmt.Sprintf("workload: %v requires a power-of-two core count, got %d (use a 2^k-core mesh such as 8x8 or 16x16)",
		e.Pattern, e.Cores)
}

// Permutation appends the pattern's traffic to set: one communication of
// the given rate per core whose image differs from itself. Bit-defined
// patterns (bit-complement, bit-reverse, shuffle) return a
// *PatternSizeError on non-power-of-two core counts.
func Permutation(m *mesh.Mesh, set comm.Set, p Pattern, rate float64) (comm.Set, error) {
	n := m.NumCores()
	logN := bits.Len(uint(n)) - 1
	if p == BitComplement || p == BitReverse || p == Shuffle {
		if n&(n-1) != 0 {
			return nil, &PatternSizeError{Pattern: p, Cores: n}
		}
	}
	if rate <= 0 {
		return nil, fmt.Errorf("workload: non-positive rate %g", rate)
	}
	idx := func(c mesh.Coord) int { return (c.U-1)*m.Q() + (c.V - 1) }
	coord := func(i int) mesh.Coord { return mesh.Coord{U: i/m.Q() + 1, V: i%m.Q() + 1} }

	id := nextID(set)
	for _, src := range m.Cores() {
		i := idx(src)
		var j int
		switch p {
		case BitComplement:
			j = (^i) & (n - 1)
		case BitReverse:
			j = int(bits.Reverse(uint(i)) >> (bits.UintSize - logN))
		case Shuffle:
			if logN == 0 { // 1-core mesh: the rotation is the identity
				j = i
			} else {
				j = ((i << 1) | (i >> (logN - 1))) & (n - 1)
			}
		case Tornado:
			shift := (m.Q()+1)/2 - 1
			j = idx(mesh.Coord{U: src.U, V: (src.V-1+shift)%m.Q() + 1})
		case Neighbor:
			j = idx(mesh.Coord{U: src.U, V: src.V%m.Q() + 1})
		default:
			return nil, fmt.Errorf("workload: unknown pattern %v", p)
		}
		dst := coord(j)
		if src == dst {
			continue
		}
		set = append(set, comm.Comm{ID: id, Src: src, Dst: dst, Rate: rate})
		id++
	}
	return set, nil
}
