package workload

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/mesh"
)

func TestPermutationValidOnPaperMesh(t *testing.T) {
	m := mesh.MustNew(8, 8)
	for _, p := range Patterns() {
		set, err := Permutation(m, nil, p, 500)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := set.Validate(m); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(set) == 0 {
			t.Fatalf("%v: empty pattern", p)
		}
	}
}

// A permutation pattern has at most one flow per source, and the bit
// patterns are true permutations: each destination appears at most once.
func TestPermutationIsPermutation(t *testing.T) {
	m := mesh.MustNew(8, 8)
	for _, p := range []Pattern{BitComplement, BitReverse, Shuffle, Tornado, Neighbor} {
		set, err := Permutation(m, nil, p, 100)
		if err != nil {
			t.Fatal(err)
		}
		srcs := map[mesh.Coord]int{}
		dsts := map[mesh.Coord]int{}
		for _, c := range set {
			srcs[c.Src]++
			dsts[c.Dst]++
		}
		for c, n := range srcs {
			if n > 1 {
				t.Errorf("%v: %v sends %d flows", p, c, n)
			}
		}
		for c, n := range dsts {
			if n > 1 {
				t.Errorf("%v: %v receives %d flows", p, c, n)
			}
		}
	}
}

func TestBitComplementGeometry(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set, err := Permutation(m, nil, BitComplement, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Core index 0 = C(1,1) maps to index 63 = C(8,8).
	found := false
	for _, c := range set {
		if c.Src == (mesh.Coord{U: 1, V: 1}) {
			found = true
			if c.Dst != (mesh.Coord{U: 8, V: 8}) {
				t.Errorf("bit-complement of C(1,1) = %v, want C(8,8)", c.Dst)
			}
		}
	}
	if !found {
		t.Error("C(1,1) has no flow")
	}
	// All 64 cores participate (no fixed points in complement).
	if len(set) != 64 {
		t.Errorf("flows = %d, want 64", len(set))
	}
}

func TestTornadoStaysInRow(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set, err := Permutation(m, nil, Tornado, 100)
	if err != nil {
		t.Fatal(err)
	}
	// On q=8 the shift is 3, so mesh (non-torus) distances are 3 or
	// 8−3=5 depending on wrap-around.
	for _, c := range set {
		if c.Src.U != c.Dst.U {
			t.Errorf("tornado flow leaves its row: %v", c)
		}
		if l := c.Length(); l != 3 && l != 5 {
			t.Errorf("tornado hop distance %d for %v, want 3 or 5", l, c)
		}
	}
}

func TestNeighborLength(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set, err := Permutation(m, nil, Neighbor, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range set {
		// Either one hop right or the row wrap-around (7 hops back).
		if l := c.Length(); l != 1 && l != 7 {
			t.Errorf("neighbor length %d for %v", l, c)
		}
	}
}

func TestPermutationRejectsBadInput(t *testing.T) {
	m := mesh.MustNew(3, 5) // 15 cores: not a power of two
	if _, err := Permutation(m, nil, BitComplement, 100); err == nil {
		t.Error("bit pattern on non-power-of-two mesh accepted")
	}
	m2 := mesh.MustNew(8, 8)
	if _, err := Permutation(m2, nil, Neighbor, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Permutation(m2, nil, Pattern(99), 10); err == nil {
		t.Error("unknown pattern accepted")
	}
}

// Tornado on non-power-of-two meshes is fine.
func TestTornadoNonPowerOfTwo(t *testing.T) {
	m := mesh.MustNew(3, 5)
	set, err := Permutation(m, nil, Tornado, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestPatternStrings(t *testing.T) {
	for _, p := range Patterns() {
		if p.String() == "" {
			t.Errorf("pattern %d has empty name", int(p))
		}
	}
}

// The power-of-two constraint is a typed error carrying the pattern and
// the offending core count.
func TestPatternSizeErrorTyped(t *testing.T) {
	m := mesh.MustNew(6, 6)
	for _, p := range []Pattern{BitComplement, BitReverse, Shuffle} {
		_, err := Permutation(m, nil, p, 100)
		if err == nil {
			t.Fatalf("%v on 6x6 accepted", p)
		}
		var pse *PatternSizeError
		if !errors.As(err, &pse) {
			t.Fatalf("%v: error %v is not a *PatternSizeError", p, err)
		}
		if pse.Pattern != p || pse.Cores != 36 {
			t.Errorf("%v: PatternSizeError = %+v", p, pse)
		}
		if !strings.Contains(err.Error(), "power-of-two") {
			t.Errorf("%v: message %q does not explain the constraint", p, err)
		}
	}
}

// 1×N edge meshes: a power-of-two row supports every pattern; the 1-core
// mesh must not panic (the shuffle rotation degenerates to the identity
// and the patterns simply produce no traffic).
func TestPatternsEdgeMeshes(t *testing.T) {
	row := mesh.MustNew(1, 8)
	for _, p := range Patterns() {
		set, err := Permutation(row, nil, p, 100)
		if err != nil {
			t.Errorf("%v on 1x8: %v", p, err)
			continue
		}
		if err := set.Validate(row); err != nil {
			t.Errorf("%v on 1x8: %v", p, err)
		}
		if p != Neighbor && p != Tornado && len(set) == 0 {
			t.Errorf("%v on 1x8 produced no traffic", p)
		}
	}
	one := mesh.MustNew(1, 1)
	for _, p := range Patterns() {
		set, err := Permutation(one, nil, p, 100)
		if err != nil {
			t.Errorf("%v on 1x1: %v", p, err)
			continue
		}
		if len(set) != 0 {
			t.Errorf("%v on 1x1 produced traffic %v", p, set)
		}
	}
}
