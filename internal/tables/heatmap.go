package tables

import (
	"fmt"
	"strings"

	"repro/internal/mesh"
)

// Heatmap renders the per-link loads of a routing as an ASCII mesh map:
// cores are '+', and each neighbor pair is connected by a glyph classing
// the larger of the two directed loads against maxBW —
//
//	' ' idle   '.' ≤25%   '-' ≤50%   '=' ≤75%   '#' ≤100%   '!' overload
//
// Horizontal links render between cores on the core rows; vertical links
// render on the interleaved rows. loads is indexed by mesh.LinkID.
func Heatmap(m *mesh.Mesh, loads []float64, maxBW float64) string {
	glyph := func(a, b mesh.Coord) byte {
		load := 0.0
		for _, l := range []mesh.Link{{From: a, To: b}, {From: b, To: a}} {
			if v := loads[m.LinkID(l)]; v > load {
				load = v
			}
		}
		switch {
		case load == 0:
			return ' '
		case load <= 0.25*maxBW:
			return '.'
		case load <= 0.50*maxBW:
			return '-'
		case load <= 0.75*maxBW:
			return '='
		case load <= maxBW+1e-9:
			return '#'
		default:
			return '!'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "link load heatmap (%dx%d, max %.0f):  .≤25%%  -≤50%%  =≤75%%  #≤100%%  !overload\n",
		m.P(), m.Q(), maxBW)
	for u := 1; u <= m.P(); u++ {
		// Core row: + h + h + …
		for v := 1; v <= m.Q(); v++ {
			b.WriteByte('+')
			if v < m.Q() {
				g := glyph(mesh.Coord{U: u, V: v}, mesh.Coord{U: u, V: v + 1})
				b.WriteByte(g)
				b.WriteByte(g)
			}
		}
		b.WriteByte('\n')
		// Vertical row.
		if u < m.P() {
			for v := 1; v <= m.Q(); v++ {
				b.WriteByte(glyph(mesh.Coord{U: u, V: v}, mesh.Coord{U: u + 1, V: v}))
				if v < m.Q() {
					b.WriteString("  ")
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
