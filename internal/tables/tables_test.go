package tables

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("demo", "x", "longheader", "y")
	tb.AddRow("1", "a", "bb")
	tb.AddRow("100", "b", "c")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All data lines equal width (aligned columns).
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header and separator widths differ:\n%s", out)
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("1")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}

func TestAddFloatRow(t *testing.T) {
	tb := New("", "label", "v1", "v2")
	tb.AddFloatRow("r", 2, 1.234, 5.678)
	if tb.Rows[0][1] != "1.23" || tb.Rows[0][2] != "5.68" {
		t.Errorf("float formatting: %v", tb.Rows[0])
	}
}

func TestWriteCSV(t *testing.T) {
	tb := New("", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", "2")
	tb.AddRow(`with"quote`, "3")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "name,value\nplain,1\n\"with,comma\",2\n\"with\"\"quote\",3\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVLineQuoting(t *testing.T) {
	got := CSVLine([]string{"a", "b,c", `d"e`, "f\ng"})
	want := "a,\"b,c\",\"d\"\"e\",\"f\ng\"\n"
	if got != want {
		t.Errorf("CSVLine = %q, want %q", got, want)
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := New("T|itle", "h1", "h2")
	tb.AddRow("a|b", "c")
	var buf strings.Builder
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	want := "**T|itle**\n\n| h1 | h2 |\n| --- | --- |\n| a\\|b | c |\n"
	if buf.String() != want {
		t.Errorf("WriteMarkdown:\n%q\nwant\n%q", buf.String(), want)
	}
}
