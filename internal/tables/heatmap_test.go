package tables

import (
	"strings"
	"testing"

	"repro/internal/mesh"
)

func TestHeatmapGlyphClasses(t *testing.T) {
	m := mesh.MustNew(2, 2)
	loads := make([]float64, m.LinkIDSpace())
	set := func(a, b mesh.Coord, v float64) {
		loads[m.LinkID(mesh.Link{From: a, To: b})] = v
	}
	set(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 1, V: 2}, 100)  // '.' (≤25% of 1000)
	set(mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 2, V: 1}, 600)  // '='
	set(mesh.Coord{U: 2, V: 1}, mesh.Coord{U: 2, V: 2}, 2000) // '!'
	out := Heatmap(m, loads, 1000)
	for _, want := range []string{".", "=", "!"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing glyph %q:\n%s", want, out)
		}
	}
	// The idle vertical link (1,2)-(2,2) renders as a space row entry.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("heatmap too short:\n%s", out)
	}
}

// The heatmap picks the larger of the two directed loads.
func TestHeatmapBidirectionalMax(t *testing.T) {
	m := mesh.MustNew(1, 2)
	loads := make([]float64, m.LinkIDSpace())
	a, b := mesh.Coord{U: 1, V: 1}, mesh.Coord{U: 1, V: 2}
	loads[m.LinkID(mesh.Link{From: a, To: b})] = 10
	loads[m.LinkID(mesh.Link{From: b, To: a})] = 990
	out := Heatmap(m, loads, 1000)
	if !strings.Contains(out, "+##+") {
		t.Errorf("expected '#' glyph for 99%% load:\n%s", out)
	}
}

func TestHeatmapDimensions(t *testing.T) {
	m := mesh.MustNew(3, 4)
	out := Heatmap(m, make([]float64, m.LinkIDSpace()), 1000)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 1 header + 3 core rows + 2 vertical rows.
	if len(lines) != 6 {
		t.Fatalf("heatmap has %d lines, want 6:\n%s", len(lines), out)
	}
	// Core rows: q '+' cells with 2-char connectors: 4 + 3·2 = 10 chars.
	if len(lines[1]) != 10 {
		t.Errorf("core row width %d, want 10: %q", len(lines[1]), lines[1])
	}
}
