// Package tables renders experiment results as aligned ASCII tables and
// CSV files, the output formats of cmd/experiments.
package tables

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddFloatRow formats floats with the given precision into a row, with an
// arbitrary first (label) cell.
func (t *Table) AddFloatRow(label string, prec int, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.*f", prec, v))
	}
	t.AddRow(cells...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// CSVLine formats one CSV record with RFC 4180 quoting (cells containing
// commas, quotes or newlines are quoted), newline-terminated. It is the
// shared formatter of Table.WriteCSV and the streaming CSV sinks, so
// accumulated and streamed output can never diverge byte-wise.
func CSVLine(cells []string) string {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	return strings.Join(parts, ",") + "\n"
}

// WriteCSV writes the table as CSV (headers first). Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, CSVLine(t.Headers)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := io.WriteString(w, CSVLine(row)); err != nil {
			return err
		}
	}
	return nil
}

// MarkdownRow formats one GitHub-flavored markdown table row,
// newline-terminated. Pipes in cells are escaped.
func MarkdownRow(cells []string) string {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	return "| " + strings.Join(parts, " | ") + " |\n"
}

// MarkdownSeparator returns the header/body separator row of a markdown
// table with n columns.
func MarkdownSeparator(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = "---"
	}
	return "| " + strings.Join(parts, " | ") + " |\n"
}

// WriteMarkdown writes the table as a GitHub-flavored markdown table,
// with the title (when set) as a bold caption line above it.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString(MarkdownRow(t.Headers))
	b.WriteString(MarkdownSeparator(len(t.Headers)))
	for _, row := range t.Rows {
		b.WriteString(MarkdownRow(row))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
