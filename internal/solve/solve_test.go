package solve_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/comm"
	_ "repro/internal/exact" // register OPT
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/multipath"
	_ "repro/internal/optflow" // register MAXMP
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
)

func demoInstance(t *testing.T) solve.Instance {
	t.Helper()
	return solve.Instance{
		Mesh:  mesh.MustNew(2, 2),
		Model: power.Figure2(),
		Comms: comm.Set{
			{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
			{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 3},
		},
	}
}

func TestPoliciesSortedAndComplete(t *testing.T) {
	names := solve.Policies()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Policies() not sorted: %v", names)
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"XY", "SG", "IG", "TB", "XYI", "PR", "BEST", "SA", "OPT", "2MP", "4MP", "MAXMP"} {
		if !have[want] {
			t.Errorf("Policies() missing %s (got %v)", want, names)
		}
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	for _, name := range []string{"PR", "pr", "Pr", "maxmp", "MaxMP", "2mp", "opt", "sa"} {
		s, err := solve.Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if !strings.EqualFold(s.Name(), name) {
			t.Errorf("Lookup(%q) resolved to %q", name, s.Name())
		}
	}
}

func TestLookupUnknownErrorText(t *testing.T) {
	_, err := solve.Lookup("nope")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown policy "nope"`) {
		t.Errorf("error %q lacks the offending name", msg)
	}
	if !strings.Contains(msg, "PR") || !strings.Contains(msg, "MAXMP") {
		t.Errorf("error %q does not list the registered policies", msg)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	solve.Register(solve.Func{PolicyName: "DUP-TEST", RouteFunc: nil})
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	// Same name, different case: the registry is case-insensitive, so this
	// must still collide.
	solve.Register(solve.Func{PolicyName: "dup-test", RouteFunc: nil})
}

func TestRouteMatchesDirectPolicies(t *testing.T) {
	in := demoInstance(t)
	direct := map[string]func() (route.Routing, error){
		"PR": func() (route.Routing, error) { return heur.PR{}.Route(in) },
		"XY": func() (route.Routing, error) { return heur.XY{}.Route(in) },
		"2MP": func() (route.Routing, error) {
			return multipath.EqualSplit{S: 2, Inner: heur.TB{}}.Route(in.Mesh, in.Model, in.Comms)
		},
	}
	for name, f := range direct {
		want, err := f()
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		got, err := solve.Route(name, in, solve.Options{})
		if err != nil {
			t.Fatalf("%s registry: %v", name, err)
		}
		if route.Evaluate(got, in.Model).Power.Total() != route.Evaluate(want, in.Model).Power.Total() {
			t.Errorf("%s: registry power differs from direct call", name)
		}
	}
}

func TestInstanceValidate(t *testing.T) {
	if err := (solve.Instance{}).Validate(); err == nil {
		t.Error("nil mesh accepted")
	}
	in := demoInstance(t)
	if err := in.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	in.Model = power.Model{}
	if err := in.Validate(); err == nil {
		t.Error("zero model accepted")
	}
}
