// Package solve is the uniform policy layer of the library: every routing
// policy family — the Section 5 single-path heuristics, the exact
// branch-and-bound OPT, the equal-split multi-path rules, the Frank–Wolfe
// max-MP optimum and the simulated-annealing refiner — presents itself as
// a Solver and self-registers into a case-insensitive registry. Callers
// (internal/core, internal/experiments, the commands) dispatch by policy
// name and pass knobs through a single Options struct instead of
// constructing per-family struct literals.
//
// The registry is populated by init functions in the policy packages
// (internal/heur, internal/multipath, internal/exact); importing any of
// them — or internal/core, which imports them all — makes every policy
// available.
package solve

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/topo"
)

// ErrStopped is returned by a solver that abandoned its search because
// Options.Stop reported true — the deadline/cancellation path, not a
// solver failure. Callers distinguish it from "no solution" with
// errors.Is and map it back to their own cancellation signal (the
// experiment engine returns context.Canceled for it).
var ErrStopped = errors.New("solve: stopped by Options.Stop")

// Instance is one routing problem: a CMP platform, a link power model,
// and the communication set to route. The platform is either the
// paper's mesh (Mesh set, Topo nil — the common case, and the only one
// the Manhattan policy families accept) or any other topology (Topo
// set, Mesh nil). Topology() is the uniform accessor.
type Instance struct {
	Mesh  *mesh.Mesh
	Topo  topo.Topology
	Model power.Model
	Comms comm.Set
}

// Topology returns the instance's platform: Topo when set, else Mesh.
func (in Instance) Topology() topo.Topology {
	if in.Topo != nil {
		return in.Topo
	}
	if in.Mesh != nil {
		return in.Mesh
	}
	return nil
}

// Validate checks the instance for well-formedness.
func (in Instance) Validate() error {
	if in.Mesh == nil && in.Topo == nil {
		return fmt.Errorf("solve: nil mesh and nil topology")
	}
	if in.Mesh != nil && in.Topo != nil && in.Mesh != in.Topo {
		return fmt.Errorf("solve: both Mesh and Topo set on instance")
	}
	if err := in.Model.Validate(); err != nil {
		return err
	}
	if in.Mesh != nil {
		return in.Comms.Validate(in.Mesh)
	}
	return in.Comms.ValidateOn(in.Topo)
}

// Options carries every tunable a policy may consume. The zero value is
// always valid and reproduces each policy's documented defaults, so
// callers that don't care pass Options{}. Policies ignore fields that
// don't concern them.
type Options struct {
	// Seed drives the RNG of stochastic policies (SA); 0 means the
	// policy's default seed, keeping zero-value determinism.
	Seed int64
	// SAIters bounds the simulated-annealing move budget
	// (0 = 300 moves per communication).
	SAIters int
	// FWMaxIters bounds the Frank–Wolfe iterations of MAXMP (0 = 300).
	FWMaxIters int
	// FWTolerance is MAXMP's relative duality-gap target (0 = 1e-6).
	FWTolerance float64
	// MaxPaths overrides the split count of the equal-split multi-path
	// policies (0 keeps the policy's own s, e.g. 2 for "2MP").
	MaxPaths int
	// Order overrides the communication processing order of the
	// order-sensitive greedy heuristics (zero value is the paper's
	// weight-descending).
	Order comm.Order
	// ExactWorkers caps the parallel workers of the OPT branch-and-bound
	// (0 = GOMAXPROCS). OPT's routing is byte-identical at every worker
	// count; callers that already parallelize across solves set 1 to
	// avoid oversubscription.
	ExactWorkers int
	// ExactMaxStates overrides OPT's search-node budget
	// (0 = exact.DefaultMaxStates).
	ExactMaxStates int
	// Stop, when non-nil, is polled by the long-running policies (SA's
	// anneal loop, OPT's branch-and-bound) every few hundred steps; once
	// it reports true the solver abandons the search and returns
	// ErrStopped. The poll is a single predicate call on a coarse stride,
	// so an always-false Stop costs nothing measurable and the routing of
	// an unstopped run is byte-identical to a run without the hook. The
	// constructive heuristics finish in microseconds and ignore it.
	Stop func() bool
	// Workspace, when non-nil, lets the policy reuse dense scratch state
	// (per-comm path slots, load trackers, frontier bitsets) across calls
	// — the amortization hook of the experiment engine's per-worker
	// scratch and of any caller running many solves on one goroutine.
	// Routings returned under a workspace may alias its memory and are
	// valid until the next call that reuses it (deep-copy with
	// route.Routing.Clone to keep them); results are bit-for-bit
	// identical with or without a workspace. A Workspace must not be
	// shared between goroutines.
	Workspace *route.Workspace
}

// Solver computes a routing for an instance. Route returns a structurally
// valid routing when err is nil; the routing may still be infeasible (some
// link over bandwidth), which route.Evaluate exposes via Result.Feasible.
type Solver interface {
	// Name is the canonical policy name ("PR", "2MP", ...).
	Name() string
	Route(in Instance, opts Options) (route.Routing, error)
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Solver)
)

// Register adds a solver to the registry under its canonical name.
// Registration is case-insensitive and panics on duplicates — two policy
// families claiming the same name is a programming error that must fail
// loudly at init time, not at first lookup.
func Register(s Solver) {
	key := strings.ToUpper(s.Name())
	mu.Lock()
	defer mu.Unlock()
	if prev, ok := registry[key]; ok {
		panic(fmt.Sprintf("solve: duplicate registration of policy %q (%T and %T)", s.Name(), prev, s))
	}
	registry[key] = s
}

// Lookup resolves a policy name case-insensitively.
func Lookup(name string) (Solver, error) {
	mu.RLock()
	s, ok := registry[strings.ToUpper(name)]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solve: unknown policy %q (have %s)", name, strings.Join(Policies(), ", "))
	}
	return s, nil
}

// Policies returns every registered canonical policy name, sorted.
func Policies() []string {
	mu.RLock()
	names := make([]string, 0, len(registry))
	for _, s := range registry {
		names = append(names, s.Name())
	}
	mu.RUnlock()
	sort.Strings(names)
	return names
}

// Route is the one-shot convenience: look the policy up and route.
func Route(policy string, in Instance, opts Options) (route.Routing, error) {
	s, err := Lookup(policy)
	if err != nil {
		return route.Routing{}, err
	}
	return s.Route(in, opts)
}

// TopologyAware marks a Solver that accepts instances on any topology
// (Instance.Topo set). Solvers without the marker are Manhattan/mesh
// policies: they may only be given mesh instances. The marker is a
// static capability declaration, so callers can reject a policy/
// topology mismatch before drawing workloads or caching sweep keys.
type TopologyAware interface {
	Solver
	// RoutesTopologies reports (statically) that Route understands
	// Instance.Topo.
	RoutesTopologies() bool
}

// Supports reports whether the solver can route instances on tp: every
// solver supports the mesh, non-mesh topologies require the
// TopologyAware marker.
func Supports(s Solver, tp topo.Topology) bool {
	if _, ok := tp.(*mesh.Mesh); ok {
		return true
	}
	ta, ok := s.(TopologyAware)
	return ok && ta.RoutesTopologies()
}

// CheckTopology resolves each policy name and verifies it supports tp,
// returning a descriptive error naming the topology-capable policies on
// the first mismatch — the shared pre-validation of the experiment
// engine and the serve endpoints.
func CheckTopology(policies []string, tp topo.Topology) error {
	var capable []string
	for _, name := range policies {
		s, err := Lookup(name)
		if err != nil {
			return err
		}
		if Supports(s, tp) {
			continue
		}
		if capable == nil {
			for _, n := range Policies() {
				if c, err := Lookup(n); err == nil && Supports(c, tp) {
					capable = append(capable, n)
				}
			}
		}
		return fmt.Errorf("solve: policy %q routes meshes only, not %s (topology-capable policies: %s)",
			s.Name(), tp.Spec(), strings.Join(capable, ", "))
	}
	return nil
}

// Func adapts a plain function to the Solver interface, for policies that
// need no state of their own.
type Func struct {
	PolicyName string
	RouteFunc  func(in Instance, opts Options) (route.Routing, error)
}

// Name implements Solver.
func (f Func) Name() string { return f.PolicyName }

// Route implements Solver.
func (f Func) Route(in Instance, opts Options) (route.Routing, error) {
	return f.RouteFunc(in, opts)
}
