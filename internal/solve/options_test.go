package solve_test

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
	"repro/internal/workload"
)

func randomInstance(t *testing.T, seed int64, n int, model power.Model) solve.Instance {
	t.Helper()
	m := mesh.MustNew(8, 8)
	return solve.Instance{Mesh: m, Model: model, Comms: workload.New(m, seed).Uniform(n, 100, 1200)}
}

func sameRouting(a, b route.Routing) bool {
	if len(a.Flows) != len(b.Flows) {
		return false
	}
	for i := range a.Flows {
		if a.Flows[i].Comm != b.Flows[i].Comm || len(a.Flows[i].Path) != len(b.Flows[i].Path) {
			return false
		}
		for j := range a.Flows[i].Path {
			if a.Flows[i].Path[j] != b.Flows[i].Path[j] {
				return false
			}
		}
	}
	return true
}

// Same seed ⇒ identical SA routing; different seeds ⇒ solutions still
// structurally valid and feasible on this comfortably under-loaded
// instance.
func TestOptionsSeedDeterminism(t *testing.T) {
	in := randomInstance(t, 11, 12, power.KimHorowitz())
	r1, err := solve.Route("SA", in, solve.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := solve.Route("SA", in, solve.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRouting(r1, r2) {
		t.Error("SA with the same seed produced different routings")
	}
	for _, seed := range []int64{1, 2, 99} {
		r, err := solve.Route("SA", in, solve.Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.Validate(in.Comms, 1); err != nil {
			t.Errorf("seed %d: invalid routing: %v", seed, err)
		}
		if res := route.Evaluate(r, in.Model); !res.Feasible {
			t.Errorf("seed %d: infeasible SA routing on an easy instance", seed)
		}
	}
}

// Options fields reach the policies: the registry call with knobs equals
// the direct struct-literal call with the same knobs.
func TestOptionsPlumbing(t *testing.T) {
	in := randomInstance(t, 13, 14, power.KimHorowitz())

	saReg, err := solve.Route("SA", in, solve.Options{Seed: 5, SAIters: 60})
	if err != nil {
		t.Fatal(err)
	}
	saDirect, err := heur.SA{Seed: 5, Iters: 60}.Route(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRouting(saReg, saDirect) {
		t.Error("SA options not plumbed: registry differs from heur.SA{Seed, Iters}")
	}

	tbReg, err := solve.Route("TB", in, solve.Options{Order: comm.ByWeightAsc})
	if err != nil {
		t.Fatal(err)
	}
	tbDirect, err := heur.TB{Order: comm.ByWeightAsc}.Route(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRouting(tbReg, tbDirect) {
		t.Error("Order not plumbed: registry TB differs from heur.TB{Order}")
	}
}

// MaxPaths overrides the split count of the equal-split policies: "2MP"
// forced to 4 paths is exactly "4MP".
func TestOptionsMaxPaths(t *testing.T) {
	in := randomInstance(t, 17, 10, power.KimHorowitz())
	forced, err := solve.Route("2MP", in, solve.Options{MaxPaths: 4})
	if err != nil {
		t.Fatal(err)
	}
	fourMP, err := solve.Route("4MP", in, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameRouting(forced, fourMP) {
		t.Error("MaxPaths not plumbed: 2MP with MaxPaths=4 differs from 4MP")
	}
	if err := forced.Validate(in.Comms, 4); err != nil {
		t.Errorf("forced split invalid: %v", err)
	}
}

// The Frank–Wolfe budget is respected: a single iteration still yields a
// structurally valid routing, and its continuous dynamic power cannot beat
// the converged run (FW's objective is non-increasing per iteration).
func TestOptionsFrankWolfeBudget(t *testing.T) {
	in := randomInstance(t, 19, 20, power.KimHorowitzContinuous())
	truncated, err := solve.Route("MAXMP", in, solve.Options{FWMaxIters: 1, FWTolerance: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if err := truncated.Validate(in.Comms, 0); err != nil {
		t.Fatalf("truncated MAXMP routing invalid: %v", err)
	}
	converged, err := solve.Route("MAXMP", in, solve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pTrunc := route.Evaluate(truncated, in.Model).Power.Dynamic
	pConv := route.Evaluate(converged, in.Model).Power.Dynamic
	if pTrunc < pConv-1e-6 {
		t.Errorf("1-iteration FW power %g beats converged %g", pTrunc, pConv)
	}
	if pTrunc == pConv {
		t.Error("FWMaxIters had no effect: truncated run equals converged run")
	}
}
