// Package optflow computes optimal max-MP routings under the continuous
// power model by convex multicommodity flow optimization (Frank–Wolfe).
// The paper bounds the max-MP optimum analytically (Theorems 1 and 2, via
// the ideal-sharing relaxation) but never computes it; this solver closes
// that gap, giving the heuristics an absolute baseline: any valid routing
// — single- or multi-path — dissipates at least the optimum found here
// (up to the reported duality gap), because max-MP is the least
// constrained routing rule.
//
// The objective is the dynamic power Σ_links P0·(load/unit)^α, which is
// convex for α > 1; static power is excluded (its link-activation term is
// discontinuous), matching the Section 4 regime Pleak = 0 where the
// worst-case analysis lives.
package optflow

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
)

// Options tunes the Frank–Wolfe solve.
type Options struct {
	// MaxIters bounds the iterations (default 300).
	MaxIters int
	// Tolerance is the relative duality-gap target (default 1e-6).
	Tolerance float64
}

func (o *Options) setDefaults() {
	if o.MaxIters == 0 {
		o.MaxIters = 300
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
}

// Solution is an optimal (within Gap) fractional max-MP routing.
type Solution struct {
	// Loads is the per-link load vector (mesh.LinkID indexed).
	Loads []float64
	// PerComm maps each communication's ID to its fractional flow per
	// link id.
	PerComm map[int]map[int]float64
	// Power is the dynamic power of Loads under the continuous model.
	Power float64
	// Gap is the final relative Frank–Wolfe duality gap: the objective
	// is within Gap·Power of the true optimum.
	Gap float64
	// Iters is the number of iterations performed.
	Iters int
}

// Solve minimizes the continuous dynamic power over all fractional
// Manhattan routings of the communication set (the max-MP rule). Discrete
// frequency sets in the model are relaxed to their continuous envelope.
func Solve(m *mesh.Mesh, model power.Model, set comm.Set, opts Options) (*Solution, error) {
	opts.setDefaults()
	if err := set.Validate(m); err != nil {
		return nil, err
	}
	if model.Alpha <= 1 {
		return nil, fmt.Errorf("optflow: alpha %g must exceed 1 for convexity", model.Alpha)
	}
	unit := model.FreqUnit
	if unit == 0 {
		unit = 1
	}

	// dyn and its derivative, per link.
	dyn := func(x float64) float64 { return model.P0 * math.Pow(x/unit, model.Alpha) }
	dynPrime := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return model.P0 * model.Alpha / unit * math.Pow(x/unit, model.Alpha-1)
	}

	nLinks := m.LinkIDSpace()
	loads := make([]float64, nLinks)
	perComm := make([]map[int]float64, len(set))

	// Initialize with the all-or-nothing assignment under zero loads
	// (any shortest path; XY is as good as any for a starting point).
	for i, c := range set {
		flow := make(map[int]float64)
		for _, l := range xyPath(c) {
			id := m.LinkID(l)
			flow[id] += c.Rate
			loads[id] += c.Rate
		}
		perComm[i] = flow
	}

	objective := func(x []float64) float64 {
		total := 0.0
		for _, v := range x {
			if v > 0 {
				total += dyn(v)
			}
		}
		return total
	}

	var gap float64
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		// Marginal costs at the current loads.
		costs := make([]float64, nLinks)
		for id, v := range loads {
			costs[id] = dynPrime(v)
		}
		// All-or-nothing assignment: cheapest path per communication
		// under the marginal costs (DP over the communication's DAG).
		target := make([]float64, nLinks)
		targetPer := make([]map[int]float64, len(set))
		linear := 0.0 // c·(x − y), the Frank–Wolfe gap numerator
		for i, c := range set {
			path := cheapestPath(m, c, costs)
			flow := make(map[int]float64, len(path))
			for _, l := range path {
				id := m.LinkID(l)
				target[id] += c.Rate
				flow[id] += c.Rate
			}
			targetPer[i] = flow
		}
		for id := range loads {
			linear += costs[id] * (loads[id] - target[id])
		}
		obj := objective(loads)
		if obj > 0 {
			gap = linear / obj
		} else {
			gap = 0
		}
		if gap <= opts.Tolerance {
			break
		}
		// Exact 1-D line search on the convex segment via ternary search.
		gamma := lineSearch(func(g float64) float64 {
			total := 0.0
			for id := range loads {
				v := (1-g)*loads[id] + g*target[id]
				if v > 0 {
					total += dyn(v)
				}
			}
			return total
		})
		if gamma <= 0 {
			break
		}
		for id := range loads {
			loads[id] = (1-gamma)*loads[id] + gamma*target[id]
		}
		for i := range perComm {
			merged := make(map[int]float64, len(perComm[i])+len(targetPer[i]))
			for id, v := range perComm[i] {
				if nv := (1 - gamma) * v; nv > 1e-12 {
					merged[id] = nv
				}
			}
			for id, v := range targetPer[i] {
				if nv := merged[id] + gamma*v; nv > 1e-12 {
					merged[id] = nv
				}
			}
			perComm[i] = merged
		}
	}

	sol := &Solution{
		Loads:   loads,
		PerComm: make(map[int]map[int]float64, len(set)),
		Power:   objective(loads),
		Gap:     gap,
		Iters:   iters,
	}
	for i, c := range set {
		sol.PerComm[c.ID] = perComm[i]
	}
	return sol, nil
}

// xyPath mirrors route.XY without importing route (keeping optflow at the
// same dependency layer as the heuristics' inputs).
func xyPath(c comm.Comm) []mesh.Link {
	var links []mesh.Link
	cur := c.Src
	for cur.V != c.Dst.V {
		next := cur
		if c.Dst.V > cur.V {
			next.V++
		} else {
			next.V--
		}
		links = append(links, mesh.Link{From: cur, To: next})
		cur = next
	}
	for cur.U != c.Dst.U {
		next := cur
		if c.Dst.U > cur.U {
			next.U++
		} else {
			next.U--
		}
		links = append(links, mesh.Link{From: cur, To: next})
		cur = next
	}
	return links
}

// cheapestPath runs the shortest-path DP over the communication's
// bounding-box DAG: cores are processed diagonal by diagonal, so each
// link is relaxed exactly once.
func cheapestPath(m *mesh.Mesh, c comm.Comm, costs []float64) []mesh.Link {
	type state struct {
		dist float64
		via  mesh.Link
		ok   bool
	}
	dist := map[mesh.Coord]state{c.Src: {dist: 0, ok: true}}
	ell := c.Length()
	for t := 0; t < ell; t++ {
		for _, l := range m.FrontierLinks(c.Src, c.Dst, t) {
			from, okFrom := dist[l.From]
			if !okFrom || !from.ok {
				continue
			}
			cand := from.dist + costs[m.LinkID(l)]
			cur, seen := dist[l.To]
			if !seen || !cur.ok || cand < cur.dist {
				dist[l.To] = state{dist: cand, via: l, ok: true}
			}
		}
	}
	// Walk back from the sink.
	path := make([]mesh.Link, ell)
	cur := c.Dst
	for t := ell - 1; t >= 0; t-- {
		st := dist[cur]
		path[t] = st.via
		cur = st.via.From
	}
	return path
}

// lineSearch minimizes a convex function on [0,1] by ternary search.
func lineSearch(f func(float64) float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if f(m1) <= f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	g := (lo + hi) / 2
	if f(g) >= f(0) {
		return 0
	}
	return g
}
