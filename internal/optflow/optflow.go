// Package optflow computes optimal max-MP routings under the continuous
// power model by convex multicommodity flow optimization (Frank–Wolfe).
// The paper bounds the max-MP optimum analytically (Theorems 1 and 2, via
// the ideal-sharing relaxation) but never computes it; this solver closes
// that gap, giving the heuristics an absolute baseline: any valid routing
// — single- or multi-path — dissipates at least the optimum found here
// (up to the reported duality gap), because max-MP is the least
// constrained routing rule.
//
// The objective is the dynamic power Σ_links P0·(load/unit)^α, which is
// convex for α > 1; static power is excluded (its link-activation term is
// discontinuous), matching the Section 4 regime Pleak = 0 where the
// worst-case analysis lives.
package optflow

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// Options tunes the Frank–Wolfe solve.
type Options struct {
	// MaxIters bounds the iterations (default 300).
	MaxIters int
	// Tolerance is the relative duality-gap target (default 1e-6).
	Tolerance float64
}

func (o *Options) setDefaults() {
	if o.MaxIters == 0 {
		o.MaxIters = 300
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
}

// Solution is an optimal (within Gap) fractional max-MP routing.
type Solution struct {
	// Loads is the per-link load vector (mesh.LinkID indexed).
	Loads []float64
	// PerComm maps each communication's ID to its fractional flow per
	// link id.
	PerComm map[int]map[int]float64
	// Power is the dynamic power of Loads under the continuous model.
	Power float64
	// Gap is the final relative Frank–Wolfe duality gap: the objective
	// is within Gap·Power of the true optimum.
	Gap float64
	// Iters is the number of iterations performed.
	Iters int
}

// Solve minimizes the continuous dynamic power over all fractional
// Manhattan routings of the communication set (the max-MP rule). Discrete
// frequency sets in the model are relaxed to their continuous envelope.
func Solve(m *mesh.Mesh, model power.Model, set comm.Set, opts Options) (*Solution, error) {
	return SolveWith(m, model, set, opts, nil)
}

// fwScratch pools the Frank–Wolfe working state across workspace-reusing
// solves: the two comm×link flow matrices, the marginal-cost and target
// load vectors, and the dense shortest-path DP.
type fwScratch struct {
	perComm, targetPer []float64
	costs, target      []float64
	dp                 *pathDP
}

// zeroed returns *buf resized to n and cleared, growing its backing array
// when needed.
func zeroed(buf *[]float64, n int) []float64 {
	b := *buf
	if cap(b) < n {
		b = make([]float64, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = 0
		}
	}
	*buf = b
	return b
}

// SolveWith is Solve reusing the dense Frank–Wolfe state pooled in ws
// (nil allocates fresh; results are identical either way). The returned
// Solution owns its Loads and PerComm — unlike routings, it never aliases
// workspace memory.
func SolveWith(m *mesh.Mesh, model power.Model, set comm.Set, opts Options, ws *route.Workspace) (*Solution, error) {
	opts.setDefaults()
	if err := set.Validate(m); err != nil {
		return nil, err
	}
	if model.Alpha <= 1 {
		return nil, fmt.Errorf("optflow: alpha %g must exceed 1 for convexity", model.Alpha)
	}
	unit := model.FreqUnit
	if unit == 0 {
		unit = 1
	}

	// dyn and its derivative, per link.
	dyn := func(x float64) float64 { return model.P0 * math.Pow(x/unit, model.Alpha) }
	dynPrime := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return model.P0 * model.Alpha / unit * math.Pow(x/unit, model.Alpha-1)
	}

	var sc *fwScratch
	if ws != nil {
		ws.Bind(m)
		sc = ws.Scratch("optflow.fw", func() any { return new(fwScratch) }).(*fwScratch)
	} else {
		sc = new(fwScratch)
	}
	nLinks := m.LinkIDSpace()
	loads := make([]float64, nLinks) // escapes into Solution
	// perComm and targetPer are flat comm×link matrices (row i = the
	// fractional flow of set[i] indexed by LinkID) — the dense replacement
	// for the per-iteration map-of-maps state.
	perComm := zeroed(&sc.perComm, len(set)*nLinks)
	targetPer := zeroed(&sc.targetPer, len(set)*nLinks)
	costs := zeroed(&sc.costs, nLinks)
	target := zeroed(&sc.target, nLinks)
	if sc.dp == nil || len(sc.dp.dist) != m.NumCores() {
		sc.dp = newPathDP(m)
	}
	dp := sc.dp

	// Initialize with the all-or-nothing assignment under zero loads
	// (any shortest path; XY is as good as any for a starting point).
	for i, c := range set {
		row := perComm[i*nLinks : (i+1)*nLinks]
		for _, l := range xyPath(c) {
			id := m.LinkID(l)
			row[id] += c.Rate
			loads[id] += c.Rate
		}
	}

	objective := func(x []float64) float64 {
		total := 0.0
		for _, v := range x {
			if v > 0 {
				total += dyn(v)
			}
		}
		return total
	}

	var gap float64
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		// Marginal costs at the current loads.
		for id, v := range loads {
			costs[id] = dynPrime(v)
		}
		// All-or-nothing assignment: cheapest path per communication
		// under the marginal costs (DP over the communication's DAG).
		for id := range target {
			target[id] = 0
		}
		for id := range targetPer {
			targetPer[id] = 0
		}
		linear := 0.0 // c·(x − y), the Frank–Wolfe gap numerator
		for i, c := range set {
			row := targetPer[i*nLinks : (i+1)*nLinks]
			for _, l := range dp.cheapestPath(m, c, costs) {
				id := m.LinkID(l)
				target[id] += c.Rate
				row[id] += c.Rate
			}
		}
		for id := range loads {
			linear += costs[id] * (loads[id] - target[id])
		}
		obj := objective(loads)
		if obj > 0 {
			gap = linear / obj
		} else {
			gap = 0
		}
		if gap <= opts.Tolerance {
			break
		}
		// Exact 1-D line search on the convex segment via ternary search.
		gamma := lineSearch(func(g float64) float64 {
			total := 0.0
			for id := range loads {
				v := (1-g)*loads[id] + g*target[id]
				if v > 0 {
					total += dyn(v)
				}
			}
			return total
		})
		if gamma <= 0 {
			break
		}
		for id := range loads {
			loads[id] = (1-gamma)*loads[id] + gamma*target[id]
		}
		// Merge with the historical sparsity thresholds: a shrunk share
		// at or below 1e-12 drops to zero before the target is added, and
		// a combined share at or below 1e-12 leaves the shrunk value —
		// bit-for-bit the map-based bookkeeping on flat rows.
		for idx, v := range perComm {
			x := (1 - gamma) * v
			if x <= 1e-12 {
				x = 0
			}
			if nv := x + gamma*targetPer[idx]; nv > 1e-12 {
				x = nv
			}
			perComm[idx] = x
		}
	}

	sol := &Solution{
		Loads:   loads,
		PerComm: make(map[int]map[int]float64, len(set)),
		Power:   objective(loads),
		Gap:     gap,
		Iters:   iters,
	}
	for i, c := range set {
		row := perComm[i*nLinks : (i+1)*nLinks]
		flow := make(map[int]float64)
		for id, v := range row {
			if v > 1e-12 {
				flow[id] = v
			}
		}
		sol.PerComm[c.ID] = flow
	}
	return sol, nil
}

// xyPath mirrors route.XY without importing route (keeping optflow at the
// same dependency layer as the heuristics' inputs).
func xyPath(c comm.Comm) []mesh.Link {
	var links []mesh.Link
	cur := c.Src
	for cur.V != c.Dst.V {
		next := cur
		if c.Dst.V > cur.V {
			next.V++
		} else {
			next.V--
		}
		links = append(links, mesh.Link{From: cur, To: next})
		cur = next
	}
	for cur.U != c.Dst.U {
		next := cur
		if c.Dst.U > cur.U {
			next.U++
		} else {
			next.U--
		}
		links = append(links, mesh.Link{From: cur, To: next})
		cur = next
	}
	return links
}

// pathDP is the dense scratch of the per-communication shortest-path DP:
// coord-indexed distance/predecessor arrays with generation stamps (so a
// new walk needs no clearing), plus the frontier and path buffers. One
// instance serves every communication of a Solve.
type pathDP struct {
	dist     []float64
	via      []mesh.Link
	gen      []int
	cur      int
	frontier []mesh.Link
	path     []mesh.Link
}

func newPathDP(m *mesh.Mesh) *pathDP {
	n := m.NumCores()
	return &pathDP{dist: make([]float64, n), via: make([]mesh.Link, n), gen: make([]int, n)}
}

// cheapestPath runs the shortest-path DP over the communication's
// bounding-box DAG: cores are processed diagonal by diagonal, so each
// link is relaxed exactly once. The returned path aliases the DP's
// reusable buffer and is valid until the next call.
func (dp *pathDP) cheapestPath(m *mesh.Mesh, c comm.Comm, costs []float64) []mesh.Link {
	dp.cur++
	si := m.CoordIndex(c.Src)
	dp.gen[si] = dp.cur
	dp.dist[si] = 0
	ell := c.Length()
	for t := 0; t < ell; t++ {
		dp.frontier = m.AppendFrontierLinks(dp.frontier[:0], c.Src, c.Dst, t)
		for _, l := range dp.frontier {
			fi := m.CoordIndex(l.From)
			if dp.gen[fi] != dp.cur {
				continue
			}
			cand := dp.dist[fi] + costs[m.LinkID(l)]
			ti := m.CoordIndex(l.To)
			if dp.gen[ti] != dp.cur || cand < dp.dist[ti] {
				dp.gen[ti] = dp.cur
				dp.dist[ti] = cand
				dp.via[ti] = l
			}
		}
	}
	// Walk back from the sink.
	if cap(dp.path) < ell {
		dp.path = make([]mesh.Link, ell)
	}
	path := dp.path[:ell]
	cur := c.Dst
	for t := ell - 1; t >= 0; t-- {
		l := dp.via[m.CoordIndex(cur)]
		path[t] = l
		cur = l.From
	}
	return path
}

// lineSearch minimizes a convex function on [0,1] by ternary search.
func lineSearch(f func(float64) float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if f(m1) <= f(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	g := (lo + hi) / 2
	if f(g) >= f(0) {
		return 0
	}
	return g
}
