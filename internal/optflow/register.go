package optflow

import (
	"fmt"

	"repro/internal/multipath"
	"repro/internal/route"
	"repro/internal/solve"
)

// maxMPRoute computes the continuous-optimal max-MP fractional routing
// with Frank–Wolfe and materializes it as explicit per-path flows via flow
// decomposition. The caller's evaluation still applies the instance's own
// (possibly discrete) model, so quantization costs appear in the reported
// power. Options.FWMaxIters and Options.FWTolerance bound the solve.
func maxMPRoute(in solve.Instance, o solve.Options) (route.Routing, error) {
	if err := in.Validate(); err != nil {
		return route.Routing{}, err
	}
	sol, err := SolveWith(in.Mesh, in.Model, in.Comms,
		Options{MaxIters: o.FWMaxIters, Tolerance: o.FWTolerance}, o.Workspace)
	if err != nil {
		return route.Routing{}, err
	}
	var flows []route.Flow
	for _, c := range in.Comms {
		field := multipath.NewFlowField(in.Mesh, c.Src, c.Dst, c.Rate)
		for id, v := range sol.PerComm[c.ID] {
			field.Add(in.Mesh.LinkByID(id), v)
		}
		part, err := field.Decompose(c.ID)
		if err != nil {
			return route.Routing{}, fmt.Errorf("optflow: decomposing comm %d: %w", c.ID, err)
		}
		flows = append(flows, part...)
	}
	return route.Routing{Mesh: in.Mesh, Flows: flows}, nil
}

func init() {
	solve.Register(solve.Func{PolicyName: "MAXMP", RouteFunc: maxMPRoute})
}
