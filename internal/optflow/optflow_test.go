package optflow

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/exact"
	"repro/internal/mesh"
	"repro/internal/multipath"
	"repro/internal/power"
	"repro/internal/workload"
)

// Figure 2 with continuous scaling: the max-MP optimum splits the total
// 4 units evenly over both corner paths, 2 per link: power 2·(2³+2³) = 32,
// exactly the paper's 2-MP routing.
func TestSolveFigure2Optimum(t *testing.T) {
	m := mesh.MustNew(2, 2)
	model := power.Figure2()
	set := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 3},
	}
	sol, err := Solve(m, model, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Power-32) > 1e-3 {
		t.Fatalf("optimal power = %.6f, want 32 (gap %g, iters %d)", sol.Power, sol.Gap, sol.Iters)
	}
	// All four links balanced at 2.
	for id, v := range sol.Loads {
		if v > 0 && math.Abs(v-2) > 1e-2 {
			t.Errorf("link %d load %g, want 2", id, v)
		}
	}
}

// A single communication spreads over its whole diamond: on a 2×2 mesh the
// optimum halves the flow, 4·(δ/2)^α.
func TestSingleCommSpreads(t *testing.T) {
	m := mesh.MustNew(2, 2)
	model := power.Figure2()
	set := comm.Set{{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 2}}
	sol, err := Solve(m, model, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * math.Pow(1, 3)
	if math.Abs(sol.Power-want) > 1e-3 {
		t.Fatalf("power %g, want %g", sol.Power, want)
	}
}

// Flow conservation: each communication's fractional flow ships its full
// rate out of the source.
func TestPerCommConservation(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitzContinuous()
	set := workload.New(m, 5).Uniform(10, 100, 2000)
	sol, err := Solve(m, model, set, Options{MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range set {
		out := 0.0
		for id, v := range sol.PerComm[c.ID] {
			if l := m.LinkByID(id); l.From == c.Src {
				out += v
			}
		}
		if math.Abs(out-c.Rate) > 1e-6*c.Rate+1e-9 {
			t.Errorf("comm %d ships %g from source, want %g", c.ID, out, c.Rate)
		}
	}
	// Loads equal the superposition of per-comm flows.
	sum := make([]float64, m.LinkIDSpace())
	for _, flow := range sol.PerComm {
		for id, v := range flow {
			sum[id] += v
		}
	}
	for id := range sum {
		if math.Abs(sum[id]-sol.Loads[id]) > 1e-6 {
			t.Fatalf("link %d: superposition %g != loads %g", id, sum[id], sol.Loads[id])
		}
	}
}

// The optimum is sandwiched: ideal-share lower bound ≤ optflow ≤ exact
// 1-MP optimum (single-path is a restriction of max-MP).
func TestOptimumSandwich(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.Model{Pleak: 0, P0: 5.41, Alpha: 2.95, MaxBW: 1e18, FreqUnit: 1000}
	for seed := int64(0); seed < 6; seed++ {
		set := workload.New(m, 40+seed).Uniform(5, 200, 2500)
		sol, err := Solve(m, model, set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lb := exact.IdealShareLowerBound(m, model, set)
		if sol.Power < lb-1e-6*lb {
			t.Fatalf("seed %d: optflow %g beats the ideal-share bound %g", seed, sol.Power, lb)
		}
		r, ok, err := exact.Solve(m, model, set)
		if err != nil || !ok {
			t.Fatalf("seed %d: exact: ok=%v err=%v", seed, ok, err)
		}
		loads := r.Loads()
		b, err := model.Total(loads)
		if err != nil {
			t.Fatal(err)
		}
		// Compare dynamic-only (optflow excludes static).
		if sol.Power > b.Dynamic+1e-6*b.Dynamic {
			t.Fatalf("seed %d: optflow %g exceeds 1-MP optimum %g", seed, sol.Power, b.Dynamic)
		}
	}
}

// The Theorem 1 hand-built pattern is a valid max-MP flow, so the true
// optimum must be at or below its power — and within its vicinity, since
// the proof shows the pattern is order-optimal.
func TestOptimumBelowTheorem1Pattern(t *testing.T) {
	pp := 3
	flow, err := multipath.Theorem1Flow(pp, 1000)
	if err != nil {
		t.Fatal(err)
	}
	model := power.Theory(3)
	pat, err := flow.Power(model)
	if err != nil {
		t.Fatal(err)
	}
	p := 2 * pp
	m := mesh.MustNew(p, p)
	set := comm.Set{{ID: 0, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: p, V: p}, Rate: 1000}}
	sol, err := Solve(m, model, set, Options{MaxIters: 800, Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Power > pat.Total()+1e-6*pat.Total() {
		t.Fatalf("optimum %g above the Figure 4 pattern %g", sol.Power, pat.Total())
	}
	// The pattern is order-optimal: the proof bounds it by a constant
	// multiple (≈4–5× at this size) of the ideal-share floor, so the
	// true optimum sits within a one-digit factor below it.
	if sol.Power < pat.Total()/8 {
		t.Fatalf("optimum %g implausibly far below the order-optimal pattern %g", sol.Power, pat.Total())
	}
	// And never below the ideal-share lower bound.
	lb := exact.IdealShareLowerBound(m, model, set)
	if sol.Power < lb-1e-6*lb {
		t.Fatalf("optimum %g beats the ideal-share bound %g", sol.Power, lb)
	}
}

// Objective decreases monotonically across increasing iteration budgets.
func TestMoreIterationsNeverWorse(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitzContinuous()
	set := workload.New(m, 77).Uniform(15, 100, 2000)
	prev := math.Inf(1)
	for _, iters := range []int{1, 5, 20, 100} {
		sol, err := Solve(m, model, set, Options{MaxIters: iters, Tolerance: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Power > prev+1e-6 {
			t.Fatalf("power increased with more iterations: %g after %d", sol.Power, iters)
		}
		prev = sol.Power
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	m := mesh.MustNew(2, 2)
	bad := comm.Set{{ID: 1, Src: mesh.Coord{U: 9, V: 9}, Dst: mesh.Coord{U: 1, V: 1}, Rate: 1}}
	if _, err := Solve(m, power.Figure2(), bad, Options{}); err == nil {
		t.Error("invalid set accepted")
	}
	linear := power.Figure2()
	linear.Alpha = 1
	good := comm.Set{{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1}}
	if _, err := Solve(m, linear, good, Options{}); err == nil {
		t.Error("non-convex alpha accepted")
	}
}
