package comm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mesh"
)

func grid() *mesh.Mesh { return mesh.MustNew(8, 8) }

func TestValidate(t *testing.T) {
	m := grid()
	good := Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 100}
	if err := good.Validate(m); err != nil {
		t.Fatalf("valid comm rejected: %v", err)
	}
	bad := []Comm{
		{ID: 2, Src: mesh.Coord{U: 0, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
		{ID: 3, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 9, V: 2}, Rate: 1},
		{ID: 4, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 0},
		{ID: 5, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: -3},
		{ID: 6, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 1}, Rate: 1},
	}
	for _, c := range bad {
		if err := c.Validate(m); err == nil {
			t.Errorf("invalid comm %v accepted", c)
		}
	}
}

func TestSetValidateDuplicateID(t *testing.T) {
	m := grid()
	s := Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 1},
		{ID: 1, Src: mesh.Coord{U: 3, V: 3}, Dst: mesh.Coord{U: 4, V: 4}, Rate: 1},
	}
	if err := s.Validate(m); err == nil {
		t.Error("duplicate id accepted")
	}
}

func TestTotals(t *testing.T) {
	s := Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 4}, Rate: 10}, // len 3
		{ID: 2, Src: mesh.Coord{U: 2, V: 2}, Dst: mesh.Coord{U: 4, V: 5}, Rate: 5},  // len 5
	}
	if got := s.TotalRate(); got != 15 {
		t.Errorf("TotalRate = %g, want 15", got)
	}
	if got := s.TotalVolume(); got != 10*3+5*5 {
		t.Errorf("TotalVolume = %g, want %d", got, 10*3+5*5)
	}
}

func TestSortedOrders(t *testing.T) {
	s := Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 2}, Rate: 5},  // len 1, density 5
		{ID: 2, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 5, V: 5}, Rate: 8},  // len 8, density 1
		{ID: 3, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 3}, Rate: 12}, // len 3, density 4
	}
	checkIDs := func(name string, got Set, want []int) {
		t.Helper()
		for i, id := range want {
			if got[i].ID != id {
				t.Errorf("%s: order = %v, want IDs %v", name, got, want)
				return
			}
		}
	}
	checkIDs("weight-desc", s.Sorted(ByWeightDesc), []int{3, 2, 1})
	checkIDs("weight-asc", s.Sorted(ByWeightAsc), []int{1, 2, 3})
	checkIDs("length-desc", s.Sorted(ByLengthDesc), []int{2, 3, 1})
	checkIDs("density-desc", s.Sorted(ByDensityDesc), []int{1, 3, 2})
	// Original set untouched.
	if s[0].ID != 1 || s[1].ID != 2 {
		t.Error("Sorted mutated the receiver")
	}
}

func TestSortedTieBreaksByID(t *testing.T) {
	s := Set{
		{ID: 9, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 2}, Rate: 5},
		{ID: 2, Src: mesh.Coord{U: 2, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 5},
	}
	got := s.Sorted(ByWeightDesc)
	if got[0].ID != 2 || got[1].ID != 9 {
		t.Errorf("tie not broken by ID: %v", got)
	}
}

func TestSplit(t *testing.T) {
	c := Comm{ID: 7, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 3}
	parts, err := c.Split([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || parts[0].Rate != 1 || parts[1].Rate != 2 {
		t.Fatalf("Split = %v", parts)
	}
	for _, p := range parts {
		if p.ID != 7 || p.Src != c.Src || p.Dst != c.Dst {
			t.Errorf("fragment %v lost identity", p)
		}
	}
	if _, err := c.Split([]float64{1, 1}); err == nil {
		t.Error("wrong-sum split accepted")
	}
	if _, err := c.Split([]float64{3, 0}); err == nil {
		t.Error("zero fragment accepted")
	}
	if _, err := c.Split(nil); err == nil {
		t.Error("empty split accepted")
	}
}

func TestSplitEqualConservesRate(t *testing.T) {
	f := func(rate uint16, s uint8) bool {
		r := float64(rate%5000) + 1
		n := int(s%8) + 1
		c := Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 3, V: 4}, Rate: r}
		parts, err := c.SplitEqual(n)
		if err != nil || len(parts) != n {
			return false
		}
		sum := 0.0
		for _, p := range parts {
			sum += p.Rate
		}
		return math.Abs(sum-r) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendSplitEqualMatchesSplitEqual(t *testing.T) {
	c := Comm{ID: 7, Src: mesh.Coord{U: 1, V: 2}, Dst: mesh.Coord{U: 5, V: 3}, Rate: 1001}
	for s := 1; s <= 6; s++ {
		want, err := c.SplitEqual(s)
		if err != nil {
			t.Fatal(err)
		}
		// Appends after existing content, reusing the backing array.
		dst := make([]Comm, 1, 1+s)
		dst[0] = Comm{ID: -1}
		got, err := c.AppendSplitEqual(dst, s)
		if err != nil {
			t.Fatal(err)
		}
		if &got[0] != &dst[0] || got[0].ID != -1 {
			t.Fatalf("s=%d: AppendSplitEqual did not extend dst in place", s)
		}
		if len(got)-1 != len(want) {
			t.Fatalf("s=%d: appended %d fragments, want %d", s, len(got)-1, len(want))
		}
		for i, w := range want {
			if got[i+1] != w {
				t.Errorf("s=%d fragment %d: got %+v, want %+v", s, i, got[i+1], w)
			}
		}
	}
	if _, err := c.AppendSplitEqual(nil, 0); err == nil {
		t.Error("AppendSplitEqual(0) accepted")
	}
	zero := Comm{ID: 1, Src: mesh.Coord{U: 0, V: 0}, Dst: mesh.Coord{U: 1, V: 0}}
	if _, err := zero.AppendSplitEqual(nil, 2); err == nil {
		t.Error("AppendSplitEqual of a zero-rate comm accepted")
	}
}

func TestSplitEqualRejectsZero(t *testing.T) {
	c := Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 2, V: 2}, Rate: 4}
	if _, err := c.SplitEqual(0); err == nil {
		t.Error("SplitEqual(0) accepted")
	}
}

func TestLengthAndDirection(t *testing.T) {
	c := Comm{Src: mesh.Coord{U: 2, V: 5}, Dst: mesh.Coord{U: 4, V: 1}}
	if c.Length() != 6 {
		t.Errorf("Length = %d, want 6", c.Length())
	}
	if c.Direction() != mesh.DirSW {
		t.Errorf("Direction = %v, want d2(SW)", c.Direction())
	}
}
