package comm

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/mesh"
)

// fileFormat is the on-disk JSON envelope for communication sets, so
// workloads can be exchanged with external tools and replayed exactly.
// Mesh dimensions are stored for validation at load time.
type fileFormat struct {
	P     int    `json:"p"`
	Q     int    `json:"q"`
	Comms []Comm `json:"communications"`
}

// WriteJSON serializes the set together with its mesh dimensions.
func WriteJSON(w io.Writer, m *mesh.Mesh, set Set) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fileFormat{P: m.P(), Q: m.Q(), Comms: set})
}

// ReadJSON loads a communication set and validates it against the stored
// mesh dimensions, returning the mesh and the set.
func ReadJSON(r io.Reader) (*mesh.Mesh, Set, error) {
	var f fileFormat
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, nil, fmt.Errorf("comm: decoding workload: %w", err)
	}
	m, err := mesh.New(f.P, f.Q)
	if err != nil {
		return nil, nil, err
	}
	set := Set(f.Comms)
	if err := set.Validate(m); err != nil {
		return nil, nil, err
	}
	return m, set, nil
}
