package comm

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mesh"
)

func TestJSONRoundTrip(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set := Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 5, V: 6}, Rate: 2800.5},
		{ID: 2, Src: mesh.Coord{U: 2, V: 7}, Dst: mesh.Coord{U: 7, V: 2}, Rate: 1500},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, m, set); err != nil {
		t.Fatal(err)
	}
	m2, set2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.P() != 8 || m2.Q() != 8 {
		t.Errorf("mesh = %v", m2)
	}
	if len(set2) != len(set) {
		t.Fatalf("set size %d", len(set2))
	}
	for i := range set {
		if set[i] != set2[i] {
			t.Errorf("comm %d: %v != %v", i, set[i], set2[i])
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"garbage":      "{not json",
		"bad mesh":     `{"p":0,"q":8,"communications":[]}`,
		"off-mesh dst": `{"p":2,"q":2,"communications":[{"ID":1,"Src":{"U":1,"V":1},"Dst":{"U":9,"V":9},"Rate":5}]}`,
		"zero rate":    `{"p":2,"q":2,"communications":[{"ID":1,"Src":{"U":1,"V":1},"Dst":{"U":2,"V":2},"Rate":0}]}`,
	}
	for name, payload := range cases {
		if _, _, err := ReadJSON(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
