// Package comm models the communications to be routed on the CMP
// (Section 3.2): a set {γ1, …, γnc} where γi = (src core, sink core, δi)
// and δi is the requested bandwidth in Mb/s. The mapping of applications
// to cores is fixed upstream, so communications are anonymous flows
// irrespective of the application that generated them.
package comm

import (
	"fmt"
	"slices"

	"repro/internal/mesh"
)

// Comm is one communication γi = (C_src, C_snk, δ).
type Comm struct {
	// ID identifies the communication within its set; Split preserves it
	// on every fragment so flows can be reassembled.
	ID int
	// Src and Dst are the source and sink cores.
	Src, Dst mesh.Coord
	// Rate is the requested bandwidth δi (Mb/s).
	Rate float64
}

// String renders γ = (src, dst, δ).
func (c Comm) String() string {
	return fmt.Sprintf("γ%d(%v->%v, %.6g)", c.ID, c.Src, c.Dst, c.Rate)
}

// Length returns ℓi, the Manhattan distance from source to sink, which is
// the length of every admissible (shortest) path for the communication.
func (c Comm) Length() int { return mesh.Manhattan(c.Src, c.Dst) }

// Direction returns the quadrant d_i of the communication (Section 3.3).
func (c Comm) Direction() mesh.Quadrant { return mesh.DirectionOf(c.Src, c.Dst) }

// Validate checks that the communication is well formed on the mesh.
func (c Comm) Validate(m *mesh.Mesh) error {
	return c.ValidateOn(m)
}

// Platform is the minimal core-set view validation needs — satisfied by
// *mesh.Mesh and every topo.Topology, without this package depending on
// either topology machinery or a concrete platform type.
type Platform interface {
	Contains(c mesh.Coord) bool
}

// ValidateOn is Validate against any platform exposing its core set.
func (c Comm) ValidateOn(p Platform) error {
	if !p.Contains(c.Src) {
		return fmt.Errorf("comm %d: source %v outside %v", c.ID, c.Src, p)
	}
	if !p.Contains(c.Dst) {
		return fmt.Errorf("comm %d: sink %v outside %v", c.ID, c.Dst, p)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("comm %d: non-positive rate %g", c.ID, c.Rate)
	}
	if c.Src == c.Dst {
		return fmt.Errorf("comm %d: source equals sink %v", c.ID, c.Src)
	}
	return nil
}

// Set is an ordered collection of communications.
type Set []Comm

// Validate checks every communication and ID uniqueness.
func (s Set) Validate(m *mesh.Mesh) error {
	return s.ValidateOn(m)
}

// ValidateOn is Validate against any platform exposing its core set.
func (s Set) ValidateOn(p Platform) error {
	seen := make(map[int]bool, len(s))
	for _, c := range s {
		if err := c.ValidateOn(p); err != nil {
			return err
		}
		if seen[c.ID] {
			return fmt.Errorf("comm: duplicate id %d", c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}

// TotalRate returns Σ δi, the aggregate requested bandwidth.
func (s Set) TotalRate() float64 {
	total := 0.0
	for _, c := range s {
		total += c.Rate
	}
	return total
}

// TotalVolume returns Σ δi·ℓi, the aggregate link-bandwidth demand: every
// single-path routing produces link loads summing to exactly this value
// (each communication loads ℓi links with δi each).
func (s Set) TotalVolume() float64 {
	total := 0.0
	for _, c := range s {
		total += c.Rate * float64(c.Length())
	}
	return total
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Order is a processing order for greedy heuristics.
type Order int

// The orders considered in Section 5: the paper reports that decreasing
// weight "gives the best results"; the alternatives are kept for the
// ordering ablation benchmark.
const (
	// ByWeightDesc sorts by decreasing rate δi (the paper's choice).
	ByWeightDesc Order = iota
	// ByWeightAsc sorts by increasing rate.
	ByWeightAsc
	// ByLengthDesc sorts by decreasing Manhattan length.
	ByLengthDesc
	// ByDensityDesc sorts by decreasing δi/ℓi.
	ByDensityDesc
)

// String names the order.
func (o Order) String() string {
	switch o {
	case ByWeightDesc:
		return "weight-desc"
	case ByWeightAsc:
		return "weight-asc"
	case ByLengthDesc:
		return "length-desc"
	case ByDensityDesc:
		return "density-desc"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// Sorted returns a copy of the set sorted by the given order. Ties break
// by ID so the result is deterministic.
func (s Set) Sorted(o Order) Set {
	return s.SortedInto(nil, o)
}

// SortedInto is Sorted building into dst (reusing its backing array) — the
// scratch-reusing form for the greedy heuristics' per-call ordering. The
// ordering is identical to Sorted: the requested order with ties broken by
// increasing ID, a total order on valid (unique-ID) sets.
func (s Set) SortedInto(dst Set, o Order) Set {
	out := append(dst[:0], s...)
	less := func(a, b Comm) bool { return a.Rate > b.Rate }
	switch o {
	case ByWeightAsc:
		less = func(a, b Comm) bool { return a.Rate < b.Rate }
	case ByLengthDesc:
		less = func(a, b Comm) bool { return a.Length() > b.Length() }
	case ByDensityDesc:
		less = func(a, b Comm) bool {
			la, lb := a.Length(), b.Length()
			if la == 0 || lb == 0 {
				return la > lb
			}
			return a.Rate/float64(la) > b.Rate/float64(lb)
		}
	}
	slices.SortFunc(out, func(a, b Comm) int {
		if less(a, b) {
			return -1
		}
		if less(b, a) {
			return 1
		}
		return a.ID - b.ID
	})
	return out
}

// Split divides a communication into parts with the given rates, all
// sharing γi's endpoints and ID, per the s-MP rule of Section 3.3:
// Σ parts = δi. It returns an error if the rates do not sum to the
// original (within 1e-9) or any part is non-positive.
func (c Comm) Split(rates []float64) ([]Comm, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("comm %d: empty split", c.ID)
	}
	sum := 0.0
	for _, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("comm %d: non-positive split rate %g", c.ID, r)
		}
		sum += r
	}
	if diff := sum - c.Rate; diff > 1e-9 || diff < -1e-9 {
		return nil, fmt.Errorf("comm %d: split rates sum to %g, want %g", c.ID, sum, c.Rate)
	}
	out := make([]Comm, len(rates))
	for i, r := range rates {
		out[i] = Comm{ID: c.ID, Src: c.Src, Dst: c.Dst, Rate: r}
	}
	return out, nil
}

// SplitEqual divides the communication into s equal parts.
func (c Comm) SplitEqual(s int) ([]Comm, error) {
	out, err := c.AppendSplitEqual(nil, s)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AppendSplitEqual appends the s equal fragments of the communication to
// dst and returns the extended slice — the allocation-free form of
// SplitEqual for pooled callers (the s-MP solvers fragment every
// communication of every trial, so the intermediate rate and part slices
// dominated their allocation profile). The fragments are identical to
// SplitEqual's: same ID and endpoints, Rate/s each.
func (c Comm) AppendSplitEqual(dst []Comm, s int) ([]Comm, error) {
	if s < 1 {
		return dst, fmt.Errorf("comm %d: split count %d < 1", c.ID, s)
	}
	r := c.Rate / float64(s)
	if r <= 0 {
		return dst, fmt.Errorf("comm %d: non-positive split rate %g", c.ID, r)
	}
	for i := 0; i < s; i++ {
		dst = append(dst, Comm{ID: c.ID, Src: c.Src, Dst: c.Dst, Rate: r})
	}
	return dst, nil
}
