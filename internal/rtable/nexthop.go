package rtable

import (
	"fmt"

	"repro/internal/mesh"
)

// Graph is the minimal topology view CompileNextHops needs: dense core
// indices and dense link identifiers over a directed graph. It is a
// strict subset of topo.Topology, declared here so rtable does not
// depend on the topo package (route — which rtable imports — does).
type Graph interface {
	NumCores() int
	CoordAt(i int) mesh.Coord
	CoordIndex(c mesh.Coord) int
	LinkIDSpace() int
	LinkID(l mesh.Link) int
	LinkByID(id int) mesh.Link
	Links() []mesh.Link
}

// NextHops is a precompiled all-pairs forwarding table: for every
// (node, destination) core pair it stores the dense link id of the
// first hop of one deterministic shortest path, plus the shortest-path
// hop distance. Non-mesh topologies (torus, circulant) route with one
// of these tables — the table-based deployment mode generalized from
// per-flow tables to per-destination tables.
//
// Determinism: ties between equal-length paths are broken toward the
// smallest outgoing link id at every node, so the compiled routes are a
// pure function of the graph.
type NextHops struct {
	n     int     // number of cores
	space int     // link id space of the compiled graph
	next  []int32 // next[dst*n+node] = link id of first hop node->dst, -1 at node==dst
	dist  []int32 // dist[dst*n+node] = hop distance node->dst, -1 if unreachable
}

// CompileNextHops builds the all-pairs table with one reverse BFS per
// destination: O(NumCores · (NumCores + NumLinks)) time, two int32
// slices of NumCores² entries. It returns an error if some core cannot
// reach some other core.
func CompileNextHops(g Graph) (*NextHops, error) {
	n := g.NumCores()
	t := &NextHops{
		n:     n,
		space: g.LinkIDSpace(),
		next:  make([]int32, n*n),
		dist:  make([]int32, n*n),
	}

	// Per-node adjacency in both directions, each node's link list in
	// ascending link id order (Links() enumerates ids in ascending
	// order, so appending preserves it). The reverse BFS over in-links
	// computes distances; the out-link scan picks first hops.
	links := g.Links()
	type adj struct {
		off  []int32 // off[i]..off[i+1] bounds node i's links
		link []int32 // link ids
	}
	build := func(nodeOf func(mesh.Link) mesh.Coord) adj {
		deg := make([]int32, n)
		for _, l := range links {
			deg[g.CoordIndex(nodeOf(l))]++
		}
		off := make([]int32, n+1)
		for i := 0; i < n; i++ {
			off[i+1] = off[i] + deg[i]
		}
		ids := make([]int32, len(links))
		fill := make([]int32, n)
		for _, l := range links {
			at := g.CoordIndex(nodeOf(l))
			ids[off[at]+fill[at]] = int32(g.LinkID(l))
			fill[at]++
		}
		return adj{off: off, link: ids}
	}
	in := build(func(l mesh.Link) mesh.Coord { return l.To })
	out := build(func(l mesh.Link) mesh.Coord { return l.From })

	// endpoint[id] caches CoordIndex of each link's endpoints so the
	// per-destination loops stay free of interface calls.
	from := make([]int32, len(links))
	to := make([]int32, len(links))
	byID := make(map[int32]int, len(links))
	for i, l := range links {
		id := int32(g.LinkID(l))
		byID[id] = i
		from[i] = int32(g.CoordIndex(l.From))
		to[i] = int32(g.CoordIndex(l.To))
	}

	queue := make([]int32, 0, n)
	for dst := 0; dst < n; dst++ {
		next := t.next[dst*n : (dst+1)*n]
		dist := t.dist[dst*n : (dst+1)*n]
		for i := range next {
			next[i] = -1
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], int32(dst))
		for head := 0; head < len(queue); head++ {
			node := queue[head]
			d := dist[node]
			for _, id := range in.link[in.off[node]:in.off[node+1]] {
				pred := from[byID[id]]
				if dist[pred] < 0 {
					dist[pred] = d + 1
					queue = append(queue, pred)
				}
			}
		}
		for node := 0; node < n; node++ {
			if dist[node] < 0 {
				return nil, fmt.Errorf("rtable: core %v cannot reach %v",
					g.CoordAt(node), g.CoordAt(dst))
			}
			if node == dst {
				continue
			}
			// Smallest-id out-link that makes progress wins the tie.
			for _, id := range out.link[out.off[node]:out.off[node+1]] {
				if dist[to[byID[id]]] == dist[node]-1 {
					next[node] = id
					break
				}
			}
		}
	}
	return t, nil
}

// Dist returns the shortest-path hop distance between two core indices.
func (t *NextHops) Dist(srcIdx, dstIdx int) int {
	return int(t.dist[dstIdx*t.n+srcIdx])
}

// NextLink returns the link id of the first hop from nodeIdx toward
// dstIdx, or -1 when nodeIdx == dstIdx.
func (t *NextHops) NextLink(nodeIdx, dstIdx int) int {
	return int(t.next[dstIdx*t.n+nodeIdx])
}

// AppendRoute appends the table's shortest path from src to dst onto
// buf, resolving hops through g (which must be the graph the table was
// compiled from).
func (t *NextHops) AppendRoute(buf []mesh.Link, g Graph, src, dst mesh.Coord) []mesh.Link {
	node, dstIdx := g.CoordIndex(src), g.CoordIndex(dst)
	for node != dstIdx {
		l := g.LinkByID(t.NextLink(node, dstIdx))
		buf = append(buf, l)
		node = g.CoordIndex(l.To)
	}
	return buf
}
