package rtable

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/multipath"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

// Every heuristic's routing compiles into verifiable tables.
func TestBuildAndVerifyAllHeuristics(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := workload.New(m, 9).Uniform(25, 100, 2000)
	for _, h := range heur.All() {
		r, err := h.Route(heur.Instance{Mesh: m, Model: model, Comms: set})
		if err != nil {
			t.Fatal(err)
		}
		tables, err := Build(r)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if err := tables.Verify(r); err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
	}
}

// Multi-path routings get distinct path indices and verify end to end.
func TestMultiPathTables(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := workload.New(m, 4).Uniform(10, 500, 2500)
	r, err := multipath.EqualSplit{S: 3}.Route(m, model, set)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := tables.Verify(r); err != nil {
		t.Fatal(err)
	}
	// Each communication contributes 3 paths: the source router holds
	// entries with path indices 0,1,2 for each comm starting there.
	st := tables.Stats()
	if st.Entries == 0 || st.Routers == 0 || st.MaxEntries == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
}

func TestLookupAndLocalEjection(t *testing.T) {
	m := mesh.MustNew(4, 4)
	g := comm.Comm{ID: 7, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 3, V: 2}, Rate: 100}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: g, Path: route.XY(g.Src, g.Dst)}}}
	tables, err := Build(r)
	if err != nil {
		t.Fatal(err)
	}
	key := FlowKey{CommID: 7, PathIndex: 0}
	p, ok := tables.Lookup(g.Src, key)
	if !ok || p != PortEast {
		t.Errorf("source port = %v (ok=%v), want E", p, ok)
	}
	p, ok = tables.Lookup(g.Dst, key)
	if !ok || p != PortLocal {
		t.Errorf("sink port = %v (ok=%v), want LOCAL", p, ok)
	}
	if _, ok := tables.Lookup(mesh.Coord{U: 4, V: 4}, key); ok {
		t.Error("entry at untouched router")
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	m := mesh.MustNew(4, 4)
	g := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 3, V: 3}, Rate: 1}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: g, Path: route.XY(g.Src, g.Dst)}}}
	tables, err := Build(r)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: flip the entry at the bend.
	key := FlowKey{CommID: 1, PathIndex: 0}
	tables.entries[mesh.Coord{U: 1, V: 3}][key] = PortNorth
	if err := tables.Verify(r); err == nil {
		t.Error("tampered table verified")
	}
	// Remove an entry entirely.
	tables2, _ := Build(r)
	delete(tables2.entries[mesh.Coord{U: 2, V: 3}], key)
	if err := tables2.Verify(r); err == nil {
		t.Error("missing entry verified")
	}
}

func TestBuildRejectsEmptyPath(t *testing.T) {
	m := mesh.MustNew(2, 2)
	g := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 2}, Rate: 1}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: g, Path: nil}}}
	if _, err := Build(r); err == nil {
		t.Error("empty path accepted")
	}
}

func TestWriteJSONDeterministicAndParseable(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := workload.New(m, 2).Uniform(10, 100, 1000)
	r, err := (heur.PR{}).Route(heur.Instance{Mesh: m, Model: model, Comms: set})
	if err != nil {
		t.Fatal(err)
	}
	tables, err := Build(r)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := tables.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tables.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serialization not deterministic")
	}
	var rows []map[string]any
	if err := json.Unmarshal(a.Bytes(), &rows); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if len(rows) != tables.Stats().Entries {
		t.Errorf("serialized %d rows, stats say %d", len(rows), tables.Stats().Entries)
	}
}

func TestPortString(t *testing.T) {
	names := map[Port]string{PortEast: "E", PortSouth: "S", PortWest: "W", PortNorth: "N", PortLocal: "LOCAL"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Port %d = %q, want %q", int(p), p.String(), want)
		}
	}
}
