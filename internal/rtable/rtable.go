// Package rtable materializes routings as per-router forwarding tables,
// the "table-based routing" deployment mode the paper names in its
// introduction (the alternative being source routing). Each router maps a
// flow key — communication ID plus path index, so split communications
// keep distinct entries — to an output port; tables are verified by
// walking every flow from source to sink and can be serialized for a
// configuration tool.
package rtable

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/mesh"
	"repro/internal/route"
)

// Port is a router output: one of the four mesh directions or the local
// core ejection port.
type Port int

// The five router ports.
const (
	PortEast Port = iota
	PortSouth
	PortWest
	PortNorth
	PortLocal
)

var portNames = [...]string{"E", "S", "W", "N", "LOCAL"}

// String names the port.
func (p Port) String() string {
	if p < 0 || int(p) >= len(portNames) {
		return fmt.Sprintf("Port(%d)", int(p))
	}
	return portNames[p]
}

func portOf(d mesh.Dir) Port {
	switch d {
	case mesh.East:
		return PortEast
	case mesh.South:
		return PortSouth
	case mesh.West:
		return PortWest
	case mesh.North:
		return PortNorth
	}
	panic(fmt.Sprintf("rtable: invalid direction %v", d))
}

// FlowKey identifies one routed path: the communication ID plus the index
// of the path among that communication's flows (0 for 1-MP routings).
type FlowKey struct {
	CommID    int `json:"comm"`
	PathIndex int `json:"path"`
}

// Tables is the complete table-based routing configuration of a mesh.
type Tables struct {
	Mesh *mesh.Mesh
	// entries[core][key] = output port.
	entries map[mesh.Coord]map[FlowKey]Port
}

// Build compiles a routing into per-router tables. Every flow contributes
// one entry per traversed router plus a LOCAL entry at its sink.
func Build(r route.Routing) (*Tables, error) {
	t := &Tables{Mesh: r.Mesh, entries: make(map[mesh.Coord]map[FlowKey]Port)}
	pathIdx := make(map[int]int)
	for _, f := range r.Flows {
		key := FlowKey{CommID: f.Comm.ID, PathIndex: pathIdx[f.Comm.ID]}
		pathIdx[f.Comm.ID]++
		if len(f.Path) == 0 {
			return nil, fmt.Errorf("rtable: empty path for communication %d", f.Comm.ID)
		}
		for _, l := range f.Path {
			if err := t.add(l.From, key, portOf(l.Dir())); err != nil {
				return nil, err
			}
		}
		if err := t.add(f.Comm.Dst, key, PortLocal); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (t *Tables) add(core mesh.Coord, key FlowKey, port Port) error {
	if t.entries[core] == nil {
		t.entries[core] = make(map[FlowKey]Port)
	}
	if prev, ok := t.entries[core][key]; ok && prev != port {
		return fmt.Errorf("rtable: conflicting entries at %v for %+v: %v vs %v",
			core, key, prev, port)
	}
	t.entries[core][key] = port
	return nil
}

// Lookup returns the output port for a flow key at a router.
func (t *Tables) Lookup(core mesh.Coord, key FlowKey) (Port, bool) {
	p, ok := t.entries[core][key]
	return p, ok
}

// Verify walks every flow of the routing through the tables and checks
// that the walk reproduces the flow's path and terminates with a LOCAL
// ejection at the sink.
func (t *Tables) Verify(r route.Routing) error {
	pathIdx := make(map[int]int)
	for _, f := range r.Flows {
		key := FlowKey{CommID: f.Comm.ID, PathIndex: pathIdx[f.Comm.ID]}
		pathIdx[f.Comm.ID]++
		cur := f.Comm.Src
		for hop := 0; ; hop++ {
			port, ok := t.Lookup(cur, key)
			if !ok {
				return fmt.Errorf("rtable: no entry at %v for %+v", cur, key)
			}
			if port == PortLocal {
				if cur != f.Comm.Dst {
					return fmt.Errorf("rtable: %+v ejected at %v, sink is %v", key, cur, f.Comm.Dst)
				}
				if hop != len(f.Path) {
					return fmt.Errorf("rtable: %+v ejected after %d hops, path has %d", key, hop, len(f.Path))
				}
				break
			}
			if hop >= len(f.Path) {
				return fmt.Errorf("rtable: %+v overran its %d-hop path", key, len(f.Path))
			}
			want := f.Path[hop]
			if portOf(want.Dir()) != port || want.From != cur {
				return fmt.Errorf("rtable: %+v diverges at %v: table %v, path hop %v", key, cur, port, want)
			}
			cur = want.To
			if hop > t.Mesh.NumLinks() {
				return fmt.Errorf("rtable: %+v walk did not terminate", key)
			}
		}
	}
	return nil
}

// Stats summarizes hardware-relevant table sizes.
type Stats struct {
	Routers    int // routers holding at least one entry
	Entries    int // total entries across all routers
	MaxEntries int // largest single router table
}

// Stats computes table-size statistics.
func (t *Tables) Stats() Stats {
	var s Stats
	for _, entries := range t.entries {
		s.Routers++
		s.Entries += len(entries)
		if len(entries) > s.MaxEntries {
			s.MaxEntries = len(entries)
		}
	}
	return s
}

// jsonEntry is the serialized form of one table row.
type jsonEntry struct {
	U    int     `json:"u"`
	V    int     `json:"v"`
	Key  FlowKey `json:"key"`
	Port string  `json:"port"`
}

// WriteJSON emits the tables as a deterministic, sorted JSON array.
func (t *Tables) WriteJSON(w io.Writer) error {
	var rows []jsonEntry
	for core, entries := range t.entries {
		for key, port := range entries {
			rows = append(rows, jsonEntry{U: core.U, V: core.V, Key: key, Port: port.String()})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		if a.Key.CommID != b.Key.CommID {
			return a.Key.CommID < b.Key.CommID
		}
		return a.Key.PathIndex < b.Key.PathIndex
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
