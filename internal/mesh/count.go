package mesh

import "math/big"

// PathCount returns the number of Manhattan paths between two cores.
// By Lemma 1 this is the binomial coefficient C(Δu+Δv, Δu) where
// Δu = |a.U−b.U| and Δv = |a.V−b.V|. The result is exact for arbitrary
// distances (big.Int), since the count grows exponentially with the mesh
// size: a 33×33 traversal already exceeds 2^60 paths.
func PathCount(a, b Coord) *big.Int {
	du := int64(abs(a.U - b.U))
	dv := int64(abs(a.V - b.V))
	return new(big.Int).Binomial(du+dv, du)
}

// PathCount64 returns the Manhattan path count as a uint64 and a flag
// reporting whether the value fits without overflow. It is a convenience
// for the small meshes used in the experiments.
func PathCount64(a, b Coord) (n uint64, ok bool) {
	c := PathCount(a, b)
	if !c.IsUint64() {
		return 0, false
	}
	return c.Uint64(), true
}

// EnumeratePaths returns every Manhattan path from src to dst as link
// sequences, in lexicographic move order (at each hop the first move of the
// quadrant before the second). Intended for small instances: the number of
// paths is PathCount(src, dst). The exact solver and the tests use it; the
// heuristics never do.
func (m *Mesh) EnumeratePaths(src, dst Coord) [][]Link {
	if src == dst {
		return [][]Link{nil}
	}
	d := DirectionOf(src, dst)
	box := BoxOf(src, dst)
	moves := d.Moves()
	var out [][]Link
	var prefix []Link
	var rec func(c Coord)
	rec = func(c Coord) {
		if c == dst {
			path := make([]Link, len(prefix))
			copy(path, prefix)
			out = append(out, path)
			return
		}
		for _, mv := range moves {
			n := c.Step(mv)
			if !box.Contains(n) {
				continue
			}
			prefix = append(prefix, Link{From: c, To: n})
			rec(n)
			prefix = prefix[:len(prefix)-1]
		}
	}
	rec(src)
	return out
}
