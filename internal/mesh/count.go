package mesh

import (
	"math/big"
	"math/bits"
)

// PathCount returns the number of Manhattan paths between two cores.
// By Lemma 1 this is the binomial coefficient C(Δu+Δv, Δu) where
// Δu = |a.U−b.U| and Δv = |a.V−b.V|. The result is exact for arbitrary
// distances (big.Int), since the count grows exponentially with the mesh
// size: a 33×33 traversal already exceeds 2^60 paths.
func PathCount(a, b Coord) *big.Int {
	du := int64(abs(a.U - b.U))
	dv := int64(abs(a.V - b.V))
	return new(big.Int).Binomial(du+dv, du)
}

// PathCount64 returns the Manhattan path count as a uint64 and a flag
// reporting whether the value fits without overflow. It is the
// allocation-free form the exact solver's prepare path calls per comm:
// the multiplicative binomial C(n, k) = Π (n−k+i)/i stays integral at
// every step (the running value after step i is C(n−k+i, i)), so plain
// uint64 arithmetic with an overflow check replaces big.Int.
func PathCount64(a, b Coord) (n uint64, ok bool) {
	du := uint64(abs(a.U - b.U))
	dv := uint64(abs(a.V - b.V))
	k := du
	if dv < k {
		k = dv
	}
	total := du + dv
	r := uint64(1)
	for i := uint64(1); i <= k; i++ {
		hi, lo := bits.Mul64(r, total-k+i)
		if hi != 0 {
			return 0, false
		}
		r = lo / i
	}
	return r, true
}

// EnumeratePaths returns every Manhattan path from src to dst as link
// sequences, in lexicographic move order (at each hop the first move of the
// quadrant before the second). Intended for small instances: the number of
// paths is PathCount(src, dst). The exact solver and the tests use it; the
// heuristics never do.
func (m *Mesh) EnumeratePaths(src, dst Coord) [][]Link {
	if src == dst {
		return [][]Link{nil}
	}
	d := DirectionOf(src, dst)
	box := BoxOf(src, dst)
	moves := d.Moves()
	var out [][]Link
	var prefix []Link
	var rec func(c Coord)
	rec = func(c Coord) {
		if c == dst {
			path := make([]Link, len(prefix))
			copy(path, prefix)
			out = append(out, path)
			return
		}
		for _, mv := range moves {
			n := c.Step(mv)
			if !box.Contains(n) {
				continue
			}
			prefix = append(prefix, Link{From: c, To: n})
			rec(n)
			prefix = prefix[:len(prefix)-1]
		}
	}
	rec(src)
	return out
}
