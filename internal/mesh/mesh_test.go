package mesh

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsInvalidDims(t *testing.T) {
	for _, tc := range [][2]int{{0, 5}, {5, 0}, {-1, 3}, {0, 0}} {
		if _, err := New(tc[0], tc[1]); err == nil {
			t.Errorf("New(%d,%d): expected error", tc[0], tc[1])
		}
	}
	if _, err := New(1, 1); err != nil {
		t.Fatalf("New(1,1): %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0,0) did not panic")
		}
	}()
	MustNew(0, 0)
}

func TestNumLinksFormula(t *testing.T) {
	for p := 1; p <= 6; p++ {
		for q := 1; q <= 6; q++ {
			m := MustNew(p, q)
			want := 2 * (p*(q-1) + (p-1)*q)
			if got := m.NumLinks(); got != want {
				t.Errorf("%v NumLinks = %d, want %d", m, got, want)
			}
			if got := len(m.Links()); got != want {
				t.Errorf("%v len(Links()) = %d, want %d", m, got, want)
			}
		}
	}
}

func TestLinkIDRoundTrip(t *testing.T) {
	m := MustNew(5, 7)
	seen := make(map[int]bool)
	for _, l := range m.Links() {
		id := m.LinkID(l)
		if id < 0 || id >= m.LinkIDSpace() {
			t.Fatalf("LinkID(%v) = %d outside [0,%d)", l, id, m.LinkIDSpace())
		}
		if seen[id] {
			t.Fatalf("duplicate link id %d for %v", id, l)
		}
		seen[id] = true
		if back := m.LinkByID(id); back != l {
			t.Fatalf("LinkByID(LinkID(%v)) = %v", l, back)
		}
	}
}

func TestLinkIDPanicsOnInvalid(t *testing.T) {
	m := MustNew(3, 3)
	bad := []Link{
		{Coord{1, 1}, Coord{1, 3}}, // not neighbors
		{Coord{0, 1}, Coord{1, 1}}, // off mesh
		{Coord{1, 1}, Coord{1, 1}}, // self loop
	}
	for _, l := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LinkID(%v) did not panic", l)
				}
			}()
			m.LinkID(l)
		}()
	}
}

func TestDirDeltaOppositeRoundTrip(t *testing.T) {
	for d := Dir(0); d < numDirs; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("%v: Opposite not involutive", d)
		}
		du, dv := d.Delta()
		ou, ov := d.Opposite().Delta()
		if du+ou != 0 || dv+ov != 0 {
			t.Errorf("%v: Delta and Opposite Delta do not cancel", d)
		}
	}
}

func TestLinkDir(t *testing.T) {
	c := Coord{3, 3}
	for d := Dir(0); d < numDirs; d++ {
		l := Link{From: c, To: c.Step(d)}
		if l.Dir() != d {
			t.Errorf("link %v: Dir = %v want %v", l, l.Dir(), d)
		}
	}
}

func TestManhattanProperties(t *testing.T) {
	f := func(au, av, bu, bv uint8) bool {
		a := Coord{int(au%16) + 1, int(av%16) + 1}
		b := Coord{int(bu%16) + 1, int(bv%16) + 1}
		d := Manhattan(a, b)
		if d != Manhattan(b, a) {
			return false // symmetry
		}
		if (d == 0) != (a == b) {
			return false // identity
		}
		return d >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighborsCount(t *testing.T) {
	m := MustNew(4, 5)
	counts := map[int]int{} // neighbor count -> cores with it
	for _, c := range m.Cores() {
		counts[len(m.Neighbors(c))]++
	}
	// 4 corners with 2 neighbors; edges with 3; interior with 4.
	wantCorners, wantEdges := 4, 2*(4-2)+2*(5-2)
	wantInterior := (4 - 2) * (5 - 2)
	if counts[2] != wantCorners || counts[3] != wantEdges || counts[4] != wantInterior {
		t.Errorf("neighbor histogram = %v, want 2:%d 3:%d 4:%d",
			counts, wantCorners, wantEdges, wantInterior)
	}
}

func TestCoresRowMajor(t *testing.T) {
	m := MustNew(2, 3)
	want := []Coord{{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {2, 3}}
	got := m.Cores()
	if len(got) != len(want) {
		t.Fatalf("len(Cores) = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Cores[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLinkByIDPanicsOutOfRange(t *testing.T) {
	m := MustNew(2, 2)
	for _, id := range []int{-1, m.LinkIDSpace(), m.LinkIDSpace() + 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LinkByID(%d) did not panic", id)
				}
			}()
			m.LinkByID(id)
		}()
	}
}

// CoordIndex is a row-major bijection on the mesh's cores.
func TestCoordIndexRoundTrip(t *testing.T) {
	m := MustNew(4, 7)
	seen := make([]bool, m.NumCores())
	for _, c := range m.Cores() {
		i := m.CoordIndex(c)
		if i < 0 || i >= m.NumCores() || seen[i] {
			t.Fatalf("CoordIndex(%v) = %d (dup or out of range)", c, i)
		}
		seen[i] = true
		if back := m.CoordAt(i); back != c {
			t.Fatalf("CoordAt(%d) = %v, want %v", i, back, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("CoordIndex outside the mesh did not panic")
		}
	}()
	m.CoordIndex(Coord{U: 5, V: 1})
}
