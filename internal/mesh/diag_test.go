package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Every core belongs to exactly four diagonals, one per family, with index
// in {1, …, p+q−1} (Section 3.3).
func TestEveryCoreInExactlyFourDiagonals(t *testing.T) {
	m := MustNew(5, 8)
	for _, c := range m.Cores() {
		for _, d := range []Quadrant{DirSE, DirSW, DirNW, DirNE} {
			k := m.DiagIndex(d, c)
			if k < 1 || k > m.MaxDiagIndex() {
				t.Errorf("%v family %v: index %d out of [1,%d]", c, d, k, m.MaxDiagIndex())
			}
			found := false
			for _, cc := range m.DiagonalCores(d, k) {
				if cc == c {
					found = true
				}
			}
			if !found {
				t.Errorf("%v not listed in its own diagonal D^%v_%d", c, d, k)
			}
		}
	}
}

// Moving along either unit move of a quadrant increases the diagonal index
// by exactly one — the monotonicity that makes shortest paths diagonal-
// ordered (Section 3.3).
func TestDiagIndexMonotoneAlongMoves(t *testing.T) {
	m := MustNew(6, 6)
	for _, d := range []Quadrant{DirSE, DirSW, DirNW, DirNE} {
		for _, c := range m.Cores() {
			for _, mv := range d.Moves() {
				n := c.Step(mv)
				if !m.Contains(n) {
					continue
				}
				if m.DiagIndex(d, n) != m.DiagIndex(d, c)+1 {
					t.Fatalf("family %v: step %v from %v: diag %d -> %d, want +1",
						d, mv, c, m.DiagIndex(d, c), m.DiagIndex(d, n))
				}
			}
		}
	}
}

func TestDirectionOfPaperCases(t *testing.T) {
	cases := []struct {
		src, dst Coord
		want     Quadrant
	}{
		{Coord{1, 1}, Coord{3, 3}, DirSE},
		{Coord{1, 3}, Coord{3, 1}, DirSW},
		{Coord{3, 3}, Coord{1, 1}, DirNW},
		{Coord{3, 1}, Coord{1, 3}, DirNE},
		// Tie-breaking: equality counts as ≤ (paper's definitions).
		{Coord{2, 2}, Coord{2, 4}, DirSE}, // same row, v increasing
		{Coord{2, 2}, Coord{4, 2}, DirSE}, // same column, u increasing
		{Coord{2, 4}, Coord{2, 2}, DirSW}, // same row, v decreasing
		{Coord{4, 2}, Coord{2, 2}, DirNE}, // same column, u decreasing
		{Coord{2, 2}, Coord{2, 2}, DirSE}, // degenerate
	}
	for _, tc := range cases {
		if got := DirectionOf(tc.src, tc.dst); got != tc.want {
			t.Errorf("DirectionOf(%v,%v) = %v, want %v", tc.src, tc.dst, got, tc.want)
		}
	}
}

// ksnk = ksrc + ℓ for every communication (Section 3.3).
func TestSinkDiagonalIndex(t *testing.T) {
	m := MustNew(7, 9)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		src := Coord{rng.Intn(7) + 1, rng.Intn(9) + 1}
		dst := Coord{rng.Intn(7) + 1, rng.Intn(9) + 1}
		d := DirectionOf(src, dst)
		if m.DiagIndex(d, dst) != m.DiagIndex(d, src)+Manhattan(src, dst) {
			t.Fatalf("src %v dst %v family %v: ksnk %d != ksrc %d + ell %d",
				src, dst, d, m.DiagIndex(d, dst), m.DiagIndex(d, src), Manhattan(src, dst))
		}
	}
}

func TestFrontierLinksStructure(t *testing.T) {
	m := MustNew(8, 8)
	src, dst := Coord{2, 2}, Coord{5, 6}
	ell := Manhattan(src, dst)
	d := DirectionOf(src, dst)
	for step := 0; step < ell; step++ {
		links := m.FrontierLinks(src, dst, step)
		if len(links) == 0 {
			t.Fatalf("step %d: empty frontier", step)
		}
		box := BoxOf(src, dst)
		for _, l := range links {
			if !m.ValidLink(l) {
				t.Fatalf("step %d: invalid link %v", step, l)
			}
			if !box.Contains(l.From) || !box.Contains(l.To) {
				t.Fatalf("step %d: link %v leaves bounding box", step, l)
			}
			if m.DiagIndex(d, l.From) != m.DiagIndex(d, src)+step {
				t.Fatalf("step %d: link %v starts on wrong diagonal", step, l)
			}
		}
	}
}

// A straight-line communication has a frontier of exactly one link per
// step; the ideal share then degenerates to the XY routing.
func TestFrontierLinksStraightLine(t *testing.T) {
	m := MustNew(8, 8)
	src, dst := Coord{3, 2}, Coord{3, 7}
	for step := 0; step < Manhattan(src, dst); step++ {
		links := m.FrontierLinks(src, dst, step)
		if len(links) != 1 {
			t.Fatalf("step %d: %d frontier links, want 1", step, len(links))
		}
		want := Link{Coord{3, 2 + step}, Coord{3, 3 + step}}
		if links[0] != want {
			t.Fatalf("step %d: frontier %v, want %v", step, links[0], want)
		}
	}
}

func TestFrontierLinksPanicsOutOfRange(t *testing.T) {
	m := MustNew(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("FrontierLinks out-of-range step did not panic")
		}
	}()
	m.FrontierLinks(Coord{1, 1}, Coord{2, 2}, 2)
}

// The per-diagonal whole-mesh link counts match the closed forms used in
// the proofs of Theorems 1 and 2: for family d=1 on a p×q mesh with q ≥ p,
// |links D_k→D_{k+1}| = 2k for k<p, 2p−1 for p ≤ k < q, 2(q+p−k−1) for k ≥ q.
func TestDiagonalLinkCountsMatchTheorem(t *testing.T) {
	p, q := 4, 7
	m := MustNew(p, q)
	for k := 1; k <= p+q-2; k++ {
		var want int
		switch {
		case k < p:
			want = 2 * k
		case k < q:
			want = 2*p - 1
		default:
			want = 2 * (q + p - k - 1)
		}
		if got := len(m.DiagonalLinks(DirSE, k)); got != want {
			t.Errorf("k=%d: %d diagonal links, want %d", k, got, want)
		}
	}
}

// The closed-form DiagonalLinkCount agrees with the materialized link set
// for every family and every index, including out-of-range ones, across
// square, flat, and tall meshes.
func TestDiagonalLinkCountMatchesDiagonalLinks(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 6}, {2, 2}, {3, 5}, {4, 7}, {7, 4}, {8, 8}} {
		m := MustNew(dims[0], dims[1])
		for _, d := range []Quadrant{DirSE, DirSW, DirNW, DirNE} {
			for k := -1; k <= m.MaxDiagIndex()+2; k++ {
				want := len(m.DiagonalLinks(d, k))
				if got := m.DiagonalLinkCount(d, k); got != want {
					t.Errorf("%dx%d %v k=%d: DiagonalLinkCount=%d, len(DiagonalLinks)=%d",
						dims[0], dims[1], d, k, got, want)
				}
			}
		}
	}
}

// Each link lies between successive diagonals in exactly two of the four
// families (remark in the proof of Theorem 2).
func TestLinkBelongsToTwoFamilies(t *testing.T) {
	m := MustNew(5, 5)
	for _, l := range m.Links() {
		n := 0
		for _, d := range []Quadrant{DirSE, DirSW, DirNW, DirNE} {
			if m.DiagIndex(d, l.To) == m.DiagIndex(d, l.From)+1 {
				n++
			}
		}
		if n != 2 {
			t.Errorf("link %v: advances %d families, want 2", l, n)
		}
	}
}

func TestBoxOf(t *testing.T) {
	f := func(au, av, bu, bv uint8) bool {
		a := Coord{int(au%10) + 1, int(av%10) + 1}
		b := Coord{int(bu%10) + 1, int(bv%10) + 1}
		box := BoxOf(a, b)
		if !box.Contains(a) || !box.Contains(b) {
			return false
		}
		return box.Cores() == (abs(a.U-b.U)+1)*(abs(a.V-b.V)+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// AppendFrontierLinks' closed-form diagonal enumeration must reproduce the
// reference DiagonalCores scan exactly — same links, same order — for
// every geometry on square and skewed meshes.
func TestAppendFrontierLinksMatchesReferenceScan(t *testing.T) {
	for _, dims := range [][2]int{{8, 8}, {3, 9}, {9, 3}, {1, 7}, {7, 1}} {
		m := MustNew(dims[0], dims[1])
		reference := func(src, dst Coord, step int) []Link {
			d := DirectionOf(src, dst)
			box := BoxOf(src, dst)
			k := m.DiagIndex(d, src) + step
			var out []Link
			for _, c := range m.DiagonalCores(d, k) {
				if !box.Contains(c) {
					continue
				}
				for _, mv := range d.Moves() {
					n := c.Step(mv)
					if box.Contains(n) && m.Contains(n) {
						out = append(out, Link{From: c, To: n})
					}
				}
			}
			return out
		}
		var buf []Link
		for _, src := range m.Cores() {
			for _, dst := range m.Cores() {
				if src == dst {
					continue
				}
				for step := 0; step < Manhattan(src, dst); step++ {
					want := reference(src, dst, step)
					buf = m.AppendFrontierLinks(buf[:0], src, dst, step)
					if len(buf) != len(want) {
						t.Fatalf("%v: %v->%v step %d: %d links, want %d", m, src, dst, step, len(buf), len(want))
					}
					for i := range want {
						if buf[i] != want[i] {
							t.Fatalf("%v: %v->%v step %d: link %d = %v, want %v", m, src, dst, step, i, buf[i], want[i])
						}
					}
				}
			}
		}
	}
}
