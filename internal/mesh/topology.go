package mesh

import "fmt"

// The methods in this file make *Mesh satisfy the repo-wide
// topo.Topology interface (see internal/topo). The mesh is the canonical
// topology: its closed-form link identifiers, Manhattan distance and
// XY-order routes are what every other implementation is measured
// against, and the rest of the stack keeps calling the concrete *Mesh
// fast paths (LinkIDFast, PathCount64, AppendFrontierLinks) whenever the
// platform is known to be a mesh.

// Name returns the topology family name, "mesh".
func (m *Mesh) Name() string { return "mesh" }

// Spec returns the canonical topology spec string, e.g. "mesh:8x8".
// Two topologies with equal Spec strings are interchangeable: same core
// set, same link identifier space, same routes.
func (m *Mesh) Spec() string { return fmt.Sprintf("mesh:%dx%d", m.p, m.q) }

// Distance returns the length of every shortest path between two cores —
// on the mesh, the Manhattan distance.
func (m *Mesh) Distance(a, b Coord) int { return Manhattan(a, b) }

// Carrier returns the coordinate-carrier grid of the topology: a plain
// mesh over the same core set, used by workload generators and scenario
// sources to draw endpoints. For the mesh itself this is the mesh.
func (m *Mesh) Carrier() *Mesh { return m }

// AppendRoute appends one deterministic shortest path from src to dst to
// buf and returns the extended slice. The mesh's canonical route is the
// XY-order Manhattan path: all horizontal moves first, then all vertical
// moves. AppendRoute(buf, c, c) appends nothing.
func (m *Mesh) AppendRoute(buf []Link, src, dst Coord) []Link {
	if !m.Contains(src) || !m.Contains(dst) {
		panic(fmt.Sprintf("mesh: route endpoints %v -> %v outside %v", src, dst, m))
	}
	at := src
	for at.V != dst.V {
		d := East
		if dst.V < at.V {
			d = West
		}
		next := at.Step(d)
		buf = append(buf, Link{From: at, To: next})
		at = next
	}
	for at.U != dst.U {
		d := South
		if dst.U < at.U {
			d = North
		}
		next := at.Step(d)
		buf = append(buf, Link{From: at, To: next})
		at = next
	}
	return buf
}
