// Package mesh models the 2-D mesh interconnect of a chip multiprocessor
// (CMP) as described in Section 3.1 of Benoit, Melhem, Renaud-Goud and
// Robert, "Power-aware Manhattan routing on chip multiprocessors"
// (INRIA RR-7752 / IPDPS 2012).
//
// The platform is a p×q grid of homogeneous cores C(u,v), 1 ≤ u ≤ p,
// 1 ≤ v ≤ q, with two unidirectional links between every pair of
// neighboring cores. The package provides coordinates, directed links with
// dense integer identifiers (for O(1) load accounting), the four diagonal
// families D^(d)_k of Section 3.3, and Manhattan-path frontier enumeration
// used by the routing heuristics and lower bounds.
package mesh

import (
	"fmt"
)

// Coord identifies a core C(u,v) on the mesh. Coordinates are 1-based to
// match the paper: U is the row index (1..P) and V the column index (1..Q).
type Coord struct {
	U, V int
}

// String renders the coordinate in the paper's C(u,v) notation.
func (c Coord) String() string { return fmt.Sprintf("C(%d,%d)", c.U, c.V) }

// Dir is one of the four unit moves on the mesh.
type Dir int

// The four link directions. East increases the column index, South
// increases the row index, West and North decrease them respectively.
const (
	East Dir = iota
	South
	West
	North
	numDirs
)

var dirNames = [...]string{"E", "S", "W", "N"}

// String returns a one-letter compass name for the direction.
func (d Dir) String() string {
	if d < 0 || int(d) >= len(dirNames) {
		return fmt.Sprintf("Dir(%d)", int(d))
	}
	return dirNames[d]
}

// Delta returns the (du, dv) displacement of one step in direction d.
func (d Dir) Delta() (du, dv int) {
	switch d {
	case East:
		return 0, 1
	case South:
		return 1, 0
	case West:
		return 0, -1
	case North:
		return -1, 0
	}
	panic(fmt.Sprintf("mesh: invalid direction %d", int(d)))
}

// Opposite returns the reverse direction.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case South:
		return North
	case West:
		return East
	case North:
		return South
	}
	panic(fmt.Sprintf("mesh: invalid direction %d", int(d)))
}

// Step returns the neighboring coordinate one hop away in direction d.
// The result may fall outside the mesh; callers check with Mesh.Contains.
func (c Coord) Step(d Dir) Coord {
	du, dv := d.Delta()
	return Coord{c.U + du, c.V + dv}
}

// Manhattan returns the Manhattan (L1) distance between two cores, which is
// the length of every shortest path between them (Section 3.3).
func Manhattan(a, b Coord) int {
	return abs(a.U-b.U) + abs(a.V-b.V)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Link is a unidirectional communication link L(from→to) between two
// neighboring cores.
type Link struct {
	From, To Coord
}

// String renders the link in the paper's L(u,v)→(u',v') notation.
func (l Link) String() string {
	return fmt.Sprintf("L%s->%s", l.From, l.To)
}

// Dir returns the compass direction of the link. It panics if the two
// endpoints are not mesh neighbors.
func (l Link) Dir() Dir {
	du, dv := l.To.U-l.From.U, l.To.V-l.From.V
	switch {
	case du == 0 && dv == 1:
		return East
	case du == 1 && dv == 0:
		return South
	case du == 0 && dv == -1:
		return West
	case du == -1 && dv == 0:
		return North
	}
	panic(fmt.Sprintf("mesh: %v is not a unit link", l))
}

// Mesh is a p×q rectangular grid of cores. The zero value is not usable;
// construct meshes with New.
type Mesh struct {
	p, q int
}

// New returns a p×q mesh. Both dimensions must be at least 1.
func New(p, q int) (*Mesh, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("mesh: invalid dimensions %dx%d", p, q)
	}
	return &Mesh{p: p, q: q}, nil
}

// MustNew is like New but panics on invalid dimensions. It is intended for
// tests, examples and constant-size experiment setups.
func MustNew(p, q int) *Mesh {
	m, err := New(p, q)
	if err != nil {
		panic(err)
	}
	return m
}

// P returns the number of rows.
func (m *Mesh) P() int { return m.p }

// Q returns the number of columns.
func (m *Mesh) Q() int { return m.q }

// String describes the mesh dimensions.
func (m *Mesh) String() string { return fmt.Sprintf("%dx%d mesh", m.p, m.q) }

// NumCores returns p*q.
func (m *Mesh) NumCores() int { return m.p * m.q }

// NumLinks returns the number of unidirectional links:
// 2·(p·(q−1) + (p−1)·q).
func (m *Mesh) NumLinks() int {
	return 2 * (m.p*(m.q-1) + (m.p-1)*m.q)
}

// LinkIDSpace returns the size of the dense identifier space used by
// LinkID. Identifiers are in [0, LinkIDSpace()); some identifiers in the
// space correspond to links that would leave the mesh and are never
// returned by LinkID for valid links.
func (m *Mesh) LinkIDSpace() int { return 4 * m.p * m.q }

// Contains reports whether the coordinate lies on the mesh.
func (m *Mesh) Contains(c Coord) bool {
	return c.U >= 1 && c.U <= m.p && c.V >= 1 && c.V <= m.q
}

// ValidLink reports whether l connects two neighboring cores of the mesh.
func (m *Mesh) ValidLink(l Link) bool {
	if !m.Contains(l.From) || !m.Contains(l.To) {
		return false
	}
	return Manhattan(l.From, l.To) == 1
}

// LinkID maps a valid link to a dense integer identifier in
// [0, LinkIDSpace()). The mapping is a bijection on valid links and is
// stable for a given mesh size, enabling flat-slice load accounting.
// LinkID panics if the link is not valid on the mesh.
func (m *Mesh) LinkID(l Link) int {
	if !m.ValidLink(l) {
		panic(fmt.Sprintf("mesh: invalid link %v on %v", l, m))
	}
	d := l.Dir()
	return int(d)*m.p*m.q + (l.From.U-1)*m.q + (l.From.V - 1)
}

// LinkIDFast is LinkID without the validity check — the hot-loop form for
// links that are valid by construction (links of a Manhattan path on this
// mesh, links returned by LinkByID). An invalid link yields an undefined
// id instead of a panic; use LinkID whenever the link's provenance is not
// structural.
func (m *Mesh) LinkIDFast(l Link) int {
	d := North
	switch {
	case l.To.V == l.From.V+1:
		d = East
	case l.To.U == l.From.U+1:
		d = South
	case l.To.V == l.From.V-1:
		d = West
	}
	return int(d)*m.p*m.q + (l.From.U-1)*m.q + (l.From.V - 1)
}

// LinkByID is the inverse of LinkID. It panics if id does not identify a
// valid link.
func (m *Mesh) LinkByID(id int) Link {
	if id < 0 || id >= m.LinkIDSpace() {
		panic(fmt.Sprintf("mesh: link id %d out of range", id))
	}
	d := Dir(id / (m.p * m.q))
	rest := id % (m.p * m.q)
	from := Coord{rest/m.q + 1, rest%m.q + 1}
	l := Link{From: from, To: from.Step(d)}
	if !m.ValidLink(l) {
		panic(fmt.Sprintf("mesh: link id %d maps outside the mesh", id))
	}
	return l
}

// Links returns all valid unidirectional links of the mesh in LinkID order.
func (m *Mesh) Links() []Link {
	links := make([]Link, 0, m.NumLinks())
	for d := Dir(0); d < numDirs; d++ {
		for u := 1; u <= m.p; u++ {
			for v := 1; v <= m.q; v++ {
				l := Link{From: Coord{u, v}, To: Coord{u, v}.Step(d)}
				if m.Contains(l.To) {
					links = append(links, l)
				}
			}
		}
	}
	return links
}

// Neighbors returns the destination cores of the outgoing links of c
// (the set succ(u,v) of Section 3.1) in E, S, W, N order.
func (m *Mesh) Neighbors(c Coord) []Coord {
	out := make([]Coord, 0, 4)
	for d := Dir(0); d < numDirs; d++ {
		n := c.Step(d)
		if m.Contains(n) {
			out = append(out, n)
		}
	}
	return out
}

// CoordIndex maps a coordinate of the mesh to a dense integer identifier
// in [0, NumCores()), row-major — the coordinate analogue of LinkID,
// enabling flat-slice and bitset bookkeeping over cores. CoordIndex panics
// if the coordinate lies outside the mesh.
func (m *Mesh) CoordIndex(c Coord) int {
	if !m.Contains(c) {
		panic(fmt.Sprintf("mesh: coordinate %v outside %v", c, m))
	}
	return (c.U-1)*m.q + (c.V - 1)
}

// CoordAt is the inverse of CoordIndex. It panics if the index is out of
// range.
func (m *Mesh) CoordAt(i int) Coord {
	if i < 0 || i >= m.NumCores() {
		panic(fmt.Sprintf("mesh: coordinate index %d out of range", i))
	}
	return Coord{i/m.q + 1, i%m.q + 1}
}

// Cores returns all coordinates of the mesh in row-major order.
func (m *Mesh) Cores() []Coord {
	out := make([]Coord, 0, m.NumCores())
	for u := 1; u <= m.p; u++ {
		for v := 1; v <= m.q; v++ {
			out = append(out, Coord{u, v})
		}
	}
	return out
}
