package mesh

import "fmt"

// Quadrant is the direction d ∈ {1,2,3,4} of a communication as defined in
// Section 3.3: it identifies which of the four diagonal families D^(d)_k a
// shortest path traverses monotonically.
type Quadrant int

// The four communication directions of Section 3.3.
//
//	DirSE (d=1): u and v both non-decreasing (moves South/East).
//	DirSW (d=2): u non-decreasing, v decreasing (moves South/West).
//	DirNW (d=3): u and v both decreasing (moves North/West).
//	DirNE (d=4): u decreasing, v non-decreasing (moves North/East).
const (
	DirSE Quadrant = 1 + iota
	DirSW
	DirNW
	DirNE
)

// String names the quadrant with the paper's index.
func (d Quadrant) String() string {
	switch d {
	case DirSE:
		return "d1(SE)"
	case DirSW:
		return "d2(SW)"
	case DirNW:
		return "d3(NW)"
	case DirNE:
		return "d4(NE)"
	}
	return fmt.Sprintf("Quadrant(%d)", int(d))
}

// Moves returns the two unit directions a shortest path may take in this
// quadrant. For degenerate (axis-aligned) communications only one of the
// two applies; callers filter with the bounding box.
func (d Quadrant) Moves() [2]Dir {
	switch d {
	case DirSE:
		return [2]Dir{South, East}
	case DirSW:
		return [2]Dir{South, West}
	case DirNW:
		return [2]Dir{North, West}
	case DirNE:
		return [2]Dir{North, East}
	}
	panic(fmt.Sprintf("mesh: invalid quadrant %d", int(d)))
}

// DirectionOf returns the direction d_i of a communication from src to dst,
// following the tie-breaking of Section 3.3 exactly:
//
//	u_src ≤ u_snk, v_src ≤ v_snk → d=1
//	u_src ≤ u_snk, v_src > v_snk → d=2
//	u_src > u_snk, v_src > v_snk → d=3
//	u_src > u_snk, v_src ≤ v_snk → d=4
func DirectionOf(src, dst Coord) Quadrant {
	switch {
	case src.U <= dst.U && src.V <= dst.V:
		return DirSE
	case src.U <= dst.U && src.V > dst.V:
		return DirSW
	case src.U > dst.U && src.V > dst.V:
		return DirNW
	default:
		return DirNE
	}
}

// DiagIndex returns the index k of the diagonal of family d that c belongs
// to (Section 3.3). Every core belongs to exactly one diagonal per family,
// with k ∈ {1, …, p+q−1}:
//
//	d=1: k = u + v − 1
//	d=2: k = u + q − v
//	d=3: k = p − u + q − v + 1
//	d=4: k = p − u + v
func (m *Mesh) DiagIndex(d Quadrant, c Coord) int {
	switch d {
	case DirSE:
		return c.U + c.V - 1
	case DirSW:
		return c.U + m.q - c.V
	case DirNW:
		return m.p - c.U + m.q - c.V + 1
	case DirNE:
		return m.p - c.U + c.V
	}
	panic(fmt.Sprintf("mesh: invalid quadrant %d", int(d)))
}

// MaxDiagIndex returns p+q−1, the largest diagonal index of any family.
func (m *Mesh) MaxDiagIndex() int { return m.p + m.q - 1 }

// DiagonalCores returns the cores of diagonal D^(d)_k in increasing row
// order. The result is empty when k is out of the family's range.
func (m *Mesh) DiagonalCores(d Quadrant, k int) []Coord {
	var out []Coord
	for u := 1; u <= m.p; u++ {
		for v := 1; v <= m.q; v++ {
			c := Coord{u, v}
			if m.DiagIndex(d, c) == k {
				out = append(out, c)
			}
		}
	}
	return out
}

// diagRowRange returns the row interval [uMin, uMax] of diagonal D^(d)_k
// (empty when uMin > uMax), together with the column of the diagonal's core
// on row u, v = vBase + vStep·u. The formulas invert DiagIndex per family.
func (m *Mesh) diagRowRange(d Quadrant, k int) (uMin, uMax, vBase, vStep int) {
	switch d {
	case DirSE: // v = k + 1 − u
		uMin, uMax, vBase, vStep = k+1-m.q, k, k+1, -1
	case DirSW: // v = u + q − k
		uMin, uMax, vBase, vStep = k-m.q+1, k, m.q-k, 1
	case DirNW: // v = p + q + 1 − k − u
		uMin, uMax, vBase, vStep = m.p+1-k, m.p+m.q-k, m.p+m.q+1-k, -1
	case DirNE: // v = k − p + u
		uMin, uMax, vBase, vStep = m.p+1-k, m.p+m.q-k, k-m.p, 1
	default:
		panic(fmt.Sprintf("mesh: invalid quadrant %d", int(d)))
	}
	if uMin < 1 {
		uMin = 1
	}
	if uMax > m.p {
		uMax = m.p
	}
	return uMin, uMax, vBase, vStep
}

// DiagonalLinkCount returns len(DiagonalLinks(d, k)) in O(1), without
// materializing the link set: the cores of D^(d)_k form a row interval of
// the closed form diagRowRange, and each of the family's two moves stays
// in-mesh on a sub-interval of it given by two linear inequalities in the
// row. The lower-bound sums of Theorems 1 and 2 only need the
// cardinality, so this replaces an O(p·q) scan plus an allocation per
// (d, k) pair.
func (m *Mesh) DiagonalLinkCount(d Quadrant, k int) int {
	uMin, uMax, vBase, vStep := m.diagRowRange(d, k)
	if uMin > uMax {
		return 0
	}
	count := 0
	for _, mv := range d.Moves() {
		du, dv := mv.Delta()
		lo, hi := uMin, uMax
		// 1 ≤ u+du ≤ p
		if l := 1 - du; l > lo {
			lo = l
		}
		if h := m.p - du; h < hi {
			hi = h
		}
		// 1 ≤ vBase + vStep·u + dv ≤ q
		if vStep == 1 {
			if l := 1 - dv - vBase; l > lo {
				lo = l
			}
			if h := m.q - dv - vBase; h < hi {
				hi = h
			}
		} else {
			if l := vBase + dv - m.q; l > lo {
				lo = l
			}
			if h := vBase + dv - 1; h < hi {
				hi = h
			}
		}
		if hi >= lo {
			count += hi - lo + 1
		}
	}
	return count
}

// Box is an axis-aligned rectangle of cores, used as the bounding box of a
// communication: every Manhattan path from src to dst stays inside
// Box of(src, dst).
type Box struct {
	UMin, UMax, VMin, VMax int
}

// BoxOf returns the bounding box spanned by two coordinates.
func BoxOf(a, b Coord) Box {
	bx := Box{UMin: a.U, UMax: b.U, VMin: a.V, VMax: b.V}
	if bx.UMin > bx.UMax {
		bx.UMin, bx.UMax = bx.UMax, bx.UMin
	}
	if bx.VMin > bx.VMax {
		bx.VMin, bx.VMax = bx.VMax, bx.VMin
	}
	return bx
}

// Contains reports whether c lies inside the box.
func (b Box) Contains(c Coord) bool {
	return c.U >= b.UMin && c.U <= b.UMax && c.V >= b.VMin && c.V <= b.VMax
}

// Cores returns the number of cores inside the box.
func (b Box) Cores() int { return (b.UMax - b.UMin + 1) * (b.VMax - b.VMin + 1) }

// FrontierLinks returns the links a shortest path from src to dst may use
// at step t (0-based), i.e. the links going from diagonal D^(d)_{ksrc+t} to
// D^(d)_{ksrc+t+1} that stay inside the bounding box of the communication.
// This is the per-step frontier of Figure 3 used by the ideal-sharing
// lower bound and by the IG and PR heuristics. FrontierLinks panics if
// t is outside [0, Manhattan(src,dst)).
func (m *Mesh) FrontierLinks(src, dst Coord, t int) []Link {
	return m.AppendFrontierLinks(nil, src, dst, t)
}

// AppendFrontierLinks is FrontierLinks appending into out — allocation-free
// when out has capacity (pass out[:0] to reuse a scratch buffer). The
// diagonal is enumerated directly from the family's closed form instead of
// scanning every core, so a call is O(frontier) rather than O(p·q): this is
// the hot geometric primitive of the IG and PR heuristics and the optflow
// shortest-path DP.
func (m *Mesh) AppendFrontierLinks(out []Link, src, dst Coord, t int) []Link {
	ell := Manhattan(src, dst)
	if t < 0 || t >= ell {
		panic(fmt.Sprintf("mesh: frontier step %d out of range [0,%d)", t, ell))
	}
	d := DirectionOf(src, dst)
	box := BoxOf(src, dst)
	k := m.DiagIndex(d, src) + t
	moves := d.Moves()
	uMin, uMax, vBase, vStep := m.diagRowRange(d, k)
	for u := uMin; u <= uMax; u++ {
		c := Coord{U: u, V: vBase + vStep*u}
		if !box.Contains(c) {
			continue
		}
		for _, mv := range moves {
			n := c.Step(mv)
			if box.Contains(n) && m.Contains(n) {
				out = append(out, Link{From: c, To: n})
			}
		}
	}
	return out
}

// DiagonalLinks returns every link of the mesh going from diagonal
// D^(d)_k to D^(d)_{k+1} (no bounding box restriction). These are the link
// sets whose cardinalities appear in the lower-bound sums of Theorems 1
// and 2: 2k links for k < p, 2p−1 for p ≤ k < q, and 2(q+p−k−1) for k ≥ q
// on a p×q mesh with q ≥ p (family d=1).
func (m *Mesh) DiagonalLinks(d Quadrant, k int) []Link {
	moves := d.Moves()
	var out []Link
	for _, c := range m.DiagonalCores(d, k) {
		for _, mv := range moves {
			n := c.Step(mv)
			if m.Contains(n) {
				out = append(out, Link{From: c, To: n})
			}
		}
	}
	return out
}
