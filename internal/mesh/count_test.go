package mesh

import (
	"math/rand"
	"testing"
)

// Lemma 1: the number of Manhattan paths C(1,1) → C(p,q) is
// binom(p+q−2, p−1).
func TestPathCountLemma1(t *testing.T) {
	cases := []struct {
		p, q int
		want uint64
	}{
		{1, 1, 1},
		{2, 2, 2},
		{3, 3, 6},
		{4, 4, 20},
		{8, 8, 3432},
		{2, 9, 9},
	}
	for _, tc := range cases {
		n, ok := PathCount64(Coord{1, 1}, Coord{tc.p, tc.q})
		if !ok || n != tc.want {
			t.Errorf("PathCount(1,1 -> %d,%d) = %d (ok=%v), want %d", tc.p, tc.q, n, ok, tc.want)
		}
	}
}

func TestPathCountSymmetry(t *testing.T) {
	a, b := Coord{2, 3}, Coord{6, 7}
	if PathCount(a, b).Cmp(PathCount(b, a)) != 0 {
		t.Error("PathCount not symmetric")
	}
}

func TestPathCountOverflowSignal(t *testing.T) {
	// 40×40 traversal: C(78,39) ≈ 1.1e22 > 2^64.
	if _, ok := PathCount64(Coord{1, 1}, Coord{40, 40}); ok {
		t.Error("expected uint64 overflow flag for 40x40 traversal")
	}
}

// EnumeratePaths agrees with the closed-form count, and every enumerated
// path is a valid Manhattan path.
func TestEnumeratePathsMatchesCount(t *testing.T) {
	m := MustNew(6, 6)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		src := Coord{rng.Intn(4) + 1, rng.Intn(4) + 1}
		dst := Coord{rng.Intn(4) + 1, rng.Intn(4) + 1}
		paths := m.EnumeratePaths(src, dst)
		want, ok := PathCount64(src, dst)
		if !ok {
			t.Fatal("count overflow on tiny instance")
		}
		if uint64(len(paths)) != want {
			t.Fatalf("%v->%v: enumerated %d paths, want %d", src, dst, len(paths), want)
		}
		seen := make(map[string]bool)
		for _, p := range paths {
			if len(p) != Manhattan(src, dst) {
				t.Fatalf("%v->%v: path length %d, want %d", src, dst, len(p), Manhattan(src, dst))
			}
			cur := src
			key := ""
			for _, l := range p {
				if l.From != cur {
					t.Fatalf("%v->%v: disconnected path at %v", src, dst, l)
				}
				if !m.ValidLink(l) {
					t.Fatalf("%v->%v: invalid link %v", src, dst, l)
				}
				cur = l.To
				key += l.String()
			}
			if cur != dst {
				t.Fatalf("%v->%v: path ends at %v", src, dst, cur)
			}
			if seen[key] {
				t.Fatalf("%v->%v: duplicate path", src, dst)
			}
			seen[key] = true
		}
	}
}

func TestEnumeratePathsDegenerate(t *testing.T) {
	m := MustNew(3, 3)
	paths := m.EnumeratePaths(Coord{2, 2}, Coord{2, 2})
	if len(paths) != 1 || len(paths[0]) != 0 {
		t.Fatalf("self paths = %v, want one empty path", paths)
	}
}
