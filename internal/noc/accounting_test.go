package noc

// Regression tests for the horizon-exact accounting: the busy-time clamp
// (link utilization can never exceed 1.0), the injected = delivered +
// stalled + in-flight identity, the Warmup ≥ Horizon edge windows, the
// finite-buffer × cut-through combination the older suites never
// exercised, and the Workspace/Reset pooling semantics.

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// saturatedRouting drives one flow at exactly the model's top frequency,
// so every active link is back-to-back busy and the final transmission is
// always mid-flight at the horizon.
func saturatedRouting() (route.Routing, power.Model) {
	m := mesh.MustNew(8, 8)
	g := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 4, V: 5}, Rate: 3500}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: g, Path: route.XY(g.Src, g.Dst)}}}
	return r, power.KimHorowitz()
}

// checkIdentity asserts the horizon accounting identity on a Stats.
func checkIdentity(t *testing.T, st *Stats, label string) {
	t.Helper()
	if st.Injected != st.Delivered+st.Stalled+st.InFlight {
		t.Errorf("%s: accounting identity broken: injected %d != delivered %d + stalled %d + in-flight %d",
			label, st.Injected, st.Delivered, st.Stalled, st.InFlight)
	}
}

// A saturated link's utilization is exactly 1.0, never above — the
// historical engine accrued the over-horizon tail of the last
// transmission and reported > 1.0.
func TestSaturatedLinkUtilizationClamped(t *testing.T) {
	r, model := saturatedRouting()
	for _, sw := range []Switching{StoreAndForward, CutThrough} {
		sim, err := New(r, model, Config{Horizon: 100, Switching: sw})
		if err != nil {
			t.Fatal(err)
		}
		st := sim.Run()
		sawSaturated := false
		for id, u := range st.LinkUtilization {
			if u > 1.0 {
				t.Errorf("%v: link %d utilization %.6f > 1.0", sw, id, u)
			}
			if u == 1.0 {
				sawSaturated = true
			}
		}
		if !sawSaturated {
			t.Errorf("%v: no link reached utilization 1.0 on a back-to-back flow", sw)
		}
		if mu := st.MeanUtilization(); mu > 1.0 {
			t.Errorf("%v: mean utilization %.6f > 1.0", sw, mu)
		}
		checkIdentity(t, st, sw.String())
		if st.InFlight == 0 {
			t.Errorf("%v: saturated horizon run reports no in-flight packets", sw)
		}
	}
}

// The identity holds across the regimes that historically miscounted:
// clean runs, saturated runs, and a backpressure deadlock where most
// packets freeze in queues.
func TestAccountingIdentity(t *testing.T) {
	single, model := singleFlowRouting(t, 900)
	ring, _ := ringRouting(1150)
	cases := []struct {
		name string
		r    route.Routing
		cfg  Config
	}{
		{"uncontended", single, Config{Horizon: 500, Warmup: 100}},
		{"uncontended/cut-through", single, Config{Horizon: 500, Warmup: 100, Switching: CutThrough}},
		{"deadlocked-ring", ring, Config{Horizon: 2000, BufferPackets: 1}},
		{"buffered-ring/cut-through", ring, Config{Horizon: 1000, BufferPackets: 4, Switching: CutThrough}},
	}
	for _, tc := range cases {
		sim, err := New(tc.r, model, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		st := sim.Run()
		checkIdentity(t, st, tc.name)
		if st.Injected == 0 {
			t.Errorf("%s: degenerate run, nothing injected", tc.name)
		}
	}
}

// Warmup ≥ Horizon leaves no measurement window: delivered rates are 0 by
// definition (not NaN/Inf), while the physical figures (utilization,
// power) still cover the full horizon.
func TestEdgeWindows(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	for _, warmup := range []float64{500, 800} { // == and > the horizon
		sim, err := New(r, model, Config{Horizon: 500, Warmup: warmup})
		if err != nil {
			t.Fatal(err)
		}
		st := sim.Run()
		if got := st.DeliveredRate(1); got != 0 {
			t.Errorf("warmup %g: DeliveredRate %.3f, want 0 on an empty window", warmup, got)
		}
		if cs := st.PerComm[1]; cs.Packets != 0 || cs.DeliveredBits != 0 {
			t.Errorf("warmup %g: post-warmup samples recorded inside an empty window: %+v", warmup, cs)
		}
		if st.Delivered == 0 {
			t.Errorf("warmup %g: total delivery count should ignore the warmup filter", warmup)
		}
		if mu := st.MeanUtilization(); mu <= 0 || mu > 1 || math.IsNaN(mu) {
			t.Errorf("warmup %g: mean utilization %.3f out of (0, 1]", warmup, mu)
		}
		checkIdentity(t, st, "edge-window")
	}
	// DeliveredRate of a communication that never existed is 0, not a
	// panic or NaN.
	sim, err := New(r, model, Config{Horizon: 500})
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Run().DeliveredRate(404); got != 0 {
		t.Errorf("unknown comm delivered %.3f, want 0", got)
	}
}

// MeanUtilization over a run with no active links is 0.
func TestMeanUtilizationNoActiveLinks(t *testing.T) {
	m := mesh.MustNew(4, 4)
	sim, err := New(route.Routing{Mesh: m}, power.KimHorowitz(), Config{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.MeanUtilization() != 0 || st.ActiveLinks != 0 {
		t.Errorf("empty routing: mean utilization %.3f over %d active links, want 0/0",
			st.MeanUtilization(), st.ActiveLinks)
	}
}

// Finite buffers × cut-through: the acyclic XY workload keeps delivering
// under tiny buffers, the cyclic ring still deadlocks, and ample buffers
// match the unbounded run — the combination the store-and-forward-only
// backpressure suite never covered.
func TestCutThroughFiniteBuffers(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 4, V: 5}, Rate: 900},
		{ID: 2, Src: mesh.Coord{U: 2, V: 1}, Dst: mesh.Coord{U: 5, V: 6}, Rate: 900},
		{ID: 3, Src: mesh.Coord{U: 3, V: 2}, Dst: mesh.Coord{U: 6, V: 7}, Rate: 900},
	}
	var flows []route.Flow
	for _, c := range set {
		flows = append(flows, route.Flow{Comm: c, Path: route.XY(c.Src, c.Dst)})
	}
	r := route.Routing{Mesh: m, Flows: flows}
	sim, err := New(r, power.KimHorowitz(), Config{
		Horizon: 3000, Warmup: 300, Switching: CutThrough, BufferPackets: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	for _, c := range set {
		if got := st.DeliveredRate(c.ID); math.Abs(got-c.Rate)/c.Rate > 0.10 {
			t.Errorf("comm %d delivered %.0f, want ≈%.0f under cut-through tiny buffers", c.ID, got, c.Rate)
		}
	}
	checkIdentity(t, st, "xy/cut-through/tiny")

	// The cyclic ring that deadlocks under store-and-forward (see
	// TestRingDeadlocksWithTinyBuffers) keeps flowing under cut-through
	// with the same 1-packet buffers: the head is forwarded one flit time
	// into service, so each single buffer slot turns over before the
	// circular wait can close. Pin the contrast — and the accounting
	// identity — in both modes.
	ring, model := ringRouting(1150)
	demand := 4 * 1150.0
	runRing := func(sw Switching) (*Stats, float64) {
		sim, err := New(ring, model, Config{Horizon: 4000, Switching: sw, BufferPackets: 1})
		if err != nil {
			t.Fatal(err)
		}
		st := sim.Run()
		total := 0.0
		for id := 1; id <= 4; id++ {
			total += st.DeliveredRate(id)
		}
		checkIdentity(t, st, "ring/"+sw.String()+"/tiny")
		return st, total
	}
	sfStats, sfTotal := runRing(StoreAndForward)
	if sfStats.Stalled == 0 || sfTotal >= demand*0.5 {
		t.Errorf("store-and-forward ring delivered %.0f of %.0f with %d stalled — expected deadlock collapse",
			sfTotal, demand, sfStats.Stalled)
	}
	if _, ctTotal := runRing(CutThrough); math.Abs(ctTotal-demand)/demand > 0.05 {
		t.Errorf("cut-through ring delivered %.0f of %.0f — expected the pipeline to drain the cycle", ctTotal, demand)
	}

	run := func(buf int) *Stats {
		sim, err := New(ring, model, Config{Horizon: 1500, Warmup: 100, Switching: CutThrough, BufferPackets: buf})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	unbounded, buffered := run(0), run(64)
	for id := 1; id <= 4; id++ {
		if a, b := unbounded.DeliveredRate(id), buffered.DeliveredRate(id); math.Abs(a-b) > 1e-9 {
			t.Errorf("comm %d: cut-through unbounded %.2f vs ample buffers %.2f", id, a, b)
		}
	}
}

// Workspace pooling: reuse across trials matches fresh simulators, Reset
// wipes attachments, and a second Run without Reset panics instead of
// silently reusing dirty state.
func TestWorkspaceReuseSemantics(t *testing.T) {
	r, model := singleFlowRouting(t, 1500)
	cfg := Config{Horizon: 800, Warmup: 100}
	ws := NewWorkspace()

	sim, err := ws.Simulator(r, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr Tracer
	sim.Trace(&tr)
	observed := 0
	sim.Observe(func(Delivery) { observed++ })
	first := sim.Run()
	if len(tr.Events()) == 0 || observed == 0 {
		t.Fatal("tracer/observer not invoked on the first pooled run")
	}

	// Second trial through the pool: attachments must be gone.
	sim, err = ws.Simulator(r, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, delivered := len(tr.Events()), observed
	second := sim.Run()
	if len(tr.Events()) != events || observed != delivered {
		t.Error("Reset did not detach the previous trial's tracer/observer")
	}
	if first.PerComm[1] != second.PerComm[1] || first.PowerMW != second.PowerMW {
		t.Error("pooled rerun of the identical instance diverged")
	}

	// Run without an intervening Reset must refuse.
	defer func() {
		if recover() == nil {
			t.Error("second Run without Reset did not panic")
		}
	}()
	sim.Run()
}

// An infeasible binding leaves the workspace usable for the next trial.
func TestWorkspaceSurvivesInfeasibleBinding(t *testing.T) {
	ws := NewWorkspace()
	bad, model := singleFlowRouting(t, 5000) // above the top frequency
	if _, err := ws.Simulator(bad, model, Config{}); err == nil {
		t.Fatal("overloaded routing accepted")
	}
	good, _ := singleFlowRouting(t, 900)
	sim, err := ws.Simulator(good, model, Config{Horizon: 500})
	if err != nil {
		t.Fatal(err)
	}
	if st := sim.Run(); st.Delivered == 0 {
		t.Error("workspace unusable after an infeasible binding")
	}
}

// The streaming WorkloadObserver exports the same goodput as the
// retention-based Tracer.ExportWorkload and as Stats.DeliveredRate.
func TestWorkloadObserverMatchesTracerExport(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	cfg := Config{Horizon: 2000, Warmup: 200, PacketBits: 2048}
	base := comm.Set{r.Flows[0].Comm}

	sim, err := New(r, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr Tracer
	sim.Trace(&tr)
	var obs WorkloadObserver
	if err := obs.Reset(base, cfg.Warmup, cfg.Horizon); err != nil {
		t.Fatal(err)
	}
	sim.Observe(obs.Record)
	st := sim.Run()

	fromTrace, err := tr.ExportWorkload(nil, base, cfg.PacketBits, cfg.Warmup, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	fromObs, err := obs.Export(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromTrace) != 1 || len(fromObs) != 1 {
		t.Fatalf("exports sized %d/%d, want 1/1", len(fromTrace), len(fromObs))
	}
	if fromObs[0] != fromTrace[0] {
		t.Errorf("observer export %+v != tracer export %+v", fromObs[0], fromTrace[0])
	}
	if math.Abs(fromObs[0].Rate-st.DeliveredRate(1)) > 1e-9 {
		t.Errorf("observer rate %.4f, stats goodput %.4f", fromObs[0].Rate, st.DeliveredRate(1))
	}

	// The export reuses the destination buffer.
	again, err := obs.Export(fromObs)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &fromObs[:1][0] {
		t.Error("Export did not reuse the destination buffer")
	}

	// Degenerate windows and unknown comms fail loudly.
	if err := obs.Reset(base, 100, 100); err == nil {
		t.Error("empty observer window accepted")
	}
	var stray WorkloadObserver
	if err := stray.Reset(comm.Set{}, cfg.Warmup, cfg.Horizon); err != nil {
		t.Fatal(err)
	}
	stray.Record(Delivery{CommID: 7, Injected: cfg.Warmup + 1, Bits: 2048})
	if _, err := stray.Export(nil); err == nil {
		t.Error("delivery for a comm missing from the base set accepted")
	}
}
