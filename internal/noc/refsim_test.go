package noc

// This file preserves the pre-arena, pointer-and-container/heap engine as a
// test-only reference implementation, with the horizon-accounting fixes
// (busy-time clamp, in-flight packets, injected/delivered counters) applied
// so the rebuilt production engine can be held byte-identical to it — same
// Stats, same delivery sequence — across the differential matrix in
// differential_test.go. Do not "modernize" this copy: its value is that it
// is the old control flow, allocation by allocation.

import (
	"container/heap"
	"fmt"

	"repro/internal/power"
	"repro/internal/route"
)

// refPacket is one in-flight packet of the reference engine.
type refPacket struct {
	flow     int
	hop      int
	injected float64
	bits     float64
	prevDone float64
}

type refLinkState struct {
	freq        float64
	busy        bool
	busyTime    float64
	queues      [numClasses][]*refPacket
	reserved    [numClasses]int
	relayQueued [numClasses]int
	waiters     [numClasses][]int
}

func (ls *refLinkState) queuedPackets() int {
	n := 0
	for c := 0; c < numClasses; c++ {
		n += len(ls.queues[c])
	}
	return n
}

// refEvent mirrors the historical boxed event.
type refEvent struct {
	time float64
	seq  int64
	kind eventKind
	pkt  *refPacket
	flow int
	link int
}

// refEventQueue is the historical container/heap min-heap of *refEvent.
type refEventQueue struct {
	items []*refEvent
	seq   int64
}

func (q *refEventQueue) Len() int { return len(q.items) }

func (q *refEventQueue) Less(i, j int) bool {
	if q.items[i].time != q.items[j].time {
		return q.items[i].time < q.items[j].time
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *refEventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *refEventQueue) Push(x any) { q.items = append(q.items, x.(*refEvent)) }

func (q *refEventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

func (q *refEventQueue) push(e *refEvent) {
	e.seq = q.seq
	q.seq++
	heap.Push(q, e)
}

func (q *refEventQueue) pop() *refEvent { return heap.Pop(q).(*refEvent) }

// refSimulator replays a routing exactly like the pre-arena engine did.
// Its energy accounting is an independent re-derivation (coordinate
// lookups per event instead of the production engine's precomputed
// linkSrc table and pooled slab), so the differential matrix pins the
// two implementations of the same arithmetic against each other.
type refSimulator struct {
	routing   route.Routing
	model     power.Model
	cfg       Config
	links     []refLinkState
	classes   [][]int
	onDeliver func(Delivery)
	routerE   []float64
	bufferE   []float64
}

func refNew(r route.Routing, model power.Model, cfg Config) (*refSimulator, error) {
	cfg.setDefaults()
	loads := r.Loads()
	links := make([]refLinkState, r.Mesh.LinkIDSpace())
	for id, load := range loads {
		if load == 0 {
			continue
		}
		f, err := model.Quantize(load)
		if err != nil {
			return nil, fmt.Errorf("noc: link %v: %w", r.Mesh.LinkByID(id), err)
		}
		links[id].freq = f
	}
	return &refSimulator{routing: r, model: model, cfg: cfg, links: links,
		routerE: make([]float64, r.Mesh.NumCores()),
		bufferE: make([]float64, r.Mesh.LinkIDSpace()),
	}, nil
}

func (s *refSimulator) assignClasses(classes [][]int) { s.classes = classes }

func (s *refSimulator) classOf(flow, hop int) int {
	if s.classes == nil {
		return 0
	}
	return s.classes[flow][hop]
}

func (s *refSimulator) run() *Stats {
	st := newStats(s.routing, s.cfg)
	q := &refEventQueue{}

	for i, fl := range s.routing.Flows {
		period := s.cfg.PacketBits / fl.Comm.Rate
		phase := period * float64(i%7) / 7.0
		q.push(&refEvent{time: phase, kind: evInject, flow: i})
	}

	for q.Len() > 0 {
		e := q.pop()
		if e.time > s.cfg.Horizon {
			// Horizon fix: a popped arrival past the horizon is a packet
			// mid-transmission, not a silently vanished one.
			if e.kind == evArrive {
				st.InFlight++
			}
			break
		}
		switch e.kind {
		case evInject:
			fl := s.routing.Flows[e.flow]
			st.Injected++
			pkt := &refPacket{flow: e.flow, injected: e.time, bits: s.cfg.PacketBits, prevDone: e.time}
			s.arrive(q, st, pkt, e.time)
			period := s.cfg.PacketBits / fl.Comm.Rate
			q.push(&refEvent{time: e.time + period, kind: evInject, flow: e.flow})
		case evArrive:
			s.arrive(q, st, e.pkt, e.time)
		case evLinkFree:
			s.links[e.link].busy = false
			s.startNext(q, e.link, e.time)
		}
	}
	// Horizon fix: everything still scheduled to arrive is in flight.
	for q.Len() > 0 {
		if e := q.pop(); e.kind == evArrive {
			st.InFlight++
		}
	}
	s.finalize(st)
	return st
}

func (s *refSimulator) arrive(q *refEventQueue, st *Stats, pkt *refPacket, now float64) {
	fl := s.routing.Flows[pkt.flow]
	if pkt.hop == len(fl.Path) {
		if s.onDeliver != nil {
			s.onDeliver(Delivery{CommID: fl.Comm.ID, Injected: pkt.injected, Time: now, Bits: pkt.bits})
		}
		st.deliver(fl.Comm.ID, pkt.injected, pkt.bits, now)
		return
	}
	id := s.routing.Mesh.LinkID(fl.Path[pkt.hop])
	class := s.classOf(pkt.flow, pkt.hop)
	if pkt.hop > 0 {
		s.bufferE[id] += s.cfg.BufferPJPerBit * pkt.bits * 1e-3
		if s.cfg.BufferPackets > 0 {
			s.links[id].reserved[class]--
			s.links[id].relayQueued[class]++
		}
	}
	s.links[id].queues[class] = append(s.links[id].queues[class], pkt)
	s.startNext(q, id, now)
}

func (s *refSimulator) nextHopTarget(pkt *refPacket) (link, class int) {
	fl := s.routing.Flows[pkt.flow]
	if pkt.hop+1 >= len(fl.Path) {
		return -1, 0
	}
	return s.routing.Mesh.LinkID(fl.Path[pkt.hop+1]), s.classOf(pkt.flow, pkt.hop+1)
}

func (s *refSimulator) hasRoom(id, class int) bool {
	if s.cfg.BufferPackets <= 0 || id < 0 {
		return true
	}
	return s.links[id].relayQueued[class]+s.links[id].reserved[class] < s.cfg.BufferPackets
}

func (s *refSimulator) startNext(q *refEventQueue, id int, now float64) {
	ls := &s.links[id]
	if ls.busy {
		return
	}
	var pkt *refPacket
	var class int
	for c := 0; c < numClasses; c++ {
		if len(ls.queues[c]) == 0 {
			continue
		}
		head := ls.queues[c][0]
		down, downClass := s.nextHopTarget(head)
		if !s.hasRoom(down, downClass) {
			s.links[down].waiters[downClass] = appendUnique(s.links[down].waiters[downClass], id)
			continue
		}
		pkt, class = head, c
		break
	}
	if pkt == nil {
		return
	}
	downstream, downClass := s.nextHopTarget(pkt)
	ls.queues[class] = ls.queues[class][1:]
	ls.busy = true
	if s.cfg.BufferPackets > 0 {
		if pkt.hop > 0 {
			ls.relayQueued[class]--
		}
		if downstream >= 0 {
			s.links[downstream].reserved[downClass]++
		}
		s.wakeWaiters(q, id, class, now)
	}
	src := s.routing.Mesh.LinkByID(id).From
	s.routerE[s.routing.Mesh.CoordIndex(src)] += s.cfg.RouterPJPerBit * pkt.bits * 1e-3
	tx := pkt.bits / ls.freq
	done := now + tx
	if s.cfg.Switching == CutThrough {
		if tail := pkt.prevDone + s.cfg.FlitBits/ls.freq; tail > done {
			done = tail
		}
	}
	// Horizon fix: busy time is only accrued inside the simulated window,
	// so a transmission completing past the horizon cannot push link
	// utilization above 1.0.
	end := done
	if end > s.cfg.Horizon {
		end = s.cfg.Horizon
	}
	ls.busyTime += end - now
	q.push(&refEvent{time: done, kind: evLinkFree, link: id})

	next := &refPacket{
		flow: pkt.flow, hop: pkt.hop + 1,
		injected: pkt.injected, bits: pkt.bits, prevDone: done,
	}
	arrival := done
	if s.cfg.Switching == CutThrough {
		if head := now + s.cfg.FlitBits/ls.freq; head < done {
			arrival = head
		}
		fl := s.routing.Flows[pkt.flow]
		if next.hop == len(fl.Path) {
			arrival = done
		}
	}
	q.push(&refEvent{time: arrival, kind: evArrive, pkt: next})
}

func (s *refSimulator) wakeWaiters(q *refEventQueue, id, class int, now float64) {
	ls := &s.links[id]
	if len(ls.waiters[class]) == 0 {
		return
	}
	waiters := ls.waiters[class]
	ls.waiters[class] = nil
	for _, w := range waiters {
		s.startNext(q, w, now)
	}
}

func (s *refSimulator) finalize(st *Stats) {
	e := &st.Energy
	e.RouterNJ = append([]float64(nil), s.routerE...)
	e.LinkNJ = make([]float64, len(s.links))
	e.BufferNJ = append([]float64(nil), s.bufferE...)
	for id := range s.links {
		ls := &s.links[id]
		st.Stalled += ls.queuedPackets()
		if ls.freq == 0 {
			continue
		}
		st.LinkUtilization[id] = ls.busyTime / s.cfg.Horizon
		st.LinkFreq[id] = ls.freq
		p := s.model.Pleak + s.model.Dynamic(ls.freq)
		st.PowerMW += p
		st.ActiveLinks++
		e.LinkNJ[id] = s.model.Pleak*s.cfg.Horizon + s.model.Dynamic(ls.freq)*ls.busyTime
	}
	for _, v := range e.RouterNJ {
		e.RouterTotalNJ += v
	}
	for _, v := range e.LinkNJ {
		e.LinkTotalNJ += v
	}
	for _, v := range e.BufferNJ {
		e.BufferTotalNJ += v
	}
	e.TotalNJ = e.RouterTotalNJ + e.LinkTotalNJ + e.BufferTotalNJ
	st.EnergyNJ = st.PowerMW * s.cfg.Horizon
}
