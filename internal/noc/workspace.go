package noc

import (
	"repro/internal/power"
	"repro/internal/route"
)

// Workspace pools one Simulator across trials, mirroring the solver
// layer's route.Workspace contract: multi-trial callers (the trace
// scenario source, the NoC validation experiment, cmd benchmarks) bind
// the pooled simulator to each new routing instead of paying New's
// allocations per draw.
//
// Pooling contract:
//
//   - A Workspace is NOT safe for concurrent use; give each worker its
//     own.
//   - Workspace.Simulator resets the pooled simulator: Tracer, delivery
//     observer and class assignment from the previous trial are detached
//     — re-attach per trial, before Run.
//   - The Stats returned by Run own their memory: they stay valid after
//     the workspace moves on to the next trial.
//   - A fresh New per trial produces bit-identical results; only the
//     allocation profile changes.
type Workspace struct {
	sim Simulator
}

// NewWorkspace returns an empty workspace; its simulator binds on the
// first Simulator call.
func NewWorkspace() *Workspace { return &Workspace{} }

// Simulator binds the pooled simulator to the routing and returns it,
// ready for one Run. The error cases are New's (an infeasible routing has
// no operating point to simulate); after an error the workspace remains
// usable for the next trial.
func (w *Workspace) Simulator(r route.Routing, model power.Model, cfg Config) (*Simulator, error) {
	if err := w.sim.Reset(r, model, cfg); err != nil {
		return nil, err
	}
	return &w.sim, nil
}
