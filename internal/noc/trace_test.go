package noc

import (
	"strings"
	"testing"
)

func TestTracerRecordsLifecycle(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	sim, err := New(r, model, Config{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	var tr Tracer
	sim.Trace(&tr)
	st := sim.Run()

	injects, hops, delivers := 0, 0, 0
	for _, e := range tr.Events() {
		switch e.Kind {
		case "inject":
			injects++
		case "hop":
			hops++
		case "deliver":
			delivers++
			if e.Lat <= 0 {
				t.Errorf("delivery with non-positive latency: %+v", e)
			}
		}
	}
	if injects == 0 || hops == 0 || delivers == 0 {
		t.Fatalf("lifecycle incomplete: %d injects, %d hops, %d delivers", injects, hops, delivers)
	}
	if delivers != st.PerComm[1].Packets {
		t.Errorf("trace delivers %d, stats count %d", delivers, st.PerComm[1].Packets)
	}
	// Events are time-ordered.
	prev := -1.0
	for _, e := range tr.Events() {
		if e.Time < prev {
			t.Fatal("trace not time-ordered")
		}
		prev = e.Time
	}
}

func TestTracerCapAndDrop(t *testing.T) {
	r, model := singleFlowRouting(t, 2200)
	sim, err := New(r, model, Config{Horizon: 500})
	if err != nil {
		t.Fatal(err)
	}
	tr := Tracer{Cap: 10}
	sim.Trace(&tr)
	sim.Run()
	if len(tr.Events()) != 10 {
		t.Errorf("retained %d events, want 10", len(tr.Events()))
	}
	if tr.Dropped == 0 {
		t.Error("no drops recorded despite cap")
	}
}

func TestTraceCSV(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	sim, err := New(r, model, Config{Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	var tr Tracer
	sim.Trace(&tr)
	sim.Run()
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time_us,kind,comm,hop,latency_us\n") {
		t.Error("missing CSV header")
	}
	if !strings.Contains(out, "inject") || !strings.Contains(out, "deliver") {
		t.Error("CSV missing event kinds")
	}
}

// A nil tracer is safe (the default path).
func TestNilTracerSafe(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	sim, err := New(r, model, Config{Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	sim.Trace(nil)
	sim.Run() // must not panic
}
