package noc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/comm"
)

func TestTracerRecordsLifecycle(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	sim, err := New(r, model, Config{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	var tr Tracer
	sim.Trace(&tr)
	st := sim.Run()

	injects, hops, delivers := 0, 0, 0
	for _, e := range tr.Events() {
		switch e.Kind {
		case "inject":
			injects++
		case "hop":
			hops++
		case "deliver":
			delivers++
			if e.Lat <= 0 {
				t.Errorf("delivery with non-positive latency: %+v", e)
			}
		}
	}
	if injects == 0 || hops == 0 || delivers == 0 {
		t.Fatalf("lifecycle incomplete: %d injects, %d hops, %d delivers", injects, hops, delivers)
	}
	if delivers != st.PerComm[1].Packets {
		t.Errorf("trace delivers %d, stats count %d", delivers, st.PerComm[1].Packets)
	}
	// Events are time-ordered.
	prev := -1.0
	for _, e := range tr.Events() {
		if e.Time < prev {
			t.Fatal("trace not time-ordered")
		}
		prev = e.Time
	}
}

func TestTracerCapAndDrop(t *testing.T) {
	r, model := singleFlowRouting(t, 2200)
	sim, err := New(r, model, Config{Horizon: 500})
	if err != nil {
		t.Fatal(err)
	}
	tr := Tracer{Cap: 10}
	sim.Trace(&tr)
	sim.Run()
	if len(tr.Events()) != 10 {
		t.Errorf("retained %d events, want 10", len(tr.Events()))
	}
	if tr.Dropped == 0 {
		t.Error("no drops recorded despite cap")
	}
	// A capped tracer that dropped events cannot vouch for its goodput:
	// ExportWorkload must refuse instead of silently undercounting.
	base := comm.Set{r.Flows[0].Comm}
	if _, err := tr.ExportWorkload(nil, base, 2048, 0, 500); err == nil {
		t.Error("ExportWorkload accepted a tracer with dropped events")
	}
}

func TestTraceCSV(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	sim, err := New(r, model, Config{Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	var tr Tracer
	sim.Trace(&tr)
	sim.Run()
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time_us,kind,comm,hop,latency_us\n") {
		t.Error("missing CSV header")
	}
	if !strings.Contains(out, "inject") || !strings.Contains(out, "deliver") {
		t.Error("CSV missing event kinds")
	}
}

// A nil tracer is safe (the default path).
func TestNilTracerSafe(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	sim, err := New(r, model, Config{Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	sim.Trace(nil)
	sim.Run() // must not panic
}

// ExportWorkload turns a trace into a communication set whose rates match
// the simulator's own goodput accounting.
func TestExportWorkload(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	cfg := Config{Horizon: 2000, Warmup: 200, PacketBits: 2048}
	sim, err := New(r, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr Tracer
	sim.Trace(&tr)
	st := sim.Run()

	base := comm.Set{r.Flows[0].Comm}
	set, err := tr.ExportWorkload(nil, base, cfg.PacketBits, cfg.Warmup, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("exported %d comms, want 1", len(set))
	}
	got, want := set[0].Rate, st.DeliveredRate(1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("exported rate %.4f Mb/s, stats goodput %.4f", got, want)
	}
	if set[0].ID != 1 || set[0].Src != base[0].Src || set[0].Dst != base[0].Dst {
		t.Errorf("exported comm %+v does not match base %+v", set[0], base[0])
	}

	// The export reuses the destination buffer.
	again, err := tr.ExportWorkload(set, base, cfg.PacketBits, cfg.Warmup, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &set[:1][0] {
		t.Error("ExportWorkload did not reuse the destination buffer")
	}

	// Degenerate windows and unknown comms fail loudly.
	if _, err := tr.ExportWorkload(nil, base, cfg.PacketBits, 100, 100); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := tr.ExportWorkload(nil, base, 0, cfg.Warmup, cfg.Horizon); err == nil {
		t.Error("zero packet size accepted")
	}
	if _, err := tr.ExportWorkload(nil, comm.Set{}, cfg.PacketBits, cfg.Warmup, cfg.Horizon); err == nil {
		t.Error("trace over comms missing from the base set accepted")
	}
}
