package noc

import (
	"fmt"

	"repro/internal/comm"
)

// Delivery is one delivered packet streamed to the simulator's delivery
// observer: which communication it belonged to, when it was injected and
// delivered, and how many bits it carried. Observers see every delivery,
// warmup included — filter on Injected if a measurement window applies.
type Delivery struct {
	CommID   int
	Injected float64 // injection time, µs
	Time     float64 // delivery time, µs
	Bits     float64
}

// Observe attaches a streaming delivery observer, called synchronously on
// every packet delivery during Run; pass nil to detach. Unlike a Tracer
// the observer retains nothing, so it is the right hook for unbounded
// runs whose consumers only need delivery accounting (goodput, latency
// tails). Call before Run; Reset detaches it.
func (s *Simulator) Observe(fn func(Delivery)) { s.observe = fn }

// WorkloadObserver accumulates per-communication delivered bits
// streamingly and exports the observed goodput as a communication set —
// the retention-free replacement for Tracer.ExportWorkload (which must
// keep every event of a run in memory to do the same sum). Bind it to a
// run with Reset + Simulator.Observe(o.Record); one observer is reusable
// across runs and allocates nothing once its buffers are warmed.
type WorkloadObserver struct {
	base    comm.Set
	byID    map[int]int
	bits    []float64
	warmup  float64
	window  float64
	unknown int // first unknown comm ID seen, when unknownSeen
	// unknownSeen records a delivery for a communication missing from the
	// base set; Export fails loudly instead of undercounting.
	unknownSeen bool
}

// Reset points the observer at the run's base communication set and
// measurement window [warmup, horizon): deliveries of packets injected
// inside the window contribute their bits, and Export divides by the
// window length — the same accounting as Stats.DeliveredRate.
func (o *WorkloadObserver) Reset(base comm.Set, warmup, horizon float64) error {
	window := horizon - warmup
	if window <= 0 {
		return fmt.Errorf("noc: empty measurement window [%g, %g)", warmup, horizon)
	}
	if o.byID == nil {
		o.byID = make(map[int]int, len(base))
	} else {
		clear(o.byID)
	}
	if cap(o.bits) < len(base) {
		o.bits = make([]float64, len(base))
	}
	o.bits = o.bits[:len(base)]
	for i, c := range base {
		o.byID[c.ID] = i
		o.bits[i] = 0
	}
	o.base, o.warmup, o.window = base, warmup, window
	o.unknownSeen = false
	return nil
}

// Record is the delivery callback; pass it to Simulator.Observe.
func (o *WorkloadObserver) Record(d Delivery) {
	if d.Injected < o.warmup {
		return
	}
	i, ok := o.byID[d.CommID]
	if !ok {
		if !o.unknownSeen {
			o.unknown, o.unknownSeen = d.CommID, true
		}
		return
	}
	o.bits[i] += d.Bits
}

// Export converts the accumulated delivery accounting into a
// communication set carrying each base communication's observed goodput
// (Mb/s over the measurement window). Communications that delivered
// nothing are dropped; source, sink and ID come from the matching base
// entry. The result reuses dst's storage. A delivery for a communication
// missing from the base set is an error.
func (o *WorkloadObserver) Export(dst comm.Set) (comm.Set, error) {
	if o.unknownSeen {
		return nil, fmt.Errorf("noc: observed comm %d not in the base set", o.unknown)
	}
	out := dst[:0]
	for i, c := range o.base {
		b := o.bits[i]
		if b <= 0 {
			continue
		}
		c.Rate = b / o.window
		out = append(out, c)
	}
	return out, nil
}
