package noc

// Differential pinning of the arena engine against the historical
// pointer/container-heap engine (refsim_test.go, with the same horizon
// accounting fixes applied): identical Stats — every float bit for bit —
// and identical delivery sequences, across seeded random instances, both
// switching modes, finite and infinite buffers, with and without a
// virtual-channel assignment. (time, seq) totally orders events, so the
// two heap implementations must pop identically; any divergence is an
// engine bug, not tie-break noise.

import (
	"reflect"
	"testing"

	"repro/internal/deadlock"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

// diffConfigs is the configuration matrix every instance runs under.
func diffConfigs() []Config {
	return []Config{
		{Horizon: 300, Warmup: 50},
		{Horizon: 300, Warmup: 50, Switching: CutThrough},
		{Horizon: 300, Warmup: 50, BufferPackets: 2},
		{Horizon: 300, Warmup: 50, Switching: CutThrough, BufferPackets: 2},
	}
}

// runBoth executes the same instance on both engines and compares Stats
// and delivery order. classes may be nil. Returns false when the routing
// has no operating point (then both engines must agree on that too).
func runBoth(t *testing.T, r route.Routing, model power.Model, cfg Config, classes [][]int, label string) bool {
	t.Helper()

	ref, refErr := refNew(r, model, cfg)
	sim, err := New(r, model, cfg)
	if (refErr == nil) != (err == nil) {
		t.Fatalf("%s: feasibility disagrees: ref err %v, new err %v", label, refErr, err)
	}
	if err != nil {
		return false
	}
	if classes != nil {
		ref.assignClasses(classes)
		if err := sim.AssignClasses(classes); err != nil {
			t.Fatalf("%s: AssignClasses: %v", label, err)
		}
	}

	var refDel, newDel []Delivery
	ref.onDeliver = func(d Delivery) { refDel = append(refDel, d) }
	sim.Observe(func(d Delivery) { newDel = append(newDel, d) })

	refStats := ref.run()
	newStats := sim.Run()

	if !reflect.DeepEqual(refStats, newStats) {
		t.Errorf("%s: Stats diverge\nref: %+v\nnew: %+v", label, refStats, newStats)
	}
	if !reflect.DeepEqual(refDel, newDel) {
		n := len(refDel)
		if len(newDel) < n {
			n = len(newDel)
		}
		at := -1
		for i := 0; i < n; i++ {
			if refDel[i] != newDel[i] {
				at = i
				break
			}
		}
		t.Errorf("%s: delivery sequences diverge (ref %d, new %d events, first mismatch at %d)",
			label, len(refDel), len(newDel), at)
	}
	return true
}

// xyRoutingOf routes every communication of a seeded uniform workload
// along XY — deterministic paths with plenty of link sharing.
func xyRoutingOf(m *mesh.Mesh, seed int64, n int, wmin, wmax float64) route.Routing {
	set := workload.New(m, seed).Uniform(n, wmin, wmax)
	flows := make([]route.Flow, 0, len(set))
	for _, c := range set {
		flows = append(flows, route.Flow{Comm: c, Path: route.XY(c.Src, c.Dst)})
	}
	return route.Routing{Mesh: m, Flows: flows}
}

// TestDifferentialSeededInstances pins the engines equal across ≥40
// seeded instances × both switching modes × finite and infinite buffers.
func TestDifferentialSeededInstances(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	feasible := 0
	for seed := int64(0); seed < 50; seed++ {
		r := xyRoutingOf(m, seed, 12, 100, 700)
		ran := false
		for _, cfg := range diffConfigs() {
			if runBoth(t, r, model, cfg, nil, labelOf(seed, cfg)) {
				ran = true
			}
		}
		if ran {
			feasible++
		}
	}
	if feasible < 40 {
		t.Fatalf("only %d/50 seeded instances were feasible; the differential matrix is undersized", feasible)
	}
}

func labelOf(seed int64, cfg Config) string {
	l := string(rune('0'+seed/10)) + string(rune('0'+seed%10)) + "/" + cfg.Switching.String()
	if cfg.BufferPackets > 0 {
		l += "/finite"
	}
	return l
}

// TestDifferentialBackpressureAndVCs covers the hard paths the random
// instances miss: a cyclic-buffer ring under near-saturation (waiter
// wake chains, deadlock freeze) and the minimal-cycle routing with the
// escape-channel class assignment installed.
func TestDifferentialBackpressureAndVCs(t *testing.T) {
	ring, model := ringRouting(1150)
	for _, cfg := range []Config{
		{Horizon: 2000, BufferPackets: 1},
		{Horizon: 2000, BufferPackets: 1, Switching: CutThrough},
		{Horizon: 1500, Warmup: 100, BufferPackets: 64},
	} {
		runBoth(t, ring, model, cfg, nil, "ring")
	}

	cyc, model := minimalCycleRouting(1200)
	assign := deadlock.EscapeChannels(cyc)
	if err := assign.Validate(cyc); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Horizon: 2000, Warmup: 200, BufferPackets: 1},
		{Horizon: 2000, Warmup: 200, BufferPackets: 1, Switching: CutThrough},
	} {
		runBoth(t, cyc, model, cfg, nil, "cycle/plain")
		runBoth(t, cyc, model, cfg, assign.Classes, "cycle/vcs")
	}
}

// TestDifferentialPooledReuse runs the whole seeded matrix again through
// one pooled Workspace simulator: reuse across routings and
// configurations must stay byte-identical to the reference, trial after
// trial.
func TestDifferentialPooledReuse(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	ws := NewWorkspace()
	for seed := int64(0); seed < 20; seed++ {
		r := xyRoutingOf(m, seed, 12, 100, 700)
		for _, cfg := range diffConfigs() {
			ref, refErr := refNew(r, model, cfg)
			sim, err := ws.Simulator(r, model, cfg)
			if (refErr == nil) != (err == nil) {
				t.Fatalf("seed %d: feasibility disagrees: ref %v, pooled %v", seed, refErr, err)
			}
			if err != nil {
				continue
			}
			refStats := ref.run()
			newStats := sim.Run()
			if !reflect.DeepEqual(refStats, newStats) {
				t.Errorf("seed %d %v: pooled Stats diverge from reference", seed, cfg.Switching)
			}
		}
	}
}
