package noc

// Per-component energy accounting tests: the conservation identity
// (total = Σ router + Σ link + Σ buffer) on every run, a hand-computed
// single-packet scenario, and the topology-generic replay path (torus
// and circulant routings through the same engine).

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/solve"
	"repro/internal/tabroute"
	"repro/internal/topo"
	"repro/internal/topo/circulant"
	"repro/internal/topo/torus"
	"repro/internal/workload"
)

// checkConservation asserts the Energy identity: each component total is
// the exact sum of its per-component slice, and TotalNJ is the sum of
// the three totals.
func checkConservation(t *testing.T, st *Stats, label string) {
	t.Helper()
	e := st.Energy
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if got := sum(e.RouterNJ); got != e.RouterTotalNJ {
		t.Errorf("%s: router total %g != Σ RouterNJ %g", label, e.RouterTotalNJ, got)
	}
	if got := sum(e.LinkNJ); got != e.LinkTotalNJ {
		t.Errorf("%s: link total %g != Σ LinkNJ %g", label, e.LinkTotalNJ, got)
	}
	if got := sum(e.BufferNJ); got != e.BufferTotalNJ {
		t.Errorf("%s: buffer total %g != Σ BufferNJ %g", label, e.BufferTotalNJ, got)
	}
	if got := e.RouterTotalNJ + e.LinkTotalNJ + e.BufferTotalNJ; got != e.TotalNJ {
		t.Errorf("%s: TotalNJ %g != router+link+buffer %g", label, e.TotalNJ, got)
	}
}

// TestEnergySinglePacket pins the accounting against a hand computation:
// one flow whose period exceeds the horizon injects exactly one packet,
// which crosses an L-hop path — L router traversals, L−1 buffer writes,
// and per-link energy derivable from the reported busy times.
func TestEnergySinglePacket(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	c := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 3, V: 4}, Rate: 2}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: c, Path: route.XY(c.Src, c.Dst)}}}
	L := float64(len(r.Flows[0].Path))

	cfg := Config{Horizon: 400} // period = 2048/2 = 1024 µs > horizon
	sim, err := New(r, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.Injected != 1 || st.Delivered != 1 {
		t.Fatalf("expected exactly one delivered packet, got injected=%d delivered=%d", st.Injected, st.Delivered)
	}
	checkConservation(t, st, "single-packet")

	e := st.Energy
	bits := 2048.0
	if want := L * 0.5 * bits * 1e-3; math.Abs(e.RouterTotalNJ-want) > 1e-9 {
		t.Errorf("router total %g nJ, want %g (L=%v traversals at the default 0.5 pJ/bit)", e.RouterTotalNJ, want, L)
	}
	if want := (L - 1) * 0.3 * bits * 1e-3; math.Abs(e.BufferTotalNJ-want) > 1e-9 {
		t.Errorf("buffer total %g nJ, want %g (L-1 transit buffers at the default 0.3 pJ/bit)", e.BufferTotalNJ, want)
	}
	wantLink := 0.0
	for id, f := range st.LinkFreq {
		if f == 0 {
			continue
		}
		wantLink += model.Pleak*st.Horizon + model.Dynamic(f)*st.LinkUtilization[id]*st.Horizon
	}
	if math.Abs(e.LinkTotalNJ-wantLink) > 1e-6 {
		t.Errorf("link total %g nJ, want %g (leakage over horizon + dynamic over busy time)", e.LinkTotalNJ, wantLink)
	}
	// The source router drives the first link; its core must carry
	// router energy, and cores off the path none.
	if e.RouterNJ[m.CoordIndex(c.Src)] == 0 {
		t.Errorf("source router charged no energy")
	}
	if e.RouterNJ[m.CoordIndex(mesh.Coord{U: 4, V: 1})] != 0 {
		t.Errorf("off-path router charged energy")
	}
	// The activity-based link energy can never exceed the static
	// full-power estimate the paper optimizes.
	if e.LinkTotalNJ > st.EnergyNJ {
		t.Errorf("activity link energy %g exceeds static estimate %g", e.LinkTotalNJ, st.EnergyNJ)
	}
}

// TestEnergyConservationSeeded asserts the identity over seeded PR
// routings under every switching/buffer configuration, through a pooled
// workspace.
func TestEnergyConservationSeeded(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	ws := NewWorkspace()
	ran := 0
	for seed := int64(0); seed < 10; seed++ {
		set := workload.New(m, seed).Uniform(12, 100, 900)
		res, err := heur.Solve(heur.PR{}, heur.Instance{Mesh: m, Model: model, Comms: set})
		if err != nil || !res.Feasible {
			continue
		}
		for _, cfg := range diffConfigs() {
			sim, err := ws.Simulator(res.Routing, model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := sim.Run()
			checkConservation(t, st, labelOf(seed, cfg))
			if st.Energy.TotalNJ <= 0 {
				t.Errorf("seed %d: zero total energy on a delivering run", seed)
			}
			ran++
		}
	}
	if ran == 0 {
		t.Fatal("no feasible seeded instance; the matrix is empty")
	}
}

// TestEnergyTopologyReplay runs TABLE routings on a torus and a
// circulant through the simulator: the engine must replay non-mesh
// routings (link ids, coordinates, energy) without touching mesh code.
func TestEnergyTopologyReplay(t *testing.T) {
	tor, err := torus.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := circulant.New(16, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	model := power.KimHorowitz()
	for _, tp := range []topo.Topology{tor, circ} {
		set := workload.New(tp.Carrier(), 3).Uniform(6, 100, 600)
		in := solve.Instance{Topo: tp, Model: model, Comms: set}
		r, err := tabroute.Solver{}.Route(in, solve.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tp.Spec(), err)
		}
		sim, err := New(r, model, Config{Horizon: 300, Warmup: 50})
		if err != nil {
			t.Fatalf("%s: %v", tp.Spec(), err)
		}
		st := sim.Run()
		if st.Delivered == 0 {
			t.Errorf("%s: nothing delivered", tp.Spec())
		}
		if st.Injected != st.Delivered+st.Stalled+st.InFlight {
			t.Errorf("%s: packet accounting broken: %d != %d+%d+%d",
				tp.Spec(), st.Injected, st.Delivered, st.Stalled, st.InFlight)
		}
		checkConservation(t, st, tp.Spec())
		if st.Energy.RouterTotalNJ <= 0 || st.Energy.LinkTotalNJ <= 0 {
			t.Errorf("%s: empty router/link energy on a delivering run", tp.Spec())
		}
	}
}
