package noc

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// Classic cut-through latency: packetTime + (hops−1)·flitTime on an
// uncontended path with uniform link rate, versus hops·packetTime under
// store-and-forward.
func TestCutThroughLatencyFormula(t *testing.T) {
	m := mesh.MustNew(8, 8)
	g := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 6}, Rate: 800}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: g, Path: route.XY(g.Src, g.Dst)}}}
	model := power.KimHorowitz() // 800 quantizes to 1000 Mb/s
	hops := 5.0
	packetTime := 2048.0 / 1000.0
	flitTime := 128.0 / 1000.0

	sf, err := New(r, model, Config{Horizon: 2000, Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	sfStats := sf.Run()
	if got, want := sfStats.PerComm[1].AvgLatency(), hops*packetTime; math.Abs(got-want) > 1e-6 {
		t.Errorf("store-and-forward latency %.4f, want %.4f", got, want)
	}

	ct, err := New(r, model, Config{Horizon: 2000, Warmup: 100, Switching: CutThrough})
	if err != nil {
		t.Fatal(err)
	}
	ctStats := ct.Run()
	if got, want := ctStats.PerComm[1].AvgLatency(), packetTime+(hops-1)*flitTime; math.Abs(got-want) > 1e-6 {
		t.Errorf("cut-through latency %.4f, want %.4f", got, want)
	}
}

// Cut-through never increases latency and never changes goodput or power.
func TestCutThroughDominatesStoreAndForward(t *testing.T) {
	m := mesh.MustNew(8, 8)
	flows := []route.Flow{}
	set := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 5, V: 5}, Rate: 1100},
		{ID: 2, Src: mesh.Coord{U: 2, V: 1}, Dst: mesh.Coord{U: 6, V: 4}, Rate: 700},
		{ID: 3, Src: mesh.Coord{U: 1, V: 2}, Dst: mesh.Coord{U: 4, V: 6}, Rate: 900},
	}
	for _, c := range set {
		flows = append(flows, route.Flow{Comm: c, Path: route.XY(c.Src, c.Dst)})
	}
	r := route.Routing{Mesh: m, Flows: flows}
	model := power.KimHorowitz()
	run := func(sw Switching) *Stats {
		sim, err := New(r, model, Config{Horizon: 3000, Warmup: 300, Switching: sw})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	sf, ct := run(StoreAndForward), run(CutThrough)
	for _, c := range set {
		sfLat := sf.PerComm[c.ID].AvgLatency()
		ctLat := ct.PerComm[c.ID].AvgLatency()
		if ctLat > sfLat+1e-6 {
			t.Errorf("comm %d: cut-through latency %.3f > store-and-forward %.3f", c.ID, ctLat, sfLat)
		}
		if rel := math.Abs(ct.DeliveredRate(c.ID)-c.Rate) / c.Rate; rel > 0.08 {
			t.Errorf("comm %d: cut-through goodput off by %.1f%%", c.ID, rel*100)
		}
	}
	if sf.PowerMW != ct.PowerMW {
		t.Errorf("power differs across switching modes: %g vs %g", sf.PowerMW, ct.PowerMW)
	}
}

// Under cut-through a slower downstream link still bounds the pipeline:
// the tail cannot clear faster than the upstream serialization allows.
func TestCutThroughMixedFrequencies(t *testing.T) {
	m := mesh.MustNew(8, 8)
	// One hot flow (2200 → 2500 Mb/s links) feeding a path segment, one
	// cool flow sharing a link quantized lower.
	g := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 3, V: 3}, Rate: 2200}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: g, Path: route.XY(g.Src, g.Dst)}}}
	sim, err := New(r, power.KimHorowitz(), Config{Horizon: 2000, Warmup: 100, Switching: CutThrough})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	// All links at 2500: latency = packet + 3·flit.
	want := 2048.0/2500 + 3*128.0/2500
	if got := st.PerComm[1].AvgLatency(); math.Abs(got-want) > 1e-6 {
		t.Errorf("latency %.4f, want %.4f", got, want)
	}
	if rel := math.Abs(st.DeliveredRate(1)-2200) / 2200; rel > 0.06 {
		t.Errorf("goodput off by %.1f%%", rel*100)
	}
}

func TestSwitchingString(t *testing.T) {
	if StoreAndForward.String() != "store-and-forward" || CutThrough.String() != "cut-through" {
		t.Error("switching names wrong")
	}
}
