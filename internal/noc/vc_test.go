package noc

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/deadlock"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// minimalCycleRouting builds four *minimal* 3-hop flows whose middle hops
// circle the square (4,4)-(4,5)-(5,5)-(5,4): the relay buffers of the four
// square links form a dependency cycle (SE, SW, NW and NE flows turning in
// the same rotational direction). Unlike the non-minimal ring of the
// backpressure tests, every path here is a legal Manhattan path, so this
// is a hazard the paper's heuristics could genuinely produce.
func minimalCycleRouting(rate float64) (route.Routing, power.Model) {
	m := mesh.MustNew(8, 8)
	c := func(id int, src, dst mesh.Coord) comm.Comm {
		return comm.Comm{ID: id, Src: src, Dst: dst, Rate: rate}
	}
	mk := func(id int, cells ...mesh.Coord) route.Flow {
		var p route.Path
		for i := 0; i+1 < len(cells); i++ {
			p = append(p, mesh.Link{From: cells[i], To: cells[i+1]})
		}
		return route.Flow{Comm: c(id, cells[0], cells[len(cells)-1]), Path: p}
	}
	flows := []route.Flow{
		// SE: E,E,S — holds top-E requesting right-S.
		mk(1, mesh.Coord{U: 4, V: 3}, mesh.Coord{U: 4, V: 4}, mesh.Coord{U: 4, V: 5}, mesh.Coord{U: 5, V: 5}),
		// SW: S,S,W — holds right-S requesting bottom-W.
		mk(2, mesh.Coord{U: 3, V: 5}, mesh.Coord{U: 4, V: 5}, mesh.Coord{U: 5, V: 5}, mesh.Coord{U: 5, V: 4}),
		// NW: W,W,N — holds bottom-W requesting left-N.
		mk(3, mesh.Coord{U: 5, V: 6}, mesh.Coord{U: 5, V: 5}, mesh.Coord{U: 5, V: 4}, mesh.Coord{U: 4, V: 4}),
		// NE: N,N,E — holds left-N requesting top-E.
		mk(4, mesh.Coord{U: 6, V: 4}, mesh.Coord{U: 5, V: 4}, mesh.Coord{U: 4, V: 4}, mesh.Coord{U: 4, V: 5}),
	}
	return route.Routing{Mesh: m, Flows: flows}, power.KimHorowitz()
}

// The minimal cycle instance passes full Manhattan validation and has a
// cyclic CDG — the hazard is real, not an artifact of crafted paths.
func TestMinimalCycleIsLegalManhattanRouting(t *testing.T) {
	r, _ := minimalCycleRouting(1700)
	var set comm.Set
	for _, f := range r.Flows {
		set = append(set, f.Comm)
	}
	if err := r.Validate(set, 1); err != nil {
		t.Fatalf("cycle routing not a valid Manhattan routing: %v", err)
	}
	if deadlock.BuildCDG(r).Acyclic() {
		t.Fatal("expected cyclic CDG")
	}
}

// Single-class operation with 1-packet buffers deadlocks on the minimal
// cycle; installing the Duato escape-channel assignment on the same
// routing, same buffers, restores full delivery. This is the dynamic
// counterpart of the static certification in internal/deadlock.
func TestEscapeChannelsResolveDeadlock(t *testing.T) {
	r, model := minimalCycleRouting(1200)
	demand := 4 * 1200.0

	run := func(withVCs bool) *Stats {
		sim, err := New(r, model, Config{Horizon: 4000, Warmup: 500, BufferPackets: 1})
		if err != nil {
			t.Fatal(err)
		}
		if withVCs {
			assign := deadlock.EscapeChannels(r)
			if err := assign.Validate(r); err != nil {
				t.Fatal(err)
			}
			if err := sim.AssignClasses(assign.Classes); err != nil {
				t.Fatal(err)
			}
		}
		return sim.Run()
	}

	plain := run(false)
	total := 0.0
	for id := 1; id <= 4; id++ {
		total += plain.DeliveredRate(id)
	}
	if total > demand*0.5 {
		t.Fatalf("single-class tiny buffers delivered %.0f of %.0f — expected deadlock", total, demand)
	}
	if plain.Stalled == 0 {
		t.Fatal("no stalled packets in the deadlocked run")
	}

	vcs := run(true)
	for id := 1; id <= 4; id++ {
		got := vcs.DeliveredRate(id)
		if math.Abs(got-1200)/1200 > 0.08 {
			t.Errorf("with escape VCs comm %d delivered %.0f, want ≈1200", id, got)
		}
	}
}

// The class assignment is validated for shape.
func TestAssignClassesValidation(t *testing.T) {
	r, model := minimalCycleRouting(500)
	sim, err := New(r, model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AssignClasses([][]int{{0}}); err == nil {
		t.Error("wrong flow count accepted")
	}
	if err := sim.AssignClasses([][]int{{0, 0}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}}); err == nil {
		t.Error("short class vector accepted")
	}
	bad := [][]int{{0, 0, 9}, {0, 0, 0}, {0, 0, 0}, {0, 0, 0}}
	if err := sim.AssignClasses(bad); err == nil {
		t.Error("out-of-range class accepted")
	}
	good := deadlock.EscapeChannels(r)
	if err := sim.AssignClasses(good.Classes); err != nil {
		t.Fatal(err)
	}
	if err := sim.AssignClasses(nil); err != nil {
		t.Fatal(err)
	}
}

// With ample buffers the VC assignment changes nothing measurable: the
// physical serializer is the only shared resource.
func TestVCsNeutralWithAmpleBuffers(t *testing.T) {
	r, model := minimalCycleRouting(1000)
	run := func(withVCs bool) *Stats {
		sim, err := New(r, model, Config{Horizon: 2000, Warmup: 200, BufferPackets: 64})
		if err != nil {
			t.Fatal(err)
		}
		if withVCs {
			assign := deadlock.EscapeChannels(r)
			if err := sim.AssignClasses(assign.Classes); err != nil {
				t.Fatal(err)
			}
		}
		return sim.Run()
	}
	a, b := run(false), run(true)
	for id := 1; id <= 4; id++ {
		if math.Abs(a.DeliveredRate(id)-b.DeliveredRate(id)) > 50 {
			t.Errorf("comm %d: %.0f vs %.0f with ample buffers", id, a.DeliveredRate(id), b.DeliveredRate(id))
		}
	}
}
