package noc

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

func singleFlowRouting(t *testing.T, rate float64) (route.Routing, power.Model) {
	t.Helper()
	m := mesh.MustNew(8, 8)
	g := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 4, V: 5}, Rate: rate}
	r := route.Routing{Mesh: m, Flows: []route.Flow{{Comm: g, Path: route.XY(g.Src, g.Dst)}}}
	return r, power.KimHorowitz()
}

// A single flow on an uncontended path delivers its requested rate and a
// per-packet latency of hops × (bits/freq).
func TestSingleFlowDeliversRequestedRate(t *testing.T) {
	r, model := singleFlowRouting(t, 900)
	sim, err := New(r, model, Config{Horizon: 2000, Warmup: 200, PacketBits: 2048})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	got := st.DeliveredRate(1)
	if math.Abs(got-900)/900 > 0.05 {
		t.Errorf("delivered %.1f Mb/s, want ≈900", got)
	}
	// 900 Mb/s quantizes to 1000 Mb/s links: 2048 bits take 2.048 µs per
	// hop, 7 hops, no queueing.
	cs := st.PerComm[1]
	want := 7 * 2048.0 / 1000.0
	if math.Abs(cs.AvgLatency()-want) > 0.01 {
		t.Errorf("avg latency %.3f µs, want %.3f", cs.AvgLatency(), want)
	}
	if cs.MaxLatency > want+0.01 {
		t.Errorf("max latency %.3f µs, want %.3f (no queueing possible)", cs.MaxLatency, want)
	}
}

// Simulated power equals the analytic evaluation of the same routing.
func TestSimPowerMatchesAnalytic(t *testing.T) {
	r, model := singleFlowRouting(t, 1800)
	res := route.Evaluate(r, model)
	sim, err := New(r, model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if math.Abs(st.PowerMW-res.Power.Total()) > 1e-9 {
		t.Errorf("sim power %.3f mW, analytic %.3f mW", st.PowerMW, res.Power.Total())
	}
	if st.ActiveLinks != res.Power.ActiveLinks {
		t.Errorf("sim active links %d, analytic %d", st.ActiveLinks, res.Power.ActiveLinks)
	}
	if math.Abs(st.EnergyNJ-st.PowerMW*st.Horizon) > 1e-9 {
		t.Error("energy != power × horizon")
	}
}

// Link utilization approximates analytic load / assigned frequency.
func TestUtilizationMatchesLoadOverFreq(t *testing.T) {
	r, model := singleFlowRouting(t, 2200) // quantizes to 2500
	sim, err := New(r, model, Config{Horizon: 4000, PacketBits: 2048})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	want := 2200.0 / 2500.0
	for id, f := range st.LinkFreq {
		if f == 0 {
			continue
		}
		if u := st.LinkUtilization[id]; math.Abs(u-want) > 0.05 {
			t.Errorf("link %d utilization %.3f, want ≈%.3f", id, u, want)
		}
	}
}

// Infeasible routings (load above the top frequency) are rejected.
func TestNewRejectsOverload(t *testing.T) {
	r, model := singleFlowRouting(t, 5000)
	if _, err := New(r, model, Config{}); err == nil {
		t.Fatal("overloaded routing accepted")
	}
}

// Contention: two flows sharing a link serialize but both still deliver
// their full rate when the link frequency covers the sum.
func TestSharedLinkServesBothFlows(t *testing.T) {
	m := mesh.MustNew(8, 8)
	g1 := comm.Comm{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 1, V: 5}, Rate: 1200}
	g2 := comm.Comm{ID: 2, Src: mesh.Coord{U: 1, V: 2}, Dst: mesh.Coord{U: 1, V: 6}, Rate: 1200}
	r := route.Routing{Mesh: m, Flows: []route.Flow{
		{Comm: g1, Path: route.XY(g1.Src, g1.Dst)},
		{Comm: g2, Path: route.XY(g2.Src, g2.Dst)},
	}}
	model := power.KimHorowitz() // shared links carry 2400 → 2500 Mb/s
	sim, err := New(r, model, Config{Horizon: 3000, Warmup: 300, PacketBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	for _, id := range []int{1, 2} {
		if got := st.DeliveredRate(id); math.Abs(got-1200)/1200 > 0.06 {
			t.Errorf("comm %d delivered %.1f Mb/s, want ≈1200", id, got)
		}
	}
	// Shared links run hotter than private ones.
	if st.MeanUtilization() <= 0 {
		t.Error("no utilization recorded")
	}
}

// End-to-end: a heuristic routing of a random workload, replayed in the
// simulator, delivers every communication's rate within tolerance. This is
// the E15 cross-validation experiment in miniature.
func TestHeuristicRoutingDeliversWorkload(t *testing.T) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := workload.New(m, 21).Uniform(15, 100, 1200)
	res, err := heur.Solve(heur.PR{}, heur.Instance{Mesh: m, Model: model, Comms: set})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("instance infeasible for PR; seed chosen to avoid this")
	}
	sim, err := New(res.Routing, model, Config{Horizon: 3000, Warmup: 500, PacketBits: 2048})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	for _, c := range set {
		got := st.DeliveredRate(c.ID)
		if math.Abs(got-c.Rate)/c.Rate > 0.10 {
			t.Errorf("comm %d delivered %.1f Mb/s, want ≈%.1f", c.ID, got, c.Rate)
		}
	}
}

// Multi-path flows: fragments of a split communication are aggregated in
// the per-communication stats.
func TestMultiPathAggregation(t *testing.T) {
	m := mesh.MustNew(4, 4)
	g := comm.Comm{ID: 9, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 4, V: 4}, Rate: 2000}
	r := route.Routing{Mesh: m, Flows: []route.Flow{
		{Comm: comm.Comm{ID: 9, Src: g.Src, Dst: g.Dst, Rate: 1000}, Path: route.XY(g.Src, g.Dst)},
		{Comm: comm.Comm{ID: 9, Src: g.Src, Dst: g.Dst, Rate: 1000}, Path: route.YX(g.Src, g.Dst)},
	}}
	model := power.KimHorowitz()
	sim, err := New(r, model, Config{Horizon: 3000, Warmup: 300})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if cs := st.PerComm[9]; math.Abs(cs.RequestedRate-2000) > 1e-9 {
		t.Errorf("aggregated request %.1f, want 2000", cs.RequestedRate)
	}
	if got := st.DeliveredRate(9); math.Abs(got-2000)/2000 > 0.06 {
		t.Errorf("aggregated delivery %.1f Mb/s, want ≈2000", got)
	}
}

// Determinism: identical runs produce identical statistics.
func TestSimDeterministic(t *testing.T) {
	r, model := singleFlowRouting(t, 1500)
	run := func() *Stats {
		sim, err := New(r, model, Config{Horizon: 1000})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.PerComm[1] != b.PerComm[1] {
		t.Error("per-comm stats differ between identical runs")
	}
	if a.PowerMW != b.PowerMW || a.EnergyNJ != b.EnergyNJ {
		t.Error("power/energy differ between identical runs")
	}
}

func TestSummaryRenders(t *testing.T) {
	r, model := singleFlowRouting(t, 800)
	sim, err := New(r, model, Config{Horizon: 500})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	s := st.Summary()
	if len(s) == 0 {
		t.Fatal("empty summary")
	}
}
