package noc

// Engine benchmarks: the arena engine (pooled via Workspace, the
// configuration multi-trial callers run) against the historical
// pointer/container-heap reference, plus the steady-state allocation
// guard. The reference engine only exists in this test package, so the
// old-vs-new ratio is measured here; the repository-level BenchmarkNoCSim
// (bench_test.go) tracks the production engine's absolute ns/op in
// BENCH_solvers.json for cmd/benchguard.

import (
	"testing"

	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/workload"
)

// benchRouting is the E15 reference instance: a PR routing of 15 random
// communications on the paper's 8×8 mesh.
func benchRouting(b *testing.B) (route.Routing, power.Model) {
	b.Helper()
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := workload.New(m, 8).Uniform(15, 100, 1200)
	res, err := heur.Solve(heur.PR{}, heur.Instance{Mesh: m, Model: model, Comms: set})
	if err != nil || !res.Feasible {
		b.Fatalf("setup: err=%v feasible=%v", err, res.Feasible)
	}
	return res.Routing, model
}

func benchConfig(sw Switching) Config {
	return Config{Horizon: 1000, Warmup: 200, Switching: sw}
}

// BenchmarkEngineVsReference runs the same instance through both engines,
// both switching modes. The arena/reference ns/op ratio is the rebuild's
// speedup; the differential tests hold the two byte-identical.
func BenchmarkEngineVsReference(b *testing.B) {
	r, model := benchRouting(b)
	for _, sw := range []Switching{StoreAndForward, CutThrough} {
		b.Run("reference/"+sw.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ref, err := refNew(r, model, benchConfig(sw))
				if err != nil {
					b.Fatal(err)
				}
				ref.run()
			}
		})
		b.Run("arena/"+sw.String(), func(b *testing.B) {
			ws := NewWorkspace()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim, err := ws.Simulator(r, model, benchConfig(sw))
				if err != nil {
					b.Fatal(err)
				}
				sim.Run()
			}
		})
	}
}

// maxSimAllocsPerRun bounds a warmed pooled run's allocations: the Stats
// output (struct, per-comm map, two per-link slices, map growth) is the
// only fresh memory — the engine itself (events, packets, queues) reuses
// workspace buffers. Measured ~10; 24 leaves headroom for runtime drift
// without letting an engine-side allocation regression through.
const maxSimAllocsPerRun = 24

// BenchmarkNoCSimAllocs is the steady-state allocation guard of the
// pooled engine, both switching modes.
func BenchmarkNoCSimAllocs(b *testing.B) {
	r, model := benchRouting(b)
	for _, sw := range []Switching{StoreAndForward, CutThrough} {
		ws := NewWorkspace()
		run := func() {
			sim, err := ws.Simulator(r, model, benchConfig(sw))
			if err != nil {
				b.Fatal(err)
			}
			sim.Run()
		}
		run() // warm the pooled buffers
		perRun := testing.AllocsPerRun(3, run)
		b.ReportMetric(perRun, "allocs/run-"+sw.String())
		if perRun > maxSimAllocsPerRun {
			b.Fatalf("%v: %.0f allocations per warmed pooled run, guard %d — the engine is allocating on the hot path",
				sw, perRun, maxSimAllocsPerRun)
		}
	}
	for i := 0; i < b.N; i++ { // keep the harness happy; the guard above is the point
	}
}
