package noc

import (
	"fmt"
	"io"
)

// TraceEvent is one packet lifecycle record emitted by a traced run.
type TraceEvent struct {
	Time   float64 // µs
	Kind   string  // "inject", "hop", "deliver"
	CommID int
	Hop    int     // hop index completed ("hop"/"deliver"); 0 for inject
	Lat    float64 // delivery latency, µs ("deliver" only)
}

// Tracer collects packet lifecycle events during a run. Attach one with
// Simulator.Trace before calling Run. The zero value discards nothing and
// keeps every event in memory; cap bounds retention for long runs.
type Tracer struct {
	// Cap bounds the number of retained events (0 = unlimited).
	Cap    int
	events []TraceEvent
	// Dropped counts events discarded after Cap was reached.
	Dropped int
}

func (t *Tracer) record(e TraceEvent) {
	if t == nil {
		return
	}
	if t.Cap > 0 && len(t.events) >= t.Cap {
		t.Dropped++
		return
	}
	t.events = append(t.events, e)
}

// Events returns the recorded events in simulation order.
func (t *Tracer) Events() []TraceEvent { return t.events }

// WriteCSV emits the trace as CSV with a header row.
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_us,kind,comm,hop,latency_us"); err != nil {
		return err
	}
	for _, e := range t.events {
		if _, err := fmt.Fprintf(w, "%.4f,%s,%d,%d,%.4f\n",
			e.Time, e.Kind, e.CommID, e.Hop, e.Lat); err != nil {
			return err
		}
	}
	return nil
}

// Trace attaches a tracer to the simulator; pass nil to detach. Must be
// called before Run.
func (s *Simulator) Trace(t *Tracer) { s.tracer = t }
