package noc

import (
	"fmt"
	"io"

	"repro/internal/comm"
)

// TraceEvent is one packet lifecycle record emitted by a traced run.
type TraceEvent struct {
	Time   float64 // µs
	Kind   string  // "inject", "hop", "deliver"
	CommID int
	Hop    int     // hop index completed ("hop"/"deliver"); 0 for inject
	Lat    float64 // delivery latency, µs ("deliver" only)
}

// Tracer collects packet lifecycle events during a run. Attach one with
// Simulator.Trace before calling Run. The zero value discards nothing and
// keeps every event in memory; cap bounds retention for long runs.
type Tracer struct {
	// Cap bounds the number of retained events (0 = unlimited).
	Cap    int
	events []TraceEvent
	// Dropped counts events discarded after Cap was reached.
	Dropped int
}

func (t *Tracer) record(e TraceEvent) {
	if t == nil {
		return
	}
	if t.Cap > 0 && len(t.events) >= t.Cap {
		t.Dropped++
		return
	}
	t.events = append(t.events, e)
}

// Events returns the recorded events in simulation order.
func (t *Tracer) Events() []TraceEvent { return t.events }

// WriteCSV emits the trace as CSV with a header row.
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_us,kind,comm,hop,latency_us"); err != nil {
		return err
	}
	for _, e := range t.events {
		if _, err := fmt.Fprintf(w, "%.4f,%s,%d,%d,%.4f\n",
			e.Time, e.Kind, e.CommID, e.Hop, e.Lat); err != nil {
			return err
		}
	}
	return nil
}

// ExportWorkload converts the trace's deliver events into a communication
// set carrying each base communication's observed goodput: packets whose
// injection fell inside [warmup, horizon) contribute packetBits bits, and
// the rate is total delivered bits over the measurement window (Mb/s, the
// same accounting as Stats.DeliveredRate). Communications that delivered
// nothing are dropped; source, sink and ID come from the matching base
// entry. The result reuses dst's storage, so trace-driven workload
// generators can replay simulator observations without allocating per
// draw. Events must come from a run over the base set; an unknown comm ID
// in the trace is an error, as is a tracer that dropped events after
// hitting Cap — deliver events may be among the drops, and a silently
// undercounted goodput is worse than no export. Retention-free consumers
// should use a WorkloadObserver instead.
func (t *Tracer) ExportWorkload(dst, base comm.Set, packetBits, warmup, horizon float64) (comm.Set, error) {
	if t.Dropped > 0 {
		return nil, fmt.Errorf("noc: tracer dropped %d events at Cap %d; goodput would be undercounted (raise Cap or stream a WorkloadObserver)", t.Dropped, t.Cap)
	}
	if packetBits <= 0 {
		return nil, fmt.Errorf("noc: non-positive packet size %g", packetBits)
	}
	window := horizon - warmup
	if window <= 0 {
		return nil, fmt.Errorf("noc: empty measurement window [%g, %g)", warmup, horizon)
	}
	byID := make(map[int]int, len(base))
	for i, c := range base {
		byID[c.ID] = i
	}
	bits := make(map[int]float64, len(base))
	for _, e := range t.events {
		if e.Kind != "deliver" {
			continue
		}
		if injected := e.Time - e.Lat; injected < warmup {
			continue
		}
		if _, ok := byID[e.CommID]; !ok {
			return nil, fmt.Errorf("noc: traced comm %d not in the base set", e.CommID)
		}
		bits[e.CommID] += packetBits
	}
	out := dst[:0]
	for _, c := range base {
		b := bits[c.ID]
		if b <= 0 {
			continue
		}
		c.Rate = b / window
		out = append(out, c)
	}
	return out, nil
}

// Trace attaches a tracer to the simulator; pass nil to detach. Must be
// called before Run.
func (s *Simulator) Trace(t *Tracer) { s.tracer = t }
