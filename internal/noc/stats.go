package noc

import (
	"fmt"
	"sort"

	"repro/internal/route"
)

// CommStats aggregates per-communication delivery statistics.
type CommStats struct {
	// RequestedRate is Σ of the communication's flow rates (Mb/s).
	RequestedRate float64
	// DeliveredBits counts bits that reached the sink after warmup.
	DeliveredBits float64
	// Packets counts delivered packets after warmup.
	Packets int
	// TotalLatency accumulates injection→delivery times (µs).
	TotalLatency float64
	// MaxLatency is the worst packet latency observed (µs).
	MaxLatency float64
}

// AvgLatency returns the mean packet latency in µs (0 with no packets).
func (c CommStats) AvgLatency() float64 {
	if c.Packets == 0 {
		return 0
	}
	return c.TotalLatency / float64(c.Packets)
}

// Energy is the per-component energy breakdown of a run, RACER-style:
// router datapath energy per core, link energy per link id (leakage over
// the whole horizon plus dynamic switching while busy), and input-buffer
// energy per link id, all in nJ. The three slices are carved from one
// slab and owned by the Stats. By construction
//
//	TotalNJ = RouterTotalNJ + LinkTotalNJ + BufferTotalNJ
//
// and each total is the exact sum of its per-component slice — the
// conservation identity the accounting tests pin. Compare TotalNJ with
// Stats.EnergyNJ (the static full-power estimate) to see how much the
// activity-based model recovers on lightly utilized links.
type Energy struct {
	// RouterNJ is indexed by core CoordIndex.
	RouterNJ []float64
	// LinkNJ and BufferNJ are indexed by link id.
	LinkNJ   []float64
	BufferNJ []float64

	RouterTotalNJ float64
	LinkTotalNJ   float64
	BufferTotalNJ float64
	// TotalNJ is the sum of the three component totals.
	TotalNJ float64
}

// Stats is the outcome of a simulation run.
type Stats struct {
	// Horizon and Warmup echo the configuration (µs).
	Horizon, Warmup float64
	// PerComm maps communication ID to its delivery statistics.
	PerComm map[int]CommStats
	// LinkUtilization is busy-time/horizon per link id (0 for idle).
	LinkUtilization []float64
	// LinkFreq is the assigned DVFS frequency per link id (Mb/s).
	LinkFreq []float64
	// PowerMW is the total link power at the assigned frequencies.
	PowerMW float64
	// EnergyNJ is PowerMW × Horizon — the static estimate that charges
	// every active link full power for the whole run, the paper's
	// figure of merit. Energy holds the activity-based breakdown.
	EnergyNJ float64
	// Energy is the per-component (router/link/buffer) breakdown.
	Energy Energy
	// ActiveLinks counts links carrying any traffic.
	ActiveLinks int
	// Injected counts packets injected before the horizon, warmup
	// included. Every injected packet is accounted for:
	// Injected = Delivered + Stalled + InFlight.
	Injected int
	// Delivered counts every delivered packet, warmup included (the
	// PerComm figures only count post-warmup deliveries).
	Delivered int
	// InFlight counts packets mid-transmission at the horizon — started
	// on a link but with their arrival scheduled past it. The historical
	// engine dropped these from the accounting entirely.
	InFlight int
	// Stalled counts packets still sitting in link queues at the
	// horizon. Small numbers are in-flight tails; persistent growth —
	// or any stall with nothing delivered — indicates backpressure
	// deadlock (finite buffers + cyclic channel dependencies).
	Stalled int
}

func newStats(r route.Routing, cfg Config) *Stats {
	space := r.Topology().LinkIDSpace()
	st := &Stats{
		Horizon:         cfg.Horizon,
		Warmup:          cfg.Warmup,
		PerComm:         make(map[int]CommStats),
		LinkUtilization: make([]float64, space),
		LinkFreq:        make([]float64, space),
	}
	for _, fl := range r.Flows {
		cs := st.PerComm[fl.Comm.ID]
		cs.RequestedRate += fl.Comm.Rate
		st.PerComm[fl.Comm.ID] = cs
	}
	return st
}

func (st *Stats) deliver(commID int, injected, bits, now float64) {
	st.Delivered++
	if injected < st.Warmup {
		return
	}
	cs := st.PerComm[commID]
	cs.DeliveredBits += bits
	cs.Packets++
	lat := now - injected
	cs.TotalLatency += lat
	if lat > cs.MaxLatency {
		cs.MaxLatency = lat
	}
	st.PerComm[commID] = cs
}

// DeliveredRate returns the post-warmup goodput of a communication in
// Mb/s.
func (st *Stats) DeliveredRate(commID int) float64 {
	window := st.Horizon - st.Warmup
	if window <= 0 {
		return 0
	}
	return st.PerComm[commID].DeliveredBits / window
}

// MeanUtilization returns the mean utilization over active links.
func (st *Stats) MeanUtilization() float64 {
	sum, n := 0.0, 0
	for id, u := range st.LinkUtilization {
		if st.LinkFreq[id] > 0 {
			sum += u
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Summary renders a short human-readable report: per-comm goodput versus
// request plus aggregate link figures, in communication-ID order.
func (st *Stats) Summary() string {
	ids := make([]int, 0, len(st.PerComm))
	for id := range st.PerComm {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := fmt.Sprintf("horizon %.0fµs, %d active links, power %.1f mW, energy %.0f nJ\n",
		st.Horizon, st.ActiveLinks, st.PowerMW, st.EnergyNJ)
	for _, id := range ids {
		cs := st.PerComm[id]
		out += fmt.Sprintf("  comm %3d: requested %7.1f Mb/s, delivered %7.1f Mb/s, avg latency %6.2f µs (max %6.2f)\n",
			id, cs.RequestedRate, st.DeliveredRate(id), cs.AvgLatency(), cs.MaxLatency)
	}
	return out
}
