package noc

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/route"
)

// Switching selects the forwarding discipline of the routers.
type Switching int

const (
	// StoreAndForward retransmits a packet only after it has fully
	// arrived at a router.
	StoreAndForward Switching = iota
	// CutThrough pipelines: the next link may start forwarding as soon
	// as the head flit arrives, one flit time after the upstream link
	// started, while the tail constrains the downstream completion —
	// the latency model of wormhole/virtual-cut-through networks with
	// ample buffering (the paper's routers; deadlock handled by escape
	// channels [3] / resource ordering [5]).
	CutThrough
)

// String names the switching mode.
func (s Switching) String() string {
	if s == CutThrough {
		return "cut-through"
	}
	return "store-and-forward"
}

// Config tunes a simulation run. Rates are in Mb/s = bits/µs, times in µs.
type Config struct {
	// PacketBits is the packet size; all flows use fixed-size packets.
	// Zero means 2048 bits.
	PacketBits float64
	// FlitBits is the flit size used by CutThrough switching. Zero
	// means 128 bits.
	FlitBits float64
	// Horizon is the simulated duration in µs. Zero means 500 µs.
	Horizon float64
	// Warmup discards latency/throughput samples injected before this
	// time (µs), letting queues reach steady state. Zero keeps all.
	Warmup float64
	// Switching selects store-and-forward (default) or cut-through.
	Switching Switching
	// BufferPackets bounds each link's input queue; a link refuses to
	// accept a packet whose *next* hop's queue is full, modelling
	// credit-based backpressure. Zero means unbounded buffers. With
	// finite buffers, routings whose channel dependency graph is cyclic
	// (see internal/deadlock) can genuinely deadlock; Stats.Stalled
	// reports packets frozen at the horizon.
	BufferPackets int
}

func (c *Config) setDefaults() {
	if c.PacketBits == 0 {
		c.PacketBits = 2048
	}
	if c.FlitBits == 0 {
		c.FlitBits = 128
	}
	if c.Horizon == 0 {
		c.Horizon = 500
	}
}

// packet is one in-flight packet.
type packet struct {
	flow     int     // index into Simulator.flows
	hop      int     // next path hop to traverse
	injected float64 // injection time
	bits     float64
	// prevDone is the time the packet's tail cleared the previous link;
	// cut-through uses it to constrain downstream completions.
	prevDone float64
}

// numClasses is the number of virtual channels per physical link: class 0
// is the escape channel, class 1 the adaptive one (internal/deadlock).
// Runs without a class assignment use class 0 only.
const numClasses = 2

// linkState is the per-link serialization state. Queues, buffers and
// blocked-upstream lists are per virtual channel; the physical serializer
// (busy flag, frequency) is shared.
type linkState struct {
	freq     float64 // assigned DVFS frequency (Mb/s); 0 = unused link
	busy     bool
	busyTime float64
	queues   [numClasses][]*packet
	// reserved counts in-flight packets that have claimed a buffer slot
	// but not yet arrived (finite-buffer mode).
	reserved [numClasses]int
	// relayQueued counts queued transit packets (hop > 0): only these
	// occupy the router's finite buffer; freshly injected packets wait
	// in the source NIC's unbounded queue.
	relayQueued [numClasses]int
	// waiters lists upstream link ids blocked on this VC's buffer.
	waiters [numClasses][]int
}

func (ls *linkState) queuedPackets() int {
	n := 0
	for c := 0; c < numClasses; c++ {
		n += len(ls.queues[c])
	}
	return n
}

// Simulator replays a routing as discrete packet traffic.
type Simulator struct {
	routing route.Routing
	model   power.Model
	cfg     Config
	links   []linkState
	tracer  *Tracer
	// classes[f][h] is the virtual-channel class of flow f's h-th hop;
	// nil means everything rides class 0.
	classes [][]int
}

// AssignClasses installs a per-hop virtual-channel schedule, e.g. the
// escape-channel assignment of internal/deadlock (Assignment.Classes).
// Each flow's slice must cover its path; classes are 0 (escape) or 1
// (adaptive). Call before Run; pass nil to revert to single-class
// operation.
func (s *Simulator) AssignClasses(classes [][]int) error {
	if classes == nil {
		s.classes = nil
		return nil
	}
	if len(classes) != len(s.routing.Flows) {
		return fmt.Errorf("noc: %d class vectors for %d flows", len(classes), len(s.routing.Flows))
	}
	for f, cs := range classes {
		if len(cs) != len(s.routing.Flows[f].Path) {
			return fmt.Errorf("noc: flow %d: %d classes for %d hops", f, len(cs), len(s.routing.Flows[f].Path))
		}
		for h, c := range cs {
			if c < 0 || c >= numClasses {
				return fmt.Errorf("noc: flow %d hop %d: class %d out of range", f, h, c)
			}
		}
	}
	s.classes = classes
	return nil
}

// classOf returns the VC class of a flow's hop.
func (s *Simulator) classOf(flow, hop int) int {
	if s.classes == nil {
		return 0
	}
	return s.classes[flow][hop]
}

// New prepares a simulator for the routing: per-link DVFS frequencies are
// assigned by quantizing the routing's analytic loads under the model,
// exactly as the system would configure the links. An error is returned
// when the routing is infeasible (some load above the top frequency) —
// such routings count as failures in the paper and have no operating
// point to simulate.
func New(r route.Routing, model power.Model, cfg Config) (*Simulator, error) {
	cfg.setDefaults()
	loads := r.Loads()
	links := make([]linkState, r.Mesh.LinkIDSpace())
	for id, load := range loads {
		if load == 0 {
			continue
		}
		f, err := model.Quantize(load)
		if err != nil {
			return nil, fmt.Errorf("noc: link %v: %w", r.Mesh.LinkByID(id), err)
		}
		links[id].freq = f
	}
	return &Simulator{routing: r, model: model, cfg: cfg, links: links}, nil
}

// Run executes the simulation until the horizon and returns the collected
// statistics. Run may be called once per Simulator.
func (s *Simulator) Run() *Stats {
	st := newStats(s.routing, s.cfg)
	q := &eventQueue{}

	// Stagger flow start phases deterministically across one packet
	// period so same-rate flows do not inject in lockstep.
	for i, fl := range s.routing.Flows {
		period := s.cfg.PacketBits / fl.Comm.Rate
		phase := period * float64(i%7) / 7.0
		q.push(&event{time: phase, kind: evInject, flow: i})
	}

	for q.Len() > 0 {
		e := q.pop()
		if e.time > s.cfg.Horizon {
			break
		}
		switch e.kind {
		case evInject:
			fl := s.routing.Flows[e.flow]
			pkt := &packet{flow: e.flow, injected: e.time, bits: s.cfg.PacketBits, prevDone: e.time}
			s.tracer.record(TraceEvent{Time: e.time, Kind: "inject", CommID: fl.Comm.ID})
			s.arrive(q, st, pkt, e.time)
			period := s.cfg.PacketBits / fl.Comm.Rate
			q.push(&event{time: e.time + period, kind: evInject, flow: e.flow})
		case evArrive:
			s.tracer.record(TraceEvent{
				Time: e.time, Kind: "hop",
				CommID: s.routing.Flows[e.pkt.flow].Comm.ID, Hop: e.pkt.hop,
			})
			s.arrive(q, st, e.pkt, e.time)
		case evLinkFree:
			s.links[e.link].busy = false
			s.startNext(q, e.link, e.time)
		}
	}
	s.finalize(st)
	return st
}

// arrive handles a packet reaching a router: deliver it (the event time of
// a final arrival is the tail's), or queue it on the next link of its
// path.
func (s *Simulator) arrive(q *eventQueue, st *Stats, pkt *packet, now float64) {
	fl := s.routing.Flows[pkt.flow]
	if pkt.hop == len(fl.Path) {
		s.tracer.record(TraceEvent{
			Time: now, Kind: "deliver", CommID: fl.Comm.ID,
			Hop: pkt.hop, Lat: now - pkt.injected,
		})
		st.deliver(fl.Comm.ID, pkt, now)
		return
	}
	id := s.routing.Mesh.LinkID(fl.Path[pkt.hop])
	class := s.classOf(pkt.flow, pkt.hop)
	if pkt.hop > 0 && s.cfg.BufferPackets > 0 {
		s.links[id].reserved[class]-- // the claimed slot is now occupied
		s.links[id].relayQueued[class]++
	}
	s.links[id].queues[class] = append(s.links[id].queues[class], pkt)
	s.startNext(q, id, now)
}

// nextHopTarget returns the link and VC class the packet will need after
// the given hop, or link −1 when that hop delivers it to its sink.
func (s *Simulator) nextHopTarget(pkt *packet) (link, class int) {
	fl := s.routing.Flows[pkt.flow]
	if pkt.hop+1 >= len(fl.Path) {
		return -1, 0
	}
	return s.routing.Mesh.LinkID(fl.Path[pkt.hop+1]), s.classOf(pkt.flow, pkt.hop+1)
}

// hasRoom reports whether the VC buffer (link id, class) can accept one
// more transit packet, counting queued transit packets and slots claimed
// by in-flight ones. Source-side injections do not consume router
// buffers.
func (s *Simulator) hasRoom(id, class int) bool {
	if s.cfg.BufferPackets <= 0 || id < 0 {
		return true
	}
	return s.links[id].relayQueued[class]+s.links[id].reserved[class] < s.cfg.BufferPackets
}

// startNext begins transmitting a head-of-line packet if the link is idle
// and, with finite buffers, the downstream VC buffer has room (credit
// backpressure). Virtual channels are scanned escape-class first, so a
// blocked adaptive queue never starves the escape network — the dynamic
// counterpart of Duato's condition. Under store-and-forward the packet
// reaches the next router when its tail does; under cut-through the head
// is forwarded one flit time after service starts, while the tail cannot
// clear this link earlier than one flit after it cleared the previous
// one.
func (s *Simulator) startNext(q *eventQueue, id int, now float64) {
	ls := &s.links[id]
	if ls.busy {
		return
	}
	var pkt *packet
	var class int
	for c := 0; c < numClasses; c++ {
		if len(ls.queues[c]) == 0 {
			continue
		}
		head := ls.queues[c][0]
		down, downClass := s.nextHopTarget(head)
		if !s.hasRoom(down, downClass) {
			// Blocked: retry when the downstream VC drains. Other
			// classes may still proceed — that is what VCs buy.
			s.links[down].waiters[downClass] = appendUnique(s.links[down].waiters[downClass], id)
			continue
		}
		pkt, class = head, c
		break
	}
	if pkt == nil {
		return
	}
	downstream, downClass := s.nextHopTarget(pkt)
	ls.queues[class] = ls.queues[class][1:]
	ls.busy = true // set before waking waiters: the wake chain may reach this link again
	if s.cfg.BufferPackets > 0 {
		if pkt.hop > 0 {
			ls.relayQueued[class]--
		}
		if downstream >= 0 {
			s.links[downstream].reserved[downClass]++
		}
		s.wakeWaiters(q, id, class, now)
	}
	tx := pkt.bits / ls.freq
	done := now + tx
	if s.cfg.Switching == CutThrough {
		if tail := pkt.prevDone + s.cfg.FlitBits/ls.freq; tail > done {
			done = tail
		}
	}
	ls.busyTime += done - now
	q.push(&event{time: done, kind: evLinkFree, link: id})

	next := &packet{
		flow: pkt.flow, hop: pkt.hop + 1,
		injected: pkt.injected, bits: pkt.bits, prevDone: done,
	}
	arrival := done
	if s.cfg.Switching == CutThrough {
		if head := now + s.cfg.FlitBits/ls.freq; head < done {
			arrival = head
		}
		fl := s.routing.Flows[pkt.flow]
		if next.hop == len(fl.Path) {
			arrival = done // final delivery counts the tail
		}
	}
	q.push(&event{time: arrival, kind: evArrive, pkt: next})
}

// wakeWaiters retries upstream links that were blocked on this VC's
// buffer space.
func (s *Simulator) wakeWaiters(q *eventQueue, id, class int, now float64) {
	ls := &s.links[id]
	if len(ls.waiters[class]) == 0 {
		return
	}
	waiters := ls.waiters[class]
	ls.waiters[class] = nil
	for _, w := range waiters {
		s.startNext(q, w, now)
	}
}

func appendUnique(xs []int, x int) []int {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// finalize computes utilizations, energy and stall counts.
func (s *Simulator) finalize(st *Stats) {
	for id := range s.links {
		ls := &s.links[id]
		st.Stalled += ls.queuedPackets()
		if ls.freq == 0 {
			continue
		}
		st.LinkUtilization[id] = ls.busyTime / s.cfg.Horizon
		st.LinkFreq[id] = ls.freq
		p := s.model.Pleak + s.model.Dynamic(ls.freq)
		st.PowerMW += p
		st.ActiveLinks++
	}
	// mW × µs = nJ.
	st.EnergyNJ = st.PowerMW * s.cfg.Horizon
}
