package noc

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/route"
	"repro/internal/topo"
)

// Switching selects the forwarding discipline of the routers.
type Switching int

const (
	// StoreAndForward retransmits a packet only after it has fully
	// arrived at a router.
	StoreAndForward Switching = iota
	// CutThrough pipelines: the next link may start forwarding as soon
	// as the head flit arrives, one flit time after the upstream link
	// started, while the tail constrains the downstream completion —
	// the latency model of wormhole/virtual-cut-through networks with
	// ample buffering (the paper's routers; deadlock handled by escape
	// channels [3] / resource ordering [5]).
	CutThrough
)

// String names the switching mode.
func (s Switching) String() string {
	if s == CutThrough {
		return "cut-through"
	}
	return "store-and-forward"
}

// Config tunes a simulation run. Rates are in Mb/s = bits/µs, times in µs.
type Config struct {
	// PacketBits is the packet size; all flows use fixed-size packets.
	// Zero means 2048 bits.
	PacketBits float64
	// FlitBits is the flit size used by CutThrough switching. Zero
	// means 128 bits.
	FlitBits float64
	// Horizon is the simulated duration in µs. Zero means 500 µs.
	Horizon float64
	// Warmup discards latency/throughput samples injected before this
	// time (µs), letting queues reach steady state. Zero keeps all.
	Warmup float64
	// Switching selects store-and-forward (default) or cut-through.
	Switching Switching
	// BufferPackets bounds each link's input queue; a link refuses to
	// accept a packet whose *next* hop's queue is full, modelling
	// credit-based backpressure. Zero means unbounded buffers. With
	// finite buffers, routings whose channel dependency graph is cyclic
	// (see internal/deadlock) can genuinely deadlock; Stats.Stalled
	// reports packets frozen at the horizon.
	BufferPackets int
	// RouterPJPerBit is the router datapath energy (crossbar traversal
	// plus arbitration) charged per bit each time a router starts
	// forwarding a packet onto a link. Zero means 0.5 pJ/bit, a
	// 45 nm-class estimate. Feeds Stats.Energy.RouterNJ.
	RouterPJPerBit float64
	// BufferPJPerBit is the input-buffer energy (one write plus one
	// read) charged per bit when a transit packet is queued at a router.
	// Source-side NIC queues are not router buffers and are free. Zero
	// means 0.3 pJ/bit. Feeds Stats.Energy.BufferNJ.
	BufferPJPerBit float64
}

func (c *Config) setDefaults() {
	if c.PacketBits == 0 {
		c.PacketBits = 2048
	}
	if c.FlitBits == 0 {
		c.FlitBits = 128
	}
	if c.Horizon == 0 {
		c.Horizon = 500
	}
	if c.RouterPJPerBit == 0 {
		c.RouterPJPerBit = 0.5
	}
	if c.BufferPJPerBit == 0 {
		c.BufferPJPerBit = 0.3
	}
}

// packet is one in-flight packet, held in the simulator's freelist arena
// and addressed by int32 handle. The historical engine allocated a fresh
// packet per hop; the arena packet is advanced in place instead (the field
// values at each hop are identical).
type packet struct {
	flow     int32   // index into the routing's flows
	hop      int32   // next path hop to traverse
	injected float64 // injection time
	bits     float64
	// prevDone is the time the packet's tail cleared the previous link;
	// cut-through uses it to constrain downstream completions.
	prevDone float64
}

// packetArena is the freelist packet pool. Handles of delivered packets
// are recycled; the backing array is retained across Reset, so a warmed
// simulator never allocates per packet.
type packetArena struct {
	packets []packet
	free    []int32
}

func (a *packetArena) reset() {
	a.packets = a.packets[:0]
	a.free = a.free[:0]
}

func (a *packetArena) alloc() int32 {
	if n := len(a.free); n > 0 {
		h := a.free[n-1]
		a.free = a.free[:n-1]
		return h
	}
	a.packets = append(a.packets, packet{})
	return int32(len(a.packets) - 1)
}

func (a *packetArena) release(h int32) { a.free = append(a.free, h) }

func (a *packetArena) at(h int32) *packet { return &a.packets[h] }

// pktQueue is a FIFO of packet handles with an amortized-O(1) pop that
// recycles its backing array instead of re-slicing it away.
type pktQueue struct {
	buf  []int32
	head int
}

func (q *pktQueue) reset() {
	q.buf = q.buf[:0]
	q.head = 0
}

func (q *pktQueue) len() int { return len(q.buf) - q.head }

func (q *pktQueue) push(h int32) { q.buf = append(q.buf, h) }

func (q *pktQueue) front() int32 { return q.buf[q.head] }

func (q *pktQueue) popFront() int32 {
	h := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	} else if q.head >= 32 && q.head*2 >= len(q.buf) {
		// Compact so a queue that never fully drains cannot grow without
		// bound.
		n := copy(q.buf, q.buf[q.head:])
		q.buf, q.head = q.buf[:n], 0
	}
	return h
}

// numClasses is the number of virtual channels per physical link: class 0
// is the escape channel, class 1 the adaptive one (internal/deadlock).
// Runs without a class assignment use class 0 only.
const numClasses = 2

// linkState is the per-link serialization state. Queues, buffers and
// blocked-upstream lists are per virtual channel; the physical serializer
// (busy flag, frequency) is shared.
type linkState struct {
	freq     float64 // assigned DVFS frequency (Mb/s); 0 = unused link
	busy     bool
	busyTime float64
	queues   [numClasses]pktQueue
	// reserved counts in-flight packets that have claimed a buffer slot
	// but not yet arrived (finite-buffer mode).
	reserved [numClasses]int
	// relayQueued counts queued transit packets (hop > 0): only these
	// occupy the router's finite buffer; freshly injected packets wait
	// in the source NIC's unbounded queue.
	relayQueued [numClasses]int
	// waiters lists upstream link ids blocked on this VC's buffer. The
	// backing arrays circulate through the simulator's waiter pool.
	waiters [numClasses][]int32
}

func (ls *linkState) queuedPackets() int {
	n := 0
	for c := 0; c < numClasses; c++ {
		n += ls.queues[c].len()
	}
	return n
}

// Simulator replays a routing as discrete packet traffic. It is rebindable:
// Reset (or Workspace.Simulator) points it at a new routing while reusing
// every internal buffer — event heap, packet arena, per-link queues and
// the precompiled path tables. A Simulator is not safe for concurrent use.
type Simulator struct {
	routing route.Routing
	model   power.Model
	cfg     Config
	// tp is the routing's platform (the mesh itself on mesh routings);
	// every link-id and coordinate lookup goes through it, so the engine
	// replays torus and circulant routings unchanged.
	tp      topo.Topology
	links   []linkState
	tracer  *Tracer
	observe func(Delivery)

	// Pooled per-component energy accumulators (nJ), copied into the
	// Stats.Energy slab at finalize. linkSrc maps each used link id to
	// the CoordIndex of its transmitting router, precomputed at Reset so
	// charging router energy costs one flat-slice add per transmission.
	routerE []float64
	bufferE []float64
	linkSrc []int32

	// Flat per-flow path tables, built once per Reset: flow f's hop h
	// uses link pathLink[flowOff[f]+h] on VC class pathClass[flowOff[f]+h].
	flowOff   []int32
	pathLink  []int32
	pathClass []uint8
	// period is each flow's packet inter-injection time (µs).
	period []float64

	q     eventQueue
	arena packetArena
	// loads is the Reset-time scratch for the routing's analytic loads.
	loads []float64
	// waiterPool recycles drained waiter lists (finite-buffer mode).
	waiterPool [][]int32

	bound bool // a successful New/Reset has configured the simulator
	ran   bool // Run consumed the current binding
}

// AssignClasses installs a per-hop virtual-channel schedule, e.g. the
// escape-channel assignment of internal/deadlock (Assignment.Classes).
// Each flow's slice must cover its path; classes are 0 (escape) or 1
// (adaptive). Call before Run; pass nil to revert to single-class
// operation. Reset reverts to single-class operation too.
func (s *Simulator) AssignClasses(classes [][]int) error {
	if classes == nil {
		for i := range s.pathClass {
			s.pathClass[i] = 0
		}
		return nil
	}
	if len(classes) != len(s.routing.Flows) {
		return fmt.Errorf("noc: %d class vectors for %d flows", len(classes), len(s.routing.Flows))
	}
	for f, cs := range classes {
		if len(cs) != len(s.routing.Flows[f].Path) {
			return fmt.Errorf("noc: flow %d: %d classes for %d hops", f, len(cs), len(s.routing.Flows[f].Path))
		}
		for h, c := range cs {
			if c < 0 || c >= numClasses {
				return fmt.Errorf("noc: flow %d hop %d: class %d out of range", f, h, c)
			}
		}
	}
	for f, cs := range classes {
		off := s.flowOff[f]
		for h, c := range cs {
			s.pathClass[off+int32(h)] = uint8(c)
		}
	}
	return nil
}

// New prepares a simulator for the routing: per-link DVFS frequencies are
// assigned by quantizing the routing's analytic loads under the model,
// exactly as the system would configure the links. An error is returned
// when the routing is infeasible (some load above the top frequency) —
// such routings count as failures in the paper and have no operating
// point to simulate. Multi-trial callers should pool one simulator via
// Workspace instead of calling New per trial.
func New(r route.Routing, model power.Model, cfg Config) (*Simulator, error) {
	s := &Simulator{}
	if err := s.Reset(r, model, cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rebinds the simulator to a routing, model and configuration,
// reusing all internal storage — the pooling hook behind Workspace. Any
// attached Tracer, delivery observer and class assignment are detached
// (the simulator starts from the same clean slate New gives). On error
// the simulator is left unbound; Reset again before Run. The previous
// run's Stats remain valid: they share no simulator memory.
func (s *Simulator) Reset(r route.Routing, model power.Model, cfg Config) error {
	cfg.setDefaults()
	s.bound, s.ran = false, false
	s.tracer, s.observe = nil, nil

	tp := r.Topology()
	if tp == nil {
		return fmt.Errorf("noc: routing has no platform")
	}
	s.tp = tp

	// Per-link state: grow to the platform's link-id space and clear,
	// keeping queue and waiter capacities.
	n := tp.LinkIDSpace()
	if cap(s.links) < n {
		s.links = make([]linkState, n)
	}
	s.links = s.links[:n]
	for i := range s.links {
		ls := &s.links[i]
		ls.freq, ls.busy, ls.busyTime = 0, false, 0
		for c := 0; c < numClasses; c++ {
			ls.queues[c].reset()
			ls.reserved[c], ls.relayQueued[c] = 0, 0
			if ls.waiters[c] != nil {
				s.waiterPool = append(s.waiterPool, ls.waiters[c][:0])
				ls.waiters[c] = nil
			}
		}
	}
	s.q.reset()
	s.arena.reset()

	// Energy accumulators: grow to the platform and clear.
	cores := tp.NumCores()
	if cap(s.routerE) < cores {
		s.routerE = make([]float64, cores)
	}
	s.routerE = s.routerE[:cores]
	for i := range s.routerE {
		s.routerE[i] = 0
	}
	if cap(s.bufferE) < n {
		s.bufferE = make([]float64, n)
		s.linkSrc = make([]int32, n)
	}
	s.bufferE, s.linkSrc = s.bufferE[:n], s.linkSrc[:n]
	for i := range s.bufferE {
		s.bufferE[i] = 0
		s.linkSrc[i] = -1
	}

	// DVFS operating point from the analytic loads.
	s.loads = r.LoadsInto(s.loads)
	for id, load := range s.loads {
		if load == 0 {
			continue
		}
		f, err := model.Quantize(load)
		if err != nil {
			return fmt.Errorf("noc: link %v: %w", tp.LinkByID(id), err)
		}
		s.links[id].freq = f
		s.linkSrc[id] = int32(tp.CoordIndex(tp.LinkByID(id).From))
	}

	// Precompile each flow's path to flat link-id/class tables and its
	// injection period.
	nf := len(r.Flows)
	if cap(s.flowOff) < nf+1 {
		s.flowOff = make([]int32, 0, nf+1)
	}
	if cap(s.period) < nf {
		s.period = make([]float64, 0, nf)
	}
	s.flowOff, s.period = s.flowOff[:0], s.period[:0]
	s.pathLink, s.pathClass = s.pathLink[:0], s.pathClass[:0]
	off := int32(0)
	for _, fl := range r.Flows {
		s.flowOff = append(s.flowOff, off)
		s.period = append(s.period, cfg.PacketBits/fl.Comm.Rate)
		for _, l := range fl.Path {
			s.pathLink = append(s.pathLink, int32(tp.LinkID(l)))
			s.pathClass = append(s.pathClass, 0)
			off++
		}
	}
	s.flowOff = append(s.flowOff, off)

	s.routing, s.model, s.cfg = r, model, cfg
	s.bound = true
	return nil
}

// hops returns flow f's path length.
func (s *Simulator) hops(f int32) int32 { return s.flowOff[f+1] - s.flowOff[f] }

// Run executes the simulation until the horizon and returns the collected
// statistics. Run may be called once per New or Reset; call Reset (or go
// through Workspace.Simulator) between runs. The returned Stats owns its
// memory and stays valid across later Resets.
func (s *Simulator) Run() *Stats {
	if !s.bound || s.ran {
		panic("noc: Run needs a fresh New or Reset (one Run per binding)")
	}
	s.ran = true
	st := newStats(s.routing, s.cfg)

	// Stagger flow start phases deterministically across one packet
	// period so same-rate flows do not inject in lockstep.
	for i := range s.routing.Flows {
		phase := s.period[i] * float64(i%7) / 7.0
		s.q.push(phase, evInject, int32(i))
	}

	for s.q.len() > 0 {
		e := s.q.pop()
		if e.time > s.cfg.Horizon {
			// A popped arrival past the horizon is a packet
			// mid-transmission, not a silently vanished one.
			if k := e.kind(); k == evArrive || k == evFreeArrive {
				st.InFlight++
			}
			break
		}
		switch e.kind() {
		case evInject:
			f := e.arg
			st.Injected++
			h := s.arena.alloc()
			*s.arena.at(h) = packet{flow: f, injected: e.time, bits: s.cfg.PacketBits, prevDone: e.time}
			if s.tracer != nil {
				s.tracer.record(TraceEvent{Time: e.time, Kind: "inject", CommID: s.routing.Flows[f].Comm.ID})
			}
			s.arrive(st, h, e.time)
			s.q.push(e.time+s.period[f], evInject, f)
		case evFreeArrive:
			// Store-and-forward fusion: the tail clears the link and the
			// packet reaches the next router at the same instant. Free
			// the link first, then arrive — exactly the order the two
			// split events (adjacent sequence numbers, same timestamp)
			// process in.
			h := e.arg
			pkt := s.arena.at(h)
			id := s.pathLink[s.flowOff[pkt.flow]+pkt.hop-1]
			s.links[id].busy = false
			s.startNext(id, e.time)
			if s.tracer != nil {
				s.tracer.record(TraceEvent{
					Time: e.time, Kind: "hop",
					CommID: s.routing.Flows[pkt.flow].Comm.ID, Hop: int(pkt.hop),
				})
			}
			s.arrive(st, h, e.time)
		case evArrive:
			pkt := s.arena.at(e.arg)
			if s.tracer != nil {
				s.tracer.record(TraceEvent{
					Time: e.time, Kind: "hop",
					CommID: s.routing.Flows[pkt.flow].Comm.ID, Hop: int(pkt.hop),
				})
			}
			s.arrive(st, e.arg, e.time)
		case evLinkFree:
			s.links[e.arg].busy = false
			s.startNext(e.arg, e.time)
		}
	}
	// Everything still scheduled to arrive is in flight at the horizon.
	for _, e := range s.q.items {
		if k := e.kind(); k == evArrive || k == evFreeArrive {
			st.InFlight++
		}
	}
	s.finalize(st)
	return st
}

// arrive handles a packet reaching a router: deliver it (the event time of
// a final arrival is the tail's), or queue it on the next link of its
// path.
func (s *Simulator) arrive(st *Stats, h int32, now float64) {
	pkt := s.arena.at(h)
	if pkt.hop == s.hops(pkt.flow) {
		fl := &s.routing.Flows[pkt.flow]
		if s.tracer != nil {
			s.tracer.record(TraceEvent{
				Time: now, Kind: "deliver", CommID: fl.Comm.ID,
				Hop: int(pkt.hop), Lat: now - pkt.injected,
			})
		}
		if s.observe != nil {
			s.observe(Delivery{CommID: fl.Comm.ID, Injected: pkt.injected, Time: now, Bits: pkt.bits})
		}
		st.deliver(fl.Comm.ID, pkt.injected, pkt.bits, now)
		s.arena.release(h)
		return
	}
	i := s.flowOff[pkt.flow] + pkt.hop
	id := s.pathLink[i]
	class := int(s.pathClass[i])
	ls := &s.links[id]
	if pkt.hop > 0 {
		// A transit packet lands in the router's input buffer (one write
		// plus one read); freshly injected packets wait in the source
		// NIC's queue, which is not a router buffer.
		s.bufferE[id] += s.cfg.BufferPJPerBit * pkt.bits * 1e-3
		if s.cfg.BufferPackets > 0 {
			ls.reserved[class]-- // the claimed slot is now occupied
			ls.relayQueued[class]++
		}
	}
	ls.queues[class].push(h)
	s.startNext(id, now)
}

// nextHopTarget returns the link and VC class the packet will need after
// the given hop, or link −1 when that hop delivers it to its sink.
func (s *Simulator) nextHopTarget(h int32) (link int32, class int) {
	pkt := s.arena.at(h)
	i := s.flowOff[pkt.flow] + pkt.hop + 1
	if i >= s.flowOff[pkt.flow+1] {
		return -1, 0
	}
	return s.pathLink[i], int(s.pathClass[i])
}

// hasRoom reports whether the VC buffer (link id, class) can accept one
// more transit packet, counting queued transit packets and slots claimed
// by in-flight ones. Source-side injections do not consume router
// buffers.
func (s *Simulator) hasRoom(id int32, class int) bool {
	if s.cfg.BufferPackets <= 0 || id < 0 {
		return true
	}
	return s.links[id].relayQueued[class]+s.links[id].reserved[class] < s.cfg.BufferPackets
}

// startNext begins transmitting a head-of-line packet if the link is idle
// and, with finite buffers, the downstream VC buffer has room (credit
// backpressure). Virtual channels are scanned escape-class first, so a
// blocked adaptive queue never starves the escape network — the dynamic
// counterpart of Duato's condition. Under store-and-forward the packet
// reaches the next router when its tail does; under cut-through the head
// is forwarded one flit time after service starts, while the tail cannot
// clear this link earlier than one flit after it cleared the previous
// one.
func (s *Simulator) startNext(id int32, now float64) {
	ls := &s.links[id]
	if ls.busy {
		return
	}
	h := int32(-1)
	var class int
	for c := 0; c < numClasses; c++ {
		if ls.queues[c].len() == 0 {
			continue
		}
		head := ls.queues[c].front()
		down, downClass := s.nextHopTarget(head)
		if !s.hasRoom(down, downClass) {
			// Blocked: retry when the downstream VC drains. Other
			// classes may still proceed — that is what VCs buy.
			s.links[down].waiters[downClass] = appendUnique(s.links[down].waiters[downClass], id)
			continue
		}
		h, class = head, c
		break
	}
	if h < 0 {
		return
	}
	pkt := s.arena.at(h)
	flow, hop, bits, prevDone := pkt.flow, pkt.hop, pkt.bits, pkt.prevDone
	downstream, downClass := s.nextHopTarget(h)
	ls.queues[class].popFront()
	ls.busy = true // set before waking waiters: the wake chain may reach this link again
	if s.cfg.BufferPackets > 0 {
		if hop > 0 {
			ls.relayQueued[class]--
		}
		if downstream >= 0 {
			s.links[downstream].reserved[downClass]++
		}
		s.wakeWaiters(id, class, now)
	}
	// The transmitting router's datapath (crossbar + arbitration)
	// processes every bit it forwards; pJ × bits = 1e-3 nJ.
	s.routerE[s.linkSrc[id]] += s.cfg.RouterPJPerBit * bits * 1e-3
	tx := bits / ls.freq
	done := now + tx
	if s.cfg.Switching == CutThrough {
		if tail := prevDone + s.cfg.FlitBits/ls.freq; tail > done {
			done = tail
		}
	}
	// Busy time is only accrued inside the simulated window, so a
	// transmission completing past the horizon cannot push link
	// utilization above 1.0.
	end := done
	if end > s.cfg.Horizon {
		end = s.cfg.Horizon
	}
	ls.busyTime += end - now

	// Advance the packet onto the next hop in place.
	pkt.hop = hop + 1
	pkt.prevDone = done
	if s.cfg.Switching == CutThrough {
		arrival := done
		if head := now + s.cfg.FlitBits/ls.freq; head < done {
			arrival = head
		}
		if pkt.hop == s.hops(flow) {
			arrival = done // final delivery counts the tail
		}
		if arrival == done {
			// Tail-bound (or final-hop) pipelines coincide like
			// store-and-forward: fuse the pair.
			s.q.push(done, evFreeArrive, h)
		} else {
			s.q.push(done, evLinkFree, id)
			s.q.push(arrival, evArrive, h)
		}
	} else {
		// Store-and-forward: tail departure and next-router arrival
		// coincide, so one fused event carries both (the link id is
		// recomputed from the packet's advanced hop).
		s.q.push(done, evFreeArrive, h)
	}
}

// wakeWaiters retries upstream links that were blocked on this VC's
// buffer space. The drained list's backing array goes back to the waiter
// pool; re-blocking links append to a fresh pooled list, so the wake chain
// never mutates the snapshot it is iterating.
func (s *Simulator) wakeWaiters(id int32, class int, now float64) {
	ls := &s.links[id]
	w := ls.waiters[class]
	if len(w) == 0 {
		return
	}
	if n := len(s.waiterPool); n > 0 {
		ls.waiters[class] = s.waiterPool[n-1]
		s.waiterPool = s.waiterPool[:n-1]
	} else {
		ls.waiters[class] = nil
	}
	for _, up := range w {
		s.startNext(up, now)
	}
	s.waiterPool = append(s.waiterPool, w[:0])
}

func appendUnique[T comparable](xs []T, x T) []T {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// finalize computes utilizations, energy and stall counts. The Energy
// breakdown is carved from one slab allocation; link energy is derived
// from the accrued busy time (leakage over the whole horizon, dynamic
// power only while transmitting), so activity accounting costs nothing
// per event.
func (s *Simulator) finalize(st *Stats) {
	cores, space := s.tp.NumCores(), len(s.links)
	slab := make([]float64, cores+2*space)
	e := &st.Energy
	e.RouterNJ = slab[:cores:cores]
	e.LinkNJ = slab[cores : cores+space : cores+space]
	e.BufferNJ = slab[cores+space:]
	copy(e.RouterNJ, s.routerE)
	copy(e.BufferNJ, s.bufferE)
	for id := range s.links {
		ls := &s.links[id]
		st.Stalled += ls.queuedPackets()
		if ls.freq == 0 {
			continue
		}
		st.LinkUtilization[id] = ls.busyTime / s.cfg.Horizon
		st.LinkFreq[id] = ls.freq
		p := s.model.Pleak + s.model.Dynamic(ls.freq)
		st.PowerMW += p
		st.ActiveLinks++
		// mW × µs = nJ: leakage for the whole horizon, dynamic switching
		// only while bits were on the wire.
		e.LinkNJ[id] = s.model.Pleak*s.cfg.Horizon + s.model.Dynamic(ls.freq)*ls.busyTime
	}
	for _, v := range e.RouterNJ {
		e.RouterTotalNJ += v
	}
	for _, v := range e.LinkNJ {
		e.LinkTotalNJ += v
	}
	for _, v := range e.BufferNJ {
		e.BufferTotalNJ += v
	}
	e.TotalNJ = e.RouterTotalNJ + e.LinkTotalNJ + e.BufferTotalNJ
	// EnergyNJ stays the historical static estimate — every active link
	// at full assigned-frequency power for the whole horizon — so the
	// activity-based Energy.TotalNJ can be compared against it.
	st.EnergyNJ = st.PowerMW * s.cfg.Horizon
}
