// Package noc is a discrete-event, packet-level network-on-chip simulator
// used to cross-validate routings produced by the heuristics: packets are
// injected periodically at each communication's requested rate, forwarded
// store-and-forward along the routing's explicit paths (table-based source
// routing), and serialized on links whose frequencies are the DVFS
// assignments of the power model. The paper's evaluation is analytic
// (link loads → power); this substrate replays the same routings
// dynamically and checks that delivered throughput, link utilization and
// energy agree with the analytic figures.
//
// Deadlock freedom: routes are fixed minimal paths and forwarding is
// store-and-forward with unbounded FIFOs, so the simulator cannot
// deadlock; the paper assumes an equivalent deadlock-avoidance mechanism
// (resource ordering [5] or escape channels [3]).
package noc

import "container/heap"

// eventKind discriminates simulator events.
type eventKind int

const (
	evInject   eventKind = iota // a flow emits its next packet
	evLinkFree                  // a link finishes transmitting (tail gone)
	evArrive                    // a packet (head) reaches its next router
)

// event is one scheduled simulator occurrence. seq breaks time ties so
// the simulation is fully deterministic.
type event struct {
	time float64
	seq  int64
	kind eventKind
	pkt  *packet
	flow int // evInject: index of the flow
	link int // evLinkFree: link id
}

// eventQueue is a binary min-heap of events ordered by (time, seq).
type eventQueue struct {
	items []*event
	seq   int64
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].time != q.items[j].time {
		return q.items[i].time < q.items[j].time
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

// push schedules an event, stamping the tie-break sequence number.
func (q *eventQueue) push(e *event) {
	e.seq = q.seq
	q.seq++
	heap.Push(q, e)
}

// pop removes the earliest event; callers must check Len first.
func (q *eventQueue) pop() *event { return heap.Pop(q).(*event) }
