// Package noc is a discrete-event, packet-level network-on-chip simulator
// used to cross-validate routings produced by the heuristics: packets are
// injected periodically at each communication's requested rate, forwarded
// store-and-forward or cut-through along the routing's explicit paths
// (table-based source routing), and serialized on links whose frequencies
// are the DVFS assignments of the power model. The paper's evaluation is
// analytic (link loads → power); this substrate replays the same routings
// dynamically and checks that delivered throughput, link utilization and
// energy agree with the analytic figures.
//
// The engine follows the repository's dense-workspace discipline
// (route.Workspace, power.Evaluator): events live in a value-typed index
// min-heap (no interface boxing, no per-event allocation), packets in a
// freelist arena addressed by int32 handles, and each flow's path is
// precompiled to flat link-id/VC-class slices at bind time. A Simulator is
// rebindable — Reset (or the pooling front door, Workspace.Simulator)
// reuses every internal buffer across routings, so multi-trial callers run
// the simulator with O(1) steady-state allocations per run (the returned
// Stats is the only fresh memory). See Workspace for the reuse contract.
//
// Horizon accounting is exact: per-link busy time is clamped to the
// simulated window (utilization never exceeds 1.0), and every injected
// packet is accounted for at the horizon — Stats.Injected =
// Stats.Delivered + Stats.Stalled + Stats.InFlight.
//
// Deadlock freedom: with unbounded FIFOs the simulator cannot deadlock;
// the paper assumes an equivalent deadlock-avoidance mechanism (resource
// ordering [5] or escape channels [3]). With finite buffers
// (Config.BufferPackets), routings whose channel dependency graph is
// cyclic can genuinely deadlock — internal/deadlock's escape-channel
// assignment (AssignClasses) restores progress.
package noc

// eventKind discriminates simulator events.
type eventKind uint32

const (
	evInject   eventKind = iota // a flow emits its next packet
	evLinkFree                  // a link finishes transmitting (tail gone)
	evArrive                    // a packet (head) reaches its next router
	// evFreeArrive fuses a link's tail departure with the packet's
	// arrival at the next router — under store-and-forward the two always
	// share one timestamp and adjacent sequence numbers, so processing
	// them as one event halves the heap volume without reordering
	// anything (see startNext).
	evFreeArrive
)

// event is one scheduled simulator occurrence, packed to 16 bytes so heap
// sifts touch minimal memory. key carries the tie-break sequence number
// in its upper 30 bits and the eventKind in its lower 2: comparing keys
// compares sequence numbers, so (time, key) is the same total order as
// the historical (time, seq) — fully deterministic and independent of the
// heap implementation, the property the differential test against the
// container/heap engine relies on. arg is the flow index (evInject), the
// link id (evLinkFree) or the packet arena handle (evArrive,
// evFreeArrive).
type event struct {
	time float64
	key  uint32
	arg  int32
}

func (e event) kind() eventKind { return eventKind(e.key & 3) }

// maxEventSeq bounds the 30-bit sequence space (~10⁹ events per run).
const maxEventSeq = 1 << 30

// eventQueue is a hand-rolled 4-ary min-heap of events ordered by
// (time, key) — shallower than a binary heap and friendlier to the cache
// on the sift-down path that dominates simulator runtime. Its backing
// array is retained across Simulator.Reset.
type eventQueue struct {
	items []event
	seq   uint32
}

func (q *eventQueue) reset() {
	q.items = q.items[:0]
	q.seq = 0
}

func (q *eventQueue) len() int { return len(q.items) }

func (q *eventQueue) less(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.key < b.key
}

// push schedules an event, stamping the tie-break sequence number.
func (q *eventQueue) push(time float64, kind eventKind, arg int32) {
	if q.seq == maxEventSeq {
		panic("noc: event sequence space exhausted (run exceeds 2^30 events)")
	}
	e := event{time: time, key: q.seq<<2 | uint32(kind), arg: arg}
	q.seq++
	q.items = append(q.items, e)
	q.up(len(q.items) - 1)
}

// pop removes the earliest event; callers must check len first.
func (q *eventQueue) pop() event {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items = q.items[:n]
	if n > 1 {
		q.down(0)
	}
	return top
}

func (q *eventQueue) up(i int) {
	e := q.items[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(e, q.items[parent]) {
			break
		}
		q.items[i] = q.items[parent]
		i = parent
	}
	q.items[i] = e
}

func (q *eventQueue) down(i int) {
	items := q.items
	n := len(items)
	e := items[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min, me := first, items[first]
		for c := first + 1; c < last; c++ {
			if ce := items[c]; q.less(ce, me) {
				min, me = c, ce
			}
		}
		if !q.less(me, e) {
			break
		}
		items[i] = me
		i = min
	}
	items[i] = e
}
