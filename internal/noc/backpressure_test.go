package noc

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/deadlock"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/route"
)

// ringRouting builds a 4-flow buffer-cycle around the unit square: the
// four links L0=(1,1)→(1,2) E, L1=(1,2)→(2,2) S, L2=(2,2)→(2,1) W,
// L3=(2,1)→(1,1) N each carry three 3-hop flows, so every relay buffer
// feeds the next link of the cycle. (The 3-hop paths are deliberately
// non-minimal: this is a switching-level stress instance for the
// simulator, not a Manhattan routing.)
func ringRouting(rate float64) (route.Routing, power.Model) {
	m := mesh.MustNew(3, 3)
	corners := []mesh.Coord{{U: 1, V: 1}, {U: 1, V: 2}, {U: 2, V: 2}, {U: 2, V: 1}}
	ringLink := func(i int) mesh.Link {
		return mesh.Link{From: corners[i%4], To: corners[(i+1)%4]}
	}
	var flows []route.Flow
	for f := 0; f < 4; f++ {
		path := route.Path{ringLink(f), ringLink(f + 1), ringLink(f + 2)}
		flows = append(flows, route.Flow{
			Comm: comm.Comm{ID: f + 1, Src: corners[f], Dst: corners[(f+3)%4], Rate: rate},
			Path: path,
		})
	}
	return route.Routing{Mesh: m, Flows: flows}, power.KimHorowitz()
}

// With unbounded buffers the ring workload flows freely even though its
// CDG is cyclic — buffer space absorbs the dependency. Per-link load is
// 3×rate, so rate 1100 keeps every link within the 3.5 Gb/s budget.
func TestRingFlowsWithInfiniteBuffers(t *testing.T) {
	r, model := ringRouting(1100)
	sim, err := New(r, model, Config{Horizon: 2000, Warmup: 200})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	for id := 1; id <= 4; id++ {
		if got := st.DeliveredRate(id); math.Abs(got-1100)/1100 > 0.08 {
			t.Errorf("comm %d delivered %.0f, want ≈1100", id, got)
		}
	}
	if st.Stalled > 4 {
		t.Errorf("unexpected stalls with infinite buffers: %d", st.Stalled)
	}
}

// With a single-packet relay buffer per link and near-saturating
// injection, the cyclic buffer dependencies freeze the ring: the CDG
// analysis predicts the hazard, and the simulator exhibits it as stalled
// packets and collapsed throughput. This is exactly why the paper assumes
// a deadlock-avoidance mechanism (escape channels / resource ordering).
func TestRingDeadlocksWithTinyBuffers(t *testing.T) {
	r, model := ringRouting(1150) // 3×1150 = 3450 ≈ full links
	g := deadlock.BuildCDG(r)
	if g.Acyclic() {
		t.Fatal("ring CDG should be cyclic")
	}
	sim, err := New(r, model, Config{Horizon: 4000, Warmup: 0, BufferPackets: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	if st.Stalled == 0 {
		t.Error("expected stalled packets under tiny buffers")
	}
	total := 0.0
	for id := 1; id <= 4; id++ {
		total += st.DeliveredRate(id)
	}
	if demand := 4 * 1150.0; total >= demand*0.5 {
		t.Errorf("ring delivered %.0f of %.0f Mb/s — expected deadlock collapse", total, demand)
	}
}

// An XY routing (acyclic CDG) with the same tiny buffers keeps flowing:
// backpressure alone does not deadlock a dependency-free routing.
func TestXYFlowsWithTinyBuffers(t *testing.T) {
	m := mesh.MustNew(8, 8)
	set := comm.Set{
		{ID: 1, Src: mesh.Coord{U: 1, V: 1}, Dst: mesh.Coord{U: 4, V: 5}, Rate: 900},
		{ID: 2, Src: mesh.Coord{U: 2, V: 1}, Dst: mesh.Coord{U: 5, V: 6}, Rate: 900},
		{ID: 3, Src: mesh.Coord{U: 3, V: 2}, Dst: mesh.Coord{U: 6, V: 7}, Rate: 900},
	}
	var flows []route.Flow
	for _, c := range set {
		flows = append(flows, route.Flow{Comm: c, Path: route.XY(c.Src, c.Dst)})
	}
	r := route.Routing{Mesh: m, Flows: flows}
	if !deadlock.BuildCDG(r).Acyclic() {
		t.Fatal("XY CDG should be acyclic")
	}
	sim, err := New(r, power.KimHorowitz(), Config{Horizon: 3000, Warmup: 300, BufferPackets: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.Run()
	for _, c := range set {
		if got := st.DeliveredRate(c.ID); math.Abs(got-c.Rate)/c.Rate > 0.10 {
			t.Errorf("comm %d delivered %.0f, want ≈%.0f", c.ID, got, c.Rate)
		}
	}
}

// Buffered and unbuffered runs agree when buffers are ample.
func TestLargeBuffersMatchUnbounded(t *testing.T) {
	r, model := ringRouting(1000)
	run := func(buf int) *Stats {
		sim, err := New(r, model, Config{Horizon: 1500, Warmup: 100, BufferPackets: buf})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	unbounded, buffered := run(0), run(64)
	for id := 1; id <= 4; id++ {
		a, b := unbounded.DeliveredRate(id), buffered.DeliveredRate(id)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("comm %d: unbounded %.2f vs buffered %.2f", id, a, b)
		}
	}
}
