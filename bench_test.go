// Repository benchmark harness: one benchmark per table/figure of the
// paper (see the E-numbered comments below). The figure benchmarks run
// shrunken panels — fewer points and trials than cmd/experiments — so
// `go test -bench=.` stays fast; custom metrics expose the headline values
// of each figure (failure-rate gaps, power ratios) so regressions in the
// heuristics are visible directly in benchmark output.
package repro_test

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/heur"
	"repro/internal/mesh"
	"repro/internal/multipath"
	"repro/internal/noc"
	"repro/internal/npc"
	"repro/internal/optflow"
	"repro/internal/power"
	"repro/internal/workload"
)

// benchPanel shrinks a panel for benchmarking: at most three points,
// a handful of trials.
func benchPanel(p experiments.Panel, trials int) experiments.Panel {
	if len(p.Points) > 3 {
		p.Points = []experiments.Point{
			p.Points[0],
			p.Points[len(p.Points)/2],
			p.Points[len(p.Points)-1],
		}
	}
	p.Trials = trials
	return p
}

// reportGap publishes the failure-rate gap between XY and the Manhattan
// heuristics at the panel's mid-sweep point (the most constrained point
// often defeats every heuristic, making its metrics uniformly zero), plus
// PR's and XYI's normalized power there — the quantities the paper's
// plots are read for.
func reportGap(b *testing.B, res experiments.Result) {
	b.Helper()
	mid := len(res.X) / 2
	xy := res.SeriesByName("XY")
	pr := res.SeriesByName("PR")
	xyi := res.SeriesByName("XYI")
	b.ReportMetric(xy.FailureRatio[mid]-pr.FailureRatio[mid], "failGapXY-PR")
	b.ReportMetric(pr.NormPowerInv[mid], "prNormPower")
	b.ReportMetric(xyi.NormPowerInv[mid], "xyiNormPower")
}

func benchFigure(b *testing.B, p experiments.Panel) {
	b.Helper()
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		pp := benchPanel(p, 4)
		pp.Seed += int64(i) // fresh instances each iteration
		res = pp.Run()
	}
	reportGap(b, res)
}

// E1 — Figure 2: the routing-rule comparison (XY 128, 1-MP 56, 2-MP 32).
func BenchmarkFig2RoutingRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pxy, p1mp, p2mp, err := experiments.Figure2Powers()
		if err != nil {
			b.Fatal(err)
		}
		if pxy != 128 || p1mp != 56 || p2mp != 32 {
			b.Fatalf("Figure 2 drifted: %g/%g/%g", pxy, p1mp, p2mp)
		}
	}
}

// E2–E4 — Figure 7: sensitivity to the number of communications.
func BenchmarkFig7aSmall(b *testing.B) { benchFigure(b, experiments.Figure7a()) }
func BenchmarkFig7bMixed(b *testing.B) { benchFigure(b, experiments.Figure7b()) }
func BenchmarkFig7cBig(b *testing.B)   { benchFigure(b, experiments.Figure7c()) }

// E5–E7 — Figure 8: sensitivity to the size of communications.
func BenchmarkFig8aFew(b *testing.B)      { benchFigure(b, experiments.Figure8a()) }
func BenchmarkFig8bSome(b *testing.B)     { benchFigure(b, experiments.Figure8b()) }
func BenchmarkFig8cNumerous(b *testing.B) { benchFigure(b, experiments.Figure8c()) }

// E8–E10 — Figure 9: sensitivity to the length of communications.
func BenchmarkFig9aNumerousSmall(b *testing.B) { benchFigure(b, experiments.Figure9a()) }
func BenchmarkFig9bSomeMid(b *testing.B)       { benchFigure(b, experiments.Figure9b()) }
func BenchmarkFig9cFewBig(b *testing.B)        { benchFigure(b, experiments.Figure9c()) }

// E11 — §6.4 summary statistics (success rates, inverse-power gains,
// static fraction).
func BenchmarkSummaryStats(b *testing.B) {
	var s experiments.Summary
	for i := 0; i < b.N; i++ {
		s = experiments.RunSummary(1, int64(i))
	}
	b.ReportMetric(s.Success["XY"], "xySuccess")
	b.ReportMetric(s.Success["PR"], "prSuccess")
	b.ReportMetric(s.InvPowerGainVsXY["BEST"], "bestGainVsXY")
	b.ReportMetric(s.StaticFraction, "staticFraction")
}

// E12 — Theorem 1 / Figure 4: the max-MP pattern's Θ(p) gain.
func BenchmarkTheorem1Ratio(b *testing.B) {
	var rows []experiments.Theorem1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTheorem1([]int{1, 2, 4, 8, 16}, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].PerRow, "ratioPerP")
}

// E13 — Lemma 2 / Figure 5: the staircase's Θ(p^{α−1}) gain.
func BenchmarkLemma2Ratio(b *testing.B) {
	var rows []experiments.Lemma2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunLemma2([]int{2, 4, 8, 16}, 2.95)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Normalized, "ratioPerPAlpha")
}

// E14 — Theorem 3 / Figure 6: building and deciding the NP-completeness
// gadget.
func BenchmarkNPGadget(b *testing.B) {
	a := []int{13, 7, 5, 11, 2, 8, 6, 4, 9, 3}
	for i := 0; i < b.N; i++ {
		red, err := npc.Build(a, 3)
		if err != nil {
			b.Fatal(err)
		}
		routing, ok, err := red.Feasible()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("gadget unexpectedly infeasible")
		}
		if err := routing.Validate(red.Comms, red.S); err != nil {
			b.Fatal(err)
		}
	}
}

// E15 — discrete-event simulator cross-validation of a routed workload,
// one sub-benchmark per switching mode, through the pooled noc.Workspace
// (the multi-trial configuration the arena engine is built for; the
// old-vs-new engine ratio lives in internal/noc's
// BenchmarkEngineVsReference). Both modes land in BENCH_solvers.json as
// NoCSimSF/NoCSimCT and cmd/benchguard fails CI when either regresses
// beyond 2×.
func BenchmarkNoCSim(b *testing.B) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := workload.New(m, 8).Uniform(15, 100, 1200)
	res, err := heur.Solve(heur.PR{}, heur.Instance{Mesh: m, Model: model, Comms: set})
	if err != nil || !res.Feasible {
		b.Fatalf("setup: err=%v feasible=%v", err, res.Feasible)
	}
	for _, sw := range []noc.Switching{noc.StoreAndForward, noc.CutThrough} {
		b.Run(sw.String(), func(b *testing.B) {
			ws := noc.NewWorkspace()
			b.ReportAllocs()
			var worst float64
			for i := 0; i < b.N; i++ {
				sim, err := ws.Simulator(res.Routing, model, noc.Config{Horizon: 1000, Warmup: 200, Switching: sw})
				if err != nil {
					b.Fatal(err)
				}
				st := sim.Run()
				if st.Injected != st.Delivered+st.Stalled+st.InFlight {
					b.Fatalf("accounting identity broken: %d != %d+%d+%d",
						st.Injected, st.Delivered, st.Stalled, st.InFlight)
				}
				worst = 0
				for _, c := range set {
					if e := relErr(st.DeliveredRate(c.ID), c.Rate); e > worst {
						worst = e
					}
				}
			}
			b.ReportMetric(worst, "worstRateErr")
		})
	}
}

// Engine — the pooled per-worker-scratch trial runner against the
// old-style allocate-per-trial baseline, on the same panel with the same
// seeds (the two produce identical figures; TestRunMatchesBaseline holds
// them to it). The ns/op gap is the refactor's throughput win.
func BenchmarkPanelRunner(b *testing.B) {
	panel := func() experiments.Panel {
		p := benchPanel(experiments.Figure7a(), 16)
		return p
	}
	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := panel()
			p.RunBaseline()
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := panel()
			p.Run()
		}
	})
}

// maxAllocsPerTrial locks in the pooled runner's allocation discipline:
// the engine's per-trial path reuses worker scratch AND hands each policy
// the worker's dense route.Workspace, so a trial costs only instance
// validation and interface plumbing (~8 allocs for XY at n=70, down from
// ~147 before the workspace layer). A regression that reverts to
// per-trial allocation anywhere — engine scratch or solver internals —
// blows straight through this bound.
const maxAllocsPerTrial = 24

// Allocation guard on the pooled panel runner's per-trial path.
func BenchmarkPanelTrialAllocs(b *testing.B) {
	p := experiments.Figure7a()
	p.Points = []experiments.Point{p.Points[len(p.Points)/2]} // n=70
	const trials = 64
	p.Trials = trials
	p.Policies = []string{"XY"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Run()
	}
	b.StopTimer()
	// AllocsPerRun pins GOMAXPROCS to 1, so this measures exactly the
	// serial per-trial hot path with a single worker scratch.
	perTrial := testing.AllocsPerRun(3, func() { p.Run() }) / trials
	b.ReportMetric(perTrial, "allocs/trial")
	if perTrial > maxAllocsPerTrial {
		b.Fatalf("per-trial allocations %.0f exceed the guard %d — the pooled engine is allocating on the hot path",
			perTrial, maxAllocsPerTrial)
	}
}

func relErr(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

// E17 — classic permutation benchmarks (extension): deterministic
// structured traffic on the paper's mesh.
func BenchmarkPatternBenchmarks(b *testing.B) {
	var rows []experiments.PatternRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunPatterns(900)
		if err != nil {
			b.Fatal(err)
		}
	}
	feasible := 0
	for _, r := range rows {
		if r.Cells["BEST"].Feasible {
			feasible++
		}
	}
	b.ReportMetric(float64(feasible), "bestFeasiblePatterns")
}

// Ablation — processing order: the paper reports decreasing weight as the
// best greedy order (Section 5); this bench compares the four orders on a
// congested Figure 7(a) point via TB's failure rate.
func BenchmarkAblationOrdering(b *testing.B) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	for _, order := range []comm.Order{comm.ByWeightDesc, comm.ByWeightAsc, comm.ByLengthDesc, comm.ByDensityDesc} {
		b.Run(order.String(), func(b *testing.B) {
			fails := 0
			total := 0
			for i := 0; i < b.N; i++ {
				set := workload.New(m, int64(i)).Uniform(60, 100, 1500)
				res, err := heur.Solve(heur.TB{Order: order}, heur.Instance{Mesh: m, Model: model, Comms: set})
				if err != nil {
					b.Fatal(err)
				}
				total++
				if !res.Feasible {
					fails++
				}
			}
			b.ReportMetric(float64(fails)/float64(total), "failRatio")
		})
	}
}

// Ablation — PR share accounting: redistribution of virtual shares onto
// surviving links (the default, matching the paper's ideal-sharing
// bookkeeping) versus static shares that vanish with removed links.
func BenchmarkAblationPRShares(b *testing.B) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	for _, tc := range []struct {
		name string
		h    heur.PR
	}{{"redistribute", heur.PR{}}, {"static", heur.PR{StaticShares: true}}} {
		b.Run(tc.name, func(b *testing.B) {
			fails := 0
			for i := 0; i < b.N; i++ {
				set := workload.New(m, int64(i)).Uniform(80, 100, 1500)
				res, err := heur.Solve(tc.h, heur.Instance{Mesh: m, Model: model, Comms: set})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Feasible {
					fails++
				}
			}
			b.ReportMetric(float64(fails)/float64(b.N), "failRatio")
		})
	}
}

// Ablation — discrete versus continuous frequency scaling on Figure 7(a).
func BenchmarkAblationDiscreteFreq(b *testing.B) {
	for _, tc := range []struct {
		name       string
		continuous bool
	}{{"discrete", false}, {"continuous", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var res experiments.Result
			for i := 0; i < b.N; i++ {
				p := benchPanel(experiments.Figure7a(), 3)
				p.Continuous = tc.continuous
				p.Seed += int64(i)
				res = p.Run()
			}
			pr := res.SeriesByName("PR")
			b.ReportMetric(pr.FailureRatio[len(res.X)/2], "prFailRatio")
		})
	}
}

// Per-heuristic throughput on the reference workload (n=100, small
// communications) — the paper's timing discussion (§6.4: 24 ms XYI,
// 38 ms PR on 2011 hardware).
func BenchmarkHeuristics(b *testing.B) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitz()
	set := workload.New(m, 1).Uniform(100, 100, 1500)
	in := heur.Instance{Mesh: m, Model: model, Comms: set}
	for _, h := range heur.All() {
		b.Run(h.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := heur.Solve(h, in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Optimality gap: how far the best single-path heuristic routing sits
// above the unrestricted (max-MP, continuous) optimum computed by
// Frank–Wolfe — the absolute-quality question the paper's conclusion
// raises. Reported as bestOverOpt = P_BEST,dynamic / P_maxMP.
func BenchmarkOptimalityGap(b *testing.B) {
	m := mesh.MustNew(8, 8)
	model := power.KimHorowitzContinuous()
	var gap float64
	for i := 0; i < b.N; i++ {
		set := workload.New(m, int64(i)).Uniform(30, 100, 1500)
		res, err := heur.Solve(heur.Best{}, heur.Instance{Mesh: m, Model: model, Comms: set})
		if err != nil {
			b.Fatal(err)
		}
		sol, err := optflow.Solve(m, model, set, optflow.Options{MaxIters: 150})
		if err != nil {
			b.Fatal(err)
		}
		if res.Feasible && sol.Power > 0 {
			gap = res.Power.Dynamic / sol.Power
		}
	}
	b.ReportMetric(gap, "bestOverOpt")
}

// Exact solver on small instances (the optimality baseline).
func BenchmarkExactSolver(b *testing.B) {
	m := mesh.MustNew(4, 4)
	model := power.KimHorowitz()
	set := workload.New(m, 3).Uniform(6, 200, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exact.Solve(m, model, set); err != nil {
			b.Fatal(err)
		}
	}
}

// Theorem 1 flow decomposition into explicit max-MP paths.
func BenchmarkFlowDecomposition(b *testing.B) {
	flow, err := multipath.Theorem1Flow(8, 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Decompose(0); err != nil {
			b.Fatal(err)
		}
	}
}
