// Differential tests pinning the topology abstraction to the direct
// mesh code paths: a mesh addressed through the Topology interface must
// behave byte-identically to the same mesh addressed through its
// closed-form methods, across every registered routing policy, over
// multiple seeds, and under -race.
package repro_test

import (
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/route"
	"repro/internal/solve"
	"repro/internal/tabroute"
	"repro/internal/topo"
	"repro/internal/workload"
)

// loadsHash is an order-sensitive FNV hash over the exact float64 bits
// of a load vector — two vectors hash equal only when they are
// bit-for-bit identical.
func loadsHash(loads []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, l := range loads {
		bits := math.Float64bits(l)
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestMeshViaTopologyDifferential routes every registered policy on a
// small mesh over several seeds and re-reads each routing through the
// Topology spelling (Topo set, Mesh nil). Loads, validation and power
// evaluation must be bit-identical between the two spellings — the
// interface seam may not perturb a single bit of mesh arithmetic.
func TestMeshViaTopologyDifferential(t *testing.T) {
	m := mesh.MustNew(4, 4)
	model := core.KimHorowitzModel()
	policies := solve.Policies()
	sort.Strings(policies)
	if len(policies) == 0 {
		t.Fatal("no registered policies")
	}
	routed := 0
	for _, name := range policies {
		s, err := solve.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 4; seed++ {
			set := workload.New(m, seed).Uniform(6, 100, 900)
			in := solve.Instance{Mesh: m, Model: model, Comms: set}
			r, err := s.Route(in, solve.Options{})
			if err != nil {
				continue // infeasible seeds are not this test's concern
			}
			routed++
			direct := route.Routing{Mesh: m, Flows: r.Flows}
			viaTopo := route.Routing{Topo: m, Flows: r.Flows}

			dl := direct.LoadsInto(nil)
			vl := viaTopo.LoadsInto(nil)
			if len(dl) != len(vl) {
				t.Fatalf("%s seed %d: load vector lengths differ: %d vs %d", name, seed, len(dl), len(vl))
			}
			for i := range dl {
				if dl[i] != vl[i] {
					t.Errorf("%s seed %d: link %d load differs through Topology: %g vs %g",
						name, seed, i, dl[i], vl[i])
				}
			}
			if loadsHash(dl) != loadsHash(vl) {
				t.Errorf("%s seed %d: load hashes diverge between spellings", name, seed)
			}
			if err := direct.Validate(set, 0); err != nil {
				t.Errorf("%s seed %d: direct mesh validation failed: %v", name, seed, err)
			}
			if err := viaTopo.Validate(set, 0); err != nil {
				t.Errorf("%s seed %d: via-Topology validation failed: %v", name, seed, err)
			}
			dres, vres := route.Evaluate(direct, model), route.Evaluate(viaTopo, model)
			if dres.Feasible != vres.Feasible ||
				dres.Power.Static != vres.Power.Static ||
				dres.Power.Dynamic != vres.Power.Dynamic ||
				dres.Power.ActiveLinks != vres.Power.ActiveLinks {
				t.Errorf("%s seed %d: evaluation differs through Topology: %+v vs %+v",
					name, seed, dres.Power, vres.Power)
			}
		}
	}
	if routed == 0 {
		t.Fatal("no policy produced a routing on any seed")
	}
}

// TestTableEqualsXYOnMesh pins TABLE's documented mesh behavior: on a
// mesh instance it is exactly the XY routing, path for path, and the
// returned routing stays on the devirtualized Mesh field.
func TestTableEqualsXYOnMesh(t *testing.T) {
	m := mesh.MustNew(6, 5)
	model := core.KimHorowitzModel()
	for seed := int64(1); seed <= 5; seed++ {
		set := workload.New(m, seed).Uniform(10, 100, 900)
		r, err := tabroute.Solver{}.Route(solve.Instance{Mesh: m, Model: model, Comms: set}, solve.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Mesh == nil || r.Topo != nil {
			t.Fatalf("seed %d: TABLE on a mesh must return a Mesh routing, got Mesh=%v Topo=%v",
				seed, r.Mesh, r.Topo)
		}
		if len(r.Flows) != len(set) {
			t.Fatalf("seed %d: %d flows for %d communications", seed, len(r.Flows), len(set))
		}
		for i, f := range r.Flows {
			want := route.XY(f.Comm.Src, f.Comm.Dst)
			if len(f.Path) != len(want) {
				t.Fatalf("seed %d flow %d: TABLE path length %d, XY %d", seed, i, len(f.Path), len(want))
			}
			for h := range want {
				if f.Path[h] != want[h] {
					t.Errorf("seed %d flow %d hop %d: TABLE %v differs from XY %v",
						seed, i, h, f.Path[h], want[h])
				}
			}
		}
	}
}

// TestMeshTopologyInterfaceIdentity drives every Topology method on a
// mesh through the interface and checks it against the closed-form mesh
// call — the fast paths and the generic seam must be the same function.
func TestMeshTopologyInterfaceIdentity(t *testing.T) {
	m := mesh.MustNew(5, 7)
	for _, spec := range []string{"mesh:5x7", "5x7"} {
		parsed, err := topo.Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		pm, ok := parsed.(*mesh.Mesh)
		if !ok {
			t.Fatalf("Parse(%q) returned %T, want *mesh.Mesh", spec, parsed)
		}
		if pm.Spec() != m.Spec() {
			t.Fatalf("Parse(%q).Spec() = %q, want %q", spec, pm.Spec(), m.Spec())
		}
	}
	var tp topo.Topology = m
	if tp.NumCores() != m.NumCores() || tp.NumLinks() != m.NumLinks() || tp.LinkIDSpace() != m.LinkIDSpace() {
		t.Fatal("interface core/link counts differ from the mesh's")
	}
	for i := 0; i < tp.NumCores(); i++ {
		c := tp.CoordAt(i)
		if !tp.Contains(c) || tp.CoordIndex(c) != i {
			t.Fatalf("CoordIndex/CoordAt bijection broken at %d (%v)", i, c)
		}
	}
	links := tp.Links()
	if len(links) != tp.NumLinks() {
		t.Fatalf("Links() returned %d links, want %d", len(links), tp.NumLinks())
	}
	prev := -1
	for _, l := range links {
		id := tp.LinkID(l)
		if id != m.LinkID(l) {
			t.Fatalf("interface LinkID(%v)=%d differs from mesh %d", l, id, m.LinkID(l))
		}
		if id <= prev {
			t.Fatalf("Links() not in ascending id order at %v (id %d after %d)", l, id, prev)
		}
		if tp.LinkByID(id) != l {
			t.Fatalf("LinkByID(%d)=%v, want %v", id, tp.LinkByID(id), l)
		}
		prev = id
	}
	for i := 0; i < tp.NumCores(); i++ {
		for j := 0; j < tp.NumCores(); j++ {
			a, b := tp.CoordAt(i), tp.CoordAt(j)
			if d, want := tp.Distance(a, b), mesh.Manhattan(a, b); d != want {
				t.Fatalf("Distance(%v,%v)=%d, want Manhattan %d", a, b, d, want)
			}
			got := route.Path(tp.AppendRoute(nil, a, b))
			want := route.XY(a, b)
			if len(got) != len(want) {
				t.Fatalf("AppendRoute(%v,%v) length %d, want XY %d", a, b, len(got), len(want))
			}
			for h := range want {
				if got[h] != want[h] {
					t.Fatalf("AppendRoute(%v,%v) hop %d: %v, want XY %v", a, b, h, got[h], want[h])
				}
			}
		}
	}
	if tp.Carrier() != m {
		t.Fatal("a mesh's Carrier must be itself")
	}
}
