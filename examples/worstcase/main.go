// Worstcase: reproduces the Section 4 separation results numerically —
// the Theorem 1 / Figure 4 max-MP flow pattern whose advantage over XY
// grows linearly with the mesh size, and the Lemma 2 staircase where even
// single-path Manhattan routing beats XY by Θ(p^{α−1}).
//
//	go run ./examples/worstcase
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/multipath"
	"repro/internal/power"
	"repro/internal/theory"
)

func main() {
	fmt.Println("Theorem 1 (single source/destination, max-MP vs XY, α=3):")
	fmt.Println("    p     PXY/Pmax   ratio/p")
	for _, pp := range []int{1, 2, 4, 8, 16, 32} {
		ratio, err := multipath.Theorem1Ratio(pp, 3)
		if err != nil {
			log.Fatal(err)
		}
		p := 2 * pp
		fmt.Printf("  %3d   %9.2f   %7.4f\n", p, ratio, ratio/float64(p))
	}
	fmt.Println("ratio/p settles to a constant: the gain is Θ(p), as proven.")

	fmt.Println()
	fmt.Println("Lemma 2 (staircase, single-path YX vs XY, α=2.95):")
	fmt.Println("   p'    PXY        PYX       ratio     ratio/p'^(α−1)")
	alpha := 2.95
	for _, pp := range []int{2, 4, 8, 16, 32} {
		pxy, pyx, err := theory.Lemma2Powers(pp, alpha)
		if err != nil {
			log.Fatal(err)
		}
		ratio := pxy / pyx
		fmt.Printf("  %3d   %9.3g  %8.3g   %8.2f   %8.4f\n",
			pp, pxy, pyx, ratio, ratio/math.Pow(float64(pp), alpha-1))
	}
	fmt.Println("ratio/p'^(α−1) settles: single-path Manhattan already achieves")
	fmt.Println("the Θ(p^{α−1}) worst-case separation of Theorem 2.")

	// Materialize the Theorem 1 flow as explicit paths (max-MP routing).
	flow, err := multipath.Theorem1Flow(4, 1000)
	if err != nil {
		log.Fatal(err)
	}
	flows, err := flow.Decompose(0)
	if err != nil {
		log.Fatal(err)
	}
	b, err := flow.Power(power.Theory(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 4 pattern on 8×8 at 1 Gb/s: %d distinct Manhattan paths, "+
		"dynamic power %.3g (XY single-path: %.3g)\n",
		len(flows), b.Total(), 2*7*math.Pow(1000, 3))
}
