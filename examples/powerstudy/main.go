// Powerstudy: explores the static/dynamic power trade-off the paper
// highlights in Section 4.1 — load-balancing over many links pays off when
// dynamic power dominates, while a large leakage (Pleak) rewards packing
// communications onto few links. The example sweeps the Pleak/P0 ratio and
// the exponent α on a fixed workload and reports which policy wins, plus
// the discrete-vs-continuous frequency gap.
//
//	go run ./examples/powerstudy
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/workload"
)

func main() {
	m := mesh.MustNew(8, 8)
	set := workload.New(m, 11).Uniform(30, 100, 1500)

	fmt.Println("Sweep 1: leakage share (P0=5.41, α=2.95, continuous frequencies)")
	fmt.Println("Pleak(mW)   XY power    PR power    TB power    winner      active links (PR)")
	for _, pleak := range []float64{0, 5, 17, 50, 150, 500} {
		model := power.Model{Pleak: pleak, P0: 5.41, Alpha: 2.95, MaxBW: 3500, FreqUnit: 1000}
		reportRow(set, model, fmt.Sprintf("%9.0f", pleak))
	}

	fmt.Println()
	fmt.Println("Sweep 2: dynamic exponent α (Pleak=16.9, continuous)")
	fmt.Println("alpha       XY power    PR power    TB power    winner      active links (PR)")
	for _, alpha := range []float64{2.1, 2.5, 2.95, 3.0} {
		model := power.Model{Pleak: 16.9, P0: 5.41, Alpha: alpha, MaxBW: 3500, FreqUnit: 1000}
		reportRow(set, model, fmt.Sprintf("%9.2f", alpha))
	}

	fmt.Println()
	fmt.Println("Sweep 3: discrete {1, 2.5, 3.5} Gb/s versus continuous scaling")
	for _, tc := range []struct {
		name  string
		model power.Model
	}{
		{"discrete  ", core.KimHorowitzModel()},
		{"continuous", core.ContinuousModel()},
	} {
		inst, err := core.NewInstance(8, 8, tc.model, set)
		if err != nil {
			log.Fatal(err)
		}
		sol, err := inst.Solve("BEST")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s BEST: %8.1f mW (static %6.1f, dynamic %7.1f)\n",
			tc.name, sol.PowerMW(), sol.Result.Power.Static, sol.Result.Power.Dynamic)
	}
	fmt.Println("\nThe discrete model pays for frequency headroom: every load is")
	fmt.Println("rounded up to the next available link rate, so discrete BEST")
	fmt.Println("dissipates more than the continuous ideal on the same routing.")
}

func reportRow(set comm.Set, model power.Model, label string) {
	inst, err := core.NewInstance(8, 8, model, set)
	if err != nil {
		log.Fatal(err)
	}
	type res struct {
		ok    bool
		power float64
		links int
	}
	results := make(map[string]res)
	for _, policy := range []string{"XY", "PR", "TB"} {
		sol, err := inst.Solve(policy)
		if err != nil {
			log.Fatal(err)
		}
		results[policy] = res{sol.Feasible(), sol.PowerMW(), sol.Result.Power.ActiveLinks}
	}
	winner, bestPower := "-", 0.0
	for _, policy := range []string{"XY", "PR", "TB"} {
		if r := results[policy]; r.ok && (winner == "-" || r.power < bestPower) {
			winner, bestPower = policy, r.power
		}
	}
	cell := func(policy string) string {
		r := results[policy]
		if !r.ok {
			return "    fail  "
		}
		return fmt.Sprintf("%10.1f", r.power)
	}
	fmt.Printf("%s  %s  %s  %s   %-9s   %d\n",
		label, cell("XY"), cell("PR"), cell("TB"), winner, results["PR"].links)
}
