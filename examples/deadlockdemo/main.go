// Deadlockdemo: why the paper assumes a deadlock-avoidance mechanism.
// Manhattan routings regularly create cyclic channel dependencies; this
// example routes shuffle traffic with PR, exhibits the cycle, certifies
// the routing deadlock-free via a Duato escape-channel assignment, and
// shows with the discrete-event simulator that tiny buffers throttle a
// hand-built cyclic workload while dependency-free XY traffic flows.
//
//	go run ./examples/deadlockdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/mesh"
	"repro/internal/noc"
	"repro/internal/route"
	"repro/internal/workload"
)

func main() {
	m := mesh.MustNew(8, 8)

	// 1. A realistic routing with cyclic channel dependencies.
	set, err := workload.Permutation(m, nil, workload.Shuffle, 900)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := core.NewInstance(8, 8, core.KimHorowitzModel(), set)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := inst.Solve("PR")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PR on shuffle traffic: feasible=%v, power %.0f mW\n", sol.Feasible(), sol.PowerMW())

	g := deadlock.BuildCDG(sol.Routing)
	if cyc := g.FindCycle(); cyc != nil {
		fmt.Println("channel dependency cycle found:")
		fmt.Println(" ", g.DescribeCycle(cyc))
	} else {
		fmt.Println("(this seeding produced an acyclic CDG)")
	}

	// 2. Certify it anyway: two virtual channels with an XY-restricted
	// escape class make any minimal routing deadlock-free.
	assign := deadlock.EscapeChannels(sol.Routing)
	if err := assign.Validate(sol.Routing); err != nil {
		log.Fatal(err)
	}
	if eg := deadlock.EscapeCDG(sol.Routing, assign); eg.Acyclic() {
		fmt.Println("escape-channel assignment valid; escape sub-network acyclic:")
		fmt.Println("  certified deadlock-free with 2 virtual channels (Duato)")
	}

	// 3. Feel the hazard dynamically: a hand-built 4-flow buffer cycle
	// around one square of the mesh, simulated with 1-packet buffers.
	corners := []mesh.Coord{{U: 4, V: 4}, {U: 4, V: 5}, {U: 5, V: 5}, {U: 5, V: 4}}
	link := func(i int) mesh.Link {
		return mesh.Link{From: corners[i%4], To: corners[(i+1)%4]}
	}
	var flows []route.Flow
	for f := 0; f < 4; f++ {
		flows = append(flows, route.Flow{
			Comm: comm.Comm{ID: f + 1, Src: corners[f], Dst: corners[(f+3)%4], Rate: 1150},
			Path: route.Path{link(f), link(f + 1), link(f + 2)},
		})
	}
	ring := route.Routing{Mesh: m, Flows: flows}
	fmt.Printf("\nhand-built ring (4 flows × 3 hops, 3.45 Gb/s per link), CDG cyclic: %v\n",
		!deadlock.BuildCDG(ring).Acyclic())
	run := func(buffers int, withVCs bool) {
		sim, err := noc.New(ring, core.KimHorowitzModel(), noc.Config{
			Horizon: 3000, Warmup: 0, BufferPackets: buffers,
		})
		if err != nil {
			log.Fatal(err)
		}
		desc := "unbounded buffers"
		if buffers > 0 {
			desc = fmt.Sprintf("%d-packet buffers", buffers)
		}
		if withVCs {
			// Non-minimal ring paths cannot use the Manhattan escape
			// assignment; a hand schedule splitting the square's links
			// between the two VCs breaks the buffer cycle instead.
			classes := [][]int{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {1, 1, 1}}
			if err := sim.AssignClasses(classes); err != nil {
				log.Fatal(err)
			}
			desc += " + 2 VCs"
		}
		st := sim.Run()
		total := 0.0
		for id := 1; id <= 4; id++ {
			total += st.DeliveredRate(id)
		}
		fmt.Printf("  %-24s: delivered %5.0f of 4600 Mb/s, %d packets frozen\n",
			desc, total, st.Stalled)
	}
	run(0, false)
	run(1, false)
	run(1, true)
	fmt.Println("\ncyclic dependencies + finite buffers = deadlock; virtual")
	fmt.Println("channels (or XY's acyclic ordering) are what keep the paper's")
	fmt.Println("Manhattan routings safe in real silicon.")
}
